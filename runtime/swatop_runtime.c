/* Portable reference implementation of the swATOP CPE runtime.
 *
 * Single-threaded and synchronous: one "CPE" (row 0, column 0) executes the
 * kernel and DMA completes immediately. Good enough to compile, run and
 * numerically check generated kernels off the real machine; performance
 * semantics live in the OCaml simulator, not here.
 *
 * NOTE: generated kernels partition their DMA descriptors across the 8x8
 * cluster via rid/cid, so running them on this single-CPE runtime covers
 * only CPE (0,0)'s slice. The OCaml interpreter (Swatop.Interp) is the
 * full-fidelity executor; this file exists so the emitted C is honest,
 * compilable code rather than pseudo-code.
 */

#include "swatop_runtime.h"

#include <string.h>

int sw_row_id(void) { return 0; }
int sw_col_id(void) { return 0; }

void swDMA(float *main_mem, float *spm, size_t bytes, size_t block, size_t stride,
           swMemcpyDirection dir, swReplyWord *reply) {
  size_t count = block ? bytes / block : 0;
  for (size_t i = 0; i < count; i++) {
    float *m = (float *)((char *)main_mem + i * stride);
    float *s = (float *)((char *)spm + i * block);
    if (dir == SW_MEM_TO_SPM)
      memcpy(s, m, block);
    else
      memcpy(m, s, block);
  }
  (*reply)++;
}

void swDMAWait(swReplyWord *reply) { *reply = 0; }

void sw_spm_memset(float *spm, size_t elems) { memset(spm, 0, elems * sizeof(float)); }

void sw_spm_copy(float *src, size_t src_ld, float *dst, size_t dst_ld, size_t rows,
                 size_t row_elems) {
  for (size_t r = 0; r < rows; r++)
    memcpy(dst + r * dst_ld, src + r * src_ld, row_elems * sizeof(float));
}

/* ---- Winograd F(2x2, 3x3) transforms -------------------------------- */

static void bt_d_b(const float d[16], float out[16]) {
  /* B^T d B with B^T = [1 0 -1 0; 0 1 1 0; 0 -1 1 0; 0 1 0 -1] */
  float t[16];
  for (int c = 0; c < 4; c++) {
    t[0 * 4 + c] = d[0 * 4 + c] - d[2 * 4 + c];
    t[1 * 4 + c] = d[1 * 4 + c] + d[2 * 4 + c];
    t[2 * 4 + c] = d[2 * 4 + c] - d[1 * 4 + c];
    t[3 * 4 + c] = d[1 * 4 + c] - d[3 * 4 + c];
  }
  for (int r = 0; r < 4; r++) {
    out[r * 4 + 0] = t[r * 4 + 0] - t[r * 4 + 2];
    out[r * 4 + 1] = t[r * 4 + 1] + t[r * 4 + 2];
    out[r * 4 + 2] = t[r * 4 + 2] - t[r * 4 + 1];
    out[r * 4 + 3] = t[r * 4 + 1] - t[r * 4 + 3];
  }
}

static void g_w_gt(const float g[9], float out[16]) {
  /* G g G^T with G = [1 0 0; .5 .5 .5; .5 -.5 .5; 0 0 1] */
  float t[12]; /* 4x3 */
  for (int c = 0; c < 3; c++) {
    t[0 * 3 + c] = g[0 * 3 + c];
    t[1 * 3 + c] = 0.5f * (g[0 * 3 + c] + g[1 * 3 + c] + g[2 * 3 + c]);
    t[2 * 3 + c] = 0.5f * (g[0 * 3 + c] - g[1 * 3 + c] + g[2 * 3 + c]);
    t[3 * 3 + c] = g[2 * 3 + c];
  }
  for (int r = 0; r < 4; r++) {
    out[r * 4 + 0] = t[r * 3 + 0];
    out[r * 4 + 1] = 0.5f * (t[r * 3 + 0] + t[r * 3 + 1] + t[r * 3 + 2]);
    out[r * 4 + 2] = 0.5f * (t[r * 3 + 0] - t[r * 3 + 1] + t[r * 3 + 2]);
    out[r * 4 + 3] = t[r * 3 + 2];
  }
}

static void at_m_a(const float m[16], float out[4]) {
  /* A^T m A with A^T = [1 1 1 0; 0 1 -1 -1] */
  float t[8]; /* 2x4 */
  for (int c = 0; c < 4; c++) {
    t[0 * 4 + c] = m[0 * 4 + c] + m[1 * 4 + c] + m[2 * 4 + c];
    t[1 * 4 + c] = m[1 * 4 + c] - m[2 * 4 + c] - m[3 * 4 + c];
  }
  for (int r = 0; r < 2; r++) {
    out[r * 2 + 0] = t[r * 4 + 0] + t[r * 4 + 1] + t[r * 4 + 2];
    out[r * 2 + 1] = t[r * 4 + 1] - t[r * 4 + 2] - t[r * 4 + 3];
  }
}

void sw_wino_input_transform(float *src, float *dst, int chans, int tiles_r, int tiles_c,
                             int src_ld) {
  int tiles = tiles_r * tiles_c;
  int plane_rows = tiles_r * 2 + 2;
  for (int ch = 0; ch < chans; ch++) {
    float *plane = src + (size_t)ch * plane_rows * src_ld;
    for (int tr = 0; tr < tiles_r; tr++)
      for (int tc = 0; tc < tiles_c; tc++) {
        float d[16], v[16];
        for (int r = 0; r < 4; r++)
          for (int c = 0; c < 4; c++)
            d[r * 4 + c] = plane[(tr * 2 + r) * src_ld + tc * 2 + c];
        bt_d_b(d, v);
        int col = tr * tiles_c + tc;
        for (int xi = 0; xi < 16; xi++)
          dst[((size_t)xi * chans + ch) * tiles + col] = v[xi];
      }
  }
}

void sw_wino_filter_transform(float *src, float *dst, int chans, int tiles_r, int tiles_c,
                              int src_ld) {
  (void)tiles_r;
  (void)tiles_c;
  (void)src_ld;
  for (int ch = 0; ch < chans; ch++) {
    float u[16];
    g_w_gt(src + (size_t)ch * 9, u);
    for (int xi = 0; xi < 16; xi++)
      dst[(size_t)xi * chans + ch] = u[xi];
  }
}

void sw_wino_output_transform(float *src, float *dst, int chans, int tiles_r, int tiles_c,
                              int src_ld) {
  (void)src_ld;
  int tiles = tiles_r * tiles_c;
  int out_cols = tiles_c * 2;
  int out_rows = tiles_r * 2;
  for (int ch = 0; ch < chans; ch++)
    for (int tr = 0; tr < tiles_r; tr++)
      for (int tc = 0; tc < tiles_c; tc++) {
        float m[16], y[4];
        int col = tr * tiles_c + tc;
        for (int xi = 0; xi < 16; xi++)
          m[xi] = src[((size_t)xi * chans + ch) * tiles + col];
        at_m_a(m, y);
        for (int r = 0; r < 2; r++)
          for (int c = 0; c < 2; c++)
            dst[(size_t)ch * out_rows * out_cols + (tr * 2 + r) * out_cols + tc * 2 + c] =
                y[r * 2 + c];
      }
}

/* ---- GEMM variants --------------------------------------------------- */

static void gemm_generic(int a_row_major, int b_row_major, int m, int n, int k, float alpha,
                         const float *a, int lda, const float *b, int ldb, float beta, float *c,
                         int ldc) {
  for (int i = 0; i < m; i++)
    for (int j = 0; j < n; j++) {
      float acc = 0.0f;
      for (int p = 0; p < k; p++) {
        float av = a_row_major ? a[(size_t)i * lda + p] : a[(size_t)p * lda + i];
        float bv = b_row_major ? b[(size_t)p * ldb + j] : b[(size_t)j * ldb + p];
        acc += av * bv;
      }
      c[(size_t)i * ldc + j] = alpha * acc + beta * c[(size_t)i * ldc + j];
    }
}

#define SWATOP_DEFINE_GEMM(name, arm, brm)                                               \
  void name(int m, int n, int k, float alpha, float *a, int lda, float *b, int ldb,      \
            float beta, float *c, int ldc) {                                             \
    gemm_generic(arm, brm, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);                \
  }

SWATOP_DEFINE_GEMM(spm_gemm_arm_brm_vm, 1, 1)
SWATOP_DEFINE_GEMM(spm_gemm_arm_brm_vn, 1, 1)
SWATOP_DEFINE_GEMM(spm_gemm_arm_bcm_vm, 1, 0)
SWATOP_DEFINE_GEMM(spm_gemm_arm_bcm_vn, 1, 0)
SWATOP_DEFINE_GEMM(spm_gemm_acm_brm_vm, 0, 1)
SWATOP_DEFINE_GEMM(spm_gemm_acm_brm_vn, 0, 1)
SWATOP_DEFINE_GEMM(spm_gemm_acm_bcm_vm, 0, 0)
SWATOP_DEFINE_GEMM(spm_gemm_acm_bcm_vn, 0, 0)
