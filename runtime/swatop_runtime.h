/* swATOP CPE runtime interface.
 *
 * The code generator (lib/core/c_emit.ml) emits one SPMD kernel per tuned
 * operator against this interface. On the real SW26010 these symbols are
 * provided by the athread runtime, the DMA intrinsics and the hand-written
 * assembly GEMM kernels (xMath-style); swatop_runtime.c in this directory
 * provides a portable single-threaded reference implementation so that
 * generated kernels can be compiled and exercised anywhere.
 *
 * Conventions:
 *  - every CPE of the 8x8 cluster runs the kernel body in lock-step;
 *    sw_row_id()/sw_col_id() identify the executing CPE;
 *  - SPM buffers live in the __thread_local pool declared by the generated
 *    file (the attribute maps to the LDM section on the real toolchain and
 *    to nothing in the reference build);
 *  - swDMA describes one CPE's strided transfer: `count` blocks of `block`
 *    bytes, the i-th block at main-memory offset i * stride from `main`,
 *    packed contiguously at `spm`; completion is signalled through the
 *    reply word, observed by swDMAWait.
 */

#ifndef SWATOP_RUNTIME_H
#define SWATOP_RUNTIME_H

#include <stddef.h>

#ifdef __sw_64__ /* the real SW26010 toolchain */
#define __thread_local __attribute__((section(".ldm")))
#else
#define __thread_local /* reference build: ordinary static storage */
#endif

typedef volatile long swReplyWord;

typedef enum {
  SW_MEM_TO_SPM = 0,
  SW_SPM_TO_MEM = 1
} swMemcpyDirection;

/* CPE identity inside the 8x8 cluster. */
int sw_row_id(void);
int sw_col_id(void);

/* Asynchronous strided DMA between main memory and the scratch pad
 * (Sec. 4.1 of the paper). `bytes` is the total payload, `block` the
 * contiguous block size and `stride` the distance between block starts on
 * the main-memory side; the SPM side is packed. */
void swDMA(float *main_mem, float *spm, size_t bytes, size_t block, size_t stride,
           swMemcpyDirection dir, swReplyWord *reply);

/* Block until every transfer accounted to the reply word has completed. */
void swDMAWait(swReplyWord *reply);

/* Zero `elems` floats of scratch-pad memory (vectorized on the CPE). */
void sw_spm_memset(float *spm, size_t elems);

/* Strided SPM-to-SPM repack: `rows` runs of `row_elems` floats, read at
 * stride `src_ld` and written at stride `dst_ld`. */
void sw_spm_copy(float *src, size_t src_ld, float *dst, size_t dst_ld, size_t rows,
                 size_t row_elems);

/* Winograd F(2x2, 3x3) transform batches over SPM-resident blocks; the
 * layouts match lib/core/ir.mli's Transform node documentation. */
void sw_wino_input_transform(float *src, float *dst, int chans, int tiles_r, int tiles_c,
                             int src_ld);
void sw_wino_filter_transform(float *src, float *dst, int chans, int tiles_r, int tiles_c,
                              int src_ld);
void sw_wino_output_transform(float *src, float *dst, int chans, int tiles_r, int tiles_c,
                              int src_ld);

/* The eight hand-optimized GEMM micro-kernel variants, CBLAS-like
 * (Sec. 4.1): C += alpha * A * B + beta-scaled C with all operands resident
 * in SPM. Variant naming: a<rm|cm> = A row/column major, b<rm|cm> likewise,
 * v<m|n> = vectorized dimension. */
#define SWATOP_DECLARE_GEMM(name)                                                        \
  void name(int m, int n, int k, float alpha, float *a, int lda, float *b, int ldb,      \
            float beta, float *c, int ldc)

SWATOP_DECLARE_GEMM(spm_gemm_arm_brm_vm);
SWATOP_DECLARE_GEMM(spm_gemm_arm_brm_vn);
SWATOP_DECLARE_GEMM(spm_gemm_arm_bcm_vm);
SWATOP_DECLARE_GEMM(spm_gemm_arm_bcm_vn);
SWATOP_DECLARE_GEMM(spm_gemm_acm_brm_vm);
SWATOP_DECLARE_GEMM(spm_gemm_acm_brm_vn);
SWATOP_DECLARE_GEMM(spm_gemm_acm_bcm_vm);
SWATOP_DECLARE_GEMM(spm_gemm_acm_bcm_vn);

#undef SWATOP_DECLARE_GEMM

#endif /* SWATOP_RUNTIME_H */
