(* The self-healing layer: deterministic retry backoff, the per-CG
   circuit-breaker state machine, bounded-reservoir statistics, shard-level
   kill/probe/recover and watchdog behavior with synthetic executors, the
   chaos-soak harness, and checkpoint temp-file hygiene. Fault plans are
   installed inside [Fun.protect] so a failure never leaks into later
   suites. *)

open Swatop
open Swatop_serve
module Shard = Serve_shard
module Engine = Serve_engine

let plan_of spec =
  match Prelude.Fault.parse spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad fault spec %S: %s" spec e

let with_plan spec f =
  Prelude.Fault.set (Some (plan_of spec));
  Fun.protect ~finally:(fun () -> Prelude.Fault.set None) f

let request ~id ~arrival =
  {
    Serve_batch.rq_id = id;
    rq_class = "steady";
    rq_bucket = "net";
    rq_arrival = arrival;
    rq_deadline = arrival +. 1.0;
  }

let synth ?(per_batch = 1e-3) () =
  {
    Shard.ex_name = "synthetic";
    ex_floor = 0.5e-3;
    ex_nominal = (fun _ -> per_batch);
    ex_run =
      (fun ~cg:_ ~n:_ -> { Shard.ru_seconds = per_batch; ru_fallbacks = 0; ru_retried = 0 });
  }

(* ------------------------------------------------------------------ *)
(* Prelude.Retry: pure, bounded, deterministic backoff. *)

let retry_suite =
  [
    Alcotest.test_case "delay is exponential with bounded jitter, capped" `Quick (fun () ->
        let p = Prelude.Retry.default in
        for attempt = 1 to 10 do
          let d = Prelude.Retry.delay p ~site:"t" ~key:3 ~attempt in
          let nominal = Float.min p.r_cap (p.r_base *. (2.0 ** float_of_int (attempt - 1))) in
          let lo = nominal *. (1.0 -. (p.r_jitter /. 2.0))
          and hi = nominal *. (1.0 +. (p.r_jitter /. 2.0)) in
          if d < lo || d > hi then
            Alcotest.failf "attempt %d: delay %g outside [%g, %g]" attempt d lo hi
        done);
    Alcotest.test_case "delay is a pure function of (site, key, attempt)" `Quick (fun () ->
        let p = Prelude.Retry.default in
        let d () = Prelude.Retry.delay p ~site:"graph.layer" ~key:5 ~attempt:2 in
        Alcotest.(check (float 0.0)) "replayed" (d ()) (d ());
        let other = Prelude.Retry.delay p ~site:"graph.layer" ~key:6 ~attempt:2 in
        Alcotest.(check bool) "key feeds the jitter draw" false (d () = other));
    Alcotest.test_case "zero jitter collapses to the deterministic schedule" `Quick (fun () ->
        let p = { Prelude.Retry.default with r_jitter = 0.0 } in
        Alcotest.(check (float 1e-12)) "attempt 1" p.r_base
          (Prelude.Retry.delay p ~site:"s" ~key:0 ~attempt:1);
        Alcotest.(check (float 1e-12)) "attempt 2 doubles" (2.0 *. p.r_base)
          (Prelude.Retry.delay p ~site:"s" ~key:0 ~attempt:2);
        Alcotest.(check (float 1e-12)) "deep attempts hit the cap" p.r_cap
          (Prelude.Retry.delay p ~site:"s" ~key:0 ~attempt:30));
    Alcotest.test_case "validate rejects out-of-range fields" `Quick (fun () ->
        let bad f = Alcotest.check_raises "rejected" (Invalid_argument "") (fun () ->
            try Prelude.Retry.validate f
            with Invalid_argument _ -> raise (Invalid_argument ""))
        in
        bad { Prelude.Retry.default with r_attempts = 0 };
        bad { Prelude.Retry.default with r_jitter = 1.5 };
        bad { Prelude.Retry.default with r_base = -1.0 };
        bad { Prelude.Retry.default with r_cap = 0.0 };
        bad { Prelude.Retry.default with r_budget = -1 });
    Alcotest.test_case "budget mints a fresh per-scope allowance" `Quick (fun () ->
        let p = Prelude.Retry.default in
        let b1 = Prelude.Retry.budget p and b2 = Prelude.Retry.budget p in
        Alcotest.(check int) "full allowance" p.r_budget !b1;
        decr b1;
        Alcotest.(check int) "scopes are independent" p.r_budget !b2);
  ]

(* ------------------------------------------------------------------ *)
(* Serve_health: the breaker state machine. *)

let health_suite =
  [
    Alcotest.test_case "healthy -> suspect -> trip threshold" `Quick (fun () ->
        let h = Serve_health.create ~cgs:2 () in
        Alcotest.(check string) "starts healthy" "healthy"
          (Serve_health.state_to_string (Serve_health.state h 0));
        Serve_health.on_failure h 0;
        Alcotest.(check string) "one failure: suspect" "suspect"
          (Serve_health.state_to_string (Serve_health.state h 0));
        Alcotest.(check bool) "not yet tripped" false (Serve_health.tripped h 0);
        Serve_health.on_failure h 0;
        Serve_health.on_failure h 0;
        Alcotest.(check bool) "three failures in the window trip" true
          (Serve_health.tripped h 0);
        Alcotest.(check string) "the neighbor is untouched" "healthy"
          (Serve_health.state_to_string (Serve_health.state h 1)));
    Alcotest.test_case "a clean window decays suspect back to healthy" `Quick (fun () ->
        let h = Serve_health.create ~cgs:1 () in
        Serve_health.on_failure h 0;
        for _ = 1 to (Serve_health.config h).hc_window - 1 do
          Serve_health.on_success h 0
        done;
        Alcotest.(check string) "failure still in window" "suspect"
          (Serve_health.state_to_string (Serve_health.state h 0));
        Serve_health.on_success h 0;
        Alcotest.(check string) "window clean: healthy again" "healthy"
          (Serve_health.state_to_string (Serve_health.state h 0)));
    Alcotest.test_case "kill opens; recover ramps; load factor decays to 1" `Quick (fun () ->
        let h = Serve_health.create ~cgs:1 () in
        Serve_health.on_failure h 0;
        Serve_health.on_kill h 0;
        Alcotest.(check string) "open" "open"
          (Serve_health.state_to_string (Serve_health.state h 0));
        Alcotest.(check int) "kill clears the window" 0 (Serve_health.failures_in_window h 0);
        Serve_health.on_recover h 0;
        Alcotest.(check string) "probing" "probing"
          (Serve_health.state_to_string (Serve_health.state h 0));
        Alcotest.(check (float 1e-9)) "full ramp doubles dispatch cost" 2.0
          (Serve_health.load_factor h 0);
        let ramp = (Serve_health.config h).hc_ramp in
        let prev = ref (Serve_health.load_factor h 0) in
        for i = 1 to ramp - 1 do
          Serve_health.on_success h 0;
          let f = Serve_health.load_factor h 0 in
          if f >= !prev then Alcotest.failf "ramp step %d: factor %g did not decay" i f;
          prev := f
        done;
        Serve_health.on_success h 0;
        Alcotest.(check string) "graduated" "healthy"
          (Serve_health.state_to_string (Serve_health.state h 0));
        Alcotest.(check (float 1e-9)) "full share" 1.0 (Serve_health.load_factor h 0));
    Alcotest.test_case "a wobble during re-admission restarts the ramp" `Quick (fun () ->
        let h = Serve_health.create ~cgs:1 () in
        Serve_health.on_kill h 0;
        Serve_health.on_recover h 0;
        Serve_health.on_success h 0;
        Alcotest.(check bool) "ramp progressed" true (Serve_health.load_factor h 0 < 2.0);
        Serve_health.on_failure h 0;
        Alcotest.(check string) "still probing" "probing"
          (Serve_health.state_to_string (Serve_health.state h 0));
        Alcotest.(check (float 1e-9)) "ramp restarted" 2.0 (Serve_health.load_factor h 0));
    Alcotest.test_case "counters total outcomes across CGs" `Quick (fun () ->
        let h = Serve_health.create ~cgs:3 () in
        Serve_health.on_success h 0;
        Serve_health.on_success h 1;
        Serve_health.on_failure h 2;
        let s = ref 0 and f = ref 0 in
        Serve_health.counters h ~successes:s ~failures:f;
        Alcotest.(check int) "successes" 2 !s;
        Alcotest.(check int) "failures" 1 !f);
    Alcotest.test_case "bad configs are rejected" `Quick (fun () ->
        List.iter
          (fun cfg ->
            match Serve_health.create ~config:cfg ~cgs:1 () with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail "config accepted")
          [
            { Serve_health.default with hc_window = 0 };
            { Serve_health.default with hc_trip = 0 };
            { Serve_health.default with hc_probe_interval = 0.0 };
            { Serve_health.default with hc_ramp = 0 };
            { Serve_health.default with hc_watchdog = 1.0 };
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* Prelude.Running_stat with a cap: the seeded reservoir. *)

let stat_suite =
  [
    Alcotest.test_case "below the cap percentiles stay exact" `Quick (fun () ->
        let s = Prelude.Running_stat.create ~cap:256 () in
        for i = 1 to 100 do
          Prelude.Running_stat.add s (float_of_int i)
        done;
        Alcotest.(check int) "all retained" 100 (Prelude.Running_stat.retained s);
        Alcotest.(check (float 0.0)) "p50 nearest-rank" 50.0
          (Prelude.Running_stat.percentile s 50.0);
        Alcotest.(check (float 0.0)) "p100" 100.0 (Prelude.Running_stat.percentile s 100.0));
    Alcotest.test_case "past the cap: retention bounded, moments exact" `Quick (fun () ->
        let s = Prelude.Running_stat.create ~cap:64 () in
        for i = 1 to 1000 do
          Prelude.Running_stat.add s (float_of_int i)
        done;
        Alcotest.(check int) "count sees everything" 1000 (Prelude.Running_stat.count s);
        Alcotest.(check int) "retention capped" 64 (Prelude.Running_stat.retained s);
        Alcotest.(check (float 0.0)) "min exact" 1.0 (Prelude.Running_stat.min s);
        Alcotest.(check (float 0.0)) "max exact" 1000.0 (Prelude.Running_stat.max s);
        Alcotest.(check (float 1e-9)) "mean exact" 500.5 (Prelude.Running_stat.mean s);
        let p50 = Prelude.Running_stat.percentile s 50.0 in
        if p50 < 300.0 || p50 > 700.0 then
          Alcotest.failf "reservoir p50 %g wildly off the true 500" p50);
    Alcotest.test_case "the reservoir is a seeded, replayable draw" `Quick (fun () ->
        let fill seed =
          let s = Prelude.Running_stat.create ~cap:32 ~seed () in
          for i = 1 to 500 do
            Prelude.Running_stat.add s (float_of_int (i * 7 mod 501))
          done;
          List.map (Prelude.Running_stat.percentile s) [ 25.0; 50.0; 75.0; 99.0 ]
        in
        Alcotest.(check (list (float 0.0))) "same seed, same estimate" (fill 7) (fill 7);
        Alcotest.(check bool) "seed matters" false (fill 7 = fill 8));
    Alcotest.test_case "cap below 1 is rejected" `Quick (fun () ->
        match Prelude.Running_stat.create ~cap:0 () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "cap 0 accepted");
  ]

(* ------------------------------------------------------------------ *)
(* Serve_shard resilience: kill -> probe -> recover, watchdog, requeue. *)

let resilience_suite =
  [
    Alcotest.test_case "killed CG is probed and re-admitted on schedule" `Quick (fun () ->
        with_plan "seed=3;serve.cg:n=1;serve.cg.recover:n=1" (fun () ->
            let sim = Serve_sim.create () in
            let completed = ref 0 in
            let sh =
              Shard.create ~horizon:1.0 ~sim ~executor:(synth ()) ~cgs:2
                ~on_complete:(fun batch ~finished:_ ~cg:_ ->
                  completed := !completed + List.length batch)
                ()
            in
            for i = 0 to 9 do
              let t = 0.002 *. float_of_int i in
              Serve_sim.at sim t (fun () -> Shard.submit sh [ request ~id:i ~arrival:t ])
            done;
            Serve_sim.run sim;
            (match (Shard.kills sh, Shard.recoveries sh) with
            | [ k ], [ rv ] ->
              Alcotest.(check int) "the killed CG came back" k.Shard.k_cg rv.Shard.rv_cg;
              Alcotest.(check int) "first probe answered" 1 rv.Shard.rv_probes;
              Alcotest.(check (float 1e-9)) "probe interval after death"
                (k.Shard.k_time +. (Serve_health.config (Shard.health sh)).hc_probe_interval)
                rv.Shard.rv_time
            | ks, rs ->
              Alcotest.failf "expected 1 kill + 1 recovery, got %d/%d" (List.length ks)
                (List.length rs));
            Alcotest.(check int) "both CGs alive at the end" 2 (Shard.alive sh);
            Alcotest.(check int) "every request completed" 10 !completed;
            Alcotest.(check bool) "probe counter advanced" true (Shard.probes sh >= 1)));
    Alcotest.test_case "default horizon: dead CGs stay dead, the loop drains" `Quick
      (fun () ->
        with_plan "seed=3;serve.cg:n=1;serve.cg.recover:always" (fun () ->
            let sim = Serve_sim.create () in
            let sh =
              Shard.create ~sim ~executor:(synth ()) ~cgs:2
                ~on_complete:(fun _ ~finished:_ ~cg:_ -> ())
                ()
            in
            Shard.submit sh [ request ~id:0 ~arrival:0.0 ];
            Shard.submit sh [ request ~id:1 ~arrival:0.0 ];
            Serve_sim.run sim;
            Alcotest.(check int) "no probes without a horizon" 0 (Shard.probes sh);
            Alcotest.(check (list int)) "no recovery" []
              (List.map (fun r -> r.Shard.rv_cg) (Shard.recoveries sh));
            Alcotest.(check int) "one CG down" 1 (Shard.alive sh)));
    Alcotest.test_case "a hung batch is reclaimed by the watchdog" `Quick (fun () ->
        with_plan "seed=3;serve.cg.hang:n=1" (fun () ->
            let sim = Serve_sim.create () in
            let completed = ref 0 in
            let sh =
              Shard.create ~sim ~executor:(synth ()) ~cgs:2
                ~on_complete:(fun batch ~finished:_ ~cg:_ ->
                  completed := !completed + List.length batch)
                ()
            in
            for i = 0 to 5 do
              Serve_sim.at sim 0.0 (fun () -> Shard.submit sh [ request ~id:i ~arrival:0.0 ])
            done;
            Serve_sim.run sim;
            (match Shard.kills sh with
            | [ k ] ->
              Alcotest.(check string) "the watchdog pulled the trigger" "watchdog"
                k.Shard.k_cause;
              Alcotest.(check bool) "deadline respected the 4x factor" true
                (k.Shard.k_time > 0.0)
            | ks -> Alcotest.failf "expected exactly one kill, got %d" (List.length ks));
            Alcotest.(check int) "the hung batch finished elsewhere" 6 !completed;
            Alcotest.(check int) "survivor carries on" 1 (Shard.alive sh)));
    Alcotest.test_case "executor failures requeue until the breaker trips" `Quick (fun () ->
        let base = synth () in
        let flaky =
          {
            base with
            Shard.ex_run =
              (fun ~cg ~n ->
                if cg = 0 then failwith "flaky-cg0" else base.Shard.ex_run ~cg ~n);
          }
        in
        let sim = Serve_sim.create () in
        let completed = ref 0 in
        let sh =
          Shard.create ~sim ~executor:flaky ~cgs:2
            ~on_complete:(fun batch ~finished:_ ~cg:_ ->
              completed := !completed + List.length batch)
            ()
        in
        for i = 0 to 7 do
          Serve_sim.at sim 0.0 (fun () -> Shard.submit sh [ request ~id:i ~arrival:0.0 ])
        done;
        Serve_sim.run sim;
        (match Shard.kills sh with
        | [ k ] -> Alcotest.(check int) "the flaky CG died" 0 k.Shard.k_cg
        | ks -> Alcotest.failf "expected exactly one kill, got %d" (List.length ks));
        Alcotest.(check int) "two soft failures before the trip" 2 (Shard.requeues sh);
        Alcotest.(check int) "every request completed on the healthy CG" 8 !completed;
        (match Shard.stats sh with
        | s0 :: _ -> Alcotest.(check string) "breaker open" "open" s0.Shard.g_state
        | [] -> Alcotest.fail "no stats"));
  ]

(* ------------------------------------------------------------------ *)
(* Serve_chaos over a synthetic executor: fast, exhaustive, replayable. *)

let chaos_cfg =
  {
    Engine.default with
    cf_rate = 400.0;
    cf_duration = 0.25;
    cf_cgs = 4;
    cf_seed = 11;
    cf_max_batch = 4;
    cf_timeout = 0.004;
  }

let chaos_suite =
  [
    Alcotest.test_case "plan_for is pure and cycles every fault family" `Quick (fun () ->
        let kinds = List.init 12 (fun i -> fst (Serve_chaos.plan_for ~seed:5 i)) in
        Alcotest.(check (list string)) "two full cycles"
          [
            "kill"; "kill-recover"; "dma-transient"; "layer-transient"; "hang"; "mixed";
            "kill"; "kill-recover"; "dma-transient"; "layer-transient"; "hang"; "mixed";
          ]
          kinds;
        let again i = snd (Serve_chaos.plan_for ~seed:5 i) in
        List.iteri
          (fun i spec ->
            Alcotest.(check string) "replayed spec" spec (again i);
            match Prelude.Fault.parse spec with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "plan %d unparseable (%s): %s" i spec e)
          (List.init 12 (fun i -> snd (Serve_chaos.plan_for ~seed:5 i))));
    Alcotest.test_case "a 12-plan soak conserves, recovers, and passes check" `Quick
      (fun () ->
        let r = Serve_chaos.run ~plans:12 ~seed:5 ~executor:(synth ()) chaos_cfg in
        Alcotest.(check bool) "all conserved" true r.Serve_chaos.ch_all_conserved;
        Alcotest.(check (list string)) "invariants hold" [] (Serve_chaos.check r);
        Alcotest.(check int) "all scenarios ran" 12 (List.length r.Serve_chaos.ch_scenarios);
        Alcotest.(check bool) "kills were injected" true (r.Serve_chaos.ch_total_kills > 0);
        Alcotest.(check bool) "recoveries happened" true
          (r.Serve_chaos.ch_total_recoveries > 0);
        Alcotest.(check bool) "no fault plan leaked" true (Prelude.Fault.plan () = None));
    Alcotest.test_case "a soak replays byte-identically" `Quick (fun () ->
        let j () =
          Serve_chaos.to_json (Serve_chaos.run ~plans:6 ~seed:9 ~executor:(synth ()) chaos_cfg)
        in
        Alcotest.(check string) "identical JSON" (j ()) (j ()));
    Alcotest.test_case "check flags a conservation violation" `Quick (fun () ->
        let r = Serve_chaos.run ~plans:1 ~seed:5 ~executor:(synth ()) chaos_cfg in
        let broken =
          {
            r with
            Serve_chaos.ch_scenarios =
              List.map
                (fun s -> { s with Serve_chaos.sc_conserved = false })
                r.Serve_chaos.ch_scenarios;
          }
        in
        Alcotest.(check bool) "violations reported" true (Serve_chaos.check broken <> []));
  ]

(* ------------------------------------------------------------------ *)
(* Tune_checkpoint: a successful save sweeps dead writers' temp files. *)

let checkpoint_suite =
  [
    Alcotest.test_case "save sweeps stale PID temp files, not foreign ones" `Quick (fun () ->
        let path = Filename.temp_file "swatop_ckpt_sweep" ".ckpt" in
        Sys.remove path;
        let stale = path ^ ".12345.tmp" in
        let foreign = path ^ ".abc.tmp" in
        let touch p =
          let oc = open_out p in
          output_string oc "leftover";
          close_out oc
        in
        touch stale;
        touch foreign;
        let ck =
          {
            Tune_checkpoint.ck_key = "sweep-test";
            ck_fingerprint = 42;
            ck_space = 8;
            ck_top_k = 2;
            ck_chunks =
              [
                {
                  Tune_checkpoint.c_start = 0;
                  c_len = 4;
                  c_pruned = 1;
                  c_entries = [ (0, 1.5); (2, 2.5) ];
                  c_rejected = [];
                  c_failed = [];
                };
              ];
          }
        in
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun p -> try Sys.remove p with Sys_error _ -> ())
              [ path; stale; foreign ])
          (fun () ->
            Tune_checkpoint.save path ck;
            Alcotest.(check bool) "checkpoint landed" true (Sys.file_exists path);
            Alcotest.(check bool) "stale PID temp swept" false (Sys.file_exists stale);
            Alcotest.(check bool) "non-PID temp untouched" true (Sys.file_exists foreign);
            let own = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
            Alcotest.(check bool) "own temp renamed away" false (Sys.file_exists own);
            match Tune_checkpoint.load path with
            | Some loaded ->
              Alcotest.(check bool) "round-trips" true
                (Tune_checkpoint.matches loaded ~key:"sweep-test" ~fingerprint:42 ~space:8
                   ~top_k:2)
            | None -> Alcotest.fail "saved checkpoint did not load"));
    Alcotest.test_case "a second save sweeps temps left by the first writer's peers" `Quick
      (fun () ->
        let path = Filename.temp_file "swatop_ckpt_sweep2" ".ckpt" in
        Sys.remove path;
        let ck =
          {
            Tune_checkpoint.ck_key = "k";
            ck_fingerprint = 1;
            ck_space = 1;
            ck_top_k = 1;
            ck_chunks = [];
          }
        in
        let stale = path ^ ".99999.tmp" in
        Fun.protect
          ~finally:(fun () ->
            List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ path; stale ])
          (fun () ->
            Tune_checkpoint.save path ck;
            let oc = open_out stale in
            close_out oc;
            Tune_checkpoint.save path ck;
            Alcotest.(check bool) "late straggler swept on the next save" false
              (Sys.file_exists stale)));
  ]

let suite =
  retry_suite @ health_suite @ stat_suite @ resilience_suite @ chaos_suite @ checkpoint_suite
