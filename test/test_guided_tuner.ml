(* The guided (learned-cost-model) tuner: feature extraction totality,
   ridge-model fit/predict/serialize, bit-identical replay across job
   counts, the headline acceptance bound (>= 99% of the brute-force
   winner's performance from <= 10% of the measurements), warm-start
   transfer through the schedule cache, and soundness under injected
   faults.

   Every tuning problem here is deliberately small — the brute-force
   baseline really measures its whole space, so these spaces are scaled
   layers (channel-reduced ResNet-18 conv5_x shapes, 128^3 GEMM), chosen
   to keep the suite in CI budget on a single core. The committed
   BENCH_tuner.json covers the full-size layers with the same harness. *)

module Tuner = Swatop.Tuner
module Lm = Swatop.Learned_model
module Cache = Swatop.Schedule_cache
module Mm = Swatop_ops.Matmul
module Ci = Swatop_ops.Conv_implicit

let seed = 42

(* ---------------------------------------------------------------- *)
(* Problems: one GEMM and two channel-scaled conv5_x-shaped layers. *)

let mm128 =
  let t = Mm.problem ~m:128 ~n:128 ~k:128 in
  ("matmul 128^3", Mm.space t, Mm.build t)

let conv_scaled ~ni ~no ~out =
  let spec = Swtensor.Conv_spec.create ~b:1 ~ni ~no ~ro:out ~co:out ~kr:3 ~kc:3 () in
  let t = Ci.problem spec in
  (Printf.sprintf "conv5_x/%d %dx%d@%d" (512 / ni) ni no out, Ci.space t, Ci.build t)

let conv288 = lazy (conv_scaled ~ni:32 ~no:32 ~out:4)
let conv528 = lazy (conv_scaled ~ni:32 ~no:32 ~out:7)

let guided ?(cfg = Tuner.guided_defaults ~seed) ?jobs (_, space, build) =
  Tuner.guided_tune ?jobs ~config:cfg ~candidates:space ~build ()

let blackbox (_, space, build) = Tuner.blackbox_tune ~candidates:space ~build ()

(* ---------------------------------------------------------------- *)

let feature_suite =
  [
    Alcotest.test_case "fixed width, finite, named" `Quick (fun () ->
        Alcotest.(check int) "one name per feature" Swatop.Sched_features.dim
          (List.length Swatop.Sched_features.names);
        let check_space (name, space, build) =
          List.iteri
            (fun i c ->
              let f = Swatop.Sched_features.of_program (Tuner.optimize (build c)) in
              Alcotest.(check int)
                (Printf.sprintf "%s[%d] width" name i)
                Swatop.Sched_features.dim (Array.length f);
              Array.iteri
                (fun j x ->
                  if not (Float.is_finite x) then
                    Alcotest.failf "%s[%d] feature %d (%s) = %f" name i j
                      (List.nth Swatop.Sched_features.names j)
                      x)
                f)
            space
        in
        check_space mm128;
        check_space (Lazy.force conv288));
  ]

let model_suite =
  [
    Alcotest.test_case "fit recovers a planted log-linear law" `Quick (fun () ->
        (* seconds = exp(0.8*x0 - 0.5*x1 + 0.1): exactly representable, so
           the ridge fit must predict within a few percent. *)
        let m = Lm.create ~dim:2 () in
        let planted x0 x1 = exp ((0.8 *. x0) -. (0.5 *. x1) +. 0.1) in
        for i = 0 to 19 do
          let x0 = float_of_int (i mod 5) and x1 = float_of_int (i mod 4) in
          Lm.observe m [| x0; x1 |] (planted x0 x1)
        done;
        Lm.fit ~ridge:1e-6 m;
        Alcotest.(check bool) "fitted" true (Lm.fitted m);
        List.iter
          (fun (x0, x1) ->
            match Lm.predict m [| x0; x1 |] with
            | None -> Alcotest.fail "no prediction after fit"
            | Some p ->
              let expect = planted x0 x1 in
              if Float.abs (p -. expect) /. expect > 0.05 then
                Alcotest.failf "predict (%.1f,%.1f): %f vs %f" x0 x1 p expect)
          [ (2.0, 1.0); (4.0, 3.0); (0.5, 2.5) ];
        Alcotest.(check bool) "training rmse small" true (Lm.rmse_log m < 0.05));
    Alcotest.test_case "non-positive and non-finite samples are ignored" `Quick (fun () ->
        let m = Lm.create ~dim:2 () in
        Lm.observe m [| 1.0; 2.0 |] 0.0;
        Lm.observe m [| 1.0; 2.0 |] (-3.0);
        Lm.observe m [| 1.0; 2.0 |] Float.nan;
        Alcotest.(check int) "all rejected" 0 (Lm.count m));
    Alcotest.test_case "weights serialization round-trips" `Quick (fun () ->
        let m = Lm.create ~dim:3 () in
        for i = 1 to 12 do
          let x = float_of_int i in
          Lm.observe m [| x; x *. x; 1.0 /. x |] (0.001 *. x)
        done;
        Lm.fit m;
        let w = Option.get (Lm.weights m) in
        let s = Lm.weights_to_string w in
        Alcotest.(check bool) "single line" false (String.contains s '\n');
        (match Lm.weights_of_string s with
        | None -> Alcotest.fail "round-trip parse failed"
        | Some w' ->
          let probe = [| 5.0; 25.0; 0.2 |] in
          let p = Option.get (Lm.predict m probe) in
          let m' = Lm.create ~warm:w' ~dim:3 () in
          let p' = Option.get (Lm.predict m' probe) in
          Alcotest.(check (float 1e-12)) "same prediction" p p');
        List.iter
          (fun bad ->
            if not (Option.is_none (Lm.weights_of_string bad)) then
              Alcotest.failf "accepted corrupt weights %S" bad)
          [
            "";
            "garbage";
            "lm1 3";
            "lm1 2 1 1 1 1 1 1";            (* six values, dim 2 needs seven *)
            "lm1 3 1 1 1 0 1 1 1 1 1 1"     (* zero scale *) ^ "";
            String.concat " " [ "lm1"; "3"; "1"; "1"; "1"; "1"; "1"; "1"; "1"; "1"; "nan"; "1" ];
          ]);
    Alcotest.test_case "warm weights of the wrong width are dropped" `Quick (fun () ->
        let m = Lm.create ~dim:2 () in
        for i = 1 to 8 do
          Lm.observe m [| float_of_int i; 1.0 |] (0.01 *. float_of_int i)
        done;
        Lm.fit m;
        let w = Option.get (Lm.weights m) in
        let m' = Lm.create ~warm:w ~dim:5 () in
        Alcotest.(check bool) "no prediction from mismatched warm" true
          (Option.is_none (Lm.predict m' (Array.make 5 1.0))));
  ]

let replay_suite =
  [
    Alcotest.test_case "bit-identical across job counts" `Slow (fun () ->
        let o1, w1 = guided ~jobs:1 mm128 in
        let o4, w4 = guided ~jobs:4 mm128 in
        Alcotest.(check int) "best index" o1.Tuner.best_index o4.Tuner.best_index;
        Alcotest.(check (float 0.0)) "best seconds" o1.best_seconds o4.best_seconds;
        Alcotest.(check int) "measured" o1.report.measured o4.report.measured;
        Alcotest.(check int) "batches" o1.report.batches o4.report.batches;
        Alcotest.(check (float 0.0)) "model rmse" o1.report.model_rmse o4.report.model_rmse;
        match (w1, w4) with
        | Some w1, Some w4 ->
          Alcotest.(check string) "weights" (Lm.weights_to_string w1) (Lm.weights_to_string w4)
        | _ -> Alcotest.fail "guided tune returned no model weights");
  ]

let acceptance_suite =
  [
    Alcotest.test_case "99% of brute force from <=10% of the space" `Slow (fun () ->
        let check_one (name, space, build) =
          let bb = blackbox (name, space, build) in
          let g, _ = guided (name, space, build) in
          let n = List.length space in
          let quality = bb.Tuner.best_seconds /. g.Tuner.best_seconds in
          if quality < 0.99 then
            Alcotest.failf "%s: guided %.4f of brute force (bb %.3e s, guided %.3e s)" name
              quality bb.best_seconds g.best_seconds;
          if g.report.measured * 10 > n then
            Alcotest.failf "%s: measured %d of %d (> 10%%)" name g.report.measured n;
          Alcotest.(check bool)
            (name ^ " hardware budget shrank") true
            (g.report.hardware_seconds < bb.report.hardware_seconds /. 5.0)
        in
        check_one mm128;
        check_one (Lazy.force conv288);
        check_one (Lazy.force conv528));
  ]

let warm_start_suite =
  [
    Alcotest.test_case "warm start measures no more than cold" `Slow (fun () ->
        let cold, w = guided (Lazy.force conv288) in
        let w = Option.get w in
        let cfg = { (Tuner.guided_defaults ~seed) with Tuner.gc_warm = Some w } in
        let warm, _ = guided ~cfg (Lazy.force conv288) in
        Alcotest.(check bool)
          (Printf.sprintf "measured warm %d <= cold %d" warm.Tuner.report.measured
             cold.Tuner.report.measured)
          true
          (warm.report.measured <= cold.report.measured);
        (* The warm run must still land on a winner of the same quality. *)
        Alcotest.(check bool) "same-quality winner" true
          (warm.best_seconds <= cold.best_seconds *. 1.02));
    Alcotest.test_case "weights transfer through the schedule cache" `Quick (fun () ->
        let cache = Cache.create () in
        let m = Lm.create ~dim:Swatop.Sched_features.dim () in
        for i = 1 to 8 do
          let f = Array.init Swatop.Sched_features.dim (fun j -> float_of_int ((i * j) mod 7)) in
          Lm.observe m f (1e-3 *. float_of_int i)
        done;
        Lm.fit m;
        let w = Option.get (Lm.weights m) in
        Cache.remember_model cache ~family:"matmul" ~version:Lm.format_version
          (Lm.weights_to_string w);
        (match Cache.find_model cache ~family:"matmul" ~version:Lm.format_version with
        | None -> Alcotest.fail "stored model not found"
        | Some payload ->
          Alcotest.(check bool) "payload parses" true
            (Option.is_some (Lm.weights_of_string payload)));
        Alcotest.(check bool) "format bump misses" true
          (Option.is_none
             (Cache.find_model cache ~family:"matmul" ~version:(Lm.format_version + 1))));
  ]

let fault_suite =
  [
    Alcotest.test_case "crashed winner cannot win a guided tune" `Slow (fun () ->
        let clean, _ = guided (Lazy.force conv288) in
        let spec = Printf.sprintf "seed=5;tuner.score:key=%d" clean.Tuner.best_index in
        let plan =
          match Prelude.Fault.parse spec with
          | Ok p -> p
          | Error e -> Alcotest.failf "bad fault spec: %s" e
        in
        Prelude.Fault.set (Some plan);
        Fun.protect
          ~finally:(fun () -> Prelude.Fault.set None)
          (fun () ->
            let faulted, _ = guided (Lazy.force conv288) in
            Alcotest.(check bool) "winner changed" true
              (faulted.Tuner.best_index <> clean.Tuner.best_index);
            Alcotest.(check bool) "crash recorded" true
              (faulted.report.scored_failed <> []);
            (* Still a sound, measured winner close to the clean one. *)
            Alcotest.(check bool) "winner still competitive" true
              (faulted.best_seconds <= clean.best_seconds *. 1.10)));
  ]

let cache_v2_suite =
  [
    Alcotest.test_case "search modes never collide" `Quick (fun () ->
        let k_ex = Cache.key ~op:"matmul" ~dims:[ 128; 128; 128 ] () in
        let k_g = Cache.key ~search:"guided" ~op:"matmul" ~dims:[ 128; 128; 128 ] () in
        Alcotest.(check bool) "distinct keys" true (k_ex <> k_g);
        let cache = Cache.create () in
        Cache.remember cache ~key:k_ex { fingerprint = 7; space_size = 500; index = 3; seconds = 1e-3 };
        Alcotest.(check bool) "guided key misses exhaustive entry" true
          (Option.is_none (Cache.find cache ~key:k_g ~fingerprint:7 ~space_size:500)));
    Alcotest.test_case "model entries survive save/load" `Quick (fun () ->
        let path = Filename.temp_file "swatop" ".cache" in
        let cache = Cache.create () in
        Cache.remember cache
          ~key:(Cache.key ~search:"guided" ~op:"matmul" ~dims:[ 128; 128; 128 ] ())
          { fingerprint = 11; space_size = 500; index = 41; seconds = 2e-3 };
        Cache.remember_model cache ~family:"matmul" ~version:Lm.format_version "lm1 1 0 1 0 0";
        Cache.save path cache;
        let back = Cache.load path in
        Alcotest.(check int) "entries" 1 (Cache.size back);
        Alcotest.(check int) "models" 1 (Cache.model_count back);
        Alcotest.(check (option string)) "payload" (Some "lm1 1 0 1 0 0")
          (Cache.find_model back ~family:"matmul" ~version:Lm.format_version);
        Sys.remove path);
    Alcotest.test_case "v1 header and corrupt model lines load cold" `Quick (fun () ->
        let write path lines =
          let oc = open_out path in
          List.iter (fun l -> output_string oc (l ^ "\n")) lines;
          close_out oc
        in
        let check_cold label lines =
          let path = Filename.temp_file "swatop" ".cache" in
          write path lines;
          let c = Cache.load path in
          Alcotest.(check int) (label ^ ": no entries") 0 (Cache.size c);
          Alcotest.(check int) (label ^ ": no models") 0 (Cache.model_count c);
          List.iter (fun p -> if Sys.file_exists p then Sys.remove p)
            [ path; path ^ ".corrupt" ]
        in
        check_cold "v1 header"
          [ "swatop-schedule-cache v1"; "matmul:128x128x128\t7\t500\t3\t0.001" ];
        check_cold "truncated model line" [ "swatop-schedule-cache v2"; "M\tmatmul" ];
        check_cold "non-numeric model version"
          [ "swatop-schedule-cache v2"; "M\tmatmul\tone\tlm1 1 0 1 0 0" ]);
  ]

let suite =
  feature_suite @ model_suite @ replay_suite @ acceptance_suite @ warm_start_suite @ fault_suite
  @ cache_v2_suite
