(* Edge cases and failure injection across the stack: degenerate problem
   shapes, invalid specifications, and the boundary machinery on the
   paper's "unaligned" shapes. *)

open Swatop_ops
module Spec = Swtensor.Conv_spec

let gemm_model = lazy (Swatop.Gemm_cost.fit ())

let spec_suite =
  [
    Alcotest.test_case "conv spec rejects bad dimensions" `Quick (fun () ->
        let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
        Alcotest.(check bool) "zero channel" true
          (bad (fun () -> Spec.create ~b:1 ~ni:0 ~no:1 ~ro:4 ~co:4 ~kr:3 ~kc:3 ()));
        Alcotest.(check bool) "negative pad" true
          (bad (fun () -> Spec.create ~b:1 ~ni:1 ~no:1 ~ro:4 ~co:4 ~kr:3 ~kc:3 ~pad:(-1) ()));
        Alcotest.(check bool) "pad swallows input" true
          (bad (fun () -> Spec.create ~b:1 ~ni:1 ~no:1 ~ro:1 ~co:1 ~kr:1 ~kc:1 ~pad:3 ())));
    Alcotest.test_case "operators reject out-of-domain specs" `Quick (fun () ->
        let strided = Spec.create ~b:1 ~ni:4 ~no:4 ~ro:4 ~co:4 ~kr:3 ~kc:3 ~stride:2 ~pad:1 () in
        Alcotest.(check bool) "implicit" false (Conv_implicit.applicable strided);
        Alcotest.(check bool) "winograd" false (Conv_winograd.applicable strided);
        (* explicit GEMM is the guaranteed fallback: it takes everything *)
        Alcotest.(check bool) "explicit" true (Conv_explicit.applicable strided);
        let k5 = Spec.create ~b:1 ~ni:4 ~no:4 ~ro:4 ~co:4 ~kr:5 ~kc:5 () in
        Alcotest.(check bool) "winograd needs 3x3" false (Conv_winograd.applicable k5);
        Alcotest.(check bool) "implicit takes 5x5" true (Conv_implicit.applicable k5));
    Alcotest.test_case "strided padded conv falls back to explicit numerically" `Quick (fun () ->
        let spec = Spec.create ~b:2 ~ni:4 ~no:4 ~ro:4 ~co:4 ~kr:3 ~kc:3 ~stride:2 ~pad:1 () in
        let input = Swtensor.Tensor.random ~seed:11 (Spec.input_shape spec) in
        let weight = Swtensor.Tensor.random ~seed:12 (Spec.weight_shape spec) in
        match Dispatch.best_opt ~top_k:1 ~gemm_model:(Lazy.force gemm_model) spec with
        | None -> Alcotest.fail "explicit fallback must apply"
        | Some choice ->
          Alcotest.(check bool) "explicit won (only applicable)" true
            (choice.Dispatch.c_algo = Dispatch.Explicit);
          let bindings = choice.Dispatch.c_bindings_for ~input ~weight in
          ignore (Swatop.Interp.run ~bindings ~numeric:true choice.Dispatch.c_program);
          Alcotest.(check bool) "matches direct conv" true
            (Swtensor.Tensor.approx_equal
               (Swtensor.Conv_ref.forward spec ~input ~weight)
               (choice.Dispatch.c_unpack bindings)));
    Alcotest.test_case "1x1 convolution works end to end" `Quick (fun () ->
        let spec = Spec.create ~b:2 ~ni:6 ~no:8 ~ro:5 ~co:5 ~kr:1 ~kc:1 () in
        let t = Conv_implicit.problem spec in
        let s = List.hd (Conv_implicit.space t) in
        let input = Swtensor.Tensor.random ~seed:1 (Spec.input_shape spec) in
        let weight = Swtensor.Tensor.random ~seed:2 (Spec.weight_shape spec) in
        let p = Swatop.Tuner.prepare (Conv_implicit.build t s) in
        let bindings = Conv_implicit.bindings_for t s ~input ~weight in
        ignore (Swatop.Interp.run ~bindings ~numeric:true p);
        Alcotest.(check bool) "correct" true
          (Swtensor.Tensor.approx_equal
             (Swtensor.Conv_ref.forward spec ~input ~weight)
             (Conv_implicit.unpack_output t bindings)));
    Alcotest.test_case "degenerate 1x1 spatial output" `Quick (fun () ->
        let spec = Spec.create ~b:2 ~ni:4 ~no:4 ~ro:1 ~co:1 ~kr:3 ~kc:3 () in
        let t = Conv_implicit.problem spec in
        let s = List.hd (Conv_implicit.space t) in
        let input = Swtensor.Tensor.random ~seed:3 (Spec.input_shape spec) in
        let weight = Swtensor.Tensor.random ~seed:4 (Spec.weight_shape spec) in
        let p = Swatop.Tuner.prepare (Conv_implicit.build t s) in
        let bindings = Conv_implicit.bindings_for t s ~input ~weight in
        ignore (Swatop.Interp.run ~bindings ~numeric:true p);
        Alcotest.(check bool) "correct" true
          (Swtensor.Tensor.approx_equal
             (Swtensor.Conv_ref.forward spec ~input ~weight)
             (Conv_implicit.unpack_output t bindings)));
  ]

let boundary_suite =
  [
    Alcotest.test_case "unaligned GEMM spaces include boundary policies" `Quick (fun () ->
        let t = Matmul.problem ~m:500 ~n:500 ~k:500 in
        let space = Matmul.space t in
        let has p = List.exists (fun (s : Matmul.strategy) -> s.boundary = p) space in
        Alcotest.(check bool) "switch" true (has Op_common.Switch);
        Alcotest.(check bool) "pad-light" true (has Op_common.Pad_light);
        Alcotest.(check bool) "pad-full" true (has Op_common.Pad_full));
    Alcotest.test_case "paper's unaligned shapes get ragged candidates" `Quick (fun () ->
        List.iter
          (fun dim ->
            let t = Matmul.problem ~m:dim ~n:dim ~k:dim in
            let ragged =
              List.exists
                (fun (s : Matmul.strategy) ->
                  dim mod s.fm <> 0 || dim mod s.fn <> 0 || dim mod s.fk <> 0)
                (Matmul.space t)
            in
            Alcotest.(check bool) (Printf.sprintf "%d has ragged tiles" dim) true ragged)
          [ 200; 500; 1000; 2000; 4000; 8000 ]);
    Alcotest.test_case "pad-light numerics on a pow2-tiled unaligned GEMM" `Quick (fun () ->
        let t = Matmul.problem ~m:50 ~n:50 ~k:50 in
        let s =
          {
            Matmul.fm = 32;
            fn = 32;
            fk = 32;
            n_outer = false;
            vec = Primitives.Spm_gemm.Vec_m;
            boundary = Op_common.Pad_light;
            prefetch = true;
          }
        in
        let a = Swtensor.Tensor.random ~seed:5 (Swtensor.Shape.of_list [ 50; 50 ]) in
        let b = Swtensor.Tensor.random ~seed:6 (Swtensor.Shape.of_list [ 50; 50 ]) in
        let p = Swatop.Tuner.prepare (Matmul.build t s) in
        let bindings = Matmul.bindings_for t s ~a ~b in
        ignore (Swatop.Interp.run ~bindings ~numeric:true p);
        Alcotest.(check bool) "correct" true
          (Swtensor.Tensor.approx_equal (Matmul.reference ~a ~b) (Matmul.unpack_c t bindings)));
    Alcotest.test_case "boundary policies cost differently on ragged shapes" `Quick (fun () ->
        let t = Matmul.problem ~m:200 ~n:200 ~k:200 in
        let s =
          {
            Matmul.fm = 128;
            fn = 128;
            fk = 128;
            n_outer = false;
            vec = Primitives.Spm_gemm.Vec_m;
            boundary = Op_common.Switch;
            prefetch = true;
          }
        in
        let time boundary =
          (Swatop.Interp.run ~numeric:false (Swatop.Tuner.prepare (Matmul.build t { s with boundary })))
            .Swatop.Interp.seconds
        in
        let sw = time Op_common.Switch
        and light = time Op_common.Pad_light
        and full = time Op_common.Pad_full in
        (* traditional padding must be the most expensive of the three here *)
        Alcotest.(check bool)
          (Printf.sprintf "full %.3g worst (sw %.3g light %.3g)" full sw light)
          true
          (full > sw && full > light));
  ]

let capacity_suite =
  [
    Alcotest.test_case "every space strategy survives the full pipeline" `Slow (fun () ->
        (* SPM validity as enumerated must agree with the checker after the
           optimizer passes (double buffering, staging buffers). *)
        List.iter
          (fun (m, n, k) ->
            let t = Matmul.problem ~m ~n ~k in
            List.iter
              (fun s -> ignore (Swatop.Tuner.prepare (Matmul.build t s)))
              (Matmul.space t))
          [ (2000, 2000, 2000); (500, 500, 500) ]);
  ]

let misc_suite =
  [
    Alcotest.test_case "matmul degenerate 1x1x1" `Quick (fun () ->
        let t = Matmul.problem ~m:1 ~n:1 ~k:1 in
        let s = List.hd (Matmul.space t) in
        let a = Swtensor.Tensor.of_array (Swtensor.Shape.of_list [ 1; 1 ]) [| 3.0 |] in
        let b = Swtensor.Tensor.of_array (Swtensor.Shape.of_list [ 1; 1 ]) [| 4.0 |] in
        let p = Swatop.Tuner.prepare (Matmul.build t s) in
        let bindings = Matmul.bindings_for t s ~a ~b in
        ignore (Swatop.Interp.run ~bindings ~numeric:true p);
        Alcotest.(check (float 1e-9)) "3*4" 12.0
          (Swtensor.Tensor.get (Matmul.unpack_c t bindings) [| 0; 0 |]));
    Alcotest.test_case "every sweep spec builds a valid implicit space" `Slow (fun () ->
        List.iter
          (fun spec ->
            let t = Conv_implicit.problem spec in
            let space = Conv_implicit.space t in
            Alcotest.(check bool)
              (Spec.to_string spec ^ " space non-empty")
              true (space <> []);
            (* the first and last strategies pass the full pipeline *)
            List.iter
              (fun s -> ignore (Swatop.Tuner.prepare (Conv_implicit.build t s)))
              [ List.hd space; List.nth space (List.length space - 1) ])
          (Prelude.Lists.take_every 9 (Workloads.Sweeps.listing1 ~batch:32)));
    Alcotest.test_case "swdnn fixed strategy is inside swATOP's search domain" `Quick (fun () ->
        (* same machinery, same validity rules: the baseline must pass the
           same structural checks as any candidate *)
        let spec = Spec.create ~b:32 ~ni:128 ~no:128 ~ro:28 ~co:28 ~kr:3 ~kc:3 () in
        match Baselines.Swdnn.build (Conv_implicit.problem spec) with
        | None -> Alcotest.fail "supported spec"
        | Some p -> ignore (Swatop.Tuner.prepare p));
    Alcotest.test_case "dispatch across the tuned ops agrees with direct conv" `Quick (fun () ->
        let spec = Spec.create ~b:2 ~ni:8 ~no:8 ~ro:8 ~co:8 ~kr:3 ~kc:3 () in
        let choice = Dispatch.best ~top_k:1 ~gemm_model:(Lazy.force gemm_model) spec in
        Alcotest.(check bool) "positive" true (choice.Dispatch.c_seconds > 0.0))
  ]

let suite = spec_suite @ boundary_suite @ capacity_suite @ misc_suite
