(* The IR verifier: hazard/bounds analyses must accept every real schedule
   the ops produce, and a mutation harness checks that seeded defects are
   caught with the right diagnostic code. *)

open Swatop
open Swatop_ops

let gemm_model = lazy (Gemm_cost.fit ())

let show_diags ds = String.concat "\n" (List.map Ir_verify.to_string ds)

let assert_clean what p =
  let ds = Ir_verify.verify p in
  match Ir_verify.errors ds with
  | [] -> ()
  | _ -> Alcotest.failf "%s: unexpected verifier errors:\n%s" what (show_diags ds)

let has_error code ds =
  List.exists (fun (d : Ir_verify.diagnostic) -> d.code = code && d.severity = Ir_verify.Error) ds

let assert_flags what code p =
  let ds = Ir_verify.verify p in
  if not (has_error code ds) then
    Alcotest.failf "%s: expected %s, got:\n%s" what code
      (if ds = [] then "(no diagnostics)" else show_diags ds)

(* ------------------------------------------------------------------ *)
(* Fixtures *)

let matmul_strategy ?(fm = 16) ?(fn = 16) ?(fk = 16) ?(boundary = Op_common.Switch)
    ?(prefetch = true) () =
  { Matmul.fm; fn; fk; n_outer = false; vec = Primitives.Spm_gemm.Vec_m; boundary; prefetch }

let prepared_matmul ?(m = 64) ?(n = 48) ?(k = 32) ?boundary ?prefetch () =
  let t = Matmul.problem ~m ~n ~k in
  Tuner.prepare (Matmul.build t (matmul_strategy ?boundary ?prefetch ()))

let check_space what space build describe =
  List.iter (fun s -> assert_clean (what ^ ": " ^ describe s) (Tuner.prepare (build s))) space

(* ------------------------------------------------------------------ *)
(* Every real schedule is clean *)

let clean_suite =
  [
    Alcotest.test_case "aligned matmul, with and without prefetch" `Quick (fun () ->
        assert_clean "prefetch" (prepared_matmul ~prefetch:true ());
        assert_clean "no prefetch" (prepared_matmul ~prefetch:false ()));
    Alcotest.test_case "ragged matmul, all boundary policies x prefetch" `Quick (fun () ->
        List.iter
          (fun boundary ->
            List.iter
              (fun prefetch ->
                assert_clean "ragged 100x60x52"
                  (prepared_matmul ~m:100 ~n:60 ~k:52 ~boundary ~prefetch ()))
              [ true; false ])
          [ Op_common.Switch; Op_common.Pad_light; Op_common.Pad_full ]);
    Alcotest.test_case "whole matmul space 96x80x48" `Quick (fun () ->
        let t = Matmul.problem ~m:96 ~n:80 ~k:48 in
        check_space "matmul" (Matmul.space t) (Matmul.build t) Matmul.describe);
    Alcotest.test_case "whole implicit-conv space" `Quick (fun () ->
        let spec = Swtensor.Conv_spec.create ~b:4 ~ni:16 ~no:16 ~ro:12 ~co:12 ~kr:3 ~kc:3 () in
        let t = Conv_implicit.problem spec in
        check_space "implicit" (Conv_implicit.space t) (Conv_implicit.build t)
          Conv_implicit.describe);
    Alcotest.test_case "whole winograd space" `Quick (fun () ->
        let spec = Swtensor.Conv_spec.create ~b:2 ~ni:16 ~no:16 ~ro:12 ~co:12 ~kr:3 ~kc:3 () in
        let t = Conv_winograd.problem spec in
        check_space "winograd" (Conv_winograd.space t) (Conv_winograd.build t)
          Conv_winograd.describe);
    Alcotest.test_case "whole explicit-conv space" `Quick (fun () ->
        let spec = Swtensor.Conv_spec.create ~b:2 ~ni:8 ~no:8 ~ro:8 ~co:8 ~kr:3 ~kc:3 () in
        let t = Conv_explicit.problem spec in
        check_space "explicit" (Conv_explicit.space t) (Conv_explicit.build t)
          Conv_explicit.describe);
    Alcotest.test_case "fig5-style VGG layer, subsampled space" `Quick (fun () ->
        let spec = Swtensor.Conv_spec.create ~b:8 ~ni:64 ~no:64 ~ro:28 ~co:28 ~kr:3 ~kc:3 () in
        let t = Conv_implicit.problem spec in
        check_space "vgg implicit"
          (Prelude.Lists.take_every 5 (Conv_implicit.space t))
          (Conv_implicit.build t) Conv_implicit.describe);
    Alcotest.test_case "unwaited get is a warning, not an error" `Quick (fun () ->
        let bufs = [ Ir.main_buf ~name:"X" ~elems:64; Ir.spm_buf ~name:"x" ~cg_elems:64 ~cpe_elems:1 ] in
        let get =
          Ir.Dma
            {
              dir = Ir.Get;
              main = "X";
              spm = "x";
              tag = Ir.int 0;
              region =
                { offset = Ir.int 0; rows = Ir.int 1; row_elems = Ir.int 64; row_stride = Ir.int 64 };
              spm_offset = Ir.int 0;
              spm_ld = Ir.int 64;
              partition = Ir.P_rows;
              per_cpe = None;
            }
        in
        let p = Ir.program ~name:"unwaited" ~bufs get in
        let ds = Ir_verify.verify p in
        Alcotest.(check bool) "clean of errors" true (Ir_verify.is_clean ds);
        Alcotest.(check bool) "SWA005 warning present" true
          (List.exists (fun (d : Ir_verify.diagnostic) -> d.code = "SWA005") ds));
  ]

(* ------------------------------------------------------------------ *)
(* Mutation harness: seed one defect into a real tuned program and check
   the diagnostic code. *)

let mutate_first what pred f (p : Ir.program) =
  let fired = ref false in
  let body =
    Ir.map_stmt
      (fun s ->
        if (not !fired) && pred s then begin
          fired := true;
          f s
        end
        else s)
      p.Ir.body
  in
  if not !fired then Alcotest.failf "%s: mutation found no statement to seed" what;
  { p with Ir.body }

let is_get = function Ir.Dma { dir = Ir.Get; _ } -> true | _ -> false

let on_get f = function Ir.Dma ({ dir = Ir.Get; _ } as d) -> f d | s -> s

let big = Ir.int 1_000_000

let drop_wait p =
  mutate_first "drop wait" (function Ir.Dma_wait _ -> true | _ -> false) (fun _ -> Ir.Seq []) p

let flip_parity p =
  mutate_first "flip parity" is_get
    (on_get (fun d -> Ir.Dma { d with tag = Ir.(d.tag + (int 1 - (int 2 * (d.tag % int 2)))) }))
    p

let oversize_region p =
  mutate_first "oversize region" is_get
    (on_get (fun d ->
         Ir.Dma { d with Ir.region = { d.Ir.region with Ir.offset = Ir.(d.Ir.region.Ir.offset + big) } }))
    p

let oversize_per_cpe p =
  mutate_first "oversize per-cpe" is_get
    (on_get (fun d ->
         match d.Ir.per_cpe with
         | None -> Ir.Dma d
         | Some c -> Ir.Dma { d with Ir.per_cpe = Some { c with Ir.d_offset = Ir.(c.Ir.d_offset + big) } }))
    p

let oversize_spm p =
  mutate_first "oversize spm" is_get
    (on_get (fun d -> Ir.Dma { d with Ir.spm_offset = Ir.(d.Ir.spm_offset + big) }))
    p

let oversize_gemm p =
  mutate_first "oversize gemm"
    (function Ir.Gemm _ -> true | _ -> false)
    (function
      | Ir.Gemm g -> Ir.Gemm { g with Ir.a = { g.Ir.a with Ir.g_offset = Ir.(g.Ir.a.Ir.g_offset + big) } }
      | s -> s)
    p

let oversize_memset p =
  mutate_first "oversize memset"
    (function Ir.Memset_spm _ -> true | _ -> false)
    (function
      | Ir.Memset_spm { buf; offset; elems } ->
        Ir.Memset_spm { buf; offset; elems = Ir.(elems + big) }
      | s -> s)
    p

let div_by_zero p =
  mutate_first "div by zero"
    (function Ir.Gemm _ -> true | _ -> false)
    (function Ir.Gemm g -> Ir.Gemm { g with Ir.m = Ir.Div (g.Ir.m, Ir.Const 0) } | s -> s)
    p

let double_issue p =
  mutate_first "double issue" is_get (fun s -> Ir.Seq [ s; s ]) p

let extra_wait (p : Ir.program) =
  { p with Ir.body = Ir.Seq [ p.Ir.body; Ir.Dma_wait { tag = Ir.int 999 } ] }

let mutation_suite =
  [
    Alcotest.test_case "dropped dma_wait -> SWA001" `Quick (fun () ->
        assert_flags "drop wait" "SWA001" (drop_wait (prepared_matmul ())));
    Alcotest.test_case "flipped parity tag -> SWA004" `Quick (fun () ->
        assert_flags "flip parity" "SWA004" (flip_parity (prepared_matmul ())));
    Alcotest.test_case "out-of-bounds region -> SWA010" `Quick (fun () ->
        assert_flags "oversize region" "SWA010" (oversize_region (prepared_matmul ())));
    Alcotest.test_case "out-of-bounds per-CPE descriptor -> SWA011" `Quick (fun () ->
        let ds = Ir_verify.verify (oversize_per_cpe (prepared_matmul ())) in
        Alcotest.(check bool) "SWA011" true (has_error "SWA011" ds);
        Alcotest.(check bool) "no SWA010 (region itself is fine)" false (has_error "SWA010" ds));
    Alcotest.test_case "out-of-bounds SPM image -> SWA012" `Quick (fun () ->
        assert_flags "oversize spm" "SWA012" (oversize_spm (prepared_matmul ())));
    Alcotest.test_case "out-of-bounds GEMM operand -> SWA013" `Quick (fun () ->
        assert_flags "oversize gemm" "SWA013" (oversize_gemm (prepared_matmul ())));
    Alcotest.test_case "out-of-bounds memset -> SWA016" `Quick (fun () ->
        assert_flags "oversize memset" "SWA016" (oversize_memset (prepared_matmul ())));
    Alcotest.test_case "division by zero -> SWA020" `Quick (fun () ->
        assert_flags "div by zero" "SWA020" (div_by_zero (prepared_matmul ())));
    Alcotest.test_case "wait with no issue -> SWA002" `Quick (fun () ->
        assert_flags "extra wait" "SWA002" (extra_wait (prepared_matmul ())));
    Alcotest.test_case "double-issued get -> SWA003" `Quick (fun () ->
        assert_flags "double issue" "SWA003" (double_issue (prepared_matmul ())));
    Alcotest.test_case "spm_copy overflow -> SWA014" `Quick (fun () ->
        let bufs =
          [
            Ir.spm_buf ~name:"src" ~cg_elems:64 ~cpe_elems:1;
            Ir.spm_buf ~name:"dst" ~cg_elems:64 ~cpe_elems:1;
          ]
        in
        let copy =
          Ir.Spm_copy
            {
              cp_src = "src";
              cp_src_offset = Ir.int 0;
              cp_src_ld = Ir.int 64;
              cp_dst = "dst";
              cp_dst_offset = Ir.int 0;
              cp_dst_ld = Ir.int 32;
              cp_rows = Ir.int 2;
              cp_row_elems = Ir.int 32;
            }
        in
        assert_flags "spm_copy" "SWA014" (Ir.program ~name:"copy_oob" ~bufs copy));
    Alcotest.test_case "transform overflow -> SWA015" `Quick (fun () ->
        let bufs =
          [
            Ir.spm_buf ~name:"raw" ~cg_elems:64 ~cpe_elems:1;
            Ir.spm_buf ~name:"u" ~cg_elems:256 ~cpe_elems:1;
          ]
        in
        let tf =
          Ir.Transform
            {
              kind = Ir.Wino_filter;
              t_src = "raw";
              t_src_offset = Ir.int 0;
              t_dst = "u";
              t_dst_offset = Ir.int 0;
              t_chans = Ir.int 8;
              t_tiles_r = Ir.int 1;
              t_tiles_c = Ir.int 1;
              t_src_ld = Ir.int 9;
            }
        in
        (* 8 filters of 9 elements need 72 > 64 source elements *)
        assert_flags "transform" "SWA015" (Ir.program ~name:"tf_oob" ~bufs tf));
    Alcotest.test_case "the four canonical mutations get distinct codes" `Quick (fun () ->
        let codes = [ "SWA001"; "SWA004"; "SWA010"; "SWA020" ] in
        Alcotest.(check int) "distinct" (List.length codes)
          (List.length (List.sort_uniq String.compare codes));
        List.iter2
          (fun code mutate -> assert_flags code code (mutate (prepared_matmul ())))
          codes
          [ drop_wait; flip_parity; oversize_region; div_by_zero ]);
  ]

(* ------------------------------------------------------------------ *)
(* Tuner integration *)

let tuner_suite =
  [
    Alcotest.test_case "rejected candidates are counted and cannot win" `Quick (fun () ->
        let t = Matmul.problem ~m:64 ~n:48 ~k:32 in
        let s = matmul_strategy () in
        let build = function
          | `Good -> Matmul.build t s
          | `Bad -> extra_wait (Matmul.build t s)
        in
        let o =
          Tuner.model_tune ~gemm_model:(Lazy.force gemm_model) ~candidates:[ `Bad; `Good ] ~build
            ()
        in
        Alcotest.(check bool) "good candidate wins" true (o.Tuner.best = `Good);
        Alcotest.(check int) "winner index" 1 o.Tuner.best_index;
        Alcotest.(check (list (pair string int)))
          "rejection counts" [ ("SWA002", 1) ] o.Tuner.report.Tuner.verify_rejected);
    Alcotest.test_case "an all-rejected space raises" `Quick (fun () ->
        let t = Matmul.problem ~m:64 ~n:48 ~k:32 in
        let build `Bad = extra_wait (Matmul.build t (matmul_strategy ())) in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Tuner.model_tune ~gemm_model:(Lazy.force gemm_model) ~candidates:[ `Bad; `Bad ]
                  ~build ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "blackbox tuner also rejects" `Quick (fun () ->
        let t = Matmul.problem ~m:64 ~n:48 ~k:32 in
        let s = matmul_strategy () in
        let build = function
          | `Good -> Matmul.build t s
          | `Bad -> extra_wait (Matmul.build t s)
        in
        let o = Tuner.blackbox_tune ~candidates:[ `Bad; `Good ] ~build () in
        Alcotest.(check bool) "good candidate wins" true (o.Tuner.best = `Good);
        Alcotest.(check (list (pair string int)))
          "rejection counts" [ ("SWA002", 1) ] o.Tuner.report.Tuner.verify_rejected);
  ]

let suite = clean_suite @ mutation_suite @ tuner_suite
