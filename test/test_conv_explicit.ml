(* Explicit-GEMM (im2col) convolution end-to-end checks. *)

open Swatop_ops
module Spec = Swtensor.Conv_spec

let run t s ~input ~weight =
  let p = Swatop.Tuner.prepare (Conv_explicit.build t s) in
  let bindings = Conv_explicit.bindings_for t s ~input ~weight in
  let r = Swatop.Interp.run ~bindings ~numeric:true p in
  (Conv_explicit.unpack_output t bindings, r)

let small_spec ?(b = 2) ?(ni = 5) ?(no = 9) ?(ro = 6) ?(co = 7) () =
  Spec.create ~b ~ni ~no ~ro ~co ~kr:3 ~kc:3 ()

let check_strategy spec s =
  let t = Conv_explicit.problem spec in
  let input = Swtensor.Tensor.random ~seed:61 (Spec.input_shape spec) in
  let weight = Swtensor.Tensor.random ~seed:62 (Spec.weight_shape spec) in
  let expected = Swtensor.Conv_ref.forward spec ~input ~weight in
  let got, r = run t s ~input ~weight in
  if not (Swtensor.Tensor.approx_equal expected got) then
    Alcotest.failf "strategy %s wrong (max diff %g)" (Conv_explicit.describe s)
      (Swtensor.Tensor.max_abs_diff expected got);
  Alcotest.(check bool) "positive time" true (r.Swatop.Interp.seconds > 0.0)

let base =
  {
    Conv_explicit.pi = 2;
    slab_im2col = true;
    fm = 4;
    fn = 16;
    fk = 9;
    n_outer = false;
    vec = Primitives.Spm_gemm.Vec_n;
    boundary = Op_common.Switch;
    prefetch = false;
    gemm_prefetch = false;
  }

let test_base () = check_strategy (small_spec ()) base
let test_prefetch () = check_strategy (small_spec ()) { base with prefetch = true }

let test_pad_light () =
  check_strategy (small_spec ()) { base with boundary = Op_common.Pad_light; prefetch = true }

let test_batch1 () = check_strategy (small_spec ~b:1 ()) { base with prefetch = true }

let test_naive_im2col () =
  check_strategy (small_spec ()) { base with slab_im2col = false; gemm_prefetch = true }

let test_naive_prefetch () =
  check_strategy (small_spec ()) { base with slab_im2col = false; prefetch = true }

let test_slab_ragged_channels () =
  (* pi=2 does not divide ni=5: ragged channel slabs. *)
  check_strategy (small_spec ~ni:5 ()) { base with pi = 2; prefetch = true }

let test_im2col_reference () =
  (* The reference im2col agrees with direct convolution too. *)
  let spec = small_spec () in
  let input = Swtensor.Tensor.random ~seed:71 (Spec.input_shape spec) in
  let weight = Swtensor.Tensor.random ~seed:72 (Spec.weight_shape spec) in
  let direct = Swtensor.Conv_ref.forward spec ~input ~weight in
  let ex = Swtensor.Im2col_ref.forward spec ~input ~weight in
  Alcotest.(check bool) "im2col_ref = conv_ref" true (Swtensor.Tensor.approx_equal direct ex)

let test_strided_space () =
  (* stride=2 pad=1: the generalized fallback space (gather im2col +
     pad embed) must be numerically exact across every candidate. *)
  let spec = Spec.create ~b:2 ~ni:3 ~no:6 ~ro:4 ~co:4 ~kr:3 ~kc:3 ~stride:2 ~pad:1 () in
  let t = Conv_explicit.problem spec in
  let input = Swtensor.Tensor.random ~seed:91 (Spec.input_shape spec) in
  let weight = Swtensor.Tensor.random ~seed:92 (Spec.weight_shape spec) in
  let expected = Swtensor.Conv_ref.forward spec ~input ~weight in
  let space = Conv_explicit.space t in
  Alcotest.(check bool) "space non-empty" true (space <> []);
  List.iter
    (fun (s : Conv_explicit.strategy) ->
      Alcotest.(check bool) "fallback is naive" false s.slab_im2col;
      let got, _ = run t s ~input ~weight in
      if not (Swtensor.Tensor.approx_equal expected got) then
        Alcotest.failf "strategy %s wrong" (Conv_explicit.describe s))
    space

let test_pad_only () =
  (* stride=1 pad=1 exercises the pad-embed phase with the contiguous
     window gets. *)
  let spec = Spec.create ~b:1 ~ni:4 ~no:5 ~ro:6 ~co:6 ~kr:3 ~kc:3 ~pad:1 () in
  let t = Conv_explicit.problem spec in
  let input = Swtensor.Tensor.random ~seed:93 (Spec.input_shape spec) in
  let weight = Swtensor.Tensor.random ~seed:94 (Spec.weight_shape spec) in
  let expected = Swtensor.Conv_ref.forward spec ~input ~weight in
  let got, _ = run t (List.hd (Conv_explicit.space t)) ~input ~weight in
  Alcotest.(check bool) "correct" true (Swtensor.Tensor.approx_equal expected got)

let test_vgg_conv1_1 () =
  (* VGG16's first layer (ni=3) must now dispatch — the whole-network
     runtime depends on it. Tune at a reduced output extent to keep the
     test fast; channels and kernel match conv1_1 exactly. *)
  let l = List.hd Workloads.Networks.vgg16.Workloads.Networks.layers in
  Alcotest.(check string) "conv1_1" "conv1_1" l.Workloads.Networks.l_name;
  let spec =
    Spec.create ~b:1 ~ni:l.Workloads.Networks.ni ~no:l.Workloads.Networks.no ~ro:8 ~co:8
      ~kr:l.Workloads.Networks.k ~kc:l.Workloads.Networks.k ()
  in
  let gemm_model = Swatop.Gemm_cost.fit () in
  let choice = Dispatch.best ~top_k:1 ~gemm_model spec in
  Alcotest.(check bool) "dispatches" true (choice.Dispatch.c_seconds > 0.0);
  (match Dispatch.best_opt ~top_k:1 ~gemm_model spec with
  | None -> Alcotest.fail "best_opt must succeed where best does"
  | Some c -> Alcotest.(check bool) "same algo" true (c.Dispatch.c_algo = choice.Dispatch.c_algo));
  let input = Swtensor.Tensor.random ~seed:95 (Spec.input_shape spec) in
  let weight = Swtensor.Tensor.random ~seed:96 (Spec.weight_shape spec) in
  let bindings = choice.Dispatch.c_bindings_for ~input ~weight in
  ignore (Swatop.Interp.run ~bindings ~numeric:true choice.Dispatch.c_program);
  Alcotest.(check bool) "numerically exact" true
    (Swtensor.Tensor.approx_equal
       (Swtensor.Conv_ref.forward spec ~input ~weight)
       (choice.Dispatch.c_unpack bindings))

let test_whole_space () =
  let spec = small_spec ~b:1 ~ni:4 ~no:6 ~ro:5 ~co:6 () in
  let t = Conv_explicit.problem spec in
  let input = Swtensor.Tensor.random ~seed:81 (Spec.input_shape spec) in
  let weight = Swtensor.Tensor.random ~seed:82 (Spec.weight_shape spec) in
  let expected = Swtensor.Conv_ref.forward spec ~input ~weight in
  let space = Conv_explicit.space t in
  Alcotest.(check bool) "space non-trivial" true (List.length space >= 4);
  List.iter
    (fun s ->
      let got, _ = run t s ~input ~weight in
      if not (Swtensor.Tensor.approx_equal expected got) then
        Alcotest.failf "strategy %s wrong" (Conv_explicit.describe s))
    space

let suite =
  [
    Alcotest.test_case "im2col reference agrees with direct" `Quick test_im2col_reference;
    Alcotest.test_case "base strategy" `Quick test_base;
    Alcotest.test_case "prefetch" `Quick test_prefetch;
    Alcotest.test_case "pad-light boundary" `Quick test_pad_light;
    Alcotest.test_case "batch 1" `Quick test_batch1;
    Alcotest.test_case "naive im2col (manual structure)" `Quick test_naive_im2col;
    Alcotest.test_case "naive im2col + pipeline" `Quick test_naive_prefetch;
    Alcotest.test_case "slab im2col, ragged channels" `Quick test_slab_ragged_channels;
    Alcotest.test_case "strided+padded fallback space correct" `Quick test_strided_space;
    Alcotest.test_case "padding-only fallback correct" `Quick test_pad_only;
    Alcotest.test_case "vgg16 conv1_1 dispatches via fallback" `Quick test_vgg_conv1_1;
    Alcotest.test_case "whole space numerically correct" `Slow test_whole_space;
  ]
