(* The offline-compiler mode: pre-generated kernels and manifest. *)

open Swatop_ops

let gemm_model = lazy (Swatop.Gemm_cost.fit ())

let tiny_net =
  {
    Workloads.Networks.net_name = "tiny";
    layers =
      [
        { Workloads.Networks.l_name = "first"; ni = 3; no = 16; out = 8; k = 3; repeat = 1 };
        { Workloads.Networks.l_name = "mid"; ni = 16; no = 16; out = 8; k = 3; repeat = 1 };
        { Workloads.Networks.l_name = "point"; ni = 16; no = 32; out = 8; k = 1; repeat = 1 };
      ];
  }

let suite =
  [
    Alcotest.test_case "compile_network emits one kernel per eligible layer" `Quick (fun () ->
        let compiled =
          Offline.compile_network ~top_k:1 ~gemm_model:(Lazy.force gemm_model) ~batch:2 tiny_net
        in
        Alcotest.(check (list string)) "eligible layers" [ "mid"; "point" ]
          (List.map (fun l -> l.Offline.cl_name) compiled);
        List.iter
          (fun l ->
            Alcotest.(check bool) "has source" true (String.length l.Offline.cl_source > 200);
            Alcotest.(check string) "symbol" (l.Offline.cl_name ^ "_cpe_kernel")
              l.Offline.cl_kernel_symbol)
          compiled);
    Alcotest.test_case "manifest lists every kernel" `Quick (fun () ->
        let compiled =
          Offline.compile_network ~top_k:1 ~gemm_model:(Lazy.force gemm_model) ~batch:2 tiny_net
        in
        let m = Offline.manifest compiled in
        List.iter
          (fun l ->
            let contains sub =
              let n = String.length m and k = String.length sub in
              let rec loop i = i + k <= n && (String.sub m i k = sub || loop (i + 1)) in
              loop 0
            in
            Alcotest.(check bool) ("mentions " ^ l.Offline.cl_name) true
              (contains l.Offline.cl_kernel_symbol))
          compiled);
    Alcotest.test_case "write_directory produces the files" `Quick (fun () ->
        let dir = Filename.concat (Filename.get_temp_dir_name ()) "swatop_offline_test" in
        let compiled =
          Offline.compile_network ~top_k:1 ~gemm_model:(Lazy.force gemm_model) ~batch:2 tiny_net
        in
        Offline.write_directory ~dir compiled;
        Alcotest.(check bool) "manifest" true (Sys.file_exists (Filename.concat dir "manifest.txt"));
        List.iter
          (fun l ->
            Alcotest.(check bool) (l.Offline.cl_name ^ ".c") true
              (Sys.file_exists (Filename.concat dir (l.Offline.cl_name ^ ".c"))))
          compiled);
    Alcotest.test_case "emitted kernels pass the C compiler" `Quick (fun () ->
        if Sys.command "gcc --version > /dev/null 2>&1" <> 0 then ()
        else begin
          let dir = Filename.concat (Filename.get_temp_dir_name ()) "swatop_offline_gcc" in
          let compiled =
            Offline.compile_network ~top_k:1 ~gemm_model:(Lazy.force gemm_model) ~batch:2 tiny_net
          in
          Offline.write_directory ~dir compiled;
          let runtime =
            List.find Sys.file_exists
              [ "../../../runtime/swatop_runtime.h"; "runtime/swatop_runtime.h" ]
            |> Filename.dirname
          in
          List.iter
            (fun l ->
              let f = Filename.concat dir (l.Offline.cl_name ^ ".c") in
              let cmd =
                Printf.sprintf "gcc -std=c99 -Wall -Werror -fsyntax-only -I %s %s"
                  (Filename.quote runtime) (Filename.quote f)
              in
              Alcotest.(check int) (l.Offline.cl_name ^ " compiles") 0 (Sys.command cmd))
            compiled
        end);
    Alcotest.test_case "strided+padded layers compile via the explicit fallback" `Quick (fun () ->
        (* Explicit GEMM is the guaranteed fallback for any valid spec, so
           even stride-2/padded layers (unreachable by implicit/Winograd)
           compile to a kernel instead of raising. *)
        let spec = Swtensor.Conv_spec.create ~b:1 ~ni:4 ~no:4 ~ro:4 ~co:4 ~kr:3 ~kc:3 ~stride:2 ~pad:1 () in
        let l = Offline.compile_layer ~gemm_model:(Lazy.force gemm_model) ~name:"x" spec in
        Alcotest.(check bool) "has source" true (String.length l.Offline.cl_source > 200));
  ]
