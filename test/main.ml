let () =
  Alcotest.run "swatop"
    [
      ("prelude", Test_prelude.suite);
      ("sw26010", Test_sw26010.suite);
      ("tensor", Test_tensor.suite);
      ("ir", Test_ir.suite);
      ("ir-verify", Test_ir_verify.suite);
      ("ir-race", Test_ir_race.suite);
      ("dsl-scheduler", Test_dsl.suite);
      ("interp", Test_interp.suite);
      ("primitives", Test_primitives.suite);
      ("optimizer", Test_optimizer.suite);
      ("autotuner", Test_autotuner.suite);
      ("parallel-tuner", Test_parallel_tuner.suite);
      ("codegen", Test_codegen.suite);
      ("generated-c", Test_generated_c.suite);
      ("baselines", Test_baselines.suite);
      ("tools", Test_tools.suite);
      ("offline", Test_offline.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("matmul-op", Test_matmul_op.suite);
      ("conv-implicit", Test_conv_implicit.suite);
      ("conv-winograd", Test_conv_winograd.suite);
      ("conv-explicit", Test_conv_explicit.suite);
      ("schedule-cache", Test_schedule_cache.suite);
      ("faults", Test_faults.suite);
      ("graph", Test_graph.suite);
      ("guided-tuner", Test_guided_tuner.suite);
      ("serve", Test_serve.suite);
      ("health", Test_health.suite);
    ]
