(* The cross-CPE race analysis (Ir_race) and its dynamic oracle, the
   shadow-memory sanitizer (Interp.sanitize): every real schedule must be
   race-free under both, and a mutation harness seeds one defect per SWA03x
   code into a real tuned program and checks the exact diagnostic — with
   the sanitizer agreeing wherever the defect is reachable by execution. *)

open Swatop
open Swatop_ops

let gemm_model = lazy (Gemm_cost.fit ())

let show_diags ds = String.concat "\n" (List.map Ir_verify.to_string ds)

let assert_race_free what p =
  match Ir_race.verify p with
  | [] -> ()
  | ds -> Alcotest.failf "%s: unexpected race diagnostics:\n%s" what (show_diags ds)

let has_code code severity ds =
  List.exists (fun (d : Ir_verify.diagnostic) -> d.code = code && d.severity = severity) ds

let assert_flags what code p =
  let ds = Ir_race.verify p in
  if not (has_code code Ir_verify.Error ds) then
    Alcotest.failf "%s: expected error %s, got:\n%s" what code
      (if ds = [] then "(no diagnostics)" else show_diags ds)

let san_kinds p =
  List.sort_uniq compare (List.map (fun (r : Interp.race) -> r.race_kind) (Interp.sanitize p))

(* ------------------------------------------------------------------ *)
(* Fixtures *)

let matmul_problem = lazy (Matmul.problem ~m:96 ~n:80 ~k:48)

let prepared_matmul =
  lazy
    (let t = Lazy.force matmul_problem in
     Tuner.prepare (Matmul.build t (List.hd (Matmul.space t))))

let check_space what space build =
  List.iter (fun s -> assert_race_free what (Tuner.prepare (build s))) space

let mutate f (p : Ir.program) = { p with Ir.body = Ir.map_stmt f p.Ir.body }

(* Collapse every put's per-CPE offset onto the region base: all 64 CPEs
   write the same place. *)
let collide_puts =
  mutate (function
    | Ir.Dma ({ dir = Ir.Put; per_cpe = Some d; _ } as dd) ->
      Ir.Dma { dd with per_cpe = Some { d with d_offset = dd.region.offset } }
    | s -> s)

(* After every put, read the neighbouring CPE's just-written region. *)
let snoop_puts =
  mutate (function
    | Ir.Dma ({ dir = Ir.Put; per_cpe = Some d; _ } as dd) ->
      let snoop =
        Ir.Dma
          { dd with dir = Ir.Get; per_cpe = Some { d with d_offset = Ir.(d.d_offset + d.d_block) } }
      in
      Ir.Seq [ Ir.Dma dd; snoop ]
    | s -> s)

(* Remove the last-iteration drain waits the op builders emit. *)
let drop_drains =
  mutate (function
    | Ir.If { then_ = Ir.Dma_wait _; else_ = Ir.Seq []; _ } -> Ir.Seq []
    | s -> s)

(* ------------------------------------------------------------------ *)
(* Hand-built two-put programs exercising the enumeration fallback: put A is
   CPE (0,0) only, put B CPE (0,1) only, with unequal strides so the
   symbolic ladder is inconclusive (SWA038) and enumeration must settle it. *)

let only_cpe n e =
  (* 1 on the CPE with linear id [n], <= 0 elsewhere *)
  Ir.(Max (int 0, int 1 - ((cpe_linear - int n) * (cpe_linear - int n))) * e)

let two_put_program ~o2 =
  let open Ir in
  let put desc =
    Dma
      {
        dir = Put;
        main = "M";
        spm = "s";
        tag = int 0;
        region = { offset = int 0; rows = int 1; row_elems = int 33; row_stride = int 33 };
        spm_offset = int 0;
        spm_ld = int 33;
        partition = P_rows;
        per_cpe = Some desc;
      }
  in
  let put_a =
    put { d_offset = int 0; d_block = only_cpe 0 (int 2); d_stride = int 8; d_count = int 4 }
  in
  let put_b =
    put { d_offset = int o2; d_block = only_cpe 1 (int 2); d_stride = int 12; d_count = int 2 }
  in
  program ~name:"two_put" ~bufs:[ main_buf ~name:"M" ~elems:64; spm_buf ~name:"s" ~cg_elems:64 ~cpe_elems:1 ]
    (seq [ put_a; put_b; Dma_wait { tag = int 0 } ])

(* A covers {0,1, 8,9, 16,17, 24,25}; o2=2 gives B {2,3, 14,15} (disjoint,
   provable only by enumeration), o2=1 gives B {1,2, 13,14} (1 collides). *)
let enum_disjoint = lazy (two_put_program ~o2:2)
let enum_overlap = lazy (two_put_program ~o2:1)

(* ------------------------------------------------------------------ *)

let clean_suite =
  [
    Alcotest.test_case "whole matmul space 96x80x48 race-free" `Quick (fun () ->
        let t = Lazy.force matmul_problem in
        check_space "matmul" (Matmul.space t) (Matmul.build t));
    Alcotest.test_case "whole implicit-conv space race-free" `Quick (fun () ->
        let spec = Swtensor.Conv_spec.create ~b:4 ~ni:16 ~no:16 ~ro:12 ~co:12 ~kr:3 ~kc:3 () in
        let t = Conv_implicit.problem spec in
        check_space "implicit" (Conv_implicit.space t) (Conv_implicit.build t));
    Alcotest.test_case "whole winograd space race-free" `Quick (fun () ->
        let spec = Swtensor.Conv_spec.create ~b:2 ~ni:16 ~no:16 ~ro:12 ~co:12 ~kr:3 ~kc:3 () in
        let t = Conv_winograd.problem spec in
        check_space "winograd" (Conv_winograd.space t) (Conv_winograd.build t));
    Alcotest.test_case "whole explicit-conv space race-free" `Quick (fun () ->
        let spec = Swtensor.Conv_spec.create ~b:2 ~ni:8 ~no:8 ~ro:8 ~co:8 ~kr:3 ~kc:3 () in
        let t = Conv_explicit.problem spec in
        check_space "explicit" (Conv_explicit.space t) (Conv_explicit.build t));
    Alcotest.test_case "sanitizer agrees: clean winners have no races" `Quick (fun () ->
        Alcotest.(check (list pass)) "matmul" [] (Interp.sanitize (Lazy.force prepared_matmul));
        let spec = Swtensor.Conv_spec.create ~b:2 ~ni:16 ~no:16 ~ro:12 ~co:12 ~kr:3 ~kc:3 () in
        let t = Conv_winograd.problem spec in
        let p = Tuner.prepare (Conv_winograd.build t (List.hd (Conv_winograd.space t))) in
        Alcotest.(check (list pass)) "winograd" [] (Interp.sanitize p));
    Alcotest.test_case "registry covers SWA030-039" `Quick (fun () ->
        let codes = List.map (fun (c, _, _) -> c) Ir_race.registry in
        List.iter
          (fun c ->
            if not (List.mem c codes) then Alcotest.failf "registry is missing %s" c)
          [ "SWA030"; "SWA031"; "SWA032"; "SWA033"; "SWA034"; "SWA035"; "SWA038"; "SWA039" ]);
    Alcotest.test_case "derived regcomm schedules validate clean" `Quick (fun () ->
        for k = 1 to 16 do
          match Sw26010.Regcomm.validate (Sw26010.Regcomm.gemm_schedule ~k_steps:k) with
          | [] -> ()
          | v :: _ ->
            Alcotest.failf "k=%d: %s" k (Sw26010.Regcomm.describe_violation v)
        done);
  ]

(* ------------------------------------------------------------------ *)
(* One seeded mutation per diagnostic code. *)

let mutation_suite =
  [
    Alcotest.test_case "SWA030: collapsed put offsets (write-write)" `Quick (fun () ->
        let p = collide_puts (Lazy.force prepared_matmul) in
        assert_flags "collapsed puts" "SWA030" p;
        Alcotest.(check bool) "sanitizer sees ww" true (List.mem Interp.Race_ww (san_kinds p)));
    Alcotest.test_case "SWA031: get snoops a neighbour's in-flight put" `Quick (fun () ->
        let p = snoop_puts (Lazy.force prepared_matmul) in
        assert_flags "snooped puts" "SWA031" p;
        Alcotest.(check bool) "sanitizer sees rw" true (List.mem Interp.Race_rw (san_kinds p)));
    Alcotest.test_case "SWA032: duplicated exchange unbalances a lane" `Quick (fun () ->
        let dup (s : Sw26010.Regcomm.schedule) =
          List.map (function [] -> [] | x :: rest -> x :: x :: rest) s
        in
        let ds = Ir_race.verify ~mutate_regcomm:dup (Lazy.force prepared_matmul) in
        Alcotest.(check bool) "SWA032" true (has_code "SWA032" Ir_verify.Error ds));
    Alcotest.test_case "SWA033: cyclic wait between broadcasts" `Quick (fun () ->
        let cyc (_ : Sw26010.Regcomm.schedule) =
          [
            [
              { Sw26010.Regcomm.x_pattern = Sw26010.Regcomm.Row_broadcast; x_src = 0; x_deps = [ 1 ] };
              { Sw26010.Regcomm.x_pattern = Sw26010.Regcomm.Col_broadcast; x_src = 1; x_deps = [ 0 ] };
            ];
          ]
        in
        let ds = Ir_race.verify ~mutate_regcomm:cyc (Lazy.force prepared_matmul) in
        Alcotest.(check bool) "SWA033" true (has_code "SWA033" Ir_verify.Error ds));
    Alcotest.test_case "SWA034: broadcast source outside the mesh" `Quick (fun () ->
        let bad (s : Sw26010.Regcomm.schedule) =
          List.map (List.map (fun x -> { x with Sw26010.Regcomm.x_src = 9 })) s
        in
        let ds = Ir_race.verify ~mutate_regcomm:bad (Lazy.force prepared_matmul) in
        Alcotest.(check bool) "SWA034" true (has_code "SWA034" Ir_verify.Error ds));
    Alcotest.test_case "SWA035: dropped drain leaves puts in flight" `Quick (fun () ->
        let p = drop_drains (Lazy.force prepared_matmul) in
        let ds = Ir_race.verify p in
        Alcotest.(check bool) "SWA035 warning" true (has_code "SWA035" Ir_verify.Warning ds);
        Alcotest.(check bool) "sanitizer sees undrained" true
          (List.mem Interp.Race_undrained (san_kinds p)));
    Alcotest.test_case "SWA038: inconclusive strides fall back to enumeration" `Quick (fun () ->
        let ds = Ir_race.verify (Lazy.force enum_disjoint) in
        Alcotest.(check bool) "SWA038 warning" true (has_code "SWA038" Ir_verify.Warning ds);
        Alcotest.(check bool) "no errors (footprints are disjoint)" true
          (Ir_verify.errors ds = []);
        Alcotest.(check (list pass)) "sanitizer agrees: clean" []
          (Interp.sanitize (Lazy.force enum_disjoint)));
    Alcotest.test_case "SWA039: enumeration finds the overlap" `Quick (fun () ->
        let p = Lazy.force enum_overlap in
        assert_flags "enum overlap" "SWA039" p;
        Alcotest.(check bool) "sanitizer sees ww" true (List.mem Interp.Race_ww (san_kinds p)));
  ]

(* ------------------------------------------------------------------ *)
(* The tuners reject race-positive candidates, with per-code counts. *)

let integration_suite =
  [
    Alcotest.test_case "model_tune rejects racing candidates (SWA030 counted)" `Quick (fun () ->
        let t = Matmul.problem ~m:64 ~n:48 ~k:32 in
        (* no prefetch marker, so Tuner.optimize is a no-op on this program
           and the planted descriptors survive to the verifier *)
        let base =
          Dma_inference.apply (Matmul.build t (List.hd (Matmul.space ~prefetch:false t)))
        in
        let racy = collide_puts base in
        let o =
          Tuner.model_tune
            ~gemm_model:(Lazy.force gemm_model)
            ~prune:false
            ~candidates:[ `Clean; `Racy; `Racy ]
            ~build:(function `Clean -> base | `Racy -> racy)
            ()
        in
        Alcotest.(check (option int)) "two candidates rejected as SWA030" (Some 2)
          (List.assoc_opt "SWA030" o.report.verify_rejected);
        Alcotest.(check bool) "the clean candidate wins" true (o.best = `Clean));
    Alcotest.test_case "blackbox_tune rejects racing candidates" `Quick (fun () ->
        let t = Matmul.problem ~m:64 ~n:48 ~k:32 in
        let base =
          Dma_inference.apply (Matmul.build t (List.hd (Matmul.space ~prefetch:false t)))
        in
        let racy = snoop_puts base in
        let o =
          Tuner.blackbox_tune
            ~candidates:[ `Racy; `Clean ]
            ~build:(function `Clean -> base | `Racy -> racy)
            ()
        in
        Alcotest.(check (option int)) "one candidate rejected as SWA031" (Some 1)
          (List.assoc_opt "SWA031" o.report.verify_rejected);
        Alcotest.(check bool) "the clean candidate wins" true (o.best = `Clean));
  ]

let suite = clean_suite @ mutation_suite @ integration_suite
