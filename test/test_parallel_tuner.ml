(* The parallel tuning engine: Domain-pool combinators, parallel/sequential
   equivalence, branch-and-bound pruning soundness, and the persistent
   schedule cache. *)

open Swatop
open Swatop_ops

let gemm_model = lazy (Gemm_cost.fit ())

let parallel_suite =
  [
    Alcotest.test_case "parallel_map preserves order and values" `Quick (fun () ->
        let l = Prelude.Lists.range 0 237 in
        Alcotest.(check (list int))
          "jobs=4" (List.map (fun x -> (x * 7) - 3) l)
          (Prelude.Parallel.parallel_map ~jobs:4 (fun x -> (x * 7) - 3) l);
        Alcotest.(check (list int))
          "jobs=1" (List.map succ l)
          (Prelude.Parallel.parallel_map ~jobs:1 succ l));
    Alcotest.test_case "parallel_min_by matches sequential, earliest tie wins" `Quick (fun () ->
        let l = [ 5.0; 2.0; 9.0; 2.0; 7.0 ] in
        let seq = Prelude.Lists.min_float_by Fun.id l in
        List.iter
          (fun jobs ->
            let par = Prelude.Parallel.parallel_min_by ~jobs Fun.id l in
            Alcotest.(check (float 0.0)) (Printf.sprintf "jobs=%d" jobs) seq par)
          [ 1; 2; 4; 8 ];
        (* Earliest of the tied minima: distinguishable via physical identity. *)
        let a = ref 1.0 and b = ref 1.0 in
        let picked = Prelude.Parallel.parallel_min_by ~jobs:4 ( ! ) [ a; b ] in
        Alcotest.(check bool) "first tied ref" true (picked == a));
    Alcotest.test_case "map_chunks covers every element exactly once" `Quick (fun () ->
        let arr = Array.init 101 Fun.id in
        let chunks = Prelude.Parallel.map_chunks ~jobs:4 ~f:(fun start c -> (start, c)) arr in
        let flattened = List.concat_map (fun (_, c) -> Array.to_list c) chunks in
        Alcotest.(check (list int)) "coverage" (Array.to_list arr) flattened;
        List.iter
          (fun (start, c) ->
            Array.iteri
              (fun j x -> Alcotest.(check int) "start+j" (start + j) x)
              c)
          chunks);
    Alcotest.test_case "exceptions propagate out of the pool" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Prelude.Parallel.parallel_map ~jobs:4
                  (fun x -> if x = 13 then failwith "boom" else x)
                  (Prelude.Lists.range 0 50));
             false
           with Failure _ -> true));
  ]

let equivalence_suite =
  [
    Alcotest.test_case "model_tune: parallel equals sequential" `Quick (fun () ->
        let t = Matmul.problem ~m:200 ~n:120 ~k:80 in
        let space = Matmul.space t in
        let gm = Lazy.force gemm_model in
        let tune jobs =
          Tuner.model_tune ~top_k:3 ~jobs ~gemm_model:gm ~candidates:space
            ~build:(Matmul.build t) ()
        in
        let seq = tune 1 and par = tune 4 in
        Alcotest.(check int) "best_index" seq.best_index par.best_index;
        Alcotest.(check bool) "best" true (seq.best = par.best);
        Alcotest.(check (float 0.0)) "best_seconds" seq.best_seconds par.best_seconds;
        Alcotest.(check int) "space_size" seq.report.space_size par.report.space_size;
        Alcotest.(check int) "jobs recorded" 4 par.report.jobs);
    Alcotest.test_case "blackbox_tune: parallel equals sequential" `Quick (fun () ->
        let t = Matmul.problem ~m:96 ~n:96 ~k:96 in
        let space = Matmul.space t in
        let tune jobs = Tuner.blackbox_tune ~jobs ~candidates:space ~build:(Matmul.build t) () in
        let seq = tune 1 and par = tune 4 in
        Alcotest.(check int) "best_index" seq.best_index par.best_index;
        Alcotest.(check bool) "best" true (seq.best = par.best);
        Alcotest.(check (float 0.0)) "best_seconds" seq.best_seconds par.best_seconds;
        Alcotest.(check int) "space_size" seq.report.space_size par.report.space_size;
        Alcotest.(check (float 0.0)) "hardware_seconds bit-identical"
          seq.report.hardware_seconds par.report.hardware_seconds);
  ]

let pruning_suite =
  let same_top1 name candidates build =
    let gm = Lazy.force gemm_model in
    let off = Tuner.model_tune ~prune:false ~gemm_model:gm ~candidates ~build () in
    let on = Tuner.model_tune ~prune:true ~gemm_model:gm ~candidates ~build () in
    Alcotest.(check int) (name ^ ": unpruned run prunes nothing") 0 off.report.pruned;
    Alcotest.(check int) (name ^ ": same top-1 index") off.best_index on.best_index;
    Alcotest.(check (float 0.0)) (name ^ ": same seconds") off.best_seconds on.best_seconds;
    Alcotest.(check int)
      (name ^ ": evaluated+pruned covers the space")
      on.report.space_size
      (on.report.evaluated + on.report.pruned);
    on.report.pruned
  in
  [
    Alcotest.test_case "pruning never changes the top-1 (matmul)" `Quick (fun () ->
        let t = Matmul.problem ~m:256 ~n:256 ~k:256 in
        ignore (same_top1 "matmul" (Matmul.space t) (Matmul.build t)));
    Alcotest.test_case "pruning fires and preserves the top-1 (conv)" `Quick (fun () ->
        let spec = Swtensor.Conv_spec.create ~b:4 ~ni:32 ~no:48 ~ro:14 ~co:14 ~kr:3 ~kc:3 () in
        let t = Conv_implicit.problem spec in
        let pruned = same_top1 "conv" (Conv_implicit.space t) (Conv_implicit.build t) in
        Alcotest.(check bool) (Printf.sprintf "pruned %d > 0" pruned) true (pruned > 0));
    Alcotest.test_case "pruning preserves the whole top-k" `Quick (fun () ->
        let t = Matmul.problem ~m:200 ~n:120 ~k:80 in
        let gm = Lazy.force gemm_model in
        let tune prune =
          Tuner.model_tune ~top_k:4 ~prune ~gemm_model:gm ~candidates:(Matmul.space t)
            ~build:(Matmul.build t) ()
        in
        let off = tune false and on = tune true in
        Alcotest.(check int) "same winner" off.best_index on.best_index;
        Alcotest.(check (float 0.0)) "same seconds" off.best_seconds on.best_seconds);
  ]

let cache_suite =
  let tmp_path () = Filename.temp_file "swatop_schedule_cache" ".txt" in
  [
    Alcotest.test_case "warm cache round-trips and short-circuits re-tuning" `Quick (fun () ->
        let path = tmp_path () in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
          (fun () ->
            let gm = Lazy.force gemm_model in
            let t = Matmul.problem ~m:200 ~n:120 ~k:80 in
            let cache = Schedule_cache.create () in
            let cold = Matmul.tune ~cache ~gemm_model:gm t in
            Alcotest.(check bool) "cold is a miss" false cold.report.cache_hit;
            Alcotest.(check int) "one miss" 1 (Schedule_cache.misses cache);
            Schedule_cache.save path cache;
            let reloaded = Schedule_cache.load path in
            Alcotest.(check int) "one entry" 1 (Schedule_cache.size reloaded);
            let warm = Matmul.tune ~cache:reloaded ~gemm_model:gm t in
            Alcotest.(check bool) "warm is a hit" true warm.report.cache_hit;
            Alcotest.(check int) "nothing evaluated" 0 warm.report.evaluated;
            Alcotest.(check (float 0.0)) "no simulated hardware time" 0.0
              warm.report.hardware_seconds;
            Alcotest.(check int) "same winner" cold.best_index warm.best_index;
            Alcotest.(check bool) "same strategy" true (cold.best = warm.best);
            Alcotest.(check (float 0.0)) "same seconds" cold.best_seconds warm.best_seconds;
            (* The served program must be the real prepared winner. *)
            Alcotest.(check (float 1e-12))
              "same simulated runtime"
              (Interp.run ~numeric:false cold.best_program).seconds
              (Interp.run ~numeric:false warm.best_program).seconds));
    Alcotest.test_case "fingerprint mismatch forces a re-tune" `Quick (fun () ->
        let cache = Schedule_cache.create () in
        let key = Schedule_cache.key ~op:"matmul" ~dims:[ 8; 8; 8 ] () in
        Schedule_cache.remember cache ~key
          { Schedule_cache.fingerprint = 42; space_size = 10; index = 3; seconds = 1.0 };
        Alcotest.(check bool) "matching space found" true
          (Schedule_cache.find cache ~key ~fingerprint:42 ~space_size:10 <> None);
        Alcotest.(check bool) "changed fingerprint rejected" true
          (Schedule_cache.find cache ~key ~fingerprint:43 ~space_size:10 = None);
        Alcotest.(check bool) "changed space size rejected" true
          (Schedule_cache.find cache ~key ~fingerprint:42 ~space_size:11 = None));
    Alcotest.test_case "corrupt or versionless files load as empty" `Quick (fun () ->
        let path = tmp_path () in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc "not a schedule cache\ngarbage\tlines\n";
            close_out oc;
            Alcotest.(check int) "empty" 0 (Schedule_cache.size (Schedule_cache.load path)));
        Alcotest.(check int) "missing file loads empty" 0
          (Schedule_cache.size (Schedule_cache.load "/nonexistent/swatop.cache")));
    Alcotest.test_case "fingerprint is order-sensitive" `Quick (fun () ->
        let a = Schedule_cache.fingerprint [ "x"; "y" ] in
        let b = Schedule_cache.fingerprint [ "y"; "x" ] in
        let c = Schedule_cache.fingerprint [ "xy" ] in
        Alcotest.(check bool) "permutation differs" true (a <> b);
        Alcotest.(check bool) "concatenation differs" true (a <> c);
        Alcotest.(check bool) "non-negative" true (a >= 0 && b >= 0 && c >= 0));
  ]

let clock_suite =
  [
    Alcotest.test_case "wall clock is monotonic across busy work" `Quick (fun () ->
        let t0 = Prelude.Clock.wall () in
        ignore (Sys.opaque_identity (Array.init 100_000 Fun.id));
        let t1 = Prelude.Clock.wall () in
        Alcotest.(check bool) "non-decreasing" true (t1 >= t0));
  ]

let suite = parallel_suite @ equivalence_suite @ pruning_suite @ cache_suite @ clock_suite
