(* Differential fuzzer for the cross-CPE race analysis.

   Takes each operator family's optimized IR, applies seeded structural
   mutations (descriptor collisions, tag swaps, dropped drains, neighbour
   snoops, grid collapses), and checks on every mutant that the static
   verdict of {!Swatop.Ir_race.verify} agrees with the dynamic verdict of
   the shadow-memory sanitizer {!Swatop.Interp.sanitize}:

     static says unusable (any error, or an SWA035 undrained-put warning)
       <=>  the sanitizer observes at least one race.

   All randomness is {!Prelude.Det_rng} keyed by (seed, family, mutant), so
   a failing mutant reproduces from its printed coordinates alone.

   Usage: fuzz_race [--mutants=N] [--seed=S]   (defaults 100 and 7) *)

open Swatop
open Swatop_ops

let mutants = ref 100
let seed = ref 7

(* ------------------------------------------------------------------ *)
(* Families: one representative optimized program each. *)

let conv ~b ~ni ~no ~out = Swtensor.Conv_spec.create ~b ~ni ~no ~ro:out ~co:out ~kr:3 ~kc:3 ()

let families () =
  [
    ( "matmul",
      let t = Matmul.problem ~m:96 ~n:80 ~k:48 in
      Tuner.prepare (Matmul.build t (List.hd (Matmul.space t))) );
    ( "conv_implicit",
      let t = Conv_implicit.problem (conv ~b:4 ~ni:16 ~no:16 ~out:12) in
      Tuner.prepare (Conv_implicit.build t (List.hd (Conv_implicit.space t))) );
    ( "conv_winograd",
      let t = Conv_winograd.problem (conv ~b:2 ~ni:16 ~no:16 ~out:12) in
      Tuner.prepare (Conv_winograd.build t (List.hd (Conv_winograd.space t))) );
    ( "conv_explicit",
      let t = Conv_explicit.problem (conv ~b:2 ~ni:8 ~no:8 ~out:8) in
      Tuner.prepare (Conv_explicit.build t (List.hd (Conv_explicit.space t))) );
  ]

(* ------------------------------------------------------------------ *)
(* Mutation operators.

   Each operator targets the [n]-th statement matching its site predicate
   (counted in [map_stmt]'s bottom-up order — stable for a fixed program).
   All rewrites keep descriptor offsets non-negative and overlap witnesses
   inside the target buffer, so the sanitizer's bounds truncation never
   hides an overlap the static analysis can see. *)

let mutate_nth n pred f (p : Ir.program) =
  let i = ref (-1) in
  let body =
    Ir.map_stmt
      (fun s ->
        if pred s then begin
          incr i;
          if !i = n then f s else s
        end
        else s)
      p.Ir.body
  in
  { p with Ir.body }

let count pred (p : Ir.program) =
  let n = ref 0 in
  ignore (Ir.map_stmt (fun s -> if pred s then incr n; s) p.Ir.body);
  !n

let is_put = function Ir.Dma { dir = Ir.Put; per_cpe = Some _; _ } -> true | _ -> false
let is_dma = function Ir.Dma { per_cpe = Some _; _ } -> true | _ -> false
let is_wait = function Ir.Dma_wait _ -> true | _ -> false

let is_drain = function
  | Ir.If { then_ = Ir.Dma_wait _; else_ = Ir.Seq []; _ } -> true
  | _ -> false

(* (name, site predicate, rewrite of the selected site) *)
let operators =
  [
    ( "identity",
      (fun _ -> false),
      fun s -> s );
    ( "collide",
      is_put,
      function
      | Ir.Dma ({ dir = Ir.Put; per_cpe = Some d; _ } as dd) ->
        Ir.Dma { dd with per_cpe = Some { d with d_offset = dd.region.offset } }
      | s -> s );
    ( "halve-offset",
      is_put,
      function
      | Ir.Dma ({ dir = Ir.Put; per_cpe = Some d; _ } as dd) ->
        Ir.Dma { dd with per_cpe = Some { d with d_offset = Ir.(d.d_offset / int 2) } }
      | s -> s );
    ( "snoop",
      is_put,
      function
      | Ir.Dma ({ dir = Ir.Put; per_cpe = Some d; _ } as dd) ->
        let snoop =
          Ir.Dma
            {
              dd with
              dir = Ir.Get;
              per_cpe = Some { d with d_offset = Ir.(d.d_offset + d.d_block) };
            }
        in
        Ir.Seq [ Ir.Dma dd; snoop ]
      | s -> s );
    ( "tag-swap",
      is_wait,
      function
      | Ir.Dma_wait { tag } -> Ir.Dma_wait { tag = Ir.(tag + int 1) }
      | s -> s );
    ( "drop-drain",
      is_drain,
      fun _ -> Ir.Seq [] );
    ( "grid-collapse",
      is_dma,
      function
      | Ir.Dma _ as s -> Ir_rewrite.subst_stmt [ ("cid", Ir.Var "rid") ] s
      | s -> s );
  ]

(* ------------------------------------------------------------------ *)

let static_bad diags =
  List.exists
    (fun (d : Ir_verify.diagnostic) -> d.severity = Ir_verify.Error || d.code = "SWA035")
    diags

let run_family (fam, program) =
  let disagreements = ref 0 in
  let racy = ref 0 in
  for m = 0 to !mutants - 1 do
    let site suffix = Printf.sprintf "fuzz_race/%s/%d/%s" fam m suffix in
    let op = Prelude.Det_rng.int ~seed:!seed ~site:(site "op") ~k:0 (List.length operators) in
    let name, pred, rewrite = List.nth operators op in
    let sites = count pred program in
    let name, p =
      if sites = 0 then ("identity", program)
      else
        let n = Prelude.Det_rng.int ~seed:!seed ~site:(site "site") ~k:0 sites in
        (name, mutate_nth n pred rewrite program)
    in
    let diags = Ir_race.verify p in
    let races = Interp.sanitize p in
    let sbad = static_bad diags and dbad = races <> [] in
    if sbad then incr racy;
    if sbad <> dbad then begin
      incr disagreements;
      Printf.printf "DISAGREE %s mutant=%d seed=%d op=%s: static=%s sanitizer=%s\n" fam m !seed
        name
        (if diags = [] then "(clean)"
         else String.concat "; " (List.map Ir_verify.to_string diags))
        (if races = [] then "(clean)"
         else String.concat "; " (List.map Interp.race_to_string races))
    end
  done;
  Printf.printf "fuzz %-14s %d mutants: %d race-positive, %d clean, %d disagreements\n" fam
    !mutants !racy
    (!mutants - !racy)
    !disagreements;
  !disagreements

let () =
  Arg.parse
    [
      ("--mutants", Arg.Set_int mutants, "N  mutants per operator family (default 100)");
      ("--seed", Arg.Set_int seed, "S  root seed for all mutation draws (default 7)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fuzz_race [--mutants N] [--seed S]";
  let bad = List.fold_left (fun acc f -> acc + run_family f) 0 (families ()) in
  if bad > 0 then begin
    Printf.printf "fuzz_race: %d static/dynamic disagreements\n" bad;
    exit 1
  end;
  print_endline "fuzz_race: static analysis and sanitizer agree on every mutant"
