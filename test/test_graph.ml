(* The network-level runtime: graph IR builder, layout copies, whole-model
   compilation, arena planning and end-to-end numeric execution. *)

module G = Swatop_graph.Graph_ir
module L = Swatop_graph.Graph_layout
module C = Swatop_graph.Graph_compile
module P = Swatop_graph.Graph_plan
module E = Swatop_graph.Graph_exec

let gemm_model = lazy (Swatop.Gemm_cost.fit ())
let compile g = C.compile ~top_k:1 ~gemm_model:(Lazy.force gemm_model) g

let shape4 sb sc sh sw = { G.sb; sc; sh; sw }

let run_copy spec src =
  let program = Swatop.Tuner.prepare (L.build spec) in
  let dst = Array.make spec.L.cp_dst_elems 0.0 in
  ignore (Swatop.Interp.run ~numeric:true ~bindings:[ ("src", src); ("dst", dst) ] program);
  dst

let check_copy name spec =
  let src =
    Array.init spec.L.cp_src_elems (fun i -> float_of_int ((i * 7 mod 23) + 1))
  in
  let got = run_copy spec src in
  let want = L.apply_ref spec src in
  Alcotest.(check (array (float 1e-9))) name want got

(* A graph whose producers and consumers disagree spatially: c2 wants a
   10x10 input (halo embed around c1's 8x8), c3 wants 4x4 (crop). *)
let seam_graph ~batch =
  G.empty ~name:"seam" ~batch
  |> G.conv ~name:"c1" ~ni:2 ~no:4 ~out:8 ~k:3
  |> G.conv ~name:"c2" ~ni:4 ~no:4 ~out:8 ~k:3
  |> G.conv ~name:"c3" ~ni:4 ~no:4 ~out:4 ~k:1
  |> G.finish

let suite =
  [
    Alcotest.test_case "of_network expands repeats and chains channels" `Quick (fun () ->
        let g = G.of_network ~batch:2 Workloads.Networks.vgg16 in
        Alcotest.(check int) "13 conv layers" 13 (List.length g.G.nodes);
        List.iteri
          (fun i (n : G.node) -> Alcotest.(check int) "ids in order" i n.G.id)
          g.G.nodes;
        (* every consumer's channel count matches its producer *)
        ignore
          (List.fold_left
             (fun prev (n : G.node) ->
               (match prev with
               | Some (p : G.node) ->
                 Alcotest.(check int) ("channels into " ^ n.G.node_name) p.G.out_shape.G.sc
                   n.G.in_shape.G.sc
               | None -> ());
               Some n)
             None g.G.nodes);
        (* repeated entries get numbered instances *)
        Alcotest.(check bool) "conv5_x.3 present" true
          (List.exists (fun (n : G.node) -> n.G.node_name = "conv5_x.3") g.G.nodes));
    Alcotest.test_case "builder rejects channel mismatches" `Quick (fun () ->
        Alcotest.check_raises "ni mismatch"
          (Invalid_argument "Graph_ir: layer consumes 5 channels but c1 produces 4")
          (fun () ->
            ignore
              (G.empty ~name:"bad" ~batch:1
              |> G.conv ~name:"c1" ~ni:2 ~no:4 ~out:8 ~k:3
              |> G.conv ~name:"c2" ~ni:5 ~no:4 ~out:8 ~k:3)));
    Alcotest.test_case "layout equivalence frees extent-1 axes" `Quick (fun () ->
        let s1 = shape4 1 8 6 6 and s2 = shape4 2 8 6 6 in
        Alcotest.(check bool) "CHWB = CBHW at batch 1" true (L.equivalent s1 L.CHWB L.CBHW);
        Alcotest.(check bool) "CHWB <> CBHW at batch 2" false (L.equivalent s2 L.CHWB L.CBHW);
        Alcotest.(check bool) "BCHW <> CHWB at batch 2" false (L.equivalent s2 L.BCHW L.CHWB));
    Alcotest.test_case "relayout copy program matches its oracle" `Quick (fun () ->
        let shape = shape4 2 4 6 5 in
        List.iter
          (fun (src, dst) ->
            let spec =
              L.create ~src_layout:src ~dst_layout:dst ~src_shape:shape ~dst_shape:shape
                ~src_elems:(G.shape4_elems shape) ~dst_elems:(G.shape4_elems shape)
            in
            check_copy (L.describe spec) spec)
          [ (L.BCHW, L.CHWB); (L.CHWB, L.BCHW); (L.CBHW, L.CHWB); (L.BCHW, L.CBHW) ]);
    Alcotest.test_case "adapter copies bridge spatial seams" `Quick (fun () ->
        (* halo embed: 8x8 into the center of a zeroed 10x10 *)
        let embed =
          L.create ~src_layout:L.BCHW ~dst_layout:L.CHWB ~src_shape:(shape4 2 4 8 8)
            ~dst_shape:(shape4 2 4 10 10)
            ~src_elems:(2 * 4 * 8 * 8)
            ~dst_elems:((2 * 4 * 10 * 10) + 6)
          (* + a DMA halo tail, as the implicit operator's input carries *)
        in
        Alcotest.(check bool) "embed is shape-adapting" true (L.shape_adapting embed);
        check_copy "halo embed" embed;
        (* crop: centered 4x4 window of an 8x8 *)
        let crop =
          L.create ~src_layout:L.CBHW ~dst_layout:L.BCHW ~src_shape:(shape4 2 4 8 8)
            ~dst_shape:(shape4 2 4 4 4) ~src_elems:(2 * 4 * 8 * 8) ~dst_elems:(2 * 4 * 4 * 4)
        in
        Alcotest.(check bool) "crop is shape-adapting" true (L.shape_adapting crop);
        check_copy "crop" crop);
    Alcotest.test_case "identity copies are recognized and free" `Quick (fun () ->
        let shape = shape4 1 8 6 6 in
        let spec =
          L.create ~src_layout:L.CBHW ~dst_layout:L.CHWB ~src_shape:shape ~dst_shape:shape
            ~src_elems:(G.shape4_elems shape) ~dst_elems:(G.shape4_elems shape)
        in
        Alcotest.(check bool) "batch-1 permutation is the identity" true (L.identity spec));
    Alcotest.test_case "compile covers every node and orders steps" `Quick (fun () ->
        let g = G.smoke ~batch:2 in
        let plan = compile g in
        let layer_names =
          List.filter_map
            (function C.Layer { st_node; _ } -> Some st_node.G.node_name | C.Copy _ -> None)
            plan.C.p_steps
        in
        Alcotest.(check (list string)) "every node, in order" [ "c1"; "c2"; "fc" ] layer_names;
        Alcotest.(check bool) "relayout accounting is consistent" true
          (plan.C.p_naive_relayouts >= 0 && plan.C.p_used_relayouts >= 0);
        (* the DP never keeps more copies than a naive all-BCHW runtime *)
        Alcotest.(check bool) "no worse than naive" true
          (plan.C.p_used_relayouts <= max plan.C.p_naive_relayouts 0));
    Alcotest.test_case "seam graph inserts adapters, not relayouts" `Quick (fun () ->
        let plan = compile (seam_graph ~batch:2) in
        Alcotest.(check bool) "has adapter copies" true (plan.C.p_adapters >= 2));
    Alcotest.test_case "arena: disjoint under liveness, peak below naive" `Quick (fun () ->
        List.iter
          (fun plan ->
            let arena = P.plan plan in
            Alcotest.(check bool) "no live blocks overlap" true (P.check arena);
            Alcotest.(check bool) "extent >= peak" true
              (arena.P.ar_bytes >= arena.P.ar_peak_bytes);
            Alcotest.(check bool) "beats one-buffer-per-value" true
              (arena.P.ar_bytes < arena.P.ar_naive_bytes))
          [ compile (G.smoke ~batch:2); compile (seam_graph ~batch:2) ]);
    Alcotest.test_case "end-to-end numeric: smoke matches the references" `Quick (fun () ->
        let report = E.run ~numeric:true (compile (G.smoke ~batch:2)) in
        (match report.E.r_max_err with
        | Some e -> Alcotest.(check bool) (Printf.sprintf "max err %.2e < 1e-4" e) true (e < 1e-4)
        | None -> Alcotest.fail "numeric run reported no error bound");
        Alcotest.(check bool) "simulated time accumulated" true (report.E.r_seconds > 0.0));
    Alcotest.test_case "end-to-end numeric: seam graph (halo embed + crop)" `Quick (fun () ->
        let report = E.run ~numeric:true (compile (seam_graph ~batch:2)) in
        match report.E.r_max_err with
        | Some e -> Alcotest.(check bool) (Printf.sprintf "max err %.2e < 1e-4" e) true (e < 1e-4)
        | None -> Alcotest.fail "numeric run reported no error bound");
  ]
