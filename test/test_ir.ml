(* IR: expression algebra, substitution, printing, structural checking and
   DMA inference. *)

open Swatop

let e_test = Alcotest.testable (fun fmt e -> Format.pp_print_string fmt (Ir_print.expr_to_string e)) ( = )

(* A random expression generator over a fixed variable set. *)
let expr_gen =
  let open QCheck2.Gen in
  let var_names = [ "i"; "j"; "k" ] in
  sized
  @@ fix (fun self n ->
         if n <= 0 then oneof [ map Ir.int (int_range 0 20); map Ir.var (oneofl var_names) ]
         else
           let sub = self (n / 2) in
           oneof
             [
               map2 (fun a b -> Ir.(a + b)) sub sub;
               map2 (fun a b -> Ir.(a - b)) sub sub;
               map2 (fun a b -> Ir.(a * b)) sub sub;
               map2 (fun a b -> Ir.(emin a b)) sub sub;
               map2 (fun a b -> Ir.(emax a b)) sub sub;
               map2 (fun a b -> Ir.(a / Ir.emax b (Ir.int 1))) sub sub;
               map2 (fun a b -> Ir.(a % Ir.emax b (Ir.int 1))) sub sub;
             ])

let rec eval env (e : Ir.expr) =
  match e with
  | Const i -> i
  | Var v -> List.assoc v env
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Div (a, b) -> eval env a / eval env b
  | Mod (a, b) -> eval env a mod eval env b
  | Min (a, b) -> min (eval env a) (eval env b)
  | Max (a, b) -> max (eval env a) (eval env b)

let prop_simplify_preserves =
  QCheck2.Test.make ~name:"simplify preserves evaluation" ~count:300 expr_gen (fun e ->
      let env = [ ("i", 3); ("j", 7); ("k", 11) ] in
      eval env e = eval env (Ir.simplify e))

let prop_subst_is_eval =
  QCheck2.Test.make ~name:"substituting constants fully folds" ~count:300 expr_gen (fun e ->
      let env = [ ("i", 3); ("j", 7); ("k", 11) ] in
      let bindings = List.map (fun (v, x) -> (v, Ir.int x)) env in
      match Ir.subst bindings e with Const c -> c = eval env e | _ -> false)

let expr_suite =
  [
    Alcotest.test_case "algebraic identities" `Quick (fun () ->
        Alcotest.check e_test "x+0" (Ir.var "x") Ir.(var "x" + int 0);
        Alcotest.check e_test "x*1" (Ir.var "x") Ir.(var "x" * int 1);
        Alcotest.check e_test "x*0" (Ir.int 0) Ir.(var "x" * int 0);
        Alcotest.check e_test "const fold" (Ir.int 7) Ir.(int 3 + int 4);
        Alcotest.check e_test "min self" (Ir.var "x") (Ir.emin (Ir.var "x") (Ir.var "x")));
    Alcotest.test_case "division by constant zero is left unfolded" `Quick (fun () ->
        (* simplify must never raise mid-pipeline; Ir_verify diagnoses the
           division instead (SWA020). *)
        Alcotest.check e_test "div" (Ir.Div (Ir.var "x", Ir.Const 0)) Ir.(var "x" / int 0);
        Alcotest.check e_test "mod" (Ir.Mod (Ir.Const 5, Ir.Const 0)) Ir.(int 5 % int 0);
        Alcotest.check e_test "nested"
          (Ir.Div (Ir.Const 7, Ir.Const 0))
          (Ir.simplify (Ir.Div (Ir.Const 7, Ir.Sub (Ir.Const 3, Ir.Const 3))));
        (* substitution folds through simplify: a denominator that becomes
           zero must survive it too *)
        Alcotest.check e_test "subst"
          (Ir.Div (Ir.Const 9, Ir.Const 0))
          (Ir.subst [ ("d", Ir.int 0) ] (Ir.Div (Ir.Const 9, Ir.Var "d"))));
    Alcotest.test_case "free_vars" `Quick (fun () ->
        Alcotest.(check (list string)) "i,j" [ "i"; "j" ] (Ir.free_vars Ir.(var "i" + (var "j" * var "i"))));
    Alcotest.test_case "printing round-trips structure" `Quick (fun () ->
        Alcotest.(check string) "pretty" "((i + 1) * min(j, 4))"
          (Ir_print.expr_to_string Ir.(Mul (Add (Var "i", Const 1), Min (Var "j", Const 4)))));
  ]

(* ------------------------------------------------------------------ *)
(* Structural checking. *)

let tiny_program body bufs = Ir.program ~name:"t" ~bufs body

let check_suite =
  let main = Ir.main_buf ~name:"m" ~elems:1024 in
  let spm = Ir.spm_buf ~name:"s" ~cg_elems:64 ~cpe_elems:16 in
  let dma ?(main_name = "m") ?(spm_name = "s") () =
    Ir.Dma
      {
        dir = Ir.Get;
        main = main_name;
        spm = spm_name;
        tag = Ir.int 0;
        region = { offset = Ir.int 0; rows = Ir.int 4; row_elems = Ir.int 16; row_stride = Ir.int 16 };
        spm_offset = Ir.int 0;
        spm_ld = Ir.int 16;
        partition = Ir.P_rows;
        per_cpe = None;
      }
  in
  [
    Alcotest.test_case "valid program passes" `Quick (fun () ->
        match Ir_check.check (tiny_program (dma ()) [ main; spm ]) with
        | Ok () -> ()
        | Error es -> Alcotest.failf "unexpected: %s" (Ir_check.error_to_string (List.hd es)));
    Alcotest.test_case "undeclared buffer caught" `Quick (fun () ->
        match Ir_check.check (tiny_program (dma ~main_name:"nope" ()) [ main; spm ]) with
        | Ok () -> Alcotest.fail "missed undeclared buffer"
        | Error _ -> ());
    Alcotest.test_case "wrong memory space caught" `Quick (fun () ->
        match Ir_check.check (tiny_program (dma ~main_name:"s" ~spm_name:"m" ()) [ main; spm ]) with
        | Ok () -> Alcotest.fail "missed space mismatch"
        | Error _ -> ());
    Alcotest.test_case "unbound variable caught" `Quick (fun () ->
        let body = Ir.Memset_spm { buf = "s"; offset = Ir.var "ghost"; elems = Ir.int 1 } in
        match Ir_check.check (tiny_program body [ main; spm ]) with
        | Ok () -> Alcotest.fail "missed unbound variable"
        | Error _ -> ());
    Alcotest.test_case "loop binds its iterator" `Quick (fun () ->
        let body =
          Ir.for_ ~iter:"i" ~lo:(Ir.int 0) ~hi:(Ir.int 4)
            (Ir.Memset_spm { buf = "s"; offset = Ir.var "i"; elems = Ir.int 1 })
        in
        match Ir_check.check (tiny_program body [ main; spm ]) with
        | Ok () -> ()
        | Error es -> Alcotest.failf "unexpected: %s" (Ir_check.error_to_string (List.hd es)));
    Alcotest.test_case "SPM capacity violation caught" `Quick (fun () ->
        let fat = Ir.spm_buf ~name:"s" ~cg_elems:64 ~cpe_elems:(Sw26010.Config.spm_bytes / 2) in
        match Ir_check.check (tiny_program (Ir.Seq []) [ main; fat ]) with
        | Ok () -> Alcotest.fail "missed capacity violation"
        | Error _ -> ());
    Alcotest.test_case "duplicate buffers caught" `Quick (fun () ->
        match Ir_check.check (tiny_program (Ir.Seq []) [ main; main ]) with
        | Ok () -> Alcotest.fail "missed duplicate"
        | Error _ -> ());
    Alcotest.test_case "capacity check and memory planner share one footprint" `Quick (fun () ->
        (* Both sides are built from Mem_plan.requests; a program that just
           fits must both pass the check and plan successfully, and the
           planned pool can never exceed the checked footprint. *)
        let a = Ir.spm_buf ~name:"a" ~cg_elems:64 ~cpe_elems:4096 in
        let b = Ir.spm_buf ~name:"b" ~cg_elems:64 ~cpe_elems:8192 in
        let p = tiny_program (Ir.Seq []) [ main; a; b ] in
        let footprint = Ir_check.spm_footprint_bytes p in
        Alcotest.(check int) "footprint" ((4096 + 8192) * Sw26010.Config.elem_bytes) footprint;
        (match (Ir_check.check p, Mem_plan.plan p) with
        | Ok (), Ok plan ->
          Alcotest.(check bool) "pool within footprint" true (plan.Mem_plan.pool_bytes <= footprint)
        | Error es, _ -> Alcotest.failf "check: %s" (Ir_check.error_to_string (List.hd es))
        | _, Error e -> Alcotest.failf "plan: %s" e);
        (* ...and a program that does not fit must fail both ways. *)
        let fat = Ir.spm_buf ~name:"fat" ~cg_elems:64 ~cpe_elems:(Sw26010.Config.spm_bytes / 2) in
        let too_big = tiny_program (Ir.Seq []) [ main; a; fat ] in
        Alcotest.(check bool) "check rejects" true (Result.is_error (Ir_check.check too_big));
        Alcotest.(check bool) "plan rejects" true (Result.is_error (Mem_plan.plan too_big)));
    Alcotest.test_case "rid/cid only allowed in per-CPE descriptors" `Quick (fun () ->
        let body = Ir.Memset_spm { buf = "s"; offset = Ir.rid; elems = Ir.int 1 } in
        (match Ir_check.check (tiny_program body [ main; spm ]) with
        | Ok () -> Alcotest.fail "rid leaked"
        | Error _ -> ());
        let inferred = Dma_inference.apply (tiny_program (dma ()) [ main; spm ]) in
        match Ir_check.check inferred with
        | Ok () -> ()
        | Error es -> Alcotest.failf "per-CPE rid rejected: %s" (Ir_check.error_to_string (List.hd es)));
  ]

(* ------------------------------------------------------------------ *)
(* DMA inference: the 64 per-CPE descriptors partition the region. *)

let eval_desc (d : Ir.cpe_desc) ~rid ~cid =
  let env = [ ("rid", rid); ("cid", cid) ] in
  (eval env d.d_offset, eval env d.d_block, eval env d.d_stride, eval env d.d_count)

let covered_elements region partition =
  let desc = Dma_inference.infer_desc region partition in
  let elems = Hashtbl.create 64 in
  for rid = 0 to 7 do
    for cid = 0 to 7 do
      let offset, block, stride, count = eval_desc desc ~rid ~cid in
      for i = 0 to count - 1 do
        for j = 0 to block - 1 do
          let addr = offset + (i * stride) + j in
          if Hashtbl.mem elems addr then Alcotest.failf "element %d covered twice" addr;
          Hashtbl.replace elems addr ()
        done
      done
    done
  done;
  elems

let region_elements (r : Ir.region) =
  let env = [] in
  let offset = eval env r.offset
  and rows = eval env r.rows
  and row_elems = eval env r.row_elems
  and stride = eval env r.row_stride in
  let elems = Hashtbl.create 64 in
  for i = 0 to rows - 1 do
    for j = 0 to row_elems - 1 do
      Hashtbl.replace elems (offset + (i * stride) + j) ()
    done
  done;
  elems

let same_table a b =
  Hashtbl.length a = Hashtbl.length b && Hashtbl.fold (fun k () acc -> acc && Hashtbl.mem b k) a true

let prop_inference_partitions =
  let gen =
    QCheck2.Gen.(
      tup4 (int_bound 50) (int_range 1 40) (int_range 1 40) (int_bound 30)
      |> map (fun (offset, rows, row_elems, extra) ->
             {
               Ir.offset = Ir.int offset;
               rows = Ir.int rows;
               row_elems = Ir.int row_elems;
               row_stride = Ir.int (row_elems + extra);
             }))
  in
  QCheck2.Test.make ~name:"per-CPE descriptors tile the region exactly" ~count:100 gen
    (fun region ->
      List.for_all
        (fun partition -> same_table (covered_elements region partition) (region_elements region))
        [ Ir.P_rows; Ir.P_cols; Ir.P_grid ])

let inference_suite =
  [
    Alcotest.test_case "Fig. 4 worked example (grid on column-major matrix)" `Quick (fun () ->
        (* A column-major M x N matrix, M = N = 64: the whole matrix as a
           region of N columns of M elements. CPE (rid, cid) must read
           block = M/8 at offset (cid*N/8)*M + rid*M/8 with stride M. *)
        let m = 64 and n = 64 in
        let region =
          { Ir.offset = Ir.int 0; rows = Ir.int n; row_elems = Ir.int m; row_stride = Ir.int m }
        in
        let desc = Dma_inference.infer_desc region Ir.P_grid in
        let offset, block, stride, count = eval_desc desc ~rid:3 ~cid:5 in
        Alcotest.(check int) "offset" ((5 * (n / 8) * m) + (3 * (m / 8))) offset;
        Alcotest.(check int) "block" (m / 8) block;
        Alcotest.(check int) "stride" m stride;
        Alcotest.(check int) "count" (n / 8) count);
    Alcotest.test_case "apply is idempotent" `Quick (fun () ->
        let main = Ir.main_buf ~name:"m" ~elems:4096 in
        let spm = Ir.spm_buf ~name:"s" ~cg_elems:256 ~cpe_elems:8 in
        let body =
          Ir.Dma
            {
              dir = Ir.Get;
              main = "m";
              spm = "s";
              tag = Ir.int 0;
              region =
                { offset = Ir.int 0; rows = Ir.int 16; row_elems = Ir.int 16; row_stride = Ir.int 17 };
              spm_offset = Ir.int 0;
              spm_ld = Ir.int 16;
              partition = Ir.P_grid;
              per_cpe = None;
            }
        in
        let p1 = Dma_inference.apply (tiny_program body [ main; spm ]) in
        let p2 = Dma_inference.apply p1 in
        Alcotest.(check string) "stable" (Ir_print.program_to_string p1) (Ir_print.program_to_string p2));
  ]

let suite =
  expr_suite @ check_suite @ inference_suite
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_simplify_preserves; prop_subst_is_eval; prop_inference_partitions ]
