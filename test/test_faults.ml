(* The resilience layer: deterministic fault injection, crash-isolated
   tuning, checkpoint/resume equivalence, cache degradation, and the graph
   executor's fallback chains. Every test installs its fault plan inside
   [Fun.protect] so a failure never leaks faults into later suites. *)

open Swatop
open Swatop_ops
module G = Swatop_graph.Graph_ir
module C = Swatop_graph.Graph_compile
module E = Swatop_graph.Graph_exec

let gemm_model = lazy (Gemm_cost.fit ())

let plan_of spec =
  match Prelude.Fault.parse spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad fault spec %S: %s" spec e

let with_plan spec f =
  Prelude.Fault.set (Some (plan_of spec));
  Fun.protect ~finally:(fun () -> Prelude.Fault.set None) f

let temp_path name =
  let p = Filename.temp_file ("swatop_faults_" ^ name) ".tmp" in
  Sys.remove p;
  p

(* ------------------------------------------------------------------ *)
(* Plan grammar and deterministic schedules. *)

let plan_suite =
  [
    Alcotest.test_case "parse/to_string round-trips" `Quick (fun () ->
        let spec = "seed=42;tuner.score:p=0.1;interp.dma.wait:n=3;cache.*:always" in
        let p = plan_of spec in
        Alcotest.(check int) "seed" 42 p.Prelude.Fault.seed;
        Alcotest.(check int) "rules" 3 (List.length p.Prelude.Fault.rules);
        let reparsed = plan_of (Prelude.Fault.to_string p) in
        Alcotest.(check bool) "round-trip" true (p = reparsed));
    Alcotest.test_case "malformed specs are rejected, not half-applied" `Quick (fun () ->
        List.iter
          (fun spec ->
            match Prelude.Fault.parse spec with
            | Ok _ -> Alcotest.failf "accepted %S" spec
            | Error _ -> ())
          [ ""; "seed=42"; "site:p=1.5"; "site:n=0"; "site:frobnicate"; ":always"; "seed=x;s:always" ]);
    Alcotest.test_case "same seed yields an identical fault schedule" `Quick (fun () ->
        with_plan "seed=11;flaky.site:p=0.3" (fun () ->
            let schedule () =
              Prelude.Fault.reset ();
              List.map
                (fun i ->
                  try
                    Prelude.Fault.check ~key:i "flaky.site";
                    false
                  with Prelude.Fault.Injected _ -> true)
                (Prelude.Lists.range 0 200)
            in
            let a = schedule () in
            let b = schedule () in
            Alcotest.(check (list bool)) "replayed identically" a b;
            Alcotest.(check bool) "some hits fail" true (List.mem true a);
            Alcotest.(check bool) "some hits pass" true (List.mem false a);
            Alcotest.(check bool) "injected counts the site" true
              (List.mem_assoc "flaky.site" (Prelude.Fault.injected ()))));
    Alcotest.test_case "n= fires exactly the nth hit" `Quick (fun () ->
        with_plan "third.site:n=3" (fun () ->
            let fired =
              List.map
                (fun _ ->
                  try
                    Prelude.Fault.check "third.site";
                    false
                  with Prelude.Fault.Injected { site; hit } ->
                    Alcotest.(check string) "site" "third.site" site;
                    Alcotest.(check int) "hit" 3 hit;
                    true)
                (Prelude.Lists.range 0 8)
            in
            Alcotest.(check (list bool))
              "only the third" [ false; false; true; false; false; false; false; false ] fired));
    Alcotest.test_case "no active plan means check is free" `Quick (fun () ->
        Prelude.Fault.set None;
        Alcotest.(check bool) "inactive" false (Prelude.Fault.active ());
        Prelude.Fault.check "anything.goes");
  ]

(* ------------------------------------------------------------------ *)
(* Result-capturing parallel map. *)

let parallel_suite =
  [
    Alcotest.test_case "try_parallel_map captures per-element crashes in order" `Quick (fun () ->
        let l = Prelude.Lists.range 0 23 in
        let r =
          Prelude.Parallel.try_parallel_map ~jobs:4
            (fun x -> if x mod 5 = 0 then failwith "boom" else x * 2)
            l
        in
        Alcotest.(check int) "length" 23 (List.length r);
        List.iteri
          (fun i outcome ->
            match outcome with
            | Ok v ->
              Alcotest.(check bool) "ok slot" true (i mod 5 <> 0);
              Alcotest.(check int) "value" (i * 2) v
            | Error (Failure m) ->
              Alcotest.(check bool) "error slot" true (i mod 5 = 0);
              Alcotest.(check string) "message" "boom" m
            | Error e -> raise e)
          r);
  ]

(* ------------------------------------------------------------------ *)
(* Tuner crash isolation and checkpoint/resume. *)

let tune ?jobs ?checkpoint t =
  Tuner.model_tune ?jobs ?checkpoint ~gemm_model:(Lazy.force gemm_model)
    ~candidates:(Matmul.space t) ~build:(Matmul.build t) ()

let tuner_suite =
  [
    Alcotest.test_case "a crashing candidate is skipped, not fatal" `Quick (fun () ->
        let t = Matmul.problem ~m:64 ~n:64 ~k:64 in
        let clean = tune ~jobs:1 t in
        with_plan (Printf.sprintf "seed=5;tuner.score:key=%d" clean.best_index) (fun () ->
            let faulted jobs =
              Prelude.Fault.reset ();
              tune ~jobs t
            in
            let s = faulted 1 in
            let p = faulted 4 in
            Alcotest.(check bool) "the clean winner was killed" true
              (s.best_index <> clean.best_index);
            Alcotest.(check int) "jobs=1 equals jobs=4" s.best_index p.best_index;
            Alcotest.(check (float 0.0)) "same runner-up time" s.best_seconds p.best_seconds;
            Alcotest.(check (list (pair string int)))
              "failure histogram"
              [ ("fault:tuner.score", 1) ]
              s.report.scored_failed;
            Alcotest.(check (list (pair string int)))
              "parallel histogram identical" s.report.scored_failed p.report.scored_failed));
    Alcotest.test_case "all candidates crashing raises a structured error" `Quick (fun () ->
        let t = Matmul.problem ~m:64 ~n:64 ~k:64 in
        with_plan "tuner.score:always" (fun () ->
            match tune ~jobs:1 t with
            | _ -> Alcotest.fail "tuned through a fully-failed space"
            | exception Prelude.Swatop_error.Error e ->
              Alcotest.(check string) "site" "tuner.model_tune" e.site));
    Alcotest.test_case "interrupted tune resumes to the uninterrupted winner" `Quick (fun () ->
        let t = Matmul.problem ~m:200 ~n:120 ~k:80 in
        let base = temp_path "ckpt" in
        let ctx =
          {
            Tune_checkpoint.cx_path = Tune_checkpoint.path_for ~base ~key:"matmul-ckpt";
            cx_key = "matmul-ckpt";
            cx_fingerprint = 0xBEEF;
          }
        in
        (* jobs > 1, so the space splits into several chunks; single-job runs
           collapse to one chunk and have no interior boundary to abort at *)
        let uninterrupted = tune ~jobs:2 t in
        (* chunk 2's boundary aborts: like a SIGKILL between chunks, the
           checkpoint file survives with the completed chunks *)
        with_plan "tuner.abort:n=2" (fun () ->
            match tune ~jobs:2 ~checkpoint:ctx t with
            | _ -> Alcotest.fail "abort fault did not fire"
            | exception Prelude.Fault.Injected { site; _ } ->
              Alcotest.(check string) "aborted at the chunk boundary" "tuner.abort" site);
        Alcotest.(check bool) "partial checkpoint persisted" true
          (Sys.file_exists ctx.Tune_checkpoint.cx_path);
        let resumed = tune ~jobs:2 ~checkpoint:ctx t in
        Alcotest.(check int) "same winner" uninterrupted.best_index resumed.best_index;
        Alcotest.(check (float 0.0))
          "same measured seconds" uninterrupted.best_seconds resumed.best_seconds;
        Alcotest.(check int) "same pruned count" uninterrupted.report.pruned
          resumed.report.pruned;
        Alcotest.(check int) "same evaluated count" uninterrupted.report.evaluated
          resumed.report.evaluated;
        Alcotest.(check bool) "completed tune cleared its checkpoint" false
          (Sys.file_exists ctx.Tune_checkpoint.cx_path));
  ]

(* ------------------------------------------------------------------ *)
(* Schedule-cache degradation under injected I/O faults. *)

let cache_suite =
  [
    Alcotest.test_case "a failing load degrades to a cold cache" `Quick (fun () ->
        let path = temp_path "load" in
        let cache = Schedule_cache.create () in
        Schedule_cache.remember cache
          ~key:(Schedule_cache.key ~op:"matmul" ~dims:[ 8; 8; 8 ] ())
          { Schedule_cache.fingerprint = 1; space_size = 4; index = 2; seconds = 0.5 };
        Schedule_cache.save path cache;
        with_plan "cache.load:always" (fun () ->
            let cold = Schedule_cache.load path in
            Alcotest.(check int) "cold" 0 (Schedule_cache.size cold));
        Alcotest.(check bool) "file not quarantined for an I/O fault" true
          (Sys.file_exists path);
        let warm = Schedule_cache.load path in
        Alcotest.(check int) "recovers once the fault clears" 1 (Schedule_cache.size warm);
        Sys.remove path);
    Alcotest.test_case "a failing save skips persistence, then retries" `Quick (fun () ->
        let path = temp_path "save" in
        let cache = Schedule_cache.create () in
        Schedule_cache.remember cache
          ~key:(Schedule_cache.key ~op:"matmul" ~dims:[ 8; 8; 8 ] ())
          { Schedule_cache.fingerprint = 1; space_size = 4; index = 2; seconds = 0.5 };
        with_plan "cache.save:always" (fun () -> Schedule_cache.save path cache);
        Alcotest.(check bool) "nothing persisted under the fault" false (Sys.file_exists path);
        Schedule_cache.save path cache;
        Alcotest.(check bool) "still dirty, so the retry persists" true (Sys.file_exists path);
        Alcotest.(check int) "round-trip" 1 (Schedule_cache.size (Schedule_cache.load path));
        Sys.remove path);
  ]

(* ------------------------------------------------------------------ *)
(* Interpreter DMA fault sites. *)

let interp_suite =
  [
    Alcotest.test_case "DMA issue/wait sites raise from inside a run" `Quick (fun () ->
        let t = Matmul.problem ~m:64 ~n:64 ~k:64 in
        let p = Tuner.prepare (Matmul.build t (List.hd (Matmul.space t))) in
        List.iter
          (fun site ->
            with_plan (site ^ ":n=1") (fun () ->
                match Interp.run ~numeric:false p with
                | _ -> Alcotest.failf "%s fault did not fire" site
                | exception Prelude.Fault.Injected i ->
                  Alcotest.(check string) "site" site i.site))
          [ "interp.dma.issue"; "interp.dma.wait" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Graph executor fallback chains. *)

let compile g = C.compile ~top_k:1 ~gemm_model:(Lazy.force gemm_model) g
let smoke_plan = lazy (compile (G.smoke ~batch:2))

(* Producers and consumers disagree spatially, so the plan carries copy
   steps (same shape as test_graph's seam network). *)
let seam_plan =
  lazy
    (compile
       (G.empty ~name:"seam" ~batch:2
       |> G.conv ~name:"c1" ~ni:2 ~no:4 ~out:8 ~k:3
       |> G.conv ~name:"c2" ~ni:4 ~no:4 ~out:8 ~k:3
       |> G.conv ~name:"c3" ~ni:4 ~no:4 ~out:4 ~k:1
       |> G.finish))

let graph_suite =
  [
    Alcotest.test_case "every fallback chain terminates at explicit GEMM" `Quick (fun () ->
        let plan = Lazy.force smoke_plan in
        let chains = ref 0 in
        List.iter
          (function
            | C.Layer { st_impl; st_fallbacks = _ :: _ as fb; _ } ->
              incr chains;
              let chain = st_impl :: fb in
              Alcotest.(check bool) "chain reaches explicit" true
                (List.exists (fun im -> String.equal im.C.im_algo "explicit") chain);
              (* explicit is pinned last — unless it is already the winner,
                 in which case the chain starts with the terminal strategy *)
              if st_impl.C.im_algo <> "explicit" then
                let last = List.nth fb (List.length fb - 1) in
                Alcotest.(check string) "terminal strategy" "explicit" last.C.im_algo
            | _ -> ())
          plan.C.p_steps;
        Alcotest.(check bool) "at least one conv has a chain" true (!chains > 0));
    Alcotest.test_case "a failing layer retries its next-best implementation" `Quick (fun () ->
        let plan = Lazy.force smoke_plan in
        with_plan "seed=3;graph.layer:first=1" (fun () ->
            let r = E.run ~numeric:true plan in
            (match r.E.r_incidents with
            | [ i ] ->
              Alcotest.(check string) "site" "graph.layer" i.E.i_site;
              Alcotest.(check int) "one retry" 1 i.E.i_retries;
              Alcotest.(check (list string)) "cause" [ "fault:graph.layer" ] i.E.i_causes
            | l -> Alcotest.failf "expected one incident, got %d" (List.length l));
            match r.E.r_max_err with
            | Some e -> Alcotest.(check bool) "numeric within 1e-4" true (e <= 1e-4)
            | None -> Alcotest.fail "numeric run reported no error bound"));
    Alcotest.test_case "a failing copy falls back to the host oracle" `Quick (fun () ->
        let plan = Lazy.force seam_plan in
        Alcotest.(check bool) "plan carries a copy step" true
          (List.exists (function C.Copy _ -> true | _ -> false) plan.C.p_steps);
        with_plan "graph.copy:first=1" (fun () ->
            let r = E.run ~numeric:true plan in
            (match r.E.r_incidents with
            | i :: _ ->
              Alcotest.(check string) "site" "graph.copy" i.E.i_site;
              Alcotest.(check string) "final strategy" "host-copy" i.E.i_final
            | [] -> Alcotest.fail "no incident recorded");
            match r.E.r_max_err with
            | Some e -> Alcotest.(check bool) "numeric within 1e-4" true (e <= 1e-4)
            | None -> Alcotest.fail "numeric run reported no error bound"));
    Alcotest.test_case "smoke net stays numeric under a DMA fault" `Quick (fun () ->
        let plan = Lazy.force smoke_plan in
        with_plan "seed=9;interp.dma.wait:n=3" (fun () ->
            let r = E.run ~numeric:true plan in
            Alcotest.(check bool) "fallback engaged" true (r.E.r_incidents <> []);
            match r.E.r_max_err with
            | Some e -> Alcotest.(check bool) "numeric within 1e-4" true (e <= 1e-4)
            | None -> Alcotest.fail "numeric run reported no error bound"));
    Alcotest.test_case "incident reports render in text and JSON" `Quick (fun () ->
        let plan = Lazy.force smoke_plan in
        with_plan "seed=3;graph.layer:first=1" (fun () ->
            let r = E.run ~numeric:false plan in
            let contains hay needle =
              let lh = String.length hay and ln = String.length needle in
              let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
              go 0
            in
            let text = E.to_text r in
            Alcotest.(check bool) "text names the site" true (contains text "graph.layer");
            let json = E.to_json r in
            Alcotest.(check bool) "json has incidents" true (contains json "\"incidents\"");
            Alcotest.(check bool) "json names the cause" true
              (contains json "fault:graph.layer")));
  ]

let suite = plan_suite @ parallel_suite @ tuner_suite @ cache_suite @ interp_suite @ graph_suite
