(* Interpreter semantics beyond what the operator suites cover: timing
   composition, fidelity modes, numeric bounds checking, and the hand-built
   programs that pin the discrete-event behaviour down. *)

open Swatop

let main = Ir.main_buf ~name:"m" ~elems:4096
let spm = Ir.spm_buf ~name:"s" ~cg_elems:1024 ~cpe_elems:16

let get ?(tag = 0) ?(offset = Ir.int 0) ?(rows = 16) ?(elems = 64) () =
  Ir.Dma
    {
      dir = Ir.Get;
      main = "m";
      spm = "s";
      tag = Ir.int tag;
      region =
        { offset; rows = Ir.int rows; row_elems = Ir.int elems; row_stride = Ir.int elems };
      spm_offset = Ir.int 0;
      spm_ld = Ir.int elems;
      partition = Ir.P_rows;
      per_cpe = None;
    }

let prog body = Tuner.prepare (Ir.program ~name:"t" ~bufs:[ main; spm ] body)

let run ?fidelity body = Interp.run ?fidelity ~numeric:false (prog body)

let gemm m n k =
  Ir.Gemm
    {
      variant = { a_major = Row_major; b_major = Row_major; vec = Vec_m };
      m = Ir.int m;
      n = Ir.int n;
      k = Ir.int k;
      a = { g_buf = "s"; g_offset = Ir.int 0; g_ld = Ir.int k };
      b = { g_buf = "s"; g_offset = Ir.int 0; g_ld = Ir.int n };
      c = { g_buf = "s"; g_offset = Ir.int 0; g_ld = Ir.int n };
    }

let timing_suite =
  [
    Alcotest.test_case "unwaited DMA still drains into total time" `Quick (fun () ->
        let r = run (get ()) in
        Alcotest.(check bool) "positive" true (r.Interp.seconds > 0.0);
        Alcotest.(check bool) "equals dma busy + latency" true
          (Prelude.Floats.approx_equal r.Interp.seconds
             (r.Interp.dma_busy_seconds +. Sw26010.Config.dma_latency_s)));
    Alcotest.test_case "waited DMA then compute serializes" `Quick (fun () ->
        let body = Ir.seq [ get (); Ir.Dma_wait { tag = Ir.int 0 }; gemm 16 16 16 ] in
        let r = run body in
        Alcotest.(check bool) "sum" true
          (Prelude.Floats.approx_equal r.Interp.seconds
             (r.Interp.dma_busy_seconds +. Sw26010.Config.dma_latency_s
            +. r.Interp.compute_busy_seconds)));
    Alcotest.test_case "unwaited DMA overlaps compute" `Quick (fun () ->
        let body = Ir.seq [ get (); gemm 64 64 64 ] in
        let r = run body in
        Alcotest.(check bool) "less than sum" true
          (r.Interp.seconds < r.Interp.dma_busy_seconds +. r.Interp.compute_busy_seconds));
    Alcotest.test_case "gemm time matches the kernel model" `Quick (fun () ->
        let r = run (gemm 32 48 16) in
        let call =
          Primitives.Spm_gemm.call
            ~variant:{ a_major = Row_major; b_major = Row_major; vec = Vec_m }
            ~m:32 ~n:48 ~k:16 ~lda:16 ~ldb:48 ~ldc:48
        in
        Alcotest.(check bool) "seconds" true
          (Prelude.Floats.approx_equal r.Interp.seconds (Primitives.Spm_gemm.seconds call));
        Alcotest.(check int) "one call" 1 r.Interp.gemm_calls;
        Alcotest.(check bool) "flops" true
          (Prelude.Floats.approx_equal r.Interp.gemm_flops (2.0 *. 32. *. 48. *. 16.)));
    Alcotest.test_case "sampled fidelity close to exact on grid partitions" `Quick (fun () ->
        let body =
          Ir.seq [ get ~rows:16 ~elems:64 (); Ir.Dma_wait { tag = Ir.int 0 } ]
        in
        let exact = run ~fidelity:Interp.Exact_cpes body in
        let sampled = run ~fidelity:Interp.Sampled_cpes body in
        let ratio = sampled.Interp.seconds /. exact.Interp.seconds in
        Alcotest.(check bool) (Printf.sprintf "ratio %.3f" ratio) true (ratio >= 0.99 && ratio < 1.3));
    Alcotest.test_case "memoized gemm cache survives changing dims" `Quick (fun () ->
        (* loop body alternates between two call shapes via min() *)
        let body =
          Ir.for_ ~iter:"i" ~lo:(Ir.int 0) ~hi:(Ir.int 10)
            (Ir.Gemm
               {
                 variant = { a_major = Row_major; b_major = Row_major; vec = Vec_m };
                 m = Ir.(emin (int 16) (int 160 - (var "i" * int 16)));
                 n = Ir.int 16;
                 k = Ir.int 16;
                 a = { g_buf = "s"; g_offset = Ir.int 0; g_ld = Ir.int 16 };
                 b = { g_buf = "s"; g_offset = Ir.int 0; g_ld = Ir.int 16 };
                 c = { g_buf = "s"; g_offset = Ir.int 0; g_ld = Ir.int 16 };
               })
        in
        let r = run body in
        Alcotest.(check int) "ten calls" 10 r.Interp.gemm_calls;
        (* all iterations have m = 16 (the min never binds below 16) *)
        Alcotest.(check bool) "flops" true
          (Prelude.Floats.approx_equal r.Interp.gemm_flops (10.0 *. 2.0 *. 16. *. 16. *. 16.)));
  ]

let numeric_suite =
  [
    Alcotest.test_case "missing binding rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Interp.run ~numeric:true (prog (get ())));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "wrong binding size rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Interp.run ~bindings:[ ("m", Array.make 7 0.0) ] ~numeric:true (prog (get ())));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "SPM out-of-bounds access rejected" `Quick (fun () ->
        let body = get ~rows:16 ~elems:256 () (* 4096 elems > 1024 SPM backing *) in
        let p = prog body in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Interp.run ~bindings:(Interp.alloc_bindings p) ~numeric:true p);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "alloc_bindings covers exactly the main buffers" `Quick (fun () ->
        let p = prog (get ()) in
        let bindings = Interp.alloc_bindings p in
        Alcotest.(check (list string)) "names" [ "m" ] (List.map fst bindings);
        Alcotest.(check int) "sized cg_elems" 4096 (Array.length (List.assoc "m" bindings));
        Alcotest.(check bool) "zeroed" true (Array.for_all (fun v -> v = 0.0) (List.assoc "m" bindings));
        (* the allocation satisfies a numeric run as-is *)
        ignore (Interp.run ~bindings ~numeric:true p));
    Alcotest.test_case "get/put round trip preserves data" `Quick (fun () ->
        let put =
          Ir.Dma
            {
              dir = Ir.Put;
              main = "m";
              spm = "s";
              tag = Ir.int 1;
              region =
                {
                  offset = Ir.int 2048;
                  rows = Ir.int 8;
                  row_elems = Ir.int 64;
                  row_stride = Ir.int 64;
                };
              spm_offset = Ir.int 0;
              spm_ld = Ir.int 64;
              partition = Ir.P_rows;
              per_cpe = None;
            }
        in
        let body =
          Ir.seq [ get ~rows:8 ~elems:64 (); Ir.Dma_wait { tag = Ir.int 0 }; put ]
        in
        let arr = Array.init 4096 float_of_int in
        ignore (Interp.run ~bindings:[ ("m", arr) ] ~numeric:true (prog body));
        for i = 0 to 511 do
          Alcotest.(check (float 0.0)) "copied" (float_of_int i) arr.(2048 + i)
        done);
    Alcotest.test_case "strided SPM landing (spm_ld)" `Quick (fun () ->
        (* gather 8 rows of 4 elems into an SPM image with ld 8, then put the
           packed image back; holes stay zero *)
        let g =
          Ir.Dma
            {
              dir = Ir.Get;
              main = "m";
              spm = "s";
              tag = Ir.int 0;
              region =
                { offset = Ir.int 0; rows = Ir.int 8; row_elems = Ir.int 4; row_stride = Ir.int 4 };
              spm_offset = Ir.int 0;
              spm_ld = Ir.int 8;
              partition = Ir.P_rows;
              per_cpe = None;
            }
        in
        let put =
          Ir.Dma
            {
              dir = Ir.Put;
              main = "m";
              spm = "s";
              tag = Ir.int 1;
              region =
                {
                  offset = Ir.int 1024;
                  rows = Ir.int 1;
                  row_elems = Ir.int 64;
                  row_stride = Ir.int 64;
                };
              spm_offset = Ir.int 0;
              spm_ld = Ir.int 64;
              partition = Ir.P_cols;
              per_cpe = None;
            }
        in
        let body = Ir.seq [ g; Ir.Dma_wait { tag = Ir.int 0 }; put ] in
        let arr = Array.init 4096 (fun i -> if i < 32 then 1.0 else 0.0) in
        ignore (Interp.run ~bindings:[ ("m", arr) ] ~numeric:true (prog body));
        (* row r landed at SPM offset 8r: positions 0-3 hold data, 4-7 zero *)
        Alcotest.(check (float 0.0)) "data" 1.0 arr.(1024);
        Alcotest.(check (float 0.0)) "hole" 0.0 arr.(1024 + 4));
  ]

let suite = timing_suite @ numeric_suite
