(* Persistence robustness of the best-schedule cache: corrupted, truncated,
   version-mismatched and stale-fingerprint files must degrade to a re-tune
   (an empty or partial cache), never to an exception or a wrong schedule. *)

open Swatop_ops

let gemm_model = lazy (Swatop.Gemm_cost.fit ())

let temp_path name =
  let p = Filename.temp_file ("swatop_cache_" ^ name) ".cache" in
  Sys.remove p;
  p

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* A populated cache saved through the real tuning path. *)
let tune_small ?cache () =
  let t = Matmul.problem ~m:64 ~n:64 ~k:64 in
  Matmul.tune ?cache ~top_k:1 ~gemm_model:(Lazy.force gemm_model) t

let saved_cache_file name =
  let path = temp_path name in
  let cache = Swatop.Schedule_cache.create () in
  ignore (tune_small ~cache ());
  Swatop.Schedule_cache.save path cache;
  path

let suite =
  [
    Alcotest.test_case "missing file loads as an empty cache" `Quick (fun () ->
        let cache = Swatop.Schedule_cache.load (temp_path "missing") in
        Alcotest.(check int) "empty" 0 (Swatop.Schedule_cache.size cache));
    Alcotest.test_case "garbage file loads without raising and re-tunes" `Quick (fun () ->
        let path = temp_path "garbage" in
        write_file path "\x00\xffnot a cache\nrandom \x01 bytes\n1 2 3\n";
        let cache = Swatop.Schedule_cache.load path in
        Alcotest.(check int) "nothing salvaged" 0 (Swatop.Schedule_cache.size cache);
        (* the corrupt file is quarantined out of the way, not left to poison
           the next load *)
        Alcotest.(check bool) "corrupt file moved aside" false (Sys.file_exists path);
        Alcotest.(check bool) "quarantined copy kept" true (Sys.file_exists (path ^ ".corrupt"));
        (* the poisoned cache still serves tuning: miss then remember *)
        let o = tune_small ~cache () in
        Alcotest.(check bool) "tuned, not served stale" false o.Swatop.Tuner.report.cache_hit;
        Alcotest.(check int) "winner remembered" 1 (Swatop.Schedule_cache.size cache);
        Sys.remove (path ^ ".corrupt"));
    Alcotest.test_case "truncated file salvages the intact prefix" `Quick (fun () ->
        let path = temp_path "truncated" in
        let cache = Swatop.Schedule_cache.create () in
        ignore (tune_small ~cache ());
        Swatop.Schedule_cache.remember cache
          ~key:(Swatop.Schedule_cache.key ~op:"matmul" ~dims:[ 9; 9; 9 ] ())
          { Swatop.Schedule_cache.fingerprint = 1; space_size = 4; index = 2; seconds = 0.5 };
        Swatop.Schedule_cache.save path cache;
        let full = read_file path in
        (* chop inside the last entry's field structure: everything from the
           final tab on is lost, leaving a 4-field line *)
        write_file path (String.sub full 0 (String.rindex full '\t'));
        let cache = Swatop.Schedule_cache.load path in
        Alcotest.(check int) "intact line kept, mangled line dropped" 1
          (Swatop.Schedule_cache.size cache);
        Alcotest.(check bool) "damaged original quarantined" true
          (Sys.file_exists (path ^ ".corrupt"));
        let o = tune_small ~cache () in
        Alcotest.(check bool) "still serves tuning" true
          (o.Swatop.Tuner.report.cache_hit || Swatop.Schedule_cache.size cache >= 1);
        Sys.remove (path ^ ".corrupt"));
    Alcotest.test_case "version mismatch ignores the whole file" `Quick (fun () ->
        let path = saved_cache_file "version" in
        let full = read_file path in
        let body =
          match String.index_opt full '\n' with
          | Some i -> String.sub full (i + 1) (String.length full - i - 1)
          | None -> ""
        in
        write_file path ("swatop-schedule-cache v999\n" ^ body);
        let cache = Swatop.Schedule_cache.load path in
        Alcotest.(check int) "future version not parsed" 0 (Swatop.Schedule_cache.size cache);
        Alcotest.(check bool) "unreadable version quarantined" true
          (Sys.file_exists (path ^ ".corrupt"));
        Sys.remove (path ^ ".corrupt"));
    Alcotest.test_case "fingerprint mismatch is a miss, not a stale hit" `Quick (fun () ->
        let cache = Swatop.Schedule_cache.create () in
        let key = Swatop.Schedule_cache.key ~op:"matmul" ~dims:[ 64; 64; 64 ] () in
        Swatop.Schedule_cache.remember cache ~key
          { Swatop.Schedule_cache.fingerprint = 12345; space_size = 7; index = 3; seconds = 1.0 };
        (match
           Swatop.Schedule_cache.find cache ~key ~fingerprint:54321 ~space_size:7
         with
        | Some _ -> Alcotest.fail "stale entry served despite fingerprint mismatch"
        | None -> ());
        Alcotest.(check int) "recorded as a miss" 1 (Swatop.Schedule_cache.misses cache);
        (* the real tuning path re-tunes and overwrites the stale entry *)
        let o = tune_small ~cache () in
        Alcotest.(check bool) "re-tuned" false o.Swatop.Tuner.report.cache_hit;
        let o2 = tune_small ~cache () in
        Alcotest.(check bool) "fresh entry now hits" true o2.Swatop.Tuner.report.cache_hit);
    Alcotest.test_case "save is atomic: no temp droppings, reload round-trips" `Quick (fun () ->
        let path = saved_cache_file "atomic" in
        let dir = Filename.dirname path and base = Filename.basename path in
        Array.iter
          (fun f ->
            if f <> base && String.length f >= String.length base
               && String.sub f 0 (String.length base) = base then
              Alcotest.fail ("leftover temp file " ^ f))
          (Sys.readdir dir);
        let cache = Swatop.Schedule_cache.load path in
        Alcotest.(check int) "round-trip" 1 (Swatop.Schedule_cache.size cache);
        let o = tune_small ~cache () in
        Alcotest.(check bool) "reloaded entry hits" true o.Swatop.Tuner.report.cache_hit;
        Sys.remove path);
  ]
