(* The serving subsystem: virtual-clock determinism, bucket-FIFO batching,
   provable-miss-only shedding, least-loaded multi-CG dispatch, fault-kill
   drain, and the end-to-end engine invariants (request conservation,
   seed-fixed bit-identical replay at any host job count). Synthetic
   executors drive the scheduler tests; one compiled smoke ladder (shared,
   lazy) backs the real-runtime tests. *)

open Swatop_serve
module Batch = Serve_batch
module Shard = Serve_shard
module Engine = Serve_engine

let plan_of spec =
  match Prelude.Fault.parse spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad fault spec %S: %s" spec e

let with_plan spec f =
  Prelude.Fault.set (Some (plan_of spec));
  Fun.protect ~finally:(fun () -> Prelude.Fault.set None) f

let request ?(cls = "steady") ?(bucket = "net") ~id ~arrival ~deadline () =
  { Batch.rq_id = id; rq_class = cls; rq_bucket = bucket; rq_arrival = arrival; rq_deadline = deadline }

(* A synthetic executor: fixed seconds per batch, no internal fallbacks. *)
let synth ?(floor = 0.5e-3) ?(per_batch = 1e-3) () =
  {
    Shard.ex_name = "synthetic";
    ex_floor = floor;
    ex_nominal = (fun _ -> per_batch);
    ex_run =
      (fun ~cg:_ ~n:_ -> { Shard.ru_seconds = per_batch; ru_fallbacks = 0; ru_retried = 0 });
  }

(* ------------------------------------------------------------------ *)
(* Serve_sim: the event loop's ordering contract. *)

let sim_suite =
  [
    Alcotest.test_case "events fire in time order; ties in insertion order" `Quick (fun () ->
        let sim = Serve_sim.create () in
        let log = ref [] in
        let mark tag () = log := tag :: !log in
        Serve_sim.at sim 2.0 (mark "c");
        Serve_sim.at sim 1.0 (mark "a1");
        Serve_sim.at sim 1.0 (mark "a2");
        Serve_sim.at sim 1.5 (mark "b");
        Serve_sim.run sim;
        Alcotest.(check (list string)) "order" [ "a1"; "a2"; "b"; "c" ] (List.rev !log);
        Alcotest.(check (float 0.0)) "clock at last event" 2.0 (Serve_sim.now sim));
    Alcotest.test_case "past times clamp to now, after already-queued events" `Quick (fun () ->
        let sim = Serve_sim.create () in
        let log = ref [] in
        Serve_sim.at sim 1.0 (fun () ->
            Serve_sim.at sim 1.0 (fun () -> log := "same-time-later" :: !log);
            Serve_sim.at sim 0.2 (fun () -> log := "past-clamped" :: !log);
            log := "first" :: !log);
        Serve_sim.run sim;
        Alcotest.(check (list string))
          "order" [ "first"; "same-time-later"; "past-clamped" ] (List.rev !log));
  ]

(* ------------------------------------------------------------------ *)
(* Serve_trace: seeded, open-loop, the right shape. *)

let trace_suite =
  [
    Alcotest.test_case "same seed replays the identical trace" `Quick (fun () ->
        let g () = Serve_trace.generate Poisson ~rate:500.0 ~duration:2.0 ~seed:11 in
        Alcotest.(check bool) "identical" true (g () = g ());
        let other = Serve_trace.generate Poisson ~rate:500.0 ~duration:2.0 ~seed:12 in
        Alcotest.(check bool) "seed matters" false (g () = other));
    Alcotest.test_case "arrivals are ordered and inside [0, duration)" `Quick (fun () ->
        List.iter
          (fun kind ->
            let tr = Serve_trace.generate kind ~rate:300.0 ~duration:3.0 ~seed:5 in
            let rec ordered = function
              | a :: (b :: _ as rest) ->
                a.Serve_trace.ar_time <= b.Serve_trace.ar_time && ordered rest
              | _ -> true
            in
            Alcotest.(check bool) "ordered" true (ordered tr);
            List.iter
              (fun a ->
                if a.Serve_trace.ar_time < 0.0 || a.Serve_trace.ar_time >= 3.0 then
                  Alcotest.failf "arrival at %g outside [0, 3)" a.Serve_trace.ar_time)
              tr)
          [ Serve_trace.Poisson; Serve_trace.Bursty ]);
    Alcotest.test_case "both traces hit the mean rate within sampling noise" `Quick (fun () ->
        List.iter
          (fun kind ->
            let tr = Serve_trace.generate kind ~rate:200.0 ~duration:10.0 ~seed:7 in
            let n = List.length tr in
            (* 2000 expected; 4-sigma of a Poisson count is ~180. *)
            if n < 1700 || n > 2300 then
              Alcotest.failf "%s: %d arrivals for 2000 expected" (Serve_trace.kind_to_string kind) n)
          [ Serve_trace.Poisson; Serve_trace.Bursty ]);
    Alcotest.test_case "bursty tags both traffic classes" `Quick (fun () ->
        let tr = Serve_trace.generate Bursty ~rate:200.0 ~duration:5.0 ~seed:7 in
        let has cls = List.exists (fun a -> a.Serve_trace.ar_class = cls) tr in
        Alcotest.(check bool) "burst class" true (has "burst");
        Alcotest.(check bool) "steady class" true (has "steady"));
    Alcotest.test_case "bursty per-class rates match the phase profile" `Quick (fun () ->
        (* 25% of each 1 s cycle runs at 3x rate, 75% at 1/3x: over 10 s at
           rate 200 that is ~1500 burst and ~500 steady arrivals. Bounds sit
           at roughly 4 sigma of the per-class Poisson counts. *)
        let tr = Serve_trace.generate Bursty ~rate:200.0 ~duration:10.0 ~seed:7 in
        let count cls =
          List.length (List.filter (fun a -> a.Serve_trace.ar_class = cls) tr)
        in
        let burst = count "burst" and steady = count "steady" in
        if burst < 1300 || burst > 1700 then
          Alcotest.failf "burst class: %d arrivals for ~1500 expected" burst;
        if steady < 400 || steady > 600 then
          Alcotest.failf "steady class: %d arrivals for ~500 expected" steady);
    Alcotest.test_case "bursty class tags are a pure function of arrival time" `Quick
      (fun () ->
        (* Whatever the seed, an arrival's class must agree with the phase
           its timestamp lands in — tags never drift from the profile. *)
        List.iter
          (fun seed ->
            let tr = Serve_trace.generate Bursty ~rate:200.0 ~duration:4.0 ~seed in
            List.iter
              (fun a ->
                let expect =
                  if Float.rem a.Serve_trace.ar_time 1.0 < 0.25 then "burst" else "steady"
                in
                if a.Serve_trace.ar_class <> expect then
                  Alcotest.failf "seed %d: arrival at %.6f tagged %s, phase says %s" seed
                    a.Serve_trace.ar_time a.Serve_trace.ar_class expect)
              tr)
          [ 1; 5; 9 ]);
  ]

(* ------------------------------------------------------------------ *)
(* Serve_batch: FIFO buckets, size and timeout triggers. *)

let batch_suite =
  [
    Alcotest.test_case "size trigger releases a full FIFO batch" `Quick (fun () ->
        let b = Batch.create ~max_batch:3 ~timeout:0.005 () in
        let add id = Batch.add b (request ~id ~arrival:(float_of_int id *. 1e-4) ~deadline:1.0 ()) in
        (match add 0 with
        | [], Some _ -> ()
        | _ -> Alcotest.fail "first request should only arm a timer");
        ignore (add 1);
        match add 2 with
        | [ batch ], _ ->
          Alcotest.(check (list int)) "FIFO order" [ 0; 1; 2 ]
            (List.map (fun r -> r.Batch.rq_id) batch);
          Alcotest.(check int) "bucket drained" 0 (Batch.queued b)
        | _ -> Alcotest.fail "third request should release one full batch");
    Alcotest.test_case "timeout flushes a partial batch, FIFO" `Quick (fun () ->
        let b = Batch.create ~max_batch:8 ~timeout:0.005 () in
        let timer =
          match Batch.add b (request ~id:0 ~arrival:0.0 ~deadline:1.0 ()) with
          | [], Some t -> t
          | _ -> Alcotest.fail "expected a timer"
        in
        Alcotest.(check (float 1e-9)) "timer at arrival+timeout" 0.005 timer;
        ignore (Batch.add b (request ~id:1 ~arrival:0.001 ~deadline:1.0 ()));
        (match Batch.on_timer b ~now:timer ~bucket:"net" with
        | [ batch ], None ->
          Alcotest.(check (list int)) "both flushed, FIFO" [ 0; 1 ]
            (List.map (fun r -> r.Batch.rq_id) batch)
        | _ -> Alcotest.fail "timer should flush the partial batch");
        Alcotest.(check int) "empty" 0 (Batch.queued b));
    Alcotest.test_case "stale timer re-arms for a fresher head" `Quick (fun () ->
        let b = Batch.create ~max_batch:2 ~timeout:0.005 () in
        ignore (Batch.add b (request ~id:0 ~arrival:0.0 ~deadline:1.0 ()));
        (* Size trigger empties the bucket before the 0.005 timer fires... *)
        ignore (Batch.add b (request ~id:1 ~arrival:0.001 ~deadline:1.0 ()));
        (* ...and a fresh request arrives just before it does. *)
        ignore (Batch.add b (request ~id:2 ~arrival:0.004 ~deadline:1.0 ()));
        match Batch.on_timer b ~now:0.005 ~bucket:"net" with
        | [], Some t ->
          Alcotest.(check (float 1e-9)) "re-armed for the new head" 0.009 t;
          Alcotest.(check int) "still queued" 1 (Batch.queued b)
        | _ -> Alcotest.fail "stale timer must not flush a fresh request early");
    Alcotest.test_case "buckets are independent" `Quick (fun () ->
        let b = Batch.create ~max_batch:2 ~timeout:0.005 () in
        ignore (Batch.add b (request ~bucket:"a" ~id:0 ~arrival:0.0 ~deadline:1.0 ()));
        ignore (Batch.add b (request ~bucket:"b" ~id:1 ~arrival:0.0 ~deadline:1.0 ()));
        match Batch.add b (request ~bucket:"a" ~id:2 ~arrival:0.001 ~deadline:1.0 ()) with
        | [ batch ], _ ->
          Alcotest.(check (list int)) "only bucket a flushes" [ 0; 2 ]
            (List.map (fun r -> r.Batch.rq_id) batch);
          Alcotest.(check int) "bucket b untouched" 1 (Batch.queued b)
        | _ -> Alcotest.fail "bucket a should flush on its size trigger");
  ]

(* ------------------------------------------------------------------ *)
(* Serve_admit: shedding fires only on a provable miss. *)

let admit_suite =
  [
    Alcotest.test_case "viable exactly until now + floor > deadline" `Quick (fun () ->
        let a = Serve_admit.create ~queue_depth:8 ~slo:0.010 ~floor:0.002 () in
        let deadline = 0.010 in
        Alcotest.(check bool) "early" true (Serve_admit.viable a ~now:0.0 ~deadline);
        Alcotest.(check bool) "boundary (= deadline) still viable" true
          (Serve_admit.viable a ~now:0.008 ~deadline);
        Alcotest.(check bool) "past boundary" false (Serve_admit.viable a ~now:0.0081 ~deadline);
        Alcotest.(check int) "exactly the provable miss was recorded" 1
          (Serve_admit.shed_hopeless a));
    Alcotest.test_case "queue-full sheds at the bound, not before" `Quick (fun () ->
        let a = Serve_admit.create ~queue_depth:2 ~slo:0.010 ~floor:0.0 () in
        (match Serve_admit.admit a ~now:0.0 ~queued:1 with
        | Ok d -> Alcotest.(check (float 1e-9)) "deadline = now + slo" 0.010 d
        | Error _ -> Alcotest.fail "below the bound must admit");
        (match Serve_admit.admit a ~now:0.0 ~queued:2 with
        | Error Serve_admit.Queue_full -> ()
        | _ -> Alcotest.fail "at the bound must shed");
        Alcotest.(check int) "recorded" 1 (Serve_admit.shed_queue_full a));
    Alcotest.test_case "floor above the SLO is hopeless on arrival" `Quick (fun () ->
        let a = Serve_admit.create ~queue_depth:8 ~slo:0.001 ~floor:0.002 () in
        (match Serve_admit.admit a ~now:0.0 ~queued:0 with
        | Error Serve_admit.Hopeless -> ()
        | _ -> Alcotest.fail "no execution can meet this SLO");
        Alcotest.(check int) "recorded" 1 (Serve_admit.shed_hopeless a));
    Alcotest.test_case "per-class latency accounting is exact" `Quick (fun () ->
        let a = Serve_admit.create ~queue_depth:8 ~slo:0.010 ~floor:0.0 () in
        List.iter
          (fun (cls, l) -> Serve_admit.complete a ~cls ~latency:l)
          [ ("x", 0.001); ("y", 0.002); ("x", 0.003); ("x", 0.020) ];
        Alcotest.(check int) "completed" 4 (Serve_admit.completed a);
        Alcotest.(check int) "one violation" 1 (Serve_admit.slo_violations a);
        match Serve_admit.classes a with
        | [ ("x", sx); ("y", sy) ] ->
          Alcotest.(check int) "x count" 3 (Prelude.Running_stat.count sx);
          Alcotest.(check int) "y count" 1 (Prelude.Running_stat.count sy)
        | cs -> Alcotest.failf "unexpected classes: %d" (List.length cs));
  ]

(* ------------------------------------------------------------------ *)
(* Serve_shard: dispatch, completion order, fault-kill drain. *)

let shard_suite =
  [
    Alcotest.test_case "one CG completes batches in submission order (FIFO)" `Quick (fun () ->
        let sim = Serve_sim.create () in
        let order = ref [] in
        let shard =
          Shard.create ~sim ~executor:(synth ()) ~cgs:1
            ~on_complete:(fun reqs ~finished:_ ~cg:_ ->
              order := List.map (fun r -> r.Batch.rq_id) reqs @ !order)
            ()
        in
        List.iter
          (fun id -> Shard.submit shard [ request ~id ~arrival:0.0 ~deadline:1.0 () ])
          [ 0; 1; 2; 3 ];
        Serve_sim.run sim;
        Alcotest.(check (list int)) "completion order" [ 0; 1; 2; 3 ] (List.rev !order));
    Alcotest.test_case "least-loaded dispatch spreads batches over CGs" `Quick (fun () ->
        let sim = Serve_sim.create () in
        let shard =
          Shard.create ~sim ~executor:(synth ()) ~cgs:4
            ~on_complete:(fun _ ~finished:_ ~cg:_ -> ())
            ()
        in
        for id = 0 to 7 do
          Shard.submit shard [ request ~id ~arrival:0.0 ~deadline:1.0 () ]
        done;
        Serve_sim.run sim;
        List.iter
          (fun (s : Shard.cg_stat) ->
            Alcotest.(check int) (Printf.sprintf "cg%d batches" s.g_id) 2 s.g_batches)
          (Shard.stats shard));
    Alcotest.test_case "a killed CG drains its backlog; nothing is lost" `Quick (fun () ->
        with_plan "seed=3;serve.cg:key=1" (fun () ->
            let sim = Serve_sim.create () in
            let completed = ref 0 in
            let shard =
              Shard.create ~sim ~executor:(synth ()) ~cgs:2
                ~on_complete:(fun reqs ~finished:_ ~cg ->
                  Alcotest.(check int) "survivor executes everything" 0 cg;
                  completed := !completed + List.length reqs)
                ()
            in
            for id = 0 to 9 do
              Shard.submit shard [ request ~id ~arrival:0.0 ~deadline:1.0 () ]
            done;
            Serve_sim.run sim;
            Alcotest.(check int) "all requests completed" 10 !completed;
            Alcotest.(check int) "one survivor" 1 (Shard.alive shard);
            match Shard.kills shard with
            | [ k ] ->
              Alcotest.(check int) "cg1 died" 1 k.Shard.k_cg;
              Alcotest.(check bool) "its backlog drained" true (k.Shard.k_drained >= 1)
            | ks -> Alcotest.failf "expected one kill, got %d" (List.length ks)));
    Alcotest.test_case "killing every CG is a structured error" `Quick (fun () ->
        with_plan "seed=3;serve.cg:always" (fun () ->
            let sim = Serve_sim.create () in
            let shard =
              Shard.create ~sim ~executor:(synth ()) ~cgs:2
                ~on_complete:(fun _ ~finished:_ ~cg:_ -> ())
                ()
            in
            match Shard.submit shard [ request ~id:0 ~arrival:0.0 ~deadline:1.0 () ] with
            | () -> Alcotest.fail "dispatch with no live CG should raise"
            | exception Prelude.Swatop_error.Error e ->
              Alcotest.(check string) "site" "Serve_shard.submit" e.site));
  ]

(* ------------------------------------------------------------------ *)
(* Engine invariants with a synthetic executor. *)

let engine_cfg =
  {
    Engine.default with
    cf_rate = 400.0;
    cf_duration = 1.0;
    cf_seed = 13;
    cf_max_batch = 4;
    cf_timeout = 0.004;
  }

let engine_suite =
  [
    Alcotest.test_case "generous SLO: every arrival completes, none shed" `Quick (fun () ->
        let r = Engine.run ~executor:(synth ()) engine_cfg in
        Alcotest.(check int) "shed" 0 r.Engine.sr_shed;
        Alcotest.(check int) "dropped" 0 r.Engine.sr_dropped;
        Alcotest.(check int) "conservation" r.Engine.sr_arrivals r.Engine.sr_completed;
        Alcotest.(check bool) "real batching happened" true
          (List.exists (fun (n, _) -> n >= 2) r.Engine.sr_batch_hist);
        Alcotest.(check bool) "p99 covers batching wait + service" true
          (r.Engine.sr_latency_p99 <= engine_cfg.Engine.cf_timeout +. 2e-3 +. 1e-6));
    Alcotest.test_case "SLO below the batching wait: sheds, but only provable misses" `Quick
      (fun () ->
        (* floor 0.5 ms < slo 1 ms, so arrivals are admitted; the 4 ms flush
           timeout then puts most dispatches provably past their deadline. *)
        let r = Engine.run ~executor:(synth ()) { engine_cfg with cf_slo = 0.001 } in
        Alcotest.(check bool) "hopeless sheds happened" true (r.Engine.sr_shed_hopeless > 0);
        Alcotest.(check int) "never at admission (floor < slo, queue bounded)" 0
          r.Engine.sr_shed_queue_full;
        Alcotest.(check int) "conservation" r.Engine.sr_arrivals
          (r.Engine.sr_completed + r.Engine.sr_shed);
        Alcotest.(check int) "dropped" 0 r.Engine.sr_dropped);
    Alcotest.test_case "tiny queue under slow service: queue-full sheds, none lost" `Quick
      (fun () ->
        (* Depth below max_batch: the size trigger can never relieve the
           queue, so arrivals between timeout flushes hit the bound. *)
        let slow = synth ~per_batch:0.050 () in
        let r =
          Engine.run ~executor:slow
            { engine_cfg with cf_queue_depth = 2; cf_slo = 60.0 (* no deadline pressure *) }
        in
        Alcotest.(check bool) "queue-full sheds happened" true (r.Engine.sr_shed_queue_full > 0);
        Alcotest.(check int) "conservation" r.Engine.sr_arrivals
          (r.Engine.sr_completed + r.Engine.sr_shed);
        Alcotest.(check int) "dropped" 0 r.Engine.sr_dropped);
    Alcotest.test_case "the arrival trace does not depend on the CG count" `Quick (fun () ->
        let at cgs = Engine.run ~executor:(synth ()) { engine_cfg with cf_cgs = cgs } in
        let r1 = at 1 and r4 = at 4 in
        Alcotest.(check int) "same arrivals" r1.Engine.sr_arrivals r4.Engine.sr_arrivals;
        Alcotest.(check int) "1 CG completes them all" r1.Engine.sr_arrivals
          r1.Engine.sr_completed;
        Alcotest.(check int) "4 CGs complete them all" r4.Engine.sr_arrivals
          r4.Engine.sr_completed);
    Alcotest.test_case "CG kill mid-run: zero dropped, >= 3/4 fault-free throughput" `Quick
      (fun () ->
        let fault_free = Engine.run ~executor:(synth ()) engine_cfg in
        let faulted =
          with_plan "seed=13;serve.cg:key=1" (fun () ->
              Engine.run ~executor:(synth ()) engine_cfg)
        in
        Alcotest.(check int) "zero dropped" 0 faulted.Engine.sr_dropped;
        Alcotest.(check int) "zero shed" 0 faulted.Engine.sr_shed;
        Alcotest.(check int) "all requests completed despite the kill"
          faulted.Engine.sr_arrivals faulted.Engine.sr_completed;
        (match faulted.Engine.sr_kills with
        | [ k ] -> Alcotest.(check int) "cg1 died" 1 k.Serve_shard.k_cg
        | ks -> Alcotest.failf "expected one kill, got %d" (List.length ks));
        Alcotest.(check bool) "drained batches recorded" true (faulted.Engine.sr_drained >= 1);
        Alcotest.(check bool) "throughput ratio" true
          (faulted.Engine.sr_throughput >= 0.75 *. fault_free.Engine.sr_throughput));
    Alcotest.test_case "same seed, same config: byte-identical JSON report" `Quick (fun () ->
        let j () = Engine.to_json (Engine.run ~executor:(synth ()) engine_cfg) in
        Alcotest.(check string) "replay" (j ()) (j ()));
  ]

(* ------------------------------------------------------------------ *)
(* The real runtime behind the executor interface: one shared compiled
   ladder (batch sizes 1, 2) of the smoke network. *)

let gemm_model = lazy (Swatop.Gemm_cost.fit ())

let smoke_net =
  lazy
    (Serve_net.compile
       ~gemm_model:(Lazy.force gemm_model)
       ~graph:(fun ~batch -> Swatop_graph.Graph_ir.smoke ~batch)
       ~max_batch:2 "smoke")

let real_cfg =
  {
    Engine.default with
    cf_rate = 300.0;
    cf_duration = 0.5;
    cf_seed = 7;
    cf_max_batch = 2;
    cf_timeout = 0.004;
  }

let real_suite =
  [
    Alcotest.test_case "plan-size ladder and round-up" `Quick (fun () ->
        Alcotest.(check (list int)) "geometric" [ 1; 2; 4; 8 ] (Serve_net.plan_sizes ~max_batch:8);
        Alcotest.(check (list int)) "off-ladder max included" [ 1; 2; 4; 6 ]
          (Serve_net.plan_sizes ~max_batch:6);
        let sizes = [ 1; 2; 4; 8 ] in
        Alcotest.(check int) "exact" 4 (Serve_net.round_up ~sizes 4);
        Alcotest.(check int) "round up" 4 (Serve_net.round_up ~sizes 3);
        Alcotest.(check int) "clamp" 8 (Serve_net.round_up ~sizes 99));
    Alcotest.test_case "floor is a lower bound on every plan's execution" `Quick (fun () ->
        let net = Lazy.force smoke_net in
        let ex = Serve_net.executor net in
        Alcotest.(check bool) "floor positive" true (ex.Shard.ex_floor > 0.0);
        List.iter
          (fun (b, plan) ->
            let report = Swatop_graph.Graph_exec.run plan in
            if report.r_seconds +. 1e-12 < ex.Shard.ex_floor then
              Alcotest.failf "batch-%d plan ran below the floor" b)
          net.Serve_net.nt_plans);
    Alcotest.test_case "serving the compiled smoke net: no sheds, real batches" `Quick (fun () ->
        let ex = Serve_net.executor (Lazy.force smoke_net) in
        let r = Engine.run ~executor:ex real_cfg in
        Alcotest.(check int) "shed" 0 r.Engine.sr_shed;
        Alcotest.(check int) "conservation" r.Engine.sr_arrivals r.Engine.sr_completed;
        Alcotest.(check bool) "batched" true
          (List.exists (fun (n, _) -> n >= 2) r.Engine.sr_batch_hist));
    Alcotest.test_case "a transient layer fault is absorbed by retry, not fallback" `Quick
      (fun () ->
        let ex = Serve_net.executor (Lazy.force smoke_net) in
        let r =
          with_plan "seed=7;graph.layer:n=1" (fun () -> Engine.run ~executor:ex real_cfg)
        in
        let fallbacks =
          List.fold_left (fun acc c -> acc + c.Engine.cr_fallbacks) 0 r.Engine.sr_cgs
        in
        Alcotest.(check int) "retry absorbed the fault" 1 r.Engine.sr_retried;
        Alcotest.(check int) "no fallback chain activated" 0 fallbacks;
        Alcotest.(check (list int)) "no CG died" []
          (List.map (fun k -> k.Serve_shard.k_cg) r.Engine.sr_kills);
        Alcotest.(check int) "conservation" r.Engine.sr_arrivals r.Engine.sr_completed);
    Alcotest.test_case "a persistent layer fault exhausts retry and falls back" `Quick
      (fun () ->
        (* first=3 faults attempts 1..3 of the first layer: retry (3
           attempts) exhausts, the degradation chain completes the step. *)
        let ex = Serve_net.executor (Lazy.force smoke_net) in
        let r =
          with_plan "seed=7;graph.layer:first=3" (fun () -> Engine.run ~executor:ex real_cfg)
        in
        let fallbacks =
          List.fold_left (fun acc c -> acc + c.Engine.cr_fallbacks) 0 r.Engine.sr_cgs
        in
        Alcotest.(check int) "one fallback incident" 1 fallbacks;
        Alcotest.(check int) "no retry absorption reported" 0 r.Engine.sr_retried;
        Alcotest.(check (list int)) "no CG died" []
          (List.map (fun k -> k.Serve_shard.k_cg) r.Engine.sr_kills);
        Alcotest.(check int) "conservation" r.Engine.sr_arrivals r.Engine.sr_completed);
    Alcotest.test_case "kill then probe-recover: re-admitted, ramped, >= 95% throughput" `Quick
      (fun () ->
        let ex = Serve_net.executor (Lazy.force smoke_net) in
        let fault_free = Engine.run ~executor:ex real_cfg in
        let r =
          with_plan "seed=7;serve.cg:n=1;serve.cg.recover:n=1" (fun () ->
              Engine.run ~executor:ex real_cfg)
        in
        (match (r.Engine.sr_kills, r.Engine.sr_recoveries) with
        | [ k ], [ rv ] ->
          Alcotest.(check int) "same CG back" k.Serve_shard.k_cg rv.Serve_shard.rv_cg;
          Alcotest.(check bool) "recovered after death" true
            (rv.Serve_shard.rv_time > k.Serve_shard.k_time);
          Alcotest.(check int) "first probe answered" 1 rv.Serve_shard.rv_probes
        | ks, rs ->
          Alcotest.failf "expected one kill and one recovery, got %d/%d" (List.length ks)
            (List.length rs));
        Alcotest.(check bool) "probes were sent" true (r.Engine.sr_probes >= 1);
        Alcotest.(check int) "zero dropped" 0 r.Engine.sr_dropped;
        Alcotest.(check int) "conservation" r.Engine.sr_arrivals
          (r.Engine.sr_completed + r.Engine.sr_shed);
        Alcotest.(check bool) "post-recovery throughput >= 95% of fault-free" true
          (r.Engine.sr_throughput >= 0.95 *. fault_free.Engine.sr_throughput));
    Alcotest.test_case "chaos soak over the compiled net: conserving and replayable" `Quick
      (fun () ->
        let ex = Serve_net.executor (Lazy.force smoke_net) in
        let cfg = { real_cfg with Engine.cf_rate = 150.0; cf_duration = 0.3 } in
        let r = Serve_chaos.run ~plans:6 ~seed:21 ~executor:ex cfg in
        Alcotest.(check bool) "all scenarios conserve" true r.Serve_chaos.ch_all_conserved;
        Alcotest.(check (list string)) "invariants hold" [] (Serve_chaos.check r);
        Alcotest.(check int) "every fault family ran" 6 (List.length r.Serve_chaos.ch_scenarios);
        let j () =
          Serve_chaos.to_json (Serve_chaos.run ~plans:6 ~seed:21 ~executor:ex cfg)
        in
        Alcotest.(check string) "soak replays byte-identically" (j ()) (j ()));
    Alcotest.test_case "replay is bit-identical across host job counts" `Quick (fun () ->
        let report jobs =
          Prelude.Parallel.set_jobs (Some jobs);
          Fun.protect
            ~finally:(fun () -> Prelude.Parallel.set_jobs None)
            (fun () ->
              let net =
                Serve_net.compile ~jobs
                  ~gemm_model:(Lazy.force gemm_model)
                  ~graph:(fun ~batch -> Swatop_graph.Graph_ir.smoke ~batch)
                  ~max_batch:2 "smoke"
              in
              Engine.to_json (Engine.run ~executor:(Serve_net.executor net) real_cfg))
        in
        Alcotest.(check string) "jobs 1 = jobs 4" (report 1) (report 4));
  ]

(* ------------------------------------------------------------------ *)
(* The re-entrancy satellites: concurrent compile/exec and the shared
   warm cache. *)

let concurrency_suite =
  [
    Alcotest.test_case "concurrent Graph_exec runs of one plan match sequential" `Quick (fun () ->
        let net = Lazy.force smoke_net in
        let plan = List.assoc 1 net.Serve_net.nt_plans in
        let sequential = (Swatop_graph.Graph_exec.run plan).r_seconds in
        let domains =
          List.init 2 (fun _ ->
              Domain.spawn (fun () -> (Swatop_graph.Graph_exec.run plan).r_seconds))
        in
        List.iter
          (fun d -> Alcotest.(check (float 0.0)) "same seconds" sequential (Domain.join d))
          domains);
    Alcotest.test_case "a warm shared cache serves the whole ladder without re-tuning" `Quick
      (fun () ->
        let cache = Swatop.Schedule_cache.create () in
        let compile () =
          ignore
            (Serve_net.compile ~cache
               ~gemm_model:(Lazy.force gemm_model)
               ~graph:(fun ~batch -> Swatop_graph.Graph_ir.smoke ~batch)
               ~max_batch:2 "smoke")
        in
        compile ();
        let misses_cold = Swatop.Schedule_cache.misses cache in
        let hits_cold = Swatop.Schedule_cache.hits cache in
        compile ();
        Alcotest.(check int) "no new misses on the warm pass" misses_cold
          (Swatop.Schedule_cache.misses cache);
        Alcotest.(check bool) "warm pass hit the cache" true
          (Swatop.Schedule_cache.hits cache > hits_cold));
    Alcotest.test_case "atomic rename: concurrent readers never see a partial file" `Quick
      (fun () ->
        let path = Filename.temp_file "swatop_serve_cache" ".tmp" in
        Sys.remove path;
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun p -> try Sys.remove p with Sys_error _ -> ())
              [ path; path ^ ".corrupt" ])
          (fun () ->
            let cache = Swatop.Schedule_cache.create () in
            for i = 0 to 63 do
              Swatop.Schedule_cache.remember cache
                ~key:(Printf.sprintf "op%d:1x1#exhaustive" i)
                { Swatop.Schedule_cache.fingerprint = i; space_size = 4; index = 1; seconds = 1.0 }
            done;
            Swatop.Schedule_cache.save path cache;
            let writer =
              Domain.spawn (fun () ->
                  for i = 0 to 199 do
                    Swatop.Schedule_cache.remember cache
                      ~key:(Printf.sprintf "op%d:1x1#exhaustive" (64 + i))
                      {
                        Swatop.Schedule_cache.fingerprint = i;
                        space_size = 4;
                        index = 1;
                        seconds = 1.0;
                      };
                    Swatop.Schedule_cache.save path cache
                  done)
            in
            for _ = 0 to 199 do
              let seen = Swatop.Schedule_cache.load path in
              let n = Swatop.Schedule_cache.size seen in
              if n < 64 then Alcotest.failf "reader saw a partial cache (%d entries)" n
            done;
            Domain.join writer;
            Alcotest.(check bool) "no quarantine file" false (Sys.file_exists (path ^ ".corrupt"))));
  ]

let suite =
  sim_suite @ trace_suite @ batch_suite @ admit_suite @ shard_suite @ engine_suite @ real_suite
  @ concurrency_suite
