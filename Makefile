# Convenience targets for CI and local development.

.PHONY: all build test lint fuzz check check-faults net-smoke serve-smoke chaos-smoke bench-quick bench-json clean

all: build

build:
	dune build @all

test:
	dune runtest

# Run the IR dataflow/bounds verifier AND the cross-CPE race analysis
# (--race, SWA03x) over whole schedule spaces of small example workloads
# (one per operator family). Exits non-zero if any candidate schedule
# trips a diagnostic.
lint:
	dune exec bin/swatop_cli.exe -- lint gemm -m 96 -n 80 -k 48 --race
	dune exec bin/swatop_cli.exe -- lint dense -b 16 --d-in 64 --d-out 48 --race
	dune exec bin/swatop_cli.exe -- lint conv --algo implicit --ni 16 --no 16 --out 12 -b 4 --race
	dune exec bin/swatop_cli.exe -- lint conv --algo winograd --ni 16 --no 16 --out 12 -b 2 --race
	dune exec bin/swatop_cli.exe -- lint winograd --ni 16 --no 16 --out 12 -b 2 --race
	dune exec bin/swatop_cli.exe -- lint conv --algo explicit --ni 8 --no 8 --out 8 -b 2 --race

# Differential fuzzing of the race analysis: seeded structural mutations
# of each family's optimized IR, asserting the static SWA03x verdict
# agrees with the shadow-memory sanitizer on every mutant.
# Override e.g. `make fuzz FUZZ_MUTANTS=25` to fit a CI timeout.
FUZZ_MUTANTS ?= 100
FUZZ_SEED ?= 7
fuzz:
	dune exec test/fuzz_race.exe -- --mutants $(FUZZ_MUTANTS) --seed $(FUZZ_SEED)

# The whole graph pipeline on the tiny 3-layer network: tune every layer,
# propagate layouts, plan the arena and execute end to end (cost-only).
net-smoke:
	dune exec bin/swatop_cli.exe -- net smoke

# The serving subsystem end to end: a short seeded Poisson run of the
# smoke network through dynamic batching, SLO admission and 4-CG
# dispatch. --smoke-check makes the CLI exit non-zero unless the run
# shed nothing, dropped nothing and actually coalesced batches.
serve-smoke:
	dune exec bin/swatop_cli.exe -- serve smoke --rate 200 --duration 2 \
	  --cgs 4 --slo-ms 50 --seed 7 --max-batch 4 --smoke-check

# Self-healing gate: a small fixed-seed chaos soak (CG kills, probe-driven
# recoveries, transient faults, hangs) over the smoke network. --check makes
# the CLI exit non-zero unless every scenario conserved requests, dropped
# nothing, kept recovered throughput >= 95% of fault-free and bounded p99.
chaos-smoke:
	dune exec bin/swatop_cli.exe -- chaos smoke --plans 6 --rate 150 \
	  --duration 0.3 --seed 7 --max-batch 4 --check

# Resilience gate: the same pipelines under a fixed seeded fault plan.
# The GEMM tune must survive randomly crashing candidates (crash isolation)
# and the smoke net must stay numerically correct while its executor
# degrades through fallback implementations (exit 0, not 2).
check-faults:
	SWATOP_JOBS=2 dune exec bin/swatop_cli.exe -- tune gemm -m 96 -n 80 -k 48 \
	  --faults "seed=7;tuner.score:p=0.05"
	SWATOP_JOBS=2 dune exec bin/swatop_cli.exe -- net smoke --numeric \
	  --faults "seed=7;interp.dma.wait:n=3;graph.layer:first=1"

# The tier-1 gate: everything compiles, every test passes, the example
# schedule spaces lint clean (dataflow + race), the race fuzzer finds no
# static/dynamic disagreement, and the network, serving and self-healing
# runtimes smoke-run.
check:
	dune build @all && dune runtest && $(MAKE) lint && $(MAKE) fuzz && $(MAKE) net-smoke && $(MAKE) serve-smoke && $(MAKE) chaos-smoke

bench-quick:
	dune exec bench/main.exe -- --quick

# Machine-readable benchmark gate: regenerate BENCH_tuner.json,
# BENCH_network.json and BENCH_serving.json at quick effort into a
# scratch directory, re-parse
# and schema-check them, then diff the fresh results against the
# committed baselines (simulated quantities only, 2% noise bound; host
# wall times are machine-dependent and excluded). The harness itself
# exits non-zero if the guided tuner's winner drops below 99% of the
# brute-force winner.
bench-json:
	mkdir -p _build/bench-json
	dune exec bench/bench_json.exe -- --quick --samples=2 --warmup=0 \
	  --out=_build/bench-json
	dune exec bench/bench_json.exe -- --check --out=_build/bench-json
	dune exec bench/bench_json.exe -- --out=_build/bench-json --diff=.

clean:
	dune clean
