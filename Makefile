# Convenience targets for CI and local development.

.PHONY: all build test check bench-quick clean

all: build

build:
	dune build @all

test:
	dune runtest

# The tier-1 gate: everything compiles and every test passes.
check:
	dune build @all && dune runtest

bench-quick:
	dune exec bench/main.exe -- --quick

clean:
	dune clean
