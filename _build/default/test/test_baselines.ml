(* The manual-baseline models: supported ranges, validity of the fixed
   strategies, and the qualitative relationships the paper's comparisons
   rest on. *)

open Swatop_ops
module Spec = Swtensor.Conv_spec

let measure p = (Swatop.Interp.run ~numeric:false (Swatop.Tuner.prepare p)).Swatop.Interp.seconds

let swdnn_suite =
  [
    Alcotest.test_case "no implementation below batch 32" `Quick (fun () ->
        let spec = Spec.create ~b:1 ~ni:64 ~no:64 ~ro:28 ~co:28 ~kr:3 ~kc:3 () in
        Alcotest.(check bool) "unsupported" false (Baselines.Swdnn.supported spec);
        Alcotest.(check bool) "no strategy" true (Baselines.Swdnn.strategy spec = None));
    Alcotest.test_case "fixed strategy is buildable and runs" `Quick (fun () ->
        let spec = Spec.create ~b:32 ~ni:128 ~no:128 ~ro:28 ~co:28 ~kr:3 ~kc:3 () in
        match Baselines.Swdnn.build (Conv_implicit.problem spec) with
        | None -> Alcotest.fail "should be supported"
        | Some p -> Alcotest.(check bool) "runs" true (measure p > 0.0));
    Alcotest.test_case "computes the correct convolution" `Quick (fun () ->
        let spec = Spec.create ~b:32 ~ni:16 ~no:8 ~ro:6 ~co:6 ~kr:3 ~kc:3 () in
        let t = Conv_implicit.problem spec in
        let s = Option.get (Baselines.Swdnn.strategy spec) in
        let input = Swtensor.Tensor.random ~seed:1 (Spec.input_shape spec) in
        let weight = Swtensor.Tensor.random ~seed:2 (Spec.weight_shape spec) in
        let p = Swatop.Tuner.prepare (Conv_implicit.build t s) in
        let bindings = Conv_implicit.bindings_for t s ~input ~weight in
        ignore (Swatop.Interp.run ~bindings ~numeric:true p);
        let got = Conv_implicit.unpack_output t bindings in
        let expected = Swtensor.Conv_ref.forward spec ~input ~weight in
        Alcotest.(check bool) "correct" true (Swtensor.Tensor.approx_equal expected got));
    Alcotest.test_case "autotuned schedule beats the fixed one" `Quick (fun () ->
        let spec = Spec.create ~b:32 ~ni:256 ~no:256 ~ro:28 ~co:28 ~kr:3 ~kc:3 () in
        let t = Conv_implicit.problem spec in
        let base = measure (Option.get (Baselines.Swdnn.build t)) in
        let o =
          Swatop.Tuner.model_tune ~top_k:4 ~gemm_model:(Swatop.Gemm_cost.fit ())
            ~candidates:(Conv_implicit.space t) ~build:(Conv_implicit.build t) ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "swATOP %.3gms <= swDNN %.3gms" (o.best_seconds *. 1e3) (base *. 1e3))
          true (o.best_seconds <= base));
  ]

let xmath_suite =
  [
    Alcotest.test_case "gemm strategy is aligned-switch on its home turf" `Quick (fun () ->
        let t = Matmul.problem ~m:2048 ~n:2048 ~k:2048 in
        let s = Baselines.Xmath.gemm_strategy t in
        Alcotest.(check bool) "switch" true (s.Matmul.boundary = Op_common.Switch));
    Alcotest.test_case "gemm strategy pads traditionally when unaligned" `Quick (fun () ->
        let t = Matmul.problem ~m:2000 ~n:2000 ~k:2000 in
        let s = Baselines.Xmath.gemm_strategy t in
        Alcotest.(check bool) "pad-full" true (s.Matmul.boundary = Op_common.Pad_full));
    Alcotest.test_case "gemm baseline computes the right product" `Quick (fun () ->
        let t = Matmul.problem ~m:50 ~n:30 ~k:20 in
        let s = Baselines.Xmath.gemm_strategy t in
        let a = Swtensor.Tensor.random ~seed:1 (Swtensor.Shape.of_list [ 50; 20 ]) in
        let b = Swtensor.Tensor.random ~seed:2 (Swtensor.Shape.of_list [ 20; 30 ]) in
        let p = Swatop.Tuner.prepare (Matmul.build t s) in
        let bindings = Matmul.bindings_for t s ~a ~b in
        ignore (Swatop.Interp.run ~bindings ~numeric:true p);
        Alcotest.(check bool) "correct" true
          (Swtensor.Tensor.approx_equal (Matmul.reference ~a ~b) (Matmul.unpack_c t bindings)));
    Alcotest.test_case "near-optimal on large aligned square GEMM" `Quick (fun () ->
        let t = Matmul.problem ~m:2048 ~n:2048 ~k:2048 in
        let base = measure (Baselines.Xmath.gemm_build t) in
        let bb = Swatop.Tuner.blackbox_tune ~sample_every:4 ~candidates:(Matmul.space t)
            ~build:(Matmul.build t) ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "within 15%% of best (%.3g vs %.3g)" base bb.best_seconds)
          true
          (base <= bb.best_seconds *. 1.15));
    Alcotest.test_case "manual winograd and explicit build and run" `Quick (fun () ->
        let spec = Spec.create ~b:2 ~ni:8 ~no:8 ~ro:8 ~co:8 ~kr:3 ~kc:3 () in
        Alcotest.(check bool) "wino" true
          (measure (Baselines.Xmath.winograd_build (Conv_winograd.problem spec)) > 0.0);
        Alcotest.(check bool) "explicit" true
          (measure (Baselines.Xmath.explicit_build (Conv_explicit.problem spec)) > 0.0));
    Alcotest.test_case "manual winograd is numerically correct" `Quick (fun () ->
        let spec = Spec.create ~b:2 ~ni:6 ~no:10 ~ro:8 ~co:8 ~kr:3 ~kc:3 () in
        let t = Conv_winograd.problem spec in
        let s = Baselines.Xmath.winograd_strategy t in
        let input = Swtensor.Tensor.random ~seed:3 (Spec.input_shape spec) in
        let weight = Swtensor.Tensor.random ~seed:4 (Spec.weight_shape spec) in
        let p = Swatop.Tuner.prepare (Conv_winograd.build t s) in
        let bindings = Conv_winograd.bindings_for t s ~input ~weight in
        ignore (Swatop.Interp.run ~bindings ~numeric:true p);
        Alcotest.(check bool) "correct" true
          (Swtensor.Tensor.approx_equal ~tol:1e-3
             (Swtensor.Conv_ref.forward spec ~input ~weight)
             (Conv_winograd.unpack_output t bindings)));
  ]

let workloads_suite =
  [
    Alcotest.test_case "Listing 1 has exactly 75 configurations per batch" `Quick (fun () ->
        List.iter
          (fun b ->
            Alcotest.(check int) "75" 75 (List.length (Workloads.Sweeps.listing1 ~batch:b)))
          Workloads.Sweeps.listing1_batches);
    Alcotest.test_case "Listing 2 has 343 aligned + 216 unaligned = 559" `Quick (fun () ->
        Alcotest.(check int) "aligned" 343 (List.length Workloads.Sweeps.listing2_aligned);
        Alcotest.(check int) "unaligned" 216 (List.length Workloads.Sweeps.listing2_unaligned);
        Alcotest.(check int) "total" 559 (List.length Workloads.Sweeps.listing2));
    Alcotest.test_case "network tables are well-formed" `Quick (fun () ->
        List.iter
          (fun net ->
            Alcotest.(check bool)
              (net.Workloads.Networks.net_name ^ " non-empty")
              true
              (List.length net.Workloads.Networks.layers > 5);
            List.iter
              (fun (l : Workloads.Networks.layer) ->
                ignore (Workloads.Networks.conv_spec ~batch:1 l);
                Alcotest.(check bool) "repeat >= 1" true (l.repeat >= 1))
              net.Workloads.Networks.layers)
          Workloads.Networks.all);
    Alcotest.test_case "first layers excluded from implicit benchmarking" `Quick (fun () ->
        List.iter
          (fun net ->
            let included = Workloads.Networks.implicit_layers net in
            let first = List.hd net.Workloads.Networks.layers in
            Alcotest.(check bool) "first excluded" false
              (List.exists (fun (l : Workloads.Networks.layer) -> l.l_name = first.l_name) included))
          Workloads.Networks.all);
    Alcotest.test_case "winograd layers are 3x3 with even outputs" `Quick (fun () ->
        List.iter
          (fun net ->
            List.iter
              (fun (l : Workloads.Networks.layer) ->
                Alcotest.(check int) "k" 3 l.k;
                Alcotest.(check int) "even" 0 (l.out mod 2))
              (Workloads.Networks.winograd_layers net))
          Workloads.Networks.all);
  ]

let suite = swdnn_suite @ xmath_suite @ workloads_suite
