(* Unit and property tests of the shared utilities. *)

let ints_suite =
  let open Prelude.Ints in
  [
    Alcotest.test_case "ceil_div basics" `Quick (fun () ->
        Alcotest.(check int) "7/2" 4 (ceil_div 7 2);
        Alcotest.(check int) "8/2" 4 (ceil_div 8 2);
        Alcotest.(check int) "0/5" 0 (ceil_div 0 5);
        Alcotest.(check int) "1/5" 1 (ceil_div 1 5));
    Alcotest.test_case "align up/down" `Quick (fun () ->
        Alcotest.(check int) "up 129->256" 256 (align_up 129 128);
        Alcotest.(check int) "up 128->128" 128 (align_up 128 128);
        Alcotest.(check int) "down 129->128" 128 (align_down 129 128);
        Alcotest.(check int) "down 127->0" 0 (align_down 127 128));
    Alcotest.test_case "clamp" `Quick (fun () ->
        Alcotest.(check int) "below" 3 (clamp ~lo:3 ~hi:9 1);
        Alcotest.(check int) "above" 9 (clamp ~lo:3 ~hi:9 99);
        Alcotest.(check int) "inside" 5 (clamp ~lo:3 ~hi:9 5));
    Alcotest.test_case "divisors" `Quick (fun () ->
        Alcotest.(check (list int)) "12" [ 1; 2; 3; 4; 6; 12 ] (divisors 12);
        Alcotest.(check (list int)) "1" [ 1 ] (divisors 1);
        Alcotest.(check (list int)) "13" [ 1; 13 ] (divisors 13));
    Alcotest.test_case "pow" `Quick (fun () ->
        Alcotest.(check int) "2^10" 1024 (pow 2 10);
        Alcotest.(check int) "x^0" 1 (pow 7 0));
  ]

let prop_ceil_div =
  QCheck2.Test.make ~name:"ceil_div is the least sufficient multiple" ~count:500
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 500))
    (fun (a, b) ->
      let q = Prelude.Ints.ceil_div a b in
      (q * b) >= a && (q - 1) * b < a)

let prop_divisors =
  QCheck2.Test.make ~name:"divisors divide and cover" ~count:200
    QCheck2.Gen.(int_range 1 2000)
    (fun n ->
      let ds = Prelude.Ints.divisors n in
      List.for_all (fun d -> n mod d = 0) ds
      && List.length ds
         = List.length (List.filter (fun d -> n mod d = 0) (Prelude.Lists.range 1 (n + 1))))

let lists_suite =
  let open Prelude.Lists in
  [
    Alcotest.test_case "range" `Quick (fun () ->
        Alcotest.(check (list int)) "0..4" [ 0; 1; 2; 3 ] (range 0 4);
        Alcotest.(check (list int)) "empty" [] (range 3 3));
    Alcotest.test_case "cartesian" `Quick (fun () ->
        Alcotest.(check int) "2x3" 6 (List.length (cartesian2 [ 1; 2 ] [ 1; 2; 3 ]));
        Alcotest.(check int) "2x3x4" 24 (List.length (cartesian3 [ 1; 2 ] [ 1; 2; 3 ] [ 1; 2; 3; 4 ])));
    Alcotest.test_case "take_every" `Quick (fun () ->
        Alcotest.(check (list int)) "every 2nd" [ 0; 2; 4 ] (take_every 2 [ 0; 1; 2; 3; 4 ]);
        Alcotest.(check (list int)) "every 1st" [ 1; 2 ] (take_every 1 [ 1; 2 ]));
    Alcotest.test_case "extrema" `Quick (fun () ->
        Alcotest.(check int) "min" 3 (min_float_by float_of_int [ 9; 3; 7 ]);
        Alcotest.(check int) "max" 9 (max_float_by float_of_int [ 9; 3; 7 ]));
    Alcotest.test_case "permutations" `Quick (fun () ->
        Alcotest.(check int) "3! = 6" 6 (List.length (permutations [ 1; 2; 3 ])));
  ]

let linsolve_suite =
  [
    Alcotest.test_case "solve 2x2" `Quick (fun () ->
        let x = Prelude.Linsolve.solve [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] [| 5.0; 10.0 |] in
        Alcotest.(check bool) "x0" true (Prelude.Floats.approx_equal x.(0) 1.0);
        Alcotest.(check bool) "x1" true (Prelude.Floats.approx_equal x.(1) 3.0));
    Alcotest.test_case "singular raises" `Quick (fun () ->
        Alcotest.check_raises "singular" (Failure "Linsolve.solve: singular system") (fun () ->
            ignore (Prelude.Linsolve.solve [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] [| 1.0; 2.0 |])));
    Alcotest.test_case "least squares recovers exact linear data" `Quick (fun () ->
        (* y = 3a + 2b + 1 *)
        let xs = [| [| 1.; 0.; 1. |]; [| 0.; 1.; 1. |]; [| 2.; 3.; 1. |]; [| 5.; 1.; 1. |] |] in
        let ys = Array.map (fun r -> (3. *. r.(0)) +. (2. *. r.(1)) +. r.(2)) xs in
        let c = Prelude.Linsolve.least_squares xs ys in
        List.iter2
          (fun got want ->
            Alcotest.(check bool)
              (Printf.sprintf "coef %g" want)
              true
              (Prelude.Floats.approx_equal ~eps:1e-3 got want))
          (Array.to_list c) [ 3.0; 2.0; 1.0 ]);
  ]

let floats_suite =
  [
    Alcotest.test_case "mean / geomean" `Quick (fun () ->
        Alcotest.(check bool) "mean" true (Prelude.Floats.approx_equal 2.0 (Prelude.Floats.mean [ 1.; 2.; 3. ]));
        Alcotest.(check bool) "geomean" true (Prelude.Floats.approx_equal 2.0 (Prelude.Floats.geomean [ 1.; 4. ])));
  ]

let suite =
  ints_suite @ lists_suite @ linsolve_suite @ floats_suite
  @ List.map QCheck_alcotest.to_alcotest [ prop_ceil_div; prop_divisors ]
