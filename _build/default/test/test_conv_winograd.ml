(* Winograd convolution: the four-phase pipeline must reproduce the direct
   convolution reference. *)

open Swatop_ops
module Spec = Swtensor.Conv_spec

let run t s ~input ~weight =
  let p = Swatop.Tuner.prepare (Conv_winograd.build t s) in
  let bindings = Conv_winograd.bindings_for t s ~input ~weight in
  let r = Swatop.Interp.run ~bindings ~numeric:true p in
  (Conv_winograd.unpack_output t bindings, r)

let small_spec ?(b = 2) ?(ni = 6) ?(no = 8) ?(ro = 8) ?(co = 12) () =
  Spec.create ~b ~ni ~no ~ro ~co ~kr:3 ~kc:3 ()

let check_strategy spec s =
  let t = Conv_winograd.problem spec in
  let input = Swtensor.Tensor.random ~seed:31 (Spec.input_shape spec) in
  let weight = Swtensor.Tensor.random ~seed:32 (Spec.weight_shape spec) in
  let expected = Swtensor.Conv_ref.forward spec ~input ~weight in
  let got, r = run t s ~input ~weight in
  if not (Swtensor.Tensor.approx_equal ~tol:1e-3 expected got) then
    Alcotest.failf "strategy %s wrong (max diff %g)" (Conv_winograd.describe s)
      (Swtensor.Tensor.max_abs_diff expected got);
  Alcotest.(check bool) "positive time" true (r.Swatop.Interp.seconds > 0.0)

let base =
  {
    Conv_winograd.ti = 3;
    tr = 2;
    t_o = 4;
    fm = 4;
    fn = 16;
    fk = 3;
    vec = Primitives.Spm_gemm.Vec_n;
    boundary = Op_common.Switch;
    prefetch = false;
    gemm_prefetch = false;
    fuse_batch = true;
  }

let test_base () = check_strategy (small_spec ()) base
let test_prefetch () = check_strategy (small_spec ()) { base with prefetch = true }

let test_pad_light () =
  check_strategy (small_spec ()) { base with boundary = Op_common.Pad_light; prefetch = true }

let test_batch1 () = check_strategy (small_spec ~b:1 ()) { base with prefetch = true }

let test_unfused_batch () =
  check_strategy (small_spec ())
    { base with fuse_batch = false; gemm_prefetch = true; prefetch = false }

let test_unfused_prefetch () =
  check_strategy (small_spec ()) { base with fuse_batch = false; prefetch = true }

let test_ragged_blocks () =
  (* ti=4 does not divide ni=6; tr=3 does not divide trimg=4. *)
  check_strategy (small_spec ()) { base with ti = 4; tr = 3; t_o = 3; prefetch = true }

let test_reference_agrees () =
  (* Sanity: the Winograd reference itself matches direct convolution. *)
  let spec = small_spec () in
  let input = Swtensor.Tensor.random ~seed:41 (Spec.input_shape spec) in
  let weight = Swtensor.Tensor.random ~seed:42 (Spec.weight_shape spec) in
  let direct = Swtensor.Conv_ref.forward spec ~input ~weight in
  let wino = Swtensor.Winograd_ref.forward spec ~input ~weight in
  Alcotest.(check bool) "winograd_ref = conv_ref" true
    (Swtensor.Tensor.approx_equal ~tol:1e-3 direct wino)

let test_whole_space () =
  let spec = small_spec ~b:1 ~ni:6 ~no:8 ~ro:8 ~co:12 () in
  let t = Conv_winograd.problem spec in
  let input = Swtensor.Tensor.random ~seed:51 (Spec.input_shape spec) in
  let weight = Swtensor.Tensor.random ~seed:52 (Spec.weight_shape spec) in
  let expected = Swtensor.Conv_ref.forward spec ~input ~weight in
  let space = Conv_winograd.space t in
  Alcotest.(check bool) "space non-trivial" true (List.length space > 4);
  List.iter
    (fun s ->
      let got, _ = run t s ~input ~weight in
      if not (Swtensor.Tensor.approx_equal ~tol:1e-3 expected got) then
        Alcotest.failf "strategy %s wrong" (Conv_winograd.describe s))
    space

let suite =
  [
    Alcotest.test_case "winograd reference agrees with direct" `Quick test_reference_agrees;
    Alcotest.test_case "base strategy" `Quick test_base;
    Alcotest.test_case "prefetch" `Quick test_prefetch;
    Alcotest.test_case "pad-light boundary" `Quick test_pad_light;
    Alcotest.test_case "batch 1" `Quick test_batch1;
    Alcotest.test_case "ragged transform blocks" `Quick test_ragged_blocks;
    Alcotest.test_case "unfused batch (manual structure)" `Quick test_unfused_batch;
    Alcotest.test_case "unfused batch + pipeline" `Quick test_unfused_prefetch;
    Alcotest.test_case "whole space numerically correct" `Slow test_whole_space;
  ]
