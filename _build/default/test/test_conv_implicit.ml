(* Implicit-GEMM convolution: every strategy must reproduce the direct
   convolution reference through the full pipeline. *)

open Swatop_ops
module Spec = Swtensor.Conv_spec

let run t s ~input ~weight =
  let p = Swatop.Tuner.prepare (Conv_implicit.build t s) in
  let bindings = Conv_implicit.bindings_for t s ~input ~weight in
  let r = Swatop.Interp.run ~bindings ~numeric:true p in
  (Conv_implicit.unpack_output t bindings, r)

let small_spec ?(b = 2) ?(ni = 8) ?(no = 12) ?(ro = 6) ?(co = 10) () =
  Spec.create ~b ~ni ~no ~ro ~co ~kr:3 ~kc:3 ()

let check_strategy spec s =
  let t = Conv_implicit.problem spec in
  let input = Swtensor.Tensor.random ~seed:11 (Spec.input_shape spec) in
  let weight = Swtensor.Tensor.random ~seed:12 (Spec.weight_shape spec) in
  let expected = Swtensor.Conv_ref.forward spec ~input ~weight in
  let got, r = run t s ~input ~weight in
  if not (Swtensor.Tensor.approx_equal expected got) then
    Alcotest.failf "strategy %s wrong (max diff %g)" (Conv_implicit.describe s)
      (Swtensor.Tensor.max_abs_diff expected got);
  Alcotest.(check bool) "positive time" true (r.Swatop.Interp.seconds > 0.0)

let base =
  {
    Conv_implicit.tile = Conv_implicit.Col_tile 4;
    fi = 8;
    fo = 8;
    pixel_order = Conv_implicit.Ro_outer;
    reduce_order = Conv_implicit.Taps_then_ni;
    w_oi = true;
    vec = Primitives.Spm_gemm.Vec_n;
    boundary = Op_common.Switch;
    prefetch = false;
  }

let test_base () = check_strategy (small_spec ()) base
let test_prefetch () = check_strategy (small_spec ()) { base with prefetch = true }
let test_pad_light () =
  check_strategy (small_spec ()) { base with boundary = Op_common.Pad_light; prefetch = true }

let test_w_io () = check_strategy (small_spec ()) { base with w_oi = false; prefetch = true }

let test_batch1 () =
  check_strategy (small_spec ~b:1 ()) { base with tile = Conv_implicit.Col_tile 5; prefetch = true }

let test_row_slab () =
  check_strategy (small_spec ~b:1 ()) { base with tile = Conv_implicit.Row_slab 2; prefetch = true }

let test_row_slab_ragged () =
  (* fr=4 does not divide ro=6: ragged slabs, and batch > 1. *)
  check_strategy (small_spec ~b:2 ()) { base with tile = Conv_implicit.Row_slab 4; prefetch = true }

let test_row_slab_pad_light () =
  check_strategy (small_spec ~b:1 ())
    { base with tile = Conv_implicit.Row_slab 4; boundary = Op_common.Pad_light; prefetch = true }

let test_asymmetric_kernel () =
  (* kr <> kc: e.g. a 1x3 separable-style filter *)
  let spec = Spec.create ~b:2 ~ni:6 ~no:6 ~ro:6 ~co:6 ~kr:1 ~kc:3 () in
  check_strategy spec { base with prefetch = true }

let test_tall_kernel () =
  let spec = Spec.create ~b:1 ~ni:4 ~no:6 ~ro:5 ~co:7 ~kr:5 ~kc:1 () in
  check_strategy spec { base with prefetch = true }

let test_ragged_channels () =
  (* ni=10, no=14 don't divide the blocks: exercises ragged channel tiles. *)
  check_strategy (small_spec ~ni:10 ~no:14 ()) { base with prefetch = true }

let test_whole_space () =
  let spec = small_spec ~b:1 ~ni:6 ~no:10 ~ro:5 ~co:7 () in
  let t = Conv_implicit.problem spec in
  let input = Swtensor.Tensor.random ~seed:21 (Spec.input_shape spec) in
  let weight = Swtensor.Tensor.random ~seed:22 (Spec.weight_shape spec) in
  let expected = Swtensor.Conv_ref.forward spec ~input ~weight in
  let space = Conv_implicit.space t in
  Alcotest.(check bool) "space non-trivial" true (List.length space > 8);
  List.iter
    (fun s ->
      let got, _ = run t s ~input ~weight in
      if not (Swtensor.Tensor.approx_equal expected got) then
        Alcotest.failf "strategy %s wrong" (Conv_implicit.describe s))
    space

let test_reduce_orders () =
  List.iter
    (fun reduce_order -> check_strategy (small_spec ()) { base with reduce_order; prefetch = true })
    [ Conv_implicit.Taps_then_ni; Conv_implicit.Ni_then_taps ]

let test_pixel_orders () =
  List.iter
    (fun pixel_order -> check_strategy (small_spec ()) { base with pixel_order; prefetch = true })
    [ Conv_implicit.Ro_outer; Conv_implicit.Co_outer ]

let suite =
  [
    Alcotest.test_case "base strategy" `Quick test_base;
    Alcotest.test_case "prefetch" `Quick test_prefetch;
    Alcotest.test_case "pad-light boundary" `Quick test_pad_light;
    Alcotest.test_case "column-major weights" `Quick test_w_io;
    Alcotest.test_case "batch 1 (inference)" `Quick test_batch1;
    Alcotest.test_case "row slab" `Quick test_row_slab;
    Alcotest.test_case "row slab, ragged" `Quick test_row_slab_ragged;
    Alcotest.test_case "row slab, pad-light" `Quick test_row_slab_pad_light;
    Alcotest.test_case "asymmetric kernel 1x3" `Quick test_asymmetric_kernel;
    Alcotest.test_case "asymmetric kernel 5x1" `Quick test_tall_kernel;
    Alcotest.test_case "ragged channel blocks" `Quick test_ragged_channels;
    Alcotest.test_case "reduce orders" `Quick test_reduce_orders;
    Alcotest.test_case "pixel orders" `Quick test_pixel_orders;
    Alcotest.test_case "whole space numerically correct" `Slow test_whole_space;
  ]
