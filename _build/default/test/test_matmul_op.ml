(* End-to-end checks of the matmul operator: every strategy must compute the
   exact reference product through the full pipeline (lowering, DMA
   inference, prefetching, simulated execution). *)

open Swatop_ops

let run_strategy t s ~a ~b =
  let p = Swatop.Tuner.prepare (Matmul.build t s) in
  let bindings = Matmul.bindings_for t s ~a ~b in
  let r = Swatop.Interp.run ~bindings ~numeric:true p in
  (Matmul.unpack_c t bindings, r)

let check_strategy ?(m = 24) ?(n = 20) ?(k = 28) s_mk =
  let t = Matmul.problem ~m ~n ~k in
  let a = Swtensor.Tensor.random ~seed:1 (Swtensor.Shape.of_list [ m; k ]) in
  let b = Swtensor.Tensor.random ~seed:2 (Swtensor.Shape.of_list [ k; n ]) in
  let expected = Matmul.reference ~a ~b in
  let s = s_mk t in
  let got, r = run_strategy t s ~a ~b in
  Alcotest.(check bool)
    (Printf.sprintf "%s matches reference" (Matmul.describe s))
    true
    (Swtensor.Tensor.approx_equal expected got);
  Alcotest.(check bool) "positive simulated time" true (r.Swatop.Interp.seconds > 0.0)

let base fm fn fk t =
  ignore t;
  {
    Matmul.fm;
    fn;
    fk;
    n_outer = false;
    vec = Primitives.Spm_gemm.Vec_m;
    boundary = Op_common.Switch;
    prefetch = false;
  }

let test_aligned_noprefetch () = check_strategy ~m:32 ~n:32 ~k:32 (base 16 16 16)
let test_aligned_prefetch () =
  check_strategy ~m:32 ~n:32 ~k:32 (fun t -> { (base 16 16 16 t) with prefetch = true })

let test_ragged_switch () = check_strategy (base 16 16 16)
let test_ragged_switch_prefetch () =
  check_strategy (fun t -> { (base 16 16 16 t) with prefetch = true })

let test_ragged_pad_light () =
  check_strategy (fun t -> { (base 16 16 16 t) with boundary = Op_common.Pad_light })

let test_ragged_pad_light_prefetch () =
  check_strategy (fun t ->
      { (base 16 16 16 t) with boundary = Op_common.Pad_light; prefetch = true })

let test_ragged_pad_full () =
  check_strategy (fun t -> { (base 16 16 16 t) with boundary = Op_common.Pad_full })

let test_ragged_pad_full_prefetch () =
  check_strategy (fun t ->
      { (base 16 16 16 t) with boundary = Op_common.Pad_full; prefetch = true })

let test_n_outer_vec_n () =
  check_strategy (fun t ->
      { (base 20 16 12 t) with n_outer = true; vec = Primitives.Spm_gemm.Vec_n; prefetch = true })

(* Every strategy in a small problem's space computes the right answer. *)
let test_whole_space () =
  let t = Matmul.problem ~m:24 ~n:16 ~k:40 in
  let a = Swtensor.Tensor.random ~seed:5 (Swtensor.Shape.of_list [ 24; 40 ]) in
  let b = Swtensor.Tensor.random ~seed:6 (Swtensor.Shape.of_list [ 40; 16 ]) in
  let expected = Matmul.reference ~a ~b in
  let space = Matmul.space t in
  Alcotest.(check bool) "space is non-trivial" true (List.length space > 8);
  List.iter
    (fun s ->
      let got, _ = run_strategy t s ~a ~b in
      if not (Swtensor.Tensor.approx_equal expected got) then
        Alcotest.failf "strategy %s computes a wrong result" (Matmul.describe s))
    space

(* Prefetching must never change results, and should not be slower. *)
let test_prefetch_speeds_up () =
  let t = Matmul.problem ~m:128 ~n:128 ~k:128 in
  let s = base 32 32 32 t in
  let p_off = Swatop.Tuner.prepare (Matmul.build t s) in
  let p_on = Swatop.Tuner.prepare (Matmul.build t { s with prefetch = true }) in
  let r_off = Swatop.Interp.run ~numeric:false p_off in
  let r_on = Swatop.Interp.run ~numeric:false p_on in
  Alcotest.(check bool) "prefetch marked overlapped" true p_on.Swatop.Ir.overlapped;
  Alcotest.(check bool)
    (Printf.sprintf "prefetch not slower (%.3g vs %.3g)" r_on.seconds r_off.seconds)
    true
    (r_on.Swatop.Interp.seconds <= r_off.Swatop.Interp.seconds *. 1.001)

let suite =
  [
    Alcotest.test_case "aligned, no prefetch" `Quick test_aligned_noprefetch;
    Alcotest.test_case "aligned, prefetch" `Quick test_aligned_prefetch;
    Alcotest.test_case "ragged, switch" `Quick test_ragged_switch;
    Alcotest.test_case "ragged, switch + prefetch" `Quick test_ragged_switch_prefetch;
    Alcotest.test_case "ragged, pad-light" `Quick test_ragged_pad_light;
    Alcotest.test_case "ragged, pad-light + prefetch" `Quick test_ragged_pad_light_prefetch;
    Alcotest.test_case "ragged, pad-full" `Quick test_ragged_pad_full;
    Alcotest.test_case "ragged, pad-full + prefetch" `Quick test_ragged_pad_full_prefetch;
    Alcotest.test_case "N-outer, vec-N" `Quick test_n_outer_vec_n;
    Alcotest.test_case "whole space numerically correct" `Slow test_whole_space;
    Alcotest.test_case "prefetch overlaps DMA" `Quick test_prefetch_speeds_up;
  ]
