(* The code generator: structural expectations on the emitted C and the SPM
   memory plan. *)

open Swatop
open Swatop_ops

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = if i + m > n then false else String.sub s i m = sub || loop (i + 1) in
  m = 0 || loop 0

let tuned_matmul () =
  let t = Matmul.problem ~m:96 ~n:64 ~k:40 in
  let s =
    {
      Matmul.fm = 32;
      fn = 32;
      fk = 8;
      n_outer = false;
      vec = Primitives.Spm_gemm.Vec_m;
      boundary = Op_common.Switch;
      prefetch = true;
    }
  in
  Tuner.prepare (Matmul.build t s)

let suite =
  [
    Alcotest.test_case "emits a complete kernel with runtime calls" `Quick (fun () ->
        let src = C_emit.program_exn (tuned_matmul ()) in
        List.iter
          (fun needle ->
            if not (contains src needle) then Alcotest.failf "missing %S in generated C" needle)
          [
            "#include \"swatop_runtime.h\"";
            "void matmul_cpe_kernel(float *A, float *B, float *C)";
            "swDMA(";
            "swDMAWait(";
            "spm_gemm_arm_brm_vm(";
            "sw_spm_memset(";
            "__thread_local float spm_pool_f";
            "const int rid = sw_row_id();";
            "for (int ";
          ]);
    Alcotest.test_case "declares each used kernel variant exactly once" `Quick (fun () ->
        let src = C_emit.program_exn (tuned_matmul ()) in
        let occurrences needle =
          let n = String.length src and m = String.length needle in
          let count = ref 0 in
          for i = 0 to n - m do
            if String.sub src i m = needle then incr count
          done;
          !count
        in
        Alcotest.(check int) "one extern" 1 (occurrences "extern void spm_gemm_arm_brm_vm"));
    Alcotest.test_case "SPM plan coalesces the double-buffered tiles" `Quick (fun () ->
        let p = tuned_matmul () in
        match Mem_plan.plan p with
        | Error e -> Alcotest.fail e
        | Ok plan ->
          Alcotest.(check int) "three buffers" 3 (List.length plan.Mem_plan.offsets);
          Alcotest.(check bool) "pool within SPM" true
            (plan.Mem_plan.pool_bytes <= Sw26010.Config.spm_bytes);
          (* a_tile is double-buffered: its slot is twice the aligned
             per-CPE footprint (4 elems -> 64-byte aligned, two halves) *)
          let a = Mem_plan.offset_of plan "a_tile" in
          let b = Mem_plan.offset_of plan "b_tile" in
          Alcotest.(check int) "slot spans both halves" 128 (b - a));
    Alcotest.test_case "un-inferred DMA is rejected" `Quick (fun () ->
        let t = Matmul.problem ~m:16 ~n:16 ~k:16 in
        let s =
          {
            Matmul.fm = 8;
            fn = 8;
            fk = 8;
            n_outer = false;
            vec = Primitives.Spm_gemm.Vec_m;
            boundary = Op_common.Switch;
            prefetch = false;
          }
        in
        let raw = Matmul.build t s in
        Alcotest.(check bool) "raises" true
          (try
             ignore (C_emit.program_exn raw);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "winograd program emits transform calls" `Quick (fun () ->
        let spec = Swtensor.Conv_spec.create ~b:1 ~ni:4 ~no:4 ~ro:8 ~co:8 ~kr:3 ~kc:3 () in
        let t = Conv_winograd.problem spec in
        let s = List.hd (Conv_winograd.space t) in
        let src = C_emit.program_exn (Tuner.prepare (Conv_winograd.build t s)) in
        List.iter
          (fun needle ->
            if not (contains src needle) then Alcotest.failf "missing %S" needle)
          [ "sw_wino_input_transform("; "sw_wino_filter_transform("; "sw_wino_output_transform(" ]);
    Alcotest.test_case "explicit slab program emits SPM copies" `Quick (fun () ->
        let spec = Swtensor.Conv_spec.create ~b:1 ~ni:4 ~no:8 ~ro:6 ~co:6 ~kr:3 ~kc:3 () in
        let t = Conv_explicit.problem spec in
        let s = { (List.hd (Conv_explicit.space t)) with Conv_explicit.slab_im2col = true } in
        let src = C_emit.program_exn (Tuner.prepare (Conv_explicit.build t s)) in
        Alcotest.(check bool) "sw_spm_copy" true (contains src "sw_spm_copy("));
    Alcotest.test_case "IR pretty printer shows the schedule structure" `Quick (fun () ->
        let p = tuned_matmul () in
        let txt = Ir_print.program_to_string p in
        List.iter
          (fun needle -> if not (contains txt needle) then Alcotest.failf "missing %S" needle)
          [ "program matmul [overlapped]"; "buffer spm a_tile"; "dma_get"; "dma_put"; "spm_gemm" ]);
  ]
