(* The hardware models: SPM planner, DMA transaction accounting (Eq. 1),
   async engine semantics, register communication and the pipeline model. *)

module D = Sw26010.Dma
module S = Sw26010.Spm

let spm_suite =
  [
    Alcotest.test_case "plan lays buffers without overlap" `Quick (fun () ->
        let reqs =
          [
            S.request ~name:"a" ~bytes:100 ();
            S.request ~name:"b" ~bytes:64 ();
            S.request ~double_buffered:true ~name:"c" ~bytes:32 ();
          ]
        in
        match S.plan reqs with
        | Error e -> Alcotest.fail e
        | Ok plan ->
          Alcotest.(check int) "used" (128 + 64 + 128) plan.S.used_bytes;
          let a = Option.get (S.find_slot plan "a") in
          let b = Option.get (S.find_slot plan "b") in
          Alcotest.(check bool) "no overlap" true (b.S.offset >= a.S.offset + a.S.slot_bytes));
    Alcotest.test_case "capacity enforced" `Quick (fun () ->
        let reqs = [ S.request ~name:"big" ~bytes:(Sw26010.Config.spm_bytes + 1) () ] in
        Alcotest.(check bool) "over" false (S.fits reqs);
        match S.plan reqs with
        | Ok _ -> Alcotest.fail "should not fit"
        | Error _ -> ());
    Alcotest.test_case "duplicate names rejected" `Quick (fun () ->
        match S.plan [ S.request ~name:"x" ~bytes:4 (); S.request ~name:"x" ~bytes:4 () ] with
        | Ok _ -> Alcotest.fail "duplicates accepted"
        | Error _ -> ());
    Alcotest.test_case "double buffering doubles the footprint" `Quick (fun () ->
        let once = S.footprint [ S.request ~name:"t" ~bytes:1000 () ] in
        let twice = S.footprint [ S.request ~double_buffered:true ~name:"t" ~bytes:1000 () ] in
        Alcotest.(check int) "2x" (2 * once) twice);
  ]

let dma_suite =
  [
    Alcotest.test_case "aligned contiguous transfer has no waste" `Quick (fun () ->
        let d = D.contiguous ~offset_bytes:0 ~bytes:1024 in
        Alcotest.(check int) "payload" 1024 (D.payload_bytes d);
        Alcotest.(check int) "waste" 0 (D.waste_bytes d));
    Alcotest.test_case "misaligned block pays both boundaries" `Quick (fun () ->
        (* 4 bytes at offset 126 straddles two 128-byte transactions. *)
        let d = D.contiguous ~offset_bytes:126 ~bytes:4 in
        Alcotest.(check int) "transactions" 256 (D.transaction_bytes d));
    Alcotest.test_case "strided blocks accumulate waste per block" `Quick (fun () ->
        let d = D.descriptor ~offset_bytes:0 ~block_bytes:4 ~stride_bytes:512 ~block_count:10 in
        (* each 4-byte touch moves a full 128-byte transaction *)
        Alcotest.(check int) "transactions" 1280 (D.transaction_bytes d);
        Alcotest.(check bool) "efficiency" true (D.efficiency d < 0.04));
    Alcotest.test_case "Eq. 1: latency plus transmission" `Quick (fun () ->
        let d = D.contiguous ~offset_bytes:0 ~bytes:(128 * 64) in
        let per_cpe_bw = Sw26010.Config.dma_peak_bw /. 64.0 in
        let expect = Sw26010.Config.dma_latency_s +. (float_of_int (128 * 64) /. per_cpe_bw) in
        Alcotest.(check bool) "time" true (Prelude.Floats.approx_equal expect (D.time_one_cpe d)));
    Alcotest.test_case "empty transfer is free" `Quick (fun () ->
        let d = D.descriptor ~offset_bytes:64 ~block_bytes:0 ~stride_bytes:0 ~block_count:5 in
        Alcotest.(check (float 0.0)) "zero" 0.0 (D.time_one_cpe d));
    Alcotest.test_case "invalid descriptors rejected" `Quick (fun () ->
        Alcotest.(check bool) "overlap" true
          (try
             ignore (D.descriptor ~offset_bytes:0 ~block_bytes:64 ~stride_bytes:32 ~block_count:2);
             false
           with Invalid_argument _ -> true));
  ]

(* The periodic fast path of transaction_bytes must agree with the direct
   per-block sum. *)
let prop_transaction_periodic =
  let gen =
    QCheck2.Gen.(
      map
        (fun (offset, block, extra, count) -> (offset * 4, block * 4, (block * 4) + (extra * 4), count))
        (tup4 (int_bound 200) (int_range 1 300) (int_bound 100) (int_range 1 300)))
  in
  QCheck2.Test.make ~name:"transaction_bytes matches per-block sum" ~count:500 gen
    (fun (offset_bytes, block_bytes, stride_bytes, block_count) ->
      let d = D.descriptor ~offset_bytes ~block_bytes ~stride_bytes ~block_count in
      let direct = ref 0 in
      let t = Sw26010.Config.dram_transaction_bytes in
      for i = 0 to block_count - 1 do
        let start = offset_bytes + (i * stride_bytes) in
        direct :=
          !direct + (Prelude.Ints.align_up (start + block_bytes) t - Prelude.Ints.align_down start t)
      done;
      D.transaction_bytes d = !direct)

let prop_waste_nonneg =
  let gen =
    QCheck2.Gen.(
      map
        (fun (o, b, e, c) -> (o * 4, b * 4, (b * 4) + (e * 4), c))
        (tup4 (int_bound 64) (int_range 1 200) (int_bound 64) (int_range 1 100)))
  in
  QCheck2.Test.make ~name:"waste is non-negative, bounded by 2 transactions/block" ~count:500 gen
    (fun (offset_bytes, block_bytes, stride_bytes, block_count) ->
      let d = D.descriptor ~offset_bytes ~block_bytes ~stride_bytes ~block_count in
      let w = D.waste_bytes d in
      w >= 0 && w <= block_count * 2 * Sw26010.Config.dram_transaction_bytes)

let engine_suite =
  [
    Alcotest.test_case "engine serializes occupancy, pipelines latency" `Quick (fun () ->
        let e = D.Engine.create () in
        D.Engine.issue e ~now:0.0 ~tag:1 ~occupancy:1.0 ~latency:0.5;
        D.Engine.issue e ~now:0.0 ~tag:2 ~occupancy:1.0 ~latency:0.5;
        (* second transmits 1..2, reply 0.5 later *)
        Alcotest.(check (float 1e-9)) "second completes at 2.5" 2.5 (D.Engine.wait e ~now:0.0 ~tag:2));
    Alcotest.test_case "wait returns now for unknown tags" `Quick (fun () ->
        let e = D.Engine.create () in
        Alcotest.(check (float 0.0)) "now" 5.0 (D.Engine.wait e ~now:5.0 ~tag:3));
    Alcotest.test_case "reply word accumulates same-tag transfers" `Quick (fun () ->
        let e = D.Engine.create () in
        D.Engine.issue e ~now:0.0 ~tag:7 ~occupancy:1.0 ~latency:0.0;
        D.Engine.issue e ~now:0.0 ~tag:7 ~occupancy:2.0 ~latency:0.0;
        Alcotest.(check (float 1e-9)) "last completion" 3.0 (D.Engine.wait e ~now:0.0 ~tag:7);
        Alcotest.(check (float 0.0)) "consumed" 0.0 (D.Engine.wait e ~now:0.0 ~tag:7));
    Alcotest.test_case "wait never travels back in time" `Quick (fun () ->
        let e = D.Engine.create () in
        D.Engine.issue e ~now:0.0 ~tag:1 ~occupancy:0.5 ~latency:0.0;
        Alcotest.(check (float 0.0)) "max(now, completion)" 9.0 (D.Engine.wait e ~now:9.0 ~tag:1));
    Alcotest.test_case "large tags grow the table" `Quick (fun () ->
        let e = D.Engine.create () in
        D.Engine.issue e ~now:0.0 ~tag:1000 ~occupancy:1.0 ~latency:0.0;
        Alcotest.(check (float 1e-9)) "completes" 1.0 (D.Engine.wait e ~now:0.0 ~tag:1000));
  ]

let pipeline_suite =
  let open Sw26010.Pipeline in
  [
    Alcotest.test_case "balanced block issues one per pipe per cycle" `Quick (fun () ->
        Alcotest.(check int) "16/16" 16 (cycles (block ~p0_ops:16 ~p1_ops:16 ())));
    Alcotest.test_case "flexible ops fill slack first" `Quick (fun () ->
        Alcotest.(check int) "slack absorbs" 16 (cycles (block ~flexible_ops:8 ~p0_ops:16 ~p1_ops:8 ())));
    Alcotest.test_case "overflow splits across pipes" `Quick (fun () ->
        Alcotest.(check int) "16+((10-0)/2)" 21 (cycles (block ~flexible_ops:10 ~p0_ops:16 ~p1_ops:16 ())));
    Alcotest.test_case "stalls add up" `Quick (fun () ->
        Alcotest.(check int) "raw" 20 (cycles (block ~raw_stalls:4 ~p0_ops:16 ~p1_ops:8 ())));
    Alcotest.test_case "utilization bounded" `Quick (fun () ->
        let b = block ~p0_ops:16 ~p1_ops:16 () in
        Alcotest.(check (float 1e-9)) "full" 1.0 (utilization b));
  ]

let regcomm_suite =
  [
    Alcotest.test_case "broadcast cost scales with bytes" `Quick (fun () ->
        let one = Sw26010.Regcomm.broadcast_cycles ~bytes:1024 in
        let two = Sw26010.Regcomm.broadcast_cycles ~bytes:2048 in
        Alcotest.(check bool) "2x" true (Prelude.Floats.approx_equal (2.0 *. one) two));
    Alcotest.test_case "phase adds switch latency" `Quick (fun () ->
        let base = Sw26010.Regcomm.phase_cycles ~switches:0 ~bytes_per_cpe:512 in
        let sw = Sw26010.Regcomm.phase_cycles ~switches:3 ~bytes_per_cpe:512 in
        Alcotest.(check (float 1e-6)) "3 switches"
          (float_of_int (3 * Sw26010.Regcomm.switch_cycles))
          (sw -. base));
  ]

let core_group_suite =
  [
    Alcotest.test_case "clock advances and drains DMA" `Quick (fun () ->
        let cg = Sw26010.Core_group.create () in
        Sw26010.Core_group.issue_dma cg ~tag:0 ~occupancy:2.0 ~latency:0.0;
        Sw26010.Core_group.advance cg 0.5;
        Alcotest.(check (float 1e-9)) "compute time" 0.5 (Sw26010.Core_group.compute_busy cg);
        Sw26010.Core_group.wait_dma cg ~tag:0;
        Alcotest.(check (float 1e-9)) "waited to completion" 2.0 (Sw26010.Core_group.now cg);
        Alcotest.(check (float 1e-9)) "dma busy" 2.0 (Sw26010.Core_group.dma_busy cg));
  ]

let suite =
  spm_suite @ dma_suite @ engine_suite @ pipeline_suite @ regcomm_suite @ core_group_suite
  @ List.map QCheck_alcotest.to_alcotest [ prop_transaction_periodic; prop_waste_nonneg ]
