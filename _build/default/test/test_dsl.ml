(* The DSL's schedule-space vocabulary and the scheduler's loop helpers. *)

open Swatop

let dsl_suite =
  [
    Alcotest.test_case "factor_var candidates are divisors in range" `Quick (fun () ->
        let fv = Dsl.factor_var ~name:"f" ~axis:(Dsl.axis "x" 24) ~min_factor:2 ~max_factor:12 () in
        Alcotest.(check (list int)) "divisors" [ 2; 3; 4; 6; 8; 12 ] fv.Dsl.fv_candidates);
    Alcotest.test_case "prime extents fall back to power-of-two tiles" `Quick (fun () ->
        let fv = Dsl.factor_var ~name:"f" ~axis:(Dsl.axis "x" 13) () in
        Alcotest.(check bool) "has non-divisors" true
          (List.exists (fun f -> 13 mod f <> 0) fv.Dsl.fv_candidates));
    Alcotest.test_case "space size and enumeration agree" `Quick (fun () ->
        let space =
          Dsl.space
            ~factors:
              [
                Dsl.factor_var ~name:"fm" ~axis:(Dsl.axis "m" 12) ();
                Dsl.factor_var ~name:"fn" ~axis:(Dsl.axis "n" 8) ();
              ]
            ~choices:[ Dsl.choice_var ~name:"vec" ~arity:2 ]
        in
        let bindings = Dsl.enumerate space in
        Alcotest.(check int) "size" (Dsl.size space) (List.length bindings);
        (* each binding assigns every variable *)
        List.iter
          (fun b ->
            List.iter
              (fun v -> ignore (Dsl.value b v))
              [ "fm"; "fn"; "vec" ])
          bindings;
        (* all bindings distinct *)
        Alcotest.(check int) "distinct" (List.length bindings)
          (List.length (List.sort_uniq compare bindings)));
    Alcotest.test_case "duplicate variables rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Dsl.space
                  ~factors:[ Dsl.factor_var ~name:"x" ~axis:(Dsl.axis "a" 4) () ]
                  ~choices:[ Dsl.choice_var ~name:"x" ~arity:2 ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "unknown variable raises Not_found" `Quick (fun () ->
        let b = List.hd (Dsl.enumerate (Dsl.space ~factors:[] ~choices:[ Dsl.choice_var ~name:"c" ~arity:1 ])) in
        Alcotest.check_raises "missing" Not_found (fun () -> ignore (Dsl.value b "ghost")));
  ]

let scheduler_suite =
  [
    Alcotest.test_case "nest builds loops outermost first" `Quick (fun () ->
        let levels =
          [
            Scheduler.level ~iter:"i" ~extent:8 ~step:2;
            Scheduler.level ~iter:"j" ~extent:4 ~step:1;
          ]
        in
        match Scheduler.nest ~prefetch_at:"i" ~levels (Ir.Comment "body") with
        | Ir.For { iter = "i"; prefetch = true; body = Ir.For { iter = "j"; prefetch = false; _ }; _ } ->
          ()
        | _ -> Alcotest.fail "wrong nest shape");
    Alcotest.test_case "clipped folds when the factor divides" `Quick (fun () ->
        Alcotest.(check bool) "const" true
          (Scheduler.clipped ~extent:32 ~step:8 (Ir.var "i") = Ir.int 8);
        match Scheduler.clipped ~extent:30 ~step:8 (Ir.var "i") with
        | Ir.Min _ -> ()
        | _ -> Alcotest.fail "expected min() for ragged extent");
    Alcotest.test_case "tile_extent evaluates correctly at the boundary" `Quick (fun () ->
        let lv = Scheduler.level ~iter:"i" ~extent:30 ~step:8 in
        let e = Scheduler.tile_extent lv in
        Alcotest.(check bool) "interior" true (Ir.subst [ ("i", Ir.int 8) ] e = Ir.int 8);
        Alcotest.(check bool) "edge" true (Ir.subst [ ("i", Ir.int 24) ] e = Ir.int 6));
    Alcotest.test_case "trips" `Quick (fun () ->
        Alcotest.(check int) "ceil" 4 (Scheduler.trips (Scheduler.level ~iter:"i" ~extent:30 ~step:8)));
    Alcotest.test_case "reorder permutes and validates" `Quick (fun () ->
        let levels =
          [ Scheduler.level ~iter:"a" ~extent:2 ~step:1; Scheduler.level ~iter:"b" ~extent:2 ~step:1 ]
        in
        let r = Scheduler.reorder ~order:[ "b"; "a" ] levels in
        Alcotest.(check (list string)) "order" [ "b"; "a" ]
          (List.map (fun l -> l.Scheduler.lv_iter) r);
        Alcotest.(check bool) "unknown raises" true
          (try
             ignore (Scheduler.reorder ~order:[ "b"; "z" ] levels);
             false
           with Invalid_argument _ -> true));
  ]

let suite = dsl_suite @ scheduler_suite
