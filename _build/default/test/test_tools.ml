(* The observability and dispatch layers: execution traces, static program
   analysis, and per-layer algorithm selection. *)

open Swatop
open Swatop_ops

let tuned_matmul ?(prefetch = true) () =
  let t = Matmul.problem ~m:64 ~n:48 ~k:32 in
  let s =
    {
      Matmul.fm = 16;
      fn = 16;
      fk = 16;
      n_outer = false;
      vec = Primitives.Spm_gemm.Vec_m;
      boundary = Op_common.Switch;
      prefetch;
    }
  in
  (t, Tuner.prepare (Matmul.build t s))

let trace_suite =
  [
    Alcotest.test_case "trace records both lanes within the run window" `Quick (fun () ->
        let _, p = tuned_matmul () in
        let tr = Trace.create () in
        let r = Interp.run ~trace:tr ~numeric:false p in
        Alcotest.(check bool) "events recorded" true (Trace.event_count tr > 10);
        List.iter
          (fun (e : Trace.event) ->
            if e.ev_start < 0.0 || e.ev_end > r.Interp.seconds +. 1e-12 then
              Alcotest.failf "event %s outside run window" e.ev_name)
          (Trace.events tr));
    Alcotest.test_case "lane busy times match the run's counters" `Quick (fun () ->
        let _, p = tuned_matmul () in
        let tr = Trace.create () in
        let r = Interp.run ~trace:tr ~numeric:false p in
        Alcotest.(check bool) "dma busy" true
          (Prelude.Floats.approx_equal ~eps:1e-6 (Trace.busy tr Trace.Dma_engine)
             r.Interp.dma_busy_seconds);
        Alcotest.(check bool) "compute busy" true
          (Prelude.Floats.approx_equal ~eps:1e-6 (Trace.busy tr Trace.Cpe_cluster)
             r.Interp.compute_busy_seconds));
    Alcotest.test_case "overlap visible: lanes overlap when prefetching" `Quick (fun () ->
        let _, p = tuned_matmul ~prefetch:true () in
        let tr = Trace.create () in
        let r = Interp.run ~trace:tr ~numeric:false p in
        let total_busy = Trace.busy tr Trace.Dma_engine +. Trace.busy tr Trace.Cpe_cluster in
        Alcotest.(check bool) "sum of busy exceeds wall (overlap)" true
          (total_busy > r.Interp.seconds));
    Alcotest.test_case "chrome JSON is well-formed enough" `Quick (fun () ->
        let _, p = tuned_matmul () in
        let tr = Trace.create () in
        ignore (Interp.run ~trace:tr ~numeric:false p);
        let json = Trace.to_chrome_json tr in
        Alcotest.(check bool) "starts" true (String.length json > 2 && json.[0] = '{');
        Alcotest.(check bool) "has traceEvents" true
          (String.length json > 20 && String.sub json 1 13 = "\"traceEvents\"");
        (* crude balance check *)
        let count c = String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 json in
        Alcotest.(check int) "balanced braces" (count '{') (count '}');
        Alcotest.(check int) "balanced brackets" (count '[') (count ']'));
    Alcotest.test_case "negative duration rejected" `Quick (fun () ->
        let tr = Trace.create () in
        Alcotest.(check bool) "raises" true
          (try
             Trace.record tr ~name:"x" ~lane:Trace.Cpe_cluster ~start:1.0 ~stop:0.5;
             false
           with Invalid_argument _ -> true));
  ]

let analysis_suite =
  [
    Alcotest.test_case "analysis agrees with the interpreter's counters" `Quick (fun () ->
        let _, p = tuned_matmul () in
        let a = Ir_analysis.analyze p in
        let r = Interp.run ~fidelity:Interp.Exact_cpes ~numeric:false p in
        Alcotest.(check int) "gemm calls" r.Interp.gemm_calls a.Ir_analysis.gemm_calls;
        Alcotest.(check bool) "gemm flops" true
          (Prelude.Floats.approx_equal r.Interp.gemm_flops a.Ir_analysis.gemm_flops);
        (* payload bytes: interpreter sums per-CPE payloads of all 64 CPEs *)
        let payload =
          Ir_analysis.total_get_payload a + Ir_analysis.total_put_payload a
        in
        Alcotest.(check int) "payload bytes" r.Interp.dma_payload_bytes payload);
    Alcotest.test_case "matmul traffic decomposition is exact" `Quick (fun () ->
        (* aligned 64x48x32 with 16^3 tiles, MN order: A re-read per N tile
           (3x), B per M tile (4x), C written once *)
        let _, p = tuned_matmul () in
        let a = Ir_analysis.analyze p in
        let find name =
          List.find (fun b -> b.Ir_analysis.bt_buffer = name) a.Ir_analysis.traffic
        in
        Alcotest.(check int) "A read 3x" (3 * 64 * 32 * 4) (find "A").Ir_analysis.bt_get_payload;
        Alcotest.(check int) "B read 4x" (4 * 32 * 48 * 4) (find "B").Ir_analysis.bt_get_payload;
        Alcotest.(check int) "C written once" (64 * 48 * 4) (find "C").Ir_analysis.bt_put_payload;
        Alcotest.(check int) "C never read" 0 (find "C").Ir_analysis.bt_get_payload);
    Alcotest.test_case "arithmetic intensity is positive and finite" `Quick (fun () ->
        let _, p = tuned_matmul () in
        let a = Ir_analysis.analyze p in
        let ai = Ir_analysis.arithmetic_intensity a in
        Alcotest.(check bool) "finite" true (Float.is_finite ai && ai > 0.0));
    Alcotest.test_case "tile-size ablation shows the re-fetch factor" `Quick (fun () ->
        (* A is re-read once per N tile: doubling fn halves A's traffic *)
        let t = Matmul.problem ~m:128 ~n:32 ~k:32 in
        let s =
          {
            Matmul.fm = 16;
            fn = 16;
            fk = 32;
            n_outer = false;
            vec = Primitives.Spm_gemm.Vec_m;
            boundary = Op_common.Switch;
            prefetch = false;
          }
        in
        let a_traffic s =
          let a = Ir_analysis.analyze (Tuner.prepare (Matmul.build t s)) in
          (List.find (fun b -> b.Ir_analysis.bt_buffer = "A") a.Ir_analysis.traffic)
            .Ir_analysis.bt_get_payload
        in
        let narrow = a_traffic s and wide = a_traffic { s with fn = 32 } in
        Alcotest.(check int) "halved" narrow (2 * wide));
  ]

let gemm_model = lazy (Gemm_cost.fit ())

let dispatch_suite =
  [
    Alcotest.test_case "winograd wins a 3x3 layer, implicit a 1x1 layer" `Quick (fun () ->
        let spec3 = Swtensor.Conv_spec.create ~b:8 ~ni:32 ~no:32 ~ro:16 ~co:16 ~kr:3 ~kc:3 () in
        let best3 = Dispatch.best ~gemm_model:(Lazy.force gemm_model) spec3 in
        Alcotest.(check bool) "3x3 not explicit" true (best3.Dispatch.c_algo <> Dispatch.Explicit);
        let spec1 = Swtensor.Conv_spec.create ~b:8 ~ni:32 ~no:32 ~ro:16 ~co:16 ~kr:1 ~kc:1 () in
        let all1 = Dispatch.all ~gemm_model:(Lazy.force gemm_model) spec1 in
        Alcotest.(check bool) "winograd inapplicable on 1x1" true
          (List.assoc Dispatch.Winograd all1 = None));
    Alcotest.test_case "best is the minimum of all" `Quick (fun () ->
        let spec = Swtensor.Conv_spec.create ~b:4 ~ni:16 ~no:16 ~ro:12 ~co:12 ~kr:3 ~kc:3 () in
        let gm = Lazy.force gemm_model in
        let best = Dispatch.best ~gemm_model:gm spec in
        List.iter
          (function
            | _, Some (c : Dispatch.choice) ->
              Alcotest.(check bool) "<=" true (best.Dispatch.c_seconds <= c.c_seconds +. 1e-12)
            | _, None -> ())
          (Dispatch.all ~gemm_model:gm spec));
    Alcotest.test_case "odd extents rule out winograd" `Quick (fun () ->
        let spec = Swtensor.Conv_spec.create ~b:2 ~ni:8 ~no:8 ~ro:7 ~co:7 ~kr:3 ~kc:3 () in
        Alcotest.(check bool) "not applicable" false (Dispatch.applicable Dispatch.Winograd spec));
  ]

let suite = trace_suite @ analysis_suite @ dispatch_suite
