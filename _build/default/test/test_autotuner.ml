(* The autotuner stack: Eq.-2 fitting quality, the static cost model's
   agreement with simulated execution, and the two tuners' contracts. *)

open Swatop
open Swatop_ops

let gemm_model = lazy (Gemm_cost.fit ())

let fit_suite =
  [
    Alcotest.test_case "fit error is small on the sample grid" `Quick (fun () ->
        let model = Lazy.force gemm_model in
        let errs = ref [] in
        List.iter
          (fun v ->
            List.iter
              (fun (m, n, k) ->
                let lda =
                  match (v : Primitives.Spm_gemm.variant).a_major with
                  | Primitives.Spm_gemm.Row_major -> k
                  | Primitives.Spm_gemm.Col_major -> m
                in
                let ldb =
                  match v.b_major with
                  | Primitives.Spm_gemm.Row_major -> n
                  | Primitives.Spm_gemm.Col_major -> k
                in
                let call = Primitives.Spm_gemm.call ~variant:v ~m ~n ~k ~lda ~ldb ~ldc:n in
                errs := Float.abs (Gemm_cost.relative_error model call) :: !errs)
              Gemm_cost.default_grid)
          Primitives.Spm_gemm.all_variants;
        let mean = Prelude.Floats.mean !errs in
        (* The linear basis cannot follow the register-block staircase at
           tiny shapes, but on average it must be a usable predictor. *)
        Alcotest.(check bool) (Printf.sprintf "mean |err| %.3f < 0.15" mean) true (mean < 0.15));
    Alcotest.test_case "fit is accurate on mid-size kernel calls" `Quick (fun () ->
        let model = Lazy.force gemm_model in
        List.iter
          (fun (m, n, k) ->
            let call =
              Primitives.Spm_gemm.call
                ~variant:{ a_major = Row_major; b_major = Row_major; vec = Vec_m }
                ~m ~n ~k ~lda:k ~ldb:n ~ldc:n
            in
            let e = Float.abs (Gemm_cost.relative_error model call) in
            if e > 0.2 then Alcotest.failf "error %.3f at %dx%dx%d" e m n k)
          [ (128, 128, 64); (256, 256, 128); (64, 512, 128); (384, 128, 64) ]);
    Alcotest.test_case "prediction is deterministic" `Quick (fun () ->
        let a = Gemm_cost.fit () and b = Gemm_cost.fit () in
        List.iter
          (fun v ->
            Alcotest.(check bool) "same coefficients" true
              (Gemm_cost.coefficients a v = Gemm_cost.coefficients b v))
          Primitives.Spm_gemm.all_variants);
  ]

(* Cost model vs simulated execution: the model is an approximation, but it
   must stay within a factor that preserves rankings. *)
let model_agreement_suite =
  let check_program name p =
    let p = Tuner.prepare p in
    let est = Cost_model.estimate ~gemm_model:(Lazy.force gemm_model) p in
    let r = Interp.run ~numeric:false p in
    let ratio = est.Cost_model.total_seconds /. r.Interp.seconds in
    if ratio < 0.5 || ratio > 2.0 then
      Alcotest.failf "%s: model %.3g vs simulated %.3g (ratio %.2f)" name
        est.Cost_model.total_seconds r.Interp.seconds ratio
  in
  [
    Alcotest.test_case "within 2x on assorted matmuls" `Quick (fun () ->
        List.iter
          (fun (m, n, k) ->
            let t = Matmul.problem ~m ~n ~k in
            List.iteri
              (fun i s -> check_program (Printf.sprintf "matmul %dx%dx%d #%d" m n k i) (Matmul.build t s))
              (Prelude.Lists.take_every 40 (Matmul.space t)))
          [ (256, 256, 256); (500, 200, 300) ]);
    Alcotest.test_case "within 2x on an implicit conv space sample" `Quick (fun () ->
        let spec = Swtensor.Conv_spec.create ~b:4 ~ni:32 ~no:48 ~ro:14 ~co:14 ~kr:3 ~kc:3 () in
        let t = Conv_implicit.problem spec in
        List.iteri
          (fun i s -> check_program (Printf.sprintf "conv #%d" i) (Conv_implicit.build t s))
          (Prelude.Lists.take_every 30 (Conv_implicit.space t)));
    Alcotest.test_case "overlap rule: total is max of parts plus latency" `Quick (fun () ->
        let t = Matmul.problem ~m:128 ~n:128 ~k:128 in
        let s = List.hd (Matmul.space t) in
        let p = Tuner.prepare (Matmul.build t s) in
        let e = Cost_model.estimate ~gemm_model:(Lazy.force gemm_model) p in
        Alcotest.(check bool) "overlapped" true p.Ir.overlapped;
        Alcotest.(check (float 1e-12)) "max rule"
          (Float.max e.Cost_model.dma_seconds e.Cost_model.compute_seconds
          +. Sw26010.Config.dma_latency_s)
          e.Cost_model.total_seconds);
  ]

let tuner_suite =
  [
    Alcotest.test_case "black-box returns the measured minimum" `Quick (fun () ->
        let t = Matmul.problem ~m:64 ~n:64 ~k:64 in
        let space = Matmul.space t in
        let o = Tuner.blackbox_tune ~candidates:space ~build:(Matmul.build t) () in
        let all =
          List.map (fun s -> (Interp.run ~numeric:false (Tuner.prepare (Matmul.build t s))).seconds) space
        in
        let true_min = List.fold_left Float.min infinity all in
        Alcotest.(check bool) "min" true (Prelude.Floats.approx_equal o.best_seconds true_min));
    Alcotest.test_case "top-k never worse than top-1" `Quick (fun () ->
        let t = Matmul.problem ~m:200 ~n:120 ~k:80 in
        let space = Matmul.space t in
        let gm = Lazy.force gemm_model in
        let one = Tuner.model_tune ~gemm_model:gm ~candidates:space ~build:(Matmul.build t) () in
        let four = Tuner.model_tune ~top_k:4 ~gemm_model:gm ~candidates:space ~build:(Matmul.build t) () in
        Alcotest.(check bool) "<=" true (four.best_seconds <= one.best_seconds +. 1e-12));
    Alcotest.test_case "model pick close to brute-force best" `Quick (fun () ->
        let t = Matmul.problem ~m:256 ~n:256 ~k:256 in
        let space = Matmul.space t in
        let gm = Lazy.force gemm_model in
        let mt = Tuner.model_tune ~gemm_model:gm ~candidates:space ~build:(Matmul.build t) () in
        let bb = Tuner.blackbox_tune ~candidates:space ~build:(Matmul.build t) () in
        let ratio = bb.best_seconds /. mt.best_seconds in
        Alcotest.(check bool) (Printf.sprintf "ratio %.3f > 0.8" ratio) true (ratio > 0.8));
    Alcotest.test_case "sampled black-box extrapolates hardware time" `Quick (fun () ->
        let t = Matmul.problem ~m:64 ~n:64 ~k:64 in
        let space = Matmul.space t in
        let full = Tuner.blackbox_tune ~candidates:space ~build:(Matmul.build t) () in
        let sampled = Tuner.blackbox_tune ~sample_every:4 ~candidates:space ~build:(Matmul.build t) () in
        Alcotest.(check bool) "fewer evaluated" true (sampled.report.evaluated < full.report.evaluated);
        let ratio = sampled.report.hardware_seconds /. full.report.hardware_seconds in
        Alcotest.(check bool) (Printf.sprintf "extrapolation ratio %.2f" ratio) true
          (ratio > 0.7 && ratio < 1.4));
    Alcotest.test_case "empty space rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Tuner.model_tune ~gemm_model:(Lazy.force gemm_model) ~candidates:[]
                  ~build:(fun _ -> assert false) ());
             false
           with Invalid_argument _ -> true));
  ]

let suite = fit_suite @ model_agreement_suite @ tuner_suite
