(* The tensorized GEMM micro-kernel: numeric equivalence with the reference,
   cycle-model properties, and the eight variants. *)

module G = Primitives.Spm_gemm

let flat_random seed n =
  let st = Random.State.make [| seed |] in
  Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0)

let reference_result ~m ~n ~k a b =
  let c = Array.make (m * n) 0.0 in
  Swtensor.Gemm_ref.gemm ~beta:0.0 ~m ~n ~k ~a ~lda:k ~b ~ldb:n ~c ~ldc:n ();
  c

let transpose ~rows ~cols x = Array.init (rows * cols) (fun i -> x.((i mod rows * cols) + (i / rows)))

let variant_suite =
  [
    Alcotest.test_case "eight variants, stable names" `Quick (fun () ->
        Alcotest.(check int) "8" 8 (List.length G.all_variants);
        List.iter
          (fun v ->
            match G.variant_of_name (G.variant_name v) with
            | Some v' -> Alcotest.(check bool) "round trip" true (v = v')
            | None -> Alcotest.fail "name did not round trip")
          G.all_variants);
    Alcotest.test_case "every variant computes the same product" `Quick (fun () ->
        let m = 9 and n = 7 and k = 5 in
        let a = flat_random 1 (m * k) and b = flat_random 2 (k * n) in
        let expected = reference_result ~m ~n ~k a b in
        List.iter
          (fun (v : G.variant) ->
            let a_stored, lda =
              match v.a_major with G.Row_major -> (a, k) | G.Col_major -> (transpose ~rows:m ~cols:k a, m)
            in
            let b_stored, ldb =
              match v.b_major with G.Row_major -> (b, n) | G.Col_major -> (transpose ~rows:k ~cols:n b, k)
            in
            let c = Array.make (m * n) 0.0 in
            let call = G.call ~variant:v ~m ~n ~k ~lda ~ldb ~ldc:n in
            G.exec call ~a:a_stored ~ao:0 ~b:b_stored ~bo:0 ~c ~co:0;
            Array.iteri
              (fun i x ->
                if not (Prelude.Floats.approx_equal x expected.(i)) then
                  Alcotest.failf "%s wrong at %d" (G.variant_name v) i)
              c)
          G.all_variants);
    Alcotest.test_case "exec accumulates into C" `Quick (fun () ->
        let call =
          G.call ~variant:{ a_major = Row_major; b_major = Row_major; vec = Vec_m } ~m:2 ~n:2 ~k:2
            ~lda:2 ~ldb:2 ~ldc:2
        in
        let a = [| 1.; 0.; 0.; 1. |] and b = [| 1.; 2.; 3.; 4. |] in
        let c = [| 10.; 10.; 10.; 10. |] in
        G.exec call ~a ~ao:0 ~b ~bo:0 ~c ~co:0;
        Alcotest.(check (float 1e-9)) "c00" 11.0 c.(0));
    Alcotest.test_case "offsets address into larger buffers" `Quick (fun () ->
        let call =
          G.call ~variant:{ a_major = Row_major; b_major = Row_major; vec = Vec_n } ~m:2 ~n:2 ~k:2
            ~lda:4 ~ldb:4 ~ldc:4
        in
        let a = Array.make 32 0.0 and b = Array.make 32 0.0 and c = Array.make 32 0.0 in
        a.(8) <- 2.0;
        (* a[0][0] at offset 8 *)
        b.(16) <- 3.0;
        G.exec call ~a ~ao:8 ~b ~bo:16 ~c ~co:4;
        Alcotest.(check (float 1e-9)) "c at offset" 6.0 c.(4));
    Alcotest.test_case "invalid call rejected" `Quick (fun () ->
        Alcotest.(check bool) "lda < k" true
          (try
             ignore
               (G.call ~variant:{ a_major = Row_major; b_major = Row_major; vec = Vec_m } ~m:4 ~n:4
                  ~k:8 ~lda:4 ~ldb:4 ~ldc:4);
             false
           with Invalid_argument _ -> true));
  ]

let cycles_suite =
  let call ?(vec = G.Vec_m) m n k =
    G.call ~variant:{ a_major = Row_major; b_major = Row_major; vec } ~m ~n ~k ~lda:k ~ldb:n ~ldc:n
  in
  [
    Alcotest.test_case "cycles grow monotonically with k" `Quick (fun () ->
        Alcotest.(check bool) "k" true (G.cycles (call 64 64 128) > G.cycles (call 64 64 64)));
    Alcotest.test_case "large balanced call approaches peak" `Quick (fun () ->
        let c = call 512 512 256 in
        Alcotest.(check bool)
          (Printf.sprintf "eff %.2f > 0.9" (G.efficiency c))
          true
          (G.efficiency c > 0.9));
    Alcotest.test_case "tiny call dominated by overhead" `Quick (fun () ->
        Alcotest.(check bool) "eff < 0.2" true (G.efficiency (call 8 8 8) < 0.2));
    Alcotest.test_case "efficiency never exceeds 1" `Quick (fun () ->
        List.iter
          (fun (m, n, k) ->
            let c = call m n k in
            if G.efficiency c > 1.0 then Alcotest.failf "eff > 1 at %dx%dx%d" m n k)
          [ (8, 8, 8); (64, 64, 64); (128, 512, 256); (512, 512, 512); (1000, 1000, 100) ]);
    Alcotest.test_case "vectorization dimension changes cost" `Quick (fun () ->
        (* deep M, shallow N: vectorizing M packs lanes better *)
        let vm = G.cycles (call ~vec:G.Vec_m 512 16 64) in
        let vn = G.cycles (call ~vec:G.Vec_n 512 16 64) in
        Alcotest.(check bool) "vec-M cheaper" true (vm < vn));
    Alcotest.test_case "SPM footprints cover the 8x8 partition" `Quick (fun () ->
        let c = call 65 17 9 in
        Alcotest.(check int) "a" (9 * 2) (G.spm_elems_a c);
        Alcotest.(check int) "b" (2 * 3) (G.spm_elems_b c);
        Alcotest.(check int) "c" (9 * 3) (G.spm_elems_c c));
  ]

let prop_exec_matches_reference =
  QCheck2.Test.make ~name:"kernel numeric execution matches reference GEMM" ~count:60
    QCheck2.Gen.(tup4 (int_range 1 12) (int_range 1 12) (int_range 1 12) (int_bound 7))
    (fun (m, n, k, variant_idx) ->
      let v = List.nth G.all_variants variant_idx in
      let a = flat_random 3 (m * k) and b = flat_random 4 (k * n) in
      let a_stored, lda =
        match v.a_major with G.Row_major -> (a, k) | G.Col_major -> (transpose ~rows:m ~cols:k a, m)
      in
      let b_stored, ldb =
        match v.b_major with G.Row_major -> (b, n) | G.Col_major -> (transpose ~rows:k ~cols:n b, k)
      in
      let c = Array.make (m * n) 0.0 in
      G.exec (G.call ~variant:v ~m ~n ~k ~lda ~ldb ~ldc:n) ~a:a_stored ~ao:0 ~b:b_stored ~bo:0 ~c
        ~co:0;
      let expected = reference_result ~m ~n ~k a b in
      Array.for_all2 (fun x y -> Prelude.Floats.approx_equal x y) c expected)

let prop_cycles_monotone_in_volume =
  QCheck2.Test.make ~name:"doubling every dimension increases cycles" ~count:100
    QCheck2.Gen.(tup3 (int_range 1 128) (int_range 1 128) (int_range 1 128))
    (fun (m, n, k) ->
      let call m n k =
        G.call ~variant:{ a_major = Row_major; b_major = Row_major; vec = Vec_m } ~m ~n ~k ~lda:k
          ~ldb:n ~ldc:n
      in
      G.cycles (call (2 * m) (2 * n) (2 * k)) > G.cycles (call m n k))

let suite =
  variant_suite @ cycles_suite
  @ List.map QCheck_alcotest.to_alcotest [ prop_exec_matches_reference; prop_cycles_monotone_in_volume ]
