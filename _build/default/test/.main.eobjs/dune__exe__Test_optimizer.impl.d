test/test_optimizer.ml: Alcotest Conv_implicit Dma_inference Interp Ir Ir_print List Matmul Op_common Prefetch Primitives QCheck2 QCheck_alcotest Swatop Swatop_ops Swtensor Tuner
