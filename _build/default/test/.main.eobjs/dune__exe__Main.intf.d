test/main.mli:
