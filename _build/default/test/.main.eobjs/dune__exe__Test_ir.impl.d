test/test_ir.ml: Alcotest Dma_inference Format Hashtbl Ir Ir_check Ir_print List QCheck2 QCheck_alcotest Sw26010 Swatop
