test/test_offline.ml: Alcotest Filename Lazy List Offline Printf String Swatop Swatop_ops Swtensor Sys Workloads
