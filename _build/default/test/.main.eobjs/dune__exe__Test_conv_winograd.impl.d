test/test_conv_winograd.ml: Alcotest Conv_winograd List Op_common Primitives Swatop Swatop_ops Swtensor
