test/test_tools.ml: Alcotest Dispatch Float Gemm_cost Interp Ir_analysis Lazy List Matmul Op_common Prelude Primitives String Swatop Swatop_ops Swtensor Trace Tuner
