test/test_edge_cases.ml: Alcotest Baselines Conv_explicit Conv_implicit Conv_winograd Dispatch Lazy List Matmul Op_common Prelude Primitives Printf Swatop Swatop_ops Swtensor Workloads
