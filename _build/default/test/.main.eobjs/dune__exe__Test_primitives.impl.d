test/test_primitives.ml: Alcotest Array List Prelude Primitives Printf QCheck2 QCheck_alcotest Random Swtensor
