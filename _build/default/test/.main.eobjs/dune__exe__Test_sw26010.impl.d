test/test_sw26010.ml: Alcotest List Option Prelude QCheck2 QCheck_alcotest Sw26010
