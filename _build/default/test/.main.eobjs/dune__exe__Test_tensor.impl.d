test/test_tensor.ml: Alcotest Array Hashtbl List Prelude QCheck2 QCheck_alcotest Swtensor
