test/test_prelude.ml: Alcotest Array List Prelude Printf QCheck2 QCheck_alcotest
