test/test_generated_c.ml: Alcotest C_emit Dispatch Filename Gemm_cost List Matmul Option Printf Swatop Swatop_ops Swtensor Sys Tuner
