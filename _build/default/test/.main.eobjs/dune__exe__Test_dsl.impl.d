test/test_dsl.ml: Alcotest Dsl Ir List Scheduler Swatop
