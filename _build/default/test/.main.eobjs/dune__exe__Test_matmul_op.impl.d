test/test_matmul_op.ml: Alcotest List Matmul Op_common Primitives Printf Swatop Swatop_ops Swtensor
