test/test_autotuner.ml: Alcotest Conv_implicit Cost_model Float Gemm_cost Interp Ir Lazy List Matmul Prelude Primitives Printf Sw26010 Swatop Swatop_ops Swtensor Tuner
