test/test_codegen.ml: Alcotest C_emit Conv_explicit Conv_winograd Ir_print List Matmul Mem_plan Op_common Primitives String Sw26010 Swatop Swatop_ops Swtensor Tuner
