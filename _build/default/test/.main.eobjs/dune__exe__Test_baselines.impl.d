test/test_baselines.ml: Alcotest Baselines Conv_explicit Conv_implicit Conv_winograd List Matmul Op_common Option Printf Swatop Swatop_ops Swtensor Workloads
