test/test_conv_explicit.ml: Alcotest Conv_explicit List Op_common Primitives Swatop Swatop_ops Swtensor
