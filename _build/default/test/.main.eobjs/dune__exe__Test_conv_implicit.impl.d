test/test_conv_implicit.ml: Alcotest Conv_implicit List Op_common Primitives Swatop Swatop_ops Swtensor
