test/test_interp.ml: Alcotest Array Interp Ir Prelude Primitives Printf Sw26010 Swatop Tuner
