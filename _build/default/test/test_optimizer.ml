(* The IR optimizer passes: prefetch structure and semantics-preservation,
   over real operator programs. *)

open Swatop
open Swatop_ops

let count_if pred stmt = Ir.fold_stmt (fun acc s -> if pred s then acc + 1 else acc) 0 stmt

let matmul_program ~prefetch =
  let t = Matmul.problem ~m:24 ~n:16 ~k:40 in
  let s =
    {
      Matmul.fm = 8;
      fn = 8;
      fk = 8;
      n_outer = false;
      vec = Primitives.Spm_gemm.Vec_m;
      boundary = Op_common.Switch;
      prefetch;
    }
  in
  (t, s, Dma_inference.apply (Matmul.build t s))

let structure_suite =
  [
    Alcotest.test_case "pass double-buffers the streamed SPM buffers" `Quick (fun () ->
        let _, _, p = matmul_program ~prefetch:true in
        let p' = Prefetch.apply p in
        Alcotest.(check bool) "overlapped" true p'.Ir.overlapped;
        List.iter
          (fun name ->
            match Ir.find_buf p' name with
            | Some b -> Alcotest.(check bool) (name ^ " doubled") true b.Ir.double_buffered
            | None -> Alcotest.fail ("missing buffer " ^ name))
          [ "a_tile"; "b_tile"; "c_tile" ]);
    Alcotest.test_case "no marked loop means no change" `Quick (fun () ->
        let _, _, p = matmul_program ~prefetch:false in
        let p' = Prefetch.apply p in
        Alcotest.(check bool) "not overlapped" false p'.Ir.overlapped;
        Alcotest.(check string) "body untouched"
          (Ir_print.program_to_string p) (Ir_print.program_to_string p'));
    Alcotest.test_case "initial fill precedes the nest" `Quick (fun () ->
        let _, _, p = matmul_program ~prefetch:true in
        let p' = Prefetch.apply p in
        (match p'.Ir.body with
        | Ir.Seq (Ir.Comment c :: fill :: _) ->
          Alcotest.(check string) "comment" "prefetch: initial fill" c;
          Alcotest.(check bool) "fill has gets" true
            (count_if (function Ir.Dma { dir = Ir.Get; _ } -> true | _ -> false) fill > 0)
        | _ -> Alcotest.fail "missing initial fill"));
    Alcotest.test_case "marked loops are consumed (idempotent)" `Quick (fun () ->
        let _, _, p = matmul_program ~prefetch:true in
        let p' = Prefetch.apply p in
        let marked =
          count_if (function Ir.For { prefetch = true; _ } -> true | _ -> false) p'.Ir.body
        in
        Alcotest.(check int) "no marks left" 0 marked;
        let p'' = Prefetch.apply p' in
        Alcotest.(check string) "second apply is identity"
          (Ir_print.program_to_string p') (Ir_print.program_to_string p''));
    Alcotest.test_case "next-iteration inference emits the if-chain" `Quick (fun () ->
        let _, _, p = matmul_program ~prefetch:true in
        let p' = Prefetch.apply p in
        (* chain depth 2 (im, in): the innermost body starts with a 2-level
           conditional prefetch block *)
        let ifs = count_if (function Ir.If _ -> true | _ -> false) p'.Ir.body in
        Alcotest.(check bool) "conditionals present" true (ifs >= 2));
    Alcotest.test_case "malformed nests are rejected" `Quick (fun () ->
        (* a marked loop with no Get DMA below *)
        let spm = Ir.spm_buf ~name:"s" ~cg_elems:16 ~cpe_elems:4 in
        let body =
          Ir.for_ ~prefetch:true ~iter:"i" ~lo:(Ir.int 0) ~hi:(Ir.int 4)
            (Ir.Memset_spm { buf = "s"; offset = Ir.int 0; elems = Ir.int 4 })
        in
        let p = Ir.program ~name:"bad" ~bufs:[ spm ] body in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Prefetch.apply p);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "non-constant chain bounds are rejected" `Quick (fun () ->
        let main = Ir.main_buf ~name:"m" ~elems:64 in
        let spm = Ir.spm_buf ~name:"s" ~cg_elems:16 ~cpe_elems:4 in
        let get =
          Ir.Dma
            {
              dir = Ir.Get;
              main = "m";
              spm = "s";
              tag = Ir.int 0;
              region =
                { offset = Ir.var "i"; rows = Ir.int 1; row_elems = Ir.int 4; row_stride = Ir.int 4 };
              spm_offset = Ir.int 0;
              spm_ld = Ir.int 4;
              partition = Ir.P_cols;
              per_cpe = None;
            }
        in
        let inner = Ir.for_ ~iter:"i" ~lo:(Ir.int 0) ~hi:(Ir.var "n") get in
        let body = Ir.for_ ~prefetch:true ~iter:"n" ~lo:(Ir.int 1) ~hi:(Ir.int 3) inner in
        let p = Dma_inference.apply (Ir.program ~name:"dyn" ~bufs:[ main; spm ] body) in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Prefetch.apply p);
             false
           with Invalid_argument _ -> true));
  ]

(* Semantics preservation, the heart of the pass: on every operator the
   prefetched program must produce bit-identical results and never be
   slower. Matmul/conv suites already check result equality per strategy;
   here we property-test across random shapes. *)
let prop_prefetch_preserves_matmul =
  QCheck2.Test.make ~name:"prefetch preserves matmul results and never hurts" ~count:30
    QCheck2.Gen.(tup3 (int_range 4 40) (int_range 4 40) (int_range 4 40))
    (fun (m, n, k) ->
      let t = Matmul.problem ~m ~n ~k in
      let s =
        {
          Matmul.fm = 8;
          fn = 8;
          fk = 8;
          n_outer = false;
          vec = Primitives.Spm_gemm.Vec_n;
          boundary = Op_common.Pad_light;
          prefetch = false;
        }
      in
      let a = Swtensor.Tensor.random ~seed:m (Swtensor.Shape.of_list [ m; k ]) in
      let b = Swtensor.Tensor.random ~seed:n (Swtensor.Shape.of_list [ k; n ]) in
      let run s =
        let p = Tuner.prepare (Matmul.build t s) in
        let bindings = Matmul.bindings_for t s ~a ~b in
        let r = Interp.run ~bindings ~numeric:true p in
        (Matmul.unpack_c t bindings, r.Interp.seconds)
      in
      let c_off, t_off = run s in
      let c_on, t_on = run { s with prefetch = true } in
      Swtensor.Tensor.approx_equal c_off c_on && t_on <= t_off *. 1.0001)

let prop_prefetch_preserves_implicit_conv =
  QCheck2.Test.make ~name:"prefetch preserves implicit conv (incl. row slabs)" ~count:15
    QCheck2.Gen.(
      tup4 (int_range 1 3) (int_range 4 10) (int_range 4 12) (int_range 4 9))
    (fun (b, ni, no, ro) ->
      let spec = Swtensor.Conv_spec.create ~b ~ni ~no ~ro ~co:(ro + 1) ~kr:3 ~kc:3 () in
      let t = Conv_implicit.problem spec in
      let input = Swtensor.Tensor.random ~seed:ni (Swtensor.Conv_spec.input_shape spec) in
      let weight = Swtensor.Tensor.random ~seed:no (Swtensor.Conv_spec.weight_shape spec) in
      let s =
        {
          Conv_implicit.tile = Conv_implicit.Row_slab 2;
          fi = 4;
          fo = 4;
          pixel_order = Conv_implicit.Ro_outer;
          reduce_order = Conv_implicit.Taps_then_ni;
          w_oi = true;
          vec = Primitives.Spm_gemm.Vec_n;
          boundary = Op_common.Switch;
          prefetch = false;
        }
      in
      let run s =
        let p = Tuner.prepare (Conv_implicit.build t s) in
        let bindings = Conv_implicit.bindings_for t s ~input ~weight in
        let r = Interp.run ~bindings ~numeric:true p in
        (Conv_implicit.unpack_output t bindings, r.Interp.seconds)
      in
      let off, t_off = run s in
      let on_, t_on = run { s with prefetch = true } in
      Swtensor.Tensor.approx_equal off on_ && t_on <= t_off *. 1.0001)

let suite =
  structure_suite
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_prefetch_preserves_matmul; prop_prefetch_preserves_implicit_conv ]
