(* Tensor substrate: shapes, layouts, dense tensors and the reference
   operators that act as numeric oracles. *)

module T = Swtensor.Tensor
module Sh = Swtensor.Shape
module L = Swtensor.Layout

let shape_suite =
  [
    Alcotest.test_case "numel / strides" `Quick (fun () ->
        let s = Sh.of_list [ 2; 3; 4 ] in
        Alcotest.(check int) "numel" 24 (Sh.numel s);
        Alcotest.(check (array int)) "strides" [| 12; 4; 1 |] (Sh.strides s));
    Alcotest.test_case "linear_index round trip" `Quick (fun () ->
        let s = Sh.of_list [ 3; 5; 7 ] in
        for lin = 0 to Sh.numel s - 1 do
          Alcotest.(check int) "round trip" lin (Sh.linear_index s (Sh.unflatten s lin))
        done);
    Alcotest.test_case "bounds checked" `Quick (fun () ->
        let s = Sh.of_list [ 2; 2 ] in
        Alcotest.(check bool) "oob" true
          (try
             ignore (Sh.linear_index s [| 2; 0 |]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "conv_output" `Quick (fun () ->
        Alcotest.(check int) "stride 1 pad 0" 26 (Sh.conv_output ~input:28 ~kernel:3 ~stride:1 ~pad:0);
        Alcotest.(check int) "stride 2 pad 1" 14 (Sh.conv_output ~input:28 ~kernel:3 ~stride:2 ~pad:1));
  ]

let layout_suite =
  [
    Alcotest.test_case "identity strides are row-major" `Quick (fun () ->
        let l = L.identity 3 in
        Alcotest.(check (array int)) "strides" [| 12; 4; 1 |] (L.strides l (Sh.of_list [ 2; 3; 4 ])));
    Alcotest.test_case "permuted layout" `Quick (fun () ->
        (* store as (axis1, axis0): axis 0 becomes innermost *)
        let l = L.create ~perm:[| 1; 0 |] in
        let s = Sh.of_list [ 4; 6 ] in
        Alcotest.(check (array int)) "strides" [| 1; 4 |] (L.strides l s);
        Alcotest.(check int) "offset (2,3)" (2 + (3 * 4)) (L.offset l s [| 2; 3 |]);
        Alcotest.(check int) "innermost" 0 (L.innermost_axis l));
    Alcotest.test_case "all layouts of rank 3" `Quick (fun () ->
        Alcotest.(check int) "3!" 6 (List.length (L.all 3)));
    Alcotest.test_case "non-permutation rejected" `Quick (fun () ->
        Alcotest.(check bool) "reject" true
          (try
             ignore (L.create ~perm:[| 0; 0 |]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "to_string" `Quick (fun () ->
        let l = L.create ~perm:[| 1; 2; 3; 0 |] in
        Alcotest.(check string) "CHWB" "CHWB" (L.to_string ~axis_names:[| "B"; "C"; "H"; "W" |] l));
  ]

let prop_layout_bijective =
  QCheck2.Test.make ~name:"layout offsets are a bijection" ~count:100
    QCheck2.Gen.(tup3 (int_range 1 5) (int_range 1 5) (int_range 1 5))
    (fun (a, b, c) ->
      let s = Sh.of_list [ a; b; c ] in
      List.for_all
        (fun l ->
          let seen = Hashtbl.create 16 in
          let ok = ref true in
          for lin = 0 to Sh.numel s - 1 do
            let off = L.offset l s (Sh.unflatten s lin) in
            if Hashtbl.mem seen off || off < 0 || off >= Sh.numel s then ok := false;
            Hashtbl.replace seen off ()
          done;
          !ok)
        (L.all 3))

let tensor_suite =
  [
    Alcotest.test_case "of_fn / get agree" `Quick (fun () ->
        let t = T.of_fn (Sh.of_list [ 3; 4 ]) (fun i -> float_of_int ((i.(0) * 10) + i.(1))) in
        Alcotest.(check (float 0.0)) "(2,3)" 23.0 (T.get t [| 2; 3 |]));
    Alcotest.test_case "random is deterministic per seed" `Quick (fun () ->
        let a = T.random ~seed:5 (Sh.of_list [ 8; 8 ]) in
        let b = T.random ~seed:5 (Sh.of_list [ 8; 8 ]) in
        let c = T.random ~seed:6 (Sh.of_list [ 8; 8 ]) in
        Alcotest.(check bool) "same seed" true (T.approx_equal a b);
        Alcotest.(check bool) "diff seed" false (T.approx_equal a c));
    Alcotest.test_case "relayout permutes the storage" `Quick (fun () ->
        let s = Sh.of_list [ 2; 3 ] in
        let t = T.of_fn s (fun i -> float_of_int ((i.(0) * 3) + i.(1))) in
        let transposed_layout = L.create ~perm:[| 1; 0 |] in
        let r = T.relayout ~src_layout:(L.identity 2) ~dst_layout:transposed_layout t in
        (* logical (1,2) is stored at transposed offset 2*2+1 = 5 *)
        Alcotest.(check (float 0.0)) "value" 5.0 (T.get_lin r ((2 * 2) + 1)));
    Alcotest.test_case "max_abs_diff" `Quick (fun () ->
        let a = T.of_array (Sh.of_list [ 2 ]) [| 1.0; 2.0 |] in
        let b = T.of_array (Sh.of_list [ 2 ]) [| 1.5; 2.0 |] in
        Alcotest.(check (float 1e-9)) "0.5" 0.5 (T.max_abs_diff a b));
  ]

(* Reference operators against brute-force definitions. *)
let gemm_ref_suite =
  [
    Alcotest.test_case "gemm with alpha/beta and leading dims" `Quick (fun () ->
        let a = [| 1.; 2.; 0.; 3.; 4.; 0. |] (* 2x2 with lda=3 *) in
        let b = [| 5.; 6.; 7.; 8. |] in
        let c = [| 100.; 100.; 100.; 100. |] in
        Swtensor.Gemm_ref.gemm ~alpha:2.0 ~beta:1.0 ~m:2 ~n:2 ~k:2 ~a ~lda:3 ~b ~ldb:2 ~c ~ldc:2 ();
        Alcotest.(check (float 1e-9)) "c00" (100. +. (2. *. ((1. *. 5.) +. (2. *. 7.)))) c.(0));
    Alcotest.test_case "matmul identity" `Quick (fun () ->
        let n = 5 in
        let id = T.of_fn (Sh.of_list [ n; n ]) (fun i -> if i.(0) = i.(1) then 1.0 else 0.0) in
        let x = T.random ~seed:3 (Sh.of_list [ n; n ]) in
        Alcotest.(check bool) "x * I = x" true (T.approx_equal x (Swtensor.Gemm_ref.matmul x id)));
  ]

let prop_matmul_linear =
  QCheck2.Test.make ~name:"matmul is linear in A" ~count:50
    QCheck2.Gen.(tup3 (int_range 1 6) (int_range 1 6) (int_range 1 6))
    (fun (m, n, k) ->
      let a1 = T.random ~seed:1 (Sh.of_list [ m; k ]) in
      let a2 = T.random ~seed:2 (Sh.of_list [ m; k ]) in
      let b = T.random ~seed:3 (Sh.of_list [ k; n ]) in
      let sum = T.map2 ( +. ) a1 a2 in
      let lhs = Swtensor.Gemm_ref.matmul sum b in
      let rhs = T.map2 ( +. ) (Swtensor.Gemm_ref.matmul a1 b) (Swtensor.Gemm_ref.matmul a2 b) in
      T.approx_equal lhs rhs)

let conv_spec ?(b = 2) ?(ni = 3) ?(no = 4) ?(ro = 5) ?(co = 6) ?(k = 3) ?(stride = 1) ?(pad = 0) () =
  Swtensor.Conv_spec.create ~b ~ni ~no ~ro ~co ~kr:k ~kc:k ~stride ~pad ()

let conv_ref_suite =
  [
    Alcotest.test_case "1x1 kernel is a per-pixel matmul" `Quick (fun () ->
        let spec = conv_spec ~k:1 () in
        let input = T.random ~seed:1 (Swtensor.Conv_spec.input_shape spec) in
        let weight = T.random ~seed:2 (Swtensor.Conv_spec.weight_shape spec) in
        let out = Swtensor.Conv_ref.forward spec ~input ~weight in
        (* spot check one output element *)
        let acc = ref 0.0 in
        for cni = 0 to 2 do
          acc := !acc +. (T.get input [| 1; cni; 2; 3 |] *. T.get weight [| 2; cni; 0; 0 |])
        done;
        Alcotest.(check bool) "spot" true
          (Prelude.Floats.approx_equal !acc (T.get out [| 1; 2; 2; 3 |])));
    Alcotest.test_case "stride and padding geometry" `Quick (fun () ->
        let spec = conv_spec ~ro:4 ~co:4 ~stride:2 ~pad:1 () in
        Alcotest.(check int) "ri" ((3 * 2) + 3 - 2) (Swtensor.Conv_spec.ri spec);
        let input = T.random ~seed:1 (Swtensor.Conv_spec.input_shape spec) in
        let weight = T.random ~seed:2 (Swtensor.Conv_spec.weight_shape spec) in
        ignore (Swtensor.Conv_ref.forward spec ~input ~weight));
    Alcotest.test_case "flops" `Quick (fun () ->
        let spec = conv_spec () in
        Alcotest.(check (float 1.0))
          "2*b*no*ro*co*ni*k*k"
          (2.0 *. 2. *. 4. *. 5. *. 6. *. 3. *. 9.)
          (Swtensor.Conv_spec.flops spec));
  ]

let prop_im2col_equals_direct =
  QCheck2.Test.make ~name:"im2col reference equals direct convolution" ~count:25
    QCheck2.Gen.(tup4 (int_range 1 3) (int_range 1 4) (int_range 1 4) (int_range 2 6))
    (fun (b, ni, no, ro) ->
      let spec = conv_spec ~b ~ni ~no ~ro ~co:(ro + 1) () in
      let input = T.random ~seed:11 (Swtensor.Conv_spec.input_shape spec) in
      let weight = T.random ~seed:12 (Swtensor.Conv_spec.weight_shape spec) in
      T.approx_equal
        (Swtensor.Conv_ref.forward spec ~input ~weight)
        (Swtensor.Im2col_ref.forward spec ~input ~weight))

let prop_winograd_equals_direct =
  QCheck2.Test.make ~name:"winograd reference equals direct convolution" ~count:25
    QCheck2.Gen.(tup4 (int_range 1 3) (int_range 1 4) (int_range 1 4) (int_range 1 4))
    (fun (b, ni, no, half_ro) ->
      let ro = 2 * half_ro in
      let spec = conv_spec ~b ~ni ~no ~ro ~co:(ro + 2) () in
      let input = T.random ~seed:21 (Swtensor.Conv_spec.input_shape spec) in
      let weight = T.random ~seed:22 (Swtensor.Conv_spec.weight_shape spec) in
      T.approx_equal ~tol:1e-3
        (Swtensor.Conv_ref.forward spec ~input ~weight)
        (Swtensor.Winograd_ref.forward spec ~input ~weight))

let winograd_unit_suite =
  [
    Alcotest.test_case "constant filter on constant tile" `Quick (fun () ->
        (* all-ones 3x3 filter over an all-ones 4x4 tile: every output is 9 *)
        let d = Array.make 16 1.0 and g = Array.make 9 1.0 in
        let v = Swtensor.Winograd_ref.transform_input_tile d in
        let u = Swtensor.Winograd_ref.transform_filter g in
        let m = Array.init 16 (fun i -> v.(i) *. u.(i)) in
        let y = Swtensor.Winograd_ref.transform_output_tile m in
        Array.iter
          (fun x -> Alcotest.(check bool) "9" true (Prelude.Floats.approx_equal x 9.0))
          y);
    Alcotest.test_case "odd output extents are not applicable" `Quick (fun () ->
        let spec = conv_spec ~ro:5 ~co:6 () in
        Alcotest.(check bool) "wino ref handles odd via clipping" true
          (let input = T.random ~seed:1 (Swtensor.Conv_spec.input_shape spec) in
           let weight = T.random ~seed:2 (Swtensor.Conv_spec.weight_shape spec) in
           T.approx_equal ~tol:1e-3
             (Swtensor.Conv_ref.forward spec ~input ~weight)
             (Swtensor.Winograd_ref.forward spec ~input ~weight)));
  ]

let suite =
  shape_suite @ layout_suite @ tensor_suite @ gemm_ref_suite @ conv_ref_suite
  @ winograd_unit_suite
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_layout_bijective; prop_matmul_linear; prop_im2col_equals_direct; prop_winograd_equals_direct ]
