(* The generated C must be real, compilable C: every emitted kernel is
   syntax- and type-checked against runtime/swatop_runtime.h with the host
   C compiler, and the portable runtime itself must compile. Skipped when
   no C compiler is available. *)

open Swatop
open Swatop_ops

let runtime_dir =
  (* tests run from _build/default/test; the runtime sits in the source
     tree, which dune exposes two levels up *)
  let candidates = [ "../../../runtime"; "runtime"; "../runtime" ] in
  List.find_opt (fun d -> Sys.file_exists (Filename.concat d "swatop_runtime.h")) candidates

let gcc_available = Sys.command "gcc --version > /dev/null 2>&1" = 0

let syntax_check source =
  match runtime_dir with
  | None -> Alcotest.fail "runtime directory not found"
  | Some dir ->
    let file = Filename.temp_file "swatop_kernel" ".c" in
    let oc = open_out file in
    output_string oc source;
    close_out oc;
    let cmd =
      Printf.sprintf "gcc -std=c99 -Wall -Werror -fsyntax-only -I %s %s 2> %s.log"
        (Filename.quote dir) (Filename.quote file) (Filename.quote file)
    in
    let rc = Sys.command cmd in
    if rc <> 0 then begin
      let ic = open_in (file ^ ".log") in
      let log = really_input_string ic (min 2000 (in_channel_length ic)) in
      close_in ic;
      Alcotest.failf "gcc rejected generated code:\n%s" log
    end;
    Sys.remove file

let programs () =
  let gm = Gemm_cost.fit () in
  let gemm =
    let t = Matmul.problem ~m:200 ~n:120 ~k:96 in
    (Tuner.model_tune ~gemm_model:gm ~candidates:(Matmul.space t) ~build:(Matmul.build t) ())
      .best_program
  in
  let spec = Swtensor.Conv_spec.create ~b:4 ~ni:16 ~no:16 ~ro:8 ~co:8 ~kr:3 ~kc:3 () in
  let conv_of algo =
    (Option.get (Dispatch.tune ~top_k:1 ~gemm_model:gm algo spec)).Dispatch.c_program
  in
  [
    ("gemm", gemm);
    ("implicit", conv_of Dispatch.Implicit);
    ("winograd", conv_of Dispatch.Winograd);
    ("explicit", conv_of Dispatch.Explicit);
  ]

let suite =
  if not gcc_available then
    [ Alcotest.test_case "skipped (no gcc)" `Quick (fun () -> ()) ]
  else
    [
      Alcotest.test_case "portable runtime compiles" `Quick (fun () ->
          match runtime_dir with
          | None -> Alcotest.fail "runtime directory not found"
          | Some dir ->
            let obj = Filename.temp_file "swatop_runtime" ".o" in
            let cmd =
              Printf.sprintf "gcc -std=c99 -Wall -Werror -c %s -I %s -o %s"
                (Filename.quote (Filename.concat dir "swatop_runtime.c"))
                (Filename.quote dir) (Filename.quote obj)
            in
            Alcotest.(check int) "gcc" 0 (Sys.command cmd);
            Sys.remove obj);
      Alcotest.test_case "every operator's generated kernel passes gcc" `Quick (fun () ->
          List.iter (fun (_, p) -> syntax_check (C_emit.program_exn p)) (programs ()));
    ]
