lib/baselines/swdnn.mli: Swatop Swatop_ops Swtensor
