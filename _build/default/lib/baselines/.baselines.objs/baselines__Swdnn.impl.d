lib/baselines/swdnn.ml: Option Prelude Primitives Swatop_ops Swtensor
