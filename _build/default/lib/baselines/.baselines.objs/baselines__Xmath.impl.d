lib/baselines/xmath.ml: Primitives Swatop_ops
