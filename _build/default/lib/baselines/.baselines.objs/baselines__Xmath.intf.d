lib/baselines/xmath.mli: Swatop Swatop_ops
