(** Model of swDNN (Fang et al., IPDPS'17) — the best hand-optimized
    implicit-convolution library on the SW26010, reimplemented as a fixed
    schedule strategy executed by the same machinery as swATOP's candidates.

    Documented characteristics captured here:
    - a single pixel column per GEMM (the batch is the whole GEMM N
      dimension), so small batches starve the kernel — and batch sizes
      below 32 are not supported at all (Fig. 5's "no manually optimized
      version" for batch 1);
    - fixed channel blocking (32 input x 64 output channels per tile),
      designed for the large convolutional layers of classic CNNs; layers
      whose channel counts do not divide the blocks pay ragged-tile
      penalties, and the input-channel panels are shallower than the
      autotuner tends to pick;
    - hand-written double buffering (prefetching is on). *)

val supported : Swtensor.Conv_spec.t -> bool
(** [batch >= 32] and the operator's own applicability conditions. *)

val strategy : Swtensor.Conv_spec.t -> Swatop_ops.Conv_implicit.strategy option

val build : Swatop_ops.Conv_implicit.t -> Swatop.Ir.program option
(** The baseline program for a problem, or [None] when unsupported. *)
