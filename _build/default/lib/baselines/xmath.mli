(** Model of xMath (Jiang et al., ICPP'17) — the hand-optimized BLAS library
    of the Sunway TaihuLight, as the fixed schedules the paper compares
    swATOP against for GEMM, Winograd convolution and explicit convolution.

    Documented characteristics captured here:
    - GEMM blocking hand-tuned for large, square, well-aligned matrices
      (256-sized blocks, M-vectorized, double-buffered) — near-optimal on
      its home turf, increasingly mismatched off it;
    - unaligned shapes are handled by traditional zero-padding: whole
      operands are copied into freshly allocated padded buffers (Fig. 11's
      baseline);
    - in the manual Winograd and explicit convolutions, each xMath GEMM is
      a separate library call: double buffering lives inside the call, and
      nothing overlaps across phases or across the 16 Winograd products. *)

val gemm_strategy : Swatop_ops.Matmul.t -> Swatop_ops.Matmul.strategy

val gemm_build : Swatop_ops.Matmul.t -> Swatop.Ir.program

val winograd_strategy : Swatop_ops.Conv_winograd.t -> Swatop_ops.Conv_winograd.strategy
(** The hand-assembled Winograd convolution: straightforward transforms and
    16 separate xMath GEMM calls. *)

val winograd_build : Swatop_ops.Conv_winograd.t -> Swatop.Ir.program

val explicit_strategy : Swatop_ops.Conv_explicit.t -> Swatop_ops.Conv_explicit.strategy
(** Manual explicit convolution: plain im2col followed by one xMath GEMM. *)

val explicit_build : Swatop_ops.Conv_explicit.t -> Swatop.Ir.program
