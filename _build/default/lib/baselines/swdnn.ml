module Ci = Swatop_ops.Conv_implicit

let min_batch = 32

let supported (spec : Swtensor.Conv_spec.t) = Ci.applicable spec && spec.b >= min_batch

let strategy (spec : Swtensor.Conv_spec.t) =
  if not (supported spec) then None
  else
    (* Fixed 32x64 channel blocking with a batch-scaled pixel segment: the
       hand-written register blocking fuses output pixels into the GEMM N
       dimension only up to N ~ 512, regardless of how well that fits the
       layer at hand. *)
    let fc = Prelude.Ints.clamp ~lo:1 ~hi:spec.co (512 / spec.b) in
    Some
      {
        Ci.tile = Ci.Col_tile fc;
        fi = min spec.ni 32;
        fo = min spec.no 64;
        pixel_order = Ci.Ro_outer;
        reduce_order = Ci.Taps_then_ni;
        w_oi = true;
        vec = Primitives.Spm_gemm.Vec_n;
        boundary = Swatop_ops.Op_common.Switch;
        prefetch = true;
      }

let build t =
  Option.map (fun s -> Ci.build t s) (strategy (t : Ci.t).Ci.spec)
