module M = Swatop_ops.Matmul
module Cw = Swatop_ops.Conv_winograd
module Ce = Swatop_ops.Conv_explicit
module Oc = Swatop_ops.Op_common

let block = 256

let clamp_block dim = min block dim

let gemm_strategy (t : M.t) =
  let fm = clamp_block t.M.m and fn = clamp_block t.M.n and fk = clamp_block t.M.k in
  let aligned = t.M.m mod fm = 0 && t.M.n mod fn = 0 && t.M.k mod fk = 0 in
  {
    M.fm;
    fn;
    fk;
    n_outer = false;
    vec = Primitives.Spm_gemm.Vec_m;
    boundary = (if aligned then Oc.Switch else Oc.Pad_full);
    prefetch = true;
  }

let gemm_build t = M.build t (gemm_strategy t)

let winograd_strategy (t : Cw.t) =
  let spec = t.Cw.spec in
  let btiles = spec.b * (spec.ro / 2) * (spec.co / 2) in
  {
    (* Straightforward hand-written transforms: small fixed channel/tile-row
       blocks per DMA round trip (no per-layer tuning). *)
    Cw.ti = min spec.ni 8;
    tr = min (spec.ro / 2) 2;
    t_o = min spec.no 8;
    fm = clamp_block spec.no;
    fn = min (btiles / (t.Cw.spec).b) block;
    fk = clamp_block spec.ni;
    vec = Primitives.Spm_gemm.Vec_m;
    boundary = Oc.Switch;
    prefetch = false;
    gemm_prefetch = true;
    fuse_batch = false;
  }

let winograd_build t = Cw.build t (winograd_strategy t)

let explicit_strategy (t : Ce.t) =
  let spec = t.Ce.spec in
  let k_total = spec.ni * spec.kr * spec.kc in
  let n_total = spec.b * spec.ro * spec.co in
  {
    (* The hand-written im2col also streams channel slabs, but with a fixed
       small channel block and no pipelining across the phases. *)
    Ce.pi = min spec.ni 4;
    slab_im2col = true;
    fm = clamp_block spec.no;
    fn = min n_total block;
    fk = clamp_block k_total;
    n_outer = false;
    vec = Primitives.Spm_gemm.Vec_m;
    boundary = Oc.Switch;
    prefetch = false;
    gemm_prefetch = true;
  }

let explicit_build t = Ce.build t (explicit_strategy t)
