type algo = Implicit | Winograd | Explicit

let algo_name = function Implicit -> "implicit" | Winograd -> "winograd" | Explicit -> "explicit"

type choice = {
  c_algo : algo;
  c_desc : string;
  c_seconds : float;
  c_program : Swatop.Ir.program;
  c_space : int;
}

let applicable algo spec =
  match algo with
  | Implicit -> Conv_implicit.applicable spec
  | Winograd -> Conv_winograd.applicable spec
  | Explicit -> Conv_explicit.applicable spec

let tune ?(top_k = 4) ~gemm_model algo spec =
  if not (applicable algo spec) then None
  else
    let outcome_to_choice describe (o : _ Swatop.Tuner.outcome) =
      {
        c_algo = algo;
        c_desc = describe o.Swatop.Tuner.best;
        c_seconds = o.best_seconds;
        c_program = o.best_program;
        c_space = o.report.space_size;
      }
    in
    match algo with
    | Implicit ->
      let t = Conv_implicit.problem spec in
      Some
        (outcome_to_choice Conv_implicit.describe
           (Swatop.Tuner.model_tune ~top_k ~gemm_model ~candidates:(Conv_implicit.space t)
              ~build:(Conv_implicit.build t) ()))
    | Winograd ->
      let t = Conv_winograd.problem spec in
      Some
        (outcome_to_choice Conv_winograd.describe
           (Swatop.Tuner.model_tune ~top_k ~gemm_model ~candidates:(Conv_winograd.space t)
              ~build:(Conv_winograd.build t) ()))
    | Explicit ->
      let t = Conv_explicit.problem spec in
      Some
        (outcome_to_choice Conv_explicit.describe
           (Swatop.Tuner.model_tune ~top_k ~gemm_model ~candidates:(Conv_explicit.space t)
              ~build:(Conv_explicit.build t) ()))

let all ?top_k ~gemm_model spec =
  List.map (fun algo -> (algo, tune ?top_k ~gemm_model algo spec)) [ Implicit; Winograd; Explicit ]

let best ?top_k ~gemm_model spec =
  let choices = List.filter_map snd (all ?top_k ~gemm_model spec) in
  match choices with
  | [] -> invalid_arg "Dispatch.best: no tensorized algorithm applies"
  | first :: rest ->
    List.fold_left (fun acc c -> if c.c_seconds < acc.c_seconds then c else acc) first rest
