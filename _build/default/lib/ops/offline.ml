type compiled_layer = {
  cl_name : string;
  cl_spec : Swtensor.Conv_spec.t;
  cl_choice : Dispatch.choice;
  cl_source : string;
  cl_kernel_symbol : string;
}

let compile_layer ?top_k ~gemm_model ~name spec =
  let choice = Dispatch.best ?top_k ~gemm_model spec in
  let program = { choice.Dispatch.c_program with prog_name = name } in
  {
    cl_name = name;
    cl_spec = spec;
    cl_choice = choice;
    cl_source = Swatop.C_emit.program_exn program;
    cl_kernel_symbol = name ^ "_cpe_kernel";
  }

let compile_network ?top_k ~gemm_model ~batch (net : Workloads.Networks.network) =
  let layers =
    List.filter (fun (l : Workloads.Networks.layer) -> l.ni >= 16) net.layers
  in
  List.map
    (fun (l : Workloads.Networks.layer) ->
      compile_layer ?top_k ~gemm_model ~name:l.l_name (Workloads.Networks.conv_spec ~batch l))
    layers

let manifest layers =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# layer | algorithm | schedule | simulated ms | kernel symbol\n";
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "%s | %s | %s | %.4f | %s\n" l.cl_name
           (Dispatch.algo_name l.cl_choice.Dispatch.c_algo)
           l.cl_choice.Dispatch.c_desc
           (l.cl_choice.Dispatch.c_seconds *. 1e3)
           l.cl_kernel_symbol))
    layers;
  Buffer.contents buf

let write_directory ~dir layers =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun l ->
      let oc = open_out (Filename.concat dir (l.cl_name ^ ".c")) in
      output_string oc l.cl_source;
      close_out oc)
    layers;
  let oc = open_out (Filename.concat dir "manifest.txt") in
  output_string oc (manifest layers);
  close_out oc
