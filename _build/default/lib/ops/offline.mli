(** The offline-compiler usage mode (Sec. 4): "swATOP can be used as an
    offline compiler by pre-generating near-optimal executable code".

    Given the convolution layers of a network and a batch size, every layer
    is dispatched to its fastest tensorized algorithm and the winning
    schedule's C source is emitted, together with a manifest recording the
    chosen schedule and its predicted performance — the artifact a
    framework like swCaffe would link against. *)

type compiled_layer = {
  cl_name : string;
  cl_spec : Swtensor.Conv_spec.t;
  cl_choice : Dispatch.choice;
  cl_source : string;  (** the generated C translation unit *)
  cl_kernel_symbol : string;  (** entry point inside [cl_source] *)
}

val compile_layer :
  ?top_k:int ->
  gemm_model:Swatop.Gemm_cost.t ->
  name:string ->
  Swtensor.Conv_spec.t ->
  compiled_layer
(** Raises [Invalid_argument] when no tensorized algorithm applies. *)

val compile_network :
  ?top_k:int ->
  gemm_model:Swatop.Gemm_cost.t ->
  batch:int ->
  Workloads.Networks.network ->
  compiled_layer list
(** Every layer with at least 16 input channels (the others fall outside
    the tensorized operators' profitable domain, as in the paper's layer
    selection). Layers sharing a shape are compiled once. *)

val manifest : compiled_layer list -> string
(** Human- and machine-readable summary: one line per layer with the
    algorithm, schedule, simulated time and kernel symbol. *)

val write_directory : dir:string -> compiled_layer list -> unit
(** Write [<layer>.c] files plus [manifest.txt] into [dir] (created if
    missing). *)
