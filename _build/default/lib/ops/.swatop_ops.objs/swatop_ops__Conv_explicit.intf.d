lib/ops/conv_explicit.mli: Op_common Primitives Swatop Swtensor
