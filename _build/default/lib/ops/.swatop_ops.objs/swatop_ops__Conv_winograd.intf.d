lib/ops/conv_winograd.mli: Op_common Primitives Swatop Swtensor
