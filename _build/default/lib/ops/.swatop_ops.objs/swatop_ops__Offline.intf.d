lib/ops/offline.mli: Dispatch Swatop Swtensor Workloads
