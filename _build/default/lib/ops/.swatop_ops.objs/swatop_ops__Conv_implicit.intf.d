lib/ops/conv_implicit.mli: Op_common Primitives Swatop Swtensor
