lib/ops/offline.ml: Buffer Dispatch Filename List Printf Swatop Swtensor Sys Workloads
