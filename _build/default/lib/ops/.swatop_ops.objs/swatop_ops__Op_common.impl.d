lib/ops/op_common.ml: Array List Option Prelude Primitives Printf Stdlib Sw26010 Swatop Swtensor
