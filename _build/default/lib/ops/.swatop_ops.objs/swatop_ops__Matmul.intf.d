lib/ops/matmul.mli: Op_common Primitives Swatop Swtensor
