lib/ops/op_common.mli: Primitives Swatop Swtensor
