lib/ops/conv_explicit.ml: Array List Op_common Prelude Primitives Printf Stdlib Sw26010 Swatop Swtensor
