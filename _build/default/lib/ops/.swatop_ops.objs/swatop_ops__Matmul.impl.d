lib/ops/matmul.ml: Array List Op_common Prelude Primitives Printf Stdlib Sw26010 Swatop Swtensor
