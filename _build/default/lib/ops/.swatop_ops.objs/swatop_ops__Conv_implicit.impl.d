lib/ops/conv_implicit.ml: Array List Op_common Prelude Primitives Printf Stdlib Swatop Swtensor
