lib/ops/dispatch.mli: Swatop Swtensor
