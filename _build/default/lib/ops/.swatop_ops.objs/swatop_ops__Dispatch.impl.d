lib/ops/dispatch.ml: Conv_explicit Conv_implicit Conv_winograd List Swatop
