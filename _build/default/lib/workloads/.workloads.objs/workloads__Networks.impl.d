lib/workloads/networks.ml: List String Swtensor
