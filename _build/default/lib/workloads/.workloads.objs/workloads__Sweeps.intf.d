lib/workloads/sweeps.mli: Swtensor
