lib/workloads/sweeps.ml: List Prelude Swtensor
