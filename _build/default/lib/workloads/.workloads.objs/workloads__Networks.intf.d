lib/workloads/networks.mli: Swtensor
