(** The synthetic parameter sweeps of Sec. 5.1 (Listings 1 and 2).

    Listing 1 (convolution versatility): the paper's script draws
    [Ni, No] from [{64, 128, 256, 384, 512}] and a square output extent
    [Ro]; Table 1 reports 75 configurations per batch size. The script as
    printed (Ni >= No, Ro in {32, 64, 128, 256}) yields 60, so we
    reconstruct the 75 as all 25 channel pairs times [Ro in {32, 64, 128}]
    — same ranges, same spirit, exactly 75 cases (noted in
    EXPERIMENTS.md).

    Listing 2 (matrix multiplication): 343 aligned shapes from
    [{256, 512, 768, 1024, 2048, 4096, 8192}^3] and 216 unaligned shapes
    from [{200, 500, 1000, 2000, 4000, 8000}^3] — 559 in total, verbatim
    from the paper. *)

val listing1 : batch:int -> Swtensor.Conv_spec.t list
(** 75 conv configurations (3x3 kernels, stride 1). *)

val listing1_batches : int list
(** The three batch sizes of Table 1: [1; 32; 128]. *)

val listing2_aligned : (int * int * int) list
val listing2_unaligned : (int * int * int) list
val listing2 : (int * int * int) list
