let channels = [ 64; 128; 256; 384; 512 ]
let outputs = [ 32; 64; 128 ]

let listing1 ~batch =
  List.concat_map
    (fun ni ->
      List.concat_map
        (fun no ->
          List.map
            (fun ro ->
              Swtensor.Conv_spec.create ~b:batch ~ni ~no ~ro ~co:ro ~kr:3 ~kc:3 ())
            outputs)
        channels)
    channels

let listing1_batches = [ 1; 32; 128 ]

let listing2_aligned =
  let dims = [ 256; 512; 768; 1024; 2048; 4096; 8192 ] in
  Prelude.Lists.cartesian3 dims dims dims

let listing2_unaligned =
  let dims = [ 200; 500; 1000; 2000; 4000; 8000 ] in
  Prelude.Lists.cartesian3 dims dims dims

let listing2 = listing2_aligned @ listing2_unaligned
