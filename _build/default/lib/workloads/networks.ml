type layer = { l_name : string; ni : int; no : int; out : int; k : int; repeat : int }
type network = { net_name : string; layers : layer list }

let layer ?(repeat = 1) ?(k = 3) l_name ni no out = { l_name; ni; no; out; k; repeat }

let vgg16 =
  {
    net_name = "VGG16";
    layers =
      [
        layer "conv1_1" 3 64 224;
        layer "conv1_2" 64 64 224;
        layer "conv2_1" 64 128 112;
        layer "conv2_2" 128 128 112;
        layer "conv3_1" 128 256 56;
        layer "conv3_2" 256 256 56 ~repeat:2;
        layer "conv4_1" 256 512 28;
        layer "conv4_2" 512 512 28 ~repeat:2;
        layer "conv5_x" 512 512 14 ~repeat:3;
      ];
  }

let resnet18 =
  {
    net_name = "ResNet";
    layers =
      [
        layer "conv1" 3 64 112 ~k:7;
        layer "conv2_x" 64 64 56 ~repeat:4;
        layer "conv3_1" 64 128 28;
        layer "conv3_x" 128 128 28 ~repeat:3;
        layer "conv4_1" 128 256 14;
        layer "conv4_x" 256 256 14 ~repeat:3;
        layer "conv5_1" 256 512 7;
        layer "conv5_x" 512 512 7 ~repeat:3;
      ];
  }

let yolov2 =
  {
    net_name = "Yolo";
    layers =
      [
        layer "conv1" 3 32 208;
        layer "conv2" 32 64 104;
        layer "conv3" 64 128 52;
        layer "conv4" 128 64 52 ~k:1;
        layer "conv5" 64 128 52;
        layer "conv6" 128 256 26;
        layer "conv7" 256 128 26 ~k:1;
        layer "conv8" 128 256 26;
        layer "conv9" 256 512 13;
        layer "conv10" 512 256 13 ~k:1;
        layer "conv11" 256 512 13;
        layer "conv12" 512 1024 13 ~repeat:2;
      ];
  }

let all = [ vgg16; resnet18; yolov2 ]

let conv_spec ~batch l =
  Swtensor.Conv_spec.create ~b:batch ~ni:l.ni ~no:l.no ~ro:l.out ~co:l.out ~kr:l.k ~kc:l.k ()

let not_first net l =
  match net.layers with [] -> true | first :: _ -> not (String.equal first.l_name l.l_name)

let implicit_layers net = List.filter (fun l -> not_first net l && l.ni >= 16) net.layers

let winograd_layers net =
  List.filter (fun l -> l.k = 3 && l.out mod 2 = 0 && l.ni >= 16) net.layers

let explicit_layers net = List.filter (fun l -> not_first net l && l.ni >= 16) net.layers
