(** Convolution-layer tables of the three CNNs evaluated in Sec. 5.1 —
    VGG16, a ResNet, and YOLO — and their mapping to benchmark problems.

    Layers are recorded by output geometry and channel counts; square
    spatial extents and square kernels throughout. Stride-2 layers are
    represented by equivalent stride-1 problems at their output resolution:
    the implicit/Winograd/explicit GEMM dimensions depend only on output
    pixels and channels, so the compute structure — which is what the
    schedules tune — is preserved exactly; only the input halo volume
    differs. The padded 3x3 layers' padding is likewise folded into the
    effective input extent. Both substitutions are documented in
    DESIGN.md. *)

type layer = {
  l_name : string;
  ni : int;  (** input channels *)
  no : int;  (** output channels *)
  out : int;  (** output rows = cols *)
  k : int;  (** kernel rows = cols *)
  repeat : int;  (** number of identical layers in the network *)
}

type network = { net_name : string; layers : layer list }

val vgg16 : network
val resnet18 : network
val yolov2 : network
val all : network list

val conv_spec : batch:int -> layer -> Swtensor.Conv_spec.t
(** The stride-1, pad-0 problem for a layer at a given batch size. *)

val implicit_layers : network -> layer list
(** Layers the implicit algorithm is benchmarked on: the paper excludes
    each network's first layer (input channels too small). *)

val winograd_layers : network -> layer list
(** 3x3 layers with even output extents and at least 16 input channels. *)

val explicit_layers : network -> layer list
(** Same exclusion rule as [implicit_layers]. *)
