(** Reference direct convolution (Alg. 1 of the paper): the 7-deep MAC loop
    nest, supporting stride and zero padding. Numeric oracle for all three
    tensorized convolution algorithms. *)

val forward : Conv_spec.t -> input:Tensor.t -> weight:Tensor.t -> Tensor.t
(** [input] has shape [(b, ni, ri, ci)], [weight] [(no, ni, kr, kc)]; the
    result has shape [(b, no, ro, co)]. *)
