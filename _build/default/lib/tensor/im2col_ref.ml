let expand spec ~input =
  let { Conv_spec.b; ni; ro; co; kr; kc; stride; pad; _ } = spec in
  let ri = Conv_spec.ri spec and ci = Conv_spec.ci spec in
  let rows = ni * kr * kc and cols = b * ro * co in
  let out = Tensor.create (Shape.of_list [ rows; cols ]) in
  for cb = 0 to b - 1 do
    for cro = 0 to ro - 1 do
      for cco = 0 to co - 1 do
        let col = (((cb * ro) + cro) * co) + cco in
        for cni = 0 to ni - 1 do
          for ckr = 0 to kr - 1 do
            for ckc = 0 to kc - 1 do
              let row = (((cni * kr) + ckr) * kc) + ckc in
              let r = (cro * stride) + ckr - pad and c = (cco * stride) + ckc - pad in
              let v =
                if r >= 0 && r < ri && c >= 0 && c < ci then Tensor.get input [| cb; cni; r; c |]
                else 0.0
              in
              Tensor.set out [| row; col |] v
            done
          done
        done
      done
    done
  done;
  out

let weight_matrix spec ~weight =
  let { Conv_spec.no; ni; kr; kc; _ } = spec in
  Tensor.of_array (Shape.of_list [ no; ni * kr * kc ]) (Tensor.data weight)

let forward spec ~input ~weight =
  let columns = expand spec ~input in
  let w = weight_matrix spec ~weight in
  let product = Gemm_ref.matmul w columns in
  (* product is (no, b*ro*co); transpose the batch axis out to (b, no, ro, co). *)
  let { Conv_spec.b; no; ro; co; _ } = spec in
  let out = Tensor.create (Conv_spec.output_shape spec) in
  for cb = 0 to b - 1 do
    for cno = 0 to no - 1 do
      for cro = 0 to ro - 1 do
        for cco = 0 to co - 1 do
          let col = (((cb * ro) + cro) * co) + cco in
          Tensor.set out [| cb; cno; cro; cco |] (Tensor.get product [| cno; col |])
        done
      done
    done
  done;
  out
