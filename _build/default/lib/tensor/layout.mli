(** Data-layout descriptors: a layout is a permutation of a tensor's logical
    axes giving their order in memory, outermost first.

    Layout is a first-class schedule decision in swATOP (Sec. 4.3.2): it
    determines the contiguous-block size and stride of every DMA transfer and
    the leading dimension handed to GEMM primitives. *)

type t

val create : perm:int array -> t
(** [perm.(k)] is the logical axis stored at memory position [k] (position 0
    outermost). Must be a permutation of [0 .. rank-1]. *)

val identity : int -> t
val rank : t -> int
val perm : t -> int array

val physical_shape : t -> Shape.t -> Shape.t
(** Extents reordered into memory order. *)

val strides : t -> Shape.t -> int array
(** Stride (in elements) of each *logical* axis under this layout. *)

val offset : t -> Shape.t -> int array -> int
(** Linear element offset of a logical multi-index. *)

val innermost_axis : t -> int
(** The logical axis that is contiguous in memory. *)

val axis_position : t -> int -> int
(** Memory position of a logical axis (0 = outermost). *)

val to_string : axis_names:string array -> t -> string
(** e.g. [to_string ~axis_names:[|"N";"C";"H";"W"|]] prints ["CHWN"]. *)

val equal : t -> t -> bool
val all : int -> t list
(** Every layout of the given rank. Intended for small ranks. *)
