(** Reference matrix multiplication — the numeric oracle for every GEMM
    primitive and tensorized operator in the repository. *)

val gemm :
  ?alpha:float ->
  ?beta:float ->
  m:int ->
  n:int ->
  k:int ->
  a:float array ->
  lda:int ->
  b:float array ->
  ldb:int ->
  c:float array ->
  ldc:int ->
  unit ->
  unit
(** [C <- alpha * A * B + beta * C] on row-major buffers: [A] is m-by-k with
    leading dimension [lda], [B] k-by-n with [ldb], [C] m-by-n with [ldc]. *)

val matmul : Tensor.t -> Tensor.t -> Tensor.t
(** Tensor-level product of a (m, k) and a (k, n) tensor. *)
