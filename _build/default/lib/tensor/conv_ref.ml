let forward spec ~input ~weight =
  if not (Shape.equal (Tensor.shape input) (Conv_spec.input_shape spec)) then
    invalid_arg "Conv_ref.forward: input shape mismatch";
  if not (Shape.equal (Tensor.shape weight) (Conv_spec.weight_shape spec)) then
    invalid_arg "Conv_ref.forward: weight shape mismatch";
  let { Conv_spec.b; ni; no; ro; co; kr; kc; stride; pad } = spec in
  let ri = Conv_spec.ri spec and ci = Conv_spec.ci spec in
  let output = Tensor.create (Conv_spec.output_shape spec) in
  for cb = 0 to b - 1 do
    for cno = 0 to no - 1 do
      for cro = 0 to ro - 1 do
        for cco = 0 to co - 1 do
          let acc = ref 0.0 in
          for cni = 0 to ni - 1 do
            for ckr = 0 to kr - 1 do
              for ckc = 0 to kc - 1 do
                let r = (cro * stride) + ckr - pad and c = (cco * stride) + ckc - pad in
                if r >= 0 && r < ri && c >= 0 && c < ci then
                  acc :=
                    !acc
                    +. Tensor.get input [| cb; cni; r; c |]
                       *. Tensor.get weight [| cno; cni; ckr; ckc |]
              done
            done
          done;
          Tensor.set output [| cb; cno; cro; cco |] !acc
        done
      done
    done
  done;
  output
