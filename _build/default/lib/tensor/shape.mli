(** Tensor shape arithmetic. A shape lists dimension extents outermost
    first. *)

type t = int array

val of_list : int list -> t
val numel : t -> int
val rank : t -> int

val strides : t -> int array
(** Row-major strides: the innermost dimension has stride 1. *)

val linear_index : t -> int array -> int
(** Flatten a multi-index under row-major order; bounds-checked. *)

val unflatten : t -> int -> int array
(** Inverse of [linear_index]. *)

val equal : t -> t -> bool
val to_string : t -> string

val conv_output : input:int -> kernel:int -> stride:int -> pad:int -> int
(** Output extent of a convolution along one axis:
    [(input + 2*pad - kernel) / stride + 1]. *)
