type t = { shape : Shape.t; data : float array }

let create shape = { shape = Array.copy shape; data = Array.make (Shape.numel shape) 0.0 }

let of_fn shape f =
  let t = create shape in
  let n = Shape.numel shape in
  for lin = 0 to n - 1 do
    t.data.(lin) <- f (Shape.unflatten shape lin)
  done;
  t

let of_array shape data =
  if Array.length data <> Shape.numel shape then invalid_arg "Tensor.of_array: size mismatch";
  { shape = Array.copy shape; data = Array.copy data }

let random ?(seed = 42) shape =
  let state = Random.State.make [| seed; Shape.numel shape |] in
  let t = create shape in
  for lin = 0 to Array.length t.data - 1 do
    t.data.(lin) <- Random.State.float state 2.0 -. 1.0
  done;
  t

let shape t = Array.copy t.shape
let numel t = Array.length t.data
let get t idx = t.data.(Shape.linear_index t.shape idx)
let set t idx v = t.data.(Shape.linear_index t.shape idx) <- v
let get_lin t lin = t.data.(lin)
let set_lin t lin v = t.data.(lin) <- v
let data t = t.data
let copy t = { shape = Array.copy t.shape; data = Array.copy t.data }
let fill t v = Array.fill t.data 0 (Array.length t.data) v

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Tensor.map2: shape mismatch";
  { shape = Array.copy a.shape; data = Array.map2 f a.data b.data }

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Tensor.max_abs_diff: shape mismatch";
  let worst = ref 0.0 in
  for i = 0 to Array.length a.data - 1 do
    worst := Float.max !worst (Float.abs (a.data.(i) -. b.data.(i)))
  done;
  !worst

let approx_equal ?(tol = 1e-4) a b =
  let magnitude = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 1.0 a.data in
  max_abs_diff a b <= (tol *. magnitude)

let relayout ~src_layout ~dst_layout t =
  let out = create t.shape in
  let n = numel t in
  for logical = 0 to n - 1 do
    let idx = Shape.unflatten t.shape logical in
    let src = Layout.offset src_layout t.shape idx in
    let dst = Layout.offset dst_layout t.shape idx in
    out.data.(dst) <- t.data.(src)
  done;
  out

let pp fmt t =
  Format.fprintf fmt "tensor%s" (Shape.to_string t.shape);
  if numel t <= 16 then begin
    Format.fprintf fmt " [";
    Array.iteri (fun i v -> Format.fprintf fmt "%s%.4g" (if i = 0 then "" else "; ") v) t.data;
    Format.fprintf fmt "]"
  end
