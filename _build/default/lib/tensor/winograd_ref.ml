let tile_m = 2
let tile_a = 4
let num_products = tile_a * tile_a

let applicable (spec : Conv_spec.t) = spec.stride = 1 && spec.kr = 3 && spec.kc = 3
let tiles_along extent = Prelude.Ints.ceil_div extent tile_m

(* Transform matrices of F(2x2, 3x3), row-major. *)
let bt = [| 1.; 0.; -1.; 0.; 0.; 1.; 1.; 0.; 0.; -1.; 1.; 0.; 0.; 1.; 0.; -1. |] (* 4x4 *)
let g = [| 1.; 0.; 0.; 0.5; 0.5; 0.5; 0.5; -0.5; 0.5; 0.; 0.; 1. |] (* 4x3 *)
let at = [| 1.; 1.; 1.; 0.; 0.; 1.; -1.; -1. |] (* 2x4 *)

(* out(m,n) = x(m,k) * y(k,n), all row-major flat arrays. *)
let matmul ~m ~n ~k x y =
  let out = Array.make (m * n) 0.0 in
  Gemm_ref.gemm ~beta:0.0 ~m ~n ~k ~a:x ~lda:k ~b:y ~ldb:n ~c:out ~ldc:n ();
  out

let transpose ~rows ~cols x = Array.init (rows * cols) (fun i -> x.((i mod rows * cols) + (i / rows)))

let transform_input_tile d =
  if Array.length d <> 16 then invalid_arg "Winograd_ref.transform_input_tile: need 4x4";
  let btd = matmul ~m:4 ~n:4 ~k:4 bt d in
  matmul ~m:4 ~n:4 ~k:4 btd (transpose ~rows:4 ~cols:4 bt)

let transform_filter w =
  if Array.length w <> 9 then invalid_arg "Winograd_ref.transform_filter: need 3x3";
  let gw = matmul ~m:4 ~n:3 ~k:3 g w in
  matmul ~m:4 ~n:4 ~k:3 gw (transpose ~rows:4 ~cols:3 g)

let transform_output_tile m =
  if Array.length m <> 16 then invalid_arg "Winograd_ref.transform_output_tile: need 4x4";
  let atm = matmul ~m:2 ~n:4 ~k:4 at m in
  matmul ~m:2 ~n:2 ~k:4 atm (transpose ~rows:2 ~cols:4 at)

let gather_tile spec ~input ~cb ~cni ~row0 ~col0 =
  let ri = Conv_spec.ri spec and ci = Conv_spec.ci spec in
  let tile = Array.make (tile_a * tile_a) 0.0 in
  for r = 0 to tile_a - 1 do
    for c = 0 to tile_a - 1 do
      let ir = row0 + r and ic = col0 + c in
      if ir >= 0 && ir < ri && ic >= 0 && ic < ci then
        tile.((r * tile_a) + c) <- Tensor.get input [| cb; cni; ir; ic |]
    done
  done;
  tile

let input_matrix (spec : Conv_spec.t) ~input =
  if not (applicable spec) then invalid_arg "Winograd_ref.input_matrix: inapplicable spec";
  let tr = tiles_along spec.ro and tc = tiles_along spec.co in
  let cols = spec.b * tr * tc in
  let v = Tensor.create (Shape.of_list [ num_products; spec.ni; cols ]) in
  for cb = 0 to spec.b - 1 do
    for ct_r = 0 to tr - 1 do
      for ct_c = 0 to tc - 1 do
        let col = (((cb * tr) + ct_r) * tc) + ct_c in
        let row0 = (ct_r * tile_m) - spec.pad and col0 = (ct_c * tile_m) - spec.pad in
        for cni = 0 to spec.ni - 1 do
          let tile = gather_tile spec ~input ~cb ~cni ~row0 ~col0 in
          let t = transform_input_tile tile in
          for xi = 0 to num_products - 1 do
            Tensor.set v [| xi; cni; col |] t.(xi)
          done
        done
      done
    done
  done;
  v

let filter_matrix (spec : Conv_spec.t) ~weight =
  if not (applicable spec) then invalid_arg "Winograd_ref.filter_matrix: inapplicable spec";
  let u = Tensor.create (Shape.of_list [ num_products; spec.no; spec.ni ]) in
  for cno = 0 to spec.no - 1 do
    for cni = 0 to spec.ni - 1 do
      let w = Array.init 9 (fun i -> Tensor.get weight [| cno; cni; i / 3; i mod 3 |]) in
      let t = transform_filter w in
      for xi = 0 to num_products - 1 do
        Tensor.set u [| xi; cno; cni |] t.(xi)
      done
    done
  done;
  u

let forward (spec : Conv_spec.t) ~input ~weight =
  if not (applicable spec) then invalid_arg "Winograd_ref.forward: inapplicable spec";
  let v = input_matrix spec ~input and u = filter_matrix spec ~weight in
  let tr = tiles_along spec.ro and tc = tiles_along spec.co in
  let cols = spec.b * tr * tc in
  (* 16 batched GEMMs: M[xi] = U[xi] (no x ni)  *  V[xi] (ni x cols). *)
  let products =
    Array.init num_products (fun xi ->
        let a = Array.init (spec.no * spec.ni) (fun i -> Tensor.get u [| xi; i / spec.ni; i mod spec.ni |]) in
        let b = Array.init (spec.ni * cols) (fun i -> Tensor.get v [| xi; i / cols; i mod cols |]) in
        matmul ~m:spec.no ~n:cols ~k:spec.ni a b)
  in
  let out = Tensor.create (Conv_spec.output_shape spec) in
  for cb = 0 to spec.b - 1 do
    for ct_r = 0 to tr - 1 do
      for ct_c = 0 to tc - 1 do
        let col = (((cb * tr) + ct_r) * tc) + ct_c in
        for cno = 0 to spec.no - 1 do
          let m = Array.init num_products (fun xi -> products.(xi).((cno * cols) + col)) in
          let y = transform_output_tile m in
          for r = 0 to tile_m - 1 do
            for c = 0 to tile_m - 1 do
              let oro = (ct_r * tile_m) + r and oco = (ct_c * tile_m) + c in
              if oro < spec.ro && oco < spec.co then
                Tensor.set out [| cb; cno; oro; oco |] y.((r * tile_m) + c)
            done
          done
        done
      done
    done
  done;
  out
