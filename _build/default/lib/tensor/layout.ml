type t = { perm : int array }

let is_permutation p =
  let n = Array.length p in
  let seen = Array.make n false in
  Array.for_all
    (fun x ->
      if x < 0 || x >= n || seen.(x) then false
      else begin
        seen.(x) <- true;
        true
      end)
    p

let create ~perm =
  if not (is_permutation perm) then invalid_arg "Layout.create: not a permutation";
  { perm = Array.copy perm }

let identity n = { perm = Array.init n (fun i -> i) }
let rank t = Array.length t.perm
let perm t = Array.copy t.perm

let physical_shape t shape =
  if Array.length shape <> rank t then invalid_arg "Layout.physical_shape: rank mismatch";
  Array.map (fun axis -> shape.(axis)) t.perm

let strides t shape =
  let phys = physical_shape t shape in
  let phys_strides = Shape.strides phys in
  let logical = Array.make (rank t) 0 in
  Array.iteri (fun pos axis -> logical.(axis) <- phys_strides.(pos)) t.perm;
  logical

let offset t shape idx =
  let st = strides t shape in
  if Array.length idx <> Array.length st then invalid_arg "Layout.offset: rank mismatch";
  let acc = ref 0 in
  for i = 0 to Array.length idx - 1 do
    if idx.(i) < 0 || idx.(i) >= shape.(i) then invalid_arg "Layout.offset: out of bounds";
    acc := !acc + (idx.(i) * st.(i))
  done;
  !acc

let innermost_axis t = t.perm.(rank t - 1)

let axis_position t axis =
  let rec find pos = if t.perm.(pos) = axis then pos else find (pos + 1) in
  find 0

let to_string ~axis_names t =
  String.concat "" (Array.to_list (Array.map (fun axis -> axis_names.(axis)) t.perm))

let equal a b = a.perm = b.perm

let all n =
  let axes = Prelude.Lists.range 0 n in
  List.map (fun p -> { perm = Array.of_list p }) (Prelude.Lists.permutations axes)
