type t = int array

let of_list l =
  let s = Array.of_list l in
  Array.iter (fun d -> if d <= 0 then invalid_arg "Shape.of_list: non-positive extent") s;
  s

let numel s = Array.fold_left ( * ) 1 s
let rank = Array.length

let strides s =
  let n = Array.length s in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * s.(i + 1)
  done;
  st

let linear_index s idx =
  if Array.length idx <> Array.length s then invalid_arg "Shape.linear_index: rank mismatch";
  let st = strides s in
  let acc = ref 0 in
  for i = 0 to Array.length s - 1 do
    if idx.(i) < 0 || idx.(i) >= s.(i) then invalid_arg "Shape.linear_index: out of bounds";
    acc := !acc + (idx.(i) * st.(i))
  done;
  !acc

let unflatten s lin =
  if lin < 0 || lin >= numel s then invalid_arg "Shape.unflatten: out of bounds";
  let st = strides s in
  Array.mapi (fun i stride -> lin / stride mod s.(i)) st

let equal a b = a = b
let to_string s = "[" ^ String.concat "x" (Array.to_list (Array.map string_of_int s)) ^ "]"

let conv_output ~input ~kernel ~stride ~pad =
  if stride <= 0 then invalid_arg "Shape.conv_output: stride";
  let span = input + (2 * pad) - kernel in
  if span < 0 then invalid_arg "Shape.conv_output: kernel larger than padded input";
  (span / stride) + 1
