lib/tensor/tensor.mli: Format Layout Shape
