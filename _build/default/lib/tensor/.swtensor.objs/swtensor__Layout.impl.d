lib/tensor/layout.ml: Array List Prelude Shape String
