lib/tensor/im2col_ref.ml: Conv_spec Gemm_ref Shape Tensor
