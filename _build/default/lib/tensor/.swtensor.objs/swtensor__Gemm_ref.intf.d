lib/tensor/gemm_ref.mli: Tensor
