lib/tensor/winograd_ref.mli: Conv_spec Tensor
