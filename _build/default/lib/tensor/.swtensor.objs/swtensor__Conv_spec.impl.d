lib/tensor/conv_spec.ml: List Printf Shape
