lib/tensor/conv_ref.mli: Conv_spec Tensor
