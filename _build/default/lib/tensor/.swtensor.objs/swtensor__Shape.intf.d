lib/tensor/shape.mli:
