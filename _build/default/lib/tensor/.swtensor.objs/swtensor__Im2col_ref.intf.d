lib/tensor/im2col_ref.mli: Conv_spec Tensor
