lib/tensor/gemm_ref.ml: Array Shape Tensor
