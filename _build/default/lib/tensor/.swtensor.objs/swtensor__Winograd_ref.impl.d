lib/tensor/winograd_ref.ml: Array Conv_spec Gemm_ref Prelude Shape Tensor
