lib/tensor/layout.mli: Shape
