lib/tensor/conv_ref.ml: Conv_spec Shape Tensor
