lib/tensor/tensor.ml: Array Float Format Layout Random Shape
