(** Convolution problem description shared by reference implementations,
    tensorized operators and workload tables.

    Axis naming follows the paper: batch [b], input channels [ni], output
    channels [no], output rows/cols [ro]/[co], kernel rows/cols [kr]/[kc].
    Input extents are derived: [ri = (ro-1)*stride + kr - 2*pad]. *)

type t = private {
  b : int;
  ni : int;
  no : int;
  ro : int;
  co : int;
  kr : int;
  kc : int;
  stride : int;
  pad : int;
}

val create :
  ?stride:int -> ?pad:int -> b:int -> ni:int -> no:int -> ro:int -> co:int -> kr:int -> kc:int -> unit -> t

val ri : t -> int
val ci : t -> int

val input_shape : t -> Shape.t
(** Logical [(b, ni, ri, ci)]. *)

val weight_shape : t -> Shape.t
(** Logical [(no, ni, kr, kc)]. *)

val output_shape : t -> Shape.t
(** Logical [(b, no, ro, co)]. *)

val flops : t -> float
(** Multiply-add FLOPs of a direct convolution (2 per MAC) — the paper's
    denominator for all efficiency numbers, including Winograd's. *)

val to_string : t -> string
