let gemm ?(alpha = 1.0) ?(beta = 1.0) ~m ~n ~k ~a ~lda ~b ~ldb ~c ~ldc () =
  if m < 0 || n < 0 || k < 0 then invalid_arg "Gemm_ref.gemm: negative dimension";
  if lda < k || ldb < n || ldc < n then invalid_arg "Gemm_ref.gemm: leading dimension too small";
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for p = 0 to k - 1 do
        acc := !acc +. (a.((i * lda) + p) *. b.((p * ldb) + j))
      done;
      let idx = (i * ldc) + j in
      c.(idx) <- (alpha *. !acc) +. (beta *. c.(idx))
    done
  done

let matmul x y =
  match (Tensor.shape x, Tensor.shape y) with
  | [| m; k |], [| k'; n |] when k = k' ->
    let out = Tensor.create (Shape.of_list [ m; n ]) in
    gemm ~beta:0.0 ~m ~n ~k ~a:(Tensor.data x) ~lda:k ~b:(Tensor.data y) ~ldb:n
      ~c:(Tensor.data out) ~ldc:n ();
    out
  | _ -> invalid_arg "Gemm_ref.matmul: incompatible shapes"
