(** Reference explicit-GEMM convolution: the im2col expansion plus one matrix
    multiplication (Fig. 2, left). *)

val expand : Conv_spec.t -> input:Tensor.t -> Tensor.t
(** Column matrix of shape [(ni*kr*kc, b*ro*co)]: column [(cb*ro + cro)*co +
    cco] holds the receptive field of output pixel [(cb, cro, cco)], rows
    ordered [(cni, ckr, ckc)]. Out-of-range (padded) positions are zero. *)

val weight_matrix : Conv_spec.t -> weight:Tensor.t -> Tensor.t
(** Weight reshaped to [(no, ni*kr*kc)]. *)

val forward : Conv_spec.t -> input:Tensor.t -> weight:Tensor.t -> Tensor.t
(** Convolution by [weight_matrix * expand], reshaped to [(b, no, ro, co)]. *)
