(** Dense single-precision-semantics tensors stored row-major.

    Values are held as OCaml floats; the simulator's numeric fidelity target
    is algorithmic equivalence, not bit-level float32 rounding, so all
    comparisons in tests use relative tolerances. *)

type t

val create : Shape.t -> t
(** Zero-filled. *)

val of_fn : Shape.t -> (int array -> float) -> t
val of_array : Shape.t -> float array -> t

val random : ?seed:int -> Shape.t -> t
(** Deterministic pseudo-random values in [-1, 1). *)

val shape : t -> Shape.t
val numel : t -> int

val get : t -> int array -> float
val set : t -> int array -> float -> unit

val get_lin : t -> int -> float
val set_lin : t -> int -> float -> unit

val data : t -> float array
(** The backing store (shared, not copied). *)

val copy : t -> t
val fill : t -> float -> unit

val map2 : (float -> float -> float) -> t -> t -> t

val max_abs_diff : t -> t -> float
val approx_equal : ?tol:float -> t -> t -> bool
(** Relative to the largest magnitude present; [tol] defaults to [1e-4]. *)

val relayout : src_layout:Layout.t -> dst_layout:Layout.t -> t -> t
(** Reorder the physical storage of a tensor whose logical shape stays
    fixed. [src_layout]/[dst_layout] describe how the flat data maps to the
    logical index space before and after. *)

val pp : Format.formatter -> t -> unit
