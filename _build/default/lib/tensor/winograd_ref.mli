(** Reference Winograd convolution F(2x2, 3x3) (Lavin & Gray), the minimal
    filtering algorithm used by the paper's Winograd CONV (Fig. 2, middle):
    4x4 input tiles, 3x3 filters, 2x2 output tiles, and 16 element-wise
    products that batch into 16 GEMMs of shape [no x ni x (b*tiles)].

    Requires [stride = 1] and [kr = kc = 3]; padding is supported through
    zero-extension during the tile gather. *)

val tile_m : int
(** Output tile extent (2). *)

val tile_a : int
(** Input tile extent (4); [tile_a = tile_m + 3 - 1]. *)

val num_products : int
(** [tile_a * tile_a = 16] element-wise GEMMs. *)

val applicable : Conv_spec.t -> bool

val tiles_along : int -> int
(** Number of output tiles covering an extent. *)

val transform_input_tile : float array -> float array
(** [B^T d B] for a row-major 4x4 tile; returns a fresh 16-element array. *)

val transform_filter : float array -> float array
(** [G g G^T] for a row-major 3x3 filter; returns a 16-element array. *)

val transform_output_tile : float array -> float array
(** [A^T m A] for a row-major 4x4 product tile; returns a 4-element (2x2)
    array. *)

val input_matrix : Conv_spec.t -> input:Tensor.t -> Tensor.t
(** Shape [(16, ni, b*tiles)]: V in Lavin-Gray notation. *)

val filter_matrix : Conv_spec.t -> weight:Tensor.t -> Tensor.t
(** Shape [(16, no, ni)]: U in Lavin-Gray notation. *)

val forward : Conv_spec.t -> input:Tensor.t -> weight:Tensor.t -> Tensor.t
(** Full Winograd convolution; matches [Conv_ref.forward] on applicable
    specs. *)
