type t = {
  b : int;
  ni : int;
  no : int;
  ro : int;
  co : int;
  kr : int;
  kc : int;
  stride : int;
  pad : int;
}

let create ?(stride = 1) ?(pad = 0) ~b ~ni ~no ~ro ~co ~kr ~kc () =
  let positive = [ b; ni; no; ro; co; kr; kc; stride ] in
  if List.exists (fun d -> d <= 0) positive || pad < 0 then
    invalid_arg "Conv_spec.create: non-positive dimension";
  let spec = { b; ni; no; ro; co; kr; kc; stride; pad } in
  (* The derived input extent must be positive once padding is removed. *)
  if ((spec.ro - 1) * stride) + kr - (2 * pad) <= 0 then
    invalid_arg "Conv_spec.create: padding exceeds input extent";
  if ((spec.co - 1) * stride) + kc - (2 * pad) <= 0 then
    invalid_arg "Conv_spec.create: padding exceeds input extent";
  spec

let ri t = ((t.ro - 1) * t.stride) + t.kr - (2 * t.pad)
let ci t = ((t.co - 1) * t.stride) + t.kc - (2 * t.pad)
let input_shape t = Shape.of_list [ t.b; t.ni; ri t; ci t ]
let weight_shape t = Shape.of_list [ t.no; t.ni; t.kr; t.kc ]
let output_shape t = Shape.of_list [ t.b; t.no; t.ro; t.co ]

let flops t =
  2.0 *. float_of_int t.b *. float_of_int t.no *. float_of_int t.ro *. float_of_int t.co
  *. float_of_int t.ni *. float_of_int t.kr *. float_of_int t.kc

let to_string t =
  Printf.sprintf "conv(b=%d ni=%d no=%d ro=%d co=%d k=%dx%d s=%d p=%d)" t.b t.ni t.no t.ro t.co
    t.kr t.kc t.stride t.pad
