(** The autotuner's GEMM-primitive cost model (Eq. 2 of the paper).

    The execution time of one [spm_gemm] call is, for a fixed kernel variant,
    close to linear in its dimension parameters. Following Sec. 4.6, the
    model is *fitted* — by least squares over timings of sample calls — not
    read out of the kernel's internals, so it carries genuine approximation
    error (the ceil-shaped register-blocking terms are not in its basis);
    that error is what Fig. 9 measures downstream.

    The feature basis generalises Eq. 2 slightly:
    [K, K*M, K*N, M*N, K*M*N, 1], fitted per variant (the paper fits per
    vectorization approach; per-variant subsumes that). *)

type t

val feature_count : int

val features : variant:Primitives.Spm_gemm.variant -> m:int -> n:int -> k:int -> float array
(** The per-variant feature vector. The basis knows the 8x8 cluster
    partition and the variant's vectorized dimension (as Eq. 2 does via its
    vecM terms) but not the kernel's register-blocking granularity. *)

val default_grid : (int * int * int) list
(** The (m, n, k) sample grid used by {!fit}: covers the tile sizes schedule
    spaces actually generate. *)

val fit : ?grid:(int * int * int) list -> unit -> t
(** Time the kernel cycle model on the grid for every variant and solve the
    normal equations. Deterministic. *)

val coefficients : t -> Primitives.Spm_gemm.variant -> float array

val predict_cycles : t -> Primitives.Spm_gemm.call -> float
val predict_seconds : t -> Primitives.Spm_gemm.call -> float

val relative_error : t -> Primitives.Spm_gemm.call -> float
(** [(predicted - true) / true] cycles for one call. *)
