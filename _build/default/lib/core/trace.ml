type lane = Cpe_cluster | Dma_engine
type event = { ev_name : string; ev_lane : lane; ev_start : float; ev_end : float }
type t = { mutable rev_events : event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let record t ~name ~lane ~start ~stop =
  if stop < start then invalid_arg "Trace.record: negative duration";
  t.rev_events <- { ev_name = name; ev_lane = lane; ev_start = start; ev_end = stop } :: t.rev_events;
  t.count <- t.count + 1

let events t = List.rev t.rev_events
let event_count t = t.count

let busy t lane =
  List.fold_left
    (fun acc e -> if e.ev_lane = lane then acc +. (e.ev_end -. e.ev_start) else acc)
    0.0 t.rev_events

let lane_tid = function Cpe_cluster -> 0 | Dma_engine -> 1

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c -> match c with '"' -> Buffer.add_string buf "\\\"" | '\\' -> Buffer.add_string buf "\\\\" | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"SW26010 core group\"}},";
  Buffer.add_string buf
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"CPE cluster\"}},";
  Buffer.add_string buf
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\"args\":{\"name\":\"DMA engine\"}}";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf ",{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
           (escape e.ev_name) (lane_tid e.ev_lane) (e.ev_start *. 1e6)
           ((e.ev_end -. e.ev_start) *. 1e6)))
    (events t);
  Buffer.add_string buf "]}";
  Buffer.contents buf
