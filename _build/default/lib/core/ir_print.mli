(** Human-readable rendering of IR programs, in the style of Fig. 4's lowered
    IR listings. *)

val expr_to_string : Ir.expr -> string
val cond_to_string : Ir.cond -> string
val stmt_to_string : Ir.stmt -> string
val program_to_string : Ir.program -> string
val pp_program : Format.formatter -> Ir.program -> unit
