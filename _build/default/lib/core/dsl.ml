type axis = { axis_name : string; extent : int }

let axis axis_name extent =
  if extent <= 0 then invalid_arg "Dsl.axis: non-positive extent";
  { axis_name; extent }

type factor_var = { fv_name : string; fv_candidates : int list }

let pow2_up_to limit =
  let rec loop p acc = if p > limit then List.rev acc else loop (2 * p) (p :: acc) in
  loop 1 []

let factor_var ~name ~axis ?max_factor ?min_factor () =
  let lo = Option.value min_factor ~default:1 in
  let hi = Option.value max_factor ~default:axis.extent in
  let in_range f = f >= lo && f <= hi in
  let divisors = List.filter in_range (Prelude.Ints.divisors axis.extent) in
  let candidates =
    if List.length divisors >= 3 then divisors
    else
      List.sort_uniq compare
        (divisors @ List.filter (fun f -> in_range f && f <= axis.extent) (pow2_up_to axis.extent))
  in
  if candidates = [] then invalid_arg ("Dsl.factor_var: empty candidate set for " ^ name);
  { fv_name = name; fv_candidates = candidates }

let factor_var_of_list ~name candidates =
  if candidates = [] then invalid_arg "Dsl.factor_var_of_list: empty candidates";
  { fv_name = name; fv_candidates = List.sort_uniq compare candidates }

type choice_var = { cv_name : string; cv_arity : int }

let choice_var ~name ~arity =
  if arity <= 0 then invalid_arg "Dsl.choice_var: non-positive arity";
  { cv_name = name; cv_arity = arity }

type t = { factors : factor_var list; choices : choice_var list }

let space ~factors ~choices =
  let names =
    List.map (fun f -> f.fv_name) factors @ List.map (fun c -> c.cv_name) choices
  in
  let sorted = List.sort String.compare names in
  let rec dup = function
    | a :: (b :: _ as rest) -> if String.equal a b then Some a else dup rest
    | _ -> None
  in
  (match dup sorted with
  | Some n -> invalid_arg ("Dsl.space: duplicate variable " ^ n)
  | None -> ());
  { factors; choices }

type binding = (string * int) list

let size t =
  List.fold_left (fun acc f -> acc * List.length f.fv_candidates) 1 t.factors
  * List.fold_left (fun acc c -> acc * c.cv_arity) 1 t.choices

let enumerate t =
  let dims =
    List.map (fun f -> (f.fv_name, f.fv_candidates)) t.factors
    @ List.map (fun c -> (c.cv_name, Prelude.Lists.range 0 c.cv_arity)) t.choices
  in
  List.fold_left
    (fun acc (name, values) ->
      List.concat_map (fun partial -> List.map (fun v -> (name, v) :: partial) values) acc)
    [ [] ] dims
  |> List.map List.rev

let value binding name =
  match List.assoc_opt name binding with
  | Some v -> v
  | None -> raise Not_found
