module G = Primitives.Spm_gemm

type t = (string * float array) list

let feature_count = 6

(* Per-CPE tile extents: the model knows the operands are partitioned over
   the 8x8 cluster (public architectural knowledge, same as Eq. 1's #CPE),
   and which dimension the variant vectorizes — mirroring Eq. 2's
   vecM-dependent terms. It does *not* know the kernel's register-blocking
   granularities; their ceil() staircase is the model's residual error. *)
let features ~variant ~m ~n ~k =
  let mp = float_of_int (Prelude.Ints.ceil_div m Sw26010.Config.cpe_rows) in
  let np = float_of_int (Prelude.Ints.ceil_div n Sw26010.Config.cpe_cols) in
  let vd, od = match variant.G.vec with G.Vec_m -> (mp, np) | G.Vec_n -> (np, mp) in
  let k = float_of_int k in
  [| k; k *. vd; k *. od; vd *. od; k *. vd *. od; 1.0 |]

let default_grid =
  let ms = [ 8; 16; 32; 64; 96; 128; 192; 256; 384; 512 ] in
  let ks = [ 8; 16; 32; 64; 128; 256 ] in
  Prelude.Lists.cartesian3 ms ms ks

let plain_call variant ~m ~n ~k =
  let lda = match variant.G.a_major with G.Row_major -> k | G.Col_major -> m in
  let ldb = match variant.G.b_major with G.Row_major -> n | G.Col_major -> k in
  G.call ~variant ~m ~n ~k ~lda ~ldb ~ldc:n

let fit ?(grid = default_grid) () =
  let samples = Array.of_list grid in
  let fit_variant variant =
    let xs = Array.map (fun (m, n, k) -> features ~variant ~m ~n ~k) samples in
    let ys = Array.map (fun (m, n, k) -> G.cycles (plain_call variant ~m ~n ~k)) samples in
    (* Weight every sample by 1/true-cycles: the tuner ranks candidates, so
       relative error matters uniformly across small and large calls. *)
    let xs_w =
      Array.mapi (fun i row -> Array.map (fun v -> v /. ys.(i)) row) xs
    in
    let ys_w = Array.map (fun _ -> 1.0) ys in
    (G.variant_name variant, Prelude.Linsolve.least_squares xs_w ys_w)
  in
  List.map fit_variant G.all_variants

let coefficients t variant = List.assoc (G.variant_name variant) t

let predict_cycles t (call : G.call) =
  let coef = coefficients t call.variant in
  let f = features ~variant:call.variant ~m:call.m ~n:call.n ~k:call.k in
  let acc = ref 0.0 in
  Array.iteri (fun i c -> acc := !acc +. (c *. f.(i))) coef;
  (* A linear fit can go (slightly) negative on tiny shapes; clamp to the
     cheapest conceivable call. *)
  Float.max !acc 1.0

let predict_seconds t call = Sw26010.Config.seconds_of_cycles (predict_cycles t call)

let relative_error t call =
  let truth = G.cycles call in
  (predict_cycles t call -. truth) /. truth
