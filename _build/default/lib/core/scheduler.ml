type level = { lv_iter : string; lv_extent : int; lv_step : int }

let level ~iter ~extent ~step =
  if extent <= 0 || step <= 0 then invalid_arg "Scheduler.level: non-positive dimension";
  { lv_iter = iter; lv_extent = extent; lv_step = step }

let nest ?prefetch_at ~levels body =
  List.fold_right
    (fun lv acc ->
      let prefetch =
        match prefetch_at with Some it -> String.equal it lv.lv_iter | None -> false
      in
      Ir.for_ ~prefetch ~iter:lv.lv_iter ~lo:(Ir.int 0) ~hi:(Ir.int lv.lv_extent)
        ~step:(Ir.int lv.lv_step) acc)
    levels body

let clipped ~extent ~step iter =
  if extent mod step = 0 then Ir.int step else Ir.(emin (int step) (int extent - iter))

let tile_extent lv = clipped ~extent:lv.lv_extent ~step:lv.lv_step (Ir.var lv.lv_iter)
let trips lv = Prelude.Ints.ceil_div lv.lv_extent lv.lv_step

let reorder ~order levels =
  if List.length order <> List.length levels then
    invalid_arg "Scheduler.reorder: order length mismatch";
  List.map
    (fun it ->
      match List.find_opt (fun lv -> String.equal lv.lv_iter it) levels with
      | Some lv -> lv
      | None -> invalid_arg ("Scheduler.reorder: unknown iterator " ^ it))
    order

let divides_evenly lv = lv.lv_extent mod lv.lv_step = 0
