type report = {
  space_size : int;
  evaluated : int;
  wall_seconds : float;
  hardware_seconds : float;
}

type 'a outcome = {
  best : 'a;
  best_program : Ir.program;
  best_seconds : float;
  report : report;
}

let per_candidate_compile_seconds = 40.0

let prepare p =
  let p = Dma_inference.apply p in
  let p = Prefetch.apply p in
  match Ir_check.check p with
  | Ok () -> p
  | Error errs ->
    invalid_arg
      (Printf.sprintf "Tuner.prepare: invalid program %s: %s" p.prog_name
         (String.concat "; " (List.map Ir_check.error_to_string errs)))

let require_nonempty = function
  | [] -> invalid_arg "Tuner: empty schedule space"
  | l -> l

let model_tune ?(top_k = 1) ~gemm_model ~candidates ~build () =
  let candidates = require_nonempty candidates in
  if top_k < 1 then invalid_arg "Tuner.model_tune: top_k must be positive";
  let t0 = Sys.time () in
  let scored =
    List.map
      (fun c ->
        let p = prepare (build c) in
        let e = Cost_model.estimate ~gemm_model p in
        (c, p, e.total_seconds))
      candidates
  in
  let ranked = List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b) scored in
  let finalists = List.filteri (fun i _ -> i < top_k) ranked in
  (* The finalists are compiled and timed on the machine; with top_k = 1
     that is just the winner's validation run. *)
  let measured =
    List.map (fun (c, p, _) -> (c, p, (Interp.run ~numeric:false p).seconds)) finalists
  in
  let best, best_program, best_seconds =
    Prelude.Lists.min_float_by (fun (_, _, s) -> s) measured
  in
  let wall = Sys.time () -. t0 in
  let finalist_hw =
    Prelude.Lists.sum_float (fun (_, _, s) -> per_candidate_compile_seconds +. s) measured
  in
  {
    best;
    best_program;
    best_seconds;
    report =
      {
        space_size = List.length candidates;
        evaluated = List.length candidates;
        wall_seconds = wall;
        hardware_seconds = finalist_hw;
      };
  }

let blackbox_tune ?(repetitions = 3) ?(sample_every = 1) ~candidates ~build () =
  let candidates = require_nonempty candidates in
  if sample_every <= 0 then invalid_arg "Tuner.blackbox_tune: sample_every must be positive";
  let measured_candidates = Prelude.Lists.take_every sample_every candidates in
  let t0 = Sys.time () in
  let scored =
    List.map
      (fun c ->
        let p = prepare (build c) in
        let r = Interp.run ~numeric:false p in
        (c, p, r.seconds))
      measured_candidates
  in
  let best, best_program, best_seconds =
    Prelude.Lists.min_float_by (fun (_, _, s) -> s) scored
  in
  let wall = Sys.time () -. t0 in
  let measured_hw =
    Prelude.Lists.sum_float
      (fun (_, _, s) -> (float_of_int repetitions *. s) +. per_candidate_compile_seconds)
      scored
  in
  {
    best;
    best_program;
    best_seconds;
    report =
      {
        space_size = List.length candidates;
        evaluated = List.length measured_candidates;
        wall_seconds = wall;
        hardware_seconds = measured_hw *. float_of_int sample_every;
      };
  }
