open! Stdlib

type buffer_traffic = {
  bt_buffer : string;
  bt_get_payload : int;
  bt_get_transactions : int;
  bt_put_payload : int;
  bt_put_transactions : int;
}

type t = {
  traffic : buffer_traffic list;
  gemm_calls : int;
  gemm_flops : float;
  dma_count : int;
  memset_elems : int;
  copy_elems : int;
  transform_units : int;
}

type state = {
  env : (string, int) Hashtbl.t;
  per_buffer : (string, int array) Hashtbl.t;
      (** [get_payload; get_txn; put_payload; put_txn] *)
  mutable gemm_calls : int;
  mutable gemm_flops : float;
  mutable dma_count : int;
  mutable memset_elems : int;
  mutable copy_elems : int;
  mutable transform_units : int;
}

let elem = Sw26010.Config.elem_bytes

let rec eval st (e : Ir.expr) =
  match e with
  | Const i -> i
  | Var v -> (
    match Hashtbl.find_opt st.env v with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Ir_analysis: unbound variable %s" v))
  | Add (a, b) -> eval st a + eval st b
  | Sub (a, b) -> eval st a - eval st b
  | Mul (a, b) -> eval st a * eval st b
  | Div (a, b) -> eval st a / eval st b
  | Mod (a, b) -> eval st a mod eval st b
  | Min (a, b) -> min (eval st a) (eval st b)
  | Max (a, b) -> max (eval st a) (eval st b)

let rec eval_cond st (c : Ir.cond) =
  match c with
  | Cmp (op, a, b) ->
    let x = eval st a and y = eval st b in
    (match op with Lt -> x < y | Le -> x <= y | Eq -> x = y | Ne -> x <> y)
  | And (a, b) -> eval_cond st a && eval_cond st b
  | Or (a, b) -> eval_cond st a || eval_cond st b
  | Not a -> not (eval_cond st a)

let slot st name =
  match Hashtbl.find_opt st.per_buffer name with
  | Some a -> a
  | None ->
    let a = Array.make 4 0 in
    Hashtbl.replace st.per_buffer name a;
    a

(* Exact per-CPE accounting: every CPE's descriptor is evaluated. *)
let record_dma st (d : Ir.dma) =
  let desc =
    match d.per_cpe with
    | Some desc -> desc
    | None -> invalid_arg "Ir_analysis: DMA without per-CPE descriptor (run Dma_inference)"
  in
  st.dma_count <- st.dma_count + 1;
  let payload = ref 0 and txn = ref 0 in
  for rid = 0 to Sw26010.Config.cpe_rows - 1 do
    for cid = 0 to Sw26010.Config.cpe_cols - 1 do
      Hashtbl.replace st.env "rid" rid;
      Hashtbl.replace st.env "cid" cid;
      let dd =
        Sw26010.Dma.descriptor
          ~offset_bytes:(eval st desc.d_offset * elem)
          ~block_bytes:(eval st desc.d_block * elem)
          ~stride_bytes:(max (eval st desc.d_stride) (eval st desc.d_block) * elem)
          ~block_count:(eval st desc.d_count)
      in
      payload := !payload + Sw26010.Dma.payload_bytes dd;
      txn := !txn + Sw26010.Dma.transaction_bytes dd
    done
  done;
  let a = slot st d.main in
  match d.dir with
  | Ir.Get ->
    a.(0) <- a.(0) + !payload;
    a.(1) <- a.(1) + !txn
  | Ir.Put ->
    a.(2) <- a.(2) + !payload;
    a.(3) <- a.(3) + !txn

let analyze (p : Ir.program) =
  let st =
    {
      env = Hashtbl.create 16;
      per_buffer = Hashtbl.create 8;
      gemm_calls = 0;
      gemm_flops = 0.0;
      dma_count = 0;
      memset_elems = 0;
      copy_elems = 0;
      transform_units = 0;
    }
  in
  let rec walk (s : Ir.stmt) =
    match s with
    | Seq l -> List.iter walk l
    | If { cond; then_; else_ } -> if eval_cond st cond then walk then_ else walk else_
    | For { iter; lo; hi; step; body; _ } ->
      let lo = eval st lo and hi = eval st hi and step = eval st step in
      if step <= 0 then invalid_arg "Ir_analysis: non-positive step";
      let i = ref lo in
      while !i < hi do
        Hashtbl.replace st.env iter !i;
        walk body;
        i := !i + step
      done;
      Hashtbl.remove st.env iter
    | Dma d -> record_dma st d
    | Dma_wait _ | Comment _ -> ()
    | Gemm g ->
      st.gemm_calls <- st.gemm_calls + 1;
      st.gemm_flops <-
        st.gemm_flops
        +. (2.0 *. float_of_int (eval st g.m) *. float_of_int (eval st g.n) *. float_of_int (eval st g.k))
    | Memset_spm { elems; _ } -> st.memset_elems <- st.memset_elems + eval st elems
    | Spm_copy c -> st.copy_elems <- st.copy_elems + (eval st c.cp_rows * eval st c.cp_row_elems)
    | Transform t ->
      let chans = eval st t.t_chans in
      let units =
        match t.kind with
        | Ir.Wino_filter -> chans
        | Ir.Wino_input | Ir.Wino_output -> chans * eval st t.t_tiles_r * eval st t.t_tiles_c
      in
      st.transform_units <- st.transform_units + units
  in
  walk p.body;
  let traffic =
    Hashtbl.fold
      (fun name a acc ->
        {
          bt_buffer = name;
          bt_get_payload = a.(0);
          bt_get_transactions = a.(1);
          bt_put_payload = a.(2);
          bt_put_transactions = a.(3);
        }
        :: acc)
      st.per_buffer []
    |> List.sort (fun a b -> String.compare a.bt_buffer b.bt_buffer)
  in
  {
    traffic;
    gemm_calls = st.gemm_calls;
    gemm_flops = st.gemm_flops;
    dma_count = st.dma_count;
    memset_elems = st.memset_elems;
    copy_elems = st.copy_elems;
    transform_units = st.transform_units;
  }

let total_get_payload t = List.fold_left (fun acc b -> acc + b.bt_get_payload) 0 t.traffic
let total_put_payload t = List.fold_left (fun acc b -> acc + b.bt_put_payload) 0 t.traffic

let arithmetic_intensity t =
  let bytes =
    List.fold_left (fun acc b -> acc + b.bt_get_transactions + b.bt_put_transactions) 0 t.traffic
  in
  if bytes = 0 then infinity else t.gemm_flops /. float_of_int bytes

let pp fmt (t : t) =
  Format.fprintf fmt "@[<v>%d GEMM calls, %.4g FLOPs; %d DMA descriptors@," t.gemm_calls
    t.gemm_flops t.dma_count;
  Format.fprintf fmt "arithmetic intensity: %.2f FLOPs/byte@," (arithmetic_intensity t);
  List.iter
    (fun b ->
      Format.fprintf fmt "%-12s get %8d KiB (bus %8d)  put %8d KiB (bus %8d)@," b.bt_buffer
        (b.bt_get_payload / 1024) (b.bt_get_transactions / 1024) (b.bt_put_payload / 1024)
        (b.bt_put_transactions / 1024))
    t.traffic;
  Format.fprintf fmt "@]"
