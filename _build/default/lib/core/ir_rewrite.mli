(** Structural rewriting helpers shared by the IR optimizer passes. *)

val subst_stmt : (string * Ir.expr) list -> Ir.stmt -> Ir.stmt
(** Substitute variables in every expression of a statement tree. Loop
    iterators shadow: a binding for [i] does not propagate into a loop that
    re-binds [i]. *)

val gets_only : Ir.stmt -> Ir.stmt
(** Keep only the body's "fill" statements: [Dma] nodes with direction
    [Get], memsets that zero-pad a Get-target buffer (lightweight boundary
    padding), and the [If] structure around them; everything else —
    including nested loops — is dropped. Used to materialise prefetch
    copies of a loop body. *)

val drop_gets : Ir.stmt -> Ir.stmt
(** The complement of [gets_only]: the body with its fill statements
    removed. *)

val collect_dmas : Ir.stmt -> Ir.dma list
(** Every DMA node in the subtree, in pre-order. *)

val map_exprs : (Ir.expr -> Ir.expr) -> Ir.stmt -> Ir.stmt
(** Apply a function to every expression in the tree (without touching
    structure). *)
