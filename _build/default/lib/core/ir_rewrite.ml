open Ir
open! Stdlib

let map_region f (r : region) =
  { offset = f r.offset; rows = f r.rows; row_elems = f r.row_elems; row_stride = f r.row_stride }

let map_cpe_desc f (d : cpe_desc) =
  { d_offset = f d.d_offset; d_block = f d.d_block; d_stride = f d.d_stride; d_count = f d.d_count }

let map_operand f (o : gemm_operand) = { o with g_offset = f o.g_offset; g_ld = f o.g_ld }

let rec map_exprs_cond f = function
  | Cmp (op, a, b) -> Cmp (op, f a, f b)
  | And (a, b) -> And (map_exprs_cond f a, map_exprs_cond f b)
  | Or (a, b) -> Or (map_exprs_cond f a, map_exprs_cond f b)
  | Not a -> Not (map_exprs_cond f a)

let rec map_exprs_with ~shadow f s =
  match s with
  | Seq l -> Seq (List.map (map_exprs_with ~shadow f) l)
  | For fl ->
    let f' = shadow fl.iter f in
    For
      {
        fl with
        lo = f fl.lo;
        hi = f fl.hi;
        step = f fl.step;
        body = map_exprs_with ~shadow f' fl.body;
      }
  | If { cond; then_; else_ } ->
    If
      {
        cond = map_exprs_cond f cond;
        then_ = map_exprs_with ~shadow f then_;
        else_ = map_exprs_with ~shadow f else_;
      }
  | Dma d ->
    Dma
      {
        d with
        tag = f d.tag;
        region = map_region f d.region;
        spm_offset = f d.spm_offset;
        spm_ld = f d.spm_ld;
        per_cpe = Option.map (map_cpe_desc f) d.per_cpe;
      }
  | Dma_wait { tag } -> Dma_wait { tag = f tag }
  | Gemm g ->
    Gemm
      {
        g with
        m = f g.m;
        n = f g.n;
        k = f g.k;
        a = map_operand f g.a;
        b = map_operand f g.b;
        c = map_operand f g.c;
      }
  | Memset_spm { buf; offset; elems } -> Memset_spm { buf; offset = f offset; elems = f elems }
  | Spm_copy c ->
    Spm_copy
      {
        c with
        cp_src_offset = f c.cp_src_offset;
        cp_src_ld = f c.cp_src_ld;
        cp_dst_offset = f c.cp_dst_offset;
        cp_dst_ld = f c.cp_dst_ld;
        cp_rows = f c.cp_rows;
        cp_row_elems = f c.cp_row_elems;
      }
  | Transform t ->
    Transform
      {
        t with
        t_src_offset = f t.t_src_offset;
        t_dst_offset = f t.t_dst_offset;
        t_chans = f t.t_chans;
        t_tiles_r = f t.t_tiles_r;
        t_tiles_c = f t.t_tiles_c;
        t_src_ld = f t.t_src_ld;
      }
  | Comment _ -> s

let map_exprs f s = map_exprs_with ~shadow:(fun _ f -> f) f s

let subst_stmt bindings s =
  let rec go bindings s =
    if bindings = [] then s
    else
      let f = subst bindings in
      match s with
      | For fl ->
        let inner = List.filter (fun (v, _) -> not (String.equal v fl.iter)) bindings in
        For
          { fl with lo = f fl.lo; hi = f fl.hi; step = f fl.step; body = go inner fl.body }
      | Seq l -> Seq (List.map (go bindings) l)
      | If { cond; then_; else_ } ->
        If { cond = subst_cond bindings cond; then_ = go bindings then_; else_ = go bindings else_ }
      | _ -> map_exprs f s
  in
  go bindings s

let is_empty = function Seq [] -> true | _ -> false

(* The "fill" statements of a streaming body: the Get DMAs plus any memset
   that zero-pads a buffer those Gets land in (lightweight boundary padding
   must travel with its Get when the prefetch pass hoists it). *)
let get_targets s =
  fold_stmt
    (fun acc n -> match n with Dma { dir = Get; spm; _ } -> spm :: acc | _ -> acc)
    [] s
  |> List.sort_uniq String.compare

let gets_only s =
  let targets = get_targets s in
  let rec go s =
    match s with
    | Dma { dir = Get; _ } -> s
    | Memset_spm { buf; _ } when List.mem buf targets -> s
    | Seq l ->
      let kept = List.filter (fun s -> not (is_empty s)) (List.map go l) in
      seq kept
    | If { cond; then_; else_ } ->
      let t = go then_ and e = go else_ in
      if is_empty t && is_empty e then Seq [] else If { cond; then_ = t; else_ = e }
    | For _ | Dma _ | Dma_wait _ | Gemm _ | Memset_spm _ | Spm_copy _ | Transform _ | Comment _ ->
      Seq []
  in
  go s

let drop_gets s =
  let targets = get_targets s in
  let rec go s =
    match s with
    | Dma { dir = Get; _ } -> Seq []
    | Memset_spm { buf; _ } when List.mem buf targets -> Seq []
    | Seq l ->
      let kept = List.filter (fun s -> not (is_empty s)) (List.map go l) in
      seq kept
    | If { cond; then_; else_ } -> If { cond; then_ = go then_; else_ = go else_ }
    | For fl -> For { fl with body = go fl.body }
    | Dma _ | Dma_wait _ | Gemm _ | Memset_spm _ | Spm_copy _ | Transform _ | Comment _ -> s
  in
  go s

let collect_dmas s =
  List.rev
    (fold_stmt (fun acc s -> match s with Dma d -> d :: acc | _ -> acc) [] s)
