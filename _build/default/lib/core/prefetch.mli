(** Automatic memory-latency hiding by software prefetching (Sec. 4.5.2).

    A schedule strategy marks the outermost loop of its streaming nest with
    [prefetch = true]. For each marked nest this pass:

    - double-buffers every SPM buffer touched by a DMA inside the nest
      (doubling its backing store and SPM footprint);
    - hoists an initial copy of the nest's [Get] DMAs in front of the nest,
      evaluated at the first multi-index;
    - rewrites the innermost streaming body to (1) issue the [Get]s of the
      *next* multi-index — computed by the paper's nested if-then-else
      next-iteration inference — into the other buffer half, (2) wait for
      and compute on the current half, alternating halves by the parity of
      the global iteration counter;
    - retags DMAs and waits with the parity so reply words pair correctly.

    Requirements on a marked nest (enforced, [Invalid_argument] otherwise):
    the chain of loops from the marked loop down to the level containing the
    [Get]s has constant bounds, and all [Get]s live at a single loop level.

    The resulting program computes the same function; only its timeline
    (and SPM footprint) changes — property-tested in the test suite. *)

val apply : Ir.program -> Ir.program
(** Transform every marked nest; returns the program with [overlapped]
    set when at least one nest was transformed. Idempotent on programs
    without marked loops. *)
