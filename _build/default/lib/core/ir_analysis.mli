(** Static analysis of IR programs: traffic and work decomposition.

    Walks a program the same way the cost model does (loops expanded
    analytically) but instead of time it accumulates *what* the program
    does: DMA payload and transaction bytes per main-memory buffer and
    direction, GEMM call counts and FLOPs, memset/copy/transform volumes.
    Used by the reporting tools to explain *why* a schedule wins — e.g. how
    much input re-fetch a loop order causes — and tested against the
    interpreter's own counters. *)

type buffer_traffic = {
  bt_buffer : string;
  bt_get_payload : int;  (** bytes read from main memory (useful) *)
  bt_get_transactions : int;  (** bytes crossing the DRAM bus, with waste *)
  bt_put_payload : int;
  bt_put_transactions : int;
}

type t = {
  traffic : buffer_traffic list;  (** per main buffer, name order *)
  gemm_calls : int;
  gemm_flops : float;
  dma_count : int;  (** DMA descriptors issued *)
  memset_elems : int;
  copy_elems : int;
  transform_units : int;  (** tile-channel transform applications *)
}

val analyze : Ir.program -> t
(** Requires per-CPE descriptors (run {!Dma_inference} first). Exact: every
    loop iteration is visited. *)

val total_get_payload : t -> int
val total_put_payload : t -> int

val arithmetic_intensity : t -> float
(** GEMM FLOPs per DRAM-transaction byte — the roofline coordinate of the
    schedule. *)

val pp : Format.formatter -> t -> unit
