(** SPM memory planning for code generation (Sec. 4.7): all SPM buffers of a
    program are coalesced into one statically allocated region, each buffer
    becoming an offset into the pool. *)

type t = {
  pool_bytes : int;
  offsets : (string * int) list;  (** byte offset of each SPM buffer *)
}

val plan : Ir.program -> (t, string) result
val offset_of : t -> string -> int
