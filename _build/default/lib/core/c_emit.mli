(** Code generation (Sec. 4.7): lower an optimized IR program to the C
    source of an SW26010 CPE kernel.

    The emitted file targets the athread SPMD runtime: the whole CPE
    cluster executes [<name>_cpe_kernel] in lock-step; per-CPE row/column
    ids come from the runtime; SPM buffers live in one coalesced
    [__thread_local] pool (per {!Mem_plan}); DMAs are issued with the
    [swDMA]/[swDMAWait] primitives and GEMMs call the assembly kernels by
    their variant names.

    The output is compilable C in structure; without the proprietary
    toolchain it serves as the inspectable, testable artifact of the
    lowering (golden-file tested in the suite). *)

val expr : Ir.expr -> string
(** C rendering of an expression. *)

val program : Ir.program -> (string, string) result
(** Full translation unit, or an error from SPM planning. *)

val program_exn : Ir.program -> string
