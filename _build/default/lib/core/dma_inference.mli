(** DMA inference (Sec. 4.5.1): derive each CPE's strided descriptor from the
    whole-CG transfer written by the scheduler.

    The scheduler emits [Dma] nodes carrying only a CG-level region (base
    offset, number of row blocks, elements per block, stride) plus a
    partition hint; this pass fills in the [per_cpe] descriptor — offset,
    block, stride and count expressions over the reserved [rid]/[cid]
    variables — exactly as in the worked example of Fig. 4 (right):
    for a column-major M x N matrix split on the 8x8 grid,
    [block = M/8], [stride = M*7/8], [offset = (cid*N/8)*M + rid*M/8]. *)

val infer_desc : Ir.region -> Ir.partition -> Ir.cpe_desc
(** The per-CPE descriptor for one region. Ragged divisions are clipped per
    CPE with [min]/[max] so the union of the 64 descriptors is exactly the
    region. *)

val apply : Ir.program -> Ir.program
(** Fill [per_cpe] on every DMA node that lacks one. Idempotent. *)
