(** The two autotuners compared in Sec. 5.2.

    Both receive an enumerated schedule space (a candidate list plus a
    builder producing the optimized IR of each candidate) and return the
    chosen candidate together with a tuning report.

    - {!blackbox_tune} is the brute-force baseline: it *executes* every
      candidate on the simulated machine (cost-only interpretation) and
      keeps the fastest. Its [hardware_seconds] is the simulated machine
      time such a tuning run occupies — repetitions of every candidate's
      run plus a per-candidate code-generation/compilation overhead
      (calibrated to the per-candidate throughput reported in Table 3).

    - {!model_tune} is swATOP's performance-model-based tuner: it evaluates
      the static cost model on every candidate and picks the predicted
      best; only the winner is ever compiled and run. *)

type report = {
  space_size : int;
  evaluated : int;  (** candidates actually measured/estimated *)
  wall_seconds : float;  (** host CPU time spent inside the tuner *)
  hardware_seconds : float;  (** simulated SW26010 time the tuning would occupy *)
}

type 'a outcome = {
  best : 'a;
  best_program : Ir.program;  (** fully lowered and optimized *)
  best_seconds : float;  (** black-box: measured; model: predicted *)
  report : report;
}

val per_candidate_compile_seconds : float
(** Code generation + cross compilation + job launch per candidate on the
    real system; calibrated against Table 3 (approximately 40 s per
    candidate for the black-box tuner). *)

val prepare : Ir.program -> Ir.program
(** The IR-optimizer pipeline applied to every candidate before costing:
    DMA inference, then prefetching, then structural validation. Raises
    [Invalid_argument] with the validation report on a malformed program. *)

val model_tune :
  ?top_k:int ->
  gemm_model:Gemm_cost.t ->
  candidates:'a list ->
  build:('a -> Ir.program) ->
  unit ->
  'a outcome
(** Sec. 4's "pick best (or top k)": with [top_k > 1] the [top_k] best
    predicted candidates are each run once on the (simulated) machine and
    the measured winner kept; [hardware_seconds] accounts for those runs.
    [best_seconds] is then the measured time of the winner. Default 1
    (prediction only). Raises [Invalid_argument] on an empty candidate
    list. *)

val blackbox_tune :
  ?repetitions:int ->
  ?sample_every:int ->
  candidates:'a list ->
  build:('a -> Ir.program) ->
  unit ->
  'a outcome
(** [sample_every] measures only every n-th candidate (default 1 = all) and
    scales [hardware_seconds] accordingly — used to keep full-network
    Table 3 reproductions tractable; the report's [evaluated] field records
    the actual count. [repetitions] (default 3) models repeated timing runs
    on real hardware. *)
