(** Execution traces of simulated runs.

    The interpreter can record every timed event — GEMM kernels, DMA
    transfers (issue-to-completion), memsets, SPM copies, Winograd
    transforms — with its simulated start/end times, on two lanes: the CPE
    cluster and the DMA engine. Traces render to the Chrome trace-event JSON
    format (chrome://tracing, Perfetto), which makes the simulator's overlap
    behaviour directly inspectable. *)

type lane = Cpe_cluster | Dma_engine

type event = {
  ev_name : string;
  ev_lane : lane;
  ev_start : float;  (** simulated seconds *)
  ev_end : float;
}

type t

val create : unit -> t
val record : t -> name:string -> lane:lane -> start:float -> stop:float -> unit
val events : t -> event list
(** In recording order. *)

val event_count : t -> int

val busy : t -> lane -> float
(** Total event duration on a lane (overlaps within the lane are summed,
    not merged; lanes are sequential by construction). *)

val to_chrome_json : t -> string
(** Complete trace-event JSON ("traceEvents" array, microsecond
    timestamps). *)
