open Ir
open! Stdlib

let rec expr_to_string = function
  | Const i -> string_of_int i
  | Var v -> v
  | Add (a, b) -> binary "+" a b
  | Sub (a, b) -> binary "-" a b
  | Mul (a, b) -> binary "*" a b
  | Div (a, b) -> binary "/" a b
  | Mod (a, b) -> binary "%" a b
  | Min (a, b) -> Printf.sprintf "min(%s, %s)" (expr_to_string a) (expr_to_string b)
  | Max (a, b) -> Printf.sprintf "max(%s, %s)" (expr_to_string a) (expr_to_string b)

and binary op a b = Printf.sprintf "(%s %s %s)" (expr_to_string a) op (expr_to_string b)

let rec cond_to_string = function
  | Cmp (op, a, b) ->
    let sym = match op with Lt -> "<" | Le -> "<=" | Eq -> "==" | Ne -> "!=" in
    Printf.sprintf "%s %s %s" (expr_to_string a) sym (expr_to_string b)
  | And (a, b) -> Printf.sprintf "(%s && %s)" (cond_to_string a) (cond_to_string b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (cond_to_string a) (cond_to_string b)
  | Not a -> Printf.sprintf "!(%s)" (cond_to_string a)

let dir_to_string = function Get -> "get" | Put -> "put"

let partition_to_string = function P_rows -> "rows" | P_cols -> "cols" | P_grid -> "grid"

let transform_kind_to_string = function
  | Wino_input -> "wino_input"
  | Wino_filter -> "wino_filter"
  | Wino_output -> "wino_output"

let buffer lines = String.concat "\n" lines

let rec stmt_lines indent s =
  let pad = String.make (indent * 2) ' ' in
  let line fmt = Printf.ksprintf (fun str -> [ pad ^ str ]) fmt in
  match s with
  | Seq l -> List.concat_map (stmt_lines indent) l
  | For { iter; lo; hi; step; body; prefetch } ->
    line "for %s = %s to %s step %s%s {" iter (expr_to_string lo) (expr_to_string hi)
      (expr_to_string step)
      (if prefetch then " [prefetch]" else "")
    @ stmt_lines (indent + 1) body
    @ [ pad ^ "}" ]
  | If { cond; then_; else_ } ->
    let else_lines =
      match else_ with
      | Seq [] -> [ pad ^ "}" ]
      | _ -> ((pad ^ "} else {") :: stmt_lines (indent + 1) else_) @ [ pad ^ "}" ]
    in
    line "if (%s) {" (cond_to_string cond) @ stmt_lines (indent + 1) then_ @ else_lines
  | Dma { dir; main; spm; tag; region; spm_offset; spm_ld; partition; per_cpe } ->
    let base =
      Printf.sprintf
        "dma_%s %s <-> %s[+%s ld=%s] tag=%s region(off=%s rows=%s row=%s stride=%s) part=%s"
        (dir_to_string dir) main spm (expr_to_string spm_offset) (expr_to_string spm_ld)
        (expr_to_string tag) (expr_to_string region.offset) (expr_to_string region.rows)
        (expr_to_string region.row_elems) (expr_to_string region.row_stride)
        (partition_to_string partition)
    in
    let cpe =
      match per_cpe with
      | None -> ""
      | Some d ->
        Printf.sprintf " cpe(off=%s block=%s stride=%s count=%s)" (expr_to_string d.d_offset)
          (expr_to_string d.d_block) (expr_to_string d.d_stride) (expr_to_string d.d_count)
    in
    [ pad ^ base ^ cpe ]
  | Dma_wait { tag } -> line "dma_wait tag=%s" (expr_to_string tag)
  | Gemm { variant; m; n; k; a; b; c } ->
    line "%s(m=%s n=%s k=%s, A=%s[+%s ld=%s], B=%s[+%s ld=%s], C=%s[+%s ld=%s])"
      (Primitives.Spm_gemm.variant_name variant)
      (expr_to_string m) (expr_to_string n) (expr_to_string k) a.g_buf (expr_to_string a.g_offset)
      (expr_to_string a.g_ld) b.g_buf (expr_to_string b.g_offset) (expr_to_string b.g_ld) c.g_buf
      (expr_to_string c.g_offset) (expr_to_string c.g_ld)
  | Memset_spm { buf; offset; elems } ->
    line "memset %s[+%s] elems=%s" buf (expr_to_string offset) (expr_to_string elems)
  | Spm_copy c ->
    line "spm_copy %s[+%s ld=%s] -> %s[+%s ld=%s] rows=%s row=%s" c.cp_src
      (expr_to_string c.cp_src_offset) (expr_to_string c.cp_src_ld) c.cp_dst
      (expr_to_string c.cp_dst_offset) (expr_to_string c.cp_dst_ld) (expr_to_string c.cp_rows)
      (expr_to_string c.cp_row_elems)
  | Transform t ->
    line "%s %s[+%s] -> %s[+%s] chans=%s tiles=%sx%s src_ld=%s"
      (transform_kind_to_string t.kind) t.t_src (expr_to_string t.t_src_offset) t.t_dst
      (expr_to_string t.t_dst_offset) (expr_to_string t.t_chans) (expr_to_string t.t_tiles_r)
      (expr_to_string t.t_tiles_c) (expr_to_string t.t_src_ld)
  | Comment c -> line "// %s" c

let stmt_to_string s = buffer (stmt_lines 0 s)

let buf_to_string (b : buf) =
  Printf.sprintf "%s %s: cg_elems=%d cpe_elems=%d%s"
    (match b.space with Main -> "main" | Spm -> "spm")
    b.buf_name b.cg_elems b.cpe_elems
    (if b.double_buffered then " [double]" else "")

let program_to_string p =
  buffer
    ((Printf.sprintf "program %s%s" p.prog_name (if p.overlapped then " [overlapped]" else "")
     :: List.map (fun b -> "  buffer " ^ buf_to_string b) p.bufs)
    @ stmt_lines 1 p.body)

let pp_program fmt p = Format.pp_print_string fmt (program_to_string p)
