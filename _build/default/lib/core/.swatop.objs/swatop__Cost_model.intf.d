lib/core/cost_model.mli: Gemm_cost Ir
