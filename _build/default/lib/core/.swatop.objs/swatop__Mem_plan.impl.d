lib/core/mem_plan.ml: Ir List Sw26010
