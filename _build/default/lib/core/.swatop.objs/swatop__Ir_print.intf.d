lib/core/ir_print.mli: Format Ir
