lib/core/c_emit.ml: Buffer Ir List Mem_plan Prelude Primitives Printf Stdlib String Sw26010
