lib/core/interp.mli: Ir Trace
