lib/core/ir_rewrite.ml: Ir List Option Stdlib String
