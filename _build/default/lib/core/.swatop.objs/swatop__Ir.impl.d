lib/core/ir.ml: List Primitives Stdlib String
