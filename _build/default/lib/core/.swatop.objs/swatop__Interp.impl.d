lib/core/interp.ml: Array Float Hashtbl Ir List Primitives Printf Stdlib Sw26010 Swtensor Trace
