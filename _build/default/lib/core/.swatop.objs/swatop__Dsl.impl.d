lib/core/dsl.ml: List Option Prelude String
