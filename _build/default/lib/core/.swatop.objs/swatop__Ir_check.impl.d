lib/core/ir_check.ml: Ir List Option Printf Stdlib String Sw26010
