lib/core/tuner.ml: Cost_model Dma_inference Float Interp Ir Ir_check List Prefetch Prelude Printf String Sys
