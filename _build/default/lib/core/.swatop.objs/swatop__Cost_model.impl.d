lib/core/cost_model.ml: Array Float Gemm_cost Hashtbl Ir List Option Primitives Stdlib Sw26010
