lib/core/ir_rewrite.mli: Ir
