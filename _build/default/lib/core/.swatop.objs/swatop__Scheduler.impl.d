lib/core/scheduler.ml: Ir List Prelude String
