lib/core/ir_analysis.mli: Format Ir
