lib/core/prefetch.ml: Ir Ir_print Ir_rewrite List Printf Stdlib String
