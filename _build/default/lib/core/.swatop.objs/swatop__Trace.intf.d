lib/core/trace.mli:
