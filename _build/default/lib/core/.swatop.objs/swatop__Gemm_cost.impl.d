lib/core/gemm_cost.ml: Array Float List Prelude Primitives Sw26010
