lib/core/dsl.mli:
