lib/core/ir.mli: Primitives
