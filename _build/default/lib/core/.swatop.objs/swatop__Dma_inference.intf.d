lib/core/dma_inference.mli: Ir
