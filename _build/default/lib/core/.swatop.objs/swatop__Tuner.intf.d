lib/core/tuner.mli: Gemm_cost Ir
