lib/core/ir_print.ml: Format Ir List Primitives Printf Stdlib String
