lib/core/ir_check.mli: Ir
