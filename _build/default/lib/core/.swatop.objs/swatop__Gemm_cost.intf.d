lib/core/gemm_cost.mli: Primitives
