lib/core/scheduler.mli: Ir
