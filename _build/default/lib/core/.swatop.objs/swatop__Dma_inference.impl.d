lib/core/dma_inference.ml: Ir Sw26010
