lib/core/prefetch.mli: Ir
