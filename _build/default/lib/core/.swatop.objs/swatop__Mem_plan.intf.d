lib/core/mem_plan.mli: Ir
