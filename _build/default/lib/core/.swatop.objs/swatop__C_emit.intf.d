lib/core/c_emit.mli: Ir
