lib/core/ir_analysis.ml: Array Format Hashtbl Ir List Printf Stdlib String Sw26010
