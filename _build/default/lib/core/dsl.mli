(** The tensorized-primitive DSL's schedule-space vocabulary (Sec. 4.2,
    Fig. 4).

    An operator module describes its computation — the schedule seed — in
    plain OCaml and declares its schedule space with the variables here:

    - {!factor_var} mirrors the DSL's [FactorVar]: a tiling factor for one
      axis, whose candidate values swATOP traverses automatically;
    - {!choice_var} covers the discrete decisions that need explicit
      candidates — loop reorders (the paper notes permutations are too many
      to enumerate implicitly), data layouts, vectorization dimension,
      boundary policy.

    {!enumerate} produces every point of the cartesian space as a
    name-to-value binding; operator builders turn a binding into a concrete
    schedule strategy and lower it to IR. *)

type axis = { axis_name : string; extent : int }

val axis : string -> int -> axis

type factor_var = { fv_name : string; fv_candidates : int list }

val factor_var : name:string -> axis:axis -> ?max_factor:int -> ?min_factor:int -> unit -> factor_var
(** Candidates are the divisors of the axis extent within
    [min_factor, max_factor] (defaults: 1 and the extent). If the extent has
    fewer than three divisors in range (e.g. a prime extent), power-of-two
    tile sizes in range are added — those produce ragged tiles the boundary
    machinery must handle, exactly as in the paper. *)

val factor_var_of_list : name:string -> int list -> factor_var

type choice_var = { cv_name : string; cv_arity : int }

val choice_var : name:string -> arity:int -> choice_var

type t = { factors : factor_var list; choices : choice_var list }

val space : factors:factor_var list -> choices:choice_var list -> t

type binding = (string * int) list

val size : t -> int
(** Product of all candidate counts (before validity filtering). *)

val enumerate : t -> binding list

val value : binding -> string -> int
(** Raises [Not_found] on an unknown variable name. *)
