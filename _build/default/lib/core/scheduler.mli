(** Loop-transformation helpers the operator builders use to turn a schedule
    strategy into an IR loop nest (Sec. 4.3.1).

    Splitting an axis of extent [total] by [factor] yields an outer loop
    stepping by [factor] and an inner extent of [min(factor, total - iter)]
    — the parameter-switching form of boundary processing. [nest] assembles
    the reordered outer loops, carrying the prefetch mark. *)

type level = {
  lv_iter : string;
  lv_extent : int;  (** axis extent *)
  lv_step : int;  (** tile factor (loop steps by this) *)
}

val level : iter:string -> extent:int -> step:int -> level

val nest : ?prefetch_at:string -> levels:level list -> Ir.stmt -> Ir.stmt
(** Build the loop nest with [levels] ordered outermost first; the loop
    whose iterator equals [prefetch_at] is marked for double buffering. *)

val tile_extent : level -> Ir.expr
(** [min(step, extent - iter)] — the current tile's (possibly ragged)
    extent. *)

val clipped : extent:int -> step:int -> Ir.expr -> Ir.expr
(** [min(step, extent - iter)], statically folded to [step] when [step]
    divides [extent] (no ragged tile can occur), which keeps aligned
    schedules free of boundary expressions — both the generated code and
    the cost model benefit. *)

val trips : level -> int
(** Number of iterations of the level's loop. *)

val reorder : order:string list -> level list -> level list
(** Permute levels to the given iterator order. Raises [Invalid_argument]
    if [order] is not a permutation of the levels' iterators. *)

val divides_evenly : level -> bool
