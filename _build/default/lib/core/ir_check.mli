(** Structural validation of IR programs.

    Checks performed:
    - every buffer referenced by a statement is declared, with the right
      memory space on each side of a DMA;
    - every variable is bound by an enclosing loop (or is [rid]/[cid]
      inside an inferred per-CPE descriptor);
    - buffer names are unique;
    - the per-CPE SPM footprint (including double buffering) fits in the
      64 KB scratch pad — the capacity constraint that prunes schedule
      spaces. *)

type error = { at : string; reason : string }

val check : Ir.program -> (unit, error list) result
val spm_footprint_bytes : Ir.program -> int
val error_to_string : error -> string
