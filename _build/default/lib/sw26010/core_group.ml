type t = {
  engine : Dma.Engine.t;
  mutable clock : float;
  mutable dma_time : float;
  mutable compute_time : float;
}

let create () = { engine = Dma.Engine.create (); clock = 0.0; dma_time = 0.0; compute_time = 0.0 }

let reset t =
  Dma.Engine.reset t.engine;
  t.clock <- 0.0;
  t.dma_time <- 0.0;
  t.compute_time <- 0.0

let now t = t.clock

let advance t dt =
  assert (dt >= 0.0);
  t.clock <- t.clock +. dt;
  t.compute_time <- t.compute_time +. dt

let advance_cycles t cycles = advance t (Config.seconds_of_cycles cycles)

let issue_dma t ~tag ~occupancy ~latency =
  assert (occupancy >= 0.0 && latency >= 0.0);
  t.dma_time <- t.dma_time +. occupancy;
  Dma.Engine.issue t.engine ~now:t.clock ~tag ~occupancy ~latency

let wait_dma t ~tag = t.clock <- Dma.Engine.wait t.engine ~now:t.clock ~tag
let engine_busy_until t = Dma.Engine.busy_until t.engine
let dma_busy t = t.dma_time
let compute_busy t = t.compute_time
