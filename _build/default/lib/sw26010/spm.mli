(** Per-CPE scratch-pad memory (SPM) allocation planning.

    The SPM is a user-controlled 64 KB fast memory: every byte a schedule
    wants resident must be placed explicitly. The planner assigns
    non-overlapping offsets to named buffers (mirroring the coalesced-region
    allocation performed by the paper's code generator) and reports capacity
    violations, which is the dominant validity constraint when enumerating
    schedule spaces. *)

type request = {
  name : string;
  bytes : int;  (** per-CPE footprint *)
  double_buffered : bool;
      (** doubles the footprint; set by the prefetching optimization *)
}

type slot = { slot_name : string; offset : int; slot_bytes : int }

type plan = private {
  slots : slot list;
  used_bytes : int;
  capacity : int;
}

val request : ?double_buffered:bool -> name:string -> bytes:int -> unit -> request

val footprint : request list -> int
(** Total per-CPE bytes the requests occupy, including double buffering and
    per-buffer alignment. *)

val fits : ?capacity:int -> request list -> bool

val plan : ?capacity:int -> request list -> (plan, string) result
(** Lay the buffers out back-to-back (64-byte aligned, matching vector-load
    alignment requirements). [Error] carries a human-readable diagnosis when
    the capacity is exceeded or names collide. *)

val find_slot : plan -> string -> slot option
