(** Register-communication model of the 8x8 CPE mesh.

    The mesh lets a CPE broadcast a vector register to the other seven CPEs of
    its row or column in a handful of cycles, which is what makes the
    cluster-wide GEMM primitive possible: each CPE holds 1/64 of A, B and C,
    and assembles remote A-rows / B-columns on the fly. The model charges a
    throughput term against the aggregate mesh bandwidth plus a fixed pattern
    switch penalty whenever the kernel alternates row/column phases. *)

type pattern = Row_broadcast | Col_broadcast

val broadcast_cycles : bytes:int -> float
(** Cycles to broadcast [bytes] from one CPE to its row or column, assuming
    the mesh's aggregate bandwidth is evenly divided among the 64 CPEs. *)

val switch_cycles : int
(** Penalty for changing between row and column patterns. *)

val phase_cycles : switches:int -> bytes_per_cpe:int -> float
(** Total communication cycles of a kernel phase that broadcasts
    [bytes_per_cpe] from every CPE and switches patterns [switches] times. *)
