(** Simulated state of one core group during program execution.

    The interpreter drives a single simulated clock (the CPE cluster executes
    the same SPMD program in lockstep, as all generated kernels do) and one
    DMA engine timeline shared by the collective transfers. *)

type t

val create : unit -> t
val reset : t -> unit

val now : t -> float
(** Current simulated time, seconds. *)

val advance : t -> float -> unit
(** Spend [dt] seconds of CPE compute time. *)

val advance_cycles : t -> float -> unit

val issue_dma : t -> tag:int -> occupancy:float -> latency:float -> unit
(** Launch an asynchronous collective DMA: the engine transmits for
    [occupancy] seconds and the reply word fires [latency] later. *)

val wait_dma : t -> tag:int -> unit
(** Block until the tagged transfer(s) complete. *)

val dma_busy : t -> float
(** Simulated seconds the DMA engine has been transferring so far. *)

val engine_busy_until : t -> float
(** Simulated time at which the DMA engine drains (for end-of-program
    accounting of fire-and-forget transfers). *)

val compute_busy : t -> float
(** Simulated seconds the CPE pipelines have been computing so far. *)
