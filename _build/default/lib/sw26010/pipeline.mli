(** Dual-pipeline issue model of a CPE.

    P0 issues floating-point (scalar and vector) operations, P1 issues
    memory operations; both issue integer scalar operations. An instruction
    sequence that balances the two pipelines and avoids read-after-write
    hazards retires one instruction per pipeline per cycle — the property the
    paper's hand-written GEMM kernels achieve ("16 vmad operations in 16
    cycles"). The model reports the cycle count of a straight-line block from
    its per-pipeline instruction counts and an explicit stall estimate. *)

type block = {
  p0_ops : int;  (** floating-point / vector arithmetic instructions *)
  p1_ops : int;  (** memory (load/store) instructions *)
  flexible_ops : int;  (** integer scalar ops, schedulable on either pipeline *)
  raw_stalls : int;  (** cycles lost to unhidden read-after-write hazards *)
}

val block : ?flexible_ops:int -> ?raw_stalls:int -> p0_ops:int -> p1_ops:int -> unit -> block

val cycles : block -> int
(** Issue cycles of the block: the flexible ops fill whichever pipeline has
    slack, then the longer pipeline plus stalls bounds the block. *)

val utilization : block -> float
(** Fraction of issue slots doing useful work, in (0, 1]. *)
