type request = { name : string; bytes : int; double_buffered : bool }
type slot = { slot_name : string; offset : int; slot_bytes : int }
type plan = { slots : slot list; used_bytes : int; capacity : int }

let alignment = 64

let request ?(double_buffered = false) ~name ~bytes () =
  if bytes < 0 then invalid_arg "Spm.request: negative size";
  { name; bytes; double_buffered }

let slot_bytes r =
  let b = Prelude.Ints.align_up r.bytes alignment in
  if r.double_buffered then 2 * b else b

let footprint reqs = List.fold_left (fun acc r -> acc + slot_bytes r) 0 reqs
let fits ?(capacity = Config.spm_bytes) reqs = footprint reqs <= capacity

let plan ?(capacity = Config.spm_bytes) reqs =
  let names = List.map (fun r -> r.name) reqs in
  let dup = List.exists (fun n -> List.length (List.filter (String.equal n) names) > 1) names in
  if dup then Error "Spm.plan: duplicate buffer names"
  else begin
    let offset = ref 0 in
    let alloc r =
      let s = { slot_name = r.name; offset = !offset; slot_bytes = slot_bytes r } in
      offset := !offset + s.slot_bytes;
      s
    in
    let slots = List.map alloc reqs in
    if !offset > capacity then
      Error
        (Printf.sprintf "Spm.plan: %d bytes requested, %d available" !offset capacity)
    else Ok { slots; used_bytes = !offset; capacity }
  end

let find_slot p name = List.find_opt (fun s -> String.equal s.slot_name name) p.slots
