type block = { p0_ops : int; p1_ops : int; flexible_ops : int; raw_stalls : int }

let block ?(flexible_ops = 0) ?(raw_stalls = 0) ~p0_ops ~p1_ops () =
  if p0_ops < 0 || p1_ops < 0 || flexible_ops < 0 || raw_stalls < 0 then
    invalid_arg "Pipeline.block: negative count";
  { p0_ops; p1_ops; flexible_ops; raw_stalls }

let cycles b =
  let hi = max b.p0_ops b.p1_ops and lo = min b.p0_ops b.p1_ops in
  let slack = hi - lo in
  (* Flexible ops first fill the shorter pipeline's slack for free, then the
     remainder is split evenly across both pipelines. *)
  let overflow = max 0 (b.flexible_ops - slack) in
  hi + Prelude.Ints.ceil_div overflow 2 + b.raw_stalls

let utilization b =
  let c = cycles b in
  if c = 0 then 1.0
  else
    let useful = b.p0_ops + b.p1_ops + b.flexible_ops in
    Float.min 1.0 (float_of_int useful /. float_of_int (2 * c))
