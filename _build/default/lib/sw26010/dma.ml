type direction = Mem_to_spm | Spm_to_mem

type descriptor = {
  offset_bytes : int;
  block_bytes : int;
  stride_bytes : int;
  block_count : int;
}

let descriptor ~offset_bytes ~block_bytes ~stride_bytes ~block_count =
  if offset_bytes < 0 || block_bytes < 0 || block_count < 0 then
    invalid_arg "Dma.descriptor: negative field";
  if block_count > 1 && stride_bytes < block_bytes then
    invalid_arg "Dma.descriptor: overlapping stride";
  { offset_bytes; block_bytes; stride_bytes; block_count }

let contiguous ~offset_bytes ~bytes =
  descriptor ~offset_bytes ~block_bytes:bytes ~stride_bytes:bytes ~block_count:1

let payload_bytes d = d.block_bytes * d.block_count

let block_transaction_bytes ~start ~bytes =
  if bytes = 0 then 0
  else
    let t = Config.dram_transaction_bytes in
    Prelude.Ints.align_up (start + bytes) t - Prelude.Ints.align_down start t

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let transaction_bytes d =
  if d.block_count = 0 || d.block_bytes = 0 then 0
  else begin
    (* The per-block waste depends only on (offset + i*stride) mod 128,
       which cycles with period 128/gcd(stride,128): sum one period and
       multiply instead of walking every block. *)
    let t = Config.dram_transaction_bytes in
    let phase = d.stride_bytes mod t in
    let period = if phase = 0 then 1 else t / gcd t phase in
    let period = Prelude.Ints.clamp ~lo:1 ~hi:d.block_count period in
    let sum_range count =
      let total = ref 0 in
      for i = 0 to count - 1 do
        let start = d.offset_bytes + (i * d.stride_bytes) in
        total := !total + block_transaction_bytes ~start ~bytes:d.block_bytes
      done;
      !total
    in
    let full = d.block_count / period and rem = d.block_count mod period in
    if full <= 1 then sum_range d.block_count
    else (full * sum_range period) + sum_range rem
  end

let waste_bytes d = transaction_bytes d - payload_bytes d

let efficiency d =
  let tx = transaction_bytes d in
  if tx = 0 then 1.0 else float_of_int (payload_bytes d) /. float_of_int tx

let per_cpe_bw = Config.dma_peak_bw /. float_of_int Config.cpes_per_cg

let time_one_cpe d =
  if payload_bytes d = 0 then 0.0
  else Config.dma_latency_s +. (float_of_int (transaction_bytes d) /. per_cpe_bw)

let time_cg descs =
  let slowest = Array.fold_left (fun acc d -> max acc (transaction_bytes d)) 0 descs in
  if slowest = 0 then 0.0
  else Config.dma_latency_s +. (float_of_int slowest /. per_cpe_bw)

let time_uniform_cg d = time_one_cpe d

module Engine = struct
  (* Reply words are small integer tags; completions live in a growable
     array (neg_infinity = no outstanding transfer) because issue/wait sit
     on the interpreter's innermost path. *)
  type t = { mutable free_at : float; mutable pending : float array }

  let create () = { free_at = 0.0; pending = Array.make 16 neg_infinity }

  let reset t =
    t.free_at <- 0.0;
    Array.fill t.pending 0 (Array.length t.pending) neg_infinity

  let ensure t tag =
    if tag >= Array.length t.pending then begin
      let bigger = Array.make (max (tag + 1) (2 * Array.length t.pending)) neg_infinity in
      Array.blit t.pending 0 bigger 0 (Array.length t.pending);
      t.pending <- bigger
    end

  let issue t ~now ~tag ~occupancy ~latency =
    if tag < 0 then invalid_arg "Dma.Engine.issue: negative tag";
    ensure t tag;
    let start = Float.max now t.free_at in
    t.free_at <- start +. occupancy;
    let completion = start +. occupancy +. latency in
    if completion > t.pending.(tag) then t.pending.(tag) <- completion

  let wait t ~now ~tag =
    if tag < 0 || tag >= Array.length t.pending then now
    else begin
      let completion = t.pending.(tag) in
      if completion = neg_infinity then now
      else begin
        t.pending.(tag) <- neg_infinity;
        Float.max now completion
      end
    end

  let busy_until t = t.free_at
end
