lib/sw26010/config.ml:
