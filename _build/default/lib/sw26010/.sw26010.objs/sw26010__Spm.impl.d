lib/sw26010/spm.ml: Config List Prelude Printf String
