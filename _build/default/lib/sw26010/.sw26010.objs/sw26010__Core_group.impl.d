lib/sw26010/core_group.ml: Config Dma
