lib/sw26010/pipeline.mli:
