lib/sw26010/spm.mli:
