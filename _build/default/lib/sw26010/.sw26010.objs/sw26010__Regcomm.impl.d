lib/sw26010/regcomm.ml: Config
