lib/sw26010/core_group.mli:
