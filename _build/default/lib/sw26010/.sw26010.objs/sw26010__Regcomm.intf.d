lib/sw26010/regcomm.mli:
