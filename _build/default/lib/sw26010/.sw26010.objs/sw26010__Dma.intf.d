lib/sw26010/dma.mli:
