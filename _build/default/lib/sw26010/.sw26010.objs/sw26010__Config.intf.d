lib/sw26010/config.mli:
