lib/sw26010/dma.ml: Array Config Float Prelude
