lib/sw26010/pipeline.ml: Float Prelude
