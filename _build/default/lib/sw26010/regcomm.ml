type pattern = Row_broadcast | Col_broadcast

let per_cpe_bw = Config.regcomm_bw /. float_of_int Config.cpes_per_cg

let broadcast_cycles ~bytes =
  if bytes = 0 then 0.0
  else float_of_int bytes /. per_cpe_bw *. Config.freq_hz

let switch_cycles = Config.regcomm_switch_cycles

let phase_cycles ~switches ~bytes_per_cpe =
  broadcast_cycles ~bytes:bytes_per_cpe +. float_of_int (switches * switch_cycles)
