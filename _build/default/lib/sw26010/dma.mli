(** DMA engine model: strided descriptors, DRAM-transaction cost accounting
    (Eq. 1 of the paper) and an asynchronous-completion engine used by the
    discrete-event interpreter.

    A descriptor describes one CPE's view of a transfer: [block_count]
    contiguous blocks of [block_bytes], the i-th block starting at main-memory
    offset [offset_bytes + i * stride_bytes]. [stride_bytes = block_bytes]
    degenerates to a fully contiguous transfer. Main memory is reached in
    128-byte DRAM transactions, so each block additionally moves the waste
    padded on its left and right transaction boundaries. *)

type direction = Mem_to_spm | Spm_to_mem

type descriptor = {
  offset_bytes : int;
  block_bytes : int;
  stride_bytes : int;
  block_count : int;
}

val descriptor :
  offset_bytes:int -> block_bytes:int -> stride_bytes:int -> block_count:int -> descriptor
(** Validates the shape: sizes non-negative, [stride_bytes >= block_bytes]
    when [block_count > 1]. *)

val contiguous : offset_bytes:int -> bytes:int -> descriptor

val payload_bytes : descriptor -> int
(** Useful bytes requested. *)

val waste_bytes : descriptor -> int
(** Bytes moved solely because of 128-byte transaction alignment, i.e. the
    sum of the per-block left/right padding of Eq. (1). *)

val transaction_bytes : descriptor -> int
(** [payload_bytes + waste_bytes]. *)

val efficiency : descriptor -> float
(** [payload / transaction] in (0, 1]. *)

val time_one_cpe : descriptor -> float
(** Eq. (1) for a single CPE participating in a 64-CPE collective transfer:
    start-up latency plus transaction bytes over the per-CPE bandwidth share
    [PEAK_BW / 64]. *)

val time_cg : descriptor array -> float
(** Completion time of a CG-collective DMA where CPE [i] executes
    [descs.(i)]: the latency plus the slowest CPE's transmission term. *)

val time_uniform_cg : descriptor -> float
(** [time_cg] when all 64 CPEs execute descriptors of identical shape. *)

(** Asynchronous engine: transfers issued on one CPE's DMA engine serialize;
    completion of a tagged transfer is observed by [wait]. *)
module Engine : sig
  type t

  val create : unit -> t
  val reset : t -> unit

  val issue : t -> now:float -> tag:int -> occupancy:float -> latency:float -> unit
  (** Enqueue a transfer at simulated time [now]. The engine is busy for
      [occupancy] (the transmission term); the reply word fires [latency]
      later (start-up delay) — back-to-back transfers pipeline their
      latencies, as real descriptor queues do. Several outstanding
      transfers may share a tag (reply-word semantics): [wait] returns the
      completion time of the last of them. *)

  val wait : t -> now:float -> tag:int -> float
  (** Time at which the caller resumes: [max now (completion tag)]. Returns
      [now] for a tag with no outstanding transfer. The tag is consumed. *)

  val busy_until : t -> float
end
