type payload = { main : float array; main_offset : int; spm : float array; spm_offset : int }

let elem = Sw26010.Config.elem_bytes

let copy_payload ~(dir : Sw26010.Dma.direction) ~(desc : Sw26010.Dma.descriptor) p =
  if desc.block_bytes mod elem <> 0 || desc.stride_bytes mod elem <> 0 then
    invalid_arg "Dma_prim: descriptor not element-aligned";
  let block_elems = desc.block_bytes / elem in
  let stride_elems = desc.stride_bytes / elem in
  for i = 0 to desc.block_count - 1 do
    let main_at = p.main_offset + (i * stride_elems) in
    let spm_at = p.spm_offset + (i * block_elems) in
    match dir with
    | Sw26010.Dma.Mem_to_spm -> Array.blit p.main main_at p.spm spm_at block_elems
    | Sw26010.Dma.Spm_to_mem -> Array.blit p.spm spm_at p.main main_at block_elems
  done

let time ~desc = Sw26010.Dma.time_uniform_cg desc

let issue cg ~dir ~desc ~tag ?payload () =
  (match payload with Some p -> copy_payload ~dir ~desc p | None -> ());
  let occupancy = time ~desc -. Sw26010.Config.dma_latency_s in
  Sw26010.Core_group.issue_dma cg ~tag ~occupancy:(Float.max 0.0 occupancy)
    ~latency:Sw26010.Config.dma_latency_s

let wait cg ~tag = Sw26010.Core_group.wait_dma cg ~tag
