(** The tensorized GEMM primitive: [C += A * B] with all operands resident in
    SPM, distributed over the 8x8 CPE cluster.

    This models the paper's hand-written assembly micro-kernels (Appendix,
    Sec. 9): matrices partitioned 8x8 across the cluster, remote tiles
    fetched by register communication, 4x4 register blocking over 4-wide
    vectors, and a dual-pipeline schedule that retires 16 vmads in 16 cycles
    with no read-after-write stalls in the innermost loop.

    Eight variants exist: A row/column major x B row/column major x
    vectorize-M / vectorize-N. All variants compute the same function; they
    differ in cost (and in which layouts they accept without repacking).

    The module provides both the numeric execution (exact result, used by the
    IR interpreter in numeric mode) and the cycle model (used for simulated
    timing and as the ground truth the autotuner's Eq. 2 linear model is
    fitted against). *)

type major = Row_major | Col_major
type vec_dim = Vec_m | Vec_n

type variant = { a_major : major; b_major : major; vec : vec_dim }

val all_variants : variant list
(** The eight template-generated kernels. *)

val variant_name : variant -> string
(** Stable identifier, e.g. ["spm_gemm_arm_brm_vm"]; used by the code
    generator to reference the assembly kernel. *)

val variant_of_name : string -> variant option

(** Call-site description. [a] is logically (m, k) stored with leading
    dimension [lda] under [a_major] ([lda >= k] for row major, [>= m] for
    column major); [b] is (k, n) likewise; [c] is (m, n) row-major with
    [ldc >= n]. *)
type call = {
  variant : variant;
  m : int;
  n : int;
  k : int;
  lda : int;
  ldb : int;
  ldc : int;
}

val call :
  variant:variant -> m:int -> n:int -> k:int -> lda:int -> ldb:int -> ldc:int -> call
(** Validates dimensions and leading dimensions. *)

val exec :
  call -> a:float array -> ao:int -> b:float array -> bo:int -> c:float array -> co:int -> unit
(** Numeric [C += A * B]; [ao]/[bo]/[co] are element offsets of each operand
    inside its SPM buffer. *)

val cycles : call -> float
(** Per-CPE cycle count of the collective kernel (all CPEs run in lockstep,
    so this is also the cluster's wall-clock in cycles). *)

val seconds : call -> float

val flops : call -> float
(** Useful FLOPs of the call (whole cluster). *)

val efficiency : call -> float
(** [flops / (seconds * peak)]. *)

val spm_elems_a : call -> int
val spm_elems_b : call -> int
val spm_elems_c : call -> int
(** Per-CPE SPM footprint (elements) of each operand tile, including the
    padding the 8x8 partition imposes on ragged dimensions. *)
