(** The tensorized DMA primitives: [swDMA] / [swDMAWait] of Sec. 4.1.

    A transfer moves data between a main-memory buffer and an SPM buffer
    through the core group's asynchronous DMA engine; completion is observed
    by waiting on a reply word (modelled as an integer tag). Timing follows
    the transaction-level model of [Sw26010.Dma]; the payload copy itself is
    optional so the tuners can replay programs in cost-only mode. *)

type payload = {
  main : float array;  (** main-memory backing store *)
  main_offset : int;  (** element offset of the first block *)
  spm : float array;  (** CG-level SPM backing store *)
  spm_offset : int;
}

val issue :
  Sw26010.Core_group.t ->
  dir:Sw26010.Dma.direction ->
  desc:Sw26010.Dma.descriptor ->
  tag:int ->
  ?payload:payload ->
  unit ->
  unit
(** Launch an asynchronous CG-collective transfer described (per CPE) by
    [desc]. When [payload] is given, [block_count * block_bytes] worth of
    elements are copied immediately (the program is race-free by
    construction: every read of the data is preceded by [wait]).

    Note [desc] carries *bytes*; payload offsets are in elements, and the
    SPM side is always contiguous. *)

val wait : Sw26010.Core_group.t -> tag:int -> unit

val time : desc:Sw26010.Dma.descriptor -> float
(** Simulated duration of the transfer (Eq. 1). *)
