lib/primitives/dma_prim.ml: Array Float Sw26010
