lib/primitives/dma_prim.mli: Sw26010
