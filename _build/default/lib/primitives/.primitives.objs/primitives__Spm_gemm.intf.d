lib/primitives/spm_gemm.mli:
