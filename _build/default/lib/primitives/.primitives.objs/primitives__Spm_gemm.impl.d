lib/primitives/spm_gemm.ml: Array List Prelude Printf String Sw26010
