type major = Row_major | Col_major
type vec_dim = Vec_m | Vec_n
type variant = { a_major : major; b_major : major; vec : vec_dim }

let all_variants =
  let majors = [ Row_major; Col_major ] and vecs = [ Vec_m; Vec_n ] in
  List.concat_map
    (fun a_major ->
      List.concat_map (fun b_major -> List.map (fun vec -> { a_major; b_major; vec }) vecs) majors)
    majors

let major_tag prefix = function Row_major -> prefix ^ "rm" | Col_major -> prefix ^ "cm"
let vec_tag = function Vec_m -> "vm" | Vec_n -> "vn"

let variant_name v =
  Printf.sprintf "spm_gemm_%s_%s_%s" (major_tag "a" v.a_major) (major_tag "b" v.b_major)
    (vec_tag v.vec)

let variant_of_name name = List.find_opt (fun v -> String.equal (variant_name v) name) all_variants

type call = { variant : variant; m : int; n : int; k : int; lda : int; ldb : int; ldc : int }

let call ~variant ~m ~n ~k ~lda ~ldb ~ldc =
  if m <= 0 || n <= 0 || k <= 0 then invalid_arg "Spm_gemm.call: non-positive dimension";
  let min_lda = match variant.a_major with Row_major -> k | Col_major -> m in
  let min_ldb = match variant.b_major with Row_major -> n | Col_major -> k in
  if lda < min_lda then invalid_arg "Spm_gemm.call: lda too small";
  if ldb < min_ldb then invalid_arg "Spm_gemm.call: ldb too small";
  if ldc < n then invalid_arg "Spm_gemm.call: ldc too small";
  { variant; m; n; k; lda; ldb; ldc }

let exec { variant; m; n; k; lda; ldb; ldc } ~a ~ao ~b ~bo ~c ~co =
  let a_at i p =
    match variant.a_major with
    | Row_major -> a.(ao + (i * lda) + p)
    | Col_major -> a.(ao + (p * lda) + i)
  in
  let b_at p j =
    match variant.b_major with
    | Row_major -> b.(bo + (p * ldb) + j)
    | Col_major -> b.(bo + (j * ldb) + p)
  in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for p = 0 to k - 1 do
        acc := !acc +. (a_at i p *. b_at p j)
      done;
      let idx = co + (i * ldc) + j in
      c.(idx) <- c.(idx) +. !acc
    done
  done

(* ------------------------------------------------------------------ *)
(* Cycle model.

   Per-CPE tile: mp x np with k panels. The register block covers 16
   elements along the vectorized dimension (4 vector registers of 4 lanes)
   and 4 along the other, i.e. 16 C vectors pinned in registers.

   Innermost loop (over k): 16 vmads on P0; A/B vector loads and register-
   communication loads on P1 (4 vector loads along the vectorized dimension
   + 4 broadcast-extend loads along the other). P0 dominates: 16 cycles per
   k step, as in the paper's appendix.

   Per register block: C tile load/store (32 P1 ops), address arithmetic,
   pipeline refill, plus one register-communication pattern switch.

   Per call: kernel entry/exit, reply-word synchronisation, and the initial
   communication pattern set-up.

   Non-row-major C is free (C never moves); operand majors that disagree
   with the broadcast direction pay a small extra load per k step because
   the remote tile arrives transposed with respect to the vector lanes. *)

let reg_block_vec = 16
let reg_block_other = 4

let block_overhead_cycles ~transposed_operands =
  let base =
    Sw26010.Pipeline.(
      cycles (block ~flexible_ops:10 ~raw_stalls:6 ~p0_ops:0 ~p1_ops:32 ()))
  in
  base + Sw26010.Regcomm.switch_cycles + (8 * transposed_operands)

let call_overhead_cycles = 420.0

let partition_dims { variant; m; n; _ } =
  let mp = Prelude.Ints.ceil_div m Sw26010.Config.cpe_rows in
  let np = Prelude.Ints.ceil_div n Sw26010.Config.cpe_cols in
  match variant.vec with Vec_m -> (mp, np) | Vec_n -> (np, mp)

(* A kernel variant natively streams A along rows when A is column major
   (the broadcast bus carries a column of A), and B along columns when B is
   row major; the mismatched combinations shuffle lanes, costing extra P1
   work per register block. *)
let transposed_operands { variant; _ } =
  let a_penalty = match (variant.vec, variant.a_major) with
    | Vec_m, Col_major | Vec_n, Row_major -> 0
    | Vec_m, Row_major | Vec_n, Col_major -> 1
  in
  let b_penalty = match (variant.vec, variant.b_major) with
    | Vec_m, Row_major | Vec_n, Col_major -> 0
    | Vec_m, Col_major | Vec_n, Row_major -> 1
  in
  a_penalty + b_penalty

let cycles ({ k; _ } as call) =
  let vdim, odim = partition_dims call in
  let vblocks = Prelude.Ints.ceil_div vdim reg_block_vec in
  let oblocks = Prelude.Ints.ceil_div odim reg_block_other in
  let blocks = vblocks * oblocks in
  (* Innermost work per k step: one vmad per (vector group, other element)
     pair on P0, against vector loads plus broadcast loads on P1. Full
     register blocks hit the 16-vmads-in-16-cycles schedule; remainder
     blocks take the kernel's shorter masked path, so the cost is
     proportional to the vectors actually touched. *)
  let vec_groups = Prelude.Ints.ceil_div vdim Sw26010.Config.vector_lanes in
  let p0 = vec_groups * odim in
  let p1 = vec_groups + odim + 2 in
  let inner_per_k = max p0 p1 in
  let overhead = block_overhead_cycles ~transposed_operands:(transposed_operands call) in
  (float_of_int k *. float_of_int inner_per_k)
  +. (float_of_int blocks *. float_of_int overhead)
  +. call_overhead_cycles

let seconds call = Sw26010.Config.seconds_of_cycles (cycles call)
let flops { m; n; k; _ } = 2.0 *. float_of_int m *. float_of_int n *. float_of_int k

let efficiency call =
  flops call /. (seconds call *. Sw26010.Config.peak_flops_cg)

(* Operands are partitioned into 64 pieces across the 8x8 grid (Fig. 12);
   ragged dimensions round up to the grid. *)
let grid_piece rows cols =
  Prelude.Ints.ceil_div rows Sw26010.Config.cpe_rows
  * Prelude.Ints.ceil_div cols Sw26010.Config.cpe_cols

let spm_elems_a ({ m; k; _ } : call) = grid_piece m k
let spm_elems_b ({ k; n; _ } : call) = grid_piece k n
let spm_elems_c ({ m; n; _ } : call) = grid_piece m n
