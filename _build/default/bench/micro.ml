(* Bechamel micro-benchmarks of the framework's hot paths — one per
   table/figure driver plus the kernels they lean on. *)

open Bechamel
open Toolkit
open Swatop_ops

let gemm_model = lazy (Swatop.Gemm_cost.fit ())

let spec_mid = Swtensor.Conv_spec.create ~b:32 ~ni:256 ~no:256 ~ro:28 ~co:28 ~kr:3 ~kc:3 ()

let test_kernel_cycles =
  let call =
    Primitives.Spm_gemm.call
      ~variant:{ a_major = Row_major; b_major = Row_major; vec = Vec_m }
      ~m:128 ~n:256 ~k:64 ~lda:64 ~ldb:256 ~ldc:256
  in
  Test.make ~name:"spm_gemm cycle model" (Staged.stage (fun () -> Primitives.Spm_gemm.cycles call))

let test_dma_cost =
  let desc =
    Sw26010.Dma.descriptor ~offset_bytes:4096 ~block_bytes:332 ~stride_bytes:2048 ~block_count:96
  in
  Test.make ~name:"dma transaction model (eq 1)"
    (Staged.stage (fun () -> Sw26010.Dma.transaction_bytes desc))

let test_eq2_fit = Test.make ~name:"eq-2 least-squares fit" (Staged.stage (fun () -> Swatop.Gemm_cost.fit ()))

let test_space_enum =
  let t = Conv_implicit.problem spec_mid in
  Test.make ~name:"implicit space enumeration (table 1)"
    (Staged.stage (fun () -> Conv_implicit.space t))

let test_lowering =
  let t = Conv_implicit.problem spec_mid in
  let s = List.hd (Conv_implicit.space t) in
  Test.make ~name:"lowering + optimizer passes"
    (Staged.stage (fun () -> Swatop.Tuner.prepare (Conv_implicit.build t s)))

let test_cost_model =
  let t = Conv_implicit.problem spec_mid in
  let s = List.hd (Conv_implicit.space t) in
  let p = Swatop.Tuner.prepare (Conv_implicit.build t s) in
  Test.make ~name:"cost model estimate (fig 9)"
    (Staged.stage (fun () -> Swatop.Cost_model.estimate ~gemm_model:(Lazy.force gemm_model) p))

let test_interp =
  let t = Matmul.problem ~m:256 ~n:256 ~k:256 in
  let s = List.hd (Matmul.space t) in
  let p = Swatop.Tuner.prepare (Matmul.build t s) in
  Test.make ~name:"simulated execution, 256^3 gemm (table 2)"
    (Staged.stage (fun () -> Swatop.Interp.run ~numeric:false p))

let test_kernel_numeric =
  let call =
    Primitives.Spm_gemm.call
      ~variant:{ a_major = Row_major; b_major = Row_major; vec = Vec_n }
      ~m:32 ~n:32 ~k:32 ~lda:32 ~ldb:32 ~ldc:32
  in
  let a = Array.make 1024 1.0 and b = Array.make 1024 1.0 and c = Array.make 1024 0.0 in
  Test.make ~name:"spm_gemm numeric execution"
    (Staged.stage (fun () -> Primitives.Spm_gemm.exec call ~a ~ao:0 ~b ~bo:0 ~c ~co:0))

let test_wino_transform =
  let tile = Array.init 16 float_of_int in
  Test.make ~name:"winograd input transform (fig 6)"
    (Staged.stage (fun () -> Swtensor.Winograd_ref.transform_input_tile tile))

let test_codegen =
  let t = Conv_implicit.problem spec_mid in
  let s = List.hd (Conv_implicit.space t) in
  let p = Swatop.Tuner.prepare (Conv_implicit.build t s) in
  Test.make ~name:"C code generation" (Staged.stage (fun () -> Swatop.C_emit.program_exn p))

(* Simpler, deterministic presentation: run each test's staged function and
   report ns/op via Bechamel's measurement machinery. *)
let run () =
  Bench_common.section "Micro-benchmarks (Bechamel, monotonic clock)";
  let tests =
    Test.make_grouped ~name:"swatop"
      [
        test_kernel_cycles;
        test_dma_cost;
        test_space_enum;
        test_lowering;
        test_cost_model;
        test_interp;
        test_kernel_numeric;
        test_wino_transform;
        test_codegen;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]) instance raw_results) instances
  in
  let results = Analyze.merge (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-44s %12.0f ns/op\n" name est
          | _ -> ())
        tbl)
    results
