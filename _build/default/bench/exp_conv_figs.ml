(* Figures 5, 6 and 7: per-layer speedup of swATOP-generated convolution
   over the best manual implementation, on the conv layers of VGG16, ResNet
   and YOLO, at batch sizes 1, 32 and 128. *)

open Bench_common
module N = Workloads.Networks

let batches () = effort_pick ~quick:[ 32 ] ~standard:[ 1; 32; 128 ] ~full:[ 1; 32; 128 ]

let layers_of algo net =
  match algo with
  | Implicit -> N.implicit_layers net
  | Winograd -> N.winograd_layers net
  | Explicit -> N.explicit_layers net

let run_algo algo fig =
  section
    (Printf.sprintf "Fig. %d — %s CONV: swATOP vs %s on CNN layers" fig (algo_name algo)
       (match algo with Implicit -> "swDNN" | _ -> "manual (xMath-based)"));
  List.iter
    (fun net ->
      subsection net.N.net_name;
      Printf.printf "%-10s %5s | %12s %9s %6s | %12s | %8s\n" "layer" "batch" "swATOP" "GFLOPS"
        "eff%" "manual" "speedup";
      List.iter
        (fun batch ->
          let speedups = ref [] in
          let stride = effort_pick ~quick:3 ~standard:1 ~full:1 in
          List.iter
            (fun layer ->
              let spec = N.conv_spec ~batch layer in
              if conv_applicable algo spec then begin
                let tuned = tune_conv algo spec in
                let base = baseline_seconds algo spec in
                let speedup_str, note =
                  match base with
                  | Some b ->
                    speedups := (b /. tuned.seconds) :: !speedups;
                    (Printf.sprintf "%8.2f" (b /. tuned.seconds), Printf.sprintf "%9.3fms" (b *. 1e3))
                  | None -> ("     n/a", "      n/a")
                in
                Printf.printf "%-10s %5d | %10.3fms %9.1f %6.1f | %12s | %s\n" layer.N.l_name
                  batch (tuned.seconds *. 1e3)
                  (gflops tuned.flops tuned.seconds)
                  (pct (efficiency tuned.flops tuned.seconds))
                  note speedup_str
              end)
            (Prelude.Lists.take_every stride (layers_of algo net));
          match !speedups with
          | [] -> ()
          | l -> Printf.printf "  -> batch %d average speedup: %.2fx (geomean %.2fx)\n" batch (mean l) (geomean l))
        (batches ()))
    N.all

let fig5 () = run_algo Implicit 5
let fig6 () = run_algo Winograd 6
let fig7 () = run_algo Explicit 7
