(* Table 2: matrix multiplication on the 559 shapes of Listing 2, swATOP vs
   the xMath fixed schedule, split into aligned and unaligned shapes. *)

open Bench_common
open Swatop_ops

type bucket = {
  mutable faster : int;
  mutable f_gain : float list;
  mutable slower : int;
  mutable s_loss : float list;
}

let bucket () = { faster = 0; f_gain = []; slower = 0; s_loss = [] }

let tune_gemm ?(top_k = 4) t =
  let space = Matmul.space t in
  Swatop.Tuner.model_tune ~top_k ~gemm_model:(Lazy.force gemm_model) ~candidates:space
    ~build:(Matmul.build t) ()

let run_shapes label shapes =
  let b = bucket () in
  List.iter
    (fun (m, n, k) ->
      let t = Matmul.problem ~m ~n ~k in
      let tuned = tune_gemm t in
      let base = measure_seconds (Swatop.Tuner.prepare (Baselines.Xmath.gemm_build t)) in
      let ratio = base /. tuned.best_seconds in
      if ratio >= 1.0 then begin
        b.faster <- b.faster + 1;
        b.f_gain <- (ratio -. 1.0) :: b.f_gain
      end
      else begin
        b.slower <- b.slower + 1;
        b.s_loss <- (1.0 -. (tuned.best_seconds /. base)) :: b.s_loss
      end)
    shapes;
  let avg = function [] -> 0.0 | l -> mean l in
  Printf.printf "%-10s | faster %4d (avg %+6.1f%%) | slower %4d (avg %6.1f%%)\n" label b.faster
    (pct (avg b.f_gain))
    b.slower
    (-.pct (avg b.s_loss))

let run () =
  section "Table 2 — matrix multiplication vs xMath (Listing 2)";
  let stride = effort_pick ~quick:12 ~standard:3 ~full:1 in
  let aligned = Prelude.Lists.take_every stride Workloads.Sweeps.listing2_aligned in
  let unaligned = Prelude.Lists.take_every stride Workloads.Sweeps.listing2_unaligned in
  if stride > 1 then
    Printf.printf "(every %dth of the %d shapes; run with --full for all)\n" stride
      (List.length Workloads.Sweeps.listing2);
  run_shapes "Aligned" aligned;
  run_shapes "Unaligned" unaligned
