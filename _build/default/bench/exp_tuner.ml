(* Table 3 + Fig. 9: autotuner evaluation.

   Table 3 compares tuning costs of the black-box brute-force tuner (which
   executes every schedule of the space) against swATOP's performance-model
   tuner on the implicit-convolution spaces of the three CNNs. Two costs are
   reported per tuner: the SW26010 time the tuning would occupy (runs plus
   per-candidate compilation, the quantity behind the paper's hours/days)
   and the host wall-clock this reproduction actually spent.

   Fig. 9 measures choice quality: the ratio of the true best schedule's
   time to the model-picked schedule's time over the Listing-1 sweep. *)

open Bench_common
open Swatop_ops
module N = Workloads.Networks

let batch = 32

let table3 () =
  section "Table 3 — tuning time of Implicit CONV, black-box vs swATOP";
  let sample = effort_pick ~quick:63 ~standard:17 ~full:1 in
  if sample > 1 then
    Printf.printf "(black-box measures every %dth candidate and extrapolates; --full runs all)\n"
      sample;
  Printf.printf "%-8s | %9s %9s | %18s %12s | %18s %12s | %9s\n" "network" "space" "avg" "bb hw time"
    "bb wall" "swATOP hw" "swATOP wall" "speedup";
  List.iter
    (fun net ->
      let layers = N.implicit_layers net in
      let totals = ref (0, 0.0, 0.0, 0.0, 0.0) in
      List.iter
        (fun layer ->
          let spec = N.conv_spec ~batch layer in
          let t = Conv_implicit.problem spec in
          let space = Conv_implicit.space t in
          let bb =
            Swatop.Tuner.blackbox_tune ~sample_every:sample ~candidates:space
              ~build:(Conv_implicit.build t) ()
          in
          let mt =
            Swatop.Tuner.model_tune ~gemm_model:(Lazy.force gemm_model) ~candidates:space
              ~build:(Conv_implicit.build t) ()
          in
          let reps = float_of_int layer.N.repeat in
          let sz, bh, bw, mh, mw = !totals in
          totals :=
            ( sz + (layer.N.repeat * List.length space),
              bh +. (reps *. bb.report.hardware_seconds),
              bw +. (reps *. bb.report.wall_seconds),
              mh +. (reps *. mt.report.hardware_seconds),
              mw +. (reps *. mt.report.wall_seconds) ))
        layers;
      let sz, bh, bw, mh, mw = !totals in
      let n_layers = List.fold_left (fun acc l -> acc + l.N.repeat) 0 layers in
      Printf.printf "%-8s | %9d %9.1f | %18s %12s | %18s %12s | %8.0fx\n" net.N.net_name sz
        (float_of_int sz /. float_of_int n_layers)
        (hms bh) (hms bw) (hms mh) (hms mw) (bh /. mh))
    N.all;
  Printf.printf
    "\n(hw time: simulated SW26010 occupancy incl. %gs compile per candidate; wall: host CPU.)\n"
    Swatop.Tuner.per_candidate_compile_seconds

let fig9 () =
  section "Fig. 9 — model-picked performance vs brute-force best (Listing 1, implicit)";
  let stride = effort_pick ~quick:25 ~standard:15 ~full:1 in
  let configs = Prelude.Lists.take_every stride (Workloads.Sweeps.listing1 ~batch) in
  if stride > 1 then
    Printf.printf "(every %dth of the 75 configurations; --full runs all)\n" stride;
  let ratios =
    List.map
      (fun spec ->
        let t = Conv_implicit.problem spec in
        let space = Conv_implicit.space t in
        let mt =
          Swatop.Tuner.model_tune ~gemm_model:(Lazy.force gemm_model) ~candidates:space
            ~build:(Conv_implicit.build t) ()
        in
        let bb = Swatop.Tuner.blackbox_tune ~repetitions:1 ~candidates:space
            ~build:(Conv_implicit.build t) ()
        in
        let ratio = bb.best_seconds /. mt.best_seconds in
        Printf.printf "  %-46s ratio %.3f\n%!" (Swtensor.Conv_spec.to_string spec) ratio;
        ratio)
      configs
  in
  let worst = List.fold_left Float.min 1.0 ratios in
  Printf.printf "average performance of model pick vs true best: %.1f%% (worst case %.1f%%)\n"
    (pct (mean ratios)) (pct worst);
  Printf.printf "average performance loss: %.1f%% (paper: < 2%% avg, < 8%% worst)\n"
    (pct (1.0 -. mean ratios))
