(* Ablation benches for the design choices called out in DESIGN.md: each
   fixes one schedule dimension and lets the tuner optimize the rest, so
   the delta isolates that dimension's contribution. *)

open Bench_common
open Swatop_ops

let tune_subspace t space =
  match space with
  | [] -> None
  | _ ->
    let o =
      Swatop.Tuner.model_tune ~top_k:2 ~gemm_model:(Lazy.force gemm_model) ~candidates:space
        ~build:(Conv_implicit.build t) ()
    in
    Some o.best_seconds

(* Restricting a schedule dimension to its best fixed value often costs
   nothing (the tuner would have picked it); the interesting number is the
   cost of hard-coding the *wrong* value — what a handcrafted library that
   guessed badly would pay. Both are reported. *)
let implicit_ablation name pred =
  (* Skewed channel ratios and a batch-1 case: the shapes where each
     schedule dimension can actually matter. *)
  let specs =
    [
      Swtensor.Conv_spec.create ~b:32 ~ni:256 ~no:256 ~ro:64 ~co:64 ~kr:3 ~kc:3 ();
      Swtensor.Conv_spec.create ~b:32 ~ni:512 ~no:64 ~ro:32 ~co:32 ~kr:3 ~kc:3 ();
      Swtensor.Conv_spec.create ~b:32 ~ni:64 ~no:512 ~ro:32 ~co:32 ~kr:3 ~kc:3 ();
      Swtensor.Conv_spec.create ~b:1 ~ni:128 ~no:128 ~ro:64 ~co:64 ~kr:3 ~kc:3 ();
      Swtensor.Conv_spec.create ~b:128 ~ni:512 ~no:384 ~ro:32 ~co:32 ~kr:3 ~kc:3 ();
    ]
  in
  let deltas =
    List.filter_map
      (fun spec ->
        let t = Conv_implicit.problem spec in
        let space = Conv_implicit.space t in
        let full = tune_subspace t space in
        let restricted = tune_subspace t (List.filter pred space) in
        match (full, restricted) with
        | Some f, Some r -> Some (r /. f)
        | _ -> None)
      specs
  in
  match deltas with
  | [] -> Printf.printf "%-34s   (dimension always required)\n" name
  | l -> Printf.printf "%-34s   %.2fx vs free choice (geomean)\n" name (geomean l)

let implicit_ablation2 name preds =
  let results = List.map (fun (label, pred) -> (label, pred)) preds in
  ignore results;
  List.iter (fun (label, pred) -> implicit_ablation (name ^ " = " ^ label) pred) preds

let run () =
  section "Ablations — cost of removing one schedule dimension (implicit CONV)";
  Printf.printf "(tuner re-optimizes the remaining dimensions; > 1.00x means the\n";
  Printf.printf " restriction costs performance, ~1.00x means the dimension is a\n";
  Printf.printf " near-tie on these shapes and the tuner would recover either way)\n\n";
  implicit_ablation2 "fix vectorization"
    [
      ("N", fun s -> s.Conv_implicit.vec = Primitives.Spm_gemm.Vec_n);
      ("M", fun s -> s.Conv_implicit.vec = Primitives.Spm_gemm.Vec_m);
    ];
  implicit_ablation2 "fix weight layout"
    [ ("OI", fun s -> s.Conv_implicit.w_oi); ("IO", fun s -> not s.Conv_implicit.w_oi) ];
  implicit_ablation "fix loop order (ro.khw.ni)" (fun s ->
      s.Conv_implicit.pixel_order = Conv_implicit.Ro_outer
      && s.Conv_implicit.reduce_order = Conv_implicit.Taps_then_ni);
  implicit_ablation "drop row-slab tiles (cols only)" (fun s ->
      match s.Conv_implicit.tile with Conv_implicit.Col_tile _ -> true | Conv_implicit.Row_slab _ -> false);
  subsection "Winograd batch fusion (Sec. 4.3.1 loop fusion)";
  let spec = Swtensor.Conv_spec.create ~b:32 ~ni:128 ~no:128 ~ro:14 ~co:14 ~kr:3 ~kc:3 () in
  let t = Conv_winograd.problem spec in
  let o =
    Swatop.Tuner.model_tune ~top_k:2 ~gemm_model:(Lazy.force gemm_model)
      ~candidates:(Conv_winograd.space t) ~build:(Conv_winograd.build t) ()
  in
  let unfused =
    measure_seconds
      (Swatop.Tuner.prepare (Conv_winograd.build t { o.best with fuse_batch = false }))
  in
  Printf.printf "fused %.3fms vs unfused %.3fms: fusion is %.2fx faster\n" (o.best_seconds *. 1e3)
    (unfused *. 1e3) (unfused /. o.best_seconds);
  subsection "Explicit im2col structure";
  let spec = Swtensor.Conv_spec.create ~b:32 ~ni:256 ~no:256 ~ro:28 ~co:28 ~kr:3 ~kc:3 () in
  let t = Conv_explicit.problem spec in
  let o =
    Swatop.Tuner.model_tune ~top_k:2 ~gemm_model:(Lazy.force gemm_model)
      ~candidates:(Conv_explicit.space t) ~build:(Conv_explicit.build t) ()
  in
  let naive =
    measure_seconds
      (Swatop.Tuner.prepare (Conv_explicit.build t { o.best with slab_im2col = false }))
  in
  Printf.printf "slab %.3fms vs naive %.3fms: slab im2col is %.2fx faster\n"
    (o.best_seconds *. 1e3) (naive *. 1e3) (naive /. o.best_seconds)
