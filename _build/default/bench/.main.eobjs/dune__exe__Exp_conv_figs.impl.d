bench/exp_conv_figs.ml: Bench_common List Prelude Printf Workloads
