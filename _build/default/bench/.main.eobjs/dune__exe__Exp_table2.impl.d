bench/exp_table2.ml: Baselines Bench_common Lazy List Matmul Prelude Printf Swatop Swatop_ops Workloads
