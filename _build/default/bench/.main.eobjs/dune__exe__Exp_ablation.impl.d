bench/exp_ablation.ml: Bench_common Conv_explicit Conv_implicit Conv_winograd Lazy List Primitives Printf Swatop Swatop_ops Swtensor
