bench/bench_common.ml: Baselines Conv_explicit Conv_implicit Conv_winograd Lazy Option Prelude Printf String Sw26010 Swatop Swatop_ops Swtensor
