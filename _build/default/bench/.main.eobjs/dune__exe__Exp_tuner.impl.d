bench/exp_tuner.ml: Bench_common Conv_implicit Float Lazy List Prelude Printf Swatop Swatop_ops Swtensor Workloads
