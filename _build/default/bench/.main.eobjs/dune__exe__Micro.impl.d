bench/micro.ml: Analyze Array Bechamel Bench_common Benchmark Conv_implicit Hashtbl Instance Lazy List Matmul Measure Primitives Printf Staged Sw26010 Swatop Swatop_ops Swtensor Test Time Toolkit
