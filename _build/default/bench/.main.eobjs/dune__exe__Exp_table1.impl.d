bench/exp_table1.ml: Bench_common Float Hashtbl List Prelude Printf Workloads
