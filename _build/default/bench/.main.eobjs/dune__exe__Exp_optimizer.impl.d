bench/exp_optimizer.ml: Bench_common Conv_implicit Lazy List Matmul Op_common Prelude Printf Swatop Swatop_ops Swtensor Workloads
