bench/main.mli:
