bench/main.ml: Array Bench_common Exp_ablation Exp_conv_figs Exp_optimizer Exp_table1 Exp_table2 Exp_tuner List Micro Printf String Sw26010 Sys
