(* Table 1 + Fig. 8: the 75-configuration versatility sweep (Listing 1) per
   batch size — faster/slower counts and average speedups against the best
   manual implementation, and the absolute throughput/efficiency of the
   three convolution algorithms. *)

open Bench_common

type cell = { mutable faster : int; mutable slower : int; mutable gains : float list; mutable losses : float list }

let cell () = { faster = 0; slower = 0; gains = []; losses = [] }

let run () =
  section "Table 1 — 225 parameter configurations (Listing 1): swATOP vs best manual";
  let algos = [ Implicit; Explicit; Winograd ] in
  let perf : (algo * int, float list ref) Hashtbl.t = Hashtbl.create 16 in
  let perf_of algo batch =
    match Hashtbl.find_opt perf (algo, batch) with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace perf (algo, batch) r;
      r
  in
  let stride = effort_pick ~quick:15 ~standard:3 ~full:1 in
  Printf.printf "%-9s %6s | %7s %16s | %7s %16s | %6s\n" "algo" "batch" "faster" "avg gain" "slower"
    "avg loss" "cases";
  List.iter
    (fun batch ->
      let configs = Prelude.Lists.take_every stride (Workloads.Sweeps.listing1 ~batch) in
      List.iter
        (fun algo ->
          let c = cell () in
          List.iter
            (fun spec ->
              if conv_applicable algo spec then begin
                let tuned = tune_conv algo spec in
                let eff = efficiency tuned.flops tuned.seconds in
                let r = perf_of algo batch in
                r := eff :: !r;
                match baseline_seconds algo spec with
                | None -> ()
                | Some base ->
                  let ratio = base /. tuned.seconds in
                  if ratio >= 1.0 then begin
                    c.faster <- c.faster + 1;
                    c.gains <- (ratio -. 1.0) :: c.gains
                  end
                  else begin
                    c.slower <- c.slower + 1;
                    c.losses <- (1.0 -. (tuned.seconds /. base)) :: c.losses
                  end
              end)
            configs;
          let avg = function [] -> 0.0 | l -> mean l in
          let compared = c.faster + c.slower in
          if compared > 0 then
            Printf.printf "%-9s %6d | %7d %+15.1f%% | %7d %15.1f%% | %6d\n" (algo_name algo) batch
              c.faster
              (pct (avg c.gains))
              c.slower
              (-.pct (avg c.losses))
              compared
          else Printf.printf "%-9s %6d | %7s (no manual baseline at this batch)\n" (algo_name algo) batch "n/a")
        algos)
    Workloads.Sweeps.listing1_batches;
  section "Fig. 8 — overall performance and efficiency over the Listing-1 sweep";
  Printf.printf "%-9s %6s | %10s %8s | %10s %8s\n" "algo" "batch" "mean TF/s" "eff%" "best TF/s"
    "eff%";
  List.iter
    (fun algo ->
      List.iter
        (fun batch ->
          match Hashtbl.find_opt perf (algo, batch) with
          | None | Some { contents = [] } -> ()
          | Some { contents = effs } ->
            let best = List.fold_left Float.max 0.0 effs in
            Printf.printf "%-9s %6d | %10.2f %8.1f | %10.2f %8.1f\n" (algo_name algo) batch
              (mean effs *. peak /. 1e12)
              (pct (mean effs))
              (best *. peak /. 1e12)
              (pct best))
        Workloads.Sweeps.listing1_batches)
    [ Implicit; Winograd; Explicit ];
  Printf.printf
    "\n(Efficiency counts direct-convolution FLOPs, so Winograd can exceed 100%% — Sec. 5.1.)\n"
