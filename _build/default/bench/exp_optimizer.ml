(* Fig. 10 + Fig. 11: IR-optimizer evaluation.

   Fig. 10 — automatic memory-latency hiding: for implicit-conv
   configurations, the best schedule found *without* software prefetching is
   re-lowered with double buffering enabled; the paper reports a 65.4%
   average improvement even on the baseline's best cases.

   Fig. 11 — boundary processing: on the unaligned GEMMs of Listing 2, the
   overhead of lightweight zero-padding vs traditional whole-operand
   padding, both measured against the same schedule running on the
   aligned-up problem (pure compute, no boundary work at all). The paper
   reports traditional overheads above 10% collapsing to under 5%. *)

open Bench_common
open Swatop_ops

let fig10 () =
  section "Fig. 10 — auto-prefetching vs no-prefetch baseline (implicit CONV)";
  let configs =
    [ (64, 64, 32); (128, 64, 32); (128, 128, 64); (256, 128, 64); (256, 256, 32);
      (384, 256, 64); (512, 256, 32); (512, 512, 64) ]
  in
  Printf.printf "%-28s | %12s %12s | %11s\n" "config (ni no ro, b=32)" "baseline" "prefetch"
    "improvement";
  let imps =
    List.map
      (fun (ni, no, ro) ->
        let spec = Swtensor.Conv_spec.create ~b:32 ~ni ~no ~ro ~co:ro ~kr:3 ~kc:3 () in
        let t = Conv_implicit.problem spec in
        (* Best strategy of the non-prefetching space (the baseline's best
           case, as in the paper's selection), then the same schedule with
           automatic double buffering. The space is generated with the
           doubled SPM footprint so the prefetched variant always fits. *)
        let space_off =
          List.map
            (fun (s : Conv_implicit.strategy) -> { s with prefetch = false })
            (Conv_implicit.space ~prefetch:true t)
        in
        let off =
          Swatop.Tuner.model_tune ~top_k:8 ~gemm_model:(Lazy.force gemm_model)
            ~candidates:space_off ~build:(Conv_implicit.build t) ()
        in
        let on_seconds =
          measure_seconds
            (Swatop.Tuner.prepare (Conv_implicit.build t { off.best with prefetch = true }))
        in
        let imp = (off.best_seconds -. on_seconds) /. on_seconds in
        Printf.printf "ni=%-4d no=%-4d ro=%-9d | %10.3fms %10.3fms | %+10.1f%%\n%!" ni no ro
          (off.best_seconds *. 1e3) (on_seconds *. 1e3) (pct imp);
        imp)
      configs
  in
  Printf.printf "average improvement from auto-prefetching: %.1f%% (paper: 65.4%%)\n" (pct (mean imps))

let fig11 () =
  section "Fig. 11 — lightweight vs traditional zero-padding (unaligned GEMM)";
  let stride = effort_pick ~quick:12 ~standard:4 ~full:1 in
  let shapes = Prelude.Lists.take_every stride Workloads.Sweeps.listing2_unaligned in
  if stride > 1 then
    Printf.printf "(every %dth of the 216 unaligned shapes; --full runs all)\n" stride;
  let cases =
    List.filter_map
      (fun (m, n, k) ->
        let t = Matmul.problem ~m ~n ~k in
        (* Choose factors with the model among lightweight candidates whose
           traditional-padding sibling also fits the SPM (Pad_full adds a
           staging buffer), then compare the three boundary treatments of
           that very schedule. *)
        let fits_as_pad_full (s : Matmul.strategy) =
          try
            ignore (Swatop.Tuner.prepare (Matmul.build t { s with boundary = Op_common.Pad_full }));
            true
          with Invalid_argument _ -> false
        in
        let space =
          List.filter
            (fun (s : Matmul.strategy) ->
              (match s.boundary with Op_common.Pad_light -> true | _ -> false)
              && fits_as_pad_full s)
            (Matmul.space t)
        in
        if space = [] then None
        else begin
          let mt =
            Swatop.Tuner.model_tune ~gemm_model:(Lazy.force gemm_model) ~candidates:space
              ~build:(Matmul.build t) ()
          in
          let s = mt.best in
          let time boundary = measure_seconds (Swatop.Tuner.prepare (Matmul.build t { s with boundary })) in
          let t_light = time Op_common.Pad_light in
          let t_full = time Op_common.Pad_full in
          (* The boundary-free reference: the same schedule on the
             aligned-up problem. *)
          let tp =
            Matmul.problem
              ~m:(Prelude.Ints.align_up m s.Matmul.fm)
              ~n:(Prelude.Ints.align_up n s.Matmul.fn)
              ~k:(Prelude.Ints.align_up k s.Matmul.fk)
          in
          let t_ideal =
            measure_seconds
              (Swatop.Tuner.prepare (Matmul.build tp { s with boundary = Op_common.Switch }))
          in
          let over_light = (t_light -. t_ideal) /. t_ideal in
          let over_full = (t_full -. t_ideal) /. t_ideal in
          Some ((m, n, k), over_light, over_full)
        end)
      shapes
  in
  let significant = List.filter (fun (_, _, full) -> full > 0.10) cases in
  Printf.printf "%d/%d cases have traditional-padding overhead > 10%%\n" (List.length significant)
    (List.length cases);
  Printf.printf "%-22s | %12s | %12s\n" "shape" "traditional" "lightweight";
  List.iter
    (fun ((m, n, k), light, full) ->
      Printf.printf "%6d x %5d x %5d | %+11.1f%% | %+11.1f%%\n" m n k (pct full) (pct light))
    significant;
  match significant with
  | [] -> Printf.printf "(no case above the 10%% threshold at this subsampling)\n"
  | l ->
    let lights = List.map (fun (_, light, _) -> light) l in
    let fulls = List.map (fun (_, _, full) -> full) l in
    Printf.printf
      "average overhead on those cases: traditional %.1f%%, lightweight %.1f%% (paper: < 5%%)\n"
      (pct (mean fulls)) (pct (mean lights))
