(* Quickstart: autotune a matrix multiplication end to end.

   This walks the whole swATOP pipeline on one GEMM problem:
   enumerate the schedule space, fit the Eq.-2 kernel model, pick the best
   schedule with the static performance model, run it on the simulated
   SW26010 core group, check the numerics against a reference product, and
   show the start of the generated C.

     dune exec examples/quickstart.exe *)

open Swatop_ops

let () =
  let m, n, k = (1000, 768, 512) in
  Printf.printf "Problem: C(%d x %d) = A(%d x %d) * B(%d x %d), single precision\n\n" m n m k k n;
  let t = Matmul.problem ~m ~n ~k in

  (* 1. The schedule space. *)
  let space = Matmul.space t in
  Printf.printf "1. schedule space: %d strategies (tile factors x loop order x\n" (List.length space);
  Printf.printf "   vectorization x boundary policy, pruned by SPM capacity)\n\n";

  (* 2. The fitted GEMM-primitive cost model (Eq. 2). *)
  let gemm_model = Swatop.Gemm_cost.fit () in
  let coef =
    Swatop.Gemm_cost.coefficients gemm_model
      { Primitives.Spm_gemm.a_major = Row_major; b_major = Row_major; vec = Vec_m }
  in
  Printf.printf "2. fitted Eq.-2 coefficients (row/row, vec-M kernel):\n   [";
  Array.iter (fun c -> Printf.printf " %.4g" c) coef;
  Printf.printf " ]\n\n";

  (* 3. Model-based tuning. *)
  let outcome =
    Swatop.Tuner.model_tune ~top_k:4 ~gemm_model ~candidates:space ~build:(Matmul.build t) ()
  in
  Printf.printf "3. model-tuned in %.2fs of host time (%d candidates estimated):\n"
    outcome.report.wall_seconds outcome.report.evaluated;
  Printf.printf "   chosen: %s\n\n" (Matmul.describe outcome.best);

  (* 4. Simulated execution with numerics. *)
  let a = Swtensor.Tensor.random ~seed:1 (Swtensor.Shape.of_list [ m; k ]) in
  let b = Swtensor.Tensor.random ~seed:2 (Swtensor.Shape.of_list [ k; n ]) in
  let bindings = Matmul.bindings_for t outcome.best ~a ~b in
  let r = Swatop.Interp.run ~bindings ~numeric:true outcome.best_program in
  let gflops = Swatop.Interp.flops_per_second r /. 1e9 in
  Printf.printf "4. simulated run: %.3f ms, %.1f GFLOPS (%.1f%% of the core group's peak)\n"
    (r.seconds *. 1e3) gflops
    (100.0 *. gflops *. 1e9 /. Sw26010.Config.peak_flops_cg);
  Printf.printf "   DMA busy %.3f ms, compute busy %.3f ms (overlapped)\n\n"
    (r.dma_busy_seconds *. 1e3) (r.compute_busy_seconds *. 1e3);

  (* 5. Numerics check. *)
  let got = Matmul.unpack_c t bindings in
  let expected = Matmul.reference ~a ~b in
  Printf.printf "5. numerics vs reference: max abs diff = %g (%s)\n\n"
    (Swtensor.Tensor.max_abs_diff expected got)
    (if Swtensor.Tensor.approx_equal expected got then "OK" else "MISMATCH");

  (* 6. Generated C. *)
  let c_src = Swatop.C_emit.program_exn outcome.best_program in
  let first_lines =
    String.split_on_char '\n' c_src |> List.filteri (fun i _ -> i < 18) |> String.concat "\n"
  in
  Printf.printf "6. generated C (first lines of %d total):\n%s\n   ...\n" (String.length c_src)
    first_lines
