examples/quickstart.mli:
