examples/codegen_demo.ml: Array Conv_implicit Lazy Matmul Printf Swatop Swatop_ops Swtensor Sys
