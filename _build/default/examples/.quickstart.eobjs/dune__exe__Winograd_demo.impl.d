examples/winograd_demo.ml: Conv_winograd List Printf String Swatop Swatop_ops Swtensor
