examples/resnet_conv.ml: Array Dispatch List Prelude Printf Swatop Swatop_ops Sys Workloads
