examples/winograd_demo.mli:
