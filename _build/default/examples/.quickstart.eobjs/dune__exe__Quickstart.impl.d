examples/quickstart.ml: Array List Matmul Primitives Printf String Sw26010 Swatop Swatop_ops Swtensor
