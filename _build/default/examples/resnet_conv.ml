(* Tune the distinct convolution layers of a ResNet with all three
   tensorized algorithms and report which one an operator library should
   dispatch to per layer — the workload the paper's introduction motivates.

     dune exec examples/resnet_conv.exe [batch]        (default batch 32) *)

open Swatop_ops
module N = Workloads.Networks

let () =
  let batch = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 32 in
  let gemm_model = Swatop.Gemm_cost.fit () in
  Printf.printf "ResNet convolution layers, batch %d — per-algorithm tuned time (ms)\n\n" batch;
  Printf.printf "%-10s %-18s | %10s %10s %10s | best\n" "layer" "shape" "implicit" "winograd"
    "explicit";
  List.iter
    (fun (l : N.layer) ->
      if l.ni >= 16 then begin
        let spec = N.conv_spec ~batch l in
        let results = Dispatch.all ~top_k:2 ~gemm_model spec in
        let cell algo =
          match List.assoc algo results with
          | Some (c : Dispatch.choice) -> Printf.sprintf "%10.3f" (c.c_seconds *. 1e3)
          | None -> Printf.sprintf "%10s" "-"
        in
        let best =
          List.filter_map snd results
          |> Prelude.Lists.min_float_by (fun (c : Dispatch.choice) -> c.c_seconds)
        in
        Printf.printf "%-10s %-18s | %s %s %s | %s\n%!" l.N.l_name
          (Printf.sprintf "%dx%d @%d^2 k%d" l.ni l.no l.out l.k)
          (cell Dispatch.Implicit) (cell Dispatch.Winograd) (cell Dispatch.Explicit)
          (Dispatch.algo_name best.Dispatch.c_algo)
      end)
    N.resnet18.N.layers;
  print_newline ();
  Printf.printf "(swATOP dispatches each layer to its fastest tensorized algorithm;\n";
  Printf.printf " the paper uses explicit GEMM only where the other two cannot apply.)\n"
