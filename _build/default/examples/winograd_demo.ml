(* Walk the Winograd convolution pipeline on a VGG-style layer: show the
   four generated phases, run the program with numerics on, and check the
   result against direct convolution.

     dune exec examples/winograd_demo.exe *)

open Swatop_ops
module Spec = Swtensor.Conv_spec

let () =
  let spec = Spec.create ~b:2 ~ni:16 ~no:24 ~ro:16 ~co:16 ~kr:3 ~kc:3 () in
  Printf.printf "Winograd F(2x2, 3x3) on %s\n\n" (Spec.to_string spec);
  let t = Conv_winograd.problem spec in
  Printf.printf "tiles per image: %d; the 16 element-wise products batch into GEMMs of\n"
    (Conv_winograd.tiles_per_image t);
  Printf.printf "shape (no=%d) x (ni=%d) x (b*tiles=%d)\n" spec.no spec.ni
    (spec.b * Conv_winograd.tiles_per_image t);
  Printf.printf "GEMM FLOPs %.3g vs direct-conv FLOPs %.3g (ratio %.3f, ideal 4/9)\n\n"
    (Conv_winograd.gemm_flops t) (Conv_winograd.flops t)
    (Conv_winograd.gemm_flops t /. Conv_winograd.flops t);

  let gemm_model = Swatop.Gemm_cost.fit () in
  let o =
    Swatop.Tuner.model_tune ~top_k:2 ~gemm_model ~candidates:(Conv_winograd.space t)
      ~build:(Conv_winograd.build t) ()
  in
  Printf.printf "tuned schedule: %s\n\n" (Conv_winograd.describe o.best);

  (* Show the phase structure of the lowered program. *)
  let listing = Swatop.Ir_print.program_to_string o.best_program in
  List.iter
    (fun line ->
      if
        String.length line > 0
        && (String.trim line |> fun l ->
            String.length l >= 2 && String.equal (String.sub l 0 2) "//")
      then print_endline line)
    (String.split_on_char '\n' listing);
  Printf.printf "(%d IR nodes in total; full listing via Swatop.Ir_print)\n\n"
    (Swatop.Ir.count_nodes o.best_program.body);

  (* Numeric run against the direct-convolution oracle. *)
  let input = Swtensor.Tensor.random ~seed:7 (Spec.input_shape spec) in
  let weight = Swtensor.Tensor.random ~seed:8 (Spec.weight_shape spec) in
  let bindings = Conv_winograd.bindings_for t o.best ~input ~weight in
  let r = Swatop.Interp.run ~bindings ~numeric:true o.best_program in
  let got = Conv_winograd.unpack_output t bindings in
  let expected = Swtensor.Conv_ref.forward spec ~input ~weight in
  Printf.printf "simulated run: %.3f ms (%.1f GFLOPS effective on direct-conv FLOPs)\n"
    (r.seconds *. 1e3)
    (Conv_winograd.flops t /. r.seconds /. 1e9);
  Printf.printf "numerics vs direct convolution: max abs diff %g (%s)\n"
    (Swtensor.Tensor.max_abs_diff expected got)
    (if Swtensor.Tensor.approx_equal ~tol:1e-3 expected got then "OK" else "MISMATCH")
