(* Emit the complete generated C for a tuned operator — what swATOP would
   hand to the SW26010 cross compiler as the CPE kernel.

     dune exec examples/codegen_demo.exe            (implicit conv)
     dune exec examples/codegen_demo.exe gemm       (matrix multiplication) *)

open Swatop_ops

let gemm_model = lazy (Swatop.Gemm_cost.fit ())

let tuned_gemm () =
  let t = Matmul.problem ~m:512 ~n:512 ~k:512 in
  let o =
    Swatop.Tuner.model_tune ~gemm_model:(Lazy.force gemm_model) ~candidates:(Matmul.space t)
      ~build:(Matmul.build t) ()
  in
  (Matmul.describe o.best, o.best_program)

let tuned_conv () =
  let spec = Swtensor.Conv_spec.create ~b:32 ~ni:64 ~no:64 ~ro:28 ~co:28 ~kr:3 ~kc:3 () in
  let t = Conv_implicit.problem spec in
  let o =
    Swatop.Tuner.model_tune ~gemm_model:(Lazy.force gemm_model)
      ~candidates:(Conv_implicit.space t) ~build:(Conv_implicit.build t) ()
  in
  (Conv_implicit.describe o.best, o.best_program)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "conv" in
  let desc, program =
    match which with
    | "gemm" -> tuned_gemm ()
    | "conv" -> tuned_conv ()
    | other ->
      Printf.eprintf "unknown operator %S (expected conv or gemm)\n" other;
      exit 1
  in
  Printf.printf "/* tuned schedule: %s */\n" desc;
  print_string (Swatop.C_emit.program_exn program)
