(* swATOP command-line interface: tune operators, inspect schedule spaces,
   emit generated C and print the fitted kernel cost model.

     dune exec bin/swatop_cli.exe -- tune gemm -m 2048 -n 2048 -k 2048
     dune exec bin/swatop_cli.exe -- tune conv --algo winograd --ni 128 --no 128 --out 56 -b 32
     dune exec bin/swatop_cli.exe -- codegen gemm -m 512 -n 512 -k 512
     dune exec bin/swatop_cli.exe -- space conv --ni 64 --no 64 --out 28 -b 32
     dune exec bin/swatop_cli.exe -- fit *)

open Cmdliner
open Swatop_ops

let gemm_model = lazy (Swatop.Gemm_cost.fit ())

(* ------------------------------------------------------------------ *)
(* Arguments. *)

let dim name default doc = Arg.(value & opt int default & info [ name ] ~doc)
let m_arg = dim "m" 1024 "GEMM M dimension"
let n_arg = dim "n" 1024 "GEMM N dimension"
let k_arg = dim "k" 1024 "GEMM K dimension"
let ni_arg = dim "ni" 64 "input channels"
let no_arg = dim "no" 64 "output channels"
let out_arg = dim "out" 28 "output rows = cols"
let kern_arg = dim "kernel" 3 "kernel rows = cols"
let b_arg = Arg.(value & opt int 32 & info [ "b"; "batch" ] ~doc:"batch size")
let topk_arg = Arg.(value & opt int 4 & info [ "top-k" ] ~doc:"measure the k best predictions")

let algo_arg =
  let algos = [ ("implicit", `Implicit); ("winograd", `Winograd); ("explicit", `Explicit) ] in
  Arg.(value & opt (enum algos) `Implicit & info [ "algo" ] ~doc:"convolution algorithm")

let jobs_arg =
  let positive =
    let parse s =
      match int_of_string_opt s with
      | Some j when j >= 1 -> Ok j
      | _ -> Error (`Msg (Printf.sprintf "expected a positive job count, got %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt (some positive) None
    & info [ "jobs"; "j" ]
        ~doc:"Domain-pool width for parallel tuning (default: \\$(b,SWATOP_JOBS) or the core count)")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "schedule-cache" ]
        ~doc:"persistent best-schedule cache file; created on first use, reused on later runs")

let search_arg =
  Arg.(
    value
    & opt (enum [ ("exhaustive", `Exhaustive); ("guided", `Guided) ]) `Exhaustive
    & info [ "search" ]
        ~doc:
          "tuning search mode: $(b,exhaustive) scores the whole space with the static cost \
           model; $(b,guided) trains a cost model online and measures only prediction-ranked \
           batches")

let budget_arg =
  Arg.(
    value & opt int 0
    & info [ "budget" ]
        ~doc:
          "guided search: maximum candidates sent to measurement (0 = automatic, about 10% of \
           the space)")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ]
        ~doc:
          "guided search: root of all exploration randomness; the same seed replays the same \
           tune whatever $(b,--jobs) is")

let make_search mode budget seed =
  match mode with
  | `Exhaustive -> Swatop.Tuner.Exhaustive
  | `Guided -> Swatop.Tuner.Guided { (Swatop.Tuner.guided_defaults ~seed) with gc_budget = budget }

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ]
        ~doc:
          "base path for interruption-safe tuning checkpoints; an interrupted tune resumes from \
           its partial results on the next run and selects the same winner")

let faults_arg =
  let fault_conv =
    let parse s =
      match Prelude.Fault.parse s with Ok p -> Ok p | Error e -> Error (`Msg e)
    in
    let print ppf p = Format.pp_print_string ppf (Prelude.Fault.to_string p) in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "faults" ]
        ~doc:
          "deterministic fault-injection plan, e.g. \
           $(b,seed=42;tuner.score:p=0.05;interp.dma.wait:n=3). Overrides \\$(b,SWATOP_FAULTS). \
           A fixed plan produces an identical fault schedule on every run.")

(* Applies the --jobs override and the --faults plan, runs [f] with the
   loaded schedule cache (if any), and persists the cache afterwards. *)
let with_tuning_env ?faults jobs cache_path f =
  Prelude.Parallel.set_jobs jobs;
  (match faults with None -> () | Some plan -> Prelude.Fault.set (Some plan));
  match cache_path with
  | None -> f None
  | Some path ->
    let cache = Swatop.Schedule_cache.load path in
    Fun.protect ~finally:(fun () -> Swatop.Schedule_cache.save path cache) (fun () -> f (Some cache))

(* ------------------------------------------------------------------ *)
(* Shared reporting. *)

let report_outcome ~flops describe (o : _ Swatop.Tuner.outcome) =
  let r = o.Swatop.Tuner.report in
  Printf.printf "space size       : %d schedule strategies\n" r.space_size;
  if r.cache_hit then Printf.printf "schedule cache   : hit (tuning skipped)\n"
  else
    Printf.printf "search           : %d estimated | %d pruned by DMA bound | %d jobs\n"
      r.evaluated r.pruned r.jobs;
  if r.batches > 0 then
    Printf.printf "guided search    : %d measured in %d batches | model rmse %.3f log-s | predicted %.3f ms\n"
      r.measured r.batches r.model_rmse (r.predicted_seconds *. 1e3);
  if r.verify_rejected <> [] then
    Printf.printf "verifier rejects : %s\n"
      (String.concat ", "
         (List.map (fun (c, n) -> Printf.sprintf "%s x%d" c n) r.verify_rejected));
  if r.scored_failed <> [] then
    Printf.printf "crashed, skipped : %s\n"
      (String.concat ", "
         (List.map (fun (c, n) -> Printf.sprintf "%s x%d" c n) r.scored_failed));
  Printf.printf "tuning wall time : %.2f s host (%.1f s simulated machine)\n" r.wall_seconds
    r.hardware_seconds;
  if not r.cache_hit then
    Printf.printf "  score %.2f s | measure %.2f s | cpu %.2f s (speedup %.1fx)\n" r.score_seconds
      r.measure_seconds r.cpu_seconds
      (r.cpu_seconds /. Float.max r.wall_seconds 1e-9);
  Printf.printf "chosen schedule  : %s\n" (describe o.best);
  let r = Swatop.Interp.run ~numeric:false o.best_program in
  let gf = flops /. r.seconds /. 1e9 in
  Printf.printf "simulated run    : %.3f ms, %.1f GFLOPS (%.1f%% of CG peak)\n" (r.seconds *. 1e3)
    gf
    (100.0 *. gf *. 1e9 /. Sw26010.Config.peak_flops_cg);
  Printf.printf "  DMA busy %.3f ms | compute busy %.3f ms | %d GEMM calls\n"
    (r.dma_busy_seconds *. 1e3) (r.compute_busy_seconds *. 1e3) r.gemm_calls

let conv_spec ni no out kern b =
  Swtensor.Conv_spec.create ~b ~ni ~no ~ro:out ~co:out ~kr:kern ~kc:kern ()

(* ------------------------------------------------------------------ *)
(* tune *)

let tune_gemm m n k top_k jobs cache_path checkpoint search_mode budget seed faults =
  with_tuning_env ?faults jobs cache_path (fun cache ->
      let search = make_search search_mode budget seed in
      let t = Matmul.problem ~m ~n ~k in
      let o =
        Matmul.tune ?cache ?checkpoint ~top_k ~search ~gemm_model:(Lazy.force gemm_model) t
      in
      Printf.printf "GEMM %d x %d x %d\n" m n k;
      report_outcome ~flops:(Matmul.flops t) Matmul.describe o)

let tune_conv algo ni no out kern b top_k jobs cache_path checkpoint search_mode budget seed
    faults =
  with_tuning_env ?faults jobs cache_path (fun cache ->
      let search = make_search search_mode budget seed in
      let spec = conv_spec ni no out kern b in
      Printf.printf "CONV %s\n" (Swtensor.Conv_spec.to_string spec);
      let gm = Lazy.force gemm_model in
      match algo with
      | `Implicit ->
        let t = Conv_implicit.problem spec in
        report_outcome ~flops:(Conv_implicit.flops t) Conv_implicit.describe
          (Conv_implicit.tune ?cache ?checkpoint ~top_k ~search ~gemm_model:gm t)
      | `Winograd ->
        let t = Conv_winograd.problem spec in
        report_outcome ~flops:(Conv_winograd.flops t) Conv_winograd.describe
          (Conv_winograd.tune ?cache ?checkpoint ~top_k ~search ~gemm_model:gm t)
      | `Explicit ->
        let t = Conv_explicit.problem spec in
        report_outcome ~flops:(Conv_explicit.flops t) Conv_explicit.describe
          (Conv_explicit.tune ?cache ?checkpoint ~top_k ~search ~gemm_model:gm t))

let tune_gemm_cmd =
  Cmd.v (Cmd.info "gemm" ~doc:"tune a matrix multiplication")
    Term.(
      const tune_gemm $ m_arg $ n_arg $ k_arg $ topk_arg $ jobs_arg $ cache_arg $ checkpoint_arg
      $ search_arg $ budget_arg $ seed_arg $ faults_arg)

let tune_conv_cmd =
  Cmd.v (Cmd.info "conv" ~doc:"tune a convolution")
    Term.(
      const tune_conv $ algo_arg $ ni_arg $ no_arg $ out_arg $ kern_arg $ b_arg $ topk_arg
      $ jobs_arg $ cache_arg $ checkpoint_arg $ search_arg $ budget_arg $ seed_arg $ faults_arg)

let tune_cmd = Cmd.group (Cmd.info "tune" ~doc:"autotune an operator") [ tune_gemm_cmd; tune_conv_cmd ]

(* ------------------------------------------------------------------ *)
(* codegen *)

let codegen_gemm m n k =
  let t = Matmul.problem ~m ~n ~k in
  let o =
    Swatop.Tuner.model_tune ~gemm_model:(Lazy.force gemm_model) ~candidates:(Matmul.space t)
      ~build:(Matmul.build t) ()
  in
  print_string (Swatop.C_emit.program_exn o.best_program)

let codegen_conv algo ni no out kern b =
  let spec = conv_spec ni no out kern b in
  let gm = Lazy.force gemm_model in
  let program =
    match algo with
    | `Implicit ->
      let t = Conv_implicit.problem spec in
      (Swatop.Tuner.model_tune ~gemm_model:gm ~candidates:(Conv_implicit.space t)
         ~build:(Conv_implicit.build t) ())
        .best_program
    | `Winograd ->
      let t = Conv_winograd.problem spec in
      (Swatop.Tuner.model_tune ~gemm_model:gm ~candidates:(Conv_winograd.space t)
         ~build:(Conv_winograd.build t) ())
        .best_program
    | `Explicit ->
      let t = Conv_explicit.problem spec in
      (Swatop.Tuner.model_tune ~gemm_model:gm ~candidates:(Conv_explicit.space t)
         ~build:(Conv_explicit.build t) ())
        .best_program
  in
  print_string (Swatop.C_emit.program_exn program)

let codegen_cmd =
  Cmd.group
    (Cmd.info "codegen" ~doc:"emit the tuned operator's C source")
    [
      Cmd.v (Cmd.info "gemm" ~doc:"GEMM kernel") Term.(const codegen_gemm $ m_arg $ n_arg $ k_arg);
      Cmd.v (Cmd.info "conv" ~doc:"convolution kernel")
        Term.(const codegen_conv $ algo_arg $ ni_arg $ no_arg $ out_arg $ kern_arg $ b_arg);
    ]

(* ------------------------------------------------------------------ *)
(* space *)

let space_conv algo ni no out kern b =
  let spec = conv_spec ni no out kern b in
  let show name l describe =
    Printf.printf "%s schedule space for %s: %d strategies\n" name
      (Swtensor.Conv_spec.to_string spec) (List.length l);
    List.iteri (fun i s -> if i < 20 then Printf.printf "  %s\n" (describe s)) l;
    if List.length l > 20 then Printf.printf "  ... (%d more)\n" (List.length l - 20)
  in
  match algo with
  | `Implicit ->
    show "implicit" (Conv_implicit.space (Conv_implicit.problem spec)) Conv_implicit.describe
  | `Winograd ->
    show "winograd" (Conv_winograd.space (Conv_winograd.problem spec)) Conv_winograd.describe
  | `Explicit ->
    show "explicit" (Conv_explicit.space (Conv_explicit.problem spec)) Conv_explicit.describe

let space_cmd =
  Cmd.v
    (Cmd.info "space" ~doc:"list a convolution's schedule space")
    Term.(const space_conv $ algo_arg $ ni_arg $ no_arg $ out_arg $ kern_arg $ b_arg)

(* ------------------------------------------------------------------ *)
(* trace + analyze *)

let tuned_conv_program algo ni no out kern b =
  let spec = conv_spec ni no out kern b in
  match Swatop_ops.Dispatch.tune ~gemm_model:(Lazy.force gemm_model) algo spec with
  | Some c -> c
  | None ->
    Printf.eprintf "algorithm not applicable to %s\n" (Swtensor.Conv_spec.to_string spec);
    exit 1

let algo_of = function
  | `Implicit -> Swatop_ops.Dispatch.Implicit
  | `Winograd -> Swatop_ops.Dispatch.Winograd
  | `Explicit -> Swatop_ops.Dispatch.Explicit

let trace_conv algo ni no out kern b out_file =
  let c = tuned_conv_program (algo_of algo) ni no out kern b in
  let tr = Swatop.Trace.create () in
  let r = Swatop.Interp.run ~trace:tr ~numeric:false c.c_program in
  let json = Swatop.Trace.to_chrome_json tr in
  let oc = open_out out_file in
  output_string oc json;
  close_out oc;
  Printf.printf "schedule : %s\n" c.c_desc;
  Printf.printf "run      : %.3f ms (%d events)\n" (r.Swatop.Interp.seconds *. 1e3)
    (Swatop.Trace.event_count tr);
  Printf.printf "trace    : %s (open in chrome://tracing or Perfetto)\n" out_file

let trace_file_arg =
  Arg.(value & opt string "trace.json" & info [ "o"; "output" ] ~doc:"trace output file")

let trace_cmd =
  Cmd.v
    (Cmd.info "trace" ~doc:"run a tuned convolution and dump a Chrome trace")
    Term.(const trace_conv $ algo_arg $ ni_arg $ no_arg $ out_arg $ kern_arg $ b_arg $ trace_file_arg)

let analyze_conv algo ni no out kern b =
  let c = tuned_conv_program (algo_of algo) ni no out kern b in
  Printf.printf "schedule: %s\n\n" c.c_desc;
  Format.printf "%a@." Swatop.Ir_analysis.pp (Swatop.Ir_analysis.analyze c.c_program)

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze" ~doc:"static traffic/work analysis of a tuned convolution")
    Term.(const analyze_conv $ algo_arg $ ni_arg $ no_arg $ out_arg $ kern_arg $ b_arg)

(* ------------------------------------------------------------------ *)
(* lint *)

(* Runs the whole optimizer pipeline (DMA inference + prefetch) on every
   candidate of a schedule space and reports structural-check errors and
   Ir_verify diagnostics — plus, with --race, the cross-CPE interference
   analysis (SWA030-039). Exit status 1 if any candidate has errors, or,
   with --strict, any diagnostic at all. *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let race_arg =
  Arg.(value & flag & info [ "race" ] ~doc:"also run the cross-CPE race analysis (SWA030-039)")

let lint_json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"machine-readable report on stdout")

let strict_arg =
  Arg.(value & flag & info [ "strict" ] ~doc:"exit 1 on warnings too, not only errors")

let lint_space ~race ~json ~strict what space build describe =
  let total = List.length space in
  if not json then Printf.printf "linting %s: %d candidate schedules%s\n" what total
      (if race then " (with race analysis)" else "");
  let failed = ref 0 in
  let counts = ref [] in
  let failures = ref [] in
  let add code =
    counts :=
      (code, 1 + Option.value ~default:0 (List.assoc_opt code !counts))
      :: List.remove_assoc code !counts
  in
  List.iter
    (fun s ->
      let p = Swatop.Tuner.optimize (build s) in
      let structural = match Swatop.Ir_check.check p with Ok () -> [] | Error es -> es in
      let diags =
        Swatop.Ir_verify.verify p @ (if race then Swatop.Ir_race.verify p else [])
      in
      List.iter (fun (d : Swatop.Ir_verify.diagnostic) -> add d.code) diags;
      let shown = if strict then diags else Swatop.Ir_verify.errors diags in
      if structural <> [] || shown <> [] then begin
        incr failed;
        failures :=
          ( describe s,
            List.map Swatop.Ir_check.error_to_string structural,
            List.map (fun (d : Swatop.Ir_verify.diagnostic) -> (d.code, Swatop.Ir_verify.to_string d)) shown )
          :: !failures;
        if not json then begin
          Printf.printf "FAIL %s\n" (describe s);
          List.iter
            (fun e -> Printf.printf "  check: %s\n" (Swatop.Ir_check.error_to_string e))
            structural;
          List.iter (fun (d : Swatop.Ir_verify.diagnostic) ->
              Printf.printf "  %s\n" (Swatop.Ir_verify.to_string d))
            shown
        end
      end)
    space;
  let hist = List.sort (fun (a, _) (b, _) -> String.compare a b) !counts in
  if json then begin
    let b = Buffer.create 512 in
    Buffer.add_string b "{\n";
    Buffer.add_string b (Printf.sprintf "  \"what\": \"%s\",\n" (json_escape what));
    Buffer.add_string b (Printf.sprintf "  \"race\": %b,\n" race);
    Buffer.add_string b (Printf.sprintf "  \"strict\": %b,\n" strict);
    Buffer.add_string b (Printf.sprintf "  \"candidates\": %d,\n" total);
    Buffer.add_string b (Printf.sprintf "  \"failed\": %d,\n" !failed);
    Buffer.add_string b "  \"diagnostics\": {";
    Buffer.add_string b
      (String.concat ", " (List.map (fun (c, n) -> Printf.sprintf "\"%s\": %d" c n) hist));
    Buffer.add_string b "},\n";
    Buffer.add_string b "  \"failures\": [\n";
    List.iteri
      (fun i (desc, checks, diags) ->
        Buffer.add_string b
          (Printf.sprintf "    {\"schedule\": \"%s\", \"checks\": [%s], \"codes\": [%s]}%s\n"
             (json_escape desc)
             (String.concat ", " (List.map (fun c -> "\"" ^ json_escape c ^ "\"") checks))
             (String.concat ", " (List.map (fun (c, _) -> "\"" ^ json_escape c ^ "\"") diags))
             (if i = !failed - 1 then "" else ",")))
      (List.rev !failures);
    Buffer.add_string b "  ]\n}";
    print_endline (Buffer.contents b)
  end
  else begin
    (match hist with
    | [] -> ()
    | hist ->
      Printf.printf "diagnostics: %s\n"
        (String.concat ", " (List.map (fun (c, n) -> Printf.sprintf "%s x%d" c n) hist)));
    if !failed = 0 then Printf.printf "OK: all %d candidates verified clean\n" total
    else
      Printf.printf "FAILED: %d of %d candidates have verifier %s\n" !failed total
        (if strict then "diagnostics" else "errors")
  end;
  if !failed > 0 then exit 1

let lint_gemm m n k race json strict =
  let t = Matmul.problem ~m ~n ~k in
  lint_space ~race ~json ~strict
    (Printf.sprintf "gemm %dx%dx%d" m n k)
    (Matmul.space t) (Matmul.build t) Matmul.describe

(* A dense (fully-connected) layer is the (batch, d_out, d_in) GEMM the graph
   compiler lowers it to. *)
let lint_dense b d_in d_out race json strict =
  let t = Matmul.problem ~m:b ~n:d_out ~k:d_in in
  lint_space ~race ~json ~strict
    (Printf.sprintf "dense batch=%d d_in=%d d_out=%d" b d_in d_out)
    (Matmul.space t) (Matmul.build t) Matmul.describe

let require_applicable applicable name spec =
  if not applicable then begin
    Printf.eprintf "%s not applicable to %s\n" name (Swtensor.Conv_spec.to_string spec);
    exit 1
  end

let lint_winograd ni no out b race json strict =
  let spec = conv_spec ni no out 3 b in
  require_applicable (Conv_winograd.applicable spec) "winograd" spec;
  let t = Conv_winograd.problem spec in
  lint_space ~race ~json ~strict
    (Printf.sprintf "winograd conv %s" (Swtensor.Conv_spec.to_string spec))
    (Conv_winograd.space t) (Conv_winograd.build t) Conv_winograd.describe

let lint_conv algo ni no out kern b race json strict =
  let spec = conv_spec ni no out kern b in
  let what name = Printf.sprintf "%s conv %s" name (Swtensor.Conv_spec.to_string spec) in
  match algo with
  | `Implicit ->
    require_applicable (Conv_implicit.applicable spec) "implicit" spec;
    let t = Conv_implicit.problem spec in
    lint_space ~race ~json ~strict (what "implicit") (Conv_implicit.space t) (Conv_implicit.build t)
      Conv_implicit.describe
  | `Winograd ->
    require_applicable (Conv_winograd.applicable spec) "winograd" spec;
    let t = Conv_winograd.problem spec in
    lint_space ~race ~json ~strict (what "winograd") (Conv_winograd.space t) (Conv_winograd.build t)
      Conv_winograd.describe
  | `Explicit ->
    require_applicable (Conv_explicit.applicable spec) "explicit" spec;
    let t = Conv_explicit.problem spec in
    lint_space ~race ~json ~strict (what "explicit") (Conv_explicit.space t) (Conv_explicit.build t)
      Conv_explicit.describe

let lint_cmd =
  let din_arg = dim "d-in" 512 "dense input features" in
  let dout_arg = dim "d-out" 512 "dense output features" in
  Cmd.group
    (Cmd.info "lint"
       ~doc:
         "verify every candidate of a schedule space with the IR dataflow/bounds analyses and, \
          with $(b,--race), the cross-CPE interference analysis")
    [
      Cmd.v
        (Cmd.info "gemm" ~doc:"lint a GEMM schedule space")
        Term.(const lint_gemm $ m_arg $ n_arg $ k_arg $ race_arg $ lint_json_arg $ strict_arg);
      Cmd.v
        (Cmd.info "dense" ~doc:"lint a dense (fully-connected) layer's schedule space")
        Term.(const lint_dense $ b_arg $ din_arg $ dout_arg $ race_arg $ lint_json_arg $ strict_arg);
      Cmd.v
        (Cmd.info "conv" ~doc:"lint a convolution schedule space")
        Term.(
          const lint_conv $ algo_arg $ ni_arg $ no_arg $ out_arg $ kern_arg $ b_arg $ race_arg
          $ lint_json_arg $ strict_arg);
      Cmd.v
        (Cmd.info "winograd" ~doc:"lint the Winograd F(2x2,3x3) schedule space (kernel fixed at 3)")
        Term.(
          const lint_winograd $ ni_arg $ no_arg $ out_arg $ b_arg $ race_arg $ lint_json_arg
          $ strict_arg);
    ]

(* ------------------------------------------------------------------ *)
(* offline *)

let offline net_name batch dir =
  let net =
    match
      List.find_opt
        (fun n -> String.lowercase_ascii n.Workloads.Networks.net_name = String.lowercase_ascii net_name)
        Workloads.Networks.all
    with
    | Some n -> n
    | None ->
      Printf.eprintf "unknown network %S (expected vgg16, resnet or yolo)\n" net_name;
      exit 1
  in
  let compiled = Offline.compile_network ~gemm_model:(Lazy.force gemm_model) ~batch net in
  Offline.write_directory ~dir compiled;
  Printf.printf "%d kernels written to %s/ (see manifest.txt)\n" (List.length compiled) dir;
  print_string (Offline.manifest compiled)

let offline_cmd =
  let net_arg =
    Arg.(value & opt string "resnet" & info [ "net" ] ~doc:"network (vgg16 | resnet | yolo)")
  in
  let dir_arg = Arg.(value & opt string "kernels" & info [ "o"; "output" ] ~doc:"output directory") in
  Cmd.v
    (Cmd.info "offline" ~doc:"pre-generate tuned kernels for a whole network")
    Term.(const offline $ net_arg $ b_arg $ dir_arg)

(* ------------------------------------------------------------------ *)
(* net *)

let find_graph net_name batch =
  match String.lowercase_ascii net_name with
  | "smoke" -> Swatop_graph.Graph_ir.smoke ~batch
  | s ->
    let canonical =
      match s with
      | "vgg16" | "vgg" -> "vgg16"
      | "resnet18" | "resnet" -> "resnet"
      | "yolov2" | "yolo" -> "yolo"
      | s -> s
    in
    (match
       List.find_opt
         (fun n -> String.lowercase_ascii n.Workloads.Networks.net_name = canonical)
         Workloads.Networks.all
     with
    | Some n -> Swatop_graph.Graph_ir.of_network ~batch n
    | None ->
      Printf.eprintf "unknown network %S (expected vgg16, resnet18, yolov2 or smoke)\n" net_name;
      exit 1)

let net_run net_name batch json numeric jobs cache_path checkpoint search_mode budget seed
    faults =
  with_tuning_env ?faults jobs cache_path (fun cache ->
      let g = find_graph net_name batch in
      let plan =
        Swatop_graph.Graph_compile.compile ?cache ?checkpoint
          ~search:(make_search search_mode budget seed)
          ~gemm_model:(Lazy.force gemm_model) g
      in
      let report = Swatop_graph.Graph_exec.run ~numeric plan in
      print_endline
        (if json then Swatop_graph.Graph_exec.to_json report
         else Swatop_graph.Graph_exec.to_text report))

let net_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NETWORK" ~doc:"vgg16, resnet18, yolov2 or smoke")
  in
  let batch_arg = Arg.(value & opt int 1 & info [ "batch" ] ~doc:"batch size") in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"machine-readable report") in
  let numeric_arg =
    Arg.(
      value & flag
      & info [ "numeric" ]
          ~doc:"execute with real data and check every layer against the host reference")
  in
  Cmd.v
    (Cmd.info "net"
       ~doc:
         "compile a whole network (tune every layer, propagate layouts, plan the activation \
          arena) and execute it end to end on the simulator")
    Term.(
      const net_run $ name_arg $ batch_arg $ json_arg $ numeric_arg $ jobs_arg $ cache_arg
      $ checkpoint_arg $ search_arg $ budget_arg $ seed_arg $ faults_arg)

(* ------------------------------------------------------------------ *)
(* serve *)

let serve_run net_name rate duration cgs slo_ms seed max_batch timeout_ms queue_depth trace json
    smoke_check jobs cache_path search_mode budget faults =
  with_tuning_env ?faults jobs cache_path (fun cache ->
      let open Swatop_serve in
      let net =
        Serve_net.compile ?cache ?jobs
          ~search:(make_search search_mode budget seed)
          ~gemm_model:(Lazy.force gemm_model)
          ~graph:(fun ~batch -> find_graph net_name batch)
          ~max_batch net_name
      in
      let config =
        {
          Serve_engine.cf_trace = trace;
          cf_rate = rate;
          cf_duration = duration;
          cf_cgs = cgs;
          cf_slo = slo_ms /. 1e3;
          cf_seed = seed;
          cf_max_batch = max_batch;
          cf_timeout = timeout_ms /. 1e3;
          cf_queue_depth = queue_depth;
          cf_health = Serve_health.default;
          cf_latency_cap = Serve_engine.default.Serve_engine.cf_latency_cap;
        }
      in
      let report =
        Serve_engine.run ~tune_wall:net.Serve_net.nt_tune_wall ~executor:(Serve_net.executor net)
          config
      in
      print_endline (if json then Serve_engine.to_json report else Serve_engine.to_text report);
      if smoke_check then begin
        let batched =
          List.exists (fun (n, _) -> n >= 2) report.Serve_engine.sr_batch_hist
        in
        let problems =
          (if report.Serve_engine.sr_shed > 0 then
             [ Printf.sprintf "%d requests shed" report.Serve_engine.sr_shed ]
           else [])
          @ (if report.Serve_engine.sr_dropped <> 0 then
               [ Printf.sprintf "%d requests dropped" report.Serve_engine.sr_dropped ]
             else [])
          @ if not batched then [ "no batch of size >= 2 formed" ] else []
        in
        match problems with
        | [] -> ()
        | ps ->
          Printf.eprintf "serve smoke check failed: %s\n" (String.concat "; " ps);
          exit 1
      end)

let serve_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NETWORK" ~doc:"vgg16, resnet18, yolov2 or smoke")
  in
  let rate_arg =
    Arg.(value & opt float 200.0 & info [ "rate" ] ~doc:"mean arrival rate, requests/s")
  in
  let duration_arg =
    Arg.(value & opt float 5.0 & info [ "duration" ] ~doc:"arrival window, seconds (simulated)")
  in
  let cgs_arg =
    Arg.(
      value
      & opt int Sw26010.Config.num_cgs
      & info [ "cgs" ] ~doc:"core groups serving (the SW26010 node has 4)")
  in
  let slo_arg =
    Arg.(value & opt float 50.0 & info [ "slo-ms" ] ~doc:"per-request latency objective, ms")
  in
  let serve_seed_arg =
    Arg.(
      value & opt int 7
      & info [ "seed" ]
          ~doc:
            "root of the traffic randomness (and of guided-search exploration); the same seed \
             replays the same run bit-identically")
  in
  let max_batch_arg =
    Arg.(value & opt int 8 & info [ "max-batch" ] ~doc:"dynamic batching: maximum batch size")
  in
  let timeout_arg =
    Arg.(
      value & opt float 5.0
      & info [ "batch-timeout-ms" ]
          ~doc:"dynamic batching: flush an incomplete batch after this long, ms")
  in
  let depth_arg =
    Arg.(
      value & opt int 256
      & info [ "queue-depth" ] ~doc:"admission: bounded batching-queue depth")
  in
  let trace_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("poisson", Swatop_serve.Serve_trace.Poisson);
               ("bursty", Swatop_serve.Serve_trace.Bursty);
             ])
          Swatop_serve.Serve_trace.Poisson
      & info [ "trace" ] ~doc:"traffic shape: $(b,poisson) or $(b,bursty) (on/off modulated)")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"machine-readable report") in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke-check" ]
          ~doc:"exit 1 unless the run shed nothing, dropped nothing and formed real batches")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "serve an inference network: seeded synthetic traffic through dynamic batching, \
          SLO-aware admission and multi-CG dispatch, reporting sustained throughput and p50/p99 \
          latency on the simulator's clock")
    Term.(
      const serve_run $ name_arg $ rate_arg $ duration_arg $ cgs_arg $ slo_arg $ serve_seed_arg
      $ max_batch_arg $ timeout_arg $ depth_arg $ trace_arg $ json_arg $ smoke_arg $ jobs_arg
      $ cache_arg $ search_arg $ budget_arg $ faults_arg)

(* ------------------------------------------------------------------ *)
(* chaos *)

let chaos_run net_name plans rate duration cgs slo_ms seed max_batch timeout_ms queue_depth
    trace json check jobs cache_path search_mode budget =
  with_tuning_env jobs cache_path (fun cache ->
      let open Swatop_serve in
      let net =
        Serve_net.compile ?cache ?jobs
          ~search:(make_search search_mode budget seed)
          ~gemm_model:(Lazy.force gemm_model)
          ~graph:(fun ~batch -> find_graph net_name batch)
          ~max_batch net_name
      in
      let config =
        {
          Serve_engine.cf_trace = trace;
          cf_rate = rate;
          cf_duration = duration;
          cf_cgs = cgs;
          cf_slo = slo_ms /. 1e3;
          cf_seed = seed;
          cf_max_batch = max_batch;
          cf_timeout = timeout_ms /. 1e3;
          cf_queue_depth = queue_depth;
          cf_health = Serve_health.default;
          cf_latency_cap = Serve_engine.default.Serve_engine.cf_latency_cap;
        }
      in
      let report = Serve_chaos.run ~plans ~seed ~executor:(Serve_net.executor net) config in
      print_endline (if json then Serve_chaos.to_json report else Serve_chaos.to_text report);
      if check then
        match Serve_chaos.check report with
        | [] -> ()
        | failures ->
          List.iter (fun f -> Printf.eprintf "chaos check failed: %s\n" f) failures;
          exit 1)

let chaos_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NETWORK" ~doc:"vgg16, resnet18, yolov2 or smoke")
  in
  let plans_arg =
    Arg.(
      value & opt int 20
      & info [ "plans" ] ~doc:"seeded fault scenarios to soak (kinds cycle every 6)")
  in
  let rate_arg =
    Arg.(value & opt float 200.0 & info [ "rate" ] ~doc:"mean arrival rate, requests/s")
  in
  let duration_arg =
    Arg.(value & opt float 1.0 & info [ "duration" ] ~doc:"arrival window, seconds (simulated)")
  in
  let cgs_arg =
    Arg.(
      value
      & opt int Sw26010.Config.num_cgs
      & info [ "cgs" ] ~doc:"core groups serving (the SW26010 node has 4)")
  in
  let slo_arg =
    Arg.(value & opt float 50.0 & info [ "slo-ms" ] ~doc:"per-request latency objective, ms")
  in
  let seed_arg =
    Arg.(
      value & opt int 7
      & info [ "seed" ]
          ~doc:
            "root of the traffic and of every generated fault plan; the same seed replays the \
             same soak bit-identically")
  in
  let max_batch_arg =
    Arg.(value & opt int 8 & info [ "max-batch" ] ~doc:"dynamic batching: maximum batch size")
  in
  let timeout_arg =
    Arg.(
      value & opt float 5.0
      & info [ "batch-timeout-ms" ]
          ~doc:"dynamic batching: flush an incomplete batch after this long, ms")
  in
  let depth_arg =
    Arg.(
      value & opt int 256
      & info [ "queue-depth" ] ~doc:"admission: bounded batching-queue depth")
  in
  let trace_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("poisson", Swatop_serve.Serve_trace.Poisson);
               ("bursty", Swatop_serve.Serve_trace.Bursty);
             ])
          Swatop_serve.Serve_trace.Poisson
      & info [ "trace" ] ~doc:"traffic shape: $(b,poisson) or $(b,bursty) (on/off modulated)")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"machine-readable report") in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "exit 1 unless every scenario conserved requests, dropped nothing, kept recovered \
             throughput >= 95% of fault-free and p99 inflation bounded")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "chaos-soak a served network: run N seeded fault plans (CG kills, probe-driven \
          recoveries, transient DMA/layer faults, hangs) against the full \
          trace/batch/admit/shard/exec stack and score each against the fault-free baseline")
    Term.(
      const chaos_run $ name_arg $ plans_arg $ rate_arg $ duration_arg $ cgs_arg $ slo_arg
      $ seed_arg $ max_batch_arg $ timeout_arg $ depth_arg $ trace_arg $ json_arg $ check_arg
      $ jobs_arg $ cache_arg $ search_arg $ budget_arg)

(* ------------------------------------------------------------------ *)
(* fit *)

let fit () =
  let model = Lazy.force gemm_model in
  Printf.printf "Eq.-2 linear model, fitted per kernel variant over %d samples\n"
    (List.length Swatop.Gemm_cost.default_grid);
  Printf.printf "features: [K; K*vd; K*od; vd*od; K*vd*od; 1] (per-CPE dims)\n\n";
  List.iter
    (fun v ->
      let coef = Swatop.Gemm_cost.coefficients model v in
      Printf.printf "%-22s:" (Primitives.Spm_gemm.variant_name v);
      Array.iter (fun c -> Printf.printf " %10.4f" c) coef;
      print_newline ())
    Primitives.Spm_gemm.all_variants

let fit_cmd = Cmd.v (Cmd.info "fit" ~doc:"print the fitted kernel cost model") Term.(const fit $ const ())

(* ------------------------------------------------------------------ *)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "swatop" ~version:"1.0.0" ~doc:"autotuned DL operators for the SW26010" in
  let group =
    Cmd.group ~default info
      [
        tune_cmd; codegen_cmd; space_cmd; trace_cmd; analyze_cmd; lint_cmd; offline_cmd;
        net_cmd; serve_cmd; chaos_cmd; fit_cmd;
      ]
  in
  (* Operational failures exit 2 with a one-line structured diagnostic —
     site, message, and context — so scripts can tell a crashed run (2)
     from lint findings (1) and success (0). *)
  exit
    (try Cmd.eval ~catch:false group with
    | Prelude.Swatop_error.Error e ->
      Printf.eprintf "swatop: error: %s\n" (Prelude.Swatop_error.to_string e);
      2
    | Prelude.Fault.Injected { site; hit } ->
      Printf.eprintf "swatop: error: fault:%s: injected fault (hit %d)\n" site hit;
      2
    | Failure m | Invalid_argument m | Sys_error m ->
      Printf.eprintf "swatop: error: %s\n" m;
      2)
