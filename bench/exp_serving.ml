(* Inference serving on the simulated node: seeded synthetic traffic through
   dynamic batching, SLO-aware admission and least-loaded multi-CG dispatch.

   Three scenarios over the smoke network: steady Poisson, the bursty on/off
   trace (same mean rate, very different queueing), and a deliberately
   hopeless SLO that exercises provable-miss deadline shedding. All figures
   are virtual-clock quantities, bit-identical for a fixed seed; only the
   tuning-wall line is host time. *)

open Bench_common
module S = Swatop_serve

let run () =
  section "Serving runtime: dynamic batching + SLO admission + multi-CG dispatch";
  let duration = effort_pick ~quick:1.0 ~standard:5.0 ~full:10.0 in
  let max_batch = effort_pick ~quick:4 ~standard:8 ~full:8 in
  let net =
    S.Serve_net.compile ?cache:!schedule_cache
      ~gemm_model:(Lazy.force gemm_model)
      ~graph:(fun ~batch -> Swatop_graph.Graph_ir.smoke ~batch)
      ~max_batch "smoke"
  in
  let executor = S.Serve_net.executor net in
  let base =
    { S.Serve_engine.default with cf_duration = duration; cf_max_batch = max_batch }
  in
  List.iter
    (fun (label, cf) ->
      subsection label;
      print_string
        (S.Serve_engine.to_text
           (S.Serve_engine.run ~tune_wall:net.S.Serve_net.nt_tune_wall ~executor cf)))
    [
      ("poisson @ 200 req/s", base);
      ("bursty @ 200 req/s (same mean rate)", { base with cf_trace = S.Serve_trace.Bursty });
      ( "hopeless SLO (30 us): provable-miss deadline shedding",
        { base with cf_slo = 30e-6 } );
    ]
