(* Whole-network end-to-end execution through the graph runtime: per-layer
   and total simulated time, layout relayouts eliminated by the propagation
   pass, and the activation-arena footprint.

   Effort scaling (one core group, sequential tuner): Quick runs the tiny
   smoke network only; Standard adds ResNet; Full runs all three Sec. 5.1
   networks. The --schedule-cache flag is honored — warm caches make the
   whole-network compiles cheap re-runs. *)

open Bench_common
module G = Swatop_graph.Graph_ir
module C = Swatop_graph.Graph_compile
module E = Swatop_graph.Graph_exec

let networks () =
  let named n = G.of_network ~batch:1 n in
  effort_pick
    ~quick:[ G.smoke ~batch:4 ]
    ~standard:[ G.smoke ~batch:4; named Workloads.Networks.resnet18 ]
    ~full:
      [
        G.smoke ~batch:4;
        named Workloads.Networks.resnet18;
        named Workloads.Networks.vgg16;
        named Workloads.Networks.yolov2;
      ]

let run () =
  section "Network runtime: compile + layout propagation + arena + execution";
  List.iter
    (fun g ->
      subsection (Printf.sprintf "%s (batch %d)" g.G.g_name g.G.batch);
      let plan =
        C.compile ?cache:!schedule_cache ~top_k:1 ~gemm_model:(Lazy.force gemm_model) g
      in
      let report = E.run plan in
      print_string (E.to_text report))
    (networks ())
