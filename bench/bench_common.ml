(* Shared plumbing of the experiment harness. *)

open Swatop_ops
module Spec = Swtensor.Conv_spec

let gemm_model = lazy (Swatop.Gemm_cost.fit ())

(* Effort level: Quick subsamples the sweeps for fast iteration; Standard is
   the default reported run; Full removes all subsampling. *)
type effort = Quick | Standard | Full

let effort = ref Standard

let effort_pick ~quick ~standard ~full =
  match !effort with Quick -> quick | Standard -> standard | Full -> full

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let measure_seconds p = (Swatop.Interp.run ~numeric:false p).Swatop.Interp.seconds

let peak = Sw26010.Config.peak_flops_cg

type algo = Implicit | Winograd | Explicit

let algo_name = function Implicit -> "Implicit" | Winograd -> "Winograd" | Explicit -> "Explicit"

type tuned = {
  desc : string;
  seconds : float;
  space_size : int;
  report : Swatop.Tuner.report;
  flops : float;  (** direct-convolution FLOPs: the efficiency denominator *)
}

(* Optional persistent schedule cache shared by every tuning call of a bench
   run (set from the harness's --schedule-cache flag). *)
let schedule_cache : Swatop.Schedule_cache.t option ref = ref None

(* When set (--tuner-report), every tuning call prints its observability
   line: pruning, cache behaviour, per-phase wall time, parallel speedup. *)
let verbose_tuner = ref false

let report_summary (r : Swatop.Tuner.report) =
  let rejected =
    if r.verify_rejected = [] then ""
    else
      Printf.sprintf " | rejected %s"
        (String.concat ","
           (List.map (fun (c, n) -> Printf.sprintf "%s:%d" c n) r.verify_rejected))
  in
  Printf.sprintf
    "space %d | evaluated %d | pruned %d | cache %s | jobs %d | wall %.2fs (score %.2f, measure \
     %.2f) | speedup %.1fx%s"
    r.space_size r.evaluated r.pruned
    (if r.cache_hit then "hit" else "miss")
    r.jobs r.wall_seconds r.score_seconds r.measure_seconds
    (r.cpu_seconds /. Float.max r.wall_seconds 1e-9)
    rejected

let print_report r = if !verbose_tuner then Printf.printf "  [tuner] %s\n%!" (report_summary r)

let tune_implicit ?(top_k = 4) spec =
  let t = Conv_implicit.problem spec in
  let o =
    Conv_implicit.tune ?cache:!schedule_cache ~top_k ~gemm_model:(Lazy.force gemm_model) t
  in
  print_report o.report;
  {
    desc = Conv_implicit.describe o.best;
    seconds = o.best_seconds;
    space_size = o.report.space_size;
    report = o.report;
    flops = Conv_implicit.flops t;
  }

let tune_winograd ?(top_k = 4) spec =
  let t = Conv_winograd.problem spec in
  let o =
    Conv_winograd.tune ?cache:!schedule_cache ~top_k ~gemm_model:(Lazy.force gemm_model) t
  in
  print_report o.report;
  {
    desc = Conv_winograd.describe o.best;
    seconds = o.best_seconds;
    space_size = o.report.space_size;
    report = o.report;
    flops = Conv_winograd.flops t;
  }

let tune_explicit ?(top_k = 4) spec =
  let t = Conv_explicit.problem spec in
  let o =
    Conv_explicit.tune ?cache:!schedule_cache ~top_k ~gemm_model:(Lazy.force gemm_model) t
  in
  print_report o.report;
  {
    desc = Conv_explicit.describe o.best;
    seconds = o.best_seconds;
    space_size = o.report.space_size;
    report = o.report;
    flops = Conv_explicit.flops t;
  }

let tune_conv ?top_k algo spec =
  match algo with
  | Implicit -> tune_implicit ?top_k spec
  | Winograd -> tune_winograd ?top_k spec
  | Explicit -> tune_explicit ?top_k spec

let conv_applicable algo spec =
  match algo with
  | Implicit -> Conv_implicit.applicable spec
  | Winograd -> Conv_winograd.applicable spec
  | Explicit -> Conv_explicit.applicable spec

(* Manual baselines: simulated execution time, when one exists. *)
let baseline_seconds algo spec =
  match algo with
  | Implicit ->
    Option.map
      (fun p -> measure_seconds (Swatop.Tuner.prepare p))
      (Baselines.Swdnn.build (Conv_implicit.problem spec))
  | Winograd ->
    Some
      (measure_seconds
         (Swatop.Tuner.prepare (Baselines.Xmath.winograd_build (Conv_winograd.problem spec))))
  | Explicit ->
    Some
      (measure_seconds
         (Swatop.Tuner.prepare (Baselines.Xmath.explicit_build (Conv_explicit.problem spec))))

let gflops flops seconds = flops /. seconds /. 1e9
let efficiency flops seconds = flops /. seconds /. peak

let pct x = 100.0 *. x

let hms seconds =
  let s = int_of_float seconds in
  if s >= 3600 then Printf.sprintf "%dh %02dm" (s / 3600) (s mod 3600 / 60)
  else if s >= 60 then Printf.sprintf "%dm %02ds" (s / 60) (s mod 60)
  else Printf.sprintf "%.1fs" seconds

let mean = Prelude.Floats.mean
let geomean = Prelude.Floats.geomean

(* Welford's online mean/variance with quantiles, promoted to the prelude
   (the serving layer uses the same accumulator for p50/p99 latency). *)
module Running_stat = Prelude.Running_stat
