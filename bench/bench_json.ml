(* Machine-readable benchmark harness: BENCH_tuner.json + BENCH_network.json
   + BENCH_serving.json + BENCH_chaos.json.

   Unlike the human-facing experiment harness (main.ml), this one exists to
   be diffed and gated on: it writes two small JSON files at the repo root
   recording (a) guided-vs-exhaustive tuning cost and quality and (b)
   whole-network compile/execute figures, and exits non-zero when the
   guided tuner's winner falls below 99% of the brute-force winner's
   simulated performance — the acceptance bound CI enforces.

   Statistical hygiene: host wall times are sampled [--samples] times after
   [--warmup] discarded runs, accumulated through Welford's algorithm
   (mean/stddev/min/max); every simulated result feeds an anti-DCE sink
   that is printed and embedded in the JSON, so no tuning run can be
   optimized away or silently skipped. Simulated quantities (GFLOP/s,
   hardware seconds, arena bytes) are deterministic and reported from the
   first sample. *)

open Bench_common
module N = Workloads.Networks
module Stat = Running_stat

let quality_bound = 0.99

(* ------------------------------------------------------------------ *)
(* Minimal JSON: a writer and a strict-enough reader for --check. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let rec write_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" f)
    else Buffer.add_string buf (Printf.sprintf "%.9g" f)
  | Str s ->
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write_json buf v)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        write_json buf (Str k);
        Buffer.add_char buf ':';
        write_json buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 4096 in
  write_json buf j;
  Buffer.contents buf

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail "invalid literal"
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated escape";
          (match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
          | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> Buffer.add_char buf '?'
          | None -> fail "invalid unicode escape");
          pos := !pos + 4;
          loop ()
        | _ -> fail "invalid escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num c = (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E' in
    while (match peek () with Some c when is_num c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "invalid number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Schema validation, shared by generation (self-check) and --check. *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let require_num what j k =
  match member k j with
  | Some (Num f) -> f
  | _ -> failwith (Printf.sprintf "%s: missing or non-numeric field %S" what k)

let require_str what j k =
  match member k j with
  | Some (Str s) -> s
  | _ -> failwith (Printf.sprintf "%s: missing or non-string field %S" what k)

let require_list what j k =
  match member k j with
  | Some (List l) -> l
  | _ -> failwith (Printf.sprintf "%s: missing or non-array field %S" what k)

let require_obj what j k =
  match member k j with
  | Some (Obj _ as o) -> o
  | _ -> failwith (Printf.sprintf "%s: missing or non-object field %S" what k)

let check_stat what j k =
  let s = require_obj what j k in
  List.iter (fun f -> ignore (require_num (what ^ "." ^ k) s f)) [ "mean"; "stddev"; "min"; "max" ]

(* Returns the worst guided-vs-exhaustive quality in the file. *)
let validate_tuner j =
  let what = "BENCH_tuner" in
  if require_str what j "schema" <> "swatop-bench-tuner" then
    failwith "BENCH_tuner: wrong schema tag";
  ignore (require_num what j "schema_version");
  ignore (require_num what j "seed");
  ignore (require_num what j "samples");
  ignore (require_num what j "sink");
  let workloads = require_list what j "workloads" in
  if workloads = [] then failwith "BENCH_tuner: empty workload list";
  List.fold_left
    (fun worst w ->
      let name = require_str "workload" w "name" in
      let what = "workload " ^ name in
      ignore (require_num what w "space_size");
      let quality = require_num what w "quality_vs_exhaustive" in
      let fraction = require_num what w "measured_fraction" in
      if fraction > 0.10001 then
        failwith (Printf.sprintf "%s: guided measured %.1f%% of the space (bound 10%%)" what (100.0 *. fraction));
      List.iter
        (fun side ->
          let s = require_obj what w side in
          ignore (require_num (what ^ "." ^ side) s "candidates_measured");
          ignore (require_num (what ^ "." ^ side) s "hardware_seconds");
          ignore (require_num (what ^ "." ^ side) s "best_gflops");
          check_stat (what ^ "." ^ side) s "wall_seconds")
        [ "exhaustive"; "guided" ];
      let g = require_obj what w "guided" in
      ignore (require_num what g "batches");
      ignore (require_num what g "model_rmse");
      Float.min worst quality)
    infinity workloads

let validate_network j =
  let what = "BENCH_network" in
  if require_str what j "schema" <> "swatop-bench-network" then
    failwith "BENCH_network: wrong schema tag";
  ignore (require_num what j "schema_version");
  ignore (require_num what j "sink");
  let networks = require_list what j "networks" in
  if networks = [] then failwith "BENCH_network: empty network list";
  List.iter
    (fun nw ->
      let name = require_str "network" nw "name" in
      let what = "network " ^ name in
      ignore (require_num what nw "batch");
      ignore (require_num what nw "layers");
      ignore (require_num what nw "simulated_gflops");
      ignore (require_num what nw "arena_bytes");
      ignore (require_num what nw "tune_wall_cold_seconds");
      ignore (require_num what nw "tune_wall_hot_seconds");
      check_stat what nw "exec_wall_seconds")
    networks

let validate_serving j =
  let what = "BENCH_serving" in
  if require_str what j "schema" <> "swatop-bench-serving" then
    failwith "BENCH_serving: wrong schema tag";
  ignore (require_num what j "schema_version");
  let scenarios = require_list what j "scenarios" in
  if scenarios = [] then failwith "BENCH_serving: empty scenario list";
  List.iter
    (fun sc ->
      let name = require_str "scenario" sc "name" in
      let what = "scenario " ^ name in
      ignore (require_str what sc "trace");
      List.iter
        (fun k -> ignore (require_num what sc k))
        [
          "rate"; "duration_seconds"; "cgs"; "slo_ms"; "seed"; "max_batch"; "arrivals";
          "completed"; "shed"; "dropped"; "throughput_rps"; "latency_p50_ms"; "latency_p99_ms";
          "batches"; "makespan_seconds";
        ];
      if require_num what sc "dropped" <> 0.0 then
        failwith (Printf.sprintf "%s: dropped requests (conservation violated)" what);
      let arrivals = require_num what sc "arrivals" in
      let accounted = require_num what sc "completed" +. require_num what sc "shed" in
      if arrivals <> accounted then
        failwith
          (Printf.sprintf "%s: %.0f arrivals but %.0f completed+shed" what arrivals accounted);
      check_stat what sc "serve_wall_seconds")
    scenarios

let require_bool what j k =
  match member k j with
  | Some (Bool b) -> b
  | _ -> failwith (Printf.sprintf "%s: missing or non-boolean field %S" what k)

(* The chaos file embeds its own acceptance bounds: every scenario must
   conserve requests outright, and the soak-level recovery/tail aggregates
   must hold the same thresholds Serve_chaos.check enforces in-process. *)
let validate_chaos j =
  let what = "BENCH_chaos" in
  if require_str what j "schema" <> "swatop-bench-chaos" then
    failwith "BENCH_chaos: wrong schema tag";
  ignore (require_num what j "schema_version");
  let scenarios = require_list what j "scenarios" in
  if scenarios = [] then failwith "BENCH_chaos: empty scenario list";
  List.iter
    (fun sc ->
      let name = require_str "scenario" sc "name" in
      let what = "scenario " ^ name in
      ignore (require_str what sc "kind");
      ignore (require_str what sc "plan");
      List.iter
        (fun k -> ignore (require_num what sc k))
        [
          "arrivals"; "completed"; "shed"; "dropped"; "kills"; "recoveries"; "retried";
          "fallbacks"; "requeues"; "probes"; "throughput_rps"; "p99_ms"; "throughput_ratio";
          "p99_ratio";
        ];
      if not (require_bool what sc "conserved") then
        failwith (Printf.sprintf "%s: marked not conserved" what);
      if require_num what sc "dropped" <> 0.0 then
        failwith (Printf.sprintf "%s: dropped requests (conservation violated)" what);
      let arrivals = require_num what sc "arrivals" in
      let accounted = require_num what sc "completed" +. require_num what sc "shed" in
      if arrivals <> accounted then
        failwith
          (Printf.sprintf "%s: %.0f arrivals but %.0f completed+shed" what arrivals accounted))
    scenarios;
  if not (require_bool what j "all_conserved") then
    failwith "BENCH_chaos: soak not fully conserved";
  let min_rec = require_num what j "min_recovered_throughput_ratio" in
  if min_rec < 0.95 then
    failwith
      (Printf.sprintf "BENCH_chaos: recovered throughput ratio %.3f below the 0.95 bound" min_rec);
  let max_p99 = require_num what j "max_p99_ratio" in
  if max_p99 > 10.0 then
    failwith (Printf.sprintf "BENCH_chaos: p99 inflation %.2fx above the 10x bound" max_p99);
  check_stat what j "chaos_wall_seconds"

(* ------------------------------------------------------------------ *)
(* Generation. *)

let sink = ref 0.0
let absorb x = sink := !sink +. x

let stat_json st =
  Obj
    [
      ("mean", Num (Stat.mean st));
      ("stddev", Num (Stat.stddev st));
      ("min", Num (Stat.min st));
      ("max", Num (Stat.max st));
    ]

(* Run [f] warmup+samples times; returns the wall-time stat and the last
   result (every run's scalar digest feeds the sink). *)
let sampled ~warmup ~samples ~digest f =
  let st = Stat.create () in
  let last = ref None in
  for i = 1 to warmup + samples do
    let w0 = Prelude.Clock.wall () in
    let r = f () in
    let w1 = Prelude.Clock.wall () in
    absorb (digest r);
    if i > warmup then Stat.add st (w1 -. w0);
    last := Some r
  done;
  (st, Option.get !last)

(* The matmul and conv strategy types differ, so workload thunks return
   this monomorphic digest of the polymorphic outcome. *)
type tune_result = {
  tr_measured : int;
  tr_hardware_seconds : float;
  tr_best_seconds : float;
  tr_batches : int;
  tr_rmse : float;
}

let digest (o : 'a Swatop.Tuner.outcome) =
  {
    tr_measured = o.report.measured;
    tr_hardware_seconds = o.report.hardware_seconds;
    tr_best_seconds = o.best_seconds;
    tr_batches = o.report.batches;
    tr_rmse = o.report.model_rmse;
  }

type tuner_workload = {
  tw_name : string;
  tw_flops : float;
  tw_candidates : int;
  tw_blackbox : unit -> tune_result;
  tw_guided : unit -> tune_result;
}

let bench_tuner ~seed ~warmup ~samples =
  let workloads =
    (* Effort scales problem size, not methodology: quick must fit a CI
       job on one core (the brute-force baseline really measures the whole
       space), full uses the actual ResNet-18 conv5_x layer. *)
    let matmul_dims = effort_pick ~quick:(128, 128, 128) ~standard:(256, 256, 256) ~full:(512, 512, 512) in
    let conv =
      effort_pick
        ~quick:("conv5_x-scaled", 32, 32, 7)
        ~standard:("conv5_x-scaled", 64, 64, 7)
        ~full:("resnet18 conv5_x b1", 512, 512, 7)
    in
    let m, n, k = matmul_dims in
    let mm =
      let t = Swatop_ops.Matmul.problem ~m ~n ~k in
      let space = Swatop_ops.Matmul.space t in
      {
        tw_name = Printf.sprintf "matmul %dx%dx%d" m n k;
        tw_flops = Swatop_ops.Matmul.flops t;
        tw_candidates = List.length space;
        tw_blackbox =
          (fun () ->
            digest
              (Swatop.Tuner.blackbox_tune ~candidates:space ~build:(Swatop_ops.Matmul.build t) ()));
        tw_guided =
          (fun () ->
            digest
              (fst
                 (Swatop.Tuner.guided_tune
                    ~config:(Swatop.Tuner.guided_defaults ~seed)
                    ~candidates:space ~build:(Swatop_ops.Matmul.build t) ())));
      }
    in
    let cname, ni, no, out = conv in
    let cv =
      let spec = Swtensor.Conv_spec.create ~b:1 ~ni ~no ~ro:out ~co:out ~kr:3 ~kc:3 () in
      let t = Swatop_ops.Conv_implicit.problem spec in
      let space = Swatop_ops.Conv_implicit.space t in
      {
        tw_name = Printf.sprintf "conv_implicit %s %dx%d@%d" cname ni no out;
        tw_flops = Swatop_ops.Conv_implicit.flops t;
        tw_candidates = List.length space;
        tw_blackbox =
          (fun () ->
            digest
              (Swatop.Tuner.blackbox_tune ~candidates:space
                 ~build:(Swatop_ops.Conv_implicit.build t) ()));
        tw_guided =
          (fun () ->
            digest
              (fst
                 (Swatop.Tuner.guided_tune
                    ~config:(Swatop.Tuner.guided_defaults ~seed)
                    ~candidates:space ~build:(Swatop_ops.Conv_implicit.build t) ())));
      }
    in
    [ mm; cv ]
  in
  let entries =
    List.map
      (fun w ->
        Printf.printf "tuner workload: %s (%d candidates)\n%!" w.tw_name w.tw_candidates;
        (* The brute-force baseline is deterministic and by far the most
           expensive call in the harness: one sample, no warmup. The guided
           side is what the wall-time claim is about, so it gets the full
           warmup+samples treatment. *)
        let bb_wall, bb = sampled ~warmup:0 ~samples:1 ~digest:(fun d -> d.tr_best_seconds) w.tw_blackbox in
        let g_wall, g = sampled ~warmup ~samples ~digest:(fun d -> d.tr_best_seconds) w.tw_guided in
        let quality = bb.tr_best_seconds /. g.tr_best_seconds in
        let fraction = float_of_int g.tr_measured /. float_of_int w.tw_candidates in
        Printf.printf
          "  exhaustive: %d measured, %.2fs wall | guided: %d measured (%.1f%%), %.2fs wall | quality %.4f\n%!"
          bb.tr_measured (Stat.mean bb_wall) g.tr_measured (100.0 *. fraction) (Stat.mean g_wall)
          quality;
        let side d wall =
          Obj
            [
              ("candidates_measured", Num (float_of_int d.tr_measured));
              ("hardware_seconds", Num d.tr_hardware_seconds);
              ("best_gflops", Num (gflops w.tw_flops d.tr_best_seconds));
              ("wall_seconds", stat_json wall);
            ]
        in
        Obj
          [
            ("name", Str w.tw_name);
            ("space_size", Num (float_of_int w.tw_candidates));
            ("exhaustive", side bb bb_wall);
            ( "guided",
              match side g g_wall with
              | Obj kvs ->
                Obj
                  (kvs
                  @ [
                      ("batches", Num (float_of_int g.tr_batches));
                      ("model_rmse", Num g.tr_rmse);
                    ])
              | j -> j );
            ("quality_vs_exhaustive", Num quality);
            ("measured_fraction", Num fraction);
          ])
      workloads
  in
  Obj
    [
      ("schema", Str "swatop-bench-tuner");
      ("schema_version", Num 1.0);
      ("seed", Num (float_of_int seed));
      ("samples", Num (float_of_int samples));
      ("workloads", List entries);
      ("sink", Num !sink);
    ]

let bench_network ~seed ~warmup ~samples =
  let gm = Lazy.force gemm_model in
  let networks =
    effort_pick
      ~quick:[ ("smoke", 1) ]
      ~standard:[ ("smoke", 1); ("ResNet", 1) ]
      ~full:[ ("smoke", 1); ("VGG16", 1); ("ResNet", 1); ("Yolo", 1) ]
  in
  ignore seed;
  let entries =
    List.map
      (fun (name, batch) ->
        Printf.printf "network: %s (batch %d)\n%!" name batch;
        let graph () =
          match name with
          | "smoke" -> Swatop_graph.Graph_ir.smoke ~batch
          | _ -> (
            match List.find_opt (fun n -> n.N.net_name = name) N.all with
            | Some n -> Swatop_graph.Graph_ir.of_network ~batch n
            | None -> failwith ("unknown network " ^ name))
        in
        (* Cold: fresh cache. Hot: recompile against the now-warm cache. *)
        let cache = Swatop.Schedule_cache.create () in
        let g = graph () in
        let cold = Swatop_graph.Graph_compile.compile ~cache ~gemm_model:gm g in
        let cold_report = Swatop_graph.Graph_exec.run ~numeric:false cold in
        let hot = Swatop_graph.Graph_compile.compile ~cache ~gemm_model:gm (graph ()) in
        let exec_wall, report =
          sampled ~warmup ~samples
            ~digest:(fun r -> r.Swatop_graph.Graph_exec.r_seconds)
            (fun () -> Swatop_graph.Graph_exec.run ~numeric:false hot)
        in
        absorb cold_report.Swatop_graph.Graph_exec.r_seconds;
        Printf.printf
          "  %.1f simulated GFLOP/s | arena %d bytes | tune cold %.2fs hot %.2fs | exec %.3fs host\n%!"
          (report.Swatop_graph.Graph_exec.r_flops_per_second /. 1e9)
          report.r_arena.Swatop_graph.Graph_plan.ar_bytes
          cold.Swatop_graph.Graph_compile.p_tune_wall hot.p_tune_wall (Stat.mean exec_wall);
        Obj
          [
            ("name", Str name);
            ("batch", Num (float_of_int batch));
            ("layers", Num (float_of_int (List.length report.r_layers)));
            ("simulated_gflops", Num (report.r_flops_per_second /. 1e9));
            ("arena_bytes", Num (float_of_int report.r_arena.Swatop_graph.Graph_plan.ar_bytes));
            ("tune_wall_cold_seconds", Num cold.p_tune_wall);
            ("tune_wall_hot_seconds", Num hot.p_tune_wall);
            ("exec_wall_seconds", stat_json exec_wall);
          ])
      networks
  in
  Obj
    [
      ("schema", Str "swatop-bench-network");
      ("schema_version", Num 1.0);
      ("networks", List entries);
      ("sink", Num !sink);
    ]

let bench_serving ~seed ~warmup ~samples =
  let module S = Swatop_serve in
  let duration = effort_pick ~quick:1.0 ~standard:5.0 ~full:10.0 in
  let max_batch = effort_pick ~quick:4 ~standard:8 ~full:8 in
  Printf.printf "serving: compiling smoke at batch sizes %s\n%!"
    (String.concat ", " (List.map string_of_int (S.Serve_net.plan_sizes ~max_batch)));
  (* One compiled ladder serves every scenario: the executor is stateless
     across runs, and sharing it keeps the harness wall time dominated by
     the serving loops being measured. *)
  let net =
    S.Serve_net.compile
      ~gemm_model:(Lazy.force gemm_model)
      ~graph:(fun ~batch -> Swatop_graph.Graph_ir.smoke ~batch)
      ~max_batch "smoke"
  in
  let executor = S.Serve_net.executor net in
  let base =
    {
      S.Serve_engine.default with
      cf_duration = duration;
      cf_max_batch = max_batch;
      cf_seed = seed;
    }
  in
  let scenarios =
    [
      ("smoke-poisson", base);
      ("smoke-bursty", { base with cf_trace = S.Serve_trace.Bursty });
    ]
  in
  let entries =
    List.map
      (fun (name, cf) ->
        let wall, r =
          sampled ~warmup ~samples
            ~digest:(fun (r : S.Serve_engine.report) -> r.sr_throughput)
            (fun () -> S.Serve_engine.run ~executor cf)
        in
        Printf.printf
          "  %s: %d arrivals, %d completed, %d shed | %.1f req/s | p99 %.3f ms | %d batches\n%!"
          name r.sr_arrivals r.sr_completed r.sr_shed r.sr_throughput
          (r.sr_latency_p99 *. 1e3) r.sr_batches;
        Obj
          [
            ("name", Str name);
            ("trace", Str (S.Serve_trace.kind_to_string cf.cf_trace));
            ("rate", Num cf.cf_rate);
            ("duration_seconds", Num cf.cf_duration);
            ("cgs", Num (float_of_int cf.cf_cgs));
            ("slo_ms", Num (cf.cf_slo *. 1e3));
            ("seed", Num (float_of_int cf.cf_seed));
            ("max_batch", Num (float_of_int cf.cf_max_batch));
            ("arrivals", Num (float_of_int r.sr_arrivals));
            ("completed", Num (float_of_int r.sr_completed));
            ("shed", Num (float_of_int r.sr_shed));
            ("dropped", Num (float_of_int r.sr_dropped));
            ("throughput_rps", Num r.sr_throughput);
            ("latency_p50_ms", Num (r.sr_latency_p50 *. 1e3));
            ("latency_p99_ms", Num (r.sr_latency_p99 *. 1e3));
            ("batches", Num (float_of_int r.sr_batches));
            ("makespan_seconds", Num r.sr_makespan);
            ("tune_wall_seconds", Num net.S.Serve_net.nt_tune_wall);
            ("serve_wall_seconds", stat_json wall);
          ])
      scenarios
  in
  Obj
    [
      ("schema", Str "swatop-bench-serving");
      ("schema_version", Num 1.0);
      ("scenarios", List entries);
    ]

let bench_chaos ~seed ~warmup ~samples =
  let module S = Swatop_serve in
  let plans = effort_pick ~quick:20 ~standard:20 ~full:30 in
  let duration = effort_pick ~quick:0.3 ~standard:1.0 ~full:2.0 in
  let max_batch = effort_pick ~quick:4 ~standard:8 ~full:8 in
  Printf.printf "chaos: compiling smoke, then soaking %d seeded fault plans\n%!" plans;
  let net =
    S.Serve_net.compile
      ~gemm_model:(Lazy.force gemm_model)
      ~graph:(fun ~batch -> Swatop_graph.Graph_ir.smoke ~batch)
      ~max_batch "smoke"
  in
  let cf =
    {
      S.Serve_engine.default with
      cf_rate = 150.0;
      cf_duration = duration;
      cf_max_batch = max_batch;
      cf_seed = seed;
    }
  in
  let wall, r =
    sampled ~warmup ~samples
      ~digest:(fun (r : S.Serve_chaos.report) -> r.ch_baseline_throughput)
      (fun () -> S.Serve_chaos.run ~plans ~seed ~executor:(S.Serve_net.executor net) cf)
  in
  Printf.printf
    "  %d scenarios: %d kills, %d recoveries, %d retried | conserved %b | min recovered tp \
     %.3fx | max p99 %.2fx\n%!"
    (List.length r.ch_scenarios) r.ch_total_kills r.ch_total_recoveries r.ch_total_retried
    r.ch_all_conserved r.ch_min_recovered_throughput_ratio r.ch_max_p99_ratio;
  let entries =
    List.map
      (fun (sc : S.Serve_chaos.scenario) ->
        Obj
          [
            ("name", Str (Printf.sprintf "%02d-%s" sc.sc_index sc.sc_kind));
            ("kind", Str sc.sc_kind);
            ("plan", Str sc.sc_plan);
            ("arrivals", Num (float_of_int sc.sc_arrivals));
            ("completed", Num (float_of_int sc.sc_completed));
            ("shed", Num (float_of_int sc.sc_shed));
            ("dropped", Num (float_of_int sc.sc_dropped));
            ("kills", Num (float_of_int sc.sc_kills));
            ("recoveries", Num (float_of_int sc.sc_recoveries));
            ("retried", Num (float_of_int sc.sc_retried));
            ("fallbacks", Num (float_of_int sc.sc_fallbacks));
            ("requeues", Num (float_of_int sc.sc_requeues));
            ("probes", Num (float_of_int sc.sc_probes));
            ("throughput_rps", Num sc.sc_throughput);
            ("p99_ms", Num (sc.sc_p99 *. 1e3));
            ("conserved", Bool sc.sc_conserved);
            ("throughput_ratio", Num sc.sc_throughput_ratio);
            ("p99_ratio", Num sc.sc_p99_ratio);
          ])
      r.ch_scenarios
  in
  Obj
    [
      ("schema", Str "swatop-bench-chaos");
      ("schema_version", Num 1.0);
      ("network", Str r.ch_name);
      ("plans", Num (float_of_int r.ch_plans));
      ("seed", Num (float_of_int r.ch_seed));
      ("rate", Num cf.S.Serve_engine.cf_rate);
      ("duration_seconds", Num cf.S.Serve_engine.cf_duration);
      ("baseline_throughput_rps", Num r.ch_baseline_throughput);
      ("baseline_p99_ms", Num (r.ch_baseline_p99 *. 1e3));
      ("scenarios", List entries);
      ("all_conserved", Bool r.ch_all_conserved);
      ("total_kills", Num (float_of_int r.ch_total_kills));
      ("total_recoveries", Num (float_of_int r.ch_total_recoveries));
      ("total_retried", Num (float_of_int r.ch_total_retried));
      ("total_requeues", Num (float_of_int r.ch_total_requeues));
      ("max_p99_ratio", Num r.ch_max_p99_ratio);
      ("min_recovered_throughput_ratio", Num r.ch_min_recovered_throughput_ratio);
      ("tune_wall_seconds", Num net.S.Serve_net.nt_tune_wall);
      ("chaos_wall_seconds", stat_json wall);
    ]

(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* ------------------------------------------------------------------ *)
(* Baseline diff: compare freshly generated files against the committed
   ones, entry-matched by name. Only simulated (deterministic) quantities
   are gated, each with a small noise bound for intended float drift; host
   wall times are machine-dependent and explicitly skipped. Entries present
   on one side only are noted and skipped, but at least one pair must match
   per file or the diff is vacuous and fails. *)

let diff_tolerance = 0.02

let entries_by_name what j key =
  List.map (fun e -> (require_str what e "name", e)) (require_list what j key)

let diff_files ~fresh_dir ~base_dir =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let load dir name = parse_json (read_file (Filename.concat dir name)) in
  let pair name key what =
    let fresh = entries_by_name what (load fresh_dir name) key in
    let base = entries_by_name what (load base_dir name) key in
    let matched =
      List.filter_map
        (fun (n, b) ->
          match List.assoc_opt n fresh with
          | Some f -> Some (n, b, f)
          | None ->
            Printf.printf "%s: %S only in baseline — skipped\n" name n;
            None)
        base
    in
    List.iter
      (fun (n, _) ->
        if not (List.mem_assoc n base) then
          Printf.printf "%s: %S only in fresh run — skipped\n" name n)
      fresh;
    if matched = [] then fail "%s: no baseline entry matches a fresh entry" name;
    matched
  in
  (* A lower-is-worse quantity: fresh must stay within the noise bound of
     the baseline. *)
  let floor_check ~name ~entry ~field base fresh =
    if fresh < base *. (1.0 -. diff_tolerance) then
      fail "%s %s: %s regressed %.6g -> %.6g (bound %.0f%%)" name entry field base fresh
        (100.0 *. diff_tolerance)
  in
  let ceil_check ~name ~entry ~field ~slack base fresh =
    if fresh > (base *. (1.0 +. diff_tolerance)) +. slack then
      fail "%s %s: %s grew %.6g -> %.6g (bound %.0f%%)" name entry field base fresh
        (100.0 *. diff_tolerance)
  in
  (match pair "BENCH_tuner.json" "workloads" "workload" with
  | matched ->
    List.iter
      (fun (n, b, f) ->
        let num side k = require_num ("workload " ^ n) side k in
        if num b "space_size" <> num f "space_size" then
          fail "workload %s: space_size changed %.0f -> %.0f" n (num b "space_size")
            (num f "space_size");
        List.iter
          (fun side_name ->
            let bs = require_obj n b side_name and fs = require_obj n f side_name in
            floor_check ~name:n ~entry:side_name ~field:"best_gflops"
              (require_num n bs "best_gflops") (require_num n fs "best_gflops");
            ceil_check ~name:n ~entry:side_name ~field:"hardware_seconds" ~slack:0.0
              (require_num n bs "hardware_seconds")
              (require_num n fs "hardware_seconds"))
          [ "exhaustive"; "guided" ];
        let bg = require_obj n b "guided" and fg = require_obj n f "guided" in
        ceil_check ~name:n ~entry:"guided" ~field:"candidates_measured" ~slack:1.0
          (require_num n bg "candidates_measured")
          (require_num n fg "candidates_measured"))
      matched
  | exception e -> fail "BENCH_tuner.json: %s" (Printexc.to_string e));
  (match pair "BENCH_network.json" "networks" "network" with
  | matched ->
    List.iter
      (fun (n, b, f) ->
        let num side k = require_num ("network " ^ n) side k in
        if num b "layers" <> num f "layers" then
          fail "network %s: layer count changed %.0f -> %.0f" n (num b "layers") (num f "layers");
        floor_check ~name:n ~entry:"network" ~field:"simulated_gflops" (num b "simulated_gflops")
          (num f "simulated_gflops");
        ceil_check ~name:n ~entry:"network" ~field:"arena_bytes" ~slack:0.0 (num b "arena_bytes")
          (num f "arena_bytes"))
      matched
  | exception e -> fail "BENCH_network.json: %s" (Printexc.to_string e));
  (match pair "BENCH_serving.json" "scenarios" "scenario" with
  | matched ->
    List.iter
      (fun (n, b, f) ->
        let num side k = require_num ("scenario " ^ n) side k in
        (* The arrival trace is a pure function of (kind, rate, duration,
           seed): a changed count means the workload itself changed, which
           no noise bound should absorb. *)
        if num b "arrivals" <> num f "arrivals" then
          fail "scenario %s: arrival trace changed %.0f -> %.0f" n (num b "arrivals")
            (num f "arrivals");
        floor_check ~name:n ~entry:"serving" ~field:"throughput_rps" (num b "throughput_rps")
          (num f "throughput_rps");
        ceil_check ~name:n ~entry:"serving" ~field:"latency_p50_ms" ~slack:0.0
          (num b "latency_p50_ms") (num f "latency_p50_ms");
        ceil_check ~name:n ~entry:"serving" ~field:"latency_p99_ms" ~slack:0.0
          (num b "latency_p99_ms") (num f "latency_p99_ms");
        ceil_check ~name:n ~entry:"serving" ~field:"shed" ~slack:0.0 (num b "shed")
          (num f "shed"))
      matched
  | exception e -> fail "BENCH_serving.json: %s" (Printexc.to_string e));
  (match pair "BENCH_chaos.json" "scenarios" "scenario" with
  | matched ->
    List.iter
      (fun (n, b, f) ->
        let num side k = require_num ("chaos scenario " ^ n) side k in
        (* The fault schedule and the trace are both pure functions of the
           seed: a changed injected-event count means the scenario itself
           changed, which no noise bound should absorb. *)
        List.iter
          (fun field ->
            if num b field <> num f field then
              fail "chaos %s: %s changed %.0f -> %.0f" n field (num b field) (num f field))
          [ "arrivals"; "dropped"; "kills"; "recoveries" ];
        floor_check ~name:n ~entry:"chaos" ~field:"throughput_rps" (num b "throughput_rps")
          (num f "throughput_rps");
        ceil_check ~name:n ~entry:"chaos" ~field:"p99_ms" ~slack:0.0 (num b "p99_ms")
          (num f "p99_ms"))
      matched
  | exception e -> fail "BENCH_chaos.json: %s" (Printexc.to_string e));
  Printf.printf "host wall times: machine-dependent, not diffed\n";
  match List.rev !failures with
  | [] -> Printf.printf "diff: fresh results within %.0f%% of %s baselines\n" (100.0 *. diff_tolerance) base_dir
  | fs ->
    List.iter (fun m -> Printf.printf "diff FAIL: %s\n" m) fs;
    exit 1

let check_files dir =
  let ok = ref true in
  let run name f =
    let path = Filename.concat dir name in
    match f (parse_json (read_file path)) with
    | () -> Printf.printf "%s: ok\n" name
    | exception e ->
      Printf.printf "%s: FAILED (%s)\n" name
        (match e with Failure m | Parse_error m -> m | e -> Printexc.to_string e);
      ok := false
  in
  run "BENCH_tuner.json" (fun j ->
      let worst = validate_tuner j in
      if worst < quality_bound then
        failwith
          (Printf.sprintf "worst guided quality %.4f below the %.2f bound" worst quality_bound);
      Printf.printf "BENCH_tuner.json: worst guided quality %.4f (bound %.2f)\n" worst
        quality_bound);
  run "BENCH_network.json" validate_network;
  run "BENCH_serving.json" validate_serving;
  run "BENCH_chaos.json" validate_chaos;
  if not !ok then exit 1

let () =
  let samples = ref 3 and warmup = ref 1 and seed = ref 42 in
  let out_dir = ref "." and check_only = ref false and diff_base = ref None in
  Array.iteri
    (fun i a ->
      if i > 0 then
        let value prefix =
          if String.length a > String.length prefix && String.sub a 0 (String.length prefix) = prefix
          then Some (String.sub a (String.length prefix) (String.length a - String.length prefix))
          else None
        in
        match a with
        | "--quick" -> effort := Quick
        | "--full" -> effort := Full
        | "--check" -> check_only := true
        | "--help" | "-h" ->
          print_endline
            "usage: bench_json.exe [--quick|--full] [--samples=N] [--warmup=N] [--seed=S] \
             [--jobs=N] [--out=DIR] [--check] [--diff=BASEDIR]";
          print_endline
            "writes BENCH_tuner.json, BENCH_network.json, BENCH_serving.json and \
             BENCH_chaos.json to DIR (default .); exits non-zero \
             if guided quality < 0.99 of brute force. --check validates existing files instead; \
             --diff compares the files in DIR against the baselines in BASEDIR (simulated \
             quantities only, noise-bounded) without regenerating anything.";
          exit 0
        | _ -> (
          match
            ( value "--samples=", value "--warmup=", value "--seed=", value "--jobs=",
              value "--out=", value "--diff=" )
          with
          | Some v, _, _, _, _, _ -> samples := max 1 (int_of_string v)
          | _, Some v, _, _, _, _ -> warmup := max 0 (int_of_string v)
          | _, _, Some v, _, _, _ -> seed := int_of_string v
          | _, _, _, Some v, _, _ -> Prelude.Parallel.set_jobs (Some (max 1 (int_of_string v)))
          | _, _, _, _, Some v, _ -> out_dir := v
          | _, _, _, _, _, Some v -> diff_base := Some v
          | _ ->
            Printf.eprintf "unknown argument %s (try --help)\n" a;
            exit 1))
    Sys.argv;
  match !diff_base with
  | Some base_dir -> diff_files ~fresh_dir:!out_dir ~base_dir
  | None ->
  if !check_only then check_files !out_dir
  else begin
    let seed = !seed and warmup = !warmup and samples = !samples in
    Printf.printf "swATOP JSON bench — seed %d, %d samples after %d warmup\n%!" seed samples warmup;
    let tuner = bench_tuner ~seed ~warmup ~samples in
    let network = bench_network ~seed ~warmup ~samples in
    let serving = bench_serving ~seed:7 ~warmup ~samples in
    let chaos = bench_chaos ~seed:7 ~warmup ~samples in
    (* Self-check before writing: the generator must never publish a file
       its own --check would reject. *)
    let worst = validate_tuner tuner in
    validate_network network;
    validate_serving serving;
    validate_chaos chaos;
    write_file (Filename.concat !out_dir "BENCH_tuner.json") (to_string tuner ^ "\n");
    write_file (Filename.concat !out_dir "BENCH_network.json") (to_string network ^ "\n");
    write_file (Filename.concat !out_dir "BENCH_serving.json") (to_string serving ^ "\n");
    write_file (Filename.concat !out_dir "BENCH_chaos.json") (to_string chaos ^ "\n");
    Printf.printf
      "sink %.9g\nwrote BENCH_tuner.json, BENCH_network.json, BENCH_serving.json and \
       BENCH_chaos.json (worst guided quality %.4f)\n"
      !sink worst;
    if worst < quality_bound then begin
      Printf.eprintf "FAIL: guided quality %.4f below the %.2f bound\n" worst quality_bound;
      exit 1
    end
  end
