(* Chaos soak of the serving runtime: N seeded fault plans — CG kills,
   probe-driven recoveries, transient DMA and layer faults, hangs, and
   mixes — against the full trace/batch/admit/shard/exec stack over the
   smoke network, every scenario scored against the fault-free baseline.

   All figures are virtual-clock quantities, bit-identical for a fixed
   seed; the harness exits through the same invariants CI gates on:
   conservation in every scenario, recovered throughput >= 95% of
   fault-free, bounded p99 inflation. *)

open Bench_common
module S = Swatop_serve

let run () =
  section "Chaos soak: health probes, circuit breakers, retry, recovery";
  let plans = effort_pick ~quick:12 ~standard:20 ~full:30 in
  let duration = effort_pick ~quick:0.3 ~standard:1.0 ~full:2.0 in
  let max_batch = effort_pick ~quick:4 ~standard:8 ~full:8 in
  let net =
    S.Serve_net.compile ?cache:!schedule_cache
      ~gemm_model:(Lazy.force gemm_model)
      ~graph:(fun ~batch -> Swatop_graph.Graph_ir.smoke ~batch)
      ~max_batch "smoke"
  in
  let cf =
    {
      S.Serve_engine.default with
      cf_rate = 150.0;
      cf_duration = duration;
      cf_max_batch = max_batch;
    }
  in
  let r = S.Serve_chaos.run ~plans ~executor:(S.Serve_net.executor net) cf in
  print_string (S.Serve_chaos.to_text r);
  match S.Serve_chaos.check r with
  | [] -> Printf.printf "  check: every scenario within bounds\n"
  | failures ->
    List.iter (fun f -> Printf.printf "  check FAILED: %s\n" f) failures;
    exit 1
