(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Sec. 5) on the simulated SW26010, plus ablations and
   micro-benchmarks. See EXPERIMENTS.md for the paper-vs-measured record. *)

let experiments =
  [
    ("fig5", "Implicit CONV vs swDNN on CNN layers", Exp_conv_figs.fig5);
    ("fig6", "Winograd CONV vs manual on CNN layers", Exp_conv_figs.fig6);
    ("fig7", "Explicit CONV vs manual on CNN layers", Exp_conv_figs.fig7);
    ("table1", "225-config versatility sweep (+ Fig 8)", Exp_table1.run);
    ("table2", "GEMM vs xMath on 559 shapes", Exp_table2.run);
    ("table3", "Tuning time, black-box vs swATOP", Exp_tuner.table3);
    ("fig9", "Model pick vs brute-force best", Exp_tuner.fig9);
    ("fig10", "Auto-prefetching vs baseline", Exp_optimizer.fig10);
    ("fig11", "Lightweight vs traditional padding", Exp_optimizer.fig11);
    ("ablation", "Schedule-dimension ablations", Exp_ablation.run);
    ("network", "Whole-network compile + end-to-end execution", Exp_network.run);
    ("serving", "Inference serving: batching + admission + multi-CG", Exp_serving.run);
    ("chaos", "Chaos soak: fault plans vs the self-healing serving stack", Exp_chaos.run);
    ("micro", "Bechamel micro-benchmarks", Micro.run);
  ]

let usage () =
  print_endline
    "usage: bench/main.exe [--quick|--full] [--tuner-report] [--jobs=N] [--schedule-cache=FILE] \
     [--faults=PLAN] [experiment ...]";
  print_endline "experiments:";
  List.iter (fun (name, doc, _) -> Printf.printf "  %-9s %s\n" name doc) experiments;
  print_endline "(no experiment argument = run everything)"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let opt_value a prefix =
    if String.length a > String.length prefix && String.sub a 0 (String.length prefix) = prefix
    then Some (String.sub a (String.length prefix) (String.length a - String.length prefix))
    else None
  in
  let cache_path = ref None in
  let args =
    List.filter
      (fun a ->
        match a with
        | "--quick" ->
          Bench_common.effort := Bench_common.Quick;
          false
        | "--full" ->
          Bench_common.effort := Bench_common.Full;
          false
        | "--tuner-report" ->
          Bench_common.verbose_tuner := true;
          false
        | "--help" | "-h" ->
          usage ();
          exit 0
        | a when Option.is_some (opt_value a "--jobs=") -> (
          match int_of_string_opt (Option.get (opt_value a "--jobs=")) with
          | Some j when j >= 1 ->
            Prelude.Parallel.set_jobs (Some j);
            false
          | _ ->
            usage ();
            exit 1)
        | a when Option.is_some (opt_value a "--schedule-cache=") ->
          let path = Option.get (opt_value a "--schedule-cache=") in
          Bench_common.schedule_cache := Some (Swatop.Schedule_cache.load path);
          cache_path := Some path;
          false
        | a when Option.is_some (opt_value a "--faults=") -> (
          match Prelude.Fault.parse (Option.get (opt_value a "--faults=")) with
          | Ok plan ->
            Prelude.Fault.set (Some plan);
            false
          | Error e ->
            Printf.eprintf "invalid --faults plan: %s\n" e;
            exit 1)
        | _ -> true)
      args
  in
  let selected =
    match args with
    | [] -> experiments
    | names ->
      List.map
        (fun n ->
          let n = if String.length n > 2 && String.sub n 0 2 = "--" then String.sub n 2 (String.length n - 2) else n in
          match List.find_opt (fun (name, _, _) -> String.equal name n) experiments with
          | Some e -> e
          | None ->
            usage ();
            exit 1)
        names
  in
  (* Wall clock, not Sys.time: CPU time double-counts parallel tuning. *)
  let t0 = Prelude.Clock.wall () in
  Printf.printf "swATOP reproduction bench — simulated SW26010 core group (%.0f GFLOPS peak, %.1f GB/s DMA)\n"
    (Sw26010.Config.peak_flops_cg /. 1e9)
    (Sw26010.Config.dma_peak_bw /. 1e9);
  Printf.printf "effort: %s\n"
    (match !Bench_common.effort with
    | Bench_common.Quick -> "quick (subsampled; use --full for everything)"
    | Bench_common.Standard -> "standard (some sweeps subsampled; use --full for everything)"
    | Bench_common.Full -> "full");
  List.iter (fun (_, _, f) -> f ()) selected;
  (match (!cache_path, !Bench_common.schedule_cache) with
  | Some path, Some cache ->
    Swatop.Schedule_cache.save path cache;
    Printf.printf "\nschedule cache: %d entries, %d hits, %d misses (%s)\n"
      (Swatop.Schedule_cache.size cache)
      (Swatop.Schedule_cache.hits cache)
      (Swatop.Schedule_cache.misses cache)
      path
  | _ -> ());
  Printf.printf "\ntotal bench wall time: %s\n" (Bench_common.hms (Prelude.Clock.wall () -. t0))
