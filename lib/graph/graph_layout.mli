(** Physical activation layouts and inter-layer copy (relayout / adapter)
    programs.

    Each tensorized operator fixes the layout of the activation it reads
    and writes (implicit: CHWB both ways; Winograd: BCHW; explicit GEMM:
    BCHW in, CBHW out; dense/GEMM: BCHW). When adjacent layers' tuned
    winners disagree — or when the workload tables' stride-2/padding
    substitutions leave a spatial seam (a halo to embed or a pooled extent
    to crop) — the graph compiler materializes the seam as an explicit IR
    copy program, costed through the same simulator as the operators. *)

type act_layout = BCHW | CHWB | CBHW
(** Memory order of the logical (batch, channel, row, col) axes,
    outermost first. *)

val all : act_layout list
val to_string : act_layout -> string
val to_layout : act_layout -> Swtensor.Layout.t
val strides : act_layout -> Graph_ir.shape4 -> int array
(** Per-logical-axis element strides [ [|sb; sc; sh; sw|] ]. *)

val equivalent : Graph_ir.shape4 -> act_layout -> act_layout -> bool
(** Layouts that address this shape identically (extent-1 axes are free:
    CHWB and CBHW coincide at batch 1). *)

val algo_in : Swatop_ops.Dispatch.algo -> act_layout
val algo_out : Swatop_ops.Dispatch.algo -> act_layout

(** {2 Copy programs} *)

type t = {
  cp_src_layout : act_layout;
  cp_dst_layout : act_layout;
  cp_src_shape : Graph_ir.shape4;
  cp_dst_shape : Graph_ir.shape4;  (** batch/channels equal; extents may differ *)
  cp_src_elems : int;  (** physical buffer sizes (>= logical; the implicit
                           operator's input carries a DMA halo tail) *)
  cp_dst_elems : int;
}

val create :
  src_layout:act_layout ->
  dst_layout:act_layout ->
  src_shape:Graph_ir.shape4 ->
  dst_shape:Graph_ir.shape4 ->
  src_elems:int ->
  dst_elems:int ->
  t

val identity : t -> bool
(** The producer's buffer can be handed over untouched. *)

val shape_adapting : t -> bool
(** True when the copy bridges a spatial seam (crop or halo embed), not
    just a permutation. *)

val describe : t -> string

val build : t -> Swatop.Ir.program
(** Lower to IR ("src"/"dst" main buffers); run {!Swatop.Tuner.prepare}
    before interpreting. Destination elements outside the copied window
    keep their previous contents — with zeroed allocations, halo embedding
    is zero padding. *)

(** {2 Host-side references} *)

val apply_ref : t -> float array -> float array
(** Oracle for {!build}: packed source buffer to packed destination. *)

val adapt_tensor : t -> Swtensor.Tensor.t -> Swtensor.Tensor.t
(** Logical effect on the (b,c,h,w) tensor: centered crop / zero-embed.
    Layout-free — used by the layer-by-layer reference executor. *)

val pack : layout:act_layout -> shape:Graph_ir.shape4 -> elems:int -> Swtensor.Tensor.t -> float array
val unpack : layout:act_layout -> shape:Graph_ir.shape4 -> float array -> Swtensor.Tensor.t
