module Dispatch = Swatop_ops.Dispatch
module Matmul = Swatop_ops.Matmul

type impl = {
  im_algo : string;
  im_desc : string;
  im_space : int;
  im_seconds : float;
  im_program : Swatop.Ir.program;
  im_in_layout : Graph_layout.act_layout;
  im_out_layout : Graph_layout.act_layout;
  im_in_buf : string;
  im_out_buf : string;
  im_weight_buf : string;
  im_in_elems : int;
  im_out_elems : int;
  im_weight_shape : Swtensor.Shape.t;
  im_bindings : weight:Swtensor.Tensor.t -> (string * float array) list;
  im_unpack : (string * float array) list -> Swtensor.Tensor.t;
  im_reference : input:Swtensor.Tensor.t -> weight:Swtensor.Tensor.t -> Swtensor.Tensor.t;
}

type copy_step = { cs_spec : Graph_layout.t; cs_program : Swatop.Ir.program; cs_seconds : float }

type step =
  | Layer of { st_node : Graph_ir.node; st_impl : impl; st_fallbacks : impl list }
  | Copy of copy_step

type plan = {
  p_graph : Graph_ir.t;
  p_steps : step list;
  p_input_layout : Graph_layout.act_layout;  (** always BCHW (canonical) *)
  p_input_elems : int;
  p_naive_relayouts : int;
  p_used_relayouts : int;
  p_adapters : int;
  p_tune_wall : float;
}

let buf_elems (p : Swatop.Ir.program) name =
  match List.find_opt (fun (b : Swatop.Ir.buf) -> String.equal b.buf_name name) p.bufs with
  | Some b -> b.cg_elems
  | None ->
    Prelude.Swatop_error.error ~site:"graph.compile"
      ~context:[ ("program", p.prog_name); ("buffer", name) ]
      "program has no such buffer"

let zeros4 (s : Graph_ir.shape4) =
  Swtensor.Tensor.create (Swtensor.Shape.of_list [ s.sb; s.sc; s.sh; s.sw ])

(* ------------------------------------------------------------------ *)
(* Per-node implementations: every applicable algorithm becomes a layout
   option for the propagation pass — keeping the slower algorithms around
   is what lets the DP trade a relayout against re-dispatching a layer
   under the neighbor's layout. *)

let conv_impls ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model (n : Graph_ir.node) spec =
  Dispatch.all ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model spec
  |> List.filter_map (fun (algo, choice) ->
         Option.map
           (fun (c : Dispatch.choice) ->
             {
               im_algo = Dispatch.algo_name algo;
               im_desc = c.c_desc;
               im_space = c.c_space;
               im_seconds = c.c_seconds;
               im_program = c.c_program;
               im_in_layout = Graph_layout.algo_in algo;
               im_out_layout = Graph_layout.algo_out algo;
               im_in_buf = Dispatch.input_buffer algo;
               im_out_buf = Dispatch.output_buffer algo;
               im_weight_buf = "weight";
               im_in_elems = buf_elems c.c_program (Dispatch.input_buffer algo);
               im_out_elems = buf_elems c.c_program (Dispatch.output_buffer algo);
               im_weight_shape = Swtensor.Conv_spec.weight_shape spec;
               im_bindings =
                 (fun ~weight -> c.c_bindings_for ~input:(zeros4 n.Graph_ir.in_shape) ~weight);
               im_unpack = c.c_unpack;
               im_reference =
                 (fun ~input ~weight -> Swtensor.Conv_ref.forward spec ~input ~weight);
             })
           choice)

let dense_impls ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model (n : Graph_ir.node) ~d_in
    ~d_out =
  let b = n.Graph_ir.in_shape.Graph_ir.sb in
  let t = Matmul.problem ~m:b ~n:d_out ~k:d_in in
  let o = Matmul.tune ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model t in
  let best = o.Swatop.Tuner.best in
  let program = o.best_program in
  let flatten_a input =
    (* (b, c, h, w) row-major is exactly the (b, c*h*w) operand. *)
    Swtensor.Tensor.of_array
      (Swtensor.Shape.of_list [ b; d_in ])
      (Array.copy (Swtensor.Tensor.data input))
  in
  [
    {
      im_algo = "gemm";
      im_desc = Matmul.describe best;
      im_space = o.report.space_size;
      im_seconds = o.best_seconds;
      im_program = program;
      im_in_layout = Graph_layout.BCHW;
      im_out_layout = Graph_layout.BCHW;
      im_in_buf = "A";
      im_out_buf = "C";
      im_weight_buf = "B";
      im_in_elems = buf_elems program "A";
      im_out_elems = buf_elems program "C";
      im_weight_shape = Swtensor.Shape.of_list [ d_in; d_out ];
      im_bindings =
        (fun ~weight ->
          Matmul.bindings_for t best ~a:(Swtensor.Tensor.create (Swtensor.Shape.of_list [ b; d_in ]))
            ~b:weight);
      im_unpack =
        (fun bindings ->
          let c = Matmul.unpack_c t bindings in
          Swtensor.Tensor.of_fn
            (Swtensor.Shape.of_list [ b; d_out; 1; 1 ])
            (fun idx ->
              match idx with
              | [| cb; cn; _; _ |] -> Swtensor.Tensor.get c [| cb; cn |]
              | _ -> assert false));
      im_reference =
        (fun ~input ~weight ->
          let a = flatten_a input in
          let c = Matmul.reference ~a ~b:weight in
          Swtensor.Tensor.of_fn
            (Swtensor.Shape.of_list [ b; d_out; 1; 1 ])
            (fun idx ->
              match idx with
              | [| cb; cn; _; _ |] -> Swtensor.Tensor.get c [| cb; cn |]
              | _ -> assert false));
    }
  ]

(* ------------------------------------------------------------------ *)

let op_key (n : Graph_ir.node) =
  match n.Graph_ir.op with
  | Graph_ir.Conv spec -> "conv:" ^ Swtensor.Conv_spec.to_string spec
  | Graph_ir.Dense { d_in; d_out } ->
    Printf.sprintf "dense:%d:%d:%d" n.Graph_ir.in_shape.Graph_ir.sb d_in d_out

let node_impls ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model (n : Graph_ir.node) =
  match n.Graph_ir.op with
  | Graph_ir.Conv spec -> conv_impls ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model n spec
  | Graph_ir.Dense { d_in; d_out } ->
    dense_impls ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model n ~d_in ~d_out

(* ------------------------------------------------------------------ *)
(* Edge costs: an inter-layer copy is built, optimized and costed through
   the same simulator as the operators; results are memoized by the copy
   descriptor (networks repeat shapes heavily). The memo table is local to
   one [compile] call — a module-level table would be hidden mutable state
   shared by every compile in the process, which the serving layer's
   concurrent per-CG compilations must not race on. *)

let edge_key (spec : Graph_layout.t) =
  Printf.sprintf "%s|%d|%d" (Graph_layout.describe spec) spec.cp_src_elems spec.cp_dst_elems

let edge_step edge_cache spec =
  if Graph_layout.identity spec then None
  else
    let key = edge_key spec in
    match Hashtbl.find_opt edge_cache key with
    | Some s -> s
    | None ->
      let program = Swatop.Tuner.prepare (Graph_layout.build spec) in
      (* Node programs pass through the tuners' race gate; the layout copies
         are built here directly, so they get the same gate by hand. *)
      (match Swatop.Ir_verify.errors (Swatop.Ir_race.verify program) with
      | [] -> ()
      | errs ->
        invalid_arg
          (Printf.sprintf "Graph_compile.edge_step: copy %s races: %s" (Graph_layout.describe spec)
             (String.concat "; " (List.map Swatop.Ir_verify.to_string errs))));
      let r = Swatop.Interp.run ~numeric:false program in
      let s = Some { cs_spec = spec; cs_program = program; cs_seconds = r.Swatop.Interp.seconds } in
      Hashtbl.replace edge_cache key s;
      s

let edge_seconds = function None -> 0.0 | Some cs -> cs.cs_seconds

(* ------------------------------------------------------------------ *)

let compile ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model (g : Graph_ir.t) =
  let wall0 = Prelude.Clock.wall () in
  let nodes = Array.of_list g.Graph_ir.nodes in
  if Array.length nodes = 0 then invalid_arg "Graph_compile.compile: empty graph";
  (* Tune each distinct operator once, in parallel — the schedule cache is
     domain-safe, so cached compiles parallelize too. The one exception is
     a guided search over a cache: its warm-start weights flow from one
     tune into the next through the cache's per-family model entries, and
     that hand-off must happen in a deterministic order to keep replay
     independent of the job count. *)
  let keys = Array.map op_key nodes in
  let distinct =
    Array.to_list (Array.mapi (fun i k -> (k, i)) keys)
    |> List.sort_uniq (fun (a, _) (b, _) -> compare a b)
  in
  let tuned =
    let tune_one (_, i) = node_impls ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model nodes.(i) in
    let guided = match search with Some (Swatop.Tuner.Guided _) -> true | _ -> false in
    match cache with
    | Some _ when guided -> List.map tune_one distinct
    | _ -> Prelude.Parallel.parallel_map ?jobs tune_one distinct
  in
  let impls_by_key = Hashtbl.create 16 in
  List.iter2 (fun (k, _) impls -> Hashtbl.replace impls_by_key k impls) distinct tuned;
  let opts =
    Array.mapi
      (fun i k ->
        match Hashtbl.find impls_by_key k with
        | [] ->
          Prelude.Swatop_error.error ~site:"graph.compile"
            ~context:[ ("node", nodes.(i).Graph_ir.node_name); ("op", k) ]
            "no applicable implementation"
        | l -> Array.of_list l)
      keys
  in
  (* Layout propagation: shortest path through the layered option graph.
     dp.(i).(j) = best cost of executing nodes 0..i with node i using
     option j, including every inter-layer copy on the way. *)
  let n = Array.length nodes in
  let input_elems = Graph_ir.shape4_elems nodes.(0).Graph_ir.in_shape in
  let edge_cache : (string, copy_step option) Hashtbl.t = Hashtbl.create 64 in
  let in_edge j =
    let im = opts.(0).(j) in
    edge_step edge_cache
      (Graph_layout.create ~src_layout:Graph_layout.BCHW ~dst_layout:im.im_in_layout
         ~src_shape:nodes.(0).Graph_ir.in_shape ~dst_shape:nodes.(0).Graph_ir.in_shape
         ~src_elems:input_elems ~dst_elems:im.im_in_elems)
  in
  let edge i k j =
    (* copy between node i (option k) and node i+1 (option j) *)
    let a = opts.(i).(k) and b = opts.(i + 1).(j) in
    edge_step edge_cache
      (Graph_layout.create ~src_layout:a.im_out_layout ~dst_layout:b.im_in_layout
         ~src_shape:nodes.(i).Graph_ir.out_shape ~dst_shape:nodes.(i + 1).Graph_ir.in_shape
         ~src_elems:a.im_out_elems ~dst_elems:b.im_in_elems)
  in
  let dp = Array.map (fun o -> Array.make (Array.length o) infinity) opts in
  let back = Array.map (fun o -> Array.make (Array.length o) (-1)) opts in
  Array.iteri
    (fun j im -> dp.(0).(j) <- edge_seconds (in_edge j) +. im.im_seconds)
    opts.(0);
  for i = 1 to n - 1 do
    Array.iteri
      (fun j im ->
        Array.iteri
          (fun k _ ->
            let c = dp.(i - 1).(k) +. edge_seconds (edge (i - 1) k j) +. im.im_seconds in
            if c < dp.(i).(j) then begin
              dp.(i).(j) <- c;
              back.(i).(j) <- k
            end)
          opts.(i - 1))
      opts.(i)
  done;
  (* Recover the chosen option per node. *)
  let chosen = Array.make n 0 in
  let bestj = ref 0 in
  Array.iteri (fun j c -> if c < dp.(n - 1).(!bestj) then bestj := j) dp.(n - 1);
  chosen.(n - 1) <- !bestj;
  for i = n - 1 downto 1 do
    chosen.(i - 1) <- back.(i).(chosen.(i))
  done;
  (* Materialize the step list with the copies the plan actually needs.
     Every layer also carries its degradation chain: the node's remaining
     implementations, fastest first, with the guaranteed-applicable
     explicit GEMM pinned last as the terminal fallback. The executor walks
     the chain when the chosen implementation fails at run time. *)
  let fallbacks_for i =
    let chosen_im = opts.(i).(chosen.(i)) in
    let others =
      Array.to_list opts.(i) |> List.filter (fun im -> not (im == chosen_im))
    in
    let sorted = List.stable_sort (fun a b -> compare a.im_seconds b.im_seconds) others in
    let explicit, rest = List.partition (fun im -> String.equal im.im_algo "explicit") sorted in
    rest @ explicit
  in
  let steps = ref [] in
  let push s = steps := s :: !steps in
  (match in_edge chosen.(0) with None -> () | Some cs -> push (Copy cs));
  for i = 0 to n - 1 do
    push (Layer { st_node = nodes.(i); st_impl = opts.(i).(chosen.(i)); st_fallbacks = fallbacks_for i });
    if i < n - 1 then
      match edge i chosen.(i) chosen.(i + 1) with None -> () | Some cs -> push (Copy cs)
  done;
  let steps = List.rev !steps in
  (* Relayouts-eliminated accounting: the naive baseline executes every
     layer's independently-fastest algorithm with canonical-BCHW
     activations between layers (the TVM-style NCHW runtime), converting
     on entry and exit wherever the winner's layout differs. *)
  let naive =
    Array.to_list
      (Array.mapi
         (fun i o ->
           let best = Array.fold_left (fun a im -> if im.im_seconds < a.im_seconds then im else a) o.(0) o in
           let node = nodes.(i) in
           (if Graph_layout.equivalent node.Graph_ir.in_shape best.im_in_layout Graph_layout.BCHW
            then 0
            else 1)
           + (if Graph_layout.equivalent node.Graph_ir.out_shape best.im_out_layout Graph_layout.BCHW
              then 0
              else 1))
         opts)
    |> List.fold_left ( + ) 0
  in
  let used, adapters =
    List.fold_left
      (fun (r, a) s ->
        match s with
        | Layer _ -> (r, a)
        | Copy cs -> if Graph_layout.shape_adapting cs.cs_spec then (r, a + 1) else (r + 1, a))
      (0, 0) steps
  in
  {
    p_graph = g;
    p_steps = steps;
    p_input_layout = Graph_layout.BCHW;
    p_input_elems = input_elems;
    p_naive_relayouts = naive;
    p_used_relayouts = used;
    p_adapters = adapters;
    p_tune_wall = Prelude.Clock.wall () -. wall0;
  }
