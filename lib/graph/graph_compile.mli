(** Whole-network compilation: tune every layer, propagate activation
    layouts across the chain, and emit an executable step list.

    Each node is tuned through {!Swatop_ops.Dispatch} (conv) or
    {!Swatop_ops.Matmul} (dense); *every* applicable algorithm is kept as a
    candidate, because the fastest isolated kernel is not always the
    fastest in context — a slightly slower implementation that agrees with
    its neighbor's layout can beat the winner plus a relayout copy. Layout
    assignment is a shortest path through the layered option graph, with
    inter-layer copies (relayouts and spatial-seam adapters) built as IR
    programs and costed through the same simulator as the operators. *)

type impl = {
  im_algo : string;
  im_desc : string;  (** winning schedule, rendered *)
  im_space : int;  (** schedule-space size searched *)
  im_seconds : float;  (** simulated seconds of the winner *)
  im_program : Swatop.Ir.program;  (** prepared (lowered + optimized) *)
  im_in_layout : Graph_layout.act_layout;
  im_out_layout : Graph_layout.act_layout;
  im_in_buf : string;  (** main-memory buffer the layer reads *)
  im_out_buf : string;  (** main-memory buffer the layer writes *)
  im_weight_buf : string;
  im_in_elems : int;  (** physical size of [im_in_buf] (may carry a halo tail) *)
  im_out_elems : int;
  im_weight_shape : Swtensor.Shape.t;
  im_bindings : weight:Swtensor.Tensor.t -> (string * float array) list;
      (** numeric bindings with a zero input; the executor overwrites the
          [im_in_buf] entry with the live activation *)
  im_unpack : (string * float array) list -> Swtensor.Tensor.t;
      (** logical (b,c,h,w) output tensor after a numeric run *)
  im_reference : input:Swtensor.Tensor.t -> weight:Swtensor.Tensor.t -> Swtensor.Tensor.t;
      (** host-side oracle on logical tensors *)
}

type copy_step = {
  cs_spec : Graph_layout.t;
  cs_program : Swatop.Ir.program;  (** prepared; buffers "src"/"dst" *)
  cs_seconds : float;
}

type step =
  | Layer of {
      st_node : Graph_ir.node;
      st_impl : impl;
      st_fallbacks : impl list;
          (** degradation chain: the node's remaining implementations,
              fastest first, explicit GEMM pinned last (terminal fallback).
              Empty for dense nodes, which have a single implementation. *)
    }
  | Copy of copy_step

type plan = {
  p_graph : Graph_ir.t;
  p_steps : step list;  (** execution order; copies interleaved *)
  p_input_layout : Graph_layout.act_layout;  (** canonical BCHW *)
  p_input_elems : int;
  p_naive_relayouts : int;
      (** copies a canonical-BCHW runtime would need around each layer's
          independently-fastest kernel *)
  p_used_relayouts : int;  (** pure layout copies the plan kept *)
  p_adapters : int;  (** spatial-seam copies (crop / halo embed) *)
  p_tune_wall : float;  (** host wall seconds spent compiling *)
}

val compile :
  ?cache:Swatop.Schedule_cache.t ->
  ?checkpoint:string ->
  ?top_k:int ->
  ?prune:bool ->
  ?jobs:int ->
  ?search:Swatop.Tuner.search ->
  gemm_model:Swatop.Gemm_cost.t ->
  Graph_ir.t ->
  plan
(** Tune (distinct problems once, in parallel — {!Swatop.Schedule_cache}
    is domain-safe; only a {e guided} search with a cache tunes
    sequentially, because warm-start model weights flow from one tune to
    the next through the cache and their order must not depend on [jobs]),
    assign layouts, and emit the step list. Compilation keeps no hidden
    module state: concurrent [compile] calls, and concurrent
    {!Graph_exec.run}s of the resulting plans, are safe. [?checkpoint] is the base path for interruption-safe partial
    tuning results (see {!Swatop_ops.Op_common.cached_model_tune}); an
    operator whose tuner crashed is dropped from dispatch with a warning
    rather than failing the compile, as long as another algorithm for the
    node survives. Raises {!Prelude.Swatop_error.Error} when a node ends up
    with no implementation at all. *)
