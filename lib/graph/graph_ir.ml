type shape4 = { sb : int; sc : int; sh : int; sw : int }

let shape4_elems s = s.sb * s.sc * s.sh * s.sw
let shape4_to_string s = Printf.sprintf "(%d,%d,%d,%d)" s.sb s.sc s.sh s.sw

type op =
  | Conv of Swtensor.Conv_spec.t
  | Dense of { d_in : int; d_out : int }

type node = { id : int; node_name : string; op : op; in_shape : shape4; out_shape : shape4 }

type t = { g_name : string; batch : int; nodes : node list }

let node_flops n =
  match n.op with
  | Conv spec -> Swtensor.Conv_spec.flops spec
  | Dense { d_in; d_out } -> 2.0 *. float_of_int (n.in_shape.sb * d_in * d_out)

let flops g = List.fold_left (fun acc n -> acc +. node_flops n) 0.0 g.nodes

(* ------------------------------------------------------------------ *)
(* Builder: a chain is grown one layer at a time; channel continuity is
   enforced, spatial extents may disagree (the compiler inserts halo-embed
   or crop adapters between layers, mirroring the stride-2/pooling
   substitutions of the workload tables). *)

let empty ~name ~batch =
  if batch < 1 then invalid_arg "Graph_ir.empty: batch must be positive";
  { g_name = name; batch; nodes = [] }

let out_channels (n : node) = n.out_shape.sc

let check_chain g ~ni =
  match g.nodes with
  | [] -> ()
  | last :: _ ->
    if out_channels last <> ni then
      invalid_arg
        (Printf.sprintf "Graph_ir: layer consumes %d channels but %s produces %d" ni
           last.node_name (out_channels last))

let conv ?name ?(stride = 1) ?(pad = 0) ~ni ~no ~out ~k g =
  check_chain g ~ni;
  let spec =
    Swtensor.Conv_spec.create ~b:g.batch ~ni ~no ~ro:out ~co:out ~kr:k ~kc:k ~stride ~pad ()
  in
  let id = List.length g.nodes in
  let node_name = match name with Some n -> n | None -> Printf.sprintf "conv%d" id in
  let n =
    {
      id;
      node_name;
      op = Conv spec;
      in_shape =
        { sb = g.batch; sc = ni; sh = Swtensor.Conv_spec.ri spec; sw = Swtensor.Conv_spec.ci spec };
      out_shape = { sb = g.batch; sc = no; sh = out; sw = out };
    }
  in
  { g with nodes = n :: g.nodes }

let dense ?name ~d_out g =
  let d_in =
    match g.nodes with
    | [] -> invalid_arg "Graph_ir.dense: needs a producer layer"
    | last :: _ -> last.out_shape.sc * last.out_shape.sh * last.out_shape.sw
  in
  let id = List.length g.nodes in
  let node_name = match name with Some n -> n | None -> Printf.sprintf "dense%d" id in
  let n =
    {
      id;
      node_name;
      op = Dense { d_in; d_out };
      (* A dense layer flattens the whole activation: logically it consumes
         the producer's (b, c, h, w) block as a (b, c*h*w) matrix. *)
      in_shape =
        (match g.nodes with
        | last :: _ -> last.out_shape
        | [] -> assert false);
      out_shape = { sb = g.batch; sc = d_out; sh = 1; sw = 1 };
    }
  in
  { g with nodes = n :: g.nodes }

let finish g =
  match g.nodes with
  | [] -> invalid_arg "Graph_ir.finish: empty graph"
  | _ -> { g with nodes = List.rev g.nodes }

(* ------------------------------------------------------------------ *)
(* Front ends. *)

let of_network ~batch (net : Workloads.Networks.network) =
  let g = empty ~name:net.Workloads.Networks.net_name ~batch in
  let g =
    List.fold_left
      (fun g (l : Workloads.Networks.layer) ->
        let add i g =
          let name = if l.repeat = 1 then l.l_name else Printf.sprintf "%s.%d" l.l_name (i + 1) in
          (* Repeated table entries always satisfy ni = no, so every
             instance chains with the layer's declared channel counts. *)
          conv ~name ~ni:(if i = 0 then l.ni else l.no) ~no:l.no ~out:l.out ~k:l.k g
        in
        let rec go i g = if i >= l.repeat then g else go (i + 1) (add i g) in
        go 0 g)
      g net.Workloads.Networks.layers
  in
  finish g

let smoke ~batch =
  (* The 3-layer smoke network: small enough for numeric execution, yet it
     exercises conv->conv halo embedding, a 1x1 layer, and a GEMM node. *)
  empty ~name:"smoke" ~batch
  |> conv ~name:"c1" ~ni:4 ~no:8 ~out:8 ~k:3
  |> conv ~name:"c2" ~ni:8 ~no:8 ~out:8 ~k:1
  |> dense ~name:"fc" ~d_out:10
  |> finish

let input_shape g =
  match g.nodes with [] -> invalid_arg "Graph_ir.input_shape: empty" | n :: _ -> n.in_shape

let output_shape g =
  match List.rev g.nodes with
  | [] -> invalid_arg "Graph_ir.output_shape: empty"
  | n :: _ -> n.out_shape

let to_string g =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%s (batch %d)\n" g.g_name g.batch);
  List.iter
    (fun n ->
      let kind =
        match n.op with
        | Conv spec -> Printf.sprintf "conv %s" (Swtensor.Conv_spec.to_string spec)
        | Dense { d_in; d_out } -> Printf.sprintf "dense %d -> %d" d_in d_out
      in
      Buffer.add_string b
        (Printf.sprintf "  %-12s %s %s -> %s\n" n.node_name kind (shape4_to_string n.in_shape)
           (shape4_to_string n.out_shape)))
    g.nodes;
  Buffer.contents b
