type alloc = {
  al_name : string;
  al_bytes : int;
  al_first : int;  (** step index that defines the value *)
  al_last : int;  (** last step index that reads it *)
  al_offset : int;  (** byte offset inside the arena *)
}

type arena = {
  ar_allocs : alloc list;
  ar_bytes : int;  (** arena extent = max (offset + size) *)
  ar_peak_bytes : int;  (** max over time of simultaneously-live bytes *)
  ar_naive_bytes : int;  (** every value in its own buffer *)
}

let bytes_of_elems e = 4 * e

let overlap_life a b = a.al_first <= b.al_last && b.al_first <= a.al_last

(* ------------------------------------------------------------------ *)
(* Collect the activation values and per-layer scratch of a compiled plan.
   Weights are excluded: they are model parameters, resident for the whole
   run, and would drown the activation signal the arena is about to
   exploit. *)

let step_out_elems (s : Graph_compile.step) =
  match s with
  | Graph_compile.Layer { st_impl; _ } -> st_impl.Graph_compile.im_out_elems
  | Graph_compile.Copy cs -> cs.Graph_compile.cs_spec.Graph_layout.cp_dst_elems

let step_name (s : Graph_compile.step) =
  match s with
  | Graph_compile.Layer { st_node; _ } -> st_node.Graph_ir.node_name
  | Graph_compile.Copy cs -> Graph_layout.describe cs.Graph_compile.cs_spec

let scratch_allocs i (s : Graph_compile.step) =
  match s with
  | Graph_compile.Copy _ -> []
  | Graph_compile.Layer { st_node; st_impl; _ } ->
    let keep = [ st_impl.im_in_buf; st_impl.im_out_buf; st_impl.im_weight_buf ] in
    List.filter_map
      (fun (b : Swatop.Ir.buf) ->
        match b.space with
        | Swatop.Ir.Spm -> None
        | Swatop.Ir.Main ->
          if List.exists (String.equal b.buf_name) keep then None
          else
            Some
              {
                al_name = Printf.sprintf "%s/%s" st_node.Graph_ir.node_name b.buf_name;
                al_bytes = bytes_of_elems b.cg_elems;
                al_first = i;
                al_last = i;
                al_offset = 0;
              })
      st_impl.im_program.bufs

let collect (p : Graph_compile.plan) =
  let steps = Array.of_list p.Graph_compile.p_steps in
  let n = Array.length steps in
  let input =
    {
      al_name = "input";
      al_bytes = bytes_of_elems p.Graph_compile.p_input_elems;
      al_first = 0;
      al_last = 0;
      al_offset = 0;
    }
  in
  let outs =
    Array.to_list
      (Array.mapi
         (fun i s ->
           {
             al_name = step_name s ^ ":out";
             al_bytes = bytes_of_elems (step_out_elems s);
             al_first = i;
             (* consumed by the next step; the network output stays live at
                the final step only *)
             al_last = (if i < n - 1 then i + 1 else i);
             al_offset = 0;
           })
         steps)
  in
  let scratch = List.concat (Array.to_list (Array.mapi scratch_allocs steps)) in
  input :: (outs @ scratch)

(* ------------------------------------------------------------------ *)
(* Greedy best-fit: place big blocks first; each block lands at the lowest
   offset where it clears every already-placed, lifetime-conflicting
   block. *)

let place allocs =
  let order =
    List.stable_sort (fun a b -> compare (b.al_bytes, a.al_first) (a.al_bytes, b.al_first)) allocs
  in
  let placed = ref [] in
  let place_one a =
    let conflicts = List.filter (overlap_life a) !placed in
    let candidates =
      0 :: List.map (fun c -> c.al_offset + c.al_bytes) conflicts |> List.sort_uniq compare
    in
    let fits off =
      List.for_all
        (fun c -> off + a.al_bytes <= c.al_offset || c.al_offset + c.al_bytes <= off)
        conflicts
    in
    let off = List.find fits candidates in
    let a = { a with al_offset = off } in
    placed := a :: !placed;
    a
  in
  List.map place_one order

let plan (p : Graph_compile.plan) =
  let allocs = place (collect p) in
  let ar_bytes = List.fold_left (fun m a -> max m (a.al_offset + a.al_bytes)) 0 allocs in
  let ar_naive_bytes = List.fold_left (fun s a -> s + a.al_bytes) 0 allocs in
  let last_step = List.fold_left (fun m a -> max m a.al_last) 0 allocs in
  let ar_peak_bytes =
    let peak = ref 0 in
    for t = 0 to last_step do
      let live =
        List.fold_left
          (fun s a -> if a.al_first <= t && t <= a.al_last then s + a.al_bytes else s)
          0 allocs
      in
      if live > !peak then peak := live
    done;
    !peak
  in
  { ar_allocs = allocs; ar_bytes; ar_peak_bytes; ar_naive_bytes }

let check arena =
  (* Geometric validity: lifetime-overlapping blocks must not intersect in
     the arena's address space. *)
  let rec go = function
    | [] -> true
    | a :: rest ->
      List.for_all
        (fun b ->
          (not (overlap_life a b))
          || a.al_offset + a.al_bytes <= b.al_offset
          || b.al_offset + b.al_bytes <= a.al_offset)
        rest
      && go rest
  in
  go arena.ar_allocs
