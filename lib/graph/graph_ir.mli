(** Network-level intermediate representation: a model is a chain of
    convolution / GEMM (dense) nodes over 4-D activations.

    The graph records *logical* activation shapes only — physical layouts
    are a compilation decision (see {!Graph_layout} and {!Graph_compile}),
    exactly as in the paper's framing where layout is a schedule knob, not
    a model property. Spatial extents of adjacent layers may disagree: the
    workload tables substitute stride-2 and padded layers by stride-1
    problems at the output resolution, so a consumer may expect a slightly
    larger (halo) or much smaller (pooled) input than its producer emits.
    The compiler materializes those seams as explicit adapter copies. *)

type shape4 = { sb : int; sc : int; sh : int; sw : int }
(** Logical activation extents: batch, channels, rows, cols. *)

val shape4_elems : shape4 -> int
val shape4_to_string : shape4 -> string

type op =
  | Conv of Swtensor.Conv_spec.t
  | Dense of { d_in : int; d_out : int }
      (** a fully-connected layer: the producer's activation flattened to a
          [(batch, d_in)] matrix times a [(d_in, d_out)] weight *)

type node = {
  id : int;  (** position in the chain, 0-based *)
  node_name : string;
  op : op;
  in_shape : shape4;
  out_shape : shape4;
}

type t = { g_name : string; batch : int; nodes : node list }
(** [nodes] in execution order; node [i] feeds node [i+1]. *)

val node_flops : node -> float
val flops : t -> float
val input_shape : t -> shape4
val output_shape : t -> shape4
val to_string : t -> string

(** {2 Builder} — grow a chain layer by layer; raises [Invalid_argument]
    on channel mismatches. *)

val empty : name:string -> batch:int -> t
val conv : ?name:string -> ?stride:int -> ?pad:int -> ni:int -> no:int -> out:int -> k:int -> t -> t
val dense : ?name:string -> d_out:int -> t -> t
val finish : t -> t
(** Seal the chain (reverses into execution order). *)

(** {2 Front ends} *)

val of_network : batch:int -> Workloads.Networks.network -> t
(** Expand a Sec. 5.1 workload table (repeats unrolled) into a chain. *)

val smoke : batch:int -> t
(** Tiny 3-layer network (two convs + a dense head) used by [make
    net-smoke] and the numeric end-to-end tests. *)
