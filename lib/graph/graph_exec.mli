(** End-to-end execution of a compiled network plan through the SW26010
    simulator, with a per-layer and whole-network report.

    Cost mode replays every step's prepared program through the
    discrete-event interpreter for simulated seconds and DMA/compute busy
    splits. Numeric mode additionally threads a real activation through
    the chain — each layer (and each relayout/adapter copy) is checked
    against a host-side reference immediately, so a wrong answer is
    pinned to the step that produced it.

    Resilience: when a step's attempt raises — an injected fault (sites
    ["graph.layer"], ["graph.copy"], and the interpreter's DMA sites), an
    interpreter bounds check, or a non-finite reference deviation — the
    executor first, when a [?retry] policy is supplied, re-runs the
    {e same} strategy with deterministic capped-exponential backoff
    (charged into the step's seconds; bounded per attempt and by a
    per-run budget). Only when retry is exhausted — or absent, the
    default — does it degrade down the step's chain: a layer walks
    {!Graph_compile.step.Layer}'s [st_fallbacks] (terminating at explicit
    GEMM), a copy falls back to the host-side oracle. State commits only
    after a fully successful attempt, fallback inputs/outputs are bridged
    host-side to the chosen layouts so neighboring steps are untouched,
    and every retry absorption or chain activation is recorded as an
    {!incident} in the report (and its text/JSON renderings) with
    [i_recovery] distinguishing ["retried"] from ["fell_back"]. Only a
    fully exhausted chain raises ({!Prelude.Swatop_error.Error}). *)

type layer_report = {
  lr_name : string;
  lr_kind : string;  (** algorithm, or ["relayout"] / ["adapter"] for copies *)
  lr_desc : string;  (** winning schedule (empty for copies) *)
  lr_seconds : float;
  lr_flops : float;  (** 0 for copies *)
  lr_dma_seconds : float;
  lr_compute_seconds : float;
  lr_max_err : float option;  (** vs the layer-by-layer reference; numeric mode only *)
}

(** One recovered step: which step faulted, what each failed attempt died
    of, and how it came back — ["retried"] means the {e same} strategy
    succeeded after fast-path retry, ["fell_back"] means a different
    strategy from the degradation chain completed it. *)
type incident = {
  i_site : string;  (** ["graph.layer"] or ["graph.copy"] *)
  i_step : string;  (** layer name or copy descriptor *)
  i_causes : string list;  (** exception label per failed attempt, in order *)
  i_retries : int;
  i_final : string;  (** algorithm name, or ["host-copy"] for copies *)
  i_recovery : string;  (** ["retried"] or ["fell_back"] *)
}

type report = {
  r_graph_name : string;
  r_batch : int;
  r_layers : layer_report list;
  r_seconds : float;  (** whole-network simulated time *)
  r_flops : float;
  r_flops_per_second : float;
  r_dma_seconds : float;
  r_compute_seconds : float;
  r_relayouts_naive : int;
  r_relayouts_used : int;
  r_relayouts_eliminated : int;
  r_adapters : int;
  r_arena : Graph_plan.arena;
  r_tune_wall : float;
  r_max_err : float option;
  r_incidents : incident list;  (** fallback activations, in execution order *)
}

val run : ?numeric:bool -> ?seed:int -> ?retry:Prelude.Retry.policy -> Graph_compile.plan -> report
(** Execute the plan ([numeric] defaults to [false]: cost-only; [retry]
    defaults to no fast-path retry, preserving pure fallback-chain
    behavior). *)

val to_text : report -> string
val to_json : report -> string
