(** End-to-end execution of a compiled network plan through the SW26010
    simulator, with a per-layer and whole-network report.

    Cost mode replays every step's prepared program through the
    discrete-event interpreter for simulated seconds and DMA/compute busy
    splits. Numeric mode additionally threads a real activation through
    the chain — each layer (and each relayout/adapter copy) is checked
    against a host-side reference immediately, so a wrong answer is
    pinned to the step that produced it. *)

type layer_report = {
  lr_name : string;
  lr_kind : string;  (** algorithm, or ["relayout"] / ["adapter"] for copies *)
  lr_desc : string;  (** winning schedule (empty for copies) *)
  lr_seconds : float;
  lr_flops : float;  (** 0 for copies *)
  lr_dma_seconds : float;
  lr_compute_seconds : float;
  lr_max_err : float option;  (** vs the layer-by-layer reference; numeric mode only *)
}

type report = {
  r_graph_name : string;
  r_batch : int;
  r_layers : layer_report list;
  r_seconds : float;  (** whole-network simulated time *)
  r_flops : float;
  r_flops_per_second : float;
  r_dma_seconds : float;
  r_compute_seconds : float;
  r_relayouts_naive : int;
  r_relayouts_used : int;
  r_relayouts_eliminated : int;
  r_adapters : int;
  r_arena : Graph_plan.arena;
  r_tune_wall : float;
  r_max_err : float option;
}

val run : ?numeric:bool -> ?seed:int -> Graph_compile.plan -> report
(** Execute the plan ([numeric] defaults to [false]: cost-only). *)

val to_text : report -> string
val to_json : report -> string
