(** Activation memory planning: interval liveness over the compiled step
    list, then greedy best-fit packing into a single main-memory arena.

    Values are the network input, every step's output, and each layer's
    internal main-memory scratch (im2col matrices, padded-input staging…).
    Weights are excluded — they are whole-run-resident parameters. The
    arena is a static address assignment; the numeric executor still runs
    on separate OCaml arrays (they cannot alias), so the plan is validated
    geometrically: no two lifetime-overlapping blocks intersect. *)

type alloc = {
  al_name : string;
  al_bytes : int;
  al_first : int;  (** step index that defines the value *)
  al_last : int;  (** last step index that reads it *)
  al_offset : int;  (** assigned byte offset inside the arena *)
}

type arena = {
  ar_allocs : alloc list;
  ar_bytes : int;  (** arena extent = max (offset + size) *)
  ar_peak_bytes : int;  (** max simultaneously-live bytes (lower bound) *)
  ar_naive_bytes : int;  (** sum of all blocks: one buffer per value *)
}

val plan : Graph_compile.plan -> arena

val check : arena -> bool
(** No two lifetime-overlapping blocks intersect in address space. *)
