type layer_report = {
  lr_name : string;
  lr_kind : string;  (** "implicit" | "winograd" | "explicit" | "gemm" | "relayout" | "adapter" *)
  lr_desc : string;
  lr_seconds : float;
  lr_flops : float;
  lr_dma_seconds : float;
  lr_compute_seconds : float;
  lr_max_err : float option;  (** numeric mode only *)
}

type incident = {
  i_site : string;  (** "graph.layer" | "graph.copy" *)
  i_step : string;  (** layer name or copy descriptor *)
  i_causes : string list;  (** one label per failed attempt, in attempt order *)
  i_retries : int;  (** attempts that failed before one succeeded *)
  i_final : string;  (** strategy that completed the step *)
  i_recovery : string;  (** "retried" (same strategy) | "fell_back" (different strategy) *)
}

type report = {
  r_graph_name : string;
  r_batch : int;
  r_layers : layer_report list;
  r_seconds : float;
  r_flops : float;
  r_flops_per_second : float;
  r_dma_seconds : float;
  r_compute_seconds : float;
  r_relayouts_naive : int;
  r_relayouts_used : int;
  r_relayouts_eliminated : int;
  r_adapters : int;
  r_arena : Graph_plan.arena;
  r_tune_wall : float;
  r_max_err : float option;  (** worst layer-by-layer deviation (numeric mode) *)
  r_incidents : incident list;  (** fallback activations, in execution order *)
}

let max_diff a b =
  let da = Swtensor.Tensor.data a and db = Swtensor.Tensor.data b in
  if Array.length da <> Array.length db then
    Prelude.Swatop_error.error ~site:"graph.exec"
      ~context:[ ("got", string_of_int (Array.length da)); ("want", string_of_int (Array.length db)) ]
      "shape mismatch vs reference";
  let m = ref 0.0 in
  Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. db.(i)))) da;
  if Float.is_nan !m then
    Prelude.Swatop_error.error ~site:"graph.exec" "non-finite deviation vs reference";
  !m

let shape_of (s : Graph_ir.shape4) =
  Swtensor.Shape.of_list [ s.Graph_ir.sb; s.Graph_ir.sc; s.Graph_ir.sh; s.Graph_ir.sw ]

let run ?(numeric = false) ?(seed = 42) ?retry (plan : Graph_compile.plan) =
  let g = plan.Graph_compile.p_graph in
  let arena = Graph_plan.plan plan in
  (* Fast-path retry (the serving layer passes a {!Prelude.Retry} policy):
     a transient fault re-runs the {e same} strategy — with deterministic
     capped-exponential backoff charged into the step's seconds — before
     the step's degradation chain is consulted at all. The budget bounds
     total retries across the whole run. Attempts never mutate the live
     activation, so re-running one is safe by construction. *)
  let retry_budget =
    match retry with Some p -> ref p.Prelude.Retry.r_budget | None -> ref 0
  in
  let with_retry ~site ~key ~absorbed ~backoff f =
    match retry with
    | None -> f ()
    | Some p ->
      let rec go attempt =
        match f () with
        | v -> v
        | exception e ->
          if attempt < p.Prelude.Retry.r_attempts && !retry_budget > 0 then begin
            decr retry_budget;
            backoff := !backoff +. Prelude.Retry.delay p ~site ~key ~attempt;
            absorbed := Prelude.Swatop_error.label e :: !absorbed;
            go (attempt + 1)
          end
          else raise e
      in
      go 1
  in
  let input_t = Swtensor.Tensor.random ~seed (shape_of (Graph_ir.input_shape g)) in
  (* [cur] is the live activation in the producer's physical layout; [ref_t]
     is its logical (b,c,h,w) value computed by the host-side oracles. *)
  let cur =
    ref
      (if numeric then
         Graph_layout.pack ~layout:plan.Graph_compile.p_input_layout
           ~shape:(Graph_ir.input_shape g) ~elems:plan.Graph_compile.p_input_elems input_t
       else [||])
  in
  let ref_t = ref input_t in
  let incidents = ref [] in
  (* Every step commits its state updates ([cur]/[ref_t]) only after an
     attempt has fully succeeded — numeric execution, reference check, and
     cost run alike — so a failed attempt leaves the live activation intact
     for the next entry in the degradation chain. Failed attempts never
     mutate [cur]: programs only Get from their input buffer, and each
     attempt's other bindings are freshly allocated. *)
  let layers =
    List.map
      (fun (s : Graph_compile.step) ->
        match s with
        | Graph_compile.Copy cs ->
          let spec = cs.Graph_compile.cs_spec in
          let kind = if Graph_layout.shape_adapting spec then "adapter" else "relayout" in
          let name = Graph_layout.describe spec in
          let device () =
            (* Fault site: models the relayout program dying on the device. *)
            Prelude.Fault.check "graph.copy";
            let state =
              if numeric then begin
                let dst = Array.make spec.Graph_layout.cp_dst_elems 0.0 in
                let bindings = [ ("src", !cur); ("dst", dst) ] in
                ignore (Swatop.Interp.run ~numeric:true ~bindings cs.Graph_compile.cs_program);
                let next_ref = Graph_layout.adapt_tensor spec !ref_t in
                let got =
                  Graph_layout.unpack ~layout:spec.Graph_layout.cp_dst_layout
                    ~shape:spec.Graph_layout.cp_dst_shape dst
                in
                Some (dst, next_ref, max_diff got next_ref)
              end
              else None
            in
            let r = Swatop.Interp.run ~numeric:false cs.Graph_compile.cs_program in
            ( kind,
              "",
              state,
              r.Swatop.Interp.seconds,
              r.Swatop.Interp.dma_busy_seconds,
              r.Swatop.Interp.compute_busy_seconds )
          in
          (* Terminal fallback: the host-side oracle performs the copy. It
             is charged the planned device seconds (the step still has to
             happen); DMA/compute occupancy is unknowable and reported 0. *)
          let host () =
            let state =
              if numeric then begin
                let dst = Graph_layout.apply_ref spec !cur in
                let next_ref = Graph_layout.adapt_tensor spec !ref_t in
                let got =
                  Graph_layout.unpack ~layout:spec.Graph_layout.cp_dst_layout
                    ~shape:spec.Graph_layout.cp_dst_shape dst
                in
                Some (dst, next_ref, max_diff got next_ref)
              end
              else None
            in
            ("host-copy", "host fallback", state, cs.Graph_compile.cs_seconds, 0.0, 0.0)
          in
          let absorbed = ref [] and backoff = ref 0.0 in
          let kind, desc, state, secs, dma, compute =
            match with_retry ~site:"graph.copy" ~key:0 ~absorbed ~backoff device with
            | (ok_kind, _, _, _, _, _) as result ->
              if !absorbed <> [] then
                incidents :=
                  {
                    i_site = "graph.copy";
                    i_step = name;
                    i_causes = List.rev !absorbed;
                    i_retries = List.length !absorbed;
                    i_final = ok_kind;
                    i_recovery = "retried";
                  }
                  :: !incidents;
              result
            | exception e ->
              let cause = Prelude.Swatop_error.label e in
              let result = host () in
              incidents :=
                {
                  i_site = "graph.copy";
                  i_step = name;
                  i_causes = List.rev (cause :: !absorbed);
                  i_retries = 1 + List.length !absorbed;
                  i_final = "host-copy";
                  i_recovery = "fell_back";
                }
                :: !incidents;
              result
          in
          (match state with
          | Some (next_cur, next_ref, _) ->
            cur := next_cur;
            ref_t := next_ref
          | None -> ());
          {
            lr_name = name;
            lr_kind = kind;
            lr_desc = desc;
            lr_seconds = secs +. !backoff;
            lr_flops = 0.0;
            lr_dma_seconds = dma;
            lr_compute_seconds = compute;
            lr_max_err = Option.map (fun (_, _, e) -> e) state;
          }
        | Graph_compile.Layer { st_node; st_impl; st_fallbacks } ->
          let weight_for (im : Graph_compile.impl) =
            Swtensor.Tensor.random ~seed:(seed + 1000 + st_node.Graph_ir.id)
              im.Graph_compile.im_weight_shape
          in
          let attempt (im : Graph_compile.impl) =
            (* Fault site: models the layer's kernel dying mid-run. *)
            Prelude.Fault.check "graph.layer";
            let state =
              if numeric then begin
                let weight = weight_for im in
                let input_arr =
                  if im == st_impl then !cur
                  else
                    (* Bridge layouts host-side: the live activation is in
                       the chosen implementation's input layout; the
                       fallback may want another packing. *)
                    Graph_layout.unpack ~layout:st_impl.Graph_compile.im_in_layout
                      ~shape:st_node.Graph_ir.in_shape !cur
                    |> Graph_layout.pack ~layout:im.Graph_compile.im_in_layout
                         ~shape:st_node.Graph_ir.in_shape ~elems:im.Graph_compile.im_in_elems
                in
                let bindings = im.Graph_compile.im_bindings ~weight in
                let bindings =
                  (im.Graph_compile.im_in_buf, input_arr)
                  :: List.remove_assoc im.Graph_compile.im_in_buf bindings
                in
                ignore (Swatop.Interp.run ~numeric:true ~bindings im.Graph_compile.im_program);
                let got = im.Graph_compile.im_unpack bindings in
                let next_ref = im.Graph_compile.im_reference ~input:!ref_t ~weight in
                let err = max_diff got next_ref in
                let next_cur =
                  if im == st_impl then List.assoc im.Graph_compile.im_out_buf bindings
                  else
                    (* Convert the fallback's output back to the chosen
                       layout: downstream steps are untouched by the swap. *)
                    Graph_layout.pack ~layout:st_impl.Graph_compile.im_out_layout
                      ~shape:st_node.Graph_ir.out_shape
                      ~elems:st_impl.Graph_compile.im_out_elems got
                in
                Some (next_cur, next_ref, err)
              end
              else None
            in
            let r = Swatop.Interp.run ~numeric:false im.Graph_compile.im_program in
            (im, state, r)
          in
          let causes = ref [] in
          let absorbed = ref [] and backoff = ref 0.0 in
          let rec walk = function
            | [] ->
              Prelude.Swatop_error.error ~site:"graph.layer"
                ~context:
                  [
                    ("step", st_node.Graph_ir.node_name);
                    ("causes", String.concat "," (List.rev !causes));
                  ]
                "every implementation failed"
            | im :: rest -> (
              match
                with_retry ~site:"graph.layer" ~key:st_node.Graph_ir.id ~absorbed ~backoff
                  (fun () -> attempt im)
              with
              | result -> result
              | exception e ->
                causes := Prelude.Swatop_error.label e :: !causes;
                walk rest)
          in
          let im, state, r = walk (st_impl :: st_fallbacks) in
          (match state with
          | Some (next_cur, next_ref, _) ->
            cur := next_cur;
            ref_t := next_ref
          | None -> ());
          let retries = List.length !causes in
          if retries > 0 then
            incidents :=
              {
                i_site = "graph.layer";
                i_step = st_node.Graph_ir.node_name;
                i_causes = List.rev !causes;
                i_retries = retries;
                i_final = im.Graph_compile.im_algo;
                i_recovery = "fell_back";
              }
              :: !incidents
          else if !absorbed <> [] then
            incidents :=
              {
                i_site = "graph.layer";
                i_step = st_node.Graph_ir.node_name;
                i_causes = List.rev !absorbed;
                i_retries = List.length !absorbed;
                i_final = im.Graph_compile.im_algo;
                i_recovery = "retried";
              }
              :: !incidents;
          {
            lr_name = st_node.Graph_ir.node_name;
            lr_kind = im.Graph_compile.im_algo;
            lr_desc = im.Graph_compile.im_desc;
            lr_seconds = r.Swatop.Interp.seconds +. !backoff;
            lr_flops = Graph_ir.node_flops st_node;
            lr_dma_seconds = r.Swatop.Interp.dma_busy_seconds;
            lr_compute_seconds = r.Swatop.Interp.compute_busy_seconds;
            lr_max_err = Option.map (fun (_, _, e) -> e) state;
          })
      plan.Graph_compile.p_steps
  in
  let total f = List.fold_left (fun acc l -> acc +. f l) 0.0 layers in
  let seconds = total (fun l -> l.lr_seconds) in
  let flops = Graph_ir.flops g in
  let max_err =
    if numeric then
      Some (List.fold_left (fun m l -> match l.lr_max_err with Some e -> Float.max m e | None -> m) 0.0 layers)
    else None
  in
  {
    r_graph_name = g.Graph_ir.g_name;
    r_batch = g.Graph_ir.batch;
    r_layers = layers;
    r_seconds = seconds;
    r_flops = flops;
    r_flops_per_second = (if seconds > 0.0 then flops /. seconds else 0.0);
    r_dma_seconds = total (fun l -> l.lr_dma_seconds);
    r_compute_seconds = total (fun l -> l.lr_compute_seconds);
    r_relayouts_naive = plan.Graph_compile.p_naive_relayouts;
    r_relayouts_used = plan.Graph_compile.p_used_relayouts;
    r_relayouts_eliminated =
      max 0 (plan.Graph_compile.p_naive_relayouts - plan.Graph_compile.p_used_relayouts);
    r_adapters = plan.Graph_compile.p_adapters;
    r_arena = arena;
    r_tune_wall = plan.Graph_compile.p_tune_wall;
    r_max_err = max_err;
    r_incidents = List.rev !incidents;
  }

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let to_text r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "network %s (batch %d): %d steps\n" r.r_graph_name r.r_batch
       (List.length r.r_layers));
  Buffer.add_string b
    (Printf.sprintf "  %-16s %-9s %12s %12s %10s %10s\n" "layer" "algo" "seconds" "gflops" "dma_s"
       "compute_s");
  List.iter
    (fun l ->
      Buffer.add_string b
        (Printf.sprintf "  %-16s %-9s %12.3e %12.2f %10.3e %10.3e%s\n" l.lr_name l.lr_kind
           l.lr_seconds
           (if l.lr_seconds > 0.0 then l.lr_flops /. l.lr_seconds /. 1e9 else 0.0)
           l.lr_dma_seconds l.lr_compute_seconds
           (match l.lr_max_err with Some e -> Printf.sprintf "  err %.2e" e | None -> "")))
    r.r_layers;
  Buffer.add_string b
    (Printf.sprintf "  total: %.3e s  %.2f GFLOP/s  (dma %.3e s, compute %.3e s)\n" r.r_seconds
       (r.r_flops_per_second /. 1e9) r.r_dma_seconds r.r_compute_seconds);
  Buffer.add_string b
    (Printf.sprintf "  relayouts: naive %d, used %d, eliminated %d; adapters %d\n"
       r.r_relayouts_naive r.r_relayouts_used r.r_relayouts_eliminated r.r_adapters);
  Buffer.add_string b
    (Printf.sprintf "  arena: peak %d bytes, extent %d bytes, naive %d bytes (%.1f%% saved)\n"
       r.r_arena.Graph_plan.ar_peak_bytes r.r_arena.Graph_plan.ar_bytes
       r.r_arena.Graph_plan.ar_naive_bytes
       (100.0
       *. (1.0
          -. (float_of_int r.r_arena.Graph_plan.ar_bytes
             /. float_of_int (max 1 r.r_arena.Graph_plan.ar_naive_bytes)))));
  (match r.r_max_err with
  | Some e -> Buffer.add_string b (Printf.sprintf "  numeric: max layer error %.3e\n" e)
  | None -> ());
  if r.r_incidents <> [] then begin
    Buffer.add_string b (Printf.sprintf "  incidents: %d\n" (List.length r.r_incidents));
    List.iter
      (fun i ->
        Buffer.add_string b
          (Printf.sprintf "    %s %s: %d retr%s (%s) -> %s [%s]\n" i.i_site i.i_step i.i_retries
             (if i.i_retries = 1 then "y" else "ies")
             (String.concat ", " i.i_causes) i.i_final i.i_recovery))
      r.r_incidents
  end;
  Buffer.add_string b (Printf.sprintf "  tuning wall: %.2f s\n" r.r_tune_wall);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"network\": \"%s\",\n" (json_escape r.r_graph_name));
  Buffer.add_string b (Printf.sprintf "  \"batch\": %d,\n" r.r_batch);
  Buffer.add_string b "  \"layers\": [\n";
  let n = List.length r.r_layers in
  List.iteri
    (fun i l ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"algo\": \"%s\", \"desc\": \"%s\", \"seconds\": %.9e, \
            \"flops\": %.9e, \"dma_seconds\": %.9e, \"compute_seconds\": %.9e%s}%s\n"
           (json_escape l.lr_name) (json_escape l.lr_kind) (json_escape l.lr_desc) l.lr_seconds
           l.lr_flops l.lr_dma_seconds l.lr_compute_seconds
           (match l.lr_max_err with
           | Some e -> Printf.sprintf ", \"max_err\": %.9e" e
           | None -> "")
           (if i < n - 1 then "," else "")))
    r.r_layers;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b (Printf.sprintf "  \"seconds\": %.9e,\n" r.r_seconds);
  Buffer.add_string b (Printf.sprintf "  \"flops\": %.9e,\n" r.r_flops);
  Buffer.add_string b (Printf.sprintf "  \"flops_per_second\": %.9e,\n" r.r_flops_per_second);
  Buffer.add_string b (Printf.sprintf "  \"dma_seconds\": %.9e,\n" r.r_dma_seconds);
  Buffer.add_string b (Printf.sprintf "  \"compute_seconds\": %.9e,\n" r.r_compute_seconds);
  Buffer.add_string b (Printf.sprintf "  \"relayouts_naive\": %d,\n" r.r_relayouts_naive);
  Buffer.add_string b (Printf.sprintf "  \"relayouts_used\": %d,\n" r.r_relayouts_used);
  Buffer.add_string b
    (Printf.sprintf "  \"relayouts_eliminated\": %d,\n" r.r_relayouts_eliminated);
  Buffer.add_string b (Printf.sprintf "  \"adapters\": %d,\n" r.r_adapters);
  Buffer.add_string b (Printf.sprintf "  \"arena_peak_bytes\": %d,\n" r.r_arena.Graph_plan.ar_peak_bytes);
  Buffer.add_string b (Printf.sprintf "  \"arena_bytes\": %d,\n" r.r_arena.Graph_plan.ar_bytes);
  Buffer.add_string b
    (Printf.sprintf "  \"arena_naive_bytes\": %d,\n" r.r_arena.Graph_plan.ar_naive_bytes);
  (match r.r_max_err with
  | Some e -> Buffer.add_string b (Printf.sprintf "  \"max_err\": %.9e,\n" e)
  | None -> ());
  Buffer.add_string b "  \"incidents\": [\n";
  let ni = List.length r.r_incidents in
  List.iteri
    (fun idx i ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"site\": \"%s\", \"step\": \"%s\", \"causes\": [%s], \"retries\": %d, \
            \"final\": \"%s\", \"recovery\": \"%s\"}%s\n"
           (json_escape i.i_site) (json_escape i.i_step)
           (String.concat ", "
              (List.map (fun c -> Printf.sprintf "\"%s\"" (json_escape c)) i.i_causes))
           i.i_retries (json_escape i.i_final) (json_escape i.i_recovery)
           (if idx < ni - 1 then "," else "")))
    r.r_incidents;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b (Printf.sprintf "  \"tune_wall_seconds\": %.3f\n" r.r_tune_wall);
  Buffer.add_string b "}";
  Buffer.contents b
