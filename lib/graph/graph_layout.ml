module Shape4 = struct
  type t = Graph_ir.shape4

  let to_shape (s : t) = Swtensor.Shape.of_list [ s.sb; s.sc; s.sh; s.sw ]
  let extent (s : t) = function 0 -> s.sb | 1 -> s.sc | 2 -> s.sh | 3 -> s.sw | _ -> invalid_arg "axis"
end

type act_layout = BCHW | CHWB | CBHW

let all = [ BCHW; CHWB; CBHW ]
let to_string = function BCHW -> "BCHW" | CHWB -> "CHWB" | CBHW -> "CBHW"

let to_layout = function
  | BCHW -> Swtensor.Layout.identity 4
  | CHWB -> Swtensor.Layout.create ~perm:[| 1; 2; 3; 0 |]
  | CBHW -> Swtensor.Layout.create ~perm:[| 1; 0; 2; 3 |]

let strides l (s : Graph_ir.shape4) = Swtensor.Layout.strides (to_layout l) (Shape4.to_shape s)

(* Strides with extent-1 axes neutralized: two layouts that only permute
   degenerate axes address memory identically (e.g. CHWB = CBHW at
   batch 1). *)
let effective_strides l (s : Graph_ir.shape4) =
  Array.mapi (fun i v -> if Shape4.extent s i = 1 then 0 else v) (strides l s)

let equivalent (s : Graph_ir.shape4) a b = effective_strides a s = effective_strides b s

(* Per-algorithm activation layouts — fixed by each operator's packing. *)
let algo_in = function
  | Swatop_ops.Dispatch.Implicit -> CHWB
  | Swatop_ops.Dispatch.Winograd -> BCHW
  | Swatop_ops.Dispatch.Explicit -> BCHW

let algo_out = function
  | Swatop_ops.Dispatch.Implicit -> CHWB
  | Swatop_ops.Dispatch.Winograd -> BCHW
  | Swatop_ops.Dispatch.Explicit -> CBHW

(* ------------------------------------------------------------------ *)
(* Inter-layer copies: one program relayouts and/or spatially adapts an
   activation. The overlap window (centered crop or embed) of every
   (batch, channel) plane streams through SPM; non-unit innermost strides
   degrade to per-row gathers, exactly like the explicit operator's
   strided im2col. Destination elements outside the window keep the
   allocation's zeros — halo embedding therefore *is* zero padding. *)

type t = {
  cp_src_layout : act_layout;
  cp_dst_layout : act_layout;
  cp_src_shape : Graph_ir.shape4;
  cp_dst_shape : Graph_ir.shape4;
  cp_src_elems : int;  (** physical buffer size, >= logical elems *)
  cp_dst_elems : int;
}

let create ~src_layout ~dst_layout ~src_shape ~dst_shape ~src_elems ~dst_elems =
  let (s : Graph_ir.shape4) = src_shape and (d : Graph_ir.shape4) = dst_shape in
  if s.sb <> d.sb || s.sc <> d.sc then
    invalid_arg "Graph_layout.create: batch/channel extents must agree";
  if src_elems < Graph_ir.shape4_elems s then invalid_arg "Graph_layout.create: src_elems too small";
  if dst_elems < Graph_ir.shape4_elems d then invalid_arg "Graph_layout.create: dst_elems too small";
  {
    cp_src_layout = src_layout;
    cp_dst_layout = dst_layout;
    cp_src_shape = src_shape;
    cp_dst_shape = dst_shape;
    cp_src_elems = src_elems;
    cp_dst_elems = dst_elems;
  }

let same_shape (a : Graph_ir.shape4) (b : Graph_ir.shape4) =
  a.sb = b.sb && a.sc = b.sc && a.sh = b.sh && a.sw = b.sw

(* No copy needed at all: the producer's buffer can be handed to the
   consumer as-is. *)
let identity t =
  same_shape t.cp_src_shape t.cp_dst_shape
  && t.cp_src_elems = t.cp_dst_elems
  && equivalent t.cp_src_shape t.cp_src_layout t.cp_dst_layout

(* Pure layout disagreement (shapes agree, only the permutation differs)
   versus a spatial adapter seam (halo embed / crop). *)
let shape_adapting t = not (same_shape t.cp_src_shape t.cp_dst_shape)

let overlap t =
  let s = t.cp_src_shape and d = t.cp_dst_shape in
  let hc = min s.Graph_ir.sh d.Graph_ir.sh and wc = min s.Graph_ir.sw d.Graph_ir.sw in
  let soh = (s.Graph_ir.sh - hc) / 2 and sow = (s.Graph_ir.sw - wc) / 2 in
  let doh = (d.Graph_ir.sh - hc) / 2 and dow = (d.Graph_ir.sw - wc) / 2 in
  (hc, wc, soh, sow, doh, dow)

let describe t =
  Printf.sprintf "%s%s -> %s%s%s" (to_string t.cp_src_layout)
    (Graph_ir.shape4_to_string t.cp_src_shape)
    (to_string t.cp_dst_layout)
    (Graph_ir.shape4_to_string t.cp_dst_shape)
    (if shape_adapting t then " (adapt)" else "")

let tag_cp = 40
let imul = Stdlib.( * )

let build t =
  let s4 = t.cp_src_shape and d4 = t.cp_dst_shape in
  let hc, wc, soh, sow, doh, dow = overlap t in
  let ss = strides t.cp_src_layout s4 and ds = strides t.cp_dst_layout d4 in
  let s_h = ss.(2) and s_w = ss.(3) and d_h = ds.(2) and d_w = ds.(3) in
  let chunk = max 1 (min hc (16384 / max 1 wc)) in
  let stage_elems = imul chunk wc in
  let open Swatop.Ir in
  let bufs =
    [
      main_buf ~name:"src" ~elems:t.cp_src_elems;
      main_buf ~name:"dst" ~elems:t.cp_dst_elems;
      spm_buf ~name:"stage" ~cg_elems:stage_elems
        ~cpe_elems:(Prelude.Ints.ceil_div stage_elems Sw26010.Config.cpes_per_cg);
    ]
  in
  let vb = var "rb" and vc = var "rc" and vr = var "rr" in
  let rcnt = emin (int chunk) (int hc - vr) in
  let src_base = (vb * int ss.(0)) + (vc * int ss.(1)) in
  let dst_base = (vb * int ds.(0)) + (vc * int ds.(1)) in
  (* Get phase: the window rows land packed in SPM at pitch wc. *)
  let get_phase =
    if Int.equal s_w 1 then
      Dma
        {
          dir = Get;
          main = "src";
          spm = "stage";
          tag = int tag_cp;
          region =
            {
              offset = src_base + ((int soh + vr) * int s_h) + int (imul sow s_w);
              rows = rcnt;
              row_elems = int wc;
              row_stride = int s_h;
            };
          spm_offset = int 0;
          spm_ld = int wc;
          partition = P_rows;
          per_cpe = None;
        }
    else
      (* Non-contiguous source rows: one gather of wc single-element blocks
         per window row; disjoint SPM intervals, one shared tag. *)
      let vg = var "rg" in
      for_ ~iter:"rg" ~lo:(int 0) ~hi:rcnt ~step:(int 1)
        (Dma
           {
             dir = Get;
             main = "src";
             spm = "stage";
             tag = int tag_cp;
             region =
               {
                 offset = src_base + ((int soh + vr + vg) * int s_h) + int (imul sow s_w);
                 rows = int wc;
                 row_elems = int 1;
                 row_stride = int s_w;
               };
             spm_offset = vg * int wc;
             spm_ld = int 1;
             partition = P_rows;
             per_cpe = None;
           })
  in
  let put_phase =
    if Int.equal d_w 1 then
      Dma
        {
          dir = Put;
          main = "dst";
          spm = "stage";
          tag = int tag_cp;
          region =
            {
              offset = dst_base + ((int doh + vr) * int d_h) + int (imul dow d_w);
              rows = rcnt;
              row_elems = int wc;
              row_stride = int d_h;
            };
          spm_offset = int 0;
          spm_ld = int wc;
          partition = P_rows;
          per_cpe = None;
        }
    else
      let vp = var "rp" in
      for_ ~iter:"rp" ~lo:(int 0) ~hi:rcnt ~step:(int 1)
        (Dma
           {
             dir = Put;
             main = "dst";
             spm = "stage";
             tag = int tag_cp;
             region =
               {
                 offset = dst_base + ((int doh + vr + vp) * int d_h) + int (imul dow d_w);
                 rows = int wc;
                 row_elems = int 1;
                 row_stride = int d_w;
               };
             spm_offset = vp * int wc;
             spm_ld = int 1;
             partition = P_rows;
             per_cpe = None;
           })
  in
  let body =
    seq [ get_phase; Dma_wait { tag = int tag_cp }; put_phase; Dma_wait { tag = int tag_cp } ]
  in
  let nest =
    for_ ~iter:"rb" ~lo:(int 0) ~hi:(int s4.Graph_ir.sb) ~step:(int 1)
      (for_ ~iter:"rc" ~lo:(int 0) ~hi:(int s4.Graph_ir.sc) ~step:(int 1)
         (for_ ~iter:"rr" ~lo:(int 0) ~hi:(int hc) ~step:(int chunk) body))
  in
  program ~name:"relayout" ~bufs nest

(* ------------------------------------------------------------------ *)
(* Host-side references (test oracles and the layer-by-layer numeric
   check). *)

(* Packed array -> packed array, same semantics as the IR program. *)
let apply_ref t src =
  if Array.length src <> t.cp_src_elems then invalid_arg "Graph_layout.apply_ref: src size";
  let dst = Array.make t.cp_dst_elems 0.0 in
  let s4 = t.cp_src_shape in
  let hc, wc, soh, sow, doh, dow = overlap t in
  let ss = strides t.cp_src_layout s4 and ds = strides t.cp_dst_layout t.cp_dst_shape in
  for b = 0 to s4.Graph_ir.sb - 1 do
    for c = 0 to s4.Graph_ir.sc - 1 do
      for r = 0 to hc - 1 do
        for w = 0 to wc - 1 do
          dst.((b * ds.(0)) + (c * ds.(1)) + ((doh + r) * ds.(2)) + ((dow + w) * ds.(3))) <-
            src.((b * ss.(0)) + (c * ss.(1)) + ((soh + r) * ss.(2)) + ((sow + w) * ss.(3)))
        done
      done
    done
  done;
  dst

(* Logical (b,c,h,w) tensor -> logically adapted tensor: centered crop /
   zero-embed, layout-free. Used by the reference execution path. *)
let adapt_tensor t tensor =
  let d4 = t.cp_dst_shape in
  let hc, wc, soh, sow, doh, dow = overlap t in
  Swtensor.Tensor.of_fn (Shape4.to_shape d4) (fun idx ->
      match idx with
      | [| b; c; r; w |] ->
        let r' = r - doh and w' = w - dow in
        if r' >= 0 && r' < hc && w' >= 0 && w' < wc then
          Swtensor.Tensor.get tensor [| b; c; soh + r'; sow + w' |]
        else 0.0
      | _ -> assert false)

(* Pack a logical activation tensor into a physical buffer. *)
let pack ~layout ~(shape : Graph_ir.shape4) ~elems tensor =
  if not (Swtensor.Shape.equal (Swtensor.Tensor.shape tensor) (Shape4.to_shape shape)) then
    invalid_arg "Graph_layout.pack: tensor shape mismatch";
  if elems < Graph_ir.shape4_elems shape then invalid_arg "Graph_layout.pack: buffer too small";
  let arr = Array.make elems 0.0 in
  let st = strides layout shape in
  for b = 0 to shape.Graph_ir.sb - 1 do
    for c = 0 to shape.Graph_ir.sc - 1 do
      for r = 0 to shape.Graph_ir.sh - 1 do
        for w = 0 to shape.Graph_ir.sw - 1 do
          arr.((b * st.(0)) + (c * st.(1)) + (r * st.(2)) + (w * st.(3))) <-
            Swtensor.Tensor.get tensor [| b; c; r; w |]
        done
      done
    done
  done;
  arr

(* Recover the logical tensor from a physical buffer. *)
let unpack ~layout ~(shape : Graph_ir.shape4) arr =
  let st = strides layout shape in
  Swtensor.Tensor.of_fn (Shape4.to_shape shape) (fun idx ->
      match idx with
      | [| b; c; r; w |] -> arr.((b * st.(0)) + (c * st.(1)) + (r * st.(2)) + (w * st.(3)))
      | _ -> assert false)
