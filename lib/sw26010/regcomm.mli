(** Register-communication model of the 8x8 CPE mesh.

    The mesh lets a CPE broadcast a vector register to the other seven CPEs of
    its row or column in a handful of cycles, which is what makes the
    cluster-wide GEMM primitive possible: each CPE holds 1/64 of A, B and C,
    and assembles remote A-rows / B-columns on the fly. The model charges a
    throughput term against the aggregate mesh bandwidth plus a fixed pattern
    switch penalty whenever the kernel alternates row/column phases. *)

type pattern = Row_broadcast | Col_broadcast

val broadcast_cycles : bytes:int -> float
(** Cycles to broadcast [bytes] from one CPE to its row or column, assuming
    the mesh's aggregate bandwidth is evenly divided among the 64 CPEs. *)

val switch_cycles : int
(** Penalty for changing between row and column patterns. *)

val phase_cycles : switches:int -> bytes_per_cpe:int -> float
(** Total communication cycles of a kernel phase that broadcasts
    [bytes_per_cpe] from every CPE and switches patterns [switches] times. *)

(** {1 Exchange-schedule introspection}

    A symbolic description of the row/column broadcasts a kernel performs,
    precise enough for a static well-formedness check ({!Ir_race} codes
    SWA032–SWA034) without simulating the mesh. *)

type xchg = {
  x_pattern : pattern;
  x_src : int;  (** source lane within each row/column, [0..7] *)
  x_deps : int list;
      (** indices of same-step exchanges whose broadcast this exchange's
          source consumes before driving its own port (forwarding chains) *)
}

type step = xchg list
(** Exchanges of one mesh phase; all run concurrently, separated from the
    next step by a full-mesh synchronization. *)

type schedule = step list

type violation =
  | Bad_lane of { step : int; xchg : int; lane : int }
      (** source lane outside the 8-wide mesh *)
  | Unbalanced of { step : int; pattern : pattern; lane : int; sends : int }
      (** a lane drives the same port more than once in a step, so per-lane
          send/receive counts cannot match *)
  | Cyclic of { step : int; cycle : int list }
      (** the wait-for relation between a step's exchanges has a cycle: the
          sources block on each other's broadcasts forever *)

val validate : schedule -> violation list
(** All well-formedness violations of a schedule, in step order. An empty
    list means every step has in-range single-sender lanes and an acyclic
    forwarding relation. *)

val describe_violation : violation -> string

val gemm_schedule : k_steps:int -> schedule
(** The exchange schedule of the cluster-wide GEMM micro-kernel over
    [k_steps] reduction steps: at step [s], lane [s mod 8] broadcasts its A
    panel along rows and its B panel along columns, independently. Always
    validates clean. *)
