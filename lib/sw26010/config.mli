(** Architectural constants of one SW26010 core group (CG).

    Values follow the paper (Sec. 2) and the public benchmarking literature it
    cites (Xu et al., IPDPSW'17): 8x8 compute processing elements (CPEs), each
    with a 64 KB software-managed scratch-pad memory (SPM), a DMA engine that
    moves data between main memory and SPM in 128-byte DRAM transactions, a
    low-latency register-communication mesh, and two in-order instruction
    pipelines per CPE. *)

val cpe_rows : int
val cpe_cols : int

val cpes_per_cg : int
(** [cpe_rows * cpe_cols = 64]. *)

val num_cgs : int
(** Core groups per SW26010 node: 4. Each CG is an independent 8x8 CPE
    cluster with its own memory controller, so the serving layer models a
    node as [num_cgs] schedulable shards executing compiled networks
    concurrently. *)

val freq_hz : float
(** CPE clock frequency: 1.45 GHz. *)

val vector_lanes : int
(** Single-precision lanes per 256-bit vector register, as used by the
    paper's FLOP accounting (loads of "four floating-point data"). *)

val flops_per_vmad : int
(** FLOPs retired by one vectorized multiply-and-accumulate. *)

val peak_flops_cpe : float
val peak_flops_cg : float
(** Aggregate peak of the CPE cluster; ~742 GFLOPS, i.e. one quarter of the
    chip's 3.06 TFLOPS headline minus the MPE contribution. *)

val peak_flops_node : float
(** Aggregate CPE peak of all {!num_cgs} core groups of one node. *)

val spm_bytes : int
(** Per-CPE scratch-pad capacity: 64 KB. *)

val elem_bytes : int
(** Bytes per single-precision element. *)

val dram_transaction_bytes : int
(** Granularity of main-memory access: even a 1-byte touch moves a whole
    128-byte transaction (Sec. 4.6). *)

val dma_peak_bw : float
(** Theoretical peak main-memory bandwidth available to one CG (bytes/s);
    the PEAK_BW term of Eq. (1). *)

val dma_latency_s : float
(** DMA start-up latency, the T_latency term of Eq. (1). *)

val glgs_bw : float
(** Global load/store bandwidth (bytes/s); ~15x slower than DMA, which is why
    all bulk transfers go through the DMA engine. *)

val regcomm_bw : float
(** Aggregate register-communication bandwidth of the 8x8 mesh (bytes/s). *)

val regcomm_switch_cycles : int
(** Latency (cycles) to switch the register-communication pattern between
    row-broadcast and column-broadcast phases of the GEMM primitive. *)

val seconds_of_cycles : float -> float
val cycles_of_seconds : float -> float
