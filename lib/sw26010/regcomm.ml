type pattern = Row_broadcast | Col_broadcast

let per_cpe_bw = Config.regcomm_bw /. float_of_int Config.cpes_per_cg

let broadcast_cycles ~bytes =
  if bytes = 0 then 0.0
  else float_of_int bytes /. per_cpe_bw *. Config.freq_hz

let switch_cycles = Config.regcomm_switch_cycles

let phase_cycles ~switches ~bytes_per_cpe =
  broadcast_cycles ~bytes:bytes_per_cpe +. float_of_int (switches * switch_cycles)

(* --- Exchange-schedule introspection ------------------------------------ *)

type xchg = { x_pattern : pattern; x_src : int; x_deps : int list }
type step = xchg list
type schedule = step list

type violation =
  | Bad_lane of { step : int; xchg : int; lane : int }
  | Unbalanced of { step : int; pattern : pattern; lane : int; sends : int }
  | Cyclic of { step : int; cycle : int list }

let pattern_name = function Row_broadcast -> "row" | Col_broadcast -> "col"

let describe_violation = function
  | Bad_lane { step; xchg; lane } ->
    Printf.sprintf "step %d exchange %d: source lane %d outside the mesh (0..%d)" step xchg lane
      (Config.cpe_rows - 1)
  | Unbalanced { step; pattern; lane; sends } ->
    Printf.sprintf
      "step %d: lane %d drives its %s port %d times; receivers post one receive per lane per step"
      step lane (pattern_name pattern) sends
  | Cyclic { step; cycle } ->
    Printf.sprintf "step %d: exchanges {%s} wait on each other cyclically" step
      (String.concat " -> " (List.map string_of_int cycle))

(* Within a step all exchanges run concurrently; an exchange's x_deps are the
   indices of same-step exchanges whose broadcast its source consumes before
   it can drive its own port (forwarding chains). The step deadlocks iff that
   wait-for relation has a cycle. *)
let find_cycle (xs : step) =
  let n = List.length xs in
  let deps = Array.of_list (List.map (fun x -> List.filter (fun d -> d >= 0 && d < n) x.x_deps) xs) in
  let state = Array.make n 0 (* 0 unvisited, 1 on stack, 2 done *) in
  let cycle = ref None in
  let rec visit path i =
    match state.(i) with
    | 2 -> ()
    | 1 ->
      if Option.is_none !cycle then begin
        let rec cut = function
          | j :: rest -> if j = i then [ j ] else j :: cut rest
          | [] -> []
        in
        cycle := Some (List.rev (i :: cut path))
      end
    | _ ->
      state.(i) <- 1;
      List.iter (visit (i :: path)) deps.(i);
      state.(i) <- 2
  in
  for i = 0 to n - 1 do
    if Option.is_none !cycle then visit [] i
  done;
  !cycle

let validate (s : schedule) =
  let grid = Config.cpe_rows in
  let out = ref [] in
  List.iteri
    (fun si step ->
      List.iteri
        (fun xi x ->
          if x.x_src < 0 || x.x_src >= grid then
            out := Bad_lane { step = si; xchg = xi; lane = x.x_src } :: !out)
        step;
      let counts = Hashtbl.create 8 in
      List.iter
        (fun x ->
          if x.x_src >= 0 && x.x_src < grid then begin
            let key = (x.x_pattern, x.x_src) in
            Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
          end)
        step;
      Hashtbl.iter
        (fun (pattern, lane) sends ->
          if sends > 1 then out := Unbalanced { step = si; pattern; lane; sends } :: !out)
        counts;
      match find_cycle step with
      | Some cycle -> out := Cyclic { step = si; cycle } :: !out
      | None -> ())
    s;
  List.rev !out

(* The cluster-wide GEMM exchange: at reduction step s, the lane holding the
   s-th panel broadcasts its A slice along rows and its B slice along columns.
   The two broadcasts of a step are independent (no forwarding), so the
   schedule is trivially acyclic and single-sender per port. *)
let gemm_schedule ~k_steps =
  let grid = Config.cpe_rows in
  List.init (max 0 k_steps) (fun s ->
      let lane = s mod grid in
      [
        { x_pattern = Row_broadcast; x_src = lane; x_deps = [] };
        { x_pattern = Col_broadcast; x_src = lane; x_deps = [] };
      ])
