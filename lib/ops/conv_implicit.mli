(** Implicit-GEMM convolution (Fig. 2 right, Alg. 2): direct convolution
    whose inner loops are replaced by GEMM primitives.

    For each output row [ro], output-column tile [cob] and filter tap
    [(kr, kc)], a GEMM accumulates
    [D_o(no, fc*b) += W(no, ni) * D_i(ni, fc*b)] over input-channel blocks:
    the M dimension is the output-channel block, the N dimension fuses the
    column tile with the whole batch, and K is the input-channel block.

    Tensors use the channel-major CHWB layout ([ni][ri][ci][b]), which makes
    one DMA row per input channel fetch a [fc*b]-long contiguous pixel run —
    this is what lets a batch-1 inference still present a large GEMM N
    dimension (via [fc]), the capability gap Fig. 5 highlights over swDNN.

    Requires [stride = 1] and [pad = 0] (workload tables fold padding into
    effective output extents). *)

type pixel_order = Ro_outer | Co_outer
type reduce_order = Taps_then_ni | Ni_then_taps

(** Shape of the output-pixel tile that forms the GEMM N dimension.

    - [Col_tile fc]: a run of [fc] columns of one output row; [N = fc * b].
      Works with any batch, and large batches make N big on their own.
    - [Row_slab fr]: [fr] whole output rows, streamed as one contiguous
      input slab including the halo columns; [N = fr * ci * b]. The GEMM
      computes (and discards) the [2 * b] halo columns per row, buying a
      large N even at batch 1 — the schedule that closes Fig. 5's
      batch-1 gap. *)
type tile_shape = Col_tile of int | Row_slab of int

type strategy = {
  tile : tile_shape;
  fi : int;  (** input-channel block (K) *)
  fo : int;  (** output-channel block (M) *)
  pixel_order : pixel_order;
  reduce_order : reduce_order;
  w_oi : bool;  (** weights stored [kr][kc][no][ni] (true) or [kr][kc][ni][no] *)
  vec : Primitives.Spm_gemm.vec_dim;
  boundary : Op_common.boundary;  (** [Switch] or [Pad_light] *)
  prefetch : bool;
}

type t = private { spec : Swtensor.Conv_spec.t }

val problem : Swtensor.Conv_spec.t -> t
(** Raises [Invalid_argument] unless [stride = 1], [pad = 0]. *)

val applicable : Swtensor.Conv_spec.t -> bool
val flops : t -> float
val space : ?prefetch:bool -> t -> strategy list
val build : t -> strategy -> Swatop.Ir.program
val describe : strategy -> string

val bindings_for :
  t -> strategy -> input:Swtensor.Tensor.t -> weight:Swtensor.Tensor.t -> (string * float array) list

val unpack_output : t -> (string * float array) list -> Swtensor.Tensor.t

val tune :
  ?cache:Swatop.Schedule_cache.t ->
  ?checkpoint:string ->
  ?top_k:int ->
  ?prune:bool ->
  ?jobs:int ->
  ?search:Swatop.Tuner.search ->
  gemm_model:Swatop.Gemm_cost.t ->
  t ->
  strategy Swatop.Tuner.outcome
(** Enumerates {!space} and tunes it via {!Op_common.cached_model_tune},
    keyed by the full workload dimensions. *)
