(** Winograd convolution F(2x2, 3x3) (Fig. 2 middle).

    Four phases, all expressed in IR and running on the simulated core
    group:

    + filter transform — weights stream through SPM, [G g G^T] per filter,
      producing the U panel [(16, no, ni)] in main memory;
    + input transform — image rows (with halo) stream through SPM,
      [B^T d B] per 4x4 tile, producing the V panel
      [(16, ni, b*tiles)];
    + 16 batched GEMMs — [M[xi] = U[xi] * V[xi]], each a tiled
      {!Op_common.gemm_nest} with the xi loop in the double-buffering
      pipeline (the loop-fusion analogue of Sec. 4.3.1: the 16 products
      stream through one pipelined nest instead of 16 cold kernels);
    + output transform — [A^T m A] per tile, scattered back to the packed
      output.

    Input and output use the BCHW layout; tile blocks cover whole rows of
    tiles so every transfer is a single strided DMA region. Requires
    [stride = 1], [pad = 0], 3x3 kernels and even output extents. *)

type strategy = {
  ti : int;  (** input-channel block of the input transform *)
  tr : int;  (** tile-row block of the input/output transforms *)
  t_o : int;  (** output-channel block of filter/output transforms *)
  fm : int;  (** GEMM tile over no *)
  fn : int;  (** GEMM tile over b*tiles *)
  fk : int;  (** GEMM tile over ni *)
  vec : Primitives.Spm_gemm.vec_dim;
  boundary : Op_common.boundary;  (** [Switch] or [Pad_light] (GEMM phase) *)
  prefetch : bool;  (** pipeline whole phases, including across the 16 GEMMs *)
  gemm_prefetch : bool;
      (** double-buffer inside each product GEMM only — the behaviour of 16
          separate library GEMM calls; ignored when [prefetch] is set *)
  fuse_batch : bool;
      (** batch the element-wise products of all images into single GEMMs
          (N = b*tiles) — the loop-fusion transformation of Sec. 4.3.1,
          since the per-image products share the same transformed filter;
          when false, each image gets its own 16 GEMMs (N = tiles), as the
          hand-assembled baseline does *)
}

type t = private { spec : Swtensor.Conv_spec.t }

val applicable : Swtensor.Conv_spec.t -> bool
val problem : Swtensor.Conv_spec.t -> t

val flops : t -> float
(** Direct-convolution FLOPs (the paper's efficiency denominator — which is
    why Winograd "efficiency" can exceed 100%). *)

val gemm_flops : t -> float
(** FLOPs the 16 product GEMMs actually execute. *)

val tiles_per_image : t -> int
val space : ?prefetch:bool -> t -> strategy list
val build : t -> strategy -> Swatop.Ir.program
val describe : strategy -> string

val bindings_for :
  t -> strategy -> input:Swtensor.Tensor.t -> weight:Swtensor.Tensor.t -> (string * float array) list

val unpack_output : t -> (string * float array) list -> Swtensor.Tensor.t

val tune :
  ?cache:Swatop.Schedule_cache.t ->
  ?checkpoint:string ->
  ?top_k:int ->
  ?prune:bool ->
  ?jobs:int ->
  ?search:Swatop.Tuner.search ->
  gemm_model:Swatop.Gemm_cost.t ->
  t ->
  strategy Swatop.Tuner.outcome
(** Enumerates {!space} and tunes it via {!Op_common.cached_model_tune},
    keyed by the full workload dimensions. *)
