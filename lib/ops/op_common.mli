(** Pieces shared by the operator builders. *)

(** Boundary-processing policy (Sec. 4.5.3).

    - [Switch]: call the DMA and GEMM primitives with ragged (smaller)
      parameters at the boundary — the "switch to new parameters" strategy;
    - [Pad_light]: lightweight zero-padding — zero only the SPM staging
      tiles that receive ragged boundary data, then run full-size
      primitives;
    - [Pad_full]: traditional zero-padding — copy whole operands into
      freshly allocated padded main-memory buffers through the device (and
      crop results back), then run perfectly aligned primitives. *)
type boundary = Switch | Pad_light | Pad_full

val boundary_to_string : boundary -> string
val boundary_of_index : int -> boundary

val trim_candidates : int -> int list -> int list
(** Keep at most [n] values, evenly spread, always keeping the extremes. *)

val cpe_grid_elems : int -> int -> int
(** Per-CPE SPM elements of a 2D tile split across the 8x8 grid. *)

val spm_budget_ok : prefetch:bool -> int list -> bool
(** Whether buffers with the given per-CPE element counts fit the 64 KB
    scratch pad, using the same per-buffer alignment and double-buffering
    rules as the SPM planner — the validity predicate of every schedule
    space. *)

val pack_input_bchw : Swtensor.Conv_spec.t -> Swtensor.Tensor.t -> float array
(** Flatten a logical [(b, ni, ri, ci)] input tensor into the BCHW main-
    memory image used by the Winograd and explicit operators. *)

(** A tiled [C += A * B] loop nest over row-major main-memory panels — the
    shared skeleton of the matmul operator, the Winograd batched GEMMs and
    the explicit-convolution GEMM.

    [a_base]/[b_base]/[c_base] are element offsets of the panels inside
    their buffers (e.g. the xi-th Winograd product panel); [m]/[n]/[k] are
    the panel extents, with leading dimensions [k]/[n]/[n]. Iterator names
    and DMA tags are prefixed/offset so several nests can coexist in one
    program. When [pad_light] is false, ragged tiles switch primitive
    parameters; when true, they are zero-padded in SPM.

    The nest expects SPM tile buffers named [<prefix>a_tile],
    [<prefix>b_tile], [<prefix>c_tile] sized [fm*fk], [fk*fn], [fm*fn]
    (CG elements). [tile_buffers] declares them. *)
type gemm_nest = {
  g_fm : int;
  g_fn : int;
  g_fk : int;
  g_vec : Primitives.Spm_gemm.vec_dim;
  g_n_outer : bool;
  g_pad_light : bool;
  g_prefetch : bool;  (** mark the outer tile loop for double buffering *)
  g_prefix : string;  (** iterator / buffer / tag namespace *)
  g_tag_base : int;
}

val gemm_tile_buffers : gemm_nest -> Swatop.Ir.buf list

val gemm_tile_bytes : fm:int -> fn:int -> fk:int -> int
(** Per-CPE bytes of the three tiles (before double buffering). *)

val gemm_nest :
  ?a_row_stride:int ->
  ?b_row_stride:int ->
  ?c_row_stride:int ->
  gemm_nest ->
  a_main:string ->
  b_main:string ->
  c_main:string ->
  a_base:Swatop.Ir.expr ->
  b_base:Swatop.Ir.expr ->
  c_base:Swatop.Ir.expr ->
  m:int ->
  n:int ->
  k:int ->
  Swatop.Ir.stmt
(** Row strides of the main-memory panels default to the packed case
    ([k]/[n]/[n]); pass them explicitly when a panel is a strided slice of
    a larger matrix (e.g. one image's columns of a batched Winograd
    panel). *)

(** Device-side copy of a [rows x cols] row-major main-memory matrix into
    the top-left of a [dst_ld]-wide padded buffer (zero tail columns), done
    chunk-wise through an SPM staging buffer — the traditional-padding
    prologue. The staging buffer must hold [chunk_rows * dst_ld] elements
    CG-wide. *)
val padded_copy :
  iter:string ->
  tag:int ->
  src:string ->
  dst:string ->
  rows:int ->
  cols:int ->
  dst_ld:int ->
  stage:string ->
  chunk_rows:int ->
  Swatop.Ir.stmt

(** Device-side crop: copy the top-left [rows x cols] of a [src_ld]-wide
    padded buffer into a packed [cols]-wide destination. *)
val cropped_copy :
  iter:string ->
  tag:int ->
  src:string ->
  src_ld:int ->
  dst:string ->
  rows:int ->
  cols:int ->
  stage:string ->
  chunk_rows:int ->
  Swatop.Ir.stmt

val cached_model_tune :
  ?cache:Swatop.Schedule_cache.t ->
  ?checkpoint:string ->
  ?top_k:int ->
  ?prune:bool ->
  ?jobs:int ->
  ?search:Swatop.Tuner.search ->
  op:string ->
  dims:int list ->
  gemm_model:Swatop.Gemm_cost.t ->
  describe:('a -> string) ->
  candidates:'a list ->
  build:('a -> Swatop.Ir.program) ->
  unit ->
  'a Swatop.Tuner.outcome
(** {!Swatop.Tuner.tune} behind a {!Swatop.Schedule_cache}: on a warm
    hit (same operator, workload dims, search mode, and space fingerprint)
    the stored winner is rebuilt and prepared directly — no scoring, no
    measurement — and the report carries [cache_hit = true] with zero
    simulated hardware time. On a miss the tuner runs normally and its
    winner is remembered under a mode-qualified key, so guided and
    exhaustive winners for the same workload never collide. With
    [?cache] absent this is exactly the underlying tuner.

    [search] defaults to [Exhaustive]. A [Guided] tune additionally
    warm-starts its cost model from the cache's per-operator-family
    weights (when present, current-version, and no explicit [gc_warm] was
    given) and stores its fitted weights back after tuning — transfer
    across workload dims of the same family.

    [?checkpoint] is a {e base path} (conventionally the schedule-cache
    path): each tune derives a per-key checkpoint file from it
    ({!Swatop.Tune_checkpoint.path_for}) and passes the resulting context
    to {!Swatop.Tuner.model_tune}, so an interrupted exhaustive tune
    resumes instead of restarting (guided tunes ignore it). *)
