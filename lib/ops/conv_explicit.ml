module G = Primitives.Spm_gemm
module Spec = Swtensor.Conv_spec

type strategy = {
  pi : int;
  slab_im2col : bool;
  fm : int;
  fn : int;
  fk : int;
  n_outer : bool;
  vec : G.vec_dim;
  boundary : Op_common.boundary;
  prefetch : bool;
  gemm_prefetch : bool;
}

type t = { spec : Spec.t }

(* Explicit GEMM is the guaranteed fallback (the paper's rule: explicit
   where the tensorized operators cannot apply). Strided and padded
   problems lower through a generalized im2col: padding is materialized
   into an "inpad" staging buffer and stride becomes a gather. *)
let applicable (_ : Spec.t) = true

let problem spec = { spec }

let flops t = Spec.flops t.spec
let imul = Stdlib.( * )

let describe s =
  Printf.sprintf "explicit[%s fm=%d fn=%d fk=%d order=%s vec=%s boundary=%s%s]"
    (if s.slab_im2col then Printf.sprintf "slab pi=%d" s.pi else "naive")
    s.fm s.fn s.fk
    (if s.n_outer then "NM" else "MN")
    (match s.vec with G.Vec_m -> "M" | G.Vec_n -> "N")
    (Op_common.boundary_to_string s.boundary)
    (if s.prefetch then "" else " no-prefetch")

(* ------------------------------------------------------------------ *)
(* Schedule space. *)

let cpe_of cg = Prelude.Ints.ceil_div cg Sw26010.Config.cpes_per_cg

(* Row chunk of the padding pre-phase: how many unpadded input rows are
   staged through SPM per transfer when embedding into the padded image. *)
let pad_chunk_rows (spec : Spec.t) =
  let ci = Spec.ci spec in
  max 1 (min (Spec.ri spec) (2048 / ci))

let spm_fits (spec : Spec.t) s =
  let ri = Spec.ri spec and ci = Spec.ci spec in
  let stage_pi = if s.slab_im2col then s.pi else 1 in
  let bufs =
    [ cpe_of (imul stage_pi (imul spec.ro spec.co)) ]
    @ (if s.slab_im2col then [ cpe_of (imul s.pi (imul ri ci)) ] else [])
    @ (if spec.pad > 0 then [ cpe_of (imul (pad_chunk_rows spec) ci) ] else [])
    @ [
        Op_common.cpe_grid_elems s.fm s.fk;
        Op_common.cpe_grid_elems s.fk s.fn;
        Op_common.cpe_grid_elems s.fm s.fn;
      ]
  in
  Op_common.spm_budget_ok ~prefetch:(s.prefetch || s.gemm_prefetch) bufs

let divisor_candidates ?(lo = 1) ?(hi = max_int) n keep =
  Prelude.Ints.divisors n
  |> List.filter (fun d -> d >= lo && d <= hi)
  |> Op_common.trim_candidates keep

let gemm_shapes (spec : Spec.t) =
  let k_total = imul spec.ni (imul spec.kr spec.kc) in
  let n_total = imul spec.b (imul spec.ro spec.co) in
  let fms = divisor_candidates ~lo:(min spec.no 16) ~hi:256 spec.no 4 in
  let fks = divisor_candidates ~lo:(min k_total 32) ~hi:512 k_total 4 in
  let fns =
    match List.filter (fun f -> f <= n_total) [ 128; 256; 512; 1024; 2048 ] with
    | [] -> [ n_total ]
    | l -> l
  in
  (k_total, n_total, fms, fns, fks)

let space ?(prefetch = true) t =
  let spec = t.spec in
  let k_total, n_total, fms, fns, fks = gemm_shapes spec in
  let tensorizable = spec.stride = 1 && spec.pad = 0 in
  let pis =
    if tensorizable then
      Prelude.Ints.divisors spec.ni
      |> List.filter (fun d -> d <= 16)
      |> Op_common.trim_candidates 3
    else [ 1 ]
  in
  let strategies =
    List.concat_map
      (fun (fm, fn, fk) ->
        let ragged = spec.no mod fm <> 0 || n_total mod fn <> 0 || k_total mod fk <> 0 in
        let boundaries =
          if ragged then [ Op_common.Switch; Op_common.Pad_light ] else [ Op_common.Switch ]
        in
        List.concat_map
          (fun boundary ->
            List.concat_map
              (fun n_outer ->
                List.concat_map
                  (fun vec ->
                    List.map
                      (fun pi ->
                        if tensorizable then
                          {
                            pi;
                            slab_im2col = true;
                            fm;
                            fn;
                            fk;
                            n_outer;
                            vec;
                            boundary;
                            prefetch;
                            gemm_prefetch = false;
                          }
                        else
                          (* General (strided/padded) fallback: naive gather
                             im2col, no slab, no im2col prefetch — the GEMM
                             phase still double-buffers. *)
                          {
                            pi;
                            slab_im2col = false;
                            fm;
                            fn;
                            fk;
                            n_outer;
                            vec;
                            boundary;
                            prefetch = false;
                            gemm_prefetch = prefetch;
                          })
                      pis)
                  [ G.Vec_m; G.Vec_n ])
              [ false; true ])
          boundaries)
      (Prelude.Lists.cartesian3 fms fns fks)
  in
  List.filter (spm_fits spec) strategies

(* ------------------------------------------------------------------ *)
(* Numeric harness. *)

let bindings_for (t : t) s ~input ~weight =
  ignore s;
  let spec = t.spec in
  if Swtensor.Tensor.shape input <> Spec.input_shape spec then
    invalid_arg "Conv_explicit: input shape mismatch";
  if Swtensor.Tensor.shape weight <> Spec.weight_shape spec then
    invalid_arg "Conv_explicit: weight shape mismatch";
  let k_total = imul spec.ni (imul spec.kr spec.kc) in
  let n_total = imul spec.b (imul spec.ro spec.co) in
  let padded =
    if spec.pad = 0 then []
    else
      let rp = Spec.ri spec + imul 2 spec.pad and cp = Spec.ci spec + imul 2 spec.pad in
      [ ("inpad", Array.make (imul (imul spec.b spec.ni) (imul rp cp)) 0.0) ]
  in
  [
    ("input", Op_common.pack_input_bchw spec input);
    ("weight", Array.copy (Swtensor.Tensor.data weight));
    ("col", Array.make (imul k_total n_total) 0.0);
    ("outmat", Array.make (imul spec.no n_total) 0.0);
  ]
  @ padded

let unpack_output (t : t) bindings =
  let spec = t.spec in
  match List.assoc_opt "outmat" bindings with
  | None -> invalid_arg "Conv_explicit.unpack_output: no outmat binding"
  | Some arr ->
    let n_total = imul spec.b (imul spec.ro spec.co) in
    Swtensor.Tensor.of_fn (Spec.output_shape spec) (fun idx ->
        match idx with
        | [| cb; cno; r; c |] ->
          arr.((cno * n_total) + (((cb * spec.ro) + r) * spec.co) + c)
        | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Lowering. *)

open Swatop.Ir

let tag_win = 30
let tag_col = 31
let tag_pad = 32

let build (t : t) s =
  let ({ b; ni; no; ro; co; kr; kc; stride; pad } : Spec.t) = t.spec in
  let ri = Spec.ri t.spec and ci = Spec.ci t.spec in
  (* Padded input extents; identical to (ri, ci) when pad = 0. *)
  let rp = Stdlib.( + ) ri (imul 2 pad) and cp = Stdlib.( + ) ci (imul 2 pad) in
  let im2col_src = if pad > 0 then "inpad" else "input" in
  let k_total = imul ni (imul kr kc) in
  let n_total = imul b (imul ro co) in
  let window = imul ro co in
  let g =
    {
      Op_common.g_fm = s.fm;
      g_fn = s.fn;
      g_fk = s.fk;
      g_vec = s.vec;
      g_n_outer = s.n_outer;
      g_pad_light = (match s.boundary with Op_common.Pad_light -> true | _ -> false);
      g_prefetch = (s.prefetch || s.gemm_prefetch);
      g_prefix = "e";
      g_tag_base = 0;
    }
  in
  let pi = if s.slab_im2col then s.pi else 1 in
  let bufs =
    [
      main_buf ~name:"input" ~elems:(imul (imul b ni) (imul ri ci));
      main_buf ~name:"weight" ~elems:(imul no k_total);
      main_buf ~name:"col" ~elems:(imul k_total n_total);
      main_buf ~name:"outmat" ~elems:(imul no n_total);
      spm_buf ~name:"win_stage" ~cg_elems:(imul pi window) ~cpe_elems:(cpe_of (imul pi window));
    ]
    @ (if pad > 0 then
         let chunk = pad_chunk_rows t.spec in
         [
           main_buf ~name:"inpad" ~elems:(imul (imul b ni) (imul rp cp));
           spm_buf ~name:"pad_stage" ~cg_elems:(imul chunk ci) ~cpe_elems:(cpe_of (imul chunk ci));
         ]
       else [])
    @ (if s.slab_im2col then
         [
           spm_buf ~name:"img_slab" ~cg_elems:(imul pi (imul ri ci))
             ~cpe_elems:(cpe_of (imul pi (imul ri ci)));
         ]
       else [])
    @ Op_common.gemm_tile_buffers g
  in
  (* Phase 0 (pad > 0 only): embed the unpadded image into the zeroed
     "inpad" buffer, one row chunk at a time through SPM. The borders are
     never written, so they keep the allocation's zeros. *)
  let phase_pad =
    if Int.equal pad 0 then []
    else
      let chunk = pad_chunk_rows t.spec in
      let vb = var "xpb" and vn = var "xpn" and vr = var "xpr" in
      let rcnt = emin (int chunk) (int ri - vr) in
      let get =
        Dma
          {
            dir = Get;
            main = "input";
            spm = "pad_stage";
            tag = int tag_pad;
            region =
              {
                offset = ((((vb * int ni) + vn) * int ri) + vr) * int ci;
                rows = rcnt;
                row_elems = int ci;
                row_stride = int ci;
              };
            spm_offset = int 0;
            spm_ld = int ci;
            partition = P_rows;
            per_cpe = None;
          }
      in
      let put =
        Dma
          {
            dir = Put;
            main = "inpad";
            spm = "pad_stage";
            tag = int tag_pad;
            region =
              {
                offset = (((((vb * int ni) + vn) * int rp) + int pad + vr) * int cp) + int pad;
                rows = rcnt;
                row_elems = int ci;
                row_stride = int cp;
              };
            spm_offset = int 0;
            spm_ld = int ci;
            partition = P_rows;
            per_cpe = None;
          }
      in
      [
        Comment "phase 0: pad embed";
        for_ ~iter:"xpb" ~lo:(int 0) ~hi:(int b) ~step:(int 1)
          (for_ ~iter:"xpn" ~lo:(int 0) ~hi:(int ni) ~step:(int 1)
             (for_ ~iter:"xpr" ~lo:(int 0) ~hi:(int ri) ~step:(int chunk)
                (seq
                   [
                     get;
                     Dma_wait { tag = int tag_pad };
                     put;
                     Dma_wait { tag = int tag_pad };
                   ])));
      ]
  in
  (* Phase 1, naive form: one shifted ro x co window per (image, channel,
     tap) streams through SPM into the column matrix — 9x redundant strided
     reads of the input, the structure hand-written im2col code uses. With
     stride > 1 the window is no longer row-contiguous, so each output row
     becomes a gather of co single-element blocks. *)
  let naive_im2col =
    let vb = var "xb" and vni = var "xni" and vkr = var "xkr" and vkc = var "xkc" in
    let plane = ((vb * int ni) + vni) * int (imul rp cp) in
    let get_window =
      if Int.equal stride 1 then
        Dma
          {
            dir = Get;
            main = im2col_src;
            spm = "win_stage";
            tag = int tag_win;
            region =
              {
                offset = plane + (vkr * int cp) + vkc;
                rows = int ro;
                row_elems = int co;
                row_stride = int cp;
              };
            spm_offset = int 0;
            spm_ld = int co;
            partition = P_rows;
            per_cpe = None;
          }
      else
        (* One strided gather per output row; all gets share the tag and
           land in disjoint SPM intervals, drained by one wait. *)
        let vr = var "xr" in
        for_ ~iter:"xr" ~lo:(int 0) ~hi:(int ro) ~step:(int 1)
          (Dma
             {
               dir = Get;
               main = im2col_src;
               spm = "win_stage";
               tag = int tag_win;
               region =
                 {
                   offset = plane + (((vr * int stride) + vkr) * int cp) + vkc;
                   rows = int co;
                   row_elems = int 1;
                   row_stride = int stride;
                 };
               spm_offset = vr * int co;
               spm_ld = int 1;
               partition = P_rows;
               per_cpe = None;
             })
    in
    let put =
      let row_idx = (vni * int (imul kr kc)) + (vkr * int kc) + vkc in
      Dma
        {
          dir = Put;
          main = "col";
          spm = "win_stage";
          tag = int tag_col;
          region =
            {
              offset = (row_idx * int n_total) + (vb * int window);
              rows = int 1;
              row_elems = int window;
              row_stride = int window;
            };
          spm_offset = int 0;
          spm_ld = int window;
          partition = P_cols;
          per_cpe = None;
        }
    in
    (* Drain the last column put before the GEMM phase reads "col": the gets
       of the first GEMM tile issue ahead of any wait, and in-order
       retirement makes the one wait drain the whole phase. *)
    let drain =
      let last =
        And
          ( And (Cmp (Le, int b, vb + int 1), Cmp (Le, int ni, vni + int 1)),
            And (Cmp (Le, int kr, vkr + int 1), Cmp (Le, int kc, vkc + int 1)) )
      in
      If { cond = last; then_ = Dma_wait { tag = int tag_col }; else_ = Seq [] }
    in
    for_ ~prefetch:s.prefetch ~iter:"xb" ~lo:(int 0) ~hi:(int b) ~step:(int 1)
      (for_ ~iter:"xni" ~lo:(int 0) ~hi:(int ni) ~step:(int 1)
         (for_ ~iter:"xkr" ~lo:(int 0) ~hi:(int kr) ~step:(int 1)
            (for_ ~iter:"xkc" ~lo:(int 0) ~hi:(int kc) ~step:(int 1)
               (seq [ get_window; Dma_wait { tag = int tag_win }; put; drain ]))))
  in
  (* Phase 1, slab form (swATOP): fetch a [pi]-channel image slab once,
     repack each of the kr*kc shifted windows in SPM with vector copies,
     and write packed column rows — the input is read once instead of
     kr*kc times, and every transfer is large and contiguous. *)
  let slab_im2col =
    let vb = var "xb" and vnib = var "xnib" in
    let vkr = var "xkr" and vkc = var "xkc" and vch = var "xch" in
    let tpi = Swatop.Scheduler.clipped ~extent:ni ~step:pi vnib in
    let get_slab =
      Dma
        {
          dir = Get;
          main = "input";
          spm = "img_slab";
          tag = int tag_win;
          region =
            {
              offset = ((vb * int ni) + vnib) * int (imul ri ci);
              rows = int 1;
              row_elems = tpi * int (imul ri ci);
              row_stride = int 1;
            };
          spm_offset = int 0;
          spm_ld = tpi * int (imul ri ci);
          partition = P_cols;
          per_cpe = None;
        }
    in
    let repack =
      (* Per channel of the block: copy the (ro x co) window at shift
         (kr, kc) into the packed stage. *)
      for_ ~iter:"xch" ~lo:(int 0) ~hi:tpi ~step:(int 1)
        (Spm_copy
           {
             cp_src = "img_slab";
             cp_src_offset = (vch * int (imul ri ci)) + (vkr * int ci) + vkc;
             cp_src_ld = int ci;
             cp_dst = "win_stage";
             cp_dst_offset = vch * int window;
             cp_dst_ld = int co;
             cp_rows = int ro;
             cp_row_elems = int co;
           })
    in
    let put =
      let row0 = (vnib * int (imul kr kc)) + (vkr * int kc) + vkc in
      Dma
        {
          dir = Put;
          main = "col";
          spm = "win_stage";
          tag = int tag_col;
          region =
            {
              offset = (row0 * int n_total) + (vb * int window);
              rows = tpi;
              row_elems = int window;
              row_stride = int (imul (imul kr kc) n_total);
            };
          spm_offset = int 0;
          spm_ld = int window;
          partition = P_grid;
          per_cpe = None;
        }
    in
    (* Same terminal drain as the naive form: the GEMM phase's first gets
       race the trailing column puts without it. *)
    let drain =
      let last =
        And
          ( And (Cmp (Le, int b, vb + int 1), Cmp (Le, int ni, vnib + int pi)),
            And (Cmp (Le, int kr, vkr + int 1), Cmp (Le, int kc, vkc + int 1)) )
      in
      If { cond = last; then_ = Dma_wait { tag = int tag_col }; else_ = Seq [] }
    in
    let taps =
      for_ ~iter:"xkr" ~lo:(int 0) ~hi:(int kr) ~step:(int 1)
        (for_ ~iter:"xkc" ~lo:(int 0) ~hi:(int kc) ~step:(int 1) (seq [ repack; put; drain ]))
    in
    for_ ~prefetch:s.prefetch ~iter:"xb" ~lo:(int 0) ~hi:(int b) ~step:(int 1)
      (for_ ~iter:"xnib" ~lo:(int 0) ~hi:(int ni) ~step:(int pi)
         (seq [ get_slab; Dma_wait { tag = int tag_win }; taps ]))
  in
  let phase_im2col = if s.slab_im2col then slab_im2col else naive_im2col in
  let phase_gemm =
    Op_common.gemm_nest g ~a_main:"weight" ~b_main:"col" ~c_main:"outmat" ~a_base:(int 0)
      ~b_base:(int 0) ~c_base:(int 0) ~m:no ~n:n_total ~k:k_total
  in
  program ~name:"conv_explicit" ~bufs
    (seq
       (phase_pad
       @ [ Comment "phase 1: im2col"; phase_im2col; Comment "phase 2: GEMM"; phase_gemm ]))

(* ------------------------------------------------------------------ *)
(* Tuning entry point. *)

let tune ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model t =
  let s = t.spec in
  Op_common.cached_model_tune ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~op:"conv_explicit"
    ~dims:[ s.Spec.b; s.ni; s.no; s.ro; s.co; s.kr; s.kc; s.stride; s.pad ]
    ~gemm_model ~describe ~candidates:(space t) ~build:(build t) ()
