type algo = Implicit | Winograd | Explicit

let algo_name = function Implicit -> "implicit" | Winograd -> "winograd" | Explicit -> "explicit"

type choice = {
  c_algo : algo;
  c_desc : string;
  c_seconds : float;
  c_program : Swatop.Ir.program;
  c_space : int;
}

let applicable algo spec =
  match algo with
  | Implicit -> Conv_implicit.applicable spec
  | Winograd -> Conv_winograd.applicable spec
  | Explicit -> Conv_explicit.applicable spec

let tune ?cache ?(top_k = 4) ?prune ?jobs ~gemm_model algo spec =
  if not (applicable algo spec) then None
  else
    let outcome_to_choice describe (o : _ Swatop.Tuner.outcome) =
      {
        c_algo = algo;
        c_desc = describe o.Swatop.Tuner.best;
        c_seconds = o.best_seconds;
        c_program = o.best_program;
        c_space = o.report.space_size;
      }
    in
    match algo with
    | Implicit ->
      Some
        (outcome_to_choice Conv_implicit.describe
           (Conv_implicit.tune ?cache ~top_k ?prune ?jobs ~gemm_model
              (Conv_implicit.problem spec)))
    | Winograd ->
      Some
        (outcome_to_choice Conv_winograd.describe
           (Conv_winograd.tune ?cache ~top_k ?prune ?jobs ~gemm_model
              (Conv_winograd.problem spec)))
    | Explicit ->
      Some
        (outcome_to_choice Conv_explicit.describe
           (Conv_explicit.tune ?cache ~top_k ?prune ?jobs ~gemm_model
              (Conv_explicit.problem spec)))

let all ?cache ?top_k ?prune ?jobs ~gemm_model spec =
  List.map
    (fun algo -> (algo, tune ?cache ?top_k ?prune ?jobs ~gemm_model algo spec))
    [ Implicit; Winograd; Explicit ]

let best ?cache ?top_k ?prune ?jobs ~gemm_model spec =
  let choices = List.filter_map snd (all ?cache ?top_k ?prune ?jobs ~gemm_model spec) in
  match choices with
  | [] -> invalid_arg "Dispatch.best: no tensorized algorithm applies"
  | first :: rest ->
    List.fold_left (fun acc c -> if c.c_seconds < acc.c_seconds then c else acc) first rest
