type algo = Implicit | Winograd | Explicit

let algo_name = function Implicit -> "implicit" | Winograd -> "winograd" | Explicit -> "explicit"

type choice = {
  c_algo : algo;
  c_desc : string;
  c_seconds : float;
  c_program : Swatop.Ir.program;
  c_space : int;
  c_bindings_for :
    input:Swtensor.Tensor.t -> weight:Swtensor.Tensor.t -> (string * float array) list;
  c_unpack : (string * float array) list -> Swtensor.Tensor.t;
}

let applicable algo spec =
  match algo with
  | Implicit -> Conv_implicit.applicable spec
  | Winograd -> Conv_winograd.applicable spec
  | Explicit -> Conv_explicit.applicable spec

let input_buffer = function Implicit -> "input" | Winograd -> "input" | Explicit -> "input"
let output_buffer = function Implicit -> "output" | Winograd -> "output" | Explicit -> "outmat"

let tune ?cache ?checkpoint ?(top_k = 4) ?prune ?jobs ?search ~gemm_model algo spec =
  if not (applicable algo spec) then None
  else
    let outcome_to_choice describe bindings_for unpack (o : _ Swatop.Tuner.outcome) =
      {
        c_algo = algo;
        c_desc = describe o.Swatop.Tuner.best;
        c_seconds = o.best_seconds;
        c_program = o.best_program;
        c_space = o.report.space_size;
        c_bindings_for = bindings_for o.Swatop.Tuner.best;
        c_unpack = unpack;
      }
    in
    match algo with
    | Implicit ->
      let t = Conv_implicit.problem spec in
      Some
        (outcome_to_choice Conv_implicit.describe
           (fun s ~input ~weight -> Conv_implicit.bindings_for t s ~input ~weight)
           (Conv_implicit.unpack_output t)
           (Conv_implicit.tune ?cache ?checkpoint ~top_k ?prune ?jobs ?search ~gemm_model t))
    | Winograd ->
      let t = Conv_winograd.problem spec in
      Some
        (outcome_to_choice Conv_winograd.describe
           (fun s ~input ~weight -> Conv_winograd.bindings_for t s ~input ~weight)
           (Conv_winograd.unpack_output t)
           (Conv_winograd.tune ?cache ?checkpoint ~top_k ?prune ?jobs ?search ~gemm_model t))
    | Explicit ->
      let t = Conv_explicit.problem spec in
      Some
        (outcome_to_choice Conv_explicit.describe
           (fun s ~input ~weight -> Conv_explicit.bindings_for t s ~input ~weight)
           (Conv_explicit.unpack_output t)
           (Conv_explicit.tune ?cache ?checkpoint ~top_k ?prune ?jobs ?search ~gemm_model t))

(* Graceful degradation: one algorithm's tuner blowing up (a buggy space, an
   injected fault) must not take down the dispatch — the algorithm is
   dropped with a warning and the others still compete. Only when every
   applicable algorithm is gone does the failure surface, as a structured
   error naming the casualties. *)
let all ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model spec =
  List.map
    (fun algo ->
      ( algo,
        match tune ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model algo spec with
        | c -> c
        | exception e ->
          Printf.eprintf "swatop: conv algorithm %s failed to tune (%s); dropped from dispatch\n%!"
            (algo_name algo)
            (Prelude.Swatop_error.label e);
          None ))
    [ Implicit; Winograd; Explicit ]

let ranked ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model spec =
  let choices = List.filter_map snd (all ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model spec) in
  if choices = [] && List.exists (fun a -> applicable a spec) [ Implicit; Winograd; Explicit ]
  then
    Prelude.Swatop_error.error ~site:"dispatch.ranked"
      ~context:[ ("spec", Swtensor.Conv_spec.to_string spec) ]
      "every applicable conv algorithm failed to tune";
  (* Fastest first, but explicit GEMM — the only algorithm guaranteed to
     apply — is pinned last: it is the terminal fallback of the chain, never
     an intermediate step. *)
  let sorted = List.stable_sort (fun a b -> compare a.c_seconds b.c_seconds) choices in
  let explicit, others = List.partition (fun c -> c.c_algo = Explicit) sorted in
  others @ explicit

let best_opt ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model spec =
  let choices =
    List.filter_map snd (all ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model spec)
  in
  match choices with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun acc c -> if c.c_seconds < acc.c_seconds then c else acc) first rest)

let best ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model spec =
  match best_opt ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model spec with
  | Some c -> c
  | None ->
    Prelude.Swatop_error.error ~site:"dispatch.best"
      ~context:[ ("spec", Swtensor.Conv_spec.to_string spec) ]
      "no tensorized algorithm produced an implementation"
