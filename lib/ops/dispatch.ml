type algo = Implicit | Winograd | Explicit

let algo_name = function Implicit -> "implicit" | Winograd -> "winograd" | Explicit -> "explicit"

type choice = {
  c_algo : algo;
  c_desc : string;
  c_seconds : float;
  c_program : Swatop.Ir.program;
  c_space : int;
  c_bindings_for :
    input:Swtensor.Tensor.t -> weight:Swtensor.Tensor.t -> (string * float array) list;
  c_unpack : (string * float array) list -> Swtensor.Tensor.t;
}

let applicable algo spec =
  match algo with
  | Implicit -> Conv_implicit.applicable spec
  | Winograd -> Conv_winograd.applicable spec
  | Explicit -> Conv_explicit.applicable spec

let input_buffer = function Implicit -> "input" | Winograd -> "input" | Explicit -> "input"
let output_buffer = function Implicit -> "output" | Winograd -> "output" | Explicit -> "outmat"

let tune ?cache ?(top_k = 4) ?prune ?jobs ~gemm_model algo spec =
  if not (applicable algo spec) then None
  else
    let outcome_to_choice describe bindings_for unpack (o : _ Swatop.Tuner.outcome) =
      {
        c_algo = algo;
        c_desc = describe o.Swatop.Tuner.best;
        c_seconds = o.best_seconds;
        c_program = o.best_program;
        c_space = o.report.space_size;
        c_bindings_for = bindings_for o.Swatop.Tuner.best;
        c_unpack = unpack;
      }
    in
    match algo with
    | Implicit ->
      let t = Conv_implicit.problem spec in
      Some
        (outcome_to_choice Conv_implicit.describe
           (fun s ~input ~weight -> Conv_implicit.bindings_for t s ~input ~weight)
           (Conv_implicit.unpack_output t)
           (Conv_implicit.tune ?cache ~top_k ?prune ?jobs ~gemm_model t))
    | Winograd ->
      let t = Conv_winograd.problem spec in
      Some
        (outcome_to_choice Conv_winograd.describe
           (fun s ~input ~weight -> Conv_winograd.bindings_for t s ~input ~weight)
           (Conv_winograd.unpack_output t)
           (Conv_winograd.tune ?cache ~top_k ?prune ?jobs ~gemm_model t))
    | Explicit ->
      let t = Conv_explicit.problem spec in
      Some
        (outcome_to_choice Conv_explicit.describe
           (fun s ~input ~weight -> Conv_explicit.bindings_for t s ~input ~weight)
           (Conv_explicit.unpack_output t)
           (Conv_explicit.tune ?cache ~top_k ?prune ?jobs ~gemm_model t))

let all ?cache ?top_k ?prune ?jobs ~gemm_model spec =
  List.map
    (fun algo -> (algo, tune ?cache ?top_k ?prune ?jobs ~gemm_model algo spec))
    [ Implicit; Winograd; Explicit ]

let best_opt ?cache ?top_k ?prune ?jobs ~gemm_model spec =
  let choices = List.filter_map snd (all ?cache ?top_k ?prune ?jobs ~gemm_model spec) in
  match choices with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun acc c -> if c.c_seconds < acc.c_seconds then c else acc) first rest)

let best ?cache ?top_k ?prune ?jobs ~gemm_model spec =
  match best_opt ?cache ?top_k ?prune ?jobs ~gemm_model spec with
  | Some c -> c
  | None -> invalid_arg "Dispatch.best: no tensorized algorithm applies"
