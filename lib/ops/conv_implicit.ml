module G = Primitives.Spm_gemm
module Spec = Swtensor.Conv_spec

type pixel_order = Ro_outer | Co_outer
type reduce_order = Taps_then_ni | Ni_then_taps
type tile_shape = Col_tile of int | Row_slab of int

type strategy = {
  tile : tile_shape;
  fi : int;
  fo : int;
  pixel_order : pixel_order;
  reduce_order : reduce_order;
  w_oi : bool;
  vec : G.vec_dim;
  boundary : Op_common.boundary;
  prefetch : bool;
}

type t = { spec : Spec.t }

let applicable (spec : Spec.t) = spec.stride = 1 && spec.pad = 0

let problem spec =
  if not (applicable spec) then
    invalid_arg "Conv_implicit.problem: requires stride=1, pad=0";
  { spec }

let flops t = Spec.flops t.spec

let tile_to_string = function
  | Col_tile fc -> Printf.sprintf "fc=%d" fc
  | Row_slab fr -> Printf.sprintf "fr=%d" fr

let describe s =
  Printf.sprintf "implicit[%s fi=%d fo=%d %s %s w=%s vec=%s boundary=%s%s]" (tile_to_string s.tile)
    s.fi s.fo
    (match s.pixel_order with Ro_outer -> "ro-outer" | Co_outer -> "co-outer")
    (match s.reduce_order with Taps_then_ni -> "khw.ni" | Ni_then_taps -> "ni.khw")
    (if s.w_oi then "oi" else "io")
    (match s.vec with G.Vec_m -> "M" | G.Vec_n -> "N")
    (Op_common.boundary_to_string s.boundary)
    (if s.prefetch then "" else " no-prefetch")

(* ------------------------------------------------------------------ *)
(* Schedule space. *)

let imul = Stdlib.( * )

(* Full GEMM N dimension of a strategy. *)
let n_full (spec : Spec.t) s =
  match s.tile with
  | Col_tile fc -> imul fc spec.b
  | Row_slab fr -> imul fr (imul (Spec.ci spec) spec.b)

let spm_fits (spec : Spec.t) s =
  let nb = n_full spec s in
  Op_common.spm_budget_ok ~prefetch:s.prefetch
    [
      Op_common.cpe_grid_elems s.fo s.fi;
      Op_common.cpe_grid_elems s.fi nb;
      Op_common.cpe_grid_elems s.fo nb;
    ]

let channel_factors dim =
  (* Blocks below 1/8 of the channel count multiply the reduction trip count
     without ever winning; pruned by prior hardware knowledge (Sec. 4.6). *)
  let lo = min dim (max 16 (Prelude.Ints.ceil_div dim 8)) in
  let axis = Swatop.Dsl.axis "c" dim in
  let fv = Swatop.Dsl.factor_var ~name:"f" ~axis ~min_factor:lo ~max_factor:(min dim 256) () in
  Op_common.trim_candidates 3 fv.Swatop.Dsl.fv_candidates

let tile_candidates (spec : Spec.t) =
  (* Column tiles keep N = fc * b in a kernel-friendly range; row slabs are
     added when the batch alone cannot provide a deep N dimension. *)
  let max_f = Prelude.Ints.clamp ~lo:1 ~hi:spec.co (1024 / spec.b) in
  let min_f = Prelude.Ints.clamp ~lo:1 ~hi:max_f (spec.co / 32) in
  let axis = Swatop.Dsl.axis "co" spec.co in
  let fv = Swatop.Dsl.factor_var ~name:"fc" ~axis ~min_factor:min_f ~max_factor:max_f () in
  let cols =
    List.map (fun fc -> Col_tile fc) (Op_common.trim_candidates 4 fv.Swatop.Dsl.fv_candidates)
  in
  let slabs =
    if spec.b > 16 then []
    else
      let slab_n fr = imul fr (imul (Spec.ci spec) spec.b) in
      List.filter (fun fr -> fr <= spec.ro && slab_n fr <= 4096) [ 1; 2; 4; 8 ]
      |> List.map (fun fr -> Row_slab fr)
  in
  cols @ slabs

let space ?(prefetch = true) t =
  let spec = t.spec in
  let tiles = tile_candidates spec
  and fis = channel_factors spec.ni
  and fos = channel_factors spec.no in
  let combos = Prelude.Lists.cartesian3 tiles fis fos in
  let strategies =
    List.concat_map
      (fun (tile, fi, fo) ->
        let tile_ragged =
          match tile with
          | Col_tile fc -> spec.co mod fc <> 0
          | Row_slab fr -> spec.ro mod fr <> 0
        in
        let ragged = tile_ragged || spec.ni mod fi <> 0 || spec.no mod fo <> 0 in
        let boundaries =
          if ragged then [ Op_common.Switch; Op_common.Pad_light ] else [ Op_common.Switch ]
        in
        (* Reorders need explicit candidates (Sec. 4.3.1): the three orders
           that differ in data reuse, rather than the full permutation set. *)
        let orders =
          [ (Ro_outer, Taps_then_ni); (Co_outer, Taps_then_ni); (Ro_outer, Ni_then_taps) ]
        in
        List.concat_map
          (fun boundary ->
            List.concat_map
              (fun (pixel_order, reduce_order) ->
                List.concat_map
                  (fun w_oi ->
                    List.map
                      (fun vec ->
                        { tile; fi; fo; pixel_order; reduce_order; w_oi; vec; boundary; prefetch })
                      [ G.Vec_m; G.Vec_n ])
                  [ true; false ])
              orders)
          boundaries)
      combos
  in
  List.filter (spm_fits spec) strategies

(* ------------------------------------------------------------------ *)
(* Numeric harness: pack logical tensors into the operator's layouts. *)

(* Row-slab transfers read up to (kc-1)*b elements past the last channel
   plane (tail halo of the final slab, discarded by the write-back); the
   main-memory image is tail-padded accordingly, as a real allocation would
   be. *)
let input_elems (spec : Spec.t) =
  imul (imul spec.ni (Spec.ri spec)) (imul (Spec.ci spec) spec.b)
  + imul (spec.kc - 1) spec.b

let pack_input (spec : Spec.t) input =
  let ri = Spec.ri spec and ci = Spec.ci spec in
  let arr = Array.make (input_elems spec) 0.0 in
  for cni = 0 to spec.ni - 1 do
    for r = 0 to ri - 1 do
      for c = 0 to ci - 1 do
        for cb = 0 to spec.b - 1 do
          arr.((((((cni * ri) + r) * ci) + c) * spec.b) + cb)
          <- Swtensor.Tensor.get input [| cb; cni; r; c |]
        done
      done
    done
  done;
  arr

let pack_weight (spec : Spec.t) ~w_oi weight =
  let arr = Array.make (imul (imul spec.no spec.ni) (imul spec.kr spec.kc)) 0.0 in
  for ckr = 0 to spec.kr - 1 do
    for ckc = 0 to spec.kc - 1 do
      let tap = (ckr * spec.kc) + ckc in
      for cno = 0 to spec.no - 1 do
        for cni = 0 to spec.ni - 1 do
          let idx =
            if w_oi then (((tap * spec.no) + cno) * spec.ni) + cni
            else (((tap * spec.ni) + cni) * spec.no) + cno
          in
          arr.(idx) <- Swtensor.Tensor.get weight [| cno; cni; ckr; ckc |]
        done
      done
    done
  done;
  arr

let bindings_for (t : t) s ~input ~weight =
  let spec = t.spec in
  if Swtensor.Tensor.shape input <> Spec.input_shape spec then
    invalid_arg "Conv_implicit: input shape mismatch";
  if Swtensor.Tensor.shape weight <> Spec.weight_shape spec then
    invalid_arg "Conv_implicit: weight shape mismatch";
  [
    ("input", pack_input spec input);
    ("weight", pack_weight spec ~w_oi:s.w_oi weight);
    ("output", Array.make (imul (imul spec.no spec.ro) (imul spec.co spec.b)) 0.0);
  ]

let unpack_output (t : t) bindings =
  let spec = t.spec in
  match List.assoc_opt "output" bindings with
  | None -> invalid_arg "Conv_implicit.unpack_output: no output binding"
  | Some arr ->
    Swtensor.Tensor.of_fn (Spec.output_shape spec) (fun idx ->
        match idx with
        | [| cb; cno; r; c |] -> arr.((((((cno * spec.ro) + r) * spec.co) + c) * spec.b) + cb)
        | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Lowering. *)

open Swatop.Ir

let tag_w = 0
let tag_di = 1
let tag_do = 2

let build (t : t) s =
  let ({ b; ni; no; ro; co; kr; kc; _ } : Spec.t) = t.spec in
  let ri = Spec.ri t.spec and ci = Spec.ci t.spec in
  let pad_light = match s.boundary with Op_common.Pad_light -> true | _ -> false in
  let nb_full = n_full t.spec s in
  let bufs =
    [
      main_buf ~name:"input" ~elems:(input_elems t.spec);
      main_buf ~name:"weight" ~elems:(imul (imul no ni) (imul kr kc));
      main_buf ~name:"output" ~elems:(imul (imul no ro) (imul co b));
      spm_buf ~name:"w_tile" ~cg_elems:(imul s.fo s.fi)
        ~cpe_elems:(Op_common.cpe_grid_elems s.fo s.fi);
      spm_buf ~name:"di_tile" ~cg_elems:(imul s.fi nb_full)
        ~cpe_elems:(Op_common.cpe_grid_elems s.fi nb_full);
      spm_buf ~name:"do_tile" ~cg_elems:(imul s.fo nb_full)
        ~cpe_elems:(Op_common.cpe_grid_elems s.fo nb_full);
    ]
  in
  let vro = var "ro" and vcob = var "cob" and vkr = var "kr" and vkc = var "kc" in
  let vnib = var "nib" and vnob = var "nob" in
  let tfi = Swatop.Scheduler.clipped ~extent:ni ~step:s.fi vnib in
  let tfo = Swatop.Scheduler.clipped ~extent:no ~step:s.fo vnob in
  (* GEMM N extent, D_i source region and D_o write-back depend on the tile
     shape. *)
  let tn, di_region, puts_do =
    match s.tile with
    | Col_tile fc ->
      let tfc = Swatop.Scheduler.clipped ~extent:co ~step:fc vcob in
      let tn = tfc * int b in
      let row0 = vro + vkr and col0 = vcob + vkc in
      let di_region =
        {
          offset = ((((vnib * int ri) + row0) * int ci) + col0) * int b;
          rows = tfi;
          row_elems = tn;
          row_stride = int (imul ri (imul ci b));
        }
      in
      let puts do_ld =
        [
          Dma
            {
              dir = Put;
              main = "output";
              spm = "do_tile";
              tag = int tag_do;
              region =
                {
                  offset = ((((vnob * int ro) + vro) * int co) + vcob) * int b;
                  rows = tfo;
                  row_elems = tn;
                  row_stride = int (imul ro (imul co b));
                };
              spm_offset = int 0;
              spm_ld = do_ld;
              partition = P_grid;
              per_cpe = None;
            };
        ]
      in
      (tn, di_region, puts)
    | Row_slab fr ->
      let tfr = Swatop.Scheduler.clipped ~extent:ro ~step:fr vro in
      let tn = tfr * int (imul ci b) in
      (* One contiguous slab per input channel: tfr full-width input rows
         starting at row (ro + kr), shifted kc columns. The 2*b halo
         columns per row are fetched, multiplied and discarded. *)
      let di_region =
        {
          offset = ((((vnib * int ri) + (vro + vkr)) * int ci) + vkc) * int b;
          rows = tfi;
          row_elems = tn;
          row_stride = int (imul ri (imul ci b));
        }
      in
      (* Valid columns go back row by row; unrolled so all of do_tile's DMAs
         sit at one loop level for the prefetch pass. *)
      let puts do_ld =
        List.init fr (fun dr ->
            If
              {
                cond = Cmp (Lt, vro + int dr, int ro);
                then_ =
                  Dma
                    {
                      dir = Put;
                      main = "output";
                      spm = "do_tile";
                      tag = int tag_do;
                      region =
                        {
                          offset = ((vnob * int ro) + vro + int dr) * int (imul co b);
                          rows = tfo;
                          row_elems = int (imul co b);
                          row_stride = int (imul ro (imul co b));
                        };
                      spm_offset = int (imul dr (imul ci b));
                      spm_ld = do_ld;
                      partition = P_grid;
                      per_cpe = None;
                    };
                else_ = Seq [];
              })
      in
      (tn, di_region, puts)
  in
  (* GEMM shapes: full under Pad_light, ragged under Switch. *)
  let gm, gn, gk = if pad_light then (int s.fo, int nb_full, int s.fi) else (tfo, tn, tfi) in
  let di_ld = if pad_light then int nb_full else tn in
  let do_ld = di_ld in
  let w_ld_oi = if pad_light then int s.fi else tfi in
  let w_ld_io = if pad_light then int s.fo else tfo in
  (* Weight tile DMA: layout [kr][kc][no][ni] (w_oi) gives a row-major
     (no, ni) SPM image; [kr][kc][ni][no] gives a column-major one. *)
  let get_w =
    let tap = (vkr * int kc) + vkc in
    let region =
      if s.w_oi then
        {
          offset = (((tap * int no) + vnob) * int ni) + vnib;
          rows = tfo;
          row_elems = tfi;
          row_stride = int ni;
        }
      else
        {
          offset = (((tap * int ni) + vnib) * int no) + vnob;
          rows = tfi;
          row_elems = tfo;
          row_stride = int no;
        }
    in
    Dma
      {
        dir = Get;
        main = "weight";
        spm = "w_tile";
        tag = int tag_w;
        region;
        spm_offset = int 0;
        spm_ld = (if s.w_oi then w_ld_oi else w_ld_io);
        partition = P_grid;
        per_cpe = None;
      }
  in
  let get_di =
    Dma
      {
        dir = Get;
        main = "input";
        spm = "di_tile";
        tag = int tag_di;
        region = di_region;
        spm_offset = int 0;
        spm_ld = di_ld;
        partition = P_grid;
        per_cpe = None;
      }
  in
  let pad_w =
    If
      {
        cond = Or (Cmp (Lt, tfo, int s.fo), Cmp (Lt, tfi, int s.fi));
        then_ = Memset_spm { buf = "w_tile"; offset = int 0; elems = int (imul s.fo s.fi) };
        else_ = Seq [];
      }
  in
  let pad_di =
    If
      {
        cond = Or (Cmp (Lt, tfi, int s.fi), Cmp (Lt, tn, int nb_full));
        then_ = Memset_spm { buf = "di_tile"; offset = int 0; elems = int (imul s.fi nb_full) };
        else_ = Seq [];
      }
  in
  let variant =
    { G.a_major = (if s.w_oi then G.Row_major else G.Col_major); b_major = G.Row_major; vec = s.vec }
  in
  let gemm =
    Gemm
      {
        variant;
        m = gm;
        n = gn;
        k = gk;
        a = { g_buf = "w_tile"; g_offset = int 0; g_ld = (if s.w_oi then w_ld_oi else w_ld_io) };
        b = { g_buf = "di_tile"; g_offset = int 0; g_ld = di_ld };
        c = { g_buf = "do_tile"; g_offset = int 0; g_ld = do_ld };
      }
  in
  let inner_body =
    seq
      ((if pad_light then [ pad_w; pad_di ] else [])
      @ [ get_w; get_di; Dma_wait { tag = int tag_w }; Dma_wait { tag = int tag_di }; gemm ])
  in
  let reduce_levels =
    let lkr = Swatop.Scheduler.level ~iter:"kr" ~extent:kr ~step:1
    and lkc = Swatop.Scheduler.level ~iter:"kc" ~extent:kc ~step:1
    and lni = Swatop.Scheduler.level ~iter:"nib" ~extent:ni ~step:s.fi in
    match s.reduce_order with
    | Taps_then_ni -> [ lkr; lkc; lni ]
    | Ni_then_taps -> [ lni; lkr; lkc ]
  in
  let reduction = Swatop.Scheduler.nest ~levels:reduce_levels inner_body in
  let memset_do =
    Memset_spm
      {
        buf = "do_tile";
        offset = int 0;
        elems = (if pad_light then int (imul s.fo nb_full) else tfo * tn);
      }
  in
  (* Drain the fire-and-forget output puts on the last tile, inside the nest
     so prefetch retags the wait in step with them (in-order retirement makes
     the final wait drain every earlier put too). *)
  let drain_do =
    let last_of v extent step = Cmp (Le, int extent, v + int step) in
    let last =
      match s.tile with
      | Col_tile fc -> And (And (last_of vro ro 1, last_of vcob co fc), last_of vnob no s.fo)
      | Row_slab fr -> And (And (last_of vro ro fr, last_of vcob co co), last_of vnob no s.fo)
    in
    If { cond = last; then_ = Dma_wait { tag = int tag_do }; else_ = Seq [] }
  in
  let tile_body = seq ([ memset_do; reduction ] @ puts_do do_ld @ [ drain_do ]) in
  let outer_levels =
    let lno = Swatop.Scheduler.level ~iter:"nob" ~extent:no ~step:s.fo in
    match s.tile with
    | Col_tile fc ->
      let lro = Swatop.Scheduler.level ~iter:"ro" ~extent:ro ~step:1
      and lco = Swatop.Scheduler.level ~iter:"cob" ~extent:co ~step:fc in
      (match s.pixel_order with
      | Ro_outer -> [ lro; lco; lno ]
      | Co_outer -> [ lco; lro; lno ])
    | Row_slab fr ->
      (* Whole rows: the column loop is degenerate but kept so iterator
         scoping stays uniform across tile shapes. *)
      let lro = Swatop.Scheduler.level ~iter:"ro" ~extent:ro ~step:fr
      and lco = Swatop.Scheduler.level ~iter:"cob" ~extent:co ~step:co in
      [ lro; lco; lno ]
  in
  let prefetch_at =
    if s.prefetch then Some (List.hd outer_levels).Swatop.Scheduler.lv_iter else None
  in
  let body = Swatop.Scheduler.nest ?prefetch_at ~levels:outer_levels tile_body in
  program ~name:"conv_implicit" ~bufs body

(* ------------------------------------------------------------------ *)
(* Tuning entry point. *)

let tune ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model t =
  let s = t.spec in
  Op_common.cached_model_tune ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~op:"conv_implicit"
    ~dims:[ s.Spec.b; s.ni; s.no; s.ro; s.co; s.kr; s.kc; s.stride; s.pad ]
    ~gemm_model ~describe ~candidates:(space t) ~build:(build t) ()
