type boundary = Switch | Pad_light | Pad_full

let boundary_to_string = function
  | Switch -> "switch"
  | Pad_light -> "pad-light"
  | Pad_full -> "pad-full"

let boundary_of_index = function
  | 0 -> Switch
  | 1 -> Pad_light
  | 2 -> Pad_full
  | i -> invalid_arg (Printf.sprintf "Op_common.boundary_of_index: %d" i)

let trim_candidates n l =
  let len = List.length l in
  if len <= n then l
  else begin
    let arr = Array.of_list l in
    let picks =
      List.init n (fun i -> arr.(i * (len - 1) / (max 1 (n - 1))))
    in
    List.sort_uniq compare picks
  end

let cpe_grid_elems rows cols =
  Prelude.Ints.ceil_div rows Sw26010.Config.cpe_rows
  * Prelude.Ints.ceil_div cols Sw26010.Config.cpe_cols

let spm_budget_ok ~prefetch cpe_elems =
  let requests =
    List.mapi
      (fun i elems ->
        Sw26010.Spm.request ~double_buffered:prefetch
          ~name:(string_of_int i)
          ~bytes:(elems * Sw26010.Config.elem_bytes) ())
      cpe_elems
  in
  Sw26010.Spm.fits requests

let pack_input_bchw (spec : Swtensor.Conv_spec.t) input =
  let ri = Swtensor.Conv_spec.ri spec and ci = Swtensor.Conv_spec.ci spec in
  let arr = Array.make (spec.b * spec.ni * ri * ci) 0.0 in
  for cb = 0 to spec.b - 1 do
    for cni = 0 to spec.ni - 1 do
      for r = 0 to ri - 1 do
        for c = 0 to ci - 1 do
          arr.((((((cb * spec.ni) + cni) * ri) + r) * ci) + c)
          <- Swtensor.Tensor.get input [| cb; cni; r; c |]
        done
      done
    done
  done;
  arr

open Swatop.Ir

let imul = Stdlib.( * )

type gemm_nest = {
  g_fm : int;
  g_fn : int;
  g_fk : int;
  g_vec : Primitives.Spm_gemm.vec_dim;
  g_n_outer : bool;
  g_pad_light : bool;
  g_prefetch : bool;
  g_prefix : string;
  g_tag_base : int;
}

let gemm_tile_bytes ~fm ~fn ~fk =
  imul Sw26010.Config.elem_bytes
    (Stdlib.( + ) (Stdlib.( + ) (cpe_grid_elems fm fk) (cpe_grid_elems fk fn)) (cpe_grid_elems fm fn))

let gemm_tile_buffers g =
  [
    spm_buf
      ~name:(g.g_prefix ^ "a_tile")
      ~cg_elems:(imul g.g_fm g.g_fk) ~cpe_elems:(cpe_grid_elems g.g_fm g.g_fk);
    spm_buf
      ~name:(g.g_prefix ^ "b_tile")
      ~cg_elems:(imul g.g_fk g.g_fn) ~cpe_elems:(cpe_grid_elems g.g_fk g.g_fn);
    spm_buf
      ~name:(g.g_prefix ^ "c_tile")
      ~cg_elems:(imul g.g_fm g.g_fn) ~cpe_elems:(cpe_grid_elems g.g_fm g.g_fn);
  ]

let gemm_nest ?a_row_stride ?b_row_stride ?c_row_stride g ~a_main ~b_main ~c_main ~a_base
    ~b_base ~c_base ~m ~n ~k =
  let a_stride = Option.value a_row_stride ~default:k in
  let b_stride = Option.value b_row_stride ~default:n in
  let c_stride = Option.value c_row_stride ~default:n in
  let fm, fn, fk = (g.g_fm, g.g_fn, g.g_fk) in
  let pad_light = g.g_pad_light in
  let name suffix = g.g_prefix ^ suffix in
  let im = var (name "im") and in_ = var (name "in") and ik = var (name "ik") in
  let tm = Swatop.Scheduler.clipped ~extent:m ~step:fm im
  and tn = Swatop.Scheduler.clipped ~extent:n ~step:fn in_
  and tk = Swatop.Scheduler.clipped ~extent:k ~step:fk ik in
  let gm, gn, gk = if pad_light then (int fm, int fn, int fk) else (tm, tn, tk) in
  let a_ld = if pad_light then int fk else tk in
  let bc_ld = if pad_light then int fn else tn in
  let tag_a = imul 2 g.g_tag_base
  and tag_b = Stdlib.( + ) (imul 2 g.g_tag_base) 2 in
  let tag_c = Stdlib.( + ) (imul 2 g.g_tag_base) 4 in
  let get_a =
    Dma
      {
        dir = Get;
        main = a_main;
        spm = name "a_tile";
        tag = int tag_a;
        region =
          { offset = a_base + (im * int a_stride) + ik; rows = tm; row_elems = tk;
            row_stride = int a_stride };
        spm_offset = int 0;
        spm_ld = a_ld;
        partition = P_grid;
        per_cpe = None;
      }
  in
  let get_b =
    Dma
      {
        dir = Get;
        main = b_main;
        spm = name "b_tile";
        tag = int tag_b;
        region =
          { offset = b_base + (ik * int b_stride) + in_; rows = tk; row_elems = tn;
            row_stride = int b_stride };
        spm_offset = int 0;
        spm_ld = bc_ld;
        partition = P_grid;
        per_cpe = None;
      }
  in
  let ragged_a = Or (Cmp (Lt, tm, int fm), Cmp (Lt, tk, int fk)) in
  let ragged_b = Or (Cmp (Lt, tk, int fk), Cmp (Lt, tn, int fn)) in
  let pad cond buf elems =
    If { cond; then_ = Memset_spm { buf; offset = int 0; elems = int elems }; else_ = Seq [] }
  in
  let variant =
    {
      Primitives.Spm_gemm.a_major = Primitives.Spm_gemm.Row_major;
      b_major = Primitives.Spm_gemm.Row_major;
      vec = g.g_vec;
    }
  in
  let gemm =
    Gemm
      {
        variant;
        m = gm;
        n = gn;
        k = gk;
        a = { g_buf = name "a_tile"; g_offset = int 0; g_ld = a_ld };
        b = { g_buf = name "b_tile"; g_offset = int 0; g_ld = bc_ld };
        c = { g_buf = name "c_tile"; g_offset = int 0; g_ld = bc_ld };
      }
  in
  let ik_body =
    seq
      ((if pad_light then
          [ pad ragged_a (name "a_tile") (imul fm fk); pad ragged_b (name "b_tile") (imul fk fn) ]
        else [])
      @ [ get_a; get_b; Dma_wait { tag = int tag_a }; Dma_wait { tag = int tag_b }; gemm ])
  in
  let ik_loop = for_ ~iter:(name "ik") ~lo:(int 0) ~hi:(int k) ~step:(int fk) ik_body in
  let memset_c =
    Memset_spm
      {
        buf = name "c_tile";
        offset = int 0;
        elems = (if pad_light then int (imul fm fn) else tm * tn);
      }
  in
  let put_c =
    Dma
      {
        dir = Put;
        main = c_main;
        spm = name "c_tile";
        tag = int tag_c;
        region =
          { offset = c_base + (im * int c_stride) + in_; rows = tm; row_elems = tn;
            row_stride = int c_stride };
        spm_offset = int 0;
        spm_ld = bc_ld;
        partition = P_grid;
        per_cpe = None;
      }
  in
  (* Drain the fire-and-forget C put on the last tile only, inside the nest
     so the prefetch pass retags the wait in step with put_c. The engine
     retires in issue order, so waiting on the final put retires every
     earlier one too — codegen can never truncate stores (SWA035). *)
  let drain_c =
    let last = And (Cmp (Le, int m, im + int fm), Cmp (Le, int n, in_ + int fn)) in
    If { cond = last; then_ = Dma_wait { tag = int tag_c }; else_ = Seq [] }
  in
  let tile_body = seq [ memset_c; ik_loop; put_c; drain_c ] in
  let levels =
    let lm = Swatop.Scheduler.level ~iter:(name "im") ~extent:m ~step:fm
    and ln = Swatop.Scheduler.level ~iter:(name "in") ~extent:n ~step:fn in
    if g.g_n_outer then [ ln; lm ] else [ lm; ln ]
  in
  let prefetch_at =
    if g.g_prefetch then Some (List.hd levels).Swatop.Scheduler.lv_iter else None
  in
  Swatop.Scheduler.nest ?prefetch_at ~levels tile_body

let padded_copy ~iter ~tag ~src ~dst ~rows ~cols ~dst_ld ~stage ~chunk_rows =
  if cols > dst_ld then invalid_arg "Op_common.padded_copy: cols > dst_ld";
  let rcnt = emin (int chunk_rows) (int rows - var iter) in
  let body =
    seq
      [
        Memset_spm { buf = stage; offset = int 0; elems = int chunk_rows * int dst_ld };
        Dma
          {
            dir = Get;
            main = src;
            spm = stage;
            tag = int tag;
            region =
              { offset = var iter * int cols; rows = rcnt; row_elems = int cols; row_stride = int cols };
            spm_offset = int 0;
            spm_ld = int dst_ld;
            partition = P_rows;
            per_cpe = None;
          };
        Dma_wait { tag = int tag };
        Dma
          {
            dir = Put;
            main = dst;
            spm = stage;
            tag = int tag;
            region =
              {
                offset = var iter * int dst_ld;
                rows = rcnt;
                row_elems = int dst_ld;
                row_stride = int dst_ld;
              };
            spm_offset = int 0;
            spm_ld = int dst_ld;
            partition = P_rows;
            per_cpe = None;
          };
        Dma_wait { tag = int tag };
      ]
  in
  for_ ~iter ~lo:(int 0) ~hi:(int rows) ~step:(int chunk_rows) body

let cropped_copy ~iter ~tag ~src ~src_ld ~dst ~rows ~cols ~stage ~chunk_rows =
  if cols > src_ld then invalid_arg "Op_common.cropped_copy: cols > src_ld";
  let rcnt = emin (int chunk_rows) (int rows - var iter) in
  let body =
    seq
      [
        Dma
          {
            dir = Get;
            main = src;
            spm = stage;
            tag = int tag;
            region =
              {
                offset = var iter * int src_ld;
                rows = rcnt;
                row_elems = int cols;
                row_stride = int src_ld;
              };
            spm_offset = int 0;
            spm_ld = int cols;
            partition = P_rows;
            per_cpe = None;
          };
        Dma_wait { tag = int tag };
        Dma
          {
            dir = Put;
            main = dst;
            spm = stage;
            tag = int tag;
            region =
              { offset = var iter * int cols; rows = rcnt; row_elems = int cols; row_stride = int cols };
            spm_offset = int 0;
            spm_ld = int cols;
            partition = P_rows;
            per_cpe = None;
          };
        Dma_wait { tag = int tag };
      ]
  in
  for_ ~iter ~lo:(int 0) ~hi:(int rows) ~step:(int chunk_rows) body

(* ------------------------------------------------------------------ *)
(* Cached tuning: every op entry point funnels through here so that warm
   schedule caches short-circuit re-tuning uniformly. *)

let cache_outcome ~space_size ~jobs entry candidates build =
  let wall0 = Prelude.Clock.wall () and cpu0 = Sys.time () in
  let c = List.nth candidates entry.Swatop.Schedule_cache.index in
  let p = Swatop.Tuner.prepare (build c) in
  let wall1 = Prelude.Clock.wall () in
  {
    Swatop.Tuner.best = c;
    best_index = entry.Swatop.Schedule_cache.index;
    best_program = p;
    best_seconds = entry.Swatop.Schedule_cache.seconds;
    report =
      {
        space_size;
        evaluated = 0;
        pruned = 0;
        verify_rejected = [];
        scored_failed = [];
        cache_hit = true;
        jobs;
        wall_seconds = wall1 -. wall0;
        cpu_seconds = Sys.time () -. cpu0;
        score_seconds = 0.0;
        measure_seconds = 0.0;
        (* The winner is already known: no simulated-machine time at all. *)
        hardware_seconds = 0.0;
        measured = 0;
        batches = 0;
        model_rmse = 0.0;
        predicted_seconds = 0.0;
      };
  }

let search_mode = function
  | Swatop.Tuner.Exhaustive -> "exhaustive"
  | Swatop.Tuner.Guided _ -> "guided"

let cached_model_tune ?cache ?checkpoint ?top_k ?prune ?jobs
    ?(search = Swatop.Tuner.Exhaustive) ~op ~dims ~gemm_model ~describe ~candidates ~build () =
  let mode = search_mode search in
  (* A checkpoint base path expands to a per-key context: the key routes
     concurrent op tunes to distinct files, the fingerprint guards against
     resuming onto a changed schedule space. (The guided tuner ignores the
     context — its convergence is batch-grained, not chunk-grained.) *)
  let ckpt () =
    Option.map
      (fun base ->
        let key = Swatop.Schedule_cache.key ~search:mode ~op ~dims () in
        {
          Swatop.Tune_checkpoint.cx_path = Swatop.Tune_checkpoint.path_for ~base ~key;
          cx_key = key;
          cx_fingerprint = Swatop.Schedule_cache.fingerprint (List.map describe candidates);
        })
      checkpoint
  in
  (* Warm-start transfer: a guided tune with no explicit warm weights picks
     up its operator family's model from the cache — tuned on other
     workload dims, but the feature space is shared, so the first batch is
     already ranked instead of blind. *)
  let search =
    match (search, cache) with
    | Swatop.Tuner.Guided cfg, Some cache when Option.is_none cfg.Swatop.Tuner.gc_warm -> (
      match
        Swatop.Schedule_cache.find_model cache ~family:op
          ~version:Swatop.Learned_model.format_version
      with
      | Some payload -> (
        match Swatop.Learned_model.weights_of_string payload with
        | Some w -> Swatop.Tuner.Guided { cfg with gc_warm = Some w }
        | None -> search)
      | None -> search)
    | _ -> search
  in
  let run () =
    let o, weights =
      Swatop.Tuner.tune ?top_k ?prune ?jobs ?checkpoint:(ckpt ()) ~search ~gemm_model
        ~candidates ~build ()
    in
    (match (cache, weights) with
    | Some cache, Some w ->
      Swatop.Schedule_cache.remember_model cache ~family:op
        ~version:Swatop.Learned_model.format_version
        (Swatop.Learned_model.weights_to_string w)
    | _ -> ());
    o
  in
  match cache with
  | None -> run ()
  | Some cache -> (
    let candidates = match candidates with [] -> invalid_arg "Tuner: empty schedule space" | l -> l in
    let key = Swatop.Schedule_cache.key ~search:mode ~op ~dims () in
    let fingerprint = Swatop.Schedule_cache.fingerprint (List.map describe candidates) in
    let space_size = List.length candidates in
    match Swatop.Schedule_cache.find cache ~key ~fingerprint ~space_size with
    | Some entry ->
      cache_outcome ~space_size
        ~jobs:(match jobs with Some j -> max 1 j | None -> Prelude.Parallel.jobs ())
        entry candidates build
    | None ->
      let o = run () in
      Swatop.Schedule_cache.remember cache ~key
        {
          Swatop.Schedule_cache.fingerprint;
          space_size;
          index = o.Swatop.Tuner.best_index;
          seconds = o.Swatop.Tuner.best_seconds;
        };
      o)
