(** Per-layer algorithm dispatch — the operator-library entry point.

    swATOP "can be used as an offline compiler by pre-generating
    near-optimal executable code" (Sec. 4): a framework hands over one
    convolution problem, every applicable tensorized algorithm is tuned,
    and the fastest wins. The paper's own dispatch rule — explicit GEMM
    only where the other two cannot be applied — emerges from the timing
    comparison rather than being hard-coded. *)

type algo = Implicit | Winograd | Explicit

val algo_name : algo -> string

type choice = {
  c_algo : algo;
  c_desc : string;  (** the winning schedule, rendered *)
  c_seconds : float;  (** simulated execution time of the winner *)
  c_program : Swatop.Ir.program;  (** lowered and optimized, ready for codegen *)
  c_space : int;  (** schedule-space size the tuner searched *)
  c_bindings_for :
    input:Swtensor.Tensor.t -> weight:Swtensor.Tensor.t -> (string * float array) list;
      (** numeric backing arrays for the winning program, packed to the
          winner's layouts (captures the winning strategy) *)
  c_unpack : (string * float array) list -> Swtensor.Tensor.t;
      (** recover the logical [(b, no, ro, co)] output tensor from the
          bindings after a numeric run *)
}

val applicable : algo -> Swtensor.Conv_spec.t -> bool
(** [Explicit] applies to every valid [Conv_spec] — it is the guaranteed
    fallback (the paper's rule: explicit GEMM where the tensorized
    operators cannot be applied). *)

val input_buffer : algo -> string
(** Name of the [Main] buffer a numeric run reads the packed input from. *)

val output_buffer : algo -> string
(** Name of the [Main] buffer a numeric run leaves the packed output in. *)

val tune :
  ?cache:Swatop.Schedule_cache.t ->
  ?checkpoint:string ->
  ?top_k:int ->
  ?prune:bool ->
  ?jobs:int ->
  ?search:Swatop.Tuner.search ->
  gemm_model:Swatop.Gemm_cost.t ->
  algo ->
  Swtensor.Conv_spec.t ->
  choice option
(** Tune one algorithm; [None] when it does not apply to the problem. With
    [?cache], warm entries short-circuit re-tuning; [?checkpoint] is the
    base path for interruption-safe partial results (see
    {!Op_common.cached_model_tune}). *)

val best :
  ?cache:Swatop.Schedule_cache.t ->
  ?checkpoint:string ->
  ?top_k:int ->
  ?prune:bool ->
  ?jobs:int ->
  ?search:Swatop.Tuner.search ->
  gemm_model:Swatop.Gemm_cost.t ->
  Swtensor.Conv_spec.t ->
  choice
(** Tune all applicable algorithms and return the fastest. Since explicit
    GEMM applies everywhere, this succeeds for every valid [Conv_spec];
    {!Prelude.Swatop_error.Error} surfaces only when every algorithm's
    tuner crashed (see {!all}). *)

val best_opt :
  ?cache:Swatop.Schedule_cache.t ->
  ?checkpoint:string ->
  ?top_k:int ->
  ?prune:bool ->
  ?jobs:int ->
  ?search:Swatop.Tuner.search ->
  gemm_model:Swatop.Gemm_cost.t ->
  Swtensor.Conv_spec.t ->
  choice option
(** Like {!best} but [None] instead of raising when no algorithm applies. *)

val ranked :
  ?cache:Swatop.Schedule_cache.t ->
  ?checkpoint:string ->
  ?top_k:int ->
  ?prune:bool ->
  ?jobs:int ->
  ?search:Swatop.Tuner.search ->
  gemm_model:Swatop.Gemm_cost.t ->
  Swtensor.Conv_spec.t ->
  choice list
(** The degradation chain: every applicable algorithm that tuned
    successfully, fastest first, with explicit GEMM pinned last as the
    terminal fallback. Execution-time recovery walks this list in order.
    Raises {!Prelude.Swatop_error.Error} only when algorithms were
    applicable but every one of them failed to tune. *)

val all :
  ?cache:Swatop.Schedule_cache.t ->
  ?checkpoint:string ->
  ?top_k:int ->
  ?prune:bool ->
  ?jobs:int ->
  ?search:Swatop.Tuner.search ->
  gemm_model:Swatop.Gemm_cost.t ->
  Swtensor.Conv_spec.t ->
  (algo * choice option) list
(** Every algorithm's outcome, in [Implicit; Winograd; Explicit] order. An
    algorithm whose tuner {e raised} is reported as [None] exactly like an
    inapplicable one, after a one-line warning on stderr — one crashing
    algorithm never takes down the dispatch. *)
