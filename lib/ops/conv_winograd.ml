module G = Primitives.Spm_gemm
module Spec = Swtensor.Conv_spec
module W = Swtensor.Winograd_ref

type strategy = {
  ti : int;
  tr : int;
  t_o : int;
  fm : int;
  fn : int;
  fk : int;
  vec : G.vec_dim;
  boundary : Op_common.boundary;
  prefetch : bool;
  gemm_prefetch : bool;
  fuse_batch : bool;
}

type t = { spec : Spec.t }

let applicable (spec : Spec.t) =
  W.applicable spec && spec.pad = 0 && spec.ro mod 2 = 0 && spec.co mod 2 = 0

let problem spec =
  if not (applicable spec) then
    invalid_arg "Conv_winograd.problem: requires stride=1, pad=0, 3x3, even output";
  { spec }

let flops t = Spec.flops t.spec

let imul = Stdlib.( * )

let tiles_per_image t = imul (t.spec.ro / 2) (t.spec.co / 2)

let gemm_flops t =
  let btiles = imul t.spec.b (tiles_per_image t) in
  2.0 *. 16.0 *. float_of_int t.spec.no *. float_of_int t.spec.ni *. float_of_int btiles

let describe s =
  Printf.sprintf "winograd[ti=%d tr=%d to=%d fm=%d fn=%d fk=%d vec=%s boundary=%s%s]" s.ti s.tr
    s.t_o s.fm s.fn s.fk
    (match s.vec with G.Vec_m -> "M" | G.Vec_n -> "N")
    (Op_common.boundary_to_string s.boundary)
    (if s.prefetch then "" else " no-prefetch")

(* ------------------------------------------------------------------ *)
(* Schedule space. *)

let cpe_of cg = Prelude.Ints.ceil_div cg Sw26010.Config.cpes_per_cg

let spm_fits (spec : Spec.t) s =
  let ci = Spec.ci spec in
  let tcimg = spec.co / 2 in
  (* All streaming buffers end up double-buffered under prefetch. *)
  Op_common.spm_budget_ok ~prefetch:(s.prefetch || s.gemm_prefetch)
    [
      cpe_of (imul (imul s.t_o spec.ni) 9);
      cpe_of (imul 16 (imul s.t_o spec.ni));
      cpe_of (imul s.ti (imul (Stdlib.( + ) (imul 2 s.tr) 2) ci));
      cpe_of (imul 16 (imul s.ti (imul s.tr tcimg)));
      cpe_of (imul 16 (imul s.t_o (imul s.tr tcimg)));
      cpe_of (imul s.t_o (imul (imul 2 s.tr) spec.co));
      Op_common.cpe_grid_elems s.fm s.fk;
      Op_common.cpe_grid_elems s.fk s.fn;
      Op_common.cpe_grid_elems s.fm s.fn;
    ]

let divisor_candidates ?(lo = 1) ?(hi = max_int) n keep =
  Prelude.Ints.divisors n
  |> List.filter (fun d -> d >= lo && d <= hi)
  |> Op_common.trim_candidates keep

let space ?(prefetch = true) t =
  let spec = t.spec in
  let trimg = spec.ro / 2 in
  let btiles = imul spec.b (tiles_per_image t) in
  let tis = divisor_candidates ~lo:(min spec.ni 8) ~hi:64 spec.ni 3 in
  let trs = divisor_candidates ~hi:8 trimg 3 in
  let tos = divisor_candidates ~lo:(min spec.no 4) ~hi:32 spec.no 2 in
  let fms = divisor_candidates ~lo:(min spec.no 16) ~hi:256 spec.no 3 in
  let fks = divisor_candidates ~lo:(min spec.ni 16) ~hi:256 spec.ni 3 in
  let fns =
    List.filter (fun f -> f <= btiles) [ 128; 256; 512; 1024 ] |> fun l ->
    if l = [] then [ btiles ] else l
  in
  let combos =
    Prelude.Lists.cartesian3 (Prelude.Lists.cartesian3 tis trs tos)
      (Prelude.Lists.cartesian3 fms fns fks)
      [ G.Vec_m; G.Vec_n ]
  in
  let strategies =
    List.concat_map
      (fun ((ti, tr, t_o), (fm, fn, fk), vec) ->
        let ragged = spec.no mod fm <> 0 || btiles mod fn <> 0 || spec.ni mod fk <> 0 in
        let boundaries =
          if ragged then [ Op_common.Switch; Op_common.Pad_light ] else [ Op_common.Switch ]
        in
        List.map
          (fun boundary ->
            {
              ti;
              tr;
              t_o;
              fm;
              fn;
              fk;
              vec;
              boundary;
              prefetch;
              gemm_prefetch = false;
              fuse_batch = true;
            })
          boundaries)
      combos
  in
  List.filter (spm_fits spec) strategies

(* ------------------------------------------------------------------ *)
(* Numeric harness (BCHW packing). *)

let bindings_for (t : t) s ~input ~weight =
  ignore s;
  let spec = t.spec in
  if Swtensor.Tensor.shape input <> Spec.input_shape spec then
    invalid_arg "Conv_winograd: input shape mismatch";
  if Swtensor.Tensor.shape weight <> Spec.weight_shape spec then
    invalid_arg "Conv_winograd: weight shape mismatch";
  let btiles = imul spec.b (tiles_per_image t) in
  [
    ("input", Op_common.pack_input_bchw spec input);
    ("weight", Array.copy (Swtensor.Tensor.data weight));
    ("u_panel", Array.make (imul 16 (imul spec.no spec.ni)) 0.0);
    ("v_panel", Array.make (imul 16 (imul spec.ni btiles)) 0.0);
    ("m_panel", Array.make (imul 16 (imul spec.no btiles)) 0.0);
    ("output", Array.make (imul (imul spec.b spec.no) (imul spec.ro spec.co)) 0.0);
  ]

let unpack_output (t : t) bindings =
  let spec = t.spec in
  match List.assoc_opt "output" bindings with
  | None -> invalid_arg "Conv_winograd.unpack_output: no output binding"
  | Some arr ->
    Swtensor.Tensor.of_fn (Spec.output_shape spec) (fun idx ->
        match idx with
        | [| cb; cno; r; c |] ->
          arr.((((((cb * spec.no) + cno) * spec.ro) + r) * spec.co) + c)
        | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Lowering. *)

open Swatop.Ir

let idiv = Stdlib.( / )

let tag_wf = 20
let tag_uf = 21
let tag_wi = 22
let tag_vi = 23
let tag_mo = 24
let tag_out = 25

let unrolled_16 f = seq (List.init 16 f)

let build (t : t) s =
  let ({ b; ni; no; ro; co; _ } : Spec.t) = t.spec in
  let ri = Spec.ri t.spec and ci = Spec.ci t.spec in
  let trimg = idiv ro 2 and tcimg = idiv co 2 in
  let tiles = imul trimg tcimg in
  let btiles = imul b tiles in
  let bufs =
    [
      main_buf ~name:"input" ~elems:(imul (imul b ni) (imul ri ci));
      main_buf ~name:"weight" ~elems:(imul (imul no ni) 9);
      main_buf ~name:"u_panel" ~elems:(imul 16 (imul no ni));
      main_buf ~name:"v_panel" ~elems:(imul 16 (imul ni btiles));
      main_buf ~name:"m_panel" ~elems:(imul 16 (imul no btiles));
      main_buf ~name:"output" ~elems:(imul (imul b no) (imul ro co));
      spm_buf ~name:"wf_raw" ~cg_elems:(imul (imul s.t_o ni) 9)
        ~cpe_elems:(cpe_of (imul (imul s.t_o ni) 9));
      spm_buf ~name:"wf_u" ~cg_elems:(imul 16 (imul s.t_o ni))
        ~cpe_elems:(cpe_of (imul 16 (imul s.t_o ni)));
      spm_buf ~name:"wi_raw"
        ~cg_elems:(imul s.ti (imul (Stdlib.( + ) (imul 2 s.tr) 2) ci))
        ~cpe_elems:(cpe_of (imul s.ti (imul (Stdlib.( + ) (imul 2 s.tr) 2) ci)));
      spm_buf ~name:"wi_v"
        ~cg_elems:(imul 16 (imul s.ti (imul s.tr tcimg)))
        ~cpe_elems:(cpe_of (imul 16 (imul s.ti (imul s.tr tcimg))));
      spm_buf ~name:"wo_m"
        ~cg_elems:(imul 16 (imul s.t_o (imul s.tr tcimg)))
        ~cpe_elems:(cpe_of (imul 16 (imul s.t_o (imul s.tr tcimg))));
      spm_buf ~name:"wo_out"
        ~cg_elems:(imul s.t_o (imul (imul 2 s.tr) co))
        ~cpe_elems:(cpe_of (imul s.t_o (imul (imul 2 s.tr) co)));
    ]
  in
  let g =
    {
      Op_common.g_fm = s.fm;
      g_fn = s.fn;
      g_fk = s.fk;
      g_vec = s.vec;
      g_n_outer = false;
      g_pad_light = (match s.boundary with Op_common.Pad_light -> true | _ -> false);
      g_prefetch = (s.gemm_prefetch && not s.prefetch);
      g_prefix = "g";
      g_tag_base = 0;
    }
  in
  let bufs = bufs @ Op_common.gemm_tile_buffers g in
  (* Phase 1: filter transform. *)
  let phase_filter =
    let vno = var "wf_no" in
    let tfo = Swatop.Scheduler.clipped ~extent:no ~step:s.t_o vno in
    let chans = tfo * int ni in
    let get =
      Dma
        {
          dir = Get;
          main = "weight";
          spm = "wf_raw";
          tag = int tag_wf;
          region =
            {
              offset = vno * int (imul ni 9);
              rows = int 1;
              row_elems = chans * int 9;
              row_stride = int 1;
            };
          spm_offset = int 0;
          spm_ld = chans * int 9;
          partition = P_cols;
          per_cpe = None;
        }
    in
    let transform =
      Transform
        {
          kind = Wino_filter;
          t_src = "wf_raw";
          t_src_offset = int 0;
          t_dst = "wf_u";
          t_dst_offset = int 0;
          t_chans = chans;
          t_tiles_r = int 1;
          t_tiles_c = int 1;
          t_src_ld = int 3;
        }
    in
    let puts =
      unrolled_16 (fun xi ->
          Dma
            {
              dir = Put;
              main = "u_panel";
              spm = "wf_u";
              tag = int tag_uf;
              region =
                {
                  offset = int (imul xi (imul no ni)) + (vno * int ni);
                  rows = int 1;
                  row_elems = chans;
                  row_stride = int 1;
                };
              spm_offset = int xi * chans;
              spm_ld = chans;
              partition = P_cols;
              per_cpe = None;
            })
    in
    for_ ~prefetch:s.prefetch ~iter:"wf_no" ~lo:(int 0) ~hi:(int no) ~step:(int s.t_o)
      (seq [ get; Dma_wait { tag = int tag_wf }; transform; puts; Dma_wait { tag = int tag_uf } ])
  in
  (* Phase 2: input transform. *)
  let phase_input =
    let vb = var "wi_b" and vni = var "wi_ni" and vtr = var "wi_tr" in
    let tfi = Swatop.Scheduler.clipped ~extent:ni ~step:s.ti vni in
    let ttr = Swatop.Scheduler.clipped ~extent:trimg ~step:s.tr vtr in
    let tt = ttr * int tcimg in
    let get =
      Dma
        {
          dir = Get;
          main = "input";
          spm = "wi_raw";
          tag = int tag_wi;
          region =
            {
              offset = (((vb * int ni) + vni) * int (imul ri ci)) + (vtr * int (imul 2 ci));
              rows = tfi;
              row_elems = ((ttr * int 2) + int 2) * int ci;
              row_stride = int (imul ri ci);
            };
          spm_offset = int 0;
          spm_ld = ((ttr * int 2) + int 2) * int ci;
          partition = P_grid;
          per_cpe = None;
        }
    in
    let transform =
      Transform
        {
          kind = Wino_input;
          t_src = "wi_raw";
          t_src_offset = int 0;
          t_dst = "wi_v";
          t_dst_offset = int 0;
          t_chans = tfi;
          t_tiles_r = ttr;
          t_tiles_c = int tcimg;
          t_src_ld = int ci;
        }
    in
    let puts =
      unrolled_16 (fun xi ->
          Dma
            {
              dir = Put;
              main = "v_panel";
              spm = "wi_v";
              tag = int tag_vi;
              region =
                {
                  offset =
                    ((int xi * int ni) + vni) * int btiles
                    + (vb * int tiles) + (vtr * int tcimg);
                  rows = tfi;
                  row_elems = tt;
                  row_stride = int btiles;
                };
              spm_offset = int xi * (tfi * tt);
              spm_ld = tt;
              partition = P_grid;
              per_cpe = None;
            })
    in
    for_ ~prefetch:s.prefetch ~iter:"wi_b" ~lo:(int 0) ~hi:(int b) ~step:(int 1)
      (for_ ~iter:"wi_ni" ~lo:(int 0) ~hi:(int ni) ~step:(int s.ti)
         (for_ ~iter:"wi_tr" ~lo:(int 0) ~hi:(int trimg) ~step:(int s.tr)
            (seq
               [ get; Dma_wait { tag = int tag_wi }; transform; puts;
                 Dma_wait { tag = int tag_vi } ])))
  in
  (* Phase 3: the 16 product GEMMs. Fused, the whole batch forms one GEMM N
     dimension and the xi loop joins the double-buffering pipeline; unfused
     (the manual baseline), every image runs its own 16 GEMMs against
     strided slices of the panels. *)
  let phase_gemm =
    let vxi = var "xg" in
    if s.fuse_batch then
      let nest =
        Op_common.gemm_nest g ~a_main:"u_panel" ~b_main:"v_panel" ~c_main:"m_panel"
          ~a_base:(vxi * int (imul no ni))
          ~b_base:(vxi * int (imul ni btiles))
          ~c_base:(vxi * int (imul no btiles))
          ~m:no ~n:btiles ~k:ni
      in
      for_ ~prefetch:s.prefetch ~iter:"xg" ~lo:(int 0) ~hi:(int 16) ~step:(int 1) nest
    else begin
      let vb = var "gb" in
      let g = { g with g_fn = min g.Op_common.g_fn tiles } in
      let nest =
        Op_common.gemm_nest ~b_row_stride:btiles ~c_row_stride:btiles g ~a_main:"u_panel"
          ~b_main:"v_panel" ~c_main:"m_panel"
          ~a_base:(vxi * int (imul no ni))
          ~b_base:((vxi * int (imul ni btiles)) + (vb * int tiles))
          ~c_base:((vxi * int (imul no btiles)) + (vb * int tiles))
          ~m:no ~n:tiles ~k:ni
      in
      for_ ~prefetch:s.prefetch ~iter:"gb" ~lo:(int 0) ~hi:(int b) ~step:(int 1)
        (for_ ~iter:"xg" ~lo:(int 0) ~hi:(int 16) ~step:(int 1) nest)
    end
  in
  (* Phase 4: output transform. *)
  let phase_output =
    let vb = var "wo_b" and vno = var "wo_no" and vtr = var "wo_tr" in
    let tfo = Swatop.Scheduler.clipped ~extent:no ~step:s.t_o vno in
    let ttr = Swatop.Scheduler.clipped ~extent:trimg ~step:s.tr vtr in
    let tt = ttr * int tcimg in
    let gets =
      unrolled_16 (fun xi ->
          Dma
            {
              dir = Get;
              main = "m_panel";
              spm = "wo_m";
              tag = int tag_mo;
              region =
                {
                  offset =
                    ((int xi * int no) + vno) * int btiles
                    + (vb * int tiles) + (vtr * int tcimg);
                  rows = tfo;
                  row_elems = tt;
                  row_stride = int btiles;
                };
              spm_offset = int xi * (tfo * tt);
              spm_ld = tt;
              partition = P_grid;
              per_cpe = None;
            })
    in
    let transform =
      Transform
        {
          kind = Wino_output;
          t_src = "wo_m";
          t_src_offset = int 0;
          t_dst = "wo_out";
          t_dst_offset = int 0;
          t_chans = tfo;
          t_tiles_r = ttr;
          t_tiles_c = int tcimg;
          t_src_ld = int tcimg;
        }
    in
    let put =
      Dma
        {
          dir = Put;
          main = "output";
          spm = "wo_out";
          tag = int tag_out;
          region =
            {
              offset = (((vb * int no) + vno) * int (imul ro co)) + (vtr * int (imul 2 co));
              rows = tfo;
              row_elems = ttr * int (imul 2 co);
              row_stride = int (imul ro co);
            };
          spm_offset = int 0;
          spm_ld = ttr * int (imul 2 co);
          partition = P_grid;
          per_cpe = None;
        }
    in
    (* Drain the fire-and-forget output put on the last tile (in-order
       retirement drains every earlier one with it). *)
    let drain =
      let last =
        And
          ( And (Cmp (Le, int b, vb + int 1), Cmp (Le, int no, vno + int s.t_o)),
            Cmp (Le, int trimg, vtr + int s.tr) )
      in
      If { cond = last; then_ = Dma_wait { tag = int tag_out }; else_ = Seq [] }
    in
    for_ ~prefetch:s.prefetch ~iter:"wo_b" ~lo:(int 0) ~hi:(int b) ~step:(int 1)
      (for_ ~iter:"wo_no" ~lo:(int 0) ~hi:(int no) ~step:(int s.t_o)
         (for_ ~iter:"wo_tr" ~lo:(int 0) ~hi:(int trimg) ~step:(int s.tr)
            (seq [ gets; Dma_wait { tag = int tag_mo }; transform; put; drain ])))
  in
  program ~name:"conv_winograd" ~bufs
    (seq
       [
         Comment "phase 1: filter transform";
         phase_filter;
         Comment "phase 2: input transform";
         phase_input;
         Comment "phase 3: 16 batched GEMMs";
         phase_gemm;
         Comment "phase 4: output transform";
         phase_output;
       ])

(* ------------------------------------------------------------------ *)
(* Tuning entry point. *)

let tune ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model t =
  let s = t.spec in
  Op_common.cached_model_tune ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~op:"conv_winograd"
    ~dims:[ s.Spec.b; s.ni; s.no; s.ro; s.co; s.kr; s.kc; s.stride; s.pad ]
    ~gemm_model ~describe ~candidates:(space t) ~build:(build t) ()
