(** The tensorized matrix-multiplication operator: [C = A * B] with
    single-precision row-major operands in main memory.

    The schedule seed is the canonical three-loop tiling: tiles of A
    ([fm x fk]), B ([fk x fn]) and an SPM-resident C accumulator
    ([fm x fn]) stream through the scratch pad while [spm_gemm] primitives
    accumulate. The schedule space spans the tile factors, the order of the
    two independent tile loops, the vectorization dimension and the
    boundary policy; prefetching (double buffering) is applied to every
    strategy unless explicitly disabled (the Fig. 10 ablation). *)

type strategy = {
  fm : int;
  fn : int;
  fk : int;
  n_outer : bool;  (** iterate N tiles in the outer loop (reorder choice) *)
  vec : Primitives.Spm_gemm.vec_dim;
  boundary : Op_common.boundary;
  prefetch : bool;
}

type t = private { m : int; n : int; k : int }

val problem : m:int -> n:int -> k:int -> t
val flops : t -> float
val aligned : t -> strategy -> bool
(** No ragged tiles under this strategy's factors. *)

val space : ?prefetch:bool -> t -> strategy list
(** Enumerate the schedule space: tile-factor candidates per dimension, both
    loop orders, both vectorization dimensions, and every applicable
    boundary policy; strategies whose (double-buffered) SPM footprint
    exceeds the 64 KB scratch pad are pruned. *)

val build : t -> strategy -> Swatop.Ir.program
(** Lower one strategy to IR (before the optimizer passes). *)

val describe : strategy -> string

val pack :
  t -> a:Swtensor.Tensor.t -> b:Swtensor.Tensor.t -> (string * float array) list
(** Main-memory bindings for {!Swatop.Interp.run}: the operands plus a
    zeroed result buffer (and padded auxiliaries when the strategy needs
    them — pass the same strategy to {!bindings_for}). *)

val bindings_for : t -> strategy -> a:Swtensor.Tensor.t -> b:Swtensor.Tensor.t -> (string * float array) list

val unpack_c : t -> (string * float array) list -> Swtensor.Tensor.t

val reference : a:Swtensor.Tensor.t -> b:Swtensor.Tensor.t -> Swtensor.Tensor.t

val tune :
  ?cache:Swatop.Schedule_cache.t ->
  ?checkpoint:string ->
  ?top_k:int ->
  ?prune:bool ->
  ?jobs:int ->
  ?search:Swatop.Tuner.search ->
  gemm_model:Swatop.Gemm_cost.t ->
  t ->
  strategy Swatop.Tuner.outcome
(** Enumerates {!space} and tunes it via {!Op_common.cached_model_tune},
    keyed by [m]x[n]x[k]. *)
