(** Explicit-GEMM convolution (Fig. 2 left): im2col expansion followed by one
    large matrix multiplication.

    Phase 1 materialises the column matrix [(ni*kr*kc, b*ro*co)] in main
    memory: for every (batch image, input channel, filter tap) a shifted
    [ro x co] window streams through SPM — a strided gather whose DRAM
    transaction waste is the algorithm's fundamental overhead. Phase 2 is a
    tiled GEMM of the [(no, ni*kr*kc)] weight matrix (the natural flattened
    weight layout, no repacking) against the column matrix.

    This is the fallback algorithm the paper applies when implicit and
    Winograd convolution cannot be used; its average efficiency is the
    lowest of the three. It is the *guaranteed* fallback: every valid
    [Conv_spec] is accepted. Strided/padded problems lower through a
    generalized naive im2col — padding is first embedded into a zeroed
    "inpad" main buffer (phase 0), and [stride > 1] turns each output row
    of a window into a gather of single-element blocks. *)

type strategy = {
  pi : int;  (** input-channel block of the slab im2col (1 = naive) *)
  slab_im2col : bool;
      (** stream [pi]-channel image slabs once and repack the nine shifted
          windows in SPM ([Spm_copy]), instead of gathering one strided
          window per (image, channel, tap) from main memory — the naive
          structure hand-written code uses *)
  fm : int;
  fn : int;
  fk : int;  (** GEMM tiles over (no, b*ro*co, ni*kr*kc) *)
  n_outer : bool;
  vec : Primitives.Spm_gemm.vec_dim;
  boundary : Op_common.boundary;  (** [Switch] or [Pad_light] (GEMM phase) *)
  prefetch : bool;  (** pipeline both phases *)
  gemm_prefetch : bool;
      (** double-buffer the GEMM phase only (a library GEMM call on a cold
          im2col phase); ignored when [prefetch] is set *)
}

type t = private { spec : Swtensor.Conv_spec.t }

val applicable : Swtensor.Conv_spec.t -> bool
(** Always [true] — explicit GEMM handles any valid [Conv_spec]. *)

val problem : Swtensor.Conv_spec.t -> t
val flops : t -> float
val space : ?prefetch:bool -> t -> strategy list
val build : t -> strategy -> Swatop.Ir.program
val describe : strategy -> string

val bindings_for :
  t -> strategy -> input:Swtensor.Tensor.t -> weight:Swtensor.Tensor.t -> (string * float array) list

val unpack_output : t -> (string * float array) list -> Swtensor.Tensor.t

val tune :
  ?cache:Swatop.Schedule_cache.t ->
  ?checkpoint:string ->
  ?top_k:int ->
  ?prune:bool ->
  ?jobs:int ->
  ?search:Swatop.Tuner.search ->
  gemm_model:Swatop.Gemm_cost.t ->
  t ->
  strategy Swatop.Tuner.outcome
(** Enumerates {!space} and tunes it via {!Op_common.cached_model_tune},
    keyed by the full workload dimensions. *)
