module G = Primitives.Spm_gemm

type strategy = {
  fm : int;
  fn : int;
  fk : int;
  n_outer : bool;
  vec : G.vec_dim;
  boundary : Op_common.boundary;
  prefetch : bool;
}

type t = { m : int; n : int; k : int }

let problem ~m ~n ~k =
  if m <= 0 || n <= 0 || k <= 0 then invalid_arg "Matmul.problem: non-positive dimension";
  { m; n; k }

let flops t = 2.0 *. float_of_int t.m *. float_of_int t.n *. float_of_int t.k

let aligned t s = t.m mod s.fm = 0 && t.n mod s.fn = 0 && t.k mod s.fk = 0

let describe s =
  Printf.sprintf "matmul[fm=%d fn=%d fk=%d order=%s vec=%s boundary=%s%s]" s.fm s.fn s.fk
    (if s.n_outer then "NM" else "MN")
    (match s.vec with G.Vec_m -> "M" | G.Vec_n -> "N")
    (Op_common.boundary_to_string s.boundary)
    (if s.prefetch then "" else " no-prefetch")

(* ------------------------------------------------------------------ *)
(* Schedule space. *)

let stage_chunk_elems = 32768

let spm_fits s =
  let stage =
    (* staging buffer of the Pad_full prologues *)
    match s.boundary with
    | Op_common.Pad_full -> [ Prelude.Ints.ceil_div stage_chunk_elems Sw26010.Config.cpes_per_cg ]
    | Op_common.Switch | Op_common.Pad_light -> []
  in
  Op_common.spm_budget_ok ~prefetch:s.prefetch
    ([
       Op_common.cpe_grid_elems s.fm s.fk;
       Op_common.cpe_grid_elems s.fk s.fn;
       Op_common.cpe_grid_elems s.fm s.fn;
     ]
    @ stage)

(* Tile-factor candidates embody the "prior knowledge of the hardware"
   pruning of Sec. 4.6: tiles below ~1/32 of the dimension (or 8 elements)
   under-fill the 8x8 CPE grid and drown in per-call overhead, so they are
   never competitive and are excluded up front. Power-of-two tiles are
   always included even when they do not divide the dimension — ragged
   tiles are exactly what the boundary-processing machinery (Sec. 4.5.3)
   exists for, and the Listing-2 "unaligned" shapes must exercise it. *)
let factor_candidates dim =
  let axis = Swatop.Dsl.axis "d" dim in
  let lo = min dim (max 8 (Prelude.Ints.ceil_div dim 32)) in
  let hi = min dim 512 in
  let fv = Swatop.Dsl.factor_var ~name:"f" ~axis ~min_factor:lo ~max_factor:hi () in
  let pow2 = List.filter (fun f -> f >= lo && f <= hi) [ 64; 128; 256; 512 ] in
  (* Trim the divisors first so the power-of-two (possibly ragged) tiles
     always survive into the space. *)
  List.sort_uniq compare (Op_common.trim_candidates 4 fv.Swatop.Dsl.fv_candidates @ pow2)

let space ?(prefetch = true) t =
  let fms = factor_candidates t.m
  and fns = factor_candidates t.n
  and fks = factor_candidates t.k in
  let ragged fm fn fk = t.m mod fm <> 0 || t.n mod fn <> 0 || t.k mod fk <> 0 in
  let strategies =
    List.concat_map
      (fun (fm, fn, fk) ->
        let boundaries =
          if ragged fm fn fk then [ Op_common.Switch; Op_common.Pad_light; Op_common.Pad_full ]
          else [ Op_common.Switch ]
        in
        List.concat_map
          (fun boundary ->
            List.concat_map
              (fun n_outer ->
                List.map
                  (fun vec -> { fm; fn; fk; n_outer; vec; boundary; prefetch })
                  [ G.Vec_m; G.Vec_n ])
              [ false; true ])
          boundaries)
      (Prelude.Lists.cartesian3 fms fns fks)
  in
  List.filter spm_fits strategies

(* ------------------------------------------------------------------ *)
(* Lowering. *)

open Swatop.Ir

let imul = Stdlib.( * )
let idiv = Stdlib.( / )
let tag_stage = 12

let nest_of_strategy s prefetch =
  {
    Op_common.g_fm = s.fm;
    g_fn = s.fn;
    g_fk = s.fk;
    g_vec = s.vec;
    g_n_outer = s.n_outer;
    g_pad_light = (match s.boundary with Op_common.Pad_light -> true | _ -> false);
    g_prefetch = prefetch;
    g_prefix = "";
    g_tag_base = 0;
  }

let build (t : t) s =
  match s.boundary with
  | Op_common.Switch | Op_common.Pad_light ->
    let g = nest_of_strategy s s.prefetch in
    let bufs =
      [
        main_buf ~name:"A" ~elems:(imul t.m t.k);
        main_buf ~name:"B" ~elems:(imul t.k t.n);
        main_buf ~name:"C" ~elems:(imul t.m t.n);
      ]
      @ Op_common.gemm_tile_buffers g
    in
    program ~name:"matmul" ~bufs
      (Op_common.gemm_nest g ~a_main:"A" ~b_main:"B" ~c_main:"C" ~a_base:(int 0) ~b_base:(int 0)
         ~c_base:(int 0) ~m:t.m ~n:t.n ~k:t.k)
  | Op_common.Pad_full ->
    let mp = Prelude.Ints.align_up t.m s.fm
    and np = Prelude.Ints.align_up t.n s.fn
    and kp = Prelude.Ints.align_up t.k s.fk in
    let chunk ld = max 1 (idiv stage_chunk_elems ld) in
    let stage_cpe = Prelude.Ints.ceil_div stage_chunk_elems Sw26010.Config.cpes_per_cg in
    let g = nest_of_strategy { s with boundary = Op_common.Switch } s.prefetch in
    let bufs =
      [
        main_buf ~name:"A" ~elems:(imul t.m t.k);
        main_buf ~name:"B" ~elems:(imul t.k t.n);
        main_buf ~name:"C" ~elems:(imul t.m t.n);
        main_buf ~name:"A_pad" ~elems:(imul mp kp);
        main_buf ~name:"B_pad" ~elems:(imul kp np);
        main_buf ~name:"C_pad" ~elems:(imul mp np);
        spm_buf ~name:"stage" ~cg_elems:stage_chunk_elems ~cpe_elems:stage_cpe;
      ]
      @ Op_common.gemm_tile_buffers g
    in
    let prologue =
      seq
        [
          Comment "traditional padding: copy A and B into padded buffers";
          Op_common.padded_copy ~iter:"ipa" ~tag:tag_stage ~src:"A" ~dst:"A_pad" ~rows:t.m
            ~cols:t.k ~dst_ld:kp ~stage:"stage" ~chunk_rows:(chunk kp);
          Op_common.padded_copy ~iter:"ipb" ~tag:tag_stage ~src:"B" ~dst:"B_pad" ~rows:t.k
            ~cols:t.n ~dst_ld:np ~stage:"stage" ~chunk_rows:(chunk np);
        ]
    in
    let epilogue =
      seq
        [
          Comment "traditional padding: crop C back";
          Op_common.cropped_copy ~iter:"ipc" ~tag:tag_stage ~src:"C_pad" ~src_ld:np ~dst:"C"
            ~rows:t.m ~cols:t.n ~stage:"stage" ~chunk_rows:(chunk np);
        ]
    in
    let nest =
      Op_common.gemm_nest g ~a_main:"A_pad" ~b_main:"B_pad" ~c_main:"C_pad" ~a_base:(int 0)
        ~b_base:(int 0) ~c_base:(int 0) ~m:mp ~n:np ~k:kp
    in
    program ~name:"matmul_padded" ~bufs (seq [ prologue; nest; epilogue ])

(* ------------------------------------------------------------------ *)
(* Numeric harness. *)

let check_operands (t : t) ~a ~b =
  let sa = Swtensor.Tensor.shape a and sb = Swtensor.Tensor.shape b in
  if Stdlib.(sa <> [| t.m; t.k |]) || Stdlib.(sb <> [| t.k; t.n |]) then
    invalid_arg "Matmul: operand shape mismatch"

let pack (t : t) ~a ~b =
  check_operands t ~a ~b;
  [
    ("A", Array.copy (Swtensor.Tensor.data a));
    ("B", Array.copy (Swtensor.Tensor.data b));
    ("C", Array.make (imul t.m t.n) 0.0);
  ]

let bindings_for (t : t) s ~a ~b =
  let base = pack t ~a ~b in
  match s.boundary with
  | Op_common.Switch | Op_common.Pad_light -> base
  | Op_common.Pad_full ->
    let mp = Prelude.Ints.align_up t.m s.fm
    and np = Prelude.Ints.align_up t.n s.fn
    and kp = Prelude.Ints.align_up t.k s.fk in
    base
    @ [
        ("A_pad", Array.make (imul mp kp) 0.0);
        ("B_pad", Array.make (imul kp np) 0.0);
        ("C_pad", Array.make (imul mp np) 0.0);
      ]

let unpack_c (t : t) bindings =
  match List.assoc_opt "C" bindings with
  | Some c -> Swtensor.Tensor.of_array (Swtensor.Shape.of_list [ t.m; t.n ]) c
  | None -> invalid_arg "Matmul.unpack_c: no C binding"

let reference ~a ~b = Swtensor.Gemm_ref.matmul a b

(* ------------------------------------------------------------------ *)
(* Tuning entry point. *)

let tune ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~gemm_model (t : t) =
  Op_common.cached_model_tune ?cache ?checkpoint ?top_k ?prune ?jobs ?search ~op:"matmul"
    ~dims:[ t.m; t.n; t.k ] ~gemm_model ~describe ~candidates:(space t) ~build:(build t) ()
