type t = { shape : Shape.t; data : float array }

let create shape = { shape = Array.copy shape; data = Array.make (Shape.numel shape) 0.0 }

let of_fn shape f =
  let t = create shape in
  let n = Shape.numel shape in
  for lin = 0 to n - 1 do
    t.data.(lin) <- f (Shape.unflatten shape lin)
  done;
  t

let of_array shape data =
  if Array.length data <> Shape.numel shape then invalid_arg "Tensor.of_array: size mismatch";
  { shape = Array.copy shape; data = Array.copy data }

let random ?(seed = 42) shape =
  let state = Random.State.make [| seed; Shape.numel shape |] in
  let t = create shape in
  for lin = 0 to Array.length t.data - 1 do
    t.data.(lin) <- Random.State.float state 2.0 -. 1.0
  done;
  t

let shape t = Array.copy t.shape
let numel t = Array.length t.data
let get t idx = t.data.(Shape.linear_index t.shape idx)
let set t idx v = t.data.(Shape.linear_index t.shape idx) <- v
let get_lin t lin = t.data.(lin)
let set_lin t lin v = t.data.(lin) <- v
let data t = t.data
let copy t = { shape = Array.copy t.shape; data = Array.copy t.data }
let fill t v = Array.fill t.data 0 (Array.length t.data) v

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Tensor.map2: shape mismatch";
  { shape = Array.copy a.shape; data = Array.map2 f a.data b.data }

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Tensor.max_abs_diff: shape mismatch";
  let worst = ref 0.0 in
  for i = 0 to Array.length a.data - 1 do
    worst := Float.max !worst (Float.abs (a.data.(i) -. b.data.(i)))
  done;
  !worst

let approx_equal ?(tol = 1e-4) a b =
  let magnitude = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 1.0 a.data in
  max_abs_diff a b <= (tol *. magnitude)

(* Layout-transform hot path (hit once per element on every conv bench):
   both layouts' strides are computed once and the logical index walks as an
   in-place odometer with incremental offset updates — no per-element
   [Shape.unflatten] allocation, no per-element stride recomputation. *)
let relayout ~src_layout ~dst_layout t =
  let out = create t.shape in
  let rank = Array.length t.shape in
  if rank = 0 then out.data.(0) <- t.data.(0)
  else begin
    let src_st = Layout.strides src_layout t.shape in
    let dst_st = Layout.strides dst_layout t.shape in
    let idx = Array.make rank 0 in
    let src = ref 0 and dst = ref 0 in
    for _ = 0 to numel t - 1 do
      out.data.(!dst) <- t.data.(!src);
      let d = ref (rank - 1) in
      let carrying = ref true in
      while !carrying && !d >= 0 do
        let i = !d in
        if idx.(i) + 1 < t.shape.(i) then begin
          idx.(i) <- idx.(i) + 1;
          src := !src + src_st.(i);
          dst := !dst + dst_st.(i);
          carrying := false
        end
        else begin
          src := !src - (idx.(i) * src_st.(i));
          dst := !dst - (idx.(i) * dst_st.(i));
          idx.(i) <- 0;
          decr d
        end
      done
    done
  end;
  out

let pp fmt t =
  Format.fprintf fmt "tensor%s" (Shape.to_string t.shape);
  if numel t <= 16 then begin
    Format.fprintf fmt " [";
    Array.iteri (fun i v -> Format.fprintf fmt "%s%.4g" (if i = 0 then "" else "; ") v) t.data;
    Format.fprintf fmt "]"
  end
