open! Stdlib

type severity = Error | Warning

type diagnostic = { code : string; severity : severity; path : string; message : string }

let severity_label = function Error -> "error" | Warning -> "warning"

let to_string d =
  Printf.sprintf "%s %s at %s: %s" d.code (severity_label d.severity) d.path d.message

let errors ds = List.filter (fun d -> d.severity = Error) ds
let is_clean ds = errors ds = []

let code_counts ds =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun d ->
      Hashtbl.replace tbl d.code (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d.code)))
    ds;
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let registry =
  [
    ("SWA001", Error, "SPM access overlaps an in-flight DMA get (missing dma_wait)");
    ("SWA002", Error, "dma_wait with no matching in-flight transfer");
    ("SWA003", Error, "DMA get double-issued into an in-flight SPM interval");
    ("SWA004", Error, "dma_wait tag parity mismatch against its double-buffer sibling");
    ("SWA005", Warning, "DMA get still in flight at end of program");
    ("SWA010", Error, "DMA region out of main-buffer bounds");
    ("SWA011", Error, "per-CPE DMA descriptor out of main-buffer bounds");
    ("SWA012", Error, "DMA SPM image out of SPM-buffer bounds");
    ("SWA013", Error, "GEMM operand access out of bounds");
    ("SWA014", Error, "spm_copy access out of bounds");
    ("SWA015", Error, "transform access out of bounds");
    ("SWA016", Error, "memset out of bounds");
    ("SWA020", Error, "division or modulo by zero");
    ("SWA021", Warning, "divisor interval contains zero");
  ]

(* ------------------------------------------------------------------ *)
(* Interval domain with saturating arithmetic. In practice almost every
   interval is a singleton (loop sampling keeps iterators concrete); the
   widened cases only arise from symbolic loop bounds, which no current
   builder produces. *)

module Itv = struct
  type t = { lo : int; hi : int }

  let big = 1 lsl 50
  let sat x = if x > big then big else if x < -big then -big else x
  let const n = { lo = sat n; hi = sat n }
  let make lo hi = { lo = sat lo; hi = sat hi }
  let zero = const 0
  let one = const 1
  let to_const i = if i.lo = i.hi then Some i.lo else None
  let add a b = make (a.lo + b.lo) (a.hi + b.hi)
  let sub a b = make (a.lo - b.hi) (a.hi - b.lo)

  let mul_cap a b =
    if a = 0 || b = 0 then 0
    else
      let p = a * b in
      if p / b = a then sat p else if a > 0 = (b > 0) then big else -big

  let mul a b =
    let p1 = mul_cap a.lo b.lo
    and p2 = mul_cap a.lo b.hi
    and p3 = mul_cap a.hi b.lo
    and p4 = mul_cap a.hi b.hi in
    { lo = min (min p1 p2) (min p3 p4); hi = max (max p1 p2) (max p3 p4) }

  let contains_zero b = b.lo <= 0 && 0 <= b.hi

  (* Extremes of a truncating quotient occur at divisor endpoints or at the
     divisors nearest zero. The all-zero divisor case is the caller's to
     diagnose. *)
  let div a b =
    let ds = List.filter (fun d -> d <> 0 && b.lo <= d && d <= b.hi) [ b.lo; b.hi; -1; 1 ] in
    if ds = [] then zero
    else
      let qs = List.concat_map (fun d -> [ a.lo / d; a.hi / d ]) ds in
      make (List.fold_left min max_int qs) (List.fold_left max min_int qs)

  let rem a b =
    let m = max (abs b.lo) (abs b.hi) in
    if m = 0 then zero
    else
      match (to_const a, to_const b) with
      | Some x, Some y -> const (x mod y)
      | _ -> if a.lo >= 0 then make 0 (min a.hi (m - 1)) else make (-(m - 1)) (m - 1)

  let imin a b = { lo = min a.lo b.lo; hi = min a.hi b.hi }
  let imax a b = { lo = max a.lo b.lo; hi = max a.hi b.hi }
end

(* ------------------------------------------------------------------ *)

(* An in-flight DMA transfer: [t_lo, t_hi) is the SPM element interval of
   its image inside buffer [t_buf]. *)
type transfer = { t_dir : Ir.dir; t_buf : string; t_lo : int; t_hi : int; t_tag : int; t_path : string }

type ctx = {
  env : Itv.t array;
  mutable inflight : transfer list;
  mutable quiet : bool;  (** suppress hazard diagnostics (state known imprecise) *)
  mutable imprecise : bool;
  mutable diags : diagnostic list;  (** reversed *)
  seen : (string * string, unit) Hashtbl.t;
}

let report ctx ~code ~severity ~path message =
  if not (Hashtbl.mem ctx.seen (code, path)) then begin
    Hashtbl.add ctx.seen (code, path) ();
    ctx.diags <- { code; severity; path; message } :: ctx.diags
  end

let hazard ctx ~code ~path message = if not ctx.quiet then report ctx ~code ~severity:Error ~path message

(* Definite bounds violations only: a wide interval reports when even its
   best case is out of range, so imprecision can never manufacture a
   failure. [stop] is the exclusive end of the accessed element range. *)
let check_bounds ctx ~code ~path ~what ~buf ~cap (start : Itv.t) (stop : Itv.t) =
  if start.Itv.hi < 0 then
    report ctx ~code ~severity:Error ~path
      (Printf.sprintf "%s: negative offset %d into %s" what start.Itv.hi buf)
  else if stop.Itv.lo > cap then
    report ctx ~code ~severity:Error ~path
      (Printf.sprintf "%s: access through element %d exceeds %s (%d elements)" what stop.Itv.lo buf
         cap)

let overlaps ~lo ~hi tr = lo < tr.t_hi && tr.t_lo < hi

(* A compute statement reading or writing [buf[lo, hi)] while a get into an
   overlapping interval is in flight has raced ahead of its dma_wait. Only
   checked when the interval is concrete — widened state never accuses. *)
let check_conflict ctx ~path ~what ~buf (start : Itv.t) (stop : Itv.t) =
  match (Itv.to_const start, Itv.to_const stop) with
  | Some lo, Some hi when hi > lo ->
    List.iter
      (fun tr ->
        if tr.t_dir = Ir.Get && String.equal tr.t_buf buf && overlaps ~lo ~hi tr then
          hazard ctx ~code:"SWA001" ~path
            (Printf.sprintf
               "%s accesses %s[%d,%d) while get tag %d (issued at %s) is in flight — missing \
                dma_wait"
               what buf lo hi tr.t_tag tr.t_path))
      ctx.inflight
  | _ -> ()

let canon_state l = List.sort compare l

(* ------------------------------------------------------------------ *)

type cenv = {
  slots : (string, int) Hashtbl.t;
  bufs : (string, Ir.buf) Hashtbl.t;
  rid_slot : int;
  cid_slot : int;
}

let slot_of ce v =
  match Hashtbl.find_opt ce.slots v with
  | Some i -> i
  | None ->
    let i = Hashtbl.length ce.slots in
    Hashtbl.add ce.slots v i;
    i

let buf_of ce name = Hashtbl.find_opt ce.bufs name
let main_cap ce name =
  match buf_of ce name with Some b when b.Ir.space = Ir.Main -> Some b.Ir.cg_elems | _ -> None

let spm_cap ce name =
  match buf_of ce name with
  | Some b when b.Ir.space = Ir.Spm ->
    Some (if b.Ir.double_buffered then 2 * b.Ir.cg_elems else b.Ir.cg_elems)
  | _ -> None

let rec compile_expr ce ~path (e : Ir.expr) : ctx -> Itv.t =
  let bin op a b =
    let fa = compile_expr ce ~path a and fb = compile_expr ce ~path b in
    fun ctx -> op (fa ctx) (fb ctx)
  in
  match e with
  | Ir.Const i ->
    let v = Itv.const i in
    fun _ -> v
  | Ir.Var v ->
    let s = slot_of ce v in
    fun ctx -> ctx.env.(s)
  | Ir.Add (a, b) -> bin Itv.add a b
  | Ir.Sub (a, b) -> bin Itv.sub a b
  | Ir.Mul (a, b) -> bin Itv.mul a b
  | Ir.Min (a, b) -> bin Itv.imin a b
  | Ir.Max (a, b) -> bin Itv.imax a b
  | Ir.Div (a, b) ->
    let fa = compile_expr ce ~path a and fb = compile_expr ce ~path b in
    fun ctx ->
      let bi = fb ctx in
      if Itv.to_const bi = Some 0 then begin
        report ctx ~code:"SWA020" ~severity:Error ~path "division by zero";
        Itv.zero
      end
      else begin
        if Itv.contains_zero bi then
          report ctx ~code:"SWA021" ~severity:Warning ~path "divisor interval contains zero";
        Itv.div (fa ctx) bi
      end
  | Ir.Mod (a, b) ->
    let fa = compile_expr ce ~path a and fb = compile_expr ce ~path b in
    fun ctx ->
      let bi = fb ctx in
      if Itv.to_const bi = Some 0 then begin
        report ctx ~code:"SWA020" ~severity:Error ~path "modulo by zero";
        Itv.zero
      end
      else begin
        if Itv.contains_zero bi then
          report ctx ~code:"SWA021" ~severity:Warning ~path "divisor interval contains zero";
        Itv.rem (fa ctx) bi
      end

type tri = True | False | Unknown

let tri_not = function True -> False | False -> True | Unknown -> Unknown

let rec compile_cond ce ~path (c : Ir.cond) : ctx -> tri =
  match c with
  | Ir.Cmp (op, a, b) ->
    let fa = compile_expr ce ~path a and fb = compile_expr ce ~path b in
    let cmp : Ir.cmp -> Itv.t -> Itv.t -> tri = function
      | Ir.Lt -> fun x y -> if x.Itv.hi < y.Itv.lo then True else if x.Itv.lo >= y.Itv.hi then False else Unknown
      | Ir.Le -> fun x y -> if x.Itv.hi <= y.Itv.lo then True else if x.Itv.lo > y.Itv.hi then False else Unknown
      | Ir.Eq ->
        fun x y ->
          if x.Itv.lo = x.Itv.hi && y.Itv.lo = y.Itv.hi && x.Itv.lo = y.Itv.lo then True
          else if x.Itv.hi < y.Itv.lo || y.Itv.hi < x.Itv.lo then False
          else Unknown
      | Ir.Ne ->
        fun x y ->
          if x.Itv.hi < y.Itv.lo || y.Itv.hi < x.Itv.lo then True
          else if x.Itv.lo = x.Itv.hi && y.Itv.lo = y.Itv.hi && x.Itv.lo = y.Itv.lo then False
          else Unknown
    in
    let f = cmp op in
    fun ctx -> f (fa ctx) (fb ctx)
  | Ir.And (a, b) ->
    let fa = compile_cond ce ~path a and fb = compile_cond ce ~path b in
    fun ctx -> (
      match (fa ctx, fb ctx) with
      | False, _ | _, False -> False
      | True, True -> True
      | _ -> Unknown)
  | Ir.Or (a, b) ->
    let fa = compile_cond ce ~path a and fb = compile_cond ce ~path b in
    fun ctx -> (
      match (fa ctx, fb ctx) with
      | True, _ | _, True -> True
      | False, False -> False
      | _ -> Unknown)
  | Ir.Not a ->
    let fa = compile_cond ce ~path a in
    fun ctx -> tri_not (fa ctx)

(* Clamp an extent interval to >= 1 for "last element" arithmetic; callers
   gate on the extent possibly being positive first. *)
let at_least_one i = Itv.imax i Itv.one

(* Loop sampling: run everything when short; otherwise run a head window,
   detect the period of the in-flight state (1 for steady loops, 2 for
   double-buffered rotation), and jump to phase-aligned final iterations so
   ragged last tiles are still checked exactly. If no period is found the
   tail runs with hazard diagnostics quieted — the carried state would be
   wrong, but bounds checks remain valid. *)
let max_full_trips = 8
let head_trips = 4

let run_loop ctx ~slot ~lo ~step ~trips ~(body : ctx -> unit) =
  let run i =
    ctx.env.(slot) <- Itv.const (lo + (i * step));
    body ctx
  in
  if trips <= max_full_trips then
    for i = 0 to trips - 1 do
      run i
    done
  else begin
    let snaps = Array.make (head_trips + 1) [] in
    for i = 0 to head_trips - 1 do
      snaps.(i) <- canon_state ctx.inflight;
      run i
    done;
    snaps.(head_trips) <- canon_state ctx.inflight;
    let period =
      if snaps.(head_trips) = snaps.(head_trips - 1) then Some 1
      else if snaps.(head_trips) = snaps.(head_trips - 2) then Some 2
      else None
    in
    let start, quiet_tail =
      match period with
      | Some p ->
        let s = trips - 2 in
        ((if (s - head_trips) mod p = 0 then s else s - 1), false)
      | None ->
        ctx.imprecise <- true;
        (trips - 2, true)
    in
    let was = ctx.quiet in
    if quiet_tail then ctx.quiet <- true;
    for i = start to trips - 1 do
      run i
    done;
    ctx.quiet <- was
  end

let grid_last = snd Ir.cpe_id_range

let rec compile_stmt ce ~path (s : Ir.stmt) : ctx -> unit =
  match s with
  | Ir.Comment _ -> fun _ -> ()
  | Ir.Seq l ->
    let fs = List.mapi (fun i s -> compile_stmt ce ~path:(Printf.sprintf "%s[%d]" path i) s) l in
    fun ctx -> List.iter (fun f -> f ctx) fs
  | Ir.For fl ->
    let flo = compile_expr ce ~path fl.lo
    and fhi = compile_expr ce ~path fl.hi
    and fstep = compile_expr ce ~path fl.step in
    let slot = slot_of ce fl.iter in
    let fbody = compile_stmt ce ~path:(path ^ "/for " ^ fl.iter) fl.body in
    fun ctx -> (
      let lo_i = flo ctx and hi_i = fhi ctx and step_i = fstep ctx in
      match (Itv.to_const lo_i, Itv.to_const hi_i, Itv.to_const step_i) with
      | Some lo, Some hi, Some step when step > 0 ->
        let trips = if hi <= lo then 0 else (hi - lo + step - 1) / step in
        if trips > 0 then run_loop ctx ~slot ~lo ~step ~trips ~body:fbody
      | _ ->
        (* Symbolic bounds: widen the iterator and walk the body once. *)
        ctx.imprecise <- true;
        ctx.env.(slot) <- Itv.make lo_i.Itv.lo (max lo_i.Itv.lo (hi_i.Itv.hi - 1));
        let was = ctx.quiet in
        ctx.quiet <- true;
        fbody ctx;
        ctx.quiet <- was)
  | Ir.If { cond; then_; else_ } ->
    let fc = compile_cond ce ~path cond in
    let ft = compile_stmt ce ~path:(path ^ "/if-then") then_
    and fe = compile_stmt ce ~path:(path ^ "/if-else") else_ in
    fun ctx -> (
      match fc ctx with
      | True -> ft ctx
      | False -> fe ctx
      | Unknown ->
        ctx.imprecise <- true;
        let was = ctx.quiet in
        ctx.quiet <- true;
        let saved = ctx.inflight in
        ft ctx;
        let after_then = ctx.inflight in
        ctx.inflight <- saved;
        fe ctx;
        ctx.inflight <- List.sort_uniq compare (after_then @ ctx.inflight);
        ctx.quiet <- was)
  | Ir.Dma d -> compile_dma ce ~path d
  | Ir.Dma_wait { tag } ->
    let path = path ^ "/dma_wait" in
    let ftag = compile_expr ce ~path tag in
    fun ctx -> (
      match Itv.to_const (ftag ctx) with
      | None -> ctx.imprecise <- true
      | Some t -> (
        let matches, rest = List.partition (fun tr -> tr.t_tag = t) ctx.inflight in
        match matches with
        | _ :: _ -> ctx.inflight <- rest
        | [] ->
          if List.exists (fun tr -> tr.t_tag = t lxor 1) ctx.inflight then
            hazard ctx ~code:"SWA004" ~path
              (Printf.sprintf
                 "wait on tag %d matches no in-flight transfer, but sibling tag %d is in flight \
                  — double-buffer parity mismatch"
                 t (t lxor 1))
          else
            hazard ctx ~code:"SWA002" ~path
              (Printf.sprintf "wait on tag %d with no matching DMA issue" t)))
  | Ir.Gemm g -> compile_gemm ce ~path g
  | Ir.Memset_spm { buf; offset; elems } ->
    let path = path ^ "/memset " ^ buf in
    let foff = compile_expr ce ~path offset and felems = compile_expr ce ~path elems in
    let cap = spm_cap ce buf in
    fun ctx ->
      let off = foff ctx and el = felems ctx in
      if el.Itv.hi > 0 then begin
        let stop = Itv.add off (at_least_one el) in
        Option.iter
          (fun cap -> check_bounds ctx ~code:"SWA016" ~path ~what:"memset" ~buf ~cap off stop)
          cap;
        check_conflict ctx ~path ~what:"memset" ~buf off stop
      end
  | Ir.Spm_copy c ->
    let path = Printf.sprintf "%s/spm_copy %s->%s" path c.cp_src c.cp_dst in
    let fso = compile_expr ce ~path c.cp_src_offset
    and fsl = compile_expr ce ~path c.cp_src_ld
    and fdo = compile_expr ce ~path c.cp_dst_offset
    and fdl = compile_expr ce ~path c.cp_dst_ld
    and frows = compile_expr ce ~path c.cp_rows
    and felems = compile_expr ce ~path c.cp_row_elems in
    let src_cap = spm_cap ce c.cp_src and dst_cap = spm_cap ce c.cp_dst in
    fun ctx ->
      let rows = frows ctx and elems = felems ctx in
      if rows.Itv.hi > 0 && elems.Itv.hi > 0 then begin
        let rows1 = at_least_one rows and elems1 = at_least_one elems in
        let span ld = Itv.add (Itv.mul (Itv.sub rows1 Itv.one) ld) elems1 in
        let so = fso ctx and d_o = fdo ctx in
        let src_stop = Itv.add so (span (fsl ctx)) and dst_stop = Itv.add d_o (span (fdl ctx)) in
        Option.iter
          (fun cap ->
            check_bounds ctx ~code:"SWA014" ~path ~what:"spm_copy source" ~buf:c.cp_src ~cap so
              src_stop)
          src_cap;
        Option.iter
          (fun cap ->
            check_bounds ctx ~code:"SWA014" ~path ~what:"spm_copy destination" ~buf:c.cp_dst ~cap
              d_o dst_stop)
          dst_cap;
        check_conflict ctx ~path ~what:"spm_copy source" ~buf:c.cp_src so src_stop;
        check_conflict ctx ~path ~what:"spm_copy destination" ~buf:c.cp_dst d_o dst_stop
      end
  | Ir.Transform t -> compile_transform ce ~path t

and compile_dma ce ~path (d : Ir.dma) =
  let path =
    Printf.sprintf "%s/dma(%s %s)" path
      (match d.dir with Ir.Get -> "get" | Ir.Put -> "put")
      (match d.dir with Ir.Get -> d.main ^ "->" ^ d.spm | Ir.Put -> d.spm ^ "->" ^ d.main)
  in
  let foff = compile_expr ce ~path d.region.offset
  and frows = compile_expr ce ~path d.region.rows
  and frelems = compile_expr ce ~path d.region.row_elems
  and frstride = compile_expr ce ~path d.region.row_stride
  and fspm_off = compile_expr ce ~path d.spm_offset
  and fspm_ld = compile_expr ce ~path d.spm_ld
  and ftag = compile_expr ce ~path d.tag in
  let fdesc =
    Option.map
      (fun (c : Ir.cpe_desc) ->
        ( compile_expr ce ~path c.d_offset,
          compile_expr ce ~path c.d_block,
          compile_expr ce ~path c.d_stride,
          compile_expr ce ~path c.d_count ))
      d.per_cpe
  in
  let mcap = main_cap ce d.main and scap = spm_cap ce d.spm in
  fun ctx ->
    let off = foff ctx and rows = frows ctx and relems = frelems ctx in
    let spm_off = fspm_off ctx in
    let active = rows.Itv.hi > 0 && relems.Itv.hi > 0 in
    let spm_stop =
      if not active then spm_off
      else
        let rows1 = at_least_one rows and relems1 = at_least_one relems in
        let ld_eff = Itv.imax (fspm_ld ctx) relems1 in
        Itv.add spm_off (Itv.add (Itv.mul (Itv.sub rows1 Itv.one) ld_eff) relems1)
    in
    if active then begin
      (* CG-level region against the main buffer *)
      Option.iter
        (fun cap ->
          let rows1 = at_least_one rows and relems1 = at_least_one relems in
          let stop = Itv.add off (Itv.add (Itv.mul (Itv.sub rows1 Itv.one) (frstride ctx)) relems1) in
          check_bounds ctx ~code:"SWA010" ~path ~what:"region" ~buf:d.main ~cap off stop)
        mcap;
      (* inferred per-CPE descriptors, every grid position *)
      (match (fdesc, mcap) with
      | Some (fdoff, fdblock, fdstride, fdcount), Some cap ->
        for r = 0 to grid_last do
          for c = 0 to grid_last do
            ctx.env.(ce.rid_slot) <- Itv.const r;
            ctx.env.(ce.cid_slot) <- Itv.const c;
            let cnt = fdcount ctx and blk = fdblock ctx in
            (* trailing CPEs legitimately get a clipped-to-zero share *)
            if cnt.Itv.hi > 0 && blk.Itv.hi > 0 then begin
              let doff = fdoff ctx in
              let cnt1 = at_least_one cnt and blk1 = at_least_one blk in
              let stride' = Itv.imax (fdstride ctx) blk1 in
              let stop = Itv.add doff (Itv.add (Itv.mul (Itv.sub cnt1 Itv.one) stride') blk1) in
              check_bounds ctx ~code:"SWA011" ~path
                ~what:(Printf.sprintf "per-CPE descriptor (rid %d, cid %d)" r c)
                ~buf:d.main ~cap doff stop
            end
          done
        done
      | _ -> ());
      (* SPM image against the (possibly double-buffered) SPM buffer *)
      Option.iter
        (fun cap ->
          check_bounds ctx ~code:"SWA012" ~path ~what:"SPM image" ~buf:d.spm ~cap spm_off spm_stop)
        scap
    end;
    (* hazard bookkeeping *)
    match (Itv.to_const (ftag ctx), Itv.to_const spm_off, Itv.to_const spm_stop) with
    | Some tag, Some lo, Some hi when active ->
      if d.dir = Ir.Get then
        List.iter
          (fun tr ->
            if tr.t_dir = Ir.Get && String.equal tr.t_buf d.spm && overlaps ~lo ~hi tr then
              hazard ctx ~code:"SWA003" ~path
                (Printf.sprintf
                   "get into %s[%d,%d) overlaps in-flight get tag %d (issued at %s) — \
                    double-issue into the same half"
                   d.spm lo hi tr.t_tag tr.t_path))
          ctx.inflight;
      let fresh = { t_dir = d.dir; t_buf = d.spm; t_lo = lo; t_hi = hi; t_tag = tag; t_path = path } in
      (* set-replace: reissuing the identical transfer (same direction,
         buffer, interval, tag) supersedes its stale record, keeping the
         state finite for fire-and-forget puts *)
      ctx.inflight <-
        fresh
        :: List.filter
             (fun tr ->
               not
                 (tr.t_dir = fresh.t_dir && String.equal tr.t_buf fresh.t_buf
                && tr.t_lo = fresh.t_lo && tr.t_hi = fresh.t_hi && tr.t_tag = fresh.t_tag))
             ctx.inflight
    | _ -> if active then ctx.imprecise <- true

and compile_gemm ce ~path (g : Ir.gemm) =
  let path = path ^ "/gemm" in
  let fm = compile_expr ce ~path g.m
  and fn = compile_expr ce ~path g.n
  and fk = compile_expr ce ~path g.k in
  let operand (op : Ir.gemm_operand) =
    (compile_expr ce ~path op.g_offset, compile_expr ce ~path op.g_ld, op.g_buf, spm_cap ce op.g_buf)
  in
  let a = operand g.a and b = operand g.b and c = operand g.c in
  let a_major = g.variant.Primitives.Spm_gemm.a_major
  and b_major = g.variant.Primitives.Spm_gemm.b_major in
  fun ctx ->
    let m = fm ctx and n = fn ctx and k = fk ctx in
    if m.Itv.hi <= 0 || n.Itv.hi <= 0 || k.Itv.hi <= 0 then
      report ctx ~code:"SWA013" ~severity:Error ~path "non-positive GEMM dimension"
    else begin
      let m1 = at_least_one m and n1 = at_least_one n and k1 = at_least_one k in
      (* rows/cols of each operand's stored footprint under its majorness *)
      let check what (foff, fld, buf, cap) ~rows ~cols =
        let off = foff ctx and ld = fld ctx in
        if ld.Itv.hi < cols.Itv.lo then
          report ctx ~code:"SWA013" ~severity:Error ~path
            (Printf.sprintf "%s leading dimension %d smaller than row extent %d" what ld.Itv.hi
               cols.Itv.lo);
        let stop = Itv.add off (Itv.add (Itv.mul (Itv.sub rows Itv.one) ld) cols) in
        Option.iter
          (fun cap -> check_bounds ctx ~code:"SWA013" ~path ~what ~buf ~cap off stop)
          cap;
        check_conflict ctx ~path ~what ~buf off stop
      in
      (match a_major with
      | Primitives.Spm_gemm.Row_major -> check "operand A" a ~rows:m1 ~cols:k1
      | Primitives.Spm_gemm.Col_major -> check "operand A" a ~rows:k1 ~cols:m1);
      (match b_major with
      | Primitives.Spm_gemm.Row_major -> check "operand B" b ~rows:k1 ~cols:n1
      | Primitives.Spm_gemm.Col_major -> check "operand B" b ~rows:n1 ~cols:k1);
      check "operand C" c ~rows:m1 ~cols:n1
    end

and compile_transform ce ~path (t : Ir.transform) =
  let kind_name =
    match t.kind with
    | Ir.Wino_input -> "wino_input"
    | Ir.Wino_filter -> "wino_filter"
    | Ir.Wino_output -> "wino_output"
  in
  let path = Printf.sprintf "%s/transform(%s %s->%s)" path kind_name t.t_src t.t_dst in
  let fsrc_off = compile_expr ce ~path t.t_src_offset
  and fdst_off = compile_expr ce ~path t.t_dst_offset
  and fchans = compile_expr ce ~path t.t_chans
  and ftr = compile_expr ce ~path t.t_tiles_r
  and ftc = compile_expr ce ~path t.t_tiles_c
  and fld = compile_expr ce ~path t.t_src_ld in
  let src_cap = spm_cap ce t.t_src and dst_cap = spm_cap ce t.t_dst in
  fun ctx ->
    let chans = fchans ctx and tiles_r = ftr ctx and tiles_c = ftc ctx in
    let applicable =
      match t.kind with
      | Ir.Wino_filter -> chans.Itv.hi > 0
      | Ir.Wino_input | Ir.Wino_output -> chans.Itv.hi > 0 && tiles_r.Itv.hi > 0 && tiles_c.Itv.hi > 0
    in
    if applicable then begin
      let ch1 = at_least_one chans
      and tr1 = at_least_one tiles_r
      and tc1 = at_least_one tiles_c in
      let tiles = Itv.mul tr1 tc1 in
      let i n = Itv.const n in
      let src_off = fsrc_off ctx and dst_off = fdst_off ctx in
      (* exact footprints of the interpreter's transform numerics *)
      let src_span, dst_span =
        match t.kind with
        | Ir.Wino_input ->
          let ld = fld ctx in
          let plane_rows = Itv.add (Itv.mul tr1 (i 2)) (i 2) in
          (* last read: plane (chans-1), row 2*tiles_r+1, column 2*tiles_c+1 *)
          ( Itv.add
              (Itv.mul (Itv.sub ch1 Itv.one) (Itv.mul plane_rows ld))
              (Itv.add (Itv.mul (Itv.add (Itv.mul tr1 (i 2)) Itv.one) ld)
                 (Itv.add (Itv.mul tc1 (i 2)) (i 2))),
            Itv.mul (i 16) (Itv.mul ch1 tiles) )
        | Ir.Wino_filter -> (Itv.mul (i 9) ch1, Itv.mul (i 16) ch1)
        | Ir.Wino_output -> (Itv.mul (i 16) (Itv.mul ch1 tiles), Itv.mul (i 4) (Itv.mul ch1 tiles))
      in
      let src_stop = Itv.add src_off src_span and dst_stop = Itv.add dst_off dst_span in
      Option.iter
        (fun cap ->
          check_bounds ctx ~code:"SWA015" ~path ~what:(kind_name ^ " source") ~buf:t.t_src ~cap
            src_off src_stop)
        src_cap;
      Option.iter
        (fun cap ->
          check_bounds ctx ~code:"SWA015" ~path ~what:(kind_name ^ " destination") ~buf:t.t_dst
            ~cap dst_off dst_stop)
        dst_cap;
      check_conflict ctx ~path ~what:(kind_name ^ " source") ~buf:t.t_src src_off src_stop;
      check_conflict ctx ~path ~what:(kind_name ^ " destination") ~buf:t.t_dst dst_off dst_stop
    end

(* ------------------------------------------------------------------ *)

let verify (p : Ir.program) =
  let ce =
    {
      slots = Hashtbl.create 16;
      bufs = Hashtbl.create 16;
      rid_slot = 0;
      cid_slot = 0;
    }
  in
  let ce = { ce with rid_slot = slot_of ce "rid"; cid_slot = slot_of ce "cid" } in
  List.iter (fun (b : Ir.buf) -> Hashtbl.replace ce.bufs b.Ir.buf_name b) p.bufs;
  let compiled = compile_stmt ce ~path:"body" p.body in
  let ctx =
    {
      env = Array.make (max 1 (Hashtbl.length ce.slots)) Itv.zero;
      inflight = [];
      quiet = false;
      imprecise = false;
      diags = [];
      seen = Hashtbl.create 16;
    }
  in
  compiled ctx;
  if not ctx.imprecise then
    List.iter
      (fun tr ->
        if tr.t_dir = Ir.Get then
          report ctx ~code:"SWA005" ~severity:Warning ~path:tr.t_path
            (Printf.sprintf "get tag %d into %s still in flight at end of program" tr.t_tag
               tr.t_buf))
      ctx.inflight;
  List.rev ctx.diags
