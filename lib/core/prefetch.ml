open Ir
open! Stdlib

let fail fmt = Printf.ksprintf invalid_arg ("Prefetch: " ^^ fmt)

let has_get s =
  fold_stmt (fun acc n -> acc || match n with Dma { dir = Get; _ } -> true | _ -> false) false s

let is_empty = function Seq [] -> true | _ -> false

(* Direct For children of a statement (not crossing other For nodes). *)
let rec for_children s =
  match s with
  | For fl -> [ fl ]
  | Seq l -> List.concat_map for_children l
  | If { then_; else_; _ } -> for_children then_ @ for_children else_
  | Dma _ | Dma_wait _ | Gemm _ | Memset_spm _ | Spm_copy _ | Transform _ | Comment _ -> []

(* The chain of loops from the marked loop down to the single level that
   holds the Get DMAs, outermost first. *)
let rec build_chain (fl : for_loop) acc =
  let acc = fl :: acc in
  let children = List.filter (fun f -> has_get (For f)) (for_children fl.body) in
  let gets_here = not (is_empty (Ir_rewrite.gets_only fl.body)) in
  match children with
  | [] -> List.rev acc
  | [ child ] ->
    if gets_here then fail "gets at multiple loop levels in nest under %s" fl.iter;
    if child.prefetch then fail "nested prefetch mark on loop %s" child.iter;
    build_chain child acc
  | _ :: _ :: _ -> fail "multiple streaming sub-loops under %s" fl.iter

let const_of at e =
  match Ir.to_const e with
  | Some i -> i
  | None -> fail "%s bound %s is not a constant" at (Ir_print.expr_to_string e)

type level = { l : for_loop; lo_c : int; hi_c : int; step_c : int; trips : int }

let level_of (fl : for_loop) =
  let lo_c = const_of ("loop " ^ fl.iter) fl.lo
  and hi_c = const_of ("loop " ^ fl.iter) fl.hi
  and step_c = const_of ("loop " ^ fl.iter) fl.step in
  if step_c <= 0 then fail "loop %s has non-positive step" fl.iter;
  { l = fl; lo_c; hi_c; step_c; trips = max 0 ((hi_c - lo_c + step_c - 1) / step_c) }

(* Iteration counter of the first [depth] chain levels, as an expression
   over their iterators; its parity selects a buffer's active half. A buffer
   rotates at the deepest level whose body DMAs it, so its parity counts
   only the levels above (and including) that one. *)
let counter_to_depth levels depth =
  let prefix = List.filteri (fun i _ -> i < depth) levels in
  List.fold_left
    (fun acc lv ->
      let idx = Ir.((var lv.l.iter - int lv.lo_c) / int lv.step_c) in
      Ir.((acc * int lv.trips) + idx))
    (int 0) prefix

(* Add [parity(buf) * cg_elems] to every reference to a double-buffered SPM
   buffer, and retag DMAs/waits with that buffer's parity. [parity_of] maps
   a buffer name to [Some (parity expr, cg_elems)] for double-buffered
   buffers and [None] otherwise; [tag_buf] resolves a wait's constant tag to
   the buffer it synchronises. *)
let apply_parity ~parity_of ~tag_buf s =
  let bump buf off =
    match parity_of buf with None -> off | Some (parity, n) -> Ir.(off + (parity * int n))
  in
  let retag buf tag =
    match parity_of buf with None -> tag | Some (parity, _) -> Ir.((int 2 * tag) + parity)
  in
  let rec go s =
    match s with
    | Seq l -> Seq (List.map go l)
    | For fl -> For { fl with body = go fl.body }
    | If { cond; then_; else_ } -> If { cond; then_ = go then_; else_ = go else_ }
    | Dma d -> Dma { d with tag = retag d.spm d.tag; spm_offset = bump d.spm d.spm_offset }
    | Dma_wait { tag } -> Dma_wait { tag = retag (tag_buf tag) tag }
    | Gemm g ->
      let op (o : gemm_operand) = { o with g_offset = bump o.g_buf o.g_offset } in
      Gemm { g with a = op g.a; b = op g.b; c = op g.c }
    | Memset_spm m -> Memset_spm { m with offset = bump m.buf m.offset }
    | Spm_copy c ->
      Spm_copy
        {
          c with
          cp_src_offset = bump c.cp_src c.cp_src_offset;
          cp_dst_offset = bump c.cp_dst c.cp_dst_offset;
        }
    | Transform t ->
      Transform
        { t with t_src_offset = bump t.t_src t.t_src_offset; t_dst_offset = bump t.t_dst t.t_dst_offset }
    | Comment _ -> s
  in
  go s

(* The nested if-then-else of Sec. 4.5.2: issue the template at the next
   multi-index. [rev_levels] is the chain innermost-first; [bindings]
   accumulates the iterator substitutions of already-exhausted levels. *)
let rec next_iteration_gets rev_levels bindings template =
  match rev_levels with
  | [] -> Seq [] (* past the last nest iteration: nothing left to prefetch *)
  | lv :: outer ->
    let stepped = Ir.(var lv.l.iter + int lv.step_c) in
    If
      {
        cond = Ir.(stepped < int lv.hi_c);
        then_ = Ir_rewrite.subst_stmt ((lv.l.iter, stepped) :: bindings) template;
        else_ = next_iteration_gets outer ((lv.l.iter, int lv.lo_c) :: bindings) template;
      }

(* Rebuild the chain bottom-up, substituting the transformed innermost body.
   Chain loops are identified by iterator name, which builders keep unique
   within a program. *)
let rec rebuild levels new_inner_body =
  match levels with
  | [] -> assert false
  | [ lv ] -> For { lv.l with body = new_inner_body; prefetch = false }
  | lv :: (next :: _ as rest) ->
    let child_stmt = rebuild rest new_inner_body in
    let rec replace s =
      match s with
      | For f when String.equal f.iter next.l.iter -> child_stmt
      | For f -> For { f with body = replace f.body }
      | Seq l -> Seq (List.map replace l)
      | If { cond; then_; else_ } -> If { cond; then_ = replace then_; else_ = replace else_ }
      | Dma _ | Dma_wait _ | Gemm _ | Memset_spm _ | Spm_copy _ | Transform _ | Comment _ -> s
    in
    For { lv.l with body = replace lv.l.body; prefetch = false }

let transform_nest (bufs : buf list) (fl : for_loop) =
  let chain = build_chain fl [] in
  let levels = List.map level_of chain in
  let depth = List.length levels in
  (* Buffers to double-buffer: every SPM side of a DMA inside the nest. *)
  let nest_dmas = Ir_rewrite.collect_dmas (For fl) in
  let db_names = List.sort_uniq String.compare (List.map (fun (d : dma) -> d.spm) nest_dmas) in
  let cg_elems name =
    match List.find_opt (fun b -> String.equal b.buf_name name) bufs with
    | Some b -> b.cg_elems
    | None -> fail "DMA references undeclared buffer %s" name
  in
  (* Rotation depth of each buffer: the deepest chain level whose own body
     (not counting the next chain loop's subtree) DMAs it. A C accumulator
     put back at an outer level rotates with that outer loop, not with the
     innermost streaming loop. *)
  let rotation name =
    let dmas_below j =
      if j >= depth then []
      else Ir_rewrite.collect_dmas (For (List.nth levels j).l)
    in
    let rec find j =
      if j = 0 then fail "buffer %s not DMA'd in nest" name
      else
        let here = List.map (fun (d : dma) -> d.spm) (dmas_below (j - 1)) in
        let deeper = List.map (fun (d : dma) -> d.spm) (dmas_below j) in
        if List.mem name here && not (List.mem name deeper) then j else find (j - 1)
    in
    find depth
  in
  let parity_of =
    let table =
      List.map
        (fun name ->
          let parity = Ir.(counter_to_depth levels (rotation name) % int 2) in
          (name, (parity, cg_elems name)))
        db_names
    in
    fun name -> List.assoc_opt name table
  in
  (* Waits name only a reply-word tag; resolve constant tags back to the
     buffer they synchronise so the wait picks up that buffer's parity. *)
  let tag_buf =
    let assoc =
      List.filter_map
        (fun (d : dma) -> match d.tag with Const t -> Some (t, d.spm) | _ -> None)
        nest_dmas
    in
    List.iter
      (fun (t, b) ->
        List.iter
          (fun (t', b') ->
            if t = t' && not (String.equal b b') then
              fail "tag %d used by buffers %s and %s" t b b')
          assoc)
      assoc;
    fun tag ->
      match tag with
      | Const t -> (
        match List.assoc_opt t assoc with
        | Some b -> b
        | None -> fail "wait on unknown tag %d" t)
      | e -> fail "wait tag %s is not constant" (Ir_print.expr_to_string e)
  in
  (* Rewrite the whole nest with per-buffer parity first, then perform the
     structural surgery on the rewritten tree. The parity expressions are
     written in terms of the *current* iterators, so substituting the next
     multi-index into the prefetch template turns them into the parity of
     the next iteration for free. *)
  let fl_rewritten =
    match apply_parity ~parity_of ~tag_buf (For fl) with
    | For f -> f
    | _ -> assert false
  in
  let chain_r = build_chain fl_rewritten [] in
  let inner_r = List.nth chain_r (depth - 1) in
  let template = Ir_rewrite.gets_only inner_r.body in
  if is_empty template then fail "marked nest under %s contains no Get DMA" fl.iter;
  let rev_levels = List.rev levels in
  let prefetch_block = next_iteration_gets rev_levels [] template in
  let body' = Ir_rewrite.drop_gets inner_r.body in
  let new_inner_body = seq [ prefetch_block; body' ] in
  let levels_r =
    List.map (fun (l : for_loop) -> { (level_of l) with l }) chain_r
  in
  let nest' = rebuild levels_r new_inner_body in
  (* Initial fill: the Gets at the first multi-index (parity 0 falls out of
     the substitution). *)
  let first_bindings = List.map (fun lv -> (lv.l.iter, int lv.lo_c)) levels in
  let initial_fill = Ir_rewrite.subst_stmt first_bindings template in
  (seq [ Comment "prefetch: initial fill"; initial_fill; nest' ], db_names)

let apply (p : program) =
  let db_acc = ref [] in
  let transformed = ref false in
  let rec go s =
    match s with
    | For fl when fl.prefetch ->
      let nest', db_names = transform_nest p.bufs fl in
      db_acc := db_names @ !db_acc;
      transformed := true;
      nest'
    | Seq l -> Seq (List.map go l)
    | For fl -> For { fl with body = go fl.body }
    | If { cond; then_; else_ } -> If { cond; then_ = go then_; else_ = go else_ }
    | Dma _ | Dma_wait _ | Gemm _ | Memset_spm _ | Spm_copy _ | Transform _ | Comment _ -> s
  in
  let body = go p.body in
  if not !transformed then p
  else begin
    let db = List.sort_uniq String.compare !db_acc in
    let bufs =
      List.map
        (fun b -> if List.mem b.buf_name db then { b with double_buffered = true } else b)
        p.bufs
    in
    { p with body; bufs; overlapped = true }
  end
