(* Fixed-width schedule features for the learned cost model.

   The extractor walks an optimized program once, analytically: a loop's
   body is visited a single time under its midpoint iterate, and every
   accumulation is weighted by the loop's trip count, so the totals
   approximate what a full execution would issue at a cost independent of
   the trip counts. Conditionals whose guard evaluates under the midpoint
   environment take that branch; undecidable guards contribute both branches
   at half weight. The walk never raises: an expression it cannot resolve
   simply contributes a neutral value — totality is load-bearing, because
   the guided tuner calls this on every generated candidate, including the
   ones a verifier would reject. *)

type acc = {
  mutable loops : int;  (* static loop nodes *)
  mutable depth : int;  (* current nesting depth *)
  mutable max_depth : int;
  mutable iterations : float;  (* weighted innermost visits *)
  mutable gets : float;
  mutable puts : float;
  mutable waits : float;
  mutable get_bytes : float;
  mutable put_bytes : float;
  mutable get_rows : float;  (* weighted sum of Get descriptor rows *)
  mutable get_row_elems : float;
  mutable dma_sites : int;  (* static DMA statements *)
  mutable gemm_calls : float;
  mutable gemm_flops : float;
  mutable fm : int;  (* first GEMM's tile extents (upper bounds) *)
  mutable fn : int;
  mutable fk : int;
  mutable vec_m : float;  (* weighted kernel-variant mix *)
  mutable vec_n : float;
  mutable a_col_major : float;
  mutable b_col_major : float;
  mutable memset_elems : float;
  mutable copy_elems : float;
  mutable transform_units : float;
}

let rec eval env (e : Ir.expr) =
  let bin f a b =
    match (eval env a, eval env b) with Some x, Some y -> Some (f x y) | _ -> None
  in
  match e with
  | Ir.Const i -> Some i
  | Ir.Var v -> List.assoc_opt v env
  | Ir.Add (a, b) -> bin ( + ) a b
  | Ir.Sub (a, b) -> bin ( - ) a b
  | Ir.Mul (a, b) -> bin ( * ) a b
  | Ir.Div (a, b) -> (
    match (eval env a, eval env b) with
    | Some x, Some y when y <> 0 -> Some (if x >= 0 then x / y else -((-x + y - 1) / y))
    | _ -> None)
  | Ir.Mod (a, b) -> (
    match (eval env a, eval env b) with
    | Some x, Some y when y <> 0 -> Some (((x mod y) + y) mod y)
    | _ -> None)
  | Ir.Min (a, b) -> bin min a b
  | Ir.Max (a, b) -> bin max a b

let rec eval_cond env (c : Ir.cond) =
  match c with
  | Ir.Cmp (op, a, b) -> (
    match (eval env a, eval env b) with
    | Some x, Some y ->
      Some (match op with Ir.Lt -> x < y | Ir.Le -> x <= y | Ir.Eq -> x = y | Ir.Ne -> x <> y)
    | _ -> None)
  | Ir.And (a, b) -> (
    match (eval_cond env a, eval_cond env b) with
    | Some x, Some y -> Some (x && y)
    | Some false, None | None, Some false -> Some false
    | _ -> None)
  | Ir.Or (a, b) -> (
    match (eval_cond env a, eval_cond env b) with
    | Some x, Some y -> Some (x || y)
    | Some true, None | None, Some true -> Some true
    | _ -> None)
  | Ir.Not a -> Option.map not (eval_cond env a)

let fi = float_of_int

let variant_frac (v : Primitives.Spm_gemm.variant) acc w =
  (match v.vec with
  | Primitives.Spm_gemm.Vec_m -> acc.vec_m <- acc.vec_m +. w
  | Primitives.Spm_gemm.Vec_n -> acc.vec_n <- acc.vec_n +. w);
  (match v.a_major with
  | Primitives.Spm_gemm.Col_major -> acc.a_col_major <- acc.a_col_major +. w
  | Primitives.Spm_gemm.Row_major -> ());
  match v.b_major with
  | Primitives.Spm_gemm.Col_major -> acc.b_col_major <- acc.b_col_major +. w
  | Primitives.Spm_gemm.Row_major -> ()

let rec walk acc env w (s : Ir.stmt) =
  match s with
  | Ir.Seq l -> List.iter (walk acc env w) l
  | Ir.Comment _ -> ()
  | Ir.For f -> (
    acc.loops <- acc.loops + 1;
    acc.depth <- acc.depth + 1;
    if acc.depth > acc.max_depth then acc.max_depth <- acc.depth;
    (match (eval env f.lo, eval env f.hi, eval env f.step) with
    | Some lo, Some hi, Some step when step > 0 ->
      let trips = if hi <= lo then 0 else (hi - lo + step - 1) / step in
      if trips > 0 then begin
        let mid = lo + (step * ((trips - 1) / 2)) in
        walk acc ((f.iter, mid) :: env) (w *. fi trips) f.body
      end
    | _ ->
      (* Symbolic bounds: visit the body once, unweighted — schedulers only
         emit constant bounds, so this is a defensive path. *)
      walk acc env w f.body);
    acc.depth <- acc.depth - 1)
  | Ir.If { cond; then_; else_ } -> (
    match eval_cond env cond with
    | Some true -> walk acc env w then_
    | Some false -> walk acc env w else_
    | None ->
      walk acc env (w /. 2.0) then_;
      walk acc env (w /. 2.0) else_)
  | Ir.Dma d ->
    acc.dma_sites <- acc.dma_sites + 1;
    let rows = Option.value ~default:1 (eval env d.region.rows)
    and row_elems = Option.value ~default:1 (eval env d.region.row_elems) in
    let bytes = w *. fi (max 0 rows * max 0 row_elems * Sw26010.Config.elem_bytes) in
    (match d.dir with
    | Ir.Get ->
      acc.gets <- acc.gets +. w;
      acc.get_bytes <- acc.get_bytes +. bytes;
      acc.get_rows <- acc.get_rows +. (w *. fi (max 0 rows));
      acc.get_row_elems <- acc.get_row_elems +. (w *. fi (max 0 row_elems))
    | Ir.Put ->
      acc.puts <- acc.puts +. w;
      acc.put_bytes <- acc.put_bytes +. bytes)
  | Ir.Dma_wait _ -> acc.waits <- acc.waits +. w
  | Ir.Gemm g ->
    acc.iterations <- acc.iterations +. w;
    acc.gemm_calls <- acc.gemm_calls +. w;
    let m = Option.value ~default:0 (eval env g.m)
    and n = Option.value ~default:0 (eval env g.n)
    and k = Option.value ~default:0 (eval env g.k) in
    acc.gemm_flops <- acc.gemm_flops +. (w *. 2.0 *. fi m *. fi n *. fi k);
    if acc.fm = 0 then begin
      acc.fm <- m;
      acc.fn <- n;
      acc.fk <- k
    end;
    variant_frac g.variant acc w
  | Ir.Memset_spm { elems; _ } ->
    acc.memset_elems <- acc.memset_elems +. (w *. fi (max 0 (Option.value ~default:0 (eval env elems))))
  | Ir.Spm_copy c ->
    let rows = Option.value ~default:0 (eval env c.cp_rows)
    and elems = Option.value ~default:0 (eval env c.cp_row_elems) in
    acc.copy_elems <- acc.copy_elems +. (w *. fi (max 0 rows * max 0 elems))
  | Ir.Transform t ->
    let tr = Option.value ~default:0 (eval env t.t_tiles_r)
    and tc = Option.value ~default:0 (eval env t.t_tiles_c)
    and ch = Option.value ~default:0 (eval env t.t_chans) in
    acc.transform_units <- acc.transform_units +. (w *. fi (max 0 tr * max 0 tc * max 0 ch))

let names =
  [
    "log_iterations";
    "loops";
    "max_depth";
    "log_dma_gets";
    "log_dma_puts";
    "log_dma_waits";
    "log_get_bytes";
    "log_put_bytes";
    "log_mean_get_rows";
    "log_mean_get_row_elems";
    "log_gemm_calls";
    "log_gemm_flops";
    "log_tile_m";
    "log_tile_n";
    "log_tile_k";
    "vec_m_frac";
    "a_col_major_frac";
    "b_col_major_frac";
    "overlapped";
    "log_spm_bytes";
    "log_memset_elems";
    "log_repack_elems";
    "arith_intensity";
    "dma_sites";
  ]

let dim = List.length names

let of_program (p : Ir.program) =
  let acc =
    {
      loops = 0;
      depth = 0;
      max_depth = 0;
      iterations = 0.0;
      gets = 0.0;
      puts = 0.0;
      waits = 0.0;
      get_bytes = 0.0;
      put_bytes = 0.0;
      get_rows = 0.0;
      get_row_elems = 0.0;
      dma_sites = 0;
      gemm_calls = 0.0;
      gemm_flops = 0.0;
      fm = 0;
      fn = 0;
      fk = 0;
      vec_m = 0.0;
      vec_n = 0.0;
      a_col_major = 0.0;
      b_col_major = 0.0;
      memset_elems = 0.0;
      copy_elems = 0.0;
      transform_units = 0.0;
    }
  in
  walk acc [] 1.0 p.Ir.body;
  let spm_bytes =
    List.fold_left
      (fun b (buf : Ir.buf) ->
        match buf.space with
        | Ir.Spm ->
          b + (buf.cpe_elems * Sw26010.Config.elem_bytes * if buf.double_buffered then 2 else 1)
        | Ir.Main -> b)
      0 p.Ir.bufs
  in
  let l x = log1p (Float.max 0.0 x) in
  let gemm_total = acc.vec_m +. acc.vec_n in
  let frac x = if gemm_total > 0.0 then x /. gemm_total else 0.0 in
  let bytes = acc.get_bytes +. acc.put_bytes in
  [|
    l acc.iterations;
    fi acc.loops;
    fi acc.max_depth;
    l acc.gets;
    l acc.puts;
    l acc.waits;
    l acc.get_bytes;
    l acc.put_bytes;
    l (if acc.gets > 0.0 then acc.get_rows /. acc.gets else 0.0);
    l (if acc.gets > 0.0 then acc.get_row_elems /. acc.gets else 0.0);
    l acc.gemm_calls;
    l acc.gemm_flops;
    l (fi acc.fm);
    l (fi acc.fn);
    l (fi acc.fk);
    frac acc.vec_m;
    frac acc.a_col_major;
    frac acc.b_col_major;
    (if p.Ir.overlapped then 1.0 else 0.0);
    l (fi spm_bytes);
    l acc.memset_elems;
    l (acc.copy_elems +. acc.transform_units);
    (if bytes > 0.0 then acc.gemm_flops /. bytes else 0.0);
    fi acc.dma_sites;
  |]
