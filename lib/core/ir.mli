(** The swATOP intermediate representation (Sec. 4.4).

    A program is an abstract syntax tree of statement nodes — [For],
    [If], [Dma], [Dma_wait], [Gemm], transform and memset nodes — over
    integer expressions. Schedule strategies and IR optimizations are
    realised by building and mutating this tree; the same tree is consumed
    by the interpreter (simulated execution), the cost model (static
    estimation) and the code generator (C emission).

    Two reserved variables, ["rid"] and ["cid"], denote the executing CPE's
    row and column inside the 8x8 cluster; they may appear only in per-CPE
    DMA descriptors produced by DMA inference. *)

(** {1 Expressions} *)

type expr =
  | Const of int
  | Var of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr  (** floor division, divisor > 0 *)
  | Mod of expr * expr
  | Min of expr * expr
  | Max of expr * expr

type cmp = Lt | Le | Eq | Ne

type cond = Cmp of cmp * expr * expr | And of cond * cond | Or of cond * cond | Not of cond

val int : int -> expr
val var : string -> expr
val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( % ) : expr -> expr -> expr
val emin : expr -> expr -> expr
val emax : expr -> expr -> expr
val ( < ) : expr -> expr -> cond
val ( <= ) : expr -> expr -> cond
val ( = ) : expr -> expr -> cond
val ( <> ) : expr -> expr -> cond

val simplify : expr -> expr
(** Constant folding and algebraic identities ([x*1], [x+0], ...). A
    [Div]/[Mod] whose denominator folds to [Const 0] is left unfolded —
    never raises; {!Ir_verify} reports it as a diagnostic. *)

val to_const : expr -> int option
(** [Some i] iff the expression is literally [Const i]. *)

val subst : (string * expr) list -> expr -> expr
val subst_cond : (string * expr) list -> cond -> cond
val free_vars : expr -> string list

val rid : expr
val cid : expr

val is_cpe_var : string -> bool
(** True for the two reserved per-CPE variables, ["rid"] and ["cid"]. *)

val cpe_id_range : int * int
(** Inclusive value range of both {!rid} and {!cid} — [(0, 7)] on the
    SW26010's square 8x8 CPE grid. Range metadata for static analyses
    ({!Ir_verify}, {!Ir_race}) and for DMA inference, which must agree
    on it. *)

val grid_extent : int
(** Number of CPEs along one edge of the grid, [snd cpe_id_range + 1]. *)

val cpe_linear : expr
(** The linearized CPE id [rid * grid_extent + cid], in [0, 63]. *)

(** {1 Buffers} *)

type mem_space = Main | Spm

type buf = {
  buf_name : string;
  space : mem_space;
  cg_elems : int;  (** numeric backing size: total elements visible to the CG *)
  cpe_elems : int;  (** per-CPE SPM footprint in elements (0 for main buffers) *)
  double_buffered : bool;  (** set by the prefetching pass *)
}

val main_buf : name:string -> elems:int -> buf
val spm_buf : name:string -> cg_elems:int -> cpe_elems:int -> buf

(** {1 Statements} *)

type dir = Get  (** main memory -> SPM *) | Put  (** SPM -> main memory *)

(** A CG-level 2D region of a main-memory buffer: [rows] blocks of
    [row_elems] contiguous elements, block [i] starting at element
    [offset + i * row_stride]. The SPM image is packed (leading dimension
    [row_elems]). *)
type region = { offset : expr; rows : expr; row_elems : expr; row_stride : expr }

(** How the 64 CPEs divide a region among themselves (Sec. 4.5.1). *)
type partition =
  | P_rows  (** each CPE takes [rows/64] consecutive blocks *)
  | P_cols  (** each CPE takes a [row_elems/64] slice of every block *)
  | P_grid  (** CPE (rid, cid) takes the (rid, cid) tile of the 8x8 grid *)

(** Per-CPE strided descriptor inferred from a region; element units; may
    reference [rid]/[cid]. *)
type cpe_desc = { d_offset : expr; d_block : expr; d_stride : expr; d_count : expr }

type gemm_operand = { g_buf : string; g_offset : expr; g_ld : expr }

type transform_kind =
  | Wino_input  (** scatter 4x4 tiles through B^T d B into the V panel *)
  | Wino_filter  (** G g G^T into the U panel *)
  | Wino_output  (** A^T m A from the M panel into the output tile buffer *)

type stmt =
  | Seq of stmt list
  | For of for_loop
  | If of { cond : cond; then_ : stmt; else_ : stmt }
  | Dma of dma
  | Dma_wait of { tag : expr }
  | Gemm of gemm
  | Memset_spm of { buf : string; offset : expr; elems : expr }
  | Spm_copy of spm_copy
  | Transform of transform
  | Comment of string

and for_loop = {
  iter : string;
  lo : expr;
  hi : expr;  (** exclusive *)
  step : expr;
  body : stmt;
  prefetch : bool;  (** request double-buffering of the DMAs in this loop *)
}

and dma = {
  dir : dir;
  main : string;
  spm : string;
  tag : expr;
  region : region;
  spm_offset : expr;
  spm_ld : expr;
      (** elements between consecutive region rows in the SPM image;
          normally [region.row_elems], larger when a ragged boundary tile
          lands inside a full-size (zero-padded) SPM tile *)
  partition : partition;
  per_cpe : cpe_desc option;  (** filled in by DMA inference *)
}

and gemm = {
  variant : Primitives.Spm_gemm.variant;
  m : expr;
  n : expr;
  k : expr;
  a : gemm_operand;
  b : gemm_operand;
  c : gemm_operand;
}

(** A strided SPM-to-SPM repack executed by the CPEs with vector
    loads/stores: [rows] runs of [row_elems] elements, read at stride
    [src_ld] from [src], written at stride [dst_ld] to [dst]. Used to
    repack gathered slabs (e.g. im2col windows) into primitive-friendly
    tiles without a main-memory round trip. *)
and spm_copy = {
  cp_src : string;
  cp_src_offset : expr;
  cp_src_ld : expr;
  cp_dst : string;
  cp_dst_offset : expr;
  cp_dst_ld : expr;
  cp_rows : expr;
  cp_row_elems : expr;
}

(** A Winograd transform over a grid of tiles held in SPM. For [Wino_input],
    [src] is a raw [(chans, src_rows, src_ld)] image block and [dst] the
    packed V panel [(16, chans, tiles)]; for [Wino_filter], [src] is
    [(chans_out, chans_in, 3, 3)] and [dst] the U panel [(16, chans_out,
    chans_in)]; for [Wino_output], [src] is the M panel [(16, chans,
    tiles)] and [dst] a packed [(chans, tiles_r*2, tiles_c*2)] block. *)
and transform = {
  kind : transform_kind;
  t_src : string;
  t_src_offset : expr;
  t_dst : string;
  t_dst_offset : expr;
  t_chans : expr;  (** channels (or no*ni pairs for filters) *)
  t_tiles_r : expr;
  t_tiles_c : expr;
  t_src_ld : expr;  (** leading dimension of the raw image block *)
}

type program = {
  prog_name : string;
  bufs : buf list;
  body : stmt;
  overlapped : bool;  (** true once the prefetch pass has double-buffered *)
}

val program : name:string -> bufs:buf list -> stmt -> program

val seq : stmt list -> stmt
(** Flattens nested [Seq]s and drops empty ones. *)

val for_ : ?prefetch:bool -> iter:string -> lo:expr -> hi:expr -> ?step:expr -> stmt -> stmt

val loop_iter_range : for_loop -> (int * int) option
(** Inclusive range [(lo, last)] of the iterator values a loop with
    constant bounds actually takes ([None] for symbolic bounds, a
    non-positive step, or an empty loop). *)

val find_buf : program -> string -> buf option

val map_stmt : (stmt -> stmt) -> stmt -> stmt
(** Bottom-up rewrite: children first, then the node itself. *)

val fold_stmt : ('a -> stmt -> 'a) -> 'a -> stmt -> 'a
(** Pre-order fold over every node. *)

val count_nodes : stmt -> int
