(* v2: schedule entries gained an explicit search-mode key component, and
   the file gained model lines (fitted learned-cost-model weights per op
   family, for warm-starting guided tunes). v1 files present as an unknown
   header and are quarantined — a guided-era reader must never serve a
   winner whose key cannot say which search mode produced it. *)
let version_line = "swatop-schedule-cache v2"

type entry = {
  fingerprint : int;
  space_size : int;
  index : int;
  seconds : float;
}

(* Every access to [table]/[models]/the counters goes through [lock]: the
   serving layer shares one warm cache across concurrently-tuning workers,
   so the in-memory side must be domain-safe, not just the file. The
   critical sections are a hash lookup or insert — no tuning, no I/O — so
   one mutex is contention-free in practice. *)
type t = {
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  models : (string, int * string) Hashtbl.t;  (* family -> (model version, payload) *)
  mutable dirty : bool;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  {
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    models = Hashtbl.create 8;
    dirty = false;
    hits = 0;
    misses = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let size t = locked t (fun () -> Hashtbl.length t.table)
let model_count t = locked t (fun () -> Hashtbl.length t.models)
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)

let no_whitespace what s =
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then
        invalid_arg (Printf.sprintf "Schedule_cache.key: %s contains whitespace" what))
    s

let key ?(search = "exhaustive") ~op ~dims () =
  no_whitespace "operator name" op;
  no_whitespace "search mode" search;
  if search = "" then invalid_arg "Schedule_cache.key: empty search mode";
  Printf.sprintf "%s:%s#%s" op (String.concat "x" (List.map string_of_int dims)) search

(* FNV-1a over the candidate descriptions (offset basis truncated to OCaml's
   63-bit native int). [Hashtbl.hash] is unusable here: it truncates deep
   structures, and a fingerprint that ignores part of the space would serve
   stale winners. *)
let fingerprint descriptions =
  let h = ref 0x4bf29ce484222325 in
  let feed c = h := (!h lxor Char.code c) * 0x100000001b3 in
  List.iter
    (fun s ->
      String.iter feed s;
      feed '\n')
    descriptions;
  !h land max_int

let find t ~key:k ~fingerprint:fp ~space_size =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some e when e.fingerprint = fp && e.space_size = space_size ->
        t.hits <- t.hits + 1;
        Some e
      | _ ->
        t.misses <- t.misses + 1;
        None)

let remember t ~key:k entry =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some old when old = entry -> ()
      | _ ->
        Hashtbl.replace t.table k entry;
        t.dirty <- true)

let find_model t ~family ~version =
  locked t (fun () ->
      match Hashtbl.find_opt t.models family with
      | Some (v, payload) when v = version -> Some payload
      | _ -> None)

let remember_model t ~family ~version payload =
  if String.contains family '\t' || String.contains family '\n' then
    invalid_arg "Schedule_cache.remember_model: family contains separator characters";
  if String.contains payload '\t' || String.contains payload '\n' then
    invalid_arg "Schedule_cache.remember_model: payload contains separator characters";
  locked t (fun () ->
      match Hashtbl.find_opt t.models family with
      | Some old when old = (version, payload) -> ()
      | _ ->
        Hashtbl.replace t.models family (version, payload);
        t.dirty <- true)

(* ------------------------------------------------------------------ *)
(* Persistence: a versioned line-oriented text file, one entry per line.
   Unknown versions and malformed lines are ignored rather than fatal — a
   cold cache is always a correct cache. A file that turns out corrupt is
   additionally quarantined (renamed to [path ^ ".corrupt"]) so the damaged
   content survives for inspection instead of being silently overwritten by
   the next save, and the warning is emitted once per path per process. *)

let warned : (string, unit) Hashtbl.t = Hashtbl.create 4
let warned_mutex = Mutex.create ()

let warn_once path fmt =
  Printf.ksprintf
    (fun msg ->
      Mutex.lock warned_mutex;
      let fresh = not (Hashtbl.mem warned (path ^ "\x00" ^ msg)) in
      if fresh then Hashtbl.replace warned (path ^ "\x00" ^ msg) ();
      Mutex.unlock warned_mutex;
      if fresh then Printf.eprintf "swatop: %s\n%!" msg)
    fmt

let quarantine path reason =
  let dest = path ^ ".corrupt" in
  (try Sys.rename path dest with Sys_error _ -> ());
  warn_once path "schedule cache %s is corrupt (%s); quarantined to %s" path reason dest

let load path =
  let t = create () in
  (match
     Prelude.Fault.check "cache.load";
     open_in path
   with
  | exception Sys_error _ -> ()
  | exception e ->
    (* An injected fault (or any unexpected read error) degrades to a cold
       cache: tuning proceeds, just without reuse. *)
    warn_once path "schedule cache load from %s failed (%s); starting cold" path
      (Prelude.Swatop_error.label e)
  | ic ->
    let bad = ref None in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> ()
        | header when String.trim header <> version_line -> bad := Some "unknown version header"
        | _ ->
          let rec loop () =
            match input_line ic with
            | exception End_of_file -> ()
            | line ->
              (match String.split_on_char '\t' line with
              | [ "S"; k; fp; sz; idx; secs ] -> (
                match
                  ( int_of_string_opt fp,
                    int_of_string_opt sz,
                    int_of_string_opt idx,
                    float_of_string_opt secs )
                with
                | Some fingerprint, Some space_size, Some index, Some seconds
                  when index >= 0 && index < space_size ->
                  Hashtbl.replace t.table k { fingerprint; space_size; index; seconds }
                | _ -> if !bad = None then bad := Some "malformed schedule line")
              | [ "M"; family; ver; payload ] -> (
                match int_of_string_opt ver with
                | Some version when family <> "" && payload <> "" ->
                  Hashtbl.replace t.models family (version, payload)
                | _ -> if !bad = None then bad := Some "malformed model line")
              | _ -> if !bad = None then bad := Some "malformed entry line");
              loop ()
          in
          loop ());
    Option.iter (quarantine path) !bad);
  t

(* The whole save runs under the cache lock: the entry tables must not
   mutate while being serialized, and saves are rare (end of a run). On-disk
   atomicity is separate — the PID temp + rename below means a concurrent
   [load] in another process sees the old complete file or the new complete
   file, never a partial write. *)
let save path t =
  locked t (fun () ->
  if t.dirty then begin
    (* PID-tagged temp name: two processes saving the same cache race only
       on the final atomic rename, never on the bytes being written. *)
    let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
    let write () =
      Prelude.Fault.check "cache.save";
      let oc = open_out tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc version_line;
          output_char oc '\n';
          let lines =
            Hashtbl.fold
              (fun k e acc ->
                Printf.sprintf "S\t%s\t%d\t%d\t%d\t%.17g" k e.fingerprint e.space_size e.index
                  e.seconds
                :: acc)
              t.table
              (Hashtbl.fold
                 (fun family (version, payload) acc ->
                   Printf.sprintf "M\t%s\t%d\t%s" family version payload :: acc)
                 t.models [])
          in
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            (List.sort compare lines));
      Sys.rename tmp path;
      t.dirty <- false
    in
    (* A failed save costs re-tuning next run, never this run's results. *)
    try write () with
    | e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      warn_once path "schedule cache save to %s failed (%s); results not persisted" path
        (Prelude.Swatop_error.label e)
  end)
