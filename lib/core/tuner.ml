type report = {
  space_size : int;
  evaluated : int;
  pruned : int;
  verify_rejected : (string * int) list;
  scored_failed : (string * int) list;
  cache_hit : bool;
  jobs : int;
  wall_seconds : float;
  cpu_seconds : float;
  score_seconds : float;
  measure_seconds : float;
  hardware_seconds : float;
}

type 'a outcome = {
  best : 'a;
  best_index : int;
  best_program : Ir.program;
  best_seconds : float;
  report : report;
}

let per_candidate_compile_seconds = 40.0

let optimize p = Prefetch.apply (Dma_inference.apply p)

let checked p =
  match Ir_check.check p with
  | Ok () -> p
  | Error errs ->
    invalid_arg
      (Printf.sprintf "Tuner.prepare: invalid program %s: %s" p.Ir.prog_name
         (String.concat "; " (List.map Ir_check.error_to_string errs)))

let prepare p = checked (optimize p)

let require_nonempty = function
  | [] -> invalid_arg "Tuner: empty schedule space"
  | l -> l

let effective_jobs jobs = match jobs with Some j -> max 1 j | None -> Prelude.Parallel.jobs ()

(* Per-code counts of verifier rejections. A rejected candidate counts once
   per distinct code it tripped; summing per-chunk counts keeps the totals
   independent of chunking and evaluation order. *)
let rejection_codes diags =
  List.sort_uniq String.compare (List.map (fun d -> d.Ir_verify.code) diags)

let merge_rejections acc counts =
  List.fold_left
    (fun acc (c, n) ->
      let m = Option.value ~default:0 (List.assoc_opt c acc) in
      (c, m + n) :: List.remove_assoc c acc)
    acc counts

let add_rejections acc codes = merge_rejections acc (List.map (fun c -> (c, 1)) codes)

let sorted_rejections l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let rejections_summary l =
  String.concat ", " (List.map (fun (c, n) -> Printf.sprintf "%s x%d" c n) (sorted_rejections l))

(* ------------------------------------------------------------------ *)
(* Bounded top-k selection.

   Entries are kept ascending by (seconds, index); the lexicographic index
   tie-break makes the selected set independent of both evaluation order and
   chunking, so parallel runs return exactly the sequential result. Entries
   carry only (index, candidate, estimated seconds) — never IR — so a chunk
   summary round-trips through a checkpoint file unchanged; the few
   finalists' programs are rebuilt deterministically after the merge. *)

module Topk = struct
  type 'a entry = { k_index : int; k_cand : 'a; k_seconds : float }

  type 'a t = { cap : int; mutable entries : 'a entry list; mutable count : int }

  let create cap = { cap; entries = []; count = 0 }

  let precedes a b =
    a.k_seconds < b.k_seconds || (a.k_seconds = b.k_seconds && a.k_index < b.k_index)

  (* +infinity until the selection is full: nothing may be pruned before k
     candidates have been fully estimated. *)
  let threshold t =
    if t.count < t.cap then infinity
    else (List.nth t.entries (t.count - 1)).k_seconds

  let insert t e =
    let rec ins = function
      | [] -> [ e ]
      | x :: rest -> if precedes e x then e :: x :: rest else x :: ins rest
    in
    let entries = ins t.entries in
    if t.count < t.cap then begin
      t.entries <- entries;
      t.count <- t.count + 1
    end
    else t.entries <- List.filteri (fun i _ -> i < t.cap) entries
end

(* ------------------------------------------------------------------ *)
(* Model-based tuner (Sec. 4.6) with branch-and-bound pruning. *)

let model_tune ?(top_k = 1) ?(prune = true) ?jobs ?checkpoint ~gemm_model ~candidates ~build () =
  let candidates = require_nonempty candidates in
  if top_k < 1 then invalid_arg "Tuner.model_tune: top_k must be positive";
  let arr = Array.of_list candidates in
  let space_size = Array.length arr in
  let wall0 = Prelude.Clock.wall () and cpu0 = Sys.time () in
  (* Resume: chunk summaries from an interrupted run are reused verbatim when
     their (start, len) matches this run's chunking — per-chunk scoring is
     deterministic, so a reused summary equals what re-scoring would give. *)
  let resumed : (int * int, Tune_checkpoint.chunk) Hashtbl.t = Hashtbl.create 8 in
  (match checkpoint with
  | None -> ()
  | Some cx -> (
    match Tune_checkpoint.load cx.Tune_checkpoint.cx_path with
    | Some t
      when Tune_checkpoint.matches t ~key:cx.cx_key ~fingerprint:cx.cx_fingerprint
             ~space:space_size ~top_k ->
      List.iter
        (fun c -> Hashtbl.replace resumed (c.Tune_checkpoint.c_start, c.c_len) c)
        t.Tune_checkpoint.ck_chunks
    | _ -> ()));
  let ck_mutex = Mutex.create () in
  let ck_done : Tune_checkpoint.chunk list ref = ref [] in
  let record_chunk c =
    match checkpoint with
    | None -> ()
    | Some cx ->
      Mutex.lock ck_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock ck_mutex)
        (fun () ->
          ck_done := c :: !ck_done;
          Tune_checkpoint.save cx.Tune_checkpoint.cx_path
            {
              Tune_checkpoint.ck_key = cx.cx_key;
              ck_fingerprint = cx.cx_fingerprint;
              ck_space = space_size;
              ck_top_k = top_k;
              ck_chunks = !ck_done;
            })
  in
  (* Each chunk runs an ordered sequential scan with its own running top-k:
     the DMA-bytes-only bound is admissible, so a candidate is skipped only
     when its bound strictly exceeds the chunk's k-th best full estimate —
     such a candidate cannot enter the top-k, and the full estimate plus the
     structural Ir_check are never paid for it.

     A candidate whose build/optimization/estimate raises is captured — not
     propagated — and counted per exception label: one bad schedule must not
     sink the whole space. The "tuner.score" fault site is keyed by candidate
     index, so an injected probability plan fails the same candidate set
     whatever the job count. *)
  let score base chunk =
    match Hashtbl.find_opt resumed (base, Array.length chunk) with
    | Some c ->
      record_chunk c;
      ( List.map (fun (i, s) -> { Topk.k_index = i; k_cand = arr.(i); k_seconds = s }) c.c_entries,
        c.c_pruned,
        c.c_rejected,
        c.c_failed )
    | None ->
      let tk = Topk.create top_k in
      let pruned = ref 0 in
      let rejected = ref [] in
      let failed = ref [] in
      Array.iteri
        (fun j c ->
          let index = base + j in
          match
            Prelude.Fault.check ~key:index "tuner.score";
            let p = optimize (build c) in
            if prune && Cost_model.dma_lower_bound p > Topk.threshold tk then `Pruned
            else begin
              let p = checked p in
              match Ir_verify.errors (Ir_verify.verify p) with
              | _ :: _ as errs -> `Rejected (rejection_codes errs)
              | [] -> `Scored (Cost_model.estimate ~gemm_model p).total_seconds
            end
          with
          | `Pruned -> incr pruned
          | `Rejected codes -> rejected := add_rejections !rejected codes
          | `Scored s -> Topk.insert tk { Topk.k_index = index; k_cand = c; k_seconds = s }
          | exception e ->
            failed := merge_rejections !failed [ (Prelude.Swatop_error.label e, 1) ])
        chunk;
      let entries = tk.Topk.entries in
      record_chunk
        {
          Tune_checkpoint.c_start = base;
          c_len = Array.length chunk;
          c_pruned = !pruned;
          c_entries = List.map (fun (e : _ Topk.entry) -> (e.k_index, e.k_seconds)) entries;
          c_rejected = sorted_rejections !rejected;
          c_failed = sorted_rejections !failed;
        };
      (* The abort site sits at the chunk boundary, outside the per-candidate
         capture: an injected "tuner.abort" kills the tune exactly as an
         external SIGKILL between chunks would, leaving the checkpoint file
         behind for the resume tests. *)
      Prelude.Fault.check "tuner.abort";
      (entries, !pruned, !rejected, !failed)
  in
  let chunk_results = Prelude.Parallel.map_chunks ?jobs ~f:score arr in
  let merged = Topk.create top_k in
  List.iter (fun (entries, _, _, _) -> List.iter (Topk.insert merged) entries) chunk_results;
  let pruned = List.fold_left (fun acc (_, p, _, _) -> acc + p) 0 chunk_results in
  let verify_rejected =
    sorted_rejections
      (List.fold_left (fun acc (_, _, rs, _) -> merge_rejections acc rs) [] chunk_results)
  in
  let score_failed =
    List.fold_left (fun acc (_, _, _, fs) -> merge_rejections acc fs) [] chunk_results
  in
  if merged.Topk.entries = [] then
    if score_failed = [] then
      invalid_arg
        (Printf.sprintf "Tuner.model_tune: every candidate rejected by the IR verifier (%s)"
           (rejections_summary verify_rejected))
    else
      Prelude.Swatop_error.error ~site:"tuner.model_tune"
        ~context:
          (("failed", rejections_summary score_failed)
          :: (if verify_rejected = [] then [] else [ ("rejected", rejections_summary verify_rejected) ]))
        "every candidate failed or was rejected";
  let wall_scored = Prelude.Clock.wall () in
  (* The finalists' programs are rebuilt (entries hold no IR so they can
     round-trip through a checkpoint), then compiled and timed on the
     machine; with top_k = 1 that is just the winner's validation run. A
     finalist that fails measurement is skipped and counted, and the
     next-best finalist wins instead. *)
  let measure_failed = ref [] in
  let measured =
    List.filter_map
      (fun (e : _ Topk.entry) ->
        match
          let p = checked (optimize (build e.k_cand)) in
          (p, (Interp.run ~numeric:false p).seconds)
        with
        | p, s -> Some (e, p, s)
        | exception ex ->
          measure_failed := merge_rejections !measure_failed [ (Prelude.Swatop_error.label ex, 1) ];
          None)
      merged.Topk.entries
  in
  let scored_failed =
    sorted_rejections (merge_rejections score_failed !measure_failed)
  in
  let best_entry, best_program, best_seconds =
    match measured with
    | [] ->
      Prelude.Swatop_error.error ~site:"tuner.model_tune"
        ~context:[ ("failed", rejections_summary scored_failed) ]
        "every finalist failed measurement"
    | (e0, p0, s0) :: rest ->
      List.fold_left
        (fun (be, bp, bs) (e, p, s) -> if s < bs then (e, p, s) else (be, bp, bs))
        (e0, p0, s0) rest
  in
  (match checkpoint with
  | Some cx -> Tune_checkpoint.clear cx.Tune_checkpoint.cx_path
  | None -> ());
  let wall1 = Prelude.Clock.wall () in
  let finalist_hw =
    Prelude.Lists.sum_float (fun (_, _, s) -> per_candidate_compile_seconds +. s) measured
  in
  {
    best = best_entry.Topk.k_cand;
    best_index = best_entry.Topk.k_index;
    best_program;
    best_seconds;
    report =
      {
        space_size;
        evaluated = space_size - pruned;
        pruned;
        verify_rejected;
        scored_failed;
        cache_hit = false;
        jobs = effective_jobs jobs;
        wall_seconds = wall1 -. wall0;
        cpu_seconds = Sys.time () -. cpu0;
        score_seconds = wall_scored -. wall0;
        measure_seconds = wall1 -. wall_scored;
        hardware_seconds = finalist_hw;
      };
  }

(* ------------------------------------------------------------------ *)
(* Brute-force baseline (Sec. 5.2). *)

let blackbox_tune ?(repetitions = 3) ?(sample_every = 1) ?jobs ~candidates ~build () =
  let candidates = require_nonempty candidates in
  if sample_every <= 0 then invalid_arg "Tuner.blackbox_tune: sample_every must be positive";
  let measured_candidates = Array.of_list (Prelude.Lists.take_every sample_every candidates) in
  let wall0 = Prelude.Clock.wall () and cpu0 = Sys.time () in
  (* Per-candidate simulated times land in a shared array at disjoint
     indices; the hardware-time sum below then folds it sequentially, so the
     report is bit-identical whatever the job count. *)
  let seconds = Array.make (Array.length measured_candidates) 0.0 in
  (* Rejected candidates are never compiled or run, so they must not
     contribute compile overhead to the hardware-time account either. *)
  let skipped = Array.make (Array.length measured_candidates) false in
  let measure base chunk =
    let best = ref None in
    let rejected = ref [] in
    let failed = ref [] in
    Array.iteri
      (fun j c ->
        match
          Prelude.Fault.check ~key:(base + j) "tuner.score";
          let p = prepare (build c) in
          match Ir_verify.errors (Ir_verify.verify p) with
          | _ :: _ as errs -> `Rejected (rejection_codes errs)
          | [] -> `Measured (p, (Interp.run ~numeric:false p).seconds)
        with
        | `Rejected codes ->
          skipped.(base + j) <- true;
          rejected := add_rejections !rejected codes
        | `Measured (p, s) -> (
          seconds.(base + j) <- s;
          match !best with
          | Some (_, _, bs) when bs <= s -> ()
          | _ -> best := Some (base + j, p, s))
        | exception e ->
          skipped.(base + j) <- true;
          failed := merge_rejections !failed [ (Prelude.Swatop_error.label e, 1) ])
      chunk;
    (!best, !rejected, !failed)
  in
  let chunk_results = Prelude.Parallel.map_chunks ?jobs ~f:measure measured_candidates in
  let verify_rejected =
    sorted_rejections
      (List.fold_left (fun acc (_, rs, _) -> merge_rejections acc rs) [] chunk_results)
  in
  let scored_failed =
    sorted_rejections
      (List.fold_left (fun acc (_, _, fs) -> merge_rejections acc fs) [] chunk_results)
  in
  let best_index, best_program, best_seconds =
    match
      List.fold_left
        (fun acc (b, _, _) ->
          match (acc, b) with
          | None, b -> b
          | acc, None -> acc
          | Some (_, _, bs), Some (_, _, s) when bs <= s -> acc
          | _, b -> b)
        None chunk_results
    with
    | Some b -> b
    | None ->
      if scored_failed = [] then
        invalid_arg
          (Printf.sprintf "Tuner.blackbox_tune: every candidate rejected by the IR verifier (%s)"
             (rejections_summary verify_rejected))
      else
        Prelude.Swatop_error.error ~site:"tuner.blackbox_tune"
          ~context:
            (("failed", rejections_summary scored_failed)
            :: (if verify_rejected = [] then []
                else [ ("rejected", rejections_summary verify_rejected) ]))
          "every candidate failed or was rejected"
  in
  let wall1 = Prelude.Clock.wall () in
  let measured_hw = ref 0.0 in
  Array.iteri
    (fun i s ->
      if not skipped.(i) then
        measured_hw := !measured_hw +. (float_of_int repetitions *. s) +. per_candidate_compile_seconds)
    seconds;
  let measured_hw = !measured_hw in
  {
    best = measured_candidates.(best_index);
    (* Index into the original candidate list: take_every keeps every
       [sample_every]-th element starting at 0. *)
    best_index = best_index * sample_every;
    best_program;
    best_seconds;
    report =
      {
        space_size = List.length candidates;
        evaluated = Array.length measured_candidates;
        pruned = 0;
        verify_rejected;
        scored_failed;
        cache_hit = false;
        jobs = effective_jobs jobs;
        wall_seconds = wall1 -. wall0;
        cpu_seconds = Sys.time () -. cpu0;
        score_seconds = wall1 -. wall0;
        measure_seconds = 0.0;
        hardware_seconds = measured_hw *. float_of_int sample_every;
      };
  }
