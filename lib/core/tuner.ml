type report = {
  space_size : int;
  evaluated : int;
  pruned : int;
  verify_rejected : (string * int) list;
  cache_hit : bool;
  jobs : int;
  wall_seconds : float;
  cpu_seconds : float;
  score_seconds : float;
  measure_seconds : float;
  hardware_seconds : float;
}

type 'a outcome = {
  best : 'a;
  best_index : int;
  best_program : Ir.program;
  best_seconds : float;
  report : report;
}

let per_candidate_compile_seconds = 40.0

let optimize p = Prefetch.apply (Dma_inference.apply p)

let checked p =
  match Ir_check.check p with
  | Ok () -> p
  | Error errs ->
    invalid_arg
      (Printf.sprintf "Tuner.prepare: invalid program %s: %s" p.Ir.prog_name
         (String.concat "; " (List.map Ir_check.error_to_string errs)))

let prepare p = checked (optimize p)

let require_nonempty = function
  | [] -> invalid_arg "Tuner: empty schedule space"
  | l -> l

let effective_jobs jobs = match jobs with Some j -> max 1 j | None -> Prelude.Parallel.jobs ()

(* Per-code counts of verifier rejections. A rejected candidate counts once
   per distinct code it tripped; summing per-chunk counts keeps the totals
   independent of chunking and evaluation order. *)
let rejection_codes diags =
  List.sort_uniq String.compare (List.map (fun d -> d.Ir_verify.code) diags)

let merge_rejections acc counts =
  List.fold_left
    (fun acc (c, n) ->
      let m = Option.value ~default:0 (List.assoc_opt c acc) in
      (c, m + n) :: List.remove_assoc c acc)
    acc counts

let add_rejections acc codes = merge_rejections acc (List.map (fun c -> (c, 1)) codes)

let sorted_rejections l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let rejections_summary l =
  String.concat ", " (List.map (fun (c, n) -> Printf.sprintf "%s x%d" c n) (sorted_rejections l))

(* ------------------------------------------------------------------ *)
(* Bounded top-k selection.

   Entries are kept ascending by (seconds, index); the lexicographic index
   tie-break makes the selected set independent of both evaluation order and
   chunking, so parallel runs return exactly the sequential result. Only the
   k best programs are ever retained — the rest of the space's IR is dropped
   as soon as it has been scored, instead of materializing every prepared
   program for one global sort. *)

module Topk = struct
  type 'a entry = { k_index : int; k_cand : 'a; k_program : Ir.program; k_seconds : float }

  type 'a t = { cap : int; mutable entries : 'a entry list; mutable count : int }

  let create cap = { cap; entries = []; count = 0 }

  let precedes a b =
    a.k_seconds < b.k_seconds || (a.k_seconds = b.k_seconds && a.k_index < b.k_index)

  (* +infinity until the selection is full: nothing may be pruned before k
     candidates have been fully estimated. *)
  let threshold t =
    if t.count < t.cap then infinity
    else (List.nth t.entries (t.count - 1)).k_seconds

  let insert t e =
    let rec ins = function
      | [] -> [ e ]
      | x :: rest -> if precedes e x then e :: x :: rest else x :: ins rest
    in
    let entries = ins t.entries in
    if t.count < t.cap then begin
      t.entries <- entries;
      t.count <- t.count + 1
    end
    else t.entries <- List.filteri (fun i _ -> i < t.cap) entries
end

(* ------------------------------------------------------------------ *)
(* Model-based tuner (Sec. 4.6) with branch-and-bound pruning. *)

let model_tune ?(top_k = 1) ?(prune = true) ?jobs ~gemm_model ~candidates ~build () =
  let candidates = require_nonempty candidates in
  if top_k < 1 then invalid_arg "Tuner.model_tune: top_k must be positive";
  let arr = Array.of_list candidates in
  let wall0 = Prelude.Clock.wall () and cpu0 = Sys.time () in
  (* Each chunk runs an ordered sequential scan with its own running top-k:
     the DMA-bytes-only bound is admissible, so a candidate is skipped only
     when its bound strictly exceeds the chunk's k-th best full estimate —
     such a candidate cannot enter the top-k, and the full estimate plus the
     structural Ir_check are never paid for it. *)
  let score base chunk =
    let tk = Topk.create top_k in
    let pruned = ref 0 in
    let rejected = ref [] in
    Array.iteri
      (fun j c ->
        let p = optimize (build c) in
        if prune && Cost_model.dma_lower_bound p > Topk.threshold tk then incr pruned
        else begin
          let p = checked p in
          match Ir_verify.errors (Ir_verify.verify p) with
          | _ :: _ as errs -> rejected := add_rejections !rejected (rejection_codes errs)
          | [] ->
            let e = Cost_model.estimate ~gemm_model p in
            Topk.insert tk
              { Topk.k_index = base + j; k_cand = c; k_program = p; k_seconds = e.total_seconds }
        end)
      chunk;
    (tk.Topk.entries, !pruned, !rejected)
  in
  let chunk_results = Prelude.Parallel.map_chunks ?jobs ~f:score arr in
  let merged = Topk.create top_k in
  List.iter (fun (entries, _, _) -> List.iter (Topk.insert merged) entries) chunk_results;
  let pruned = List.fold_left (fun acc (_, p, _) -> acc + p) 0 chunk_results in
  let verify_rejected =
    sorted_rejections (List.fold_left (fun acc (_, _, rs) -> merge_rejections acc rs) [] chunk_results)
  in
  if merged.Topk.entries = [] then
    invalid_arg
      (Printf.sprintf "Tuner.model_tune: every candidate rejected by the IR verifier (%s)"
         (rejections_summary verify_rejected));
  let wall_scored = Prelude.Clock.wall () in
  (* The finalists are compiled and timed on the machine; with top_k = 1
     that is just the winner's validation run. *)
  let measured =
    List.map
      (fun (e : _ Topk.entry) -> (e, (Interp.run ~numeric:false e.k_program).seconds))
      merged.Topk.entries
  in
  let best_entry, best_seconds =
    match measured with
    | [] -> assert false
    | first :: rest ->
      List.fold_left (fun (be, bs) (e, s) -> if s < bs then (e, s) else (be, bs)) first rest
  in
  let wall1 = Prelude.Clock.wall () in
  let finalist_hw =
    Prelude.Lists.sum_float (fun (_, s) -> per_candidate_compile_seconds +. s) measured
  in
  let space_size = Array.length arr in
  {
    best = best_entry.Topk.k_cand;
    best_index = best_entry.Topk.k_index;
    best_program = best_entry.Topk.k_program;
    best_seconds;
    report =
      {
        space_size;
        evaluated = space_size - pruned;
        pruned;
        verify_rejected;
        cache_hit = false;
        jobs = effective_jobs jobs;
        wall_seconds = wall1 -. wall0;
        cpu_seconds = Sys.time () -. cpu0;
        score_seconds = wall_scored -. wall0;
        measure_seconds = wall1 -. wall_scored;
        hardware_seconds = finalist_hw;
      };
  }

(* ------------------------------------------------------------------ *)
(* Brute-force baseline (Sec. 5.2). *)

let blackbox_tune ?(repetitions = 3) ?(sample_every = 1) ?jobs ~candidates ~build () =
  let candidates = require_nonempty candidates in
  if sample_every <= 0 then invalid_arg "Tuner.blackbox_tune: sample_every must be positive";
  let measured_candidates = Array.of_list (Prelude.Lists.take_every sample_every candidates) in
  let wall0 = Prelude.Clock.wall () and cpu0 = Sys.time () in
  (* Per-candidate simulated times land in a shared array at disjoint
     indices; the hardware-time sum below then folds it sequentially, so the
     report is bit-identical whatever the job count. *)
  let seconds = Array.make (Array.length measured_candidates) 0.0 in
  (* Rejected candidates are never compiled or run, so they must not
     contribute compile overhead to the hardware-time account either. *)
  let skipped = Array.make (Array.length measured_candidates) false in
  let measure base chunk =
    let best = ref None in
    let rejected = ref [] in
    Array.iteri
      (fun j c ->
        let p = prepare (build c) in
        match Ir_verify.errors (Ir_verify.verify p) with
        | _ :: _ as errs ->
          skipped.(base + j) <- true;
          rejected := add_rejections !rejected (rejection_codes errs)
        | [] -> (
          let s = (Interp.run ~numeric:false p).seconds in
          seconds.(base + j) <- s;
          match !best with
          | Some (_, _, bs) when bs <= s -> ()
          | _ -> best := Some (base + j, p, s)))
      chunk;
    (!best, !rejected)
  in
  let chunk_results = Prelude.Parallel.map_chunks ?jobs ~f:measure measured_candidates in
  let verify_rejected =
    sorted_rejections (List.fold_left (fun acc (_, rs) -> merge_rejections acc rs) [] chunk_results)
  in
  let best_index, best_program, best_seconds =
    match
      List.fold_left
        (fun acc (b, _) ->
          match (acc, b) with
          | None, b -> b
          | acc, None -> acc
          | Some (_, _, bs), Some (_, _, s) when bs <= s -> acc
          | _, b -> b)
        None chunk_results
    with
    | Some b -> b
    | None ->
      invalid_arg
        (Printf.sprintf "Tuner.blackbox_tune: every candidate rejected by the IR verifier (%s)"
           (rejections_summary verify_rejected))
  in
  let wall1 = Prelude.Clock.wall () in
  let measured_hw = ref 0.0 in
  Array.iteri
    (fun i s ->
      if not skipped.(i) then
        measured_hw := !measured_hw +. (float_of_int repetitions *. s) +. per_candidate_compile_seconds)
    seconds;
  let measured_hw = !measured_hw in
  {
    best = measured_candidates.(best_index);
    (* Index into the original candidate list: take_every keeps every
       [sample_every]-th element starting at 0. *)
    best_index = best_index * sample_every;
    best_program;
    best_seconds;
    report =
      {
        space_size = List.length candidates;
        evaluated = Array.length measured_candidates;
        pruned = 0;
        verify_rejected;
        cache_hit = false;
        jobs = effective_jobs jobs;
        wall_seconds = wall1 -. wall0;
        cpu_seconds = Sys.time () -. cpu0;
        score_seconds = wall1 -. wall0;
        measure_seconds = 0.0;
        hardware_seconds = measured_hw *. float_of_int sample_every;
      };
  }
