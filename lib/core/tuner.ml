type report = {
  space_size : int;
  evaluated : int;
  pruned : int;
  verify_rejected : (string * int) list;
  scored_failed : (string * int) list;
  cache_hit : bool;
  jobs : int;
  wall_seconds : float;
  cpu_seconds : float;
  score_seconds : float;
  measure_seconds : float;
  hardware_seconds : float;
  measured : int;
  batches : int;
  model_rmse : float;
  predicted_seconds : float;
}

type 'a outcome = {
  best : 'a;
  best_index : int;
  best_program : Ir.program;
  best_seconds : float;
  report : report;
}

let per_candidate_compile_seconds = 40.0

let optimize p = Prefetch.apply (Dma_inference.apply p)

let checked p =
  match Ir_check.check p with
  | Ok () -> p
  | Error errs ->
    invalid_arg
      (Printf.sprintf "Tuner.prepare: invalid program %s: %s" p.Ir.prog_name
         (String.concat "; " (List.map Ir_check.error_to_string errs)))

let prepare p = checked (optimize p)

let require_nonempty = function
  | [] -> invalid_arg "Tuner: empty schedule space"
  | l -> l

let effective_jobs jobs = match jobs with Some j -> max 1 j | None -> Prelude.Parallel.jobs ()

(* Per-code counts of verifier rejections. A rejected candidate counts once
   per distinct code it tripped; summing per-chunk counts keeps the totals
   independent of chunking and evaluation order. *)
let rejection_codes diags =
  List.sort_uniq String.compare (List.map (fun d -> d.Ir_verify.code) diags)

(* Per-CPE dataflow errors and cross-CPE race errors together gate
   measurement: a candidate whose CPEs race each other through main memory
   is as unusable as one that corrupts its own SPM. *)
let verify_errors p = Ir_verify.errors (Ir_verify.verify p) @ Ir_verify.errors (Ir_race.verify p)

let merge_rejections acc counts =
  List.fold_left
    (fun acc (c, n) ->
      let m = Option.value ~default:0 (List.assoc_opt c acc) in
      (c, m + n) :: List.remove_assoc c acc)
    acc counts

let add_rejections acc codes = merge_rejections acc (List.map (fun c -> (c, 1)) codes)

let sorted_rejections l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let rejections_summary l =
  String.concat ", " (List.map (fun (c, n) -> Printf.sprintf "%s x%d" c n) (sorted_rejections l))

(* ------------------------------------------------------------------ *)
(* Bounded top-k selection.

   Entries are kept ascending by (seconds, index); the lexicographic index
   tie-break makes the selected set independent of both evaluation order and
   chunking, so parallel runs return exactly the sequential result. Entries
   carry only (index, candidate, estimated seconds) — never IR — so a chunk
   summary round-trips through a checkpoint file unchanged; the few
   finalists' programs are rebuilt deterministically after the merge. *)

module Topk = struct
  type 'a entry = { k_index : int; k_cand : 'a; k_seconds : float }

  type 'a t = { cap : int; mutable entries : 'a entry list; mutable count : int }

  let create cap = { cap; entries = []; count = 0 }

  let precedes a b =
    a.k_seconds < b.k_seconds || (a.k_seconds = b.k_seconds && a.k_index < b.k_index)

  (* +infinity until the selection is full: nothing may be pruned before k
     candidates have been fully estimated. *)
  let threshold t =
    if t.count < t.cap then infinity
    else (List.nth t.entries (t.count - 1)).k_seconds

  let insert t e =
    let rec ins = function
      | [] -> [ e ]
      | x :: rest -> if precedes e x then e :: x :: rest else x :: ins rest
    in
    let entries = ins t.entries in
    if t.count < t.cap then begin
      t.entries <- entries;
      t.count <- t.count + 1
    end
    else t.entries <- List.filteri (fun i _ -> i < t.cap) entries
end

(* ------------------------------------------------------------------ *)
(* Model-based tuner (Sec. 4.6) with branch-and-bound pruning. *)

let model_tune ?(top_k = 1) ?(prune = true) ?jobs ?checkpoint ~gemm_model ~candidates ~build () =
  let candidates = require_nonempty candidates in
  if top_k < 1 then invalid_arg "Tuner.model_tune: top_k must be positive";
  let arr = Array.of_list candidates in
  let space_size = Array.length arr in
  let wall0 = Prelude.Clock.wall () and cpu0 = Sys.time () in
  (* Resume: chunk summaries from an interrupted run are reused verbatim when
     their (start, len) matches this run's chunking — per-chunk scoring is
     deterministic, so a reused summary equals what re-scoring would give. *)
  let resumed : (int * int, Tune_checkpoint.chunk) Hashtbl.t = Hashtbl.create 8 in
  (match checkpoint with
  | None -> ()
  | Some cx -> (
    match Tune_checkpoint.load cx.Tune_checkpoint.cx_path with
    | Some t
      when Tune_checkpoint.matches t ~key:cx.cx_key ~fingerprint:cx.cx_fingerprint
             ~space:space_size ~top_k ->
      List.iter
        (fun c -> Hashtbl.replace resumed (c.Tune_checkpoint.c_start, c.c_len) c)
        t.Tune_checkpoint.ck_chunks
    | _ -> ()));
  let ck_mutex = Mutex.create () in
  let ck_done : Tune_checkpoint.chunk list ref = ref [] in
  let record_chunk c =
    match checkpoint with
    | None -> ()
    | Some cx ->
      Mutex.lock ck_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock ck_mutex)
        (fun () ->
          ck_done := c :: !ck_done;
          Tune_checkpoint.save cx.Tune_checkpoint.cx_path
            {
              Tune_checkpoint.ck_key = cx.cx_key;
              ck_fingerprint = cx.cx_fingerprint;
              ck_space = space_size;
              ck_top_k = top_k;
              ck_chunks = !ck_done;
            })
  in
  (* Each chunk runs an ordered sequential scan with its own running top-k:
     the DMA-bytes-only bound is admissible, so a candidate is skipped only
     when its bound strictly exceeds the chunk's k-th best full estimate —
     such a candidate cannot enter the top-k, and the full estimate plus the
     structural Ir_check are never paid for it.

     A candidate whose build/optimization/estimate raises is captured — not
     propagated — and counted per exception label: one bad schedule must not
     sink the whole space. The "tuner.score" fault site is keyed by candidate
     index, so an injected probability plan fails the same candidate set
     whatever the job count. *)
  let score base chunk =
    match Hashtbl.find_opt resumed (base, Array.length chunk) with
    | Some c ->
      record_chunk c;
      ( List.map (fun (i, s) -> { Topk.k_index = i; k_cand = arr.(i); k_seconds = s }) c.c_entries,
        c.c_pruned,
        c.c_rejected,
        c.c_failed )
    | None ->
      let tk = Topk.create top_k in
      let pruned = ref 0 in
      let rejected = ref [] in
      let failed = ref [] in
      Array.iteri
        (fun j c ->
          let index = base + j in
          match
            Prelude.Fault.check ~key:index "tuner.score";
            let p = optimize (build c) in
            if prune && Cost_model.dma_lower_bound p > Topk.threshold tk then `Pruned
            else begin
              let p = checked p in
              match verify_errors p with
              | _ :: _ as errs -> `Rejected (rejection_codes errs)
              | [] -> `Scored (Cost_model.estimate ~gemm_model p).total_seconds
            end
          with
          | `Pruned -> incr pruned
          | `Rejected codes -> rejected := add_rejections !rejected codes
          | `Scored s -> Topk.insert tk { Topk.k_index = index; k_cand = c; k_seconds = s }
          | exception e ->
            failed := merge_rejections !failed [ (Prelude.Swatop_error.label e, 1) ])
        chunk;
      let entries = tk.Topk.entries in
      record_chunk
        {
          Tune_checkpoint.c_start = base;
          c_len = Array.length chunk;
          c_pruned = !pruned;
          c_entries = List.map (fun (e : _ Topk.entry) -> (e.k_index, e.k_seconds)) entries;
          c_rejected = sorted_rejections !rejected;
          c_failed = sorted_rejections !failed;
        };
      (* The abort site sits at the chunk boundary, outside the per-candidate
         capture: an injected "tuner.abort" kills the tune exactly as an
         external SIGKILL between chunks would, leaving the checkpoint file
         behind for the resume tests. *)
      Prelude.Fault.check "tuner.abort";
      (entries, !pruned, !rejected, !failed)
  in
  let chunk_results = Prelude.Parallel.map_chunks ?jobs ~f:score arr in
  let merged = Topk.create top_k in
  List.iter (fun (entries, _, _, _) -> List.iter (Topk.insert merged) entries) chunk_results;
  let pruned = List.fold_left (fun acc (_, p, _, _) -> acc + p) 0 chunk_results in
  let verify_rejected =
    sorted_rejections
      (List.fold_left (fun acc (_, _, rs, _) -> merge_rejections acc rs) [] chunk_results)
  in
  let score_failed =
    List.fold_left (fun acc (_, _, _, fs) -> merge_rejections acc fs) [] chunk_results
  in
  if merged.Topk.entries = [] then
    if score_failed = [] then
      invalid_arg
        (Printf.sprintf "Tuner.model_tune: every candidate rejected by the IR verifier (%s)"
           (rejections_summary verify_rejected))
    else
      Prelude.Swatop_error.error ~site:"tuner.model_tune"
        ~context:
          (("failed", rejections_summary score_failed)
          :: (if verify_rejected = [] then [] else [ ("rejected", rejections_summary verify_rejected) ]))
        "every candidate failed or was rejected";
  let wall_scored = Prelude.Clock.wall () in
  (* The finalists' programs are rebuilt (entries hold no IR so they can
     round-trip through a checkpoint), then compiled and timed on the
     machine; with top_k = 1 that is just the winner's validation run. A
     finalist that fails measurement is skipped and counted, and the
     next-best finalist wins instead. *)
  let measure_failed = ref [] in
  let measured =
    List.filter_map
      (fun (e : _ Topk.entry) ->
        match
          let p = checked (optimize (build e.k_cand)) in
          (p, (Interp.run ~numeric:false p).seconds)
        with
        | p, s -> Some (e, p, s)
        | exception ex ->
          measure_failed := merge_rejections !measure_failed [ (Prelude.Swatop_error.label ex, 1) ];
          None)
      merged.Topk.entries
  in
  let scored_failed =
    sorted_rejections (merge_rejections score_failed !measure_failed)
  in
  let best_entry, best_program, best_seconds =
    match measured with
    | [] ->
      Prelude.Swatop_error.error ~site:"tuner.model_tune"
        ~context:[ ("failed", rejections_summary scored_failed) ]
        "every finalist failed measurement"
    | (e0, p0, s0) :: rest ->
      List.fold_left
        (fun (be, bp, bs) (e, p, s) -> if s < bs then (e, p, s) else (be, bp, bs))
        (e0, p0, s0) rest
  in
  (match checkpoint with
  | Some cx -> Tune_checkpoint.clear cx.Tune_checkpoint.cx_path
  | None -> ());
  let wall1 = Prelude.Clock.wall () in
  let finalist_hw =
    Prelude.Lists.sum_float (fun (_, _, s) -> per_candidate_compile_seconds +. s) measured
  in
  {
    best = best_entry.Topk.k_cand;
    best_index = best_entry.Topk.k_index;
    best_program;
    best_seconds;
    report =
      {
        space_size;
        evaluated = space_size - pruned;
        pruned;
        verify_rejected;
        scored_failed;
        cache_hit = false;
        jobs = effective_jobs jobs;
        wall_seconds = wall1 -. wall0;
        cpu_seconds = Sys.time () -. cpu0;
        score_seconds = wall_scored -. wall0;
        measure_seconds = wall1 -. wall_scored;
        hardware_seconds = finalist_hw;
        measured = List.length measured;
        batches = 0;
        model_rmse = 0.0;
        predicted_seconds = best_entry.Topk.k_seconds;
      };
  }

(* ------------------------------------------------------------------ *)
(* Brute-force baseline (Sec. 5.2). *)

let blackbox_tune ?(repetitions = 3) ?(sample_every = 1) ?jobs ~candidates ~build () =
  let candidates = require_nonempty candidates in
  if sample_every <= 0 then invalid_arg "Tuner.blackbox_tune: sample_every must be positive";
  let measured_candidates = Array.of_list (Prelude.Lists.take_every sample_every candidates) in
  let wall0 = Prelude.Clock.wall () and cpu0 = Sys.time () in
  (* Per-candidate simulated times land in a shared array at disjoint
     indices; the hardware-time sum below then folds it sequentially, so the
     report is bit-identical whatever the job count. *)
  let seconds = Array.make (Array.length measured_candidates) 0.0 in
  (* Rejected candidates are never compiled or run, so they must not
     contribute compile overhead to the hardware-time account either. *)
  let skipped = Array.make (Array.length measured_candidates) false in
  let measure base chunk =
    let best = ref None in
    let rejected = ref [] in
    let failed = ref [] in
    Array.iteri
      (fun j c ->
        match
          Prelude.Fault.check ~key:(base + j) "tuner.score";
          let p = prepare (build c) in
          match verify_errors p with
          | _ :: _ as errs -> `Rejected (rejection_codes errs)
          | [] -> `Measured (p, (Interp.run ~numeric:false p).seconds)
        with
        | `Rejected codes ->
          skipped.(base + j) <- true;
          rejected := add_rejections !rejected codes
        | `Measured (p, s) -> (
          seconds.(base + j) <- s;
          match !best with
          | Some (_, _, bs) when bs <= s -> ()
          | _ -> best := Some (base + j, p, s))
        | exception e ->
          skipped.(base + j) <- true;
          failed := merge_rejections !failed [ (Prelude.Swatop_error.label e, 1) ])
      chunk;
    (!best, !rejected, !failed)
  in
  let chunk_results = Prelude.Parallel.map_chunks ?jobs ~f:measure measured_candidates in
  let verify_rejected =
    sorted_rejections
      (List.fold_left (fun acc (_, rs, _) -> merge_rejections acc rs) [] chunk_results)
  in
  let scored_failed =
    sorted_rejections
      (List.fold_left (fun acc (_, _, fs) -> merge_rejections acc fs) [] chunk_results)
  in
  let best_index, best_program, best_seconds =
    match
      List.fold_left
        (fun acc (b, _, _) ->
          match (acc, b) with
          | None, b -> b
          | acc, None -> acc
          | Some (_, _, bs), Some (_, _, s) when bs <= s -> acc
          | _, b -> b)
        None chunk_results
    with
    | Some b -> b
    | None ->
      if scored_failed = [] then
        invalid_arg
          (Printf.sprintf "Tuner.blackbox_tune: every candidate rejected by the IR verifier (%s)"
             (rejections_summary verify_rejected))
      else
        Prelude.Swatop_error.error ~site:"tuner.blackbox_tune"
          ~context:
            (("failed", rejections_summary scored_failed)
            :: (if verify_rejected = [] then []
                else [ ("rejected", rejections_summary verify_rejected) ]))
          "every candidate failed or was rejected"
  in
  let wall1 = Prelude.Clock.wall () in
  let measured_hw = ref 0.0 in
  Array.iteri
    (fun i s ->
      if not skipped.(i) then
        measured_hw := !measured_hw +. (float_of_int repetitions *. s) +. per_candidate_compile_seconds)
    seconds;
  let measured_hw = !measured_hw in
  {
    best = measured_candidates.(best_index);
    (* Index into the original candidate list: take_every keeps every
       [sample_every]-th element starting at 0. *)
    best_index = best_index * sample_every;
    best_program;
    best_seconds;
    report =
      {
        space_size = List.length candidates;
        evaluated = Array.length measured_candidates;
        pruned = 0;
        verify_rejected;
        scored_failed;
        cache_hit = false;
        jobs = effective_jobs jobs;
        wall_seconds = wall1 -. wall0;
        cpu_seconds = Sys.time () -. cpu0;
        score_seconds = wall1 -. wall0;
        measure_seconds = 0.0;
        hardware_seconds = measured_hw *. float_of_int sample_every;
        measured =
          (let m = ref 0 in
           Array.iter (fun s -> if not s then incr m) skipped;
           !m);
        batches = 0;
        model_rmse = 0.0;
        predicted_seconds = 0.0;
      };
  }

(* ------------------------------------------------------------------ *)
(* Guided tuner: learned cost model + batched search (ROADMAP item 2).

   Replaces "measure everything" with an AutoTVM-style loop: featurize the
   whole space once, then alternate proposing a small measurement batch
   (prediction-ranked exploitation + epsilon-greedy exploration + a
   simulated-annealing walk over the prediction surface) with refitting a
   ridge model on the measurements so far. Only the batches ever touch the
   simulated machine, so [hardware_seconds] shrinks with the measurement
   count rather than the space size.

   Determinism is structural, not incidental: batch composition is decided
   on the coordinating thread between batches, all randomness flows through
   [Prelude.Det_rng] keyed by (seed, site, decision index), and the
   measurement fan-out reuses [Parallel.map_chunks] whose results are
   independent of the job count — so a guided tune replays exactly for a
   given seed, whatever [?jobs] is. *)

type guided_config = {
  gc_seed : int;
  gc_batch : int;
  gc_budget : int;
  gc_epsilon : float;
  gc_sa_steps : int;
  gc_patience : int;
  gc_min_batches : int;
  gc_warm : Learned_model.weights option;
}

let guided_defaults ~seed =
  {
    gc_seed = seed;
    gc_batch = 8;
    gc_budget = 0;
    gc_epsilon = 0.15;
    gc_sa_steps = 32;
    gc_patience = 2;
    gc_min_batches = 3;
    gc_warm = None;
  }

type search = Exhaustive | Guided of guided_config

let guided_tune ?jobs ~config:cfg ~candidates ~build () =
  let candidates = require_nonempty candidates in
  if cfg.gc_batch < 1 then invalid_arg "Tuner.guided_tune: batch must be positive";
  if cfg.gc_epsilon < 0.0 || cfg.gc_epsilon > 1.0 then
    invalid_arg "Tuner.guided_tune: epsilon must be in [0, 1]";
  let arr = Array.of_list candidates in
  let n = Array.length arr in
  let seed = cfg.gc_seed in
  let wall0 = Prelude.Clock.wall () and cpu0 = Sys.time () in
  (* Phase 1: featurize and verify the whole space in parallel. Verification
     here is what keeps unsound schedules out of the search permanently: a
     rejected candidate never becomes eligible for measurement, exactly as in
     the exhaustive tuners. Per-candidate crashes are captured and counted,
     never propagated. *)
  let featurize _base chunk =
    Array.map
      (fun c ->
        match
          let p = optimize (build c) in
          match verify_errors p with
          | _ :: _ as errs -> `Rejected (rejection_codes errs)
          | [] -> `Feat (Sched_features.of_program (checked p))
        with
        | r -> r
        | exception e -> `Failed (Prelude.Swatop_error.label e))
      chunk
  in
  let chunked = Prelude.Parallel.map_chunks ?jobs ~f:featurize arr in
  let features = Array.make n None in
  let verify_rejected = ref [] and failed = ref [] in
  let pos = ref 0 in
  List.iter
    (fun res ->
      Array.iter
        (fun r ->
          (match r with
          | `Feat f -> features.(!pos) <- Some f
          | `Rejected codes -> verify_rejected := add_rejections !verify_rejected codes
          | `Failed l -> failed := merge_rejections !failed [ (l, 1) ]);
          incr pos)
        res)
    chunked;
  if Array.for_all Option.is_none features then
    if !failed = [] then
      invalid_arg
        (Printf.sprintf "Tuner.guided_tune: every candidate rejected by the IR verifier (%s)"
           (rejections_summary !verify_rejected))
    else
      Prelude.Swatop_error.error ~site:"tuner.guided_tune"
        ~context:
          (("failed", rejections_summary !failed)
          :: (if !verify_rejected = [] then []
              else [ ("rejected", rejections_summary !verify_rejected) ]))
        "every candidate failed or was rejected";
  let wall_featurized = Prelude.Clock.wall () in
  (* Phase 2: the propose/measure/refit loop. *)
  let model = Learned_model.create ?warm:cfg.gc_warm ~dim:Sched_features.dim () in
  let alive = Array.map Option.is_some features in
  let eligible = Array.fold_left (fun a b -> if b then a + 1 else a) 0 alive in
  let budget =
    let auto = max (cfg.gc_batch * cfg.gc_min_batches) (n / 10) in
    min eligible (if cfg.gc_budget > 0 then cfg.gc_budget else auto)
  in
  let feat i = Option.get features.(i) in
  let predict i =
    match Learned_model.predict model (feat i) with Some p -> p | None -> infinity
  in
  let remaining () =
    let l = ref [] in
    for i = n - 1 downto 0 do
      if alive.(i) then l := i :: !l
    done;
    Array.of_list !l
  in
  (* One SA walk per batch over the prediction surface, restricted to
     unmeasured candidates: start at the greedy front-runner, take bounded
     index jumps, accept uphill moves with probability exp(-relative
     regression / temperature), and return the best state visited. The
     temperature decays per batch, so late batches refine locally while early
     ones still tunnel out of a misleading prediction basin. *)
  let sa_pick ~batch_no rem start_pos =
    let len = Array.length rem in
    let radius = max 1 (len / 16) in
    let temp = 0.3 *. (0.7 ** float_of_int batch_no) in
    let cur = ref start_pos and cur_cost = ref (predict rem.(start_pos)) in
    let best = ref start_pos and best_cost = ref !cur_cost in
    for s = 0 to cfg.gc_sa_steps - 1 do
      let k = (batch_no * 8192) + s in
      let jump = Prelude.Det_rng.int ~seed ~site:"tuner.guided.sa.step" ~k ((2 * radius) + 1) - radius in
      let p = (((!cur + jump) mod len) + len) mod len in
      let c = predict rem.(p) in
      let accept =
        c < !cur_cost
        || !cur_cost > 0.0
           && Prelude.Det_rng.uniform ~seed ~site:"tuner.guided.sa.accept" ~k
              < exp (-.(c -. !cur_cost) /. (temp *. !cur_cost))
      in
      if accept then begin
        cur := p;
        cur_cost := c;
        if c < !best_cost then begin
          best := p;
          best_cost := c
        end
      end
    done;
    rem.(!best)
  in
  let pick_batch ~batch_no ~left =
    let rem = remaining () in
    let len = Array.length rem in
    let b = min (min cfg.gc_batch left) len in
    if b <= 0 then []
    else if not (Learned_model.fitted model) then
      (* Cold start: an even spread over the (generation-ordered) space is
         the best coverage a model-free batch can buy. *)
      List.init b (fun j -> rem.(j * len / b))
    else begin
      let ranked = Array.copy rem in
      Array.sort
        (fun a b ->
          let c = compare (predict a) (predict b) in
          if c <> 0 then c else compare a b)
        ranked;
      let explore_n =
        if b >= 2 then min (b - 1) (int_of_float (Float.round (cfg.gc_epsilon *. float_of_int b)))
        else 0
      in
      let sa_n = if cfg.gc_sa_steps > 0 && b - explore_n >= 2 && len >= 2 then 1 else 0 in
      let picks = ref [] in
      let count = ref 0 in
      let add i =
        if !count < b && not (List.mem i !picks) then begin
          picks := i :: !picks;
          incr count
        end
      in
      Array.iteri (fun r i -> if r < b - explore_n - sa_n then add i) ranked;
      if sa_n > 0 then add (sa_pick ~batch_no rem (ranked.(0) |> fun top ->
        (* SA starts at the greedy front-runner's position in [rem]. *)
        let p = ref 0 in
        Array.iteri (fun j i -> if i = top then p := j) rem;
        !p));
      for e = 0 to explore_n - 1 do
        add rem.(Prelude.Det_rng.int ~seed ~site:"tuner.guided.explore" ~k:((batch_no * 4096) + e) len)
      done;
      (* Epsilon picks can collide with exploitation picks; top up from the
         ranking so the batch stays full. *)
      Array.iter (fun i -> if !count < b then add i) ranked;
      List.rev !picks
    end
  in
  let measure_batch picks =
    let parr = Array.of_list (List.sort_uniq compare picks) in
    let run _base chunk =
      Array.map
        (fun index ->
          match
            Prelude.Fault.check ~key:index "tuner.score";
            let p = checked (optimize (build arr.(index))) in
            (p, (Interp.run ~numeric:false p).seconds)
          with
          | p, s -> (index, Ok (p, s))
          | exception e -> (index, Error (Prelude.Swatop_error.label e)))
        chunk
    in
    List.concat_map Array.to_list (Prelude.Parallel.map_chunks ?jobs ~f:run parr)
  in
  let measured = ref 0 and attempts = ref 0 and batches = ref 0 in
  let hw = ref 0.0 in
  let best = ref None in
  let stale = ref 0 in
  let stop = ref false in
  while not !stop do
    let picks = pick_batch ~batch_no:!batches ~left:(budget - !attempts) in
    if picks = [] then stop := true
    else begin
      let before = match !best with Some (_, _, s) -> s | None -> infinity in
      List.iter
        (fun (index, r) ->
          alive.(index) <- false;
          incr attempts;
          match r with
          | Ok (p, s) ->
            incr measured;
            hw := !hw +. per_candidate_compile_seconds +. s;
            Learned_model.observe model (feat index) s;
            (match !best with
            | Some (_, _, bs) when bs <= s -> ()
            | _ -> best := Some (index, p, s))
          | Error l -> failed := merge_rejections !failed [ (l, 1) ])
        (measure_batch picks);
      Learned_model.fit model;
      incr batches;
      let after = match !best with Some (_, _, s) -> s | None -> infinity in
      if Float.is_finite after && after > 0.0 && (before -. after) /. after < 0.005 then incr stale
      else stale := 0;
      if !attempts >= budget && !batches >= cfg.gc_min_batches then stop := true;
      if !stale >= cfg.gc_patience && !batches >= cfg.gc_min_batches then stop := true
    end
  done;
  let best_index, best_program, best_seconds =
    match !best with
    | Some b -> b
    | None ->
      Prelude.Swatop_error.error ~site:"tuner.guided_tune"
        ~context:[ ("failed", rejections_summary (sorted_rejections !failed)) ]
        "every measured candidate failed"
  in
  let wall1 = Prelude.Clock.wall () in
  let predicted_seconds =
    match Learned_model.predict model (feat best_index) with Some p -> p | None -> best_seconds
  in
  let outcome =
    {
      best = arr.(best_index);
      best_index;
      best_program;
      best_seconds;
      report =
        {
          space_size = n;
          evaluated = n;
          pruned = 0;
          verify_rejected = sorted_rejections !verify_rejected;
          scored_failed = sorted_rejections !failed;
          cache_hit = false;
          jobs = effective_jobs jobs;
          wall_seconds = wall1 -. wall0;
          cpu_seconds = Sys.time () -. cpu0;
          score_seconds = wall_featurized -. wall0;
          measure_seconds = wall1 -. wall_featurized;
          hardware_seconds = !hw;
          measured = !measured;
          batches = !batches;
          model_rmse = Learned_model.rmse_log model;
          predicted_seconds;
        };
    }
  in
  (outcome, Learned_model.weights model)

let tune ?top_k ?prune ?jobs ?checkpoint ?(search = Exhaustive) ~gemm_model ~candidates ~build () =
  match search with
  | Exhaustive ->
    (model_tune ?top_k ?prune ?jobs ?checkpoint ~gemm_model ~candidates ~build (), None)
  | Guided cfg -> guided_tune ?jobs ~config:cfg ~candidates ~build ()
