type report = {
  space_size : int;
  evaluated : int;
  pruned : int;
  cache_hit : bool;
  jobs : int;
  wall_seconds : float;
  cpu_seconds : float;
  score_seconds : float;
  measure_seconds : float;
  hardware_seconds : float;
}

type 'a outcome = {
  best : 'a;
  best_index : int;
  best_program : Ir.program;
  best_seconds : float;
  report : report;
}

let per_candidate_compile_seconds = 40.0

let optimize p = Prefetch.apply (Dma_inference.apply p)

let checked p =
  match Ir_check.check p with
  | Ok () -> p
  | Error errs ->
    invalid_arg
      (Printf.sprintf "Tuner.prepare: invalid program %s: %s" p.Ir.prog_name
         (String.concat "; " (List.map Ir_check.error_to_string errs)))

let prepare p = checked (optimize p)

let require_nonempty = function
  | [] -> invalid_arg "Tuner: empty schedule space"
  | l -> l

let effective_jobs jobs = match jobs with Some j -> max 1 j | None -> Prelude.Parallel.jobs ()

(* ------------------------------------------------------------------ *)
(* Bounded top-k selection.

   Entries are kept ascending by (seconds, index); the lexicographic index
   tie-break makes the selected set independent of both evaluation order and
   chunking, so parallel runs return exactly the sequential result. Only the
   k best programs are ever retained — the rest of the space's IR is dropped
   as soon as it has been scored, instead of materializing every prepared
   program for one global sort. *)

module Topk = struct
  type 'a entry = { k_index : int; k_cand : 'a; k_program : Ir.program; k_seconds : float }

  type 'a t = { cap : int; mutable entries : 'a entry list; mutable count : int }

  let create cap = { cap; entries = []; count = 0 }

  let precedes a b =
    a.k_seconds < b.k_seconds || (a.k_seconds = b.k_seconds && a.k_index < b.k_index)

  (* +infinity until the selection is full: nothing may be pruned before k
     candidates have been fully estimated. *)
  let threshold t =
    if t.count < t.cap then infinity
    else (List.nth t.entries (t.count - 1)).k_seconds

  let insert t e =
    let rec ins = function
      | [] -> [ e ]
      | x :: rest -> if precedes e x then e :: x :: rest else x :: ins rest
    in
    let entries = ins t.entries in
    if t.count < t.cap then begin
      t.entries <- entries;
      t.count <- t.count + 1
    end
    else t.entries <- List.filteri (fun i _ -> i < t.cap) entries
end

(* ------------------------------------------------------------------ *)
(* Model-based tuner (Sec. 4.6) with branch-and-bound pruning. *)

let model_tune ?(top_k = 1) ?(prune = true) ?jobs ~gemm_model ~candidates ~build () =
  let candidates = require_nonempty candidates in
  if top_k < 1 then invalid_arg "Tuner.model_tune: top_k must be positive";
  let arr = Array.of_list candidates in
  let wall0 = Prelude.Clock.wall () and cpu0 = Sys.time () in
  (* Each chunk runs an ordered sequential scan with its own running top-k:
     the DMA-bytes-only bound is admissible, so a candidate is skipped only
     when its bound strictly exceeds the chunk's k-th best full estimate —
     such a candidate cannot enter the top-k, and the full estimate plus the
     structural Ir_check are never paid for it. *)
  let score base chunk =
    let tk = Topk.create top_k in
    let pruned = ref 0 in
    Array.iteri
      (fun j c ->
        let p = optimize (build c) in
        if prune && Cost_model.dma_lower_bound p > Topk.threshold tk then incr pruned
        else begin
          let p = checked p in
          let e = Cost_model.estimate ~gemm_model p in
          Topk.insert tk
            { Topk.k_index = base + j; k_cand = c; k_program = p; k_seconds = e.total_seconds }
        end)
      chunk;
    (tk.Topk.entries, !pruned)
  in
  let chunk_results = Prelude.Parallel.map_chunks ?jobs ~f:score arr in
  let merged = Topk.create top_k in
  List.iter (fun (entries, _) -> List.iter (Topk.insert merged) entries) chunk_results;
  let pruned = List.fold_left (fun acc (_, p) -> acc + p) 0 chunk_results in
  let wall_scored = Prelude.Clock.wall () in
  (* The finalists are compiled and timed on the machine; with top_k = 1
     that is just the winner's validation run. *)
  let measured =
    List.map
      (fun (e : _ Topk.entry) -> (e, (Interp.run ~numeric:false e.k_program).seconds))
      merged.Topk.entries
  in
  let best_entry, best_seconds =
    match measured with
    | [] -> assert false
    | first :: rest ->
      List.fold_left (fun (be, bs) (e, s) -> if s < bs then (e, s) else (be, bs)) first rest
  in
  let wall1 = Prelude.Clock.wall () in
  let finalist_hw =
    Prelude.Lists.sum_float (fun (_, s) -> per_candidate_compile_seconds +. s) measured
  in
  let space_size = Array.length arr in
  {
    best = best_entry.Topk.k_cand;
    best_index = best_entry.Topk.k_index;
    best_program = best_entry.Topk.k_program;
    best_seconds;
    report =
      {
        space_size;
        evaluated = space_size - pruned;
        pruned;
        cache_hit = false;
        jobs = effective_jobs jobs;
        wall_seconds = wall1 -. wall0;
        cpu_seconds = Sys.time () -. cpu0;
        score_seconds = wall_scored -. wall0;
        measure_seconds = wall1 -. wall_scored;
        hardware_seconds = finalist_hw;
      };
  }

(* ------------------------------------------------------------------ *)
(* Brute-force baseline (Sec. 5.2). *)

let blackbox_tune ?(repetitions = 3) ?(sample_every = 1) ?jobs ~candidates ~build () =
  let candidates = require_nonempty candidates in
  if sample_every <= 0 then invalid_arg "Tuner.blackbox_tune: sample_every must be positive";
  let measured_candidates = Array.of_list (Prelude.Lists.take_every sample_every candidates) in
  let wall0 = Prelude.Clock.wall () and cpu0 = Sys.time () in
  (* Per-candidate simulated times land in a shared array at disjoint
     indices; the hardware-time sum below then folds it sequentially, so the
     report is bit-identical whatever the job count. *)
  let seconds = Array.make (Array.length measured_candidates) 0.0 in
  let measure base chunk =
    let best = ref None in
    Array.iteri
      (fun j c ->
        let p = prepare (build c) in
        let s = (Interp.run ~numeric:false p).seconds in
        seconds.(base + j) <- s;
        match !best with
        | Some (_, _, bs) when bs <= s -> ()
        | _ -> best := Some (base + j, p, s))
      chunk;
    !best
  in
  let chunk_best = Prelude.Parallel.map_chunks ?jobs ~f:measure measured_candidates in
  let best_index, best_program, best_seconds =
    match
      List.fold_left
        (fun acc b ->
          match (acc, b) with
          | None, b -> b
          | acc, None -> acc
          | Some (_, _, bs), Some (_, _, s) when bs <= s -> acc
          | _, b -> b)
        None chunk_best
    with
    | Some b -> b
    | None -> assert false
  in
  let wall1 = Prelude.Clock.wall () in
  let measured_hw =
    Array.fold_left
      (fun acc s -> acc +. (float_of_int repetitions *. s) +. per_candidate_compile_seconds)
      0.0 seconds
  in
  {
    best = measured_candidates.(best_index);
    (* Index into the original candidate list: take_every keeps every
       [sample_every]-th element starting at 0. *)
    best_index = best_index * sample_every;
    best_program;
    best_seconds;
    report =
      {
        space_size = List.length candidates;
        evaluated = Array.length measured_candidates;
        pruned = 0;
        cache_hit = false;
        jobs = effective_jobs jobs;
        wall_seconds = wall1 -. wall0;
        cpu_seconds = Sys.time () -. cpu0;
        score_seconds = wall1 -. wall0;
        measure_seconds = 0.0;
        hardware_seconds = measured_hw *. float_of_int sample_every;
      };
  }
