(** Atomic partial-result checkpoints for long tuning runs.

    {!Tuner.model_tune} scores a schedule space in contiguous chunks; with
    a checkpoint context it persists every completed chunk's summary —
    chunk-local top-k (candidate index + estimated seconds), pruned count,
    verifier-rejection and failure histograms — after each chunk, via a
    PID-tagged temp file and atomic rename. A tune killed mid-flight (or
    aborted by an injected fault) resumes by reusing the summaries of
    chunks whose (start, len) match the new run's chunking and re-scoring
    only the rest; because per-chunk scoring is deterministic and the
    merge is order-independent, the resumed run selects exactly the winner
    an uninterrupted run would.

    The file is guarded by the tuning key, the space fingerprint and size,
    and the top-k width; any mismatch — or any unparseable content —
    discards it (costing a fresh score, never a wrong winner). Completed
    tunes delete their checkpoint. *)

type chunk = {
  c_start : int;
  c_len : int;
  c_pruned : int;
  c_entries : (int * float) list;  (** chunk-local top-k: candidate index, estimated seconds *)
  c_rejected : (string * int) list;  (** verifier rejections per diagnostic code *)
  c_failed : (string * int) list;  (** captured crashes per exception label *)
}

type t = {
  ck_key : string;
  ck_fingerprint : int;
  ck_space : int;
  ck_top_k : int;
  ck_chunks : chunk list;
}

(** What a caller hands {!Tuner.model_tune} to enable checkpointing. *)
type ctx = { cx_path : string; cx_key : string; cx_fingerprint : int }

val path_for : base:string -> key:string -> string
(** Per-key checkpoint file next to a base path (e.g. the schedule cache):
    concurrent tunes over distinct operators never share a file. *)

val matches : t -> key:string -> fingerprint:int -> space:int -> top_k:int -> bool

val save : string -> t -> unit
(** Atomic (PID-tagged temp + rename); a failed write warns and returns —
    checkpointing must never abort the tune it protects. A successful
    save also sweeps stale ["<path>.<pid>.tmp"] leftovers from writers
    that died mid-save (its own fresh temp excepted). *)

val load : string -> t option
(** [None] for missing, foreign-versioned, or malformed files. *)

val clear : string -> unit
(** Best-effort delete (a completed tune needs no checkpoint). *)
