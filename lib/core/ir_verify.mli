(** Static verification of optimized IR programs: DMA dataflow/hazard
    analysis and bounds analysis, reported through structured diagnostics.

    [Ir_check] validates scoping and declarations; this module checks the
    *semantics* the IR optimizer is trusted with. Two analyses run over the
    program:

    {2 DMA dataflow / hazard analysis}

    Tracks the set of in-flight DMA transfers — each a [(direction, SPM
    buffer, SPM element interval, tag)] record — through [Seq]/[For]/[If].
    A compute statement touching an SPM interval still covered by an
    in-flight [Get] means a missing [Dma_wait] (SWA001); a [Get] issued
    into an interval already covered by an in-flight [Get] is a
    double-issue (SWA003); a wait whose tag matches nothing is reported as
    either a parity mismatch against its double-buffering sibling tag
    (SWA004) or a plain unmatched wait (SWA002). [Put] transfers snapshot
    their source at issue (both the simulator and the generated runtime
    drain the engine in order), so they participate only in tag
    bookkeeping, never in conflicts — fire-and-forget stores of results
    are idiomatic in this IR.

    {2 Bounds analysis}

    Every expression is evaluated in an interval domain with saturating
    arithmetic. Loops with constant bounds are sampled concretely — all
    iterations when short, otherwise a head window plus, once the
    in-flight state is detected periodic, the phase-aligned final
    iterations — so iterator-correlated expressions (ragged tile extents
    like [min (fm, m - im)]) stay exact instead of being widened apart.
    [rid]/[cid] are enumerated over the full grid ({!Ir.cpe_id_range}).
    The analysis proves each DMA region fits its [Main] buffer (SWA010),
    each inferred per-CPE descriptor stays inside it (SWA011), each SPM
    image fits [cg_elems] (doubled when double-buffered) (SWA012), and
    every [Gemm]/[Spm_copy]/[Transform]/[Memset_spm] operand access is in
    range (SWA013-SWA016). Division or modulo by (possibly) zero is
    SWA020/SWA021.

    The tuner rejects any candidate with error-severity diagnostics; the
    CLI exposes the same analyses as [swatop lint]. *)

type severity = Error | Warning

type diagnostic = {
  code : string;  (** stable code, e.g. ["SWA001"] *)
  severity : severity;
  path : string;  (** structural IR path, e.g. ["body[2]/for im/dma(get A->a_tile)"] *)
  message : string;
}

val verify : Ir.program -> diagnostic list
(** Runs both analyses over an optimized program (after DMA inference /
    prefetching; statements gated on information the optimizer has not
    produced yet, e.g. per-CPE descriptors, are skipped). Diagnostics are
    deduplicated per (code, path) and returned in program order. *)

val errors : diagnostic list -> diagnostic list
val is_clean : diagnostic list -> bool
(** No error-severity diagnostics (warnings allowed). *)

val code_counts : diagnostic list -> (string * int) list
(** Occurrences per code, sorted by code. *)

val to_string : diagnostic -> string

val registry : (string * severity * string) list
(** All diagnostic codes with their severity and a one-line summary. *)
