(** SPM memory planning for code generation (Sec. 4.7): all SPM buffers of a
    program are coalesced into one statically allocated region, each buffer
    becoming an offset into the pool. *)

type t = {
  pool_bytes : int;
  offsets : (string * int) list;  (** byte offset of each SPM buffer *)
}

val requests : Ir.program -> Sw26010.Spm.request list
(** The allocation request for each SPM buffer of the program — the single
    source of truth shared by {!plan} and [Ir_check.spm_footprint_bytes],
    so the capacity check and the allocator can never diverge. *)

val plan : Ir.program -> (t, string) result
val offset_of : t -> string -> int
