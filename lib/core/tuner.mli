(** The two autotuners compared in Sec. 5.2, as a parallel, pruning tuning
    engine.

    Both receive an enumerated schedule space (a candidate list plus a
    builder producing the optimized IR of each candidate) and return the
    chosen candidate together with a tuning report.

    - {!blackbox_tune} is the brute-force baseline: it *executes* every
      candidate on the simulated machine (cost-only interpretation) and
      keeps the fastest. Its [hardware_seconds] is the simulated machine
      time such a tuning run occupies — repetitions of every candidate's
      run plus a per-candidate code-generation/compilation overhead
      (calibrated to the per-candidate throughput reported in Table 3).

    - {!model_tune} is swATOP's performance-model-based tuner: it evaluates
      the static cost model on every candidate and picks the predicted
      best; only the winners are ever compiled and run. Candidates whose
      admissible DMA-bytes-only lower bound ({!Cost_model.dma_lower_bound})
      already exceeds the running top-k threshold are pruned before the full
      estimate and the structural check — branch-and-bound that never
      changes the selected top-k.

    Candidate scoring fans out over the {!Prelude.Parallel} Domain pool
    (controlled by [?jobs], the [SWATOP_JOBS] environment variable, or the
    core count). Selection tie-breaks on candidate index, so the outcome is
    identical whatever the job count; with one job the walk is plainly
    sequential. Only a bounded top-k of prepared programs is retained at any
    moment — the schedule space's IR is no longer materialized wholesale. *)

type report = {
  space_size : int;
  evaluated : int;  (** candidates fully measured/estimated (excludes pruned) *)
  pruned : int;  (** candidates skipped by the lower-bound test *)
  verify_rejected : (string * int) list;
      (** candidates rejected by {!Ir_verify} before costing, counted per
          diagnostic code (sorted by code; a candidate tripping several
          codes counts once under each). Rejected candidates are part of
          [evaluated] — they were examined, just never selected. Empty on
          healthy schedule spaces. *)
  scored_failed : (string * int) list;
      (** candidates whose scoring or measurement raised, counted per
          exception label ({!Prelude.Swatop_error.label}, sorted). Failed
          candidates are captured and skipped — crash isolation — and can
          never win; the tuner raises only when {e every} candidate failed
          or was rejected. Empty on healthy runs. *)
  cache_hit : bool;  (** served from a {!Schedule_cache} instead of tuned *)
  jobs : int;  (** Domain-pool width the run was scored with *)
  wall_seconds : float;  (** host monotonic wall clock inside the tuner *)
  cpu_seconds : float;  (** host process CPU time; cpu/wall ≈ parallel speedup *)
  score_seconds : float;  (** wall seconds of the scoring/estimation phase *)
  measure_seconds : float;  (** wall seconds measuring the finalists *)
  hardware_seconds : float;  (** simulated SW26010 time the tuning would occupy *)
  measured : int;
      (** candidates actually run on the simulated machine: all sampled
          candidates for {!blackbox_tune}, the finalists for
          {!model_tune}, the measurement batches for {!guided_tune} *)
  batches : int;  (** guided measure/refit rounds; [0] for the other tuners *)
  model_rmse : float;
      (** {!guided_tune} only: training RMSE of the learned model in
          log-seconds space over the run's measurements; [0.0] elsewhere *)
  predicted_seconds : float;
      (** the active cost model's prediction for the winner: static-model
          estimate for {!model_tune}, learned-model prediction for
          {!guided_tune}; [0.0] for {!blackbox_tune} *)
}

type 'a outcome = {
  best : 'a;
  best_index : int;  (** index of [best] in the candidate list *)
  best_program : Ir.program;  (** fully lowered and optimized *)
  best_seconds : float;  (** black-box: measured; model: measured winner *)
  report : report;
}

val per_candidate_compile_seconds : float
(** Code generation + cross compilation + job launch per candidate on the
    real system; calibrated against Table 3 (approximately 40 s per
    candidate for the black-box tuner). *)

val optimize : Ir.program -> Ir.program
(** The IR-optimizer passes alone — DMA inference, then prefetching —
    without the structural validation of {!prepare}. Used by the [lint]
    pipeline, which wants to report {!Ir_check} errors as diagnostics
    rather than have them raised. *)

val prepare : Ir.program -> Ir.program
(** The IR-optimizer pipeline applied to every candidate before costing:
    DMA inference, then prefetching, then structural validation. Raises
    [Invalid_argument] with the validation report on a malformed program. *)

val model_tune :
  ?top_k:int ->
  ?prune:bool ->
  ?jobs:int ->
  ?checkpoint:Tune_checkpoint.ctx ->
  gemm_model:Gemm_cost.t ->
  candidates:'a list ->
  build:('a -> Ir.program) ->
  unit ->
  'a outcome
(** Sec. 4's "pick best (or top k)": the [top_k] best predicted candidates
    (default 1) are each run once on the (simulated) machine and the
    measured winner kept; [hardware_seconds] accounts for those runs.
    [prune] (default true) enables the lower-bound branch-and-bound; it is
    sound — the returned top-k is provably identical either way — and exists
    as a switch only for A/B measurement. Every surviving candidate is
    passed through {!Ir_verify}; candidates with error diagnostics are
    rejected (counted in the report's [verify_rejected]) and can never win.

    Robustness: a candidate whose build, optimization, estimate, or finalist
    measurement raises is captured, counted in [scored_failed], and skipped
    — one crashing schedule never sinks the tune. With [checkpoint], every
    completed chunk's summary is persisted atomically
    ({!Tune_checkpoint.save}); an interrupted run resumes from matching
    chunk summaries and provably selects the same winner as an
    uninterrupted run, and a completed run deletes its checkpoint. Fault
    sites (see {!Prelude.Fault}): ["tuner.score"] keyed by candidate index,
    ["tuner.abort"] at chunk boundaries.

    Raises [Invalid_argument] on an empty candidate list or a fully
    verifier-rejected space, and {!Prelude.Swatop_error.Error} when every
    candidate failed or every finalist failed measurement. *)

val blackbox_tune :
  ?repetitions:int ->
  ?sample_every:int ->
  ?jobs:int ->
  candidates:'a list ->
  build:('a -> Ir.program) ->
  unit ->
  'a outcome
(** [sample_every] measures only every n-th candidate (default 1 = all) and
    scales [hardware_seconds] accordingly — used to keep full-network
    Table 3 reproductions tractable; the report's [evaluated] field records
    the actual count. [repetitions] (default 3) models repeated timing runs
    on real hardware. [best_index] refers to the original candidate list
    even when sampling. Per-candidate crashes are captured into
    [scored_failed] exactly as in {!model_tune} (fault site ["tuner.score"]
    keyed by measured-candidate index). *)

(** Configuration of the guided (learned-cost-model) search. All
    exploration randomness derives from [gc_seed] through
    {!Prelude.Det_rng}, keyed per decision site — a guided tune replays
    bit-identically for a given seed, independent of the job count. *)
type guided_config = {
  gc_seed : int;  (** root of every random decision the search makes *)
  gc_batch : int;  (** candidates measured per propose/refit round *)
  gc_budget : int;
      (** max candidates sent to measurement; [<= 0] selects an automatic
          budget of [max (batch * min_batches) (space_size / 10)] — i.e.
          at most ~10% of a large space *)
  gc_epsilon : float;  (** fraction of each batch picked uniformly at random *)
  gc_sa_steps : int;
      (** length of the per-batch simulated-annealing walk over the
          prediction surface; [0] disables the SA slot *)
  gc_patience : int;
      (** stop after this many consecutive batches improving the best
          measured time by less than 0.5% *)
  gc_min_batches : int;  (** never stop before this many batches *)
  gc_warm : Learned_model.weights option;
      (** warm-start weights (e.g. from {!Schedule_cache}) used to rank
          the very first batch before any measurement lands *)
}

val guided_defaults : seed:int -> guided_config
(** Batch 8, automatic budget, epsilon 0.15, 32 SA steps, patience 2,
    minimum 3 batches, no warm start. *)

(** How a schedule space is searched: measure-everything-relevant
    ({!Exhaustive}, the {!model_tune}/{!blackbox_tune} pair) or the
    learned-cost-model loop ({!Guided}). *)
type search = Exhaustive | Guided of guided_config

val guided_tune :
  ?jobs:int ->
  config:guided_config ->
  candidates:'a list ->
  build:('a -> Ir.program) ->
  unit ->
  'a outcome * Learned_model.weights option
(** The guided search (ROADMAP item 2): featurize and {!Ir_verify} the
    whole space once in parallel (rejected candidates are permanently
    ineligible — soundness is identical to the exhaustive tuners), then
    loop: propose a batch (prediction-ranked top slice + one
    simulated-annealing refinement pick + epsilon-greedy random picks;
    the first cold batch is an even spread over the space), measure it
    through the Domain pool with per-candidate crash isolation (fault
    site ["tuner.score"] keyed by candidate index), record the
    measurements into a {!Learned_model} and refit, until the budget is
    exhausted, the space runs out, or [gc_patience] batches pass without
    meaningful improvement. The winner is the best {e measured}
    candidate — never an unverified prediction.

    Returns the outcome plus the fitted model weights for warm-start
    transfer to later tunes of the same operator family.
    [hardware_seconds] accounts compile + run time for measured
    candidates only. Raises like {!model_tune} when the space is empty,
    fully rejected, or every measurement failed. *)

val tune :
  ?top_k:int ->
  ?prune:bool ->
  ?jobs:int ->
  ?checkpoint:Tune_checkpoint.ctx ->
  ?search:search ->
  gemm_model:Gemm_cost.t ->
  candidates:'a list ->
  build:('a -> Ir.program) ->
  unit ->
  'a outcome * Learned_model.weights option
(** Search-mode dispatcher: [Exhaustive] (default) runs {!model_tune}
    (returning [None] for the weights), [Guided cfg] runs {!guided_tune}.
    [top_k], [prune], [checkpoint], and [gemm_model] only apply to the
    exhaustive path; the guided path estimates nothing statically and
    uses batch-grained convergence instead of chunk-grained checkpoints. *)
