(** The two autotuners compared in Sec. 5.2, as a parallel, pruning tuning
    engine.

    Both receive an enumerated schedule space (a candidate list plus a
    builder producing the optimized IR of each candidate) and return the
    chosen candidate together with a tuning report.

    - {!blackbox_tune} is the brute-force baseline: it *executes* every
      candidate on the simulated machine (cost-only interpretation) and
      keeps the fastest. Its [hardware_seconds] is the simulated machine
      time such a tuning run occupies — repetitions of every candidate's
      run plus a per-candidate code-generation/compilation overhead
      (calibrated to the per-candidate throughput reported in Table 3).

    - {!model_tune} is swATOP's performance-model-based tuner: it evaluates
      the static cost model on every candidate and picks the predicted
      best; only the winners are ever compiled and run. Candidates whose
      admissible DMA-bytes-only lower bound ({!Cost_model.dma_lower_bound})
      already exceeds the running top-k threshold are pruned before the full
      estimate and the structural check — branch-and-bound that never
      changes the selected top-k.

    Candidate scoring fans out over the {!Prelude.Parallel} Domain pool
    (controlled by [?jobs], the [SWATOP_JOBS] environment variable, or the
    core count). Selection tie-breaks on candidate index, so the outcome is
    identical whatever the job count; with one job the walk is plainly
    sequential. Only a bounded top-k of prepared programs is retained at any
    moment — the schedule space's IR is no longer materialized wholesale. *)

type report = {
  space_size : int;
  evaluated : int;  (** candidates fully measured/estimated (excludes pruned) *)
  pruned : int;  (** candidates skipped by the lower-bound test *)
  verify_rejected : (string * int) list;
      (** candidates rejected by {!Ir_verify} before costing, counted per
          diagnostic code (sorted by code; a candidate tripping several
          codes counts once under each). Rejected candidates are part of
          [evaluated] — they were examined, just never selected. Empty on
          healthy schedule spaces. *)
  scored_failed : (string * int) list;
      (** candidates whose scoring or measurement raised, counted per
          exception label ({!Prelude.Swatop_error.label}, sorted). Failed
          candidates are captured and skipped — crash isolation — and can
          never win; the tuner raises only when {e every} candidate failed
          or was rejected. Empty on healthy runs. *)
  cache_hit : bool;  (** served from a {!Schedule_cache} instead of tuned *)
  jobs : int;  (** Domain-pool width the run was scored with *)
  wall_seconds : float;  (** host monotonic wall clock inside the tuner *)
  cpu_seconds : float;  (** host process CPU time; cpu/wall ≈ parallel speedup *)
  score_seconds : float;  (** wall seconds of the scoring/estimation phase *)
  measure_seconds : float;  (** wall seconds measuring the finalists *)
  hardware_seconds : float;  (** simulated SW26010 time the tuning would occupy *)
}

type 'a outcome = {
  best : 'a;
  best_index : int;  (** index of [best] in the candidate list *)
  best_program : Ir.program;  (** fully lowered and optimized *)
  best_seconds : float;  (** black-box: measured; model: measured winner *)
  report : report;
}

val per_candidate_compile_seconds : float
(** Code generation + cross compilation + job launch per candidate on the
    real system; calibrated against Table 3 (approximately 40 s per
    candidate for the black-box tuner). *)

val optimize : Ir.program -> Ir.program
(** The IR-optimizer passes alone — DMA inference, then prefetching —
    without the structural validation of {!prepare}. Used by the [lint]
    pipeline, which wants to report {!Ir_check} errors as diagnostics
    rather than have them raised. *)

val prepare : Ir.program -> Ir.program
(** The IR-optimizer pipeline applied to every candidate before costing:
    DMA inference, then prefetching, then structural validation. Raises
    [Invalid_argument] with the validation report on a malformed program. *)

val model_tune :
  ?top_k:int ->
  ?prune:bool ->
  ?jobs:int ->
  ?checkpoint:Tune_checkpoint.ctx ->
  gemm_model:Gemm_cost.t ->
  candidates:'a list ->
  build:('a -> Ir.program) ->
  unit ->
  'a outcome
(** Sec. 4's "pick best (or top k)": the [top_k] best predicted candidates
    (default 1) are each run once on the (simulated) machine and the
    measured winner kept; [hardware_seconds] accounts for those runs.
    [prune] (default true) enables the lower-bound branch-and-bound; it is
    sound — the returned top-k is provably identical either way — and exists
    as a switch only for A/B measurement. Every surviving candidate is
    passed through {!Ir_verify}; candidates with error diagnostics are
    rejected (counted in the report's [verify_rejected]) and can never win.

    Robustness: a candidate whose build, optimization, estimate, or finalist
    measurement raises is captured, counted in [scored_failed], and skipped
    — one crashing schedule never sinks the tune. With [checkpoint], every
    completed chunk's summary is persisted atomically
    ({!Tune_checkpoint.save}); an interrupted run resumes from matching
    chunk summaries and provably selects the same winner as an
    uninterrupted run, and a completed run deletes its checkpoint. Fault
    sites (see {!Prelude.Fault}): ["tuner.score"] keyed by candidate index,
    ["tuner.abort"] at chunk boundaries.

    Raises [Invalid_argument] on an empty candidate list or a fully
    verifier-rejected space, and {!Prelude.Swatop_error.Error} when every
    candidate failed or every finalist failed measurement. *)

val blackbox_tune :
  ?repetitions:int ->
  ?sample_every:int ->
  ?jobs:int ->
  candidates:'a list ->
  build:('a -> Ir.program) ->
  unit ->
  'a outcome
(** [sample_every] measures only every n-th candidate (default 1 = all) and
    scales [hardware_seconds] accordingly — used to keep full-network
    Table 3 reproductions tractable; the report's [evaluated] field records
    the actual count. [repetitions] (default 3) models repeated timing runs
    on real hardware. [best_index] refers to the original candidate list
    even when sampling. Per-candidate crashes are captured into
    [scored_failed] exactly as in {!model_tune} (fault site ["tuner.score"]
    keyed by measured-candidate index). *)
