(** The static whole-program performance model of Sec. 4.6.

    The model walks an IR program *analytically*: loop bodies are evaluated
    at the first, a middle and the last iteration, and the interior is
    extrapolated; DMA nodes are charged by Eq. 1 (start-up latency plus
    worst-CPE transaction bytes over the bandwidth share); GEMM nodes are
    charged by the fitted Eq. 2 model; memsets and Winograd transforms by
    their deterministic cycle formulas.

    DMA time and compute time accumulate separately. For an overlapped
    (double-buffered) program the total is [max(T_dma, T_compute)]; for a
    non-overlapped one it is the sum — exactly the paper's combination rule.

    Evaluating a candidate costs microseconds, versus the milliseconds of a
    full simulated run: that gap is the tuning-time reduction of Table 3. *)

type estimate = {
  dma_seconds : float;
  compute_seconds : float;
  total_seconds : float;
}

val estimate : gemm_model:Gemm_cost.t -> Ir.program -> estimate
(** Requires per-CPE DMA descriptors (run {!Dma_inference} first). *)

val dma_lower_bound : Ir.program -> float
(** An admissible lower bound on [estimate].[total_seconds]: only the DMA
    term (plus the start-up latency of an overlapped program) is walked, so
    it never exceeds the full estimate and costs a fraction of it — no GEMM
    model evaluation at all. The tuner uses it to prune candidates whose
    bound already exceeds the running top-k threshold before paying for the
    full estimate and the structural {!Ir_check}. Same precondition as
    {!estimate}. *)
