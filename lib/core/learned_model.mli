(** Online-fitted cost model: ridge regression on standardized
    {!Sched_features} vectors predicting log(simulated seconds).

    The guided tuner observes every measurement, refits after each batch
    (closed-form normal equations — microseconds at this feature width),
    and ranks unmeasured candidates by {!predict}. Fitted weights
    serialize to a single line for warm-start transfer through
    {!Schedule_cache}. Fully deterministic: same samples in the same
    order produce bit-identical weights. *)

val format_version : int
(** Bumped whenever {!weights_to_string}'s encoding or the semantics of
    the feature vector change; cached weights from other versions are
    ignored by readers. *)

type weights = {
  w_mean : float array;  (** per-feature standardization mean, length dim *)
  w_scale : float array;  (** per-feature standardization stddev (>= 1e-9), length dim *)
  w_coef : float array;  (** regression coefficients + trailing intercept, length dim+1 *)
}

type t

val create : ?warm:weights -> dim:int -> unit -> t
(** Fresh model over [dim]-wide features. [warm] supplies transfer
    weights used by {!predict} until the first successful {!fit};
    weights of a mismatched width are silently dropped. *)

val dim : t -> int

val count : t -> int
(** Number of observations recorded so far. *)

val observe : t -> float array -> float -> unit
(** [observe t features seconds] records a measurement. Non-positive or
    non-finite [seconds] are ignored (failed measurements carry no
    signal). Raises [Invalid_argument] on feature-width mismatch. *)

val fit : ?ridge:float -> t -> unit
(** Refit from all observations. A no-op below a small minimum sample
    count, and on a (damped) singular system the previous weights are
    kept — [fit] never leaves the model worse than before the call. *)

val fitted : t -> bool
(** Whether {!predict} will return predictions (own fit or warm-start). *)

val predict : t -> float array -> float option
(** Predicted simulated seconds, or [None] when no weights are active
    yet. Raises [Invalid_argument] on feature-width mismatch. *)

val rmse_log : t -> float
(** Root-mean-square error of the active weights over the recorded
    observations, in log-seconds space ([0.1] means predictions are
    typically within ~10% of measurements). [0.0] when unfitted or
    empty. *)

val weights : t -> weights option
(** The active weights (own fit, else warm-start), for caching. *)

val weights_to_string : weights -> string
(** One-line, whitespace-separated, round-trips through
    {!weights_of_string} exactly ([%.17g]). *)

val weights_of_string : string -> weights option
(** [None] on malformed input, a different {!format_version}, non-finite
    values, or non-positive scales — corrupt cache entries degrade to a
    cold start, never an exception. *)
