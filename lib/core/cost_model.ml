open! Stdlib

type estimate = { dma_seconds : float; compute_seconds : float; total_seconds : float }

(* Costs accumulate into a mutable pair; loop sampling multiplies the middle
   iteration's delta. *)
type acc = { mutable dma : float; mutable compute : float }

let sampled_cpes = [| (0, 0); (0, 1); (7, 7) |]
let elem = Sw26010.Config.elem_bytes

(* Slot-compiled expressions (same technique as the interpreter): the
   estimator is evaluated hundreds of times per schedule space, so the walk
   must not hash strings. *)
type slots = { table : (string, int) Hashtbl.t; mutable next : int }

let slots_create () =
  let s = { table = Hashtbl.create 16; next = 0 } in
  Hashtbl.replace s.table "rid" 0;
  Hashtbl.replace s.table "cid" 1;
  s.next <- 2;
  s

let slot_of s v =
  match Hashtbl.find_opt s.table v with
  | Some i -> i
  | None ->
    let i = s.next in
    Hashtbl.replace s.table v i;
    s.next <- i + 1;
    i

let rec compile_expr slots (e : Ir.expr) : int array -> int =
  match e with
  | Const i -> fun _ -> i
  | Var v ->
    let s = slot_of slots v in
    fun env -> env.(s)
  | Add (a, b) -> bin slots ( + ) a b
  | Sub (a, b) -> bin slots ( - ) a b
  | Mul (a, b) -> bin slots ( * ) a b
  | Div (a, b) -> bin slots (fun x y -> x / y) a b
  | Mod (a, b) -> bin slots (fun x y -> x mod y) a b
  | Min (a, b) -> bin slots min a b
  | Max (a, b) -> bin slots max a b

and bin slots op a b =
  let fa = compile_expr slots a and fb = compile_expr slots b in
  fun env -> op (fa env) (fb env)

let rec compile_cond slots (c : Ir.cond) : int array -> bool =
  match c with
  | Cmp (op, a, b) ->
    let fa = compile_expr slots a and fb = compile_expr slots b in
    let test : int -> int -> bool =
      match op with Lt -> ( < ) | Le -> ( <= ) | Eq -> ( = ) | Ne -> ( <> )
    in
    fun env -> test (fa env) (fb env)
  | And (a, b) ->
    let fa = compile_cond slots a and fb = compile_cond slots b in
    fun env -> fa env && fb env
  | Or (a, b) ->
    let fa = compile_cond slots a and fb = compile_cond slots b in
    fun env -> fa env || fb env
  | Not a ->
    let fa = compile_cond slots a in
    fun env -> not (fa env)

let transform_tile_cycles = function
  | Ir.Wino_input -> 26.0
  | Ir.Wino_filter -> 30.0
  | Ir.Wino_output -> 22.0

let per_cpe_bw = Sw26010.Config.dma_peak_bw /. float_of_int Sw26010.Config.cpes_per_cg
let memset_rate = float_of_int (4 * Sw26010.Config.cpes_per_cg)

(* Iterators that can change a statement's *shape* (not just its addresses):
   those appearing inside Min/Max (ragged tile extents), in If conditions,
   or in loop bounds. Loops over any other iterator have iteration-
   independent cost up to DRAM-transaction alignment, so one sampled
   iteration represents them all. *)
let boundary_sensitive_vars (p : Ir.program) =
  let set = Hashtbl.create 16 in
  let add e = List.iter (fun v -> Hashtbl.replace set v ()) (Ir.free_vars e) in
  let rec scan_expr (e : Ir.expr) =
    match e with
    | Const _ | Var _ -> ()
    | Min (a, b) | Max (a, b) ->
      add a;
      add b
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b) ->
      scan_expr a;
      scan_expr b
  in
  (* In conditions, only Min/Max subtrees mark sensitivity: a ragged-tile
     guard compares a min() extent, while a bare [i + step < hi] prefetch
     guard merely drops one transfer at the end of the nest — noise at the
     scale the model works at. *)
  let rec scan_cond (c : Ir.cond) =
    match c with
    | Cmp (_, a, b) ->
      scan_expr a;
      scan_expr b
    | And (a, b) | Or (a, b) ->
      scan_cond a;
      scan_cond b
    | Not a -> scan_cond a
  in
  let scan_stmt _ (s : Ir.stmt) =
    (match s with
    | If { cond; _ } -> scan_cond cond
    | For { lo; hi; step; _ } ->
      add lo;
      add hi;
      add step
    | Dma { tag; region; spm_offset; spm_ld; per_cpe; _ } ->
      List.iter scan_expr
        [ tag; region.offset; region.rows; region.row_elems; region.row_stride; spm_offset; spm_ld ];
      Option.iter
        (fun (d : Ir.cpe_desc) ->
          List.iter scan_expr [ d.d_offset; d.d_block; d.d_stride; d.d_count ])
        per_cpe
    | Gemm g ->
      List.iter scan_expr
        [ g.m; g.n; g.k; g.a.g_offset; g.a.g_ld; g.b.g_offset; g.b.g_ld; g.c.g_offset; g.c.g_ld ]
    | Memset_spm { offset; elems; _ } ->
      scan_expr offset;
      scan_expr elems
    | Spm_copy c ->
      List.iter scan_expr
        [ c.cp_src_offset; c.cp_src_ld; c.cp_dst_offset; c.cp_dst_ld; c.cp_rows; c.cp_row_elems ]
    | Transform t ->
      List.iter scan_expr
        [ t.t_src_offset; t.t_dst_offset; t.t_chans; t.t_tiles_r; t.t_tiles_c; t.t_src_ld ]
    | Seq _ | Dma_wait _ | Comment _ -> ());
    ()
  in
  Ir.fold_stmt scan_stmt () p.body;
  set

let compile ~gemm_model (p : Ir.program) =
  let slots = slots_create () in
  let sensitive = boundary_sensitive_vars p in
  let rec compile_stmt (s : Ir.stmt) : int array -> acc -> unit =
    match s with
    | Seq l ->
      let fs = Array.of_list (List.map compile_stmt l) in
      fun env acc -> Array.iter (fun f -> f env acc) fs
    | If { cond; then_; else_ } ->
      let fc = compile_cond slots cond in
      let ft = compile_stmt then_ and fe = compile_stmt else_ in
      fun env acc -> if fc env then ft env acc else fe env acc
    | For { iter; lo; hi; step; body; _ } ->
      let slot = slot_of slots iter in
      let uniform = not (Hashtbl.mem sensitive iter) in
      let flo = compile_expr slots lo
      and fhi = compile_expr slots hi
      and fstep = compile_expr slots step in
      let fbody = compile_stmt body in
      fun env acc ->
        let lo = flo env and hi = fhi env and step = fstep env in
        if step <= 0 then invalid_arg "Cost_model: non-positive step";
        let trips = if hi <= lo then 0 else (hi - lo + step - 1) / step in
        let at i =
          env.(slot) <- i;
          fbody env acc
        in
        if trips = 0 then ()
        else if uniform then begin
          (* The iterator never reaches a boundary expression: one middle
             iteration represents them all. *)
          let d0 = acc.dma and c0 = acc.compute in
          at (lo + (trips / 2 * step));
          let scale = float_of_int (trips - 1) in
          acc.dma <- acc.dma +. (scale *. (acc.dma -. d0));
          acc.compute <- acc.compute +. (scale *. (acc.compute -. c0))
        end
        else if trips <= 4 then
          for t = 0 to trips - 1 do
            at (lo + (t * step))
          done
        else begin
          (* First, middle and last iterations evaluated; the interior is
             extrapolated from the middle — this captures the boundary
             min()/If effects that live at the edges of tiled loops. *)
          at lo;
          let d0 = acc.dma and c0 = acc.compute in
          at (lo + (trips / 2 * step));
          let dmid = acc.dma -. d0 and cmid = acc.compute -. c0 in
          let scale = float_of_int (trips - 3) in
          acc.dma <- acc.dma +. (scale *. dmid);
          acc.compute <- acc.compute +. (scale *. cmid);
          at (lo + ((trips - 1) * step))
        end
    | Dma d ->
      let desc =
        match d.per_cpe with
        | Some desc -> desc
        | None -> invalid_arg "Cost_model: DMA without per-CPE descriptor"
      in
      let f_off = compile_expr slots desc.d_offset
      and f_block = compile_expr slots desc.d_block
      and f_stride = compile_expr slots desc.d_stride
      and f_count = compile_expr slots desc.d_count in
      fun env acc ->
        let worst = ref 0 in
        Array.iter
          (fun (r, c) ->
            env.(0) <- r;
            env.(1) <- c;
            let dd =
              Sw26010.Dma.descriptor
                ~offset_bytes:(f_off env * elem)
                ~block_bytes:(f_block env * elem)
                ~stride_bytes:(max (f_stride env) (f_block env) * elem)
                ~block_count:(f_count env)
            in
            worst := max !worst (Sw26010.Dma.transaction_bytes dd))
          sampled_cpes;
        if !worst > 0 then
          acc.dma <-
            acc.dma +. Sw26010.Config.dma_latency_s +. (float_of_int !worst /. per_cpe_bw)
    | Dma_wait _ -> fun _ _ -> ()
    | Gemm g -> (
      match gemm_model with
      | None ->
        (* DMA-only walk: compute nodes contribute nothing to the bound. *)
        fun _ _ -> ()
      | Some gemm_model ->
        let fm = compile_expr slots g.m
        and fn = compile_expr slots g.n
        and fk = compile_expr slots g.k in
        let fal = compile_expr slots g.a.g_ld
        and fbl = compile_expr slots g.b.g_ld
        and fcl = compile_expr slots g.c.g_ld in
        fun env acc ->
          let call =
            Primitives.Spm_gemm.call ~variant:g.variant ~m:(fm env) ~n:(fn env) ~k:(fk env)
              ~lda:(fal env) ~ldb:(fbl env) ~ldc:(fcl env)
          in
          acc.compute <- acc.compute +. Gemm_cost.predict_seconds gemm_model call)
    | Memset_spm { elems; _ } ->
      let felems = compile_expr slots elems in
      fun env acc ->
        acc.compute <-
          acc.compute +. Sw26010.Config.seconds_of_cycles (float_of_int (felems env) /. memset_rate)
    | Spm_copy c ->
      let frows = compile_expr slots c.cp_rows and felems = compile_expr slots c.cp_row_elems in
      fun env acc ->
        let n = frows env * felems env in
        acc.compute <-
          acc.compute +. Sw26010.Config.seconds_of_cycles (2.0 *. float_of_int n /. memset_rate)
    | Transform t ->
      let fchans = compile_expr slots t.t_chans
      and ftr = compile_expr slots t.t_tiles_r
      and ftc = compile_expr slots t.t_tiles_c in
      let per_tile = transform_tile_cycles t.kind in
      let is_filter = match t.kind with Ir.Wino_filter -> true | _ -> false in
      fun env acc ->
        let chans = fchans env in
        let units = if is_filter then chans else chans * ftr env * ftc env in
        acc.compute <-
          acc.compute
          +. Sw26010.Config.seconds_of_cycles
               (float_of_int units *. per_tile /. float_of_int Sw26010.Config.cpes_per_cg)
    | Comment _ -> fun _ _ -> ()
  in
  let compiled = compile_stmt p.body in
  (compiled, slots)

let walk ~gemm_model (p : Ir.program) =
  let compiled, slots = compile ~gemm_model p in
  let env = Array.make (max 2 slots.next) 0 in
  let acc = { dma = 0.0; compute = 0.0 } in
  compiled env acc;
  acc

let estimate ~gemm_model (p : Ir.program) =
  let acc = walk ~gemm_model:(Some gemm_model) p in
  let total =
    if p.overlapped then Float.max acc.dma acc.compute +. Sw26010.Config.dma_latency_s
    else acc.dma +. acc.compute
  in
  { dma_seconds = acc.dma; compute_seconds = acc.compute; total_seconds = total }

let dma_lower_bound (p : Ir.program) =
  let acc = walk ~gemm_model:None p in
  (* Admissible under both combination rules: overlapped totals are
     [max(dma, compute) + latency >= dma + latency]; non-overlapped totals
     are [dma + compute >= dma]. *)
  if p.overlapped then acc.dma +. Sw26010.Config.dma_latency_s else acc.dma
