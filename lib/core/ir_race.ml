open! Stdlib

type severity = Ir_verify.severity = Error | Warning

type diagnostic = Ir_verify.diagnostic = {
  code : string;
  severity : severity;
  path : string;
  message : string;
}

let registry =
  [
    ("SWA030", Error, "per-CPE DMA put footprints overlap in main memory (write-write race)");
    ("SWA031", Error, "DMA get overlaps a distinct CPE's in-flight put (read-write race)");
    ("SWA032", Error, "regcomm exchange: a lane's send/receive counts are unbalanced");
    ("SWA033", Error, "regcomm exchange: cyclic wait between a step's broadcasts");
    ("SWA034", Error, "regcomm exchange: source lane outside the mesh");
    ("SWA035", Warning, "DMA put still in flight at end of program");
    ("SWA038", Warning, "symbolic disjointness proof inconclusive; fell back to enumeration");
    ("SWA039", Error, "concrete enumeration found overlapping per-CPE DMA footprints");
  ]

(* ------------------------------------------------------------------ *)
(* Concrete per-CPE footprint: [c] blocks of [b] elements, block [i]
   starting at element [o + i*s] of a Main buffer. All values concrete —
   loop sampling keeps iterators exact; anything symbolic marks the walk
   imprecise instead of widening. *)

type fp = { o : int; b : int; s : int; c : int }

let fp_empty f = f.b <= 0 || f.c <= 0
let fp_end f = f.o + ((f.c - 1) * max 0 f.s) + f.b

(* A footprint is a dense interval when its blocks tile or overlap each
   other: a single block, or stride no larger than the block. *)
let fp_dense f = f.c = 1 || f.s <= f.b

(* Floor/ceil division for possibly-negative numerators (positive divisor). *)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let cdiv a b = fdiv (a + b - 1) b

(* Exact overlap witness by enumerating rows of the smaller footprint and
   solving for the other's intersecting block range — O(min(c1, c2)). *)
let enum_witness f1 f2 =
  let f1, f2 = if f1.c <= f2.c then (f1, f2) else (f2, f1) in
  let res = ref None in
  let i = ref 0 in
  while Option.is_none !res && !i < f1.c do
    let x = f1.o + (!i * f1.s) in
    (if f2.s <= 0 then begin
       if f2.o < x + f1.b && x < f2.o + f2.b then res := Some (max x f2.o)
     end
     else
       let jlo = max 0 (cdiv (x - f2.b + 1 - f2.o) f2.s) in
       let jhi = min (f2.c - 1) (fdiv (x + f1.b - 1 - f2.o) f2.s) in
       if jlo <= jhi then res := Some (max x (f2.o + (jlo * f2.s))));
    incr i
  done;
  !res

type verdict = Disjoint | Overlap of int  (** witness element *) | Inconclusive

(* The symbolic ladder: envelope test, dense-interval test, and for equal
   strides a modular phase proof plus an exact row/column rectangle test
   when no block crosses a stride boundary. Only [Overlap] verdicts proven
   exact are returned; anything else defers to enumeration. *)
let symbolic f1 f2 =
  if fp_empty f1 || fp_empty f2 then Disjoint
  else if fp_end f1 <= f2.o || fp_end f2 <= f1.o then Disjoint
  else if fp_dense f1 && fp_dense f2 then Overlap (max f1.o f2.o)
  else if f1.s = f2.s && f1.s > 0 && f1.b <= f1.s && f2.b <= f1.s then begin
    let s = f1.s in
    let aligned f = (f.o mod s) + f.b <= s in
    if aligned f1 && aligned f2 then begin
      (* same stride grid: footprints are (row, column) rectangles *)
      let q1 = fdiv f1.o s and q2 = fdiv f2.o s in
      let p1 = f1.o - (q1 * s) and p2 = f2.o - (q2 * s) in
      let rows_meet = q1 < q2 + f2.c && q2 < q1 + f1.c in
      let cols_meet = p1 < p2 + f2.b && p2 < p1 + f1.b in
      if rows_meet && cols_meet then
        let q = max q1 q2 and p = max p1 p2 in
        Overlap ((q * s) + p)
      else Disjoint
    end
    else
      let d = ((f2.o - f1.o) mod s + s) mod s in
      if d >= f1.b && s - d >= f2.b then Disjoint else Inconclusive
  end
  else Inconclusive

(* ------------------------------------------------------------------ *)

(* One per-CPE member of a collective DMA statement execution. All 64
   members share the execution's sequence number. *)
type record = {
  r_seq : int;
  r_dir : Ir.dir;
  r_buf : string;
  r_rid : int;
  r_cid : int;
  r_fp : fp;
  r_tag : int;
  r_path : string;
}

type ctx = {
  env : int array;  (** concrete variable values; [unk] when symbolic *)
  mutable inflight : record list;  (** newest first *)
  mutable next_seq : int;
  mutable quiet : bool;
  mutable imprecise : bool;
  mutable diags : diagnostic list;  (** reversed *)
  seen : (string * string, unit) Hashtbl.t;
  intra_ok : (string * fp list, unit) Hashtbl.t;
      (** put statements whose translated per-CPE footprint shape already
          proved pairwise disjoint *)
}

let unk = min_int

let report ctx ~code ~severity ~path message =
  if not (Hashtbl.mem ctx.seen (code, path)) then begin
    Hashtbl.add ctx.seen (code, path) ();
    ctx.diags <- { code; severity; path; message } :: ctx.diags
  end

let hazard ctx ~code ~path message =
  if not ctx.quiet then report ctx ~code ~severity:Error ~path message

let warn ctx ~code ~path message =
  if not ctx.quiet then report ctx ~code ~severity:Warning ~path message

(* ------------------------------------------------------------------ *)

type cenv = { slots : (string, int) Hashtbl.t; rid_slot : int; cid_slot : int }

let slot_of ce v =
  match Hashtbl.find_opt ce.slots v with
  | Some i -> i
  | None ->
    let i = Hashtbl.length ce.slots in
    Hashtbl.add ce.slots v i;
    i

let rec compile_expr ce (e : Ir.expr) : ctx -> int =
  let bin op a b =
    let fa = compile_expr ce a and fb = compile_expr ce b in
    fun ctx ->
      let x = fa ctx and y = fb ctx in
      if x = unk || y = unk then unk else op x y
  in
  match e with
  | Ir.Const i -> fun _ -> i
  | Ir.Var v ->
    let s = slot_of ce v in
    fun ctx -> ctx.env.(s)
  | Ir.Add (a, b) -> bin ( + ) a b
  | Ir.Sub (a, b) -> bin ( - ) a b
  | Ir.Mul (a, b) -> bin ( * ) a b
  | Ir.Min (a, b) -> bin min a b
  | Ir.Max (a, b) -> bin max a b
  | Ir.Div (a, b) -> bin (fun x y -> if y = 0 then unk else x / y) a b
  | Ir.Mod (a, b) -> bin (fun x y -> if y = 0 then unk else x mod y) a b

type tri = True | False | Unknown

let tri_not = function True -> False | False -> True | Unknown -> Unknown

let rec compile_cond ce (c : Ir.cond) : ctx -> tri =
  match c with
  | Ir.Cmp (op, a, b) ->
    let fa = compile_expr ce a and fb = compile_expr ce b in
    let test : int -> int -> bool =
      match op with
      | Ir.Lt -> ( < )
      | Ir.Le -> ( <= )
      | Ir.Eq -> ( = )
      | Ir.Ne -> ( <> )
    in
    fun ctx ->
      let x = fa ctx and y = fb ctx in
      if x = unk || y = unk then Unknown else if test x y then True else False
  | Ir.And (a, b) ->
    let fa = compile_cond ce a and fb = compile_cond ce b in
    fun ctx -> (
      match (fa ctx, fb ctx) with
      | False, _ | _, False -> False
      | True, True -> True
      | _ -> Unknown)
  | Ir.Or (a, b) ->
    let fa = compile_cond ce a and fb = compile_cond ce b in
    fun ctx -> (
      match (fa ctx, fb ctx) with
      | True, _ | _, True -> True
      | False, False -> False
      | _ -> Unknown)
  | Ir.Not a ->
    let fa = compile_cond ce a in
    fun ctx -> tri_not (fa ctx)

(* ------------------------------------------------------------------ *)
(* Conflict checks. [decide] runs the symbolic ladder and falls back to
   enumeration, reporting SWA038 for the fallback and either the exact
   code or SWA039 for a confirmed overlap. *)

let cpe_name r c = Printf.sprintf "(rid %d, cid %d)" r c

let decide ctx ~exact_code ~path ~what f1 f2 describe =
  match symbolic f1 f2 with
  | Disjoint -> ()
  | Overlap w -> hazard ctx ~code:exact_code ~path (describe w)
  | Inconclusive -> (
    warn ctx ~code:"SWA038" ~path
      (Printf.sprintf "%s: stride proof inconclusive (strides %d vs %d); enumerating" what f1.s
         f2.s);
    match enum_witness f1 f2 with
    | Some w -> hazard ctx ~code:"SWA039" ~path (describe w)
    | None -> ())

(* Pairwise disjointness of the 64 members of one collective put. The
   result only depends on the footprints' relative layout, so executions
   differing by a pure translation (successive tiles) share one check. *)
let check_intra ctx ~path ~buf (members : (int * int * fp) list) =
  match members with
  | [] | [ _ ] -> ()
  | (_, _, f0) :: _ ->
    let base = List.fold_left (fun m (_, _, f) -> min m f.o) f0.o members in
    let key = (path, List.map (fun (_, _, f) -> { f with o = f.o - base }) members) in
    if not (Hashtbl.mem ctx.intra_ok key) then begin
      let arr = Array.of_list members in
      let clean = ref true in
      for i = 0 to Array.length arr - 1 do
        for j = i + 1 to Array.length arr - 1 do
          let r1, c1, f1 = arr.(i) and r2, c2, f2 = arr.(j) in
          let describe w =
            Printf.sprintf "collective put: %s and %s footprints in %s both cover element %d"
              (cpe_name r1 c1) (cpe_name r2 c2) buf w
          in
          let before = ctx.diags in
          decide ctx ~exact_code:"SWA030" ~path ~what:"collective put" f1 f2 describe;
          if ctx.diags != before then clean := false
        done
      done;
      if !clean then Hashtbl.add ctx.intra_ok key ()
    end

(* A fresh member against the unretired transfers of other CPEs: put-vs-put
   is SWA030, get-vs-put (either order) SWA031. Same-CPE pairs are ordered
   by that CPE's own engine and never conflict. *)
let check_cross ctx ~path ~dir ~buf ~rid ~cid fp =
  List.iter
    (fun tr ->
      if
        String.equal tr.r_buf buf
        && (tr.r_rid <> rid || tr.r_cid <> cid)
        && (dir = Ir.Put || tr.r_dir = Ir.Put)
      then begin
        let code, what =
          if dir = Ir.Put && tr.r_dir = Ir.Put then ("SWA030", "put overlaps unretired put")
          else if dir = Ir.Get then ("SWA031", "get overlaps unretired put")
          else ("SWA031", "put overwrites a region still being read")
        in
        let describe w =
          Printf.sprintf "%s: %s here and %s of %s (issued at %s) both cover %s[%d]" what
            (cpe_name rid cid) (cpe_name tr.r_rid tr.r_cid)
            (match tr.r_dir with Ir.Put -> "put" | Ir.Get -> "get")
            tr.r_path buf w
        in
        decide ctx ~exact_code:code ~path ~what fp tr.r_fp describe
      end)
    ctx.inflight

(* ------------------------------------------------------------------ *)

(* Canonical in-flight state for loop-period detection: content in issue
   order with sequence numbers normalized away (retirement only depends on
   relative order). *)
let canon_state l = List.rev_map (fun r -> { r with r_seq = 0 }) l

let max_full_trips = 8
let head_trips = 4

let run_loop ctx ~slot ~lo ~step ~trips ~(body : ctx -> unit) =
  let run i =
    ctx.env.(slot) <- lo + (i * step);
    body ctx
  in
  if trips <= max_full_trips then
    for i = 0 to trips - 1 do
      run i
    done
  else begin
    let snaps = Array.make (head_trips + 1) [] in
    for i = 0 to head_trips - 1 do
      snaps.(i) <- canon_state ctx.inflight;
      run i
    done;
    snaps.(head_trips) <- canon_state ctx.inflight;
    let period =
      if snaps.(head_trips) = snaps.(head_trips - 1) then Some 1
      else if snaps.(head_trips) = snaps.(head_trips - 2) then Some 2
      else None
    in
    let start, quiet_tail =
      match period with
      | Some p ->
        let s = trips - 2 in
        ((if (s - head_trips) mod p = 0 then s else s - 1), false)
      | None ->
        ctx.imprecise <- true;
        (trips - 2, true)
    in
    let was = ctx.quiet in
    if quiet_tail then ctx.quiet <- true;
    for i = start to trips - 1 do
      run i
    done;
    ctx.quiet <- was
  end

let grid_last = snd Ir.cpe_id_range

type gemm_hook = { mutate : Sw26010.Regcomm.schedule -> Sw26010.Regcomm.schedule }

let rec compile_stmt ce ~hook ~path (s : Ir.stmt) : ctx -> unit =
  match s with
  | Ir.Comment _ | Ir.Memset_spm _ | Ir.Spm_copy _ | Ir.Transform _ ->
    (* SPM-local compute: no main-memory footprint; Ir_verify owns the
       SPM-side hazards. *)
    fun _ -> ()
  | Ir.Seq l ->
    let fs =
      List.mapi (fun i s -> compile_stmt ce ~hook ~path:(Printf.sprintf "%s[%d]" path i) s) l
    in
    fun ctx -> List.iter (fun f -> f ctx) fs
  | Ir.For fl ->
    let flo = compile_expr ce fl.lo
    and fhi = compile_expr ce fl.hi
    and fstep = compile_expr ce fl.step in
    let slot = slot_of ce fl.iter in
    let fbody = compile_stmt ce ~hook ~path:(path ^ "/for " ^ fl.iter) fl.body in
    fun ctx ->
      let lo = flo ctx and hi = fhi ctx and step = fstep ctx in
      if lo <> unk && hi <> unk && step <> unk && step > 0 then begin
        let trips = if hi <= lo then 0 else (hi - lo + step - 1) / step in
        if trips > 0 then run_loop ctx ~slot ~lo ~step ~trips ~body:fbody
      end
      else begin
        (* symbolic bounds: walk once, quietly, with an unknown iterator *)
        ctx.imprecise <- true;
        ctx.env.(slot) <- unk;
        let was = ctx.quiet in
        ctx.quiet <- true;
        fbody ctx;
        ctx.quiet <- was
      end
  | Ir.If { cond; then_; else_ } ->
    let fc = compile_cond ce cond in
    let ft = compile_stmt ce ~hook ~path:(path ^ "/if-then") then_
    and fe = compile_stmt ce ~hook ~path:(path ^ "/if-else") else_ in
    fun ctx -> (
      match fc ctx with
      | True -> ft ctx
      | False -> fe ctx
      | Unknown ->
        ctx.imprecise <- true;
        let was = ctx.quiet in
        ctx.quiet <- true;
        let saved = ctx.inflight in
        ft ctx;
        let after_then = ctx.inflight in
        ctx.inflight <- saved;
        fe ctx;
        ctx.inflight <- List.sort_uniq compare (after_then @ ctx.inflight);
        ctx.quiet <- was)
  | Ir.Dma d -> compile_dma ce ~path d
  | Ir.Dma_wait { tag } ->
    let ftag = compile_expr ce tag in
    fun ctx -> (
      let t = ftag ctx in
      if t = unk then ctx.imprecise <- true
      else
        let watermark =
          List.fold_left (fun w tr -> if tr.r_tag = t then max w tr.r_seq else w) (-1) ctx.inflight
        in
        if watermark >= 0 then
          (* the engine retires in issue order: everything at or before the
             newest matching transfer drains with it *)
          ctx.inflight <- List.filter (fun tr -> tr.r_seq > watermark) ctx.inflight)
  | Ir.Gemm g -> compile_gemm ce ~hook ~path g

and compile_dma ce ~path (d : Ir.dma) =
  let path =
    Printf.sprintf "%s/dma(%s %s)" path
      (match d.dir with Ir.Get -> "get" | Ir.Put -> "put")
      (match d.dir with Ir.Get -> d.main ^ "->" ^ d.spm | Ir.Put -> d.spm ^ "->" ^ d.main)
  in
  let desc =
    match d.per_cpe with Some c -> c | None -> Dma_inference.infer_desc d.region d.partition
  in
  let fdoff = compile_expr ce desc.Ir.d_offset
  and fdblock = compile_expr ce desc.Ir.d_block
  and fdstride = compile_expr ce desc.Ir.d_stride
  and fdcount = compile_expr ce desc.Ir.d_count
  and frows = compile_expr ce d.region.Ir.rows
  and frelems = compile_expr ce d.region.Ir.row_elems
  and ftag = compile_expr ce d.tag in
  let rid_slot = ce.rid_slot and cid_slot = ce.cid_slot in
  fun ctx ->
    let rows = frows ctx and relems = frelems ctx in
    if rows = unk || relems = unk then ctx.imprecise <- true
    else if rows > 0 && relems > 0 then begin
      let tag = ftag ctx in
      let members = ref [] in
      let ok = ref true in
      for r = grid_last downto 0 do
        for c = grid_last downto 0 do
          ctx.env.(rid_slot) <- r;
          ctx.env.(cid_slot) <- c;
          let o = fdoff ctx and b = fdblock ctx and s = fdstride ctx and cnt = fdcount ctx in
          if o = unk || b = unk || s = unk || cnt = unk then ok := false
          else if b > 0 && cnt > 0 then members := (r, c, { o; b; s; c = cnt }) :: !members
        done
      done;
      if (not !ok) || tag = unk then ctx.imprecise <- true
      else begin
        let members = !members in
        if d.dir = Ir.Put then check_intra ctx ~path ~buf:d.main members;
        List.iter
          (fun (r, c, fp) -> check_cross ctx ~path ~dir:d.dir ~buf:d.main ~rid:r ~cid:c fp)
          members;
        let seq = ctx.next_seq in
        ctx.next_seq <- seq + 1;
        let fresh =
          List.map
            (fun (r, c, fp) ->
              {
                r_seq = seq;
                r_dir = d.dir;
                r_buf = d.main;
                r_rid = r;
                r_cid = c;
                r_fp = fp;
                r_tag = tag;
                r_path = path;
              })
            members
        in
        (* set-replace: reissuing an identical member (same everything but
           seq) supersedes its stale record, keeping sampled-loop state
           finite for fire-and-forget puts *)
        let stale tr =
          List.exists
            (fun nr ->
              nr.r_dir = tr.r_dir && String.equal nr.r_buf tr.r_buf && nr.r_rid = tr.r_rid
              && nr.r_cid = tr.r_cid && nr.r_fp = tr.r_fp && nr.r_tag = tr.r_tag)
            fresh
        in
        ctx.inflight <- fresh @ List.filter (fun tr -> not (stale tr)) ctx.inflight
      end
    end

and compile_gemm ce ~hook ~path (g : Ir.gemm) =
  let path = path ^ "/gemm" in
  let fk = compile_expr ce g.k in
  fun ctx ->
    let k = fk ctx in
    if k = unk then ctx.imprecise <- true
    else if k > 0 && not (Hashtbl.mem ctx.seen ("regcomm", path ^ "#" ^ string_of_int k)) then begin
      Hashtbl.add ctx.seen ("regcomm", path ^ "#" ^ string_of_int k) ();
      let schedule = hook.mutate (Sw26010.Regcomm.gemm_schedule ~k_steps:k) in
      List.iter
        (fun v ->
          let code =
            match v with
            | Sw26010.Regcomm.Unbalanced _ -> "SWA032"
            | Sw26010.Regcomm.Cyclic _ -> "SWA033"
            | Sw26010.Regcomm.Bad_lane _ -> "SWA034"
          in
          hazard ctx ~code ~path
            (Printf.sprintf "exchange schedule (%d reduction steps): %s" k
               (Sw26010.Regcomm.describe_violation v)))
        (Sw26010.Regcomm.validate schedule)
    end

(* ------------------------------------------------------------------ *)

let verify ?mutate_regcomm (p : Ir.program) =
  let ce = { slots = Hashtbl.create 16; rid_slot = 0; cid_slot = 0 } in
  let ce = { ce with rid_slot = slot_of ce "rid"; cid_slot = slot_of ce "cid" } in
  let hook = { mutate = Option.value mutate_regcomm ~default:(fun s -> s) } in
  let compiled = compile_stmt ce ~hook ~path:"body" p.Ir.body in
  let ctx =
    {
      env = Array.make (max 1 (Hashtbl.length ce.slots)) unk;
      inflight = [];
      next_seq = 0;
      quiet = false;
      imprecise = false;
      diags = [];
      seen = Hashtbl.create 16;
      intra_ok = Hashtbl.create 16;
    }
  in
  compiled ctx;
  (* The imprecision flag dampens nothing below: leftover puts are reported
     even on an imprecise walk, because waits execute during quiet sampling
     too (only reports are muted) — a put in flight at exit was genuinely
     issued on the walked path and never retired. Sampling can omit
     transfers, never resurrect retired ones. *)
  ignore ctx.imprecise;
  List.iter
    (fun tr ->
      if tr.r_dir = Ir.Put then
        report ctx ~code:"SWA035" ~severity:Warning ~path:tr.r_path
          (Printf.sprintf "put tag %d into %s still in flight at end of program" tr.r_tag tr.r_buf))
    ctx.inflight;
  List.rev ctx.diags
