(** Persistent best-schedule store — the reproduction's TopHub.

    Tuning the same workload twice is pure waste: the schedule spaces are
    enumerated deterministically, so the winner of a previous run is still
    the winner as long as the space has not changed. Each cache entry maps a
    key ([operator name] + workload dimensions) to the winning candidate's
    {e index} in the enumerated space, guarded by a fingerprint of every
    candidate's description and the space size. If the space-generation code
    changes — different candidates, different order, different count — the
    fingerprint no longer matches and the entry is ignored, so a stale cache
    can cost a re-tune but never a wrong schedule.

    The on-disk format is a versioned line-oriented text file; unknown
    versions and malformed lines load as an empty/partial cache rather than
    an error, and a corrupt file is quarantined to [path ^ ".corrupt"]
    (warning once per path) so the damage survives for inspection. Load and
    save degrade on I/O failure — and on the ["cache.load"] /
    ["cache.save"] {!Prelude.Fault} sites — to a cold cache / a skipped
    save, never an exception. Lookup statistics ({!hits}/{!misses}) feed
    the tuning reports.

    Since v2, keys carry the {e search mode} that produced the winner
    (exhaustive and guided entries can never collide: a guided winner is
    the best of a measured subset, not necessarily the space's optimum),
    and the file additionally stores fitted learned-cost-model weights per
    operator family ({!find_model}/{!remember_model}) so a guided tune of
    a new workload warm-starts from its family's previous model. v1 files
    present as an unknown version and quarantine to a cold cache.

    {b Concurrency.} A cache value is domain-safe: every in-memory access
    ({!find}, {!remember}, {!find_model}, {!remember_model}, the counters,
    and the whole of {!save}) runs under an internal mutex, so the serving
    layer's per-CG workers share one warm cache — an entry remembered by
    one worker is immediately visible to the others without re-tuning.
    Cross-process safety comes from the file protocol: {!save} writes a
    complete file to a PID-tagged temp name and publishes it with a single
    atomic [rename], and {!load} opens the path once, so a concurrent
    reader observes the old complete file or the new complete file — never
    a partially written one. *)

type entry = {
  fingerprint : int;  (** {!fingerprint} of the space this entry was tuned on *)
  space_size : int;
  index : int;  (** winner's index in the enumerated candidate list *)
  seconds : float;  (** best_seconds recorded when the entry was tuned *)
}

type t

val create : unit -> t

val load : string -> t
(** Missing, unreadable, or version-mismatched files yield an empty cache;
    version-mismatched or partially malformed files are also quarantined. *)

val save : string -> t -> unit
(** Writes atomically (PID-tagged temp file + rename), and only when
    entries changed since [load]/the last [save]. Failures warn and skip
    the save. *)

val key : ?search:string -> op:string -> dims:int list -> unit -> string
(** E.g. [key ~op:"matmul" ~dims:[512; 512; 512] ()] =
    ["matmul:512x512x512#exhaustive"]; [search] defaults to
    ["exhaustive"], the guided tuner passes ["guided"]. Raises
    [Invalid_argument] if [op] or [search] contains whitespace or
    [search] is empty. *)

val fingerprint : string list -> int
(** Order-sensitive FNV-1a hash of the candidates' [describe] strings;
    non-negative so it round-trips through the text format. *)

val find : t -> key:string -> fingerprint:int -> space_size:int -> entry option
(** [None] (a recorded miss) when the key is absent {e or} the stored entry
    was tuned on a different space. *)

val remember : t -> key:string -> entry -> unit

val find_model : t -> family:string -> version:int -> string option
(** Serialized learned-model weights for an operator family (e.g.
    ["matmul"]), or [None] when absent or stored under a different
    {!Learned_model.format_version} — a format bump degrades to a cold
    start, never a misread. *)

val remember_model : t -> family:string -> version:int -> string -> unit
(** Stores (replacing) the family's warm-start weights. The payload must
    be a single line without tabs — {!Learned_model.weights_to_string}
    satisfies this. Raises [Invalid_argument] otherwise. *)

val size : t -> int
(** Number of schedule entries (model entries not included). *)

val model_count : t -> int
val hits : t -> int
val misses : t -> int
