(** Persistent best-schedule store — the reproduction's TopHub.

    Tuning the same workload twice is pure waste: the schedule spaces are
    enumerated deterministically, so the winner of a previous run is still
    the winner as long as the space has not changed. Each cache entry maps a
    key ([operator name] + workload dimensions) to the winning candidate's
    {e index} in the enumerated space, guarded by a fingerprint of every
    candidate's description and the space size. If the space-generation code
    changes — different candidates, different order, different count — the
    fingerprint no longer matches and the entry is ignored, so a stale cache
    can cost a re-tune but never a wrong schedule.

    The on-disk format is a versioned line-oriented text file; unknown
    versions and malformed lines load as an empty/partial cache rather than
    an error, and a corrupt file is quarantined to [path ^ ".corrupt"]
    (warning once per path) so the damage survives for inspection. Load and
    save degrade on I/O failure — and on the ["cache.load"] /
    ["cache.save"] {!Prelude.Fault} sites — to a cold cache / a skipped
    save, never an exception. Lookup statistics ({!hits}/{!misses}) feed
    the tuning reports. *)

type entry = {
  fingerprint : int;  (** {!fingerprint} of the space this entry was tuned on *)
  space_size : int;
  index : int;  (** winner's index in the enumerated candidate list *)
  seconds : float;  (** best_seconds recorded when the entry was tuned *)
}

type t

val create : unit -> t

val load : string -> t
(** Missing, unreadable, or version-mismatched files yield an empty cache;
    version-mismatched or partially malformed files are also quarantined. *)

val save : string -> t -> unit
(** Writes atomically (PID-tagged temp file + rename), and only when
    entries changed since [load]/the last [save]. Failures warn and skip
    the save. *)

val key : op:string -> dims:int list -> string
(** E.g. [key ~op:"matmul" ~dims:[512; 512; 512]] = ["matmul:512x512x512"].
    Raises [Invalid_argument] if [op] contains whitespace. *)

val fingerprint : string list -> int
(** Order-sensitive FNV-1a hash of the candidates' [describe] strings;
    non-negative so it round-trips through the text format. *)

val find : t -> key:string -> fingerprint:int -> space_size:int -> entry option
(** [None] (a recorded miss) when the key is absent {e or} the stored entry
    was tuned on a different space. *)

val remember : t -> key:string -> entry -> unit

val size : t -> int
val hits : t -> int
val misses : t -> int
