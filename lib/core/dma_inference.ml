open Ir

(* Grid extent derived from the IR's own rid/cid range metadata, so the
   descriptors this pass emits and the bounds Ir_verify assumes about them
   share one source of truth. *)
let grid_n = Ir.grid_extent
let cpes = Const (Stdlib.( * ) grid_n grid_n)
let grid = Const grid_n
let cpe_id = Ir.cpe_linear

(* ceil(a / b) for expressions with constant-friendly simplification *)
let ceil_div_e a b = (a + (b - Const 1)) / b

let infer_desc (r : region) = function
  | P_rows ->
    (* Each CPE takes [ceil(rows/64)] consecutive row blocks; trailing CPEs
       clip to what remains. *)
    let per = ceil_div_e r.rows cpes in
    {
      d_offset = r.offset + (cpe_id * per * r.row_stride);
      d_block = r.row_elems;
      d_stride = r.row_stride;
      d_count = emax (Const 0) (emin per (r.rows - (cpe_id * per)));
    }
  | P_cols ->
    (* Each CPE takes a [ceil(row_elems/64)] slice of every row block. *)
    let slice = ceil_div_e r.row_elems cpes in
    {
      d_offset = r.offset + (cpe_id * slice);
      d_block = emax (Const 0) (emin slice (r.row_elems - (cpe_id * slice)));
      d_stride = r.row_stride;
      d_count = r.rows;
    }
  | P_grid ->
    (* CPE (rid, cid) takes the (cid, rid) tile of the 8x8 grid over
       (rows x row_elems) — the column id picks the block, the row id the
       slice within a block, matching the worked example of Fig. 4:
       offset = (cid*N/8)*M + rid*M/8 for a column-major M x N matrix. *)
    let rows_per = ceil_div_e r.rows grid and cols_per = ceil_div_e r.row_elems grid in
    {
      d_offset = r.offset + (cid * rows_per * r.row_stride) + (rid * cols_per);
      d_block = emax (Const 0) (emin cols_per (r.row_elems - (rid * cols_per)));
      d_stride = r.row_stride;
      d_count = emax (Const 0) (emin rows_per (r.rows - (cid * rows_per)));
    }

let apply (p : program) =
  let body =
    map_stmt
      (function
        | Dma ({ per_cpe = None; _ } as d) ->
          Dma { d with per_cpe = Some (infer_desc d.region d.partition) }
        | s -> s)
      p.body
  in
  { p with body }
