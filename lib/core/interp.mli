(** Simulated execution of IR programs on one SW26010 core group.

    The interpreter is both the repository's "hardware": it plays the role
    the real machine plays in the paper. It executes a program against a
    discrete-event model — a single lock-step CPE clock plus an asynchronous
    DMA engine — producing a simulated wall-clock time, and (optionally) the
    exact numeric result by actually moving data and running the kernels.

    Programs must have per-CPE DMA descriptors already inferred
    (see {!Dma_inference}); running a program with a missing descriptor
    raises [Invalid_argument].

    Performance note: the program is compiled to closures once per [run], so
    replaying thousands of schedule candidates (the black-box tuner) costs
    interpretation of the loop nests only, not repeated AST dispatch. *)

type fidelity =
  | Exact_cpes  (** evaluate all 64 per-CPE descriptors of every DMA *)
  | Sampled_cpes
      (** evaluate three representative CPEs — (0,0), (0,1), (7,7) — and
          charge the worst; three orders of magnitude cheaper, within a few
          percent of exact on the partitions the schedulers emit *)

type result = {
  seconds : float;  (** simulated wall-clock, including DMA drain *)
  dma_busy_seconds : float;  (** time the DMA engine spent transferring *)
  compute_busy_seconds : float;  (** time the CPE pipelines spent computing *)
  gemm_calls : int;
  gemm_flops : float;  (** useful FLOPs retired by GEMM primitives *)
  dma_payload_bytes : int;  (** useful bytes moved (one CPE's worth x 64) *)
  dma_transaction_bytes : int;  (** bytes actually crossing the DRAM bus *)
}

val alloc_bindings : Ir.program -> (string * float array) list
(** Zeroed backing arrays, one per [Main] buffer of the program, each sized
    exactly [cg_elems] — the bindings a numeric {!run} demands. Callers fill
    (or overwrite the entries for) input buffers and hand the list to [run];
    the hand-rolled [Array.make] boilerplate this replaces lives on only in
    tests that deliberately bind wrong sizes. *)

val run :
  ?fidelity:fidelity ->
  ?bindings:(string * float array) list ->
  ?trace:Trace.t ->
  numeric:bool ->
  Ir.program ->
  result
(** Execute the program. In numeric mode, [bindings] must provide a backing
    array for every [Main] buffer (sized [cg_elems]); output buffers are
    mutated in place. In cost-only mode ([numeric = false]) no data moves and
    [bindings] is ignored. When [trace] is given, every timed event is
    recorded into it (see {!Trace}). *)

val flops_per_second : result -> float
(** Achieved FLOP rate of the run, [gemm_flops / seconds]. *)

(** {2 Shadow-memory DMA sanitizer}

    The dynamic oracle behind {!Ir_race}: every main-memory element is
    tagged with the sequence number and CPE of its newest unretired writer
    and reader, and each per-CPE transfer element is checked against those
    shadows under the same in-order retirement model the static pass uses
    (a [Dma_wait] on tag [t] retires everything issued at or before the
    newest transfer tagged [t]). The sanitizer walks {e every} loop
    iteration with concrete bounds — no sampling — so it confirms or
    refutes the static pass's verdicts; the differential fuzzer asserts
    the two agree on every mutant. *)

type race_kind =
  | Race_ww  (** two distinct CPEs wrote the element in one epoch (SWA030/SWA039) *)
  | Race_rw  (** a CPE read an element another CPE's put had not retired (SWA031) *)
  | Race_war  (** a CPE overwrote an element another CPE was still reading (SWA031) *)
  | Race_undrained  (** a put was still in flight at program exit (SWA035) *)

type race = {
  race_kind : race_kind;
  race_buf : string;
  race_elem : int;  (** witness element index; [-1] for [Race_undrained] *)
  race_path : string;  (** statement path of the access that trapped *)
  race_other : string;  (** path of the conflicting earlier transfer; [""] if none *)
}

val race_to_string : race -> string

val sanitize : Ir.program -> race list
(** Execute the program's DMA statements (and only those — no numeric or
    timing work) over shadow memory and return every race found, deduped
    by (kind, path, conflicting path). Loop bounds and descriptors must
    evaluate concretely; descriptors missing [per_cpe] are inferred via
    {!Dma_inference.infer_desc}. Raises [Invalid_argument] on a
    non-positive loop step or a DMA against a non-[Main] buffer. *)
