type expr =
  | Const of int
  | Var of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Mod of expr * expr
  | Min of expr * expr
  | Max of expr * expr

type cmp = Lt | Le | Eq | Ne
type cond = Cmp of cmp * expr * expr | And of cond * cond | Or of cond * cond | Not of cond

let int i = Const i
let var v = Var v

let rec simplify e =
  let binop mk fold a b =
    match (simplify a, simplify b) with
    | Const x, Const y -> Const (fold x y)
    | a', b' -> mk a' b'
  in
  match e with
  | Const _ | Var _ -> e
  | Add (a, b) -> begin
    match binop (fun a b -> Add (a, b)) Stdlib.( + ) a b with
    | Add (Const 0, x) | Add (x, Const 0) -> x
    | e' -> e'
  end
  | Sub (a, b) -> begin
    match binop (fun a b -> Sub (a, b)) Stdlib.( - ) a b with
    | Sub (x, Const 0) -> x
    | e' -> e'
  end
  | Mul (a, b) -> begin
    match binop (fun a b -> Mul (a, b)) Stdlib.( * ) a b with
    | Mul (Const 1, x) | Mul (x, Const 1) -> x
    | Mul (Const 0, _) | Mul (_, Const 0) -> Const 0
    | e' -> e'
  end
  (* A Const 0 denominator is left unfolded rather than raising
     Division_by_zero mid-simplification; Ir_verify reports it. *)
  | Div (a, b) -> begin
    match (simplify a, simplify b) with
    | Const x, Const y when y <> 0 -> Const (x / y)
    | x', Const 1 -> x'
    | a', b' -> Div (a', b')
  end
  | Mod (a, b) -> begin
    match (simplify a, simplify b) with
    | Const x, Const y when y <> 0 -> Const (x mod y)
    | a', b' -> Mod (a', b')
  end
  | Min (a, b) -> begin
    match binop (fun a b -> Min (a, b)) Stdlib.min a b with
    | Min (x, y) when x = y -> x
    | e' -> e'
  end
  | Max (a, b) -> begin
    match binop (fun a b -> Max (a, b)) Stdlib.max a b with
    | Max (x, y) when x = y -> x
    | e' -> e'
  end

let ( + ) a b = simplify (Add (a, b))
let ( - ) a b = simplify (Sub (a, b))
let ( * ) a b = simplify (Mul (a, b))
let ( / ) a b = simplify (Div (a, b))
let ( % ) a b = simplify (Mod (a, b))
let emin a b = simplify (Min (a, b))
let emax a b = simplify (Max (a, b))
let ( < ) a b = Cmp (Lt, a, b)
let ( <= ) a b = Cmp (Le, a, b)
let ( = ) a b = Cmp (Eq, a, b)
let ( <> ) a b = Cmp (Ne, a, b)

let rec subst bindings e =
  let s = subst bindings in
  match e with
  | Const _ -> e
  | Var v -> ( match List.assoc_opt v bindings with Some e' -> e' | None -> e)
  | Add (a, b) -> simplify (Add (s a, s b))
  | Sub (a, b) -> simplify (Sub (s a, s b))
  | Mul (a, b) -> simplify (Mul (s a, s b))
  | Div (a, b) -> simplify (Div (s a, s b))
  | Mod (a, b) -> simplify (Mod (s a, s b))
  | Min (a, b) -> simplify (Min (s a, s b))
  | Max (a, b) -> simplify (Max (s a, s b))

let rec subst_cond bindings c =
  match c with
  | Cmp (op, a, b) -> Cmp (op, subst bindings a, subst bindings b)
  | And (a, b) -> And (subst_cond bindings a, subst_cond bindings b)
  | Or (a, b) -> Or (subst_cond bindings a, subst_cond bindings b)
  | Not a -> Not (subst_cond bindings a)

let free_vars e =
  let rec loop acc = function
    | Const _ -> acc
    | Var v -> if List.mem v acc then acc else v :: acc
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b) | Min (a, b) | Max (a, b) ->
      loop (loop acc a) b
  in
  List.rev (loop [] e)

let to_const = function Const i -> Some i | _ -> None
let rid = Var "rid"
let cid = Var "cid"
let is_cpe_var v = String.equal v "rid" || String.equal v "cid"

(* Inclusive range of both [rid] and [cid]; the CPE grid is square. *)
let cpe_id_range = (0, Stdlib.( - ) Sw26010.Config.cpe_rows 1)

let grid_extent = Stdlib.( + ) (snd cpe_id_range) 1
let cpe_linear = Add (Mul (rid, Const grid_extent), cid)

type mem_space = Main | Spm

type buf = {
  buf_name : string;
  space : mem_space;
  cg_elems : int;
  cpe_elems : int;
  double_buffered : bool;
}

let main_buf ~name ~elems =
  if Stdlib.(elems <= 0) then invalid_arg "Ir.main_buf: non-positive size";
  { buf_name = name; space = Main; cg_elems = elems; cpe_elems = 0; double_buffered = false }

let spm_buf ~name ~cg_elems ~cpe_elems =
  if Stdlib.(cg_elems <= 0 || cpe_elems <= 0) then invalid_arg "Ir.spm_buf: non-positive size";
  { buf_name = name; space = Spm; cg_elems; cpe_elems; double_buffered = false }

type dir = Get | Put
type region = { offset : expr; rows : expr; row_elems : expr; row_stride : expr }
type partition = P_rows | P_cols | P_grid
type cpe_desc = { d_offset : expr; d_block : expr; d_stride : expr; d_count : expr }
type gemm_operand = { g_buf : string; g_offset : expr; g_ld : expr }
type transform_kind = Wino_input | Wino_filter | Wino_output

type stmt =
  | Seq of stmt list
  | For of for_loop
  | If of { cond : cond; then_ : stmt; else_ : stmt }
  | Dma of dma
  | Dma_wait of { tag : expr }
  | Gemm of gemm
  | Memset_spm of { buf : string; offset : expr; elems : expr }
  | Spm_copy of spm_copy
  | Transform of transform
  | Comment of string

and for_loop = { iter : string; lo : expr; hi : expr; step : expr; body : stmt; prefetch : bool }

and spm_copy = {
  cp_src : string;
  cp_src_offset : expr;
  cp_src_ld : expr;
  cp_dst : string;
  cp_dst_offset : expr;
  cp_dst_ld : expr;
  cp_rows : expr;
  cp_row_elems : expr;
}

and dma = {
  dir : dir;
  main : string;
  spm : string;
  tag : expr;
  region : region;
  spm_offset : expr;
  spm_ld : expr;
  partition : partition;
  per_cpe : cpe_desc option;
}

and gemm = {
  variant : Primitives.Spm_gemm.variant;
  m : expr;
  n : expr;
  k : expr;
  a : gemm_operand;
  b : gemm_operand;
  c : gemm_operand;
}

and transform = {
  kind : transform_kind;
  t_src : string;
  t_src_offset : expr;
  t_dst : string;
  t_dst_offset : expr;
  t_chans : expr;
  t_tiles_r : expr;
  t_tiles_c : expr;
  t_src_ld : expr;
}

type program = { prog_name : string; bufs : buf list; body : stmt; overlapped : bool }

let program ~name ~bufs body = { prog_name = name; bufs; body; overlapped = false }

let seq stmts =
  let flat =
    List.concat_map (function Seq inner -> inner | s -> [ s ]) stmts
    |> List.filter (function Seq [] -> false | _ -> true)
  in
  match flat with [ s ] -> s | l -> Seq l

let for_ ?(prefetch = false) ~iter ~lo ~hi ?(step = Const 1) body =
  For { iter; lo; hi; step; body; prefetch }

let loop_iter_range (fl : for_loop) =
  match (fl.lo, fl.hi, fl.step) with
  | Const lo, Const hi, Const step when Stdlib.(step > 0 && hi > lo) ->
    Some Stdlib.(lo, lo + ((hi - 1 - lo) / step * step))
  | _ -> None

let find_buf p name = List.find_opt (fun b -> String.equal b.buf_name name) p.bufs

let rec map_stmt f s =
  let s' =
    match s with
    | Seq l -> Seq (List.map (map_stmt f) l)
    | For fl -> For { fl with body = map_stmt f fl.body }
    | If { cond; then_; else_ } -> If { cond; then_ = map_stmt f then_; else_ = map_stmt f else_ }
    | Dma _ | Dma_wait _ | Gemm _ | Memset_spm _ | Spm_copy _ | Transform _ | Comment _ -> s
  in
  f s'

let rec fold_stmt f acc s =
  let acc = f acc s in
  match s with
  | Seq l -> List.fold_left (fold_stmt f) acc l
  | For fl -> fold_stmt f acc fl.body
  | If { then_; else_; _ } -> fold_stmt f (fold_stmt f acc then_) else_
  | Dma _ | Dma_wait _ | Gemm _ | Memset_spm _ | Spm_copy _ | Transform _ | Comment _ -> acc

let count_nodes s = fold_stmt (fun n _ -> Stdlib.( + ) n 1) 0 s
