type t = { pool_bytes : int; offsets : (string * int) list }

let requests (p : Ir.program) =
  List.filter_map
    (fun (b : Ir.buf) ->
      match b.space with
      | Ir.Main -> None
      | Ir.Spm ->
        Some
          (Sw26010.Spm.request ~double_buffered:b.double_buffered ~name:b.buf_name
             ~bytes:(b.cpe_elems * Sw26010.Config.elem_bytes) ()))
    p.bufs

let plan (p : Ir.program) =
  match Sw26010.Spm.plan (requests p) with
  | Error e -> Error e
  | Ok spm_plan ->
    Ok
      {
        pool_bytes = spm_plan.used_bytes;
        offsets = List.map (fun (s : Sw26010.Spm.slot) -> (s.slot_name, s.offset)) spm_plan.slots;
      }

let offset_of t name =
  match List.assoc_opt name t.offsets with
  | Some o -> o
  | None -> invalid_arg ("Mem_plan.offset_of: unknown buffer " ^ name)
