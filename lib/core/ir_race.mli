(** Cross-CPE interference analysis: the 64 CPEs of a core group must not
    race each other through main memory or the register-communication mesh.

    {!Ir_verify} proves each CPE's own dataflow sound; this pass proves the
    CPEs sound {e against each other}. Every DMA statement execution is a
    collective of 64 per-CPE transfers whose main-memory footprints are
    evaluated concretely as [(offset, block, stride, count)] sets over the
    full [rid]/[cid] grid ({!Ir.cpe_id_range}), with the same concrete loop
    sampling as {!Ir_verify} (head window + detected period + phase-aligned
    tail).

    {2 Epoch model}

    Transfers retire in issue order: a [Dma_wait] on tag [t] blocks until
    the newest in-flight transfer tagged [t] completes, and since the
    engine drains in order, everything issued before it completes too
    (sequence-number watermark). Between waits, transfers from {e distinct}
    CPEs are mutually unordered — those are the synchronization epochs
    within which overlap is a race. Transfers from the same CPE are always
    ordered by its own engine and never conflict with each other.

    {2 Diagnostics}

    - SWA030 (error): two distinct CPEs' put footprints overlap — within
      one collective put or across unretired puts of an epoch.
    - SWA031 (error): a get overlaps a distinct CPE's unretired put, or a
      put overwrites a region a distinct CPE is still reading.
    - SWA032–SWA034 (error): regcomm exchange-schedule violations
      (unbalanced lane, cyclic wait, bad lane) — see {!Sw26010.Regcomm}.
    - SWA035 (warning): a put is still in flight at program exit, so
      generated code could truncate stores (the put sibling of SWA005).
    - SWA038 (warning): the symbolic disjointness proof (dense-interval,
      same-stride phase/rectangle) was inconclusive and the pass fell back
      to concrete per-row enumeration.
    - SWA039 (error): that enumeration found a real overlap.

    Disjointness is decided symbolically first — exact interval tests for
    dense footprints, and for same-stride footprints a modular phase proof
    plus an exact row/column rectangle test — and only then by enumeration,
    so errors are always definite (a witness element exists). *)

val verify :
  ?mutate_regcomm:(Sw26010.Regcomm.schedule -> Sw26010.Regcomm.schedule) ->
  Ir.program ->
  Ir_verify.diagnostic list
(** Run the analysis over an optimized program. DMA statements without
    inferred per-CPE descriptors get them from {!Dma_inference.infer_desc}
    on the fly, so raw scheduler output can be checked too.
    [mutate_regcomm] rewrites each GEMM's derived exchange schedule before
    validation — a test hook for planting SWA032–SWA034. *)

val registry : (string * Ir_verify.severity * string) list
(** The SWA03x codes with severity and one-line summary. *)
