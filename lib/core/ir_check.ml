open Ir
open! Stdlib

type error = { at : string; reason : string }

let error_to_string e = Printf.sprintf "%s: %s" e.at e.reason

let spm_footprint_bytes (p : program) = Sw26010.Spm.footprint (Mem_plan.requests p)

let check (p : program) =
  let errors = ref [] in
  let fail at reason = errors := { at; reason } :: !errors in
  (* Unique buffer names. *)
  let names = List.map (fun b -> b.buf_name) p.bufs in
  List.iter
    (fun n ->
      if List.length (List.filter (String.equal n) names) > 1 then
        fail n "duplicate buffer declaration")
    (List.sort_uniq String.compare names);
  let lookup name = List.find_opt (fun b -> String.equal b.buf_name name) p.bufs in
  let expect_space at name space =
    match lookup name with
    | None -> fail at (Printf.sprintf "undeclared buffer %s" name)
    | Some b -> if Stdlib.(b.space <> space) then fail at (Printf.sprintf "buffer %s in wrong memory space" name)
  in
  (* Variable scoping. *)
  let check_vars ~at ~bound ?(allow_cpe = false) e =
    List.iter
      (fun v ->
        if not (List.mem v bound || (allow_cpe && is_cpe_var v)) then
          fail at (Printf.sprintf "unbound variable %s" v))
      (free_vars e)
  in
  let rec check_cond_vars ~at ~bound = function
    | Cmp (_, a, b) ->
      check_vars ~at ~bound a;
      check_vars ~at ~bound b
    | And (a, b) | Or (a, b) ->
      check_cond_vars ~at ~bound a;
      check_cond_vars ~at ~bound b
    | Not a -> check_cond_vars ~at ~bound a
  in
  let rec walk bound = function
    | Seq l -> List.iter (walk bound) l
    | For { iter; lo; hi; step; body; _ } ->
      check_vars ~at:("for " ^ iter) ~bound lo;
      check_vars ~at:("for " ^ iter) ~bound hi;
      check_vars ~at:("for " ^ iter) ~bound step;
      walk (iter :: bound) body
    | If { cond; then_; else_ } ->
      check_cond_vars ~at:"if" ~bound cond;
      walk bound then_;
      walk bound else_
    | Dma { main; spm; tag; region; spm_offset; spm_ld; per_cpe; _ } ->
      let at = Printf.sprintf "dma %s/%s" main spm in
      expect_space at main Main;
      expect_space at spm Spm;
      List.iter (check_vars ~at ~bound)
        [ tag; region.offset; region.rows; region.row_elems; region.row_stride; spm_offset; spm_ld ];
      Option.iter
        (fun d ->
          List.iter (check_vars ~at ~bound ~allow_cpe:true) [ d.d_offset; d.d_block; d.d_stride; d.d_count ])
        per_cpe
    | Dma_wait { tag } -> check_vars ~at:"dma_wait" ~bound tag
    | Gemm { m; n; k; a; b; c; _ } ->
      let at = "gemm" in
      List.iter (check_vars ~at ~bound) [ m; n; k ];
      List.iter
        (fun (op : gemm_operand) ->
          expect_space at op.g_buf Spm;
          check_vars ~at ~bound op.g_offset;
          check_vars ~at ~bound op.g_ld)
        [ a; b; c ]
    | Memset_spm { buf; offset; elems } ->
      expect_space "memset" buf Spm;
      check_vars ~at:"memset" ~bound offset;
      check_vars ~at:"memset" ~bound elems
    | Spm_copy c ->
      let at = "spm_copy" in
      expect_space at c.cp_src Spm;
      expect_space at c.cp_dst Spm;
      List.iter (check_vars ~at ~bound)
        [ c.cp_src_offset; c.cp_src_ld; c.cp_dst_offset; c.cp_dst_ld; c.cp_rows; c.cp_row_elems ]
    | Transform t ->
      let at = "transform" in
      expect_space at t.t_src Spm;
      expect_space at t.t_dst Spm;
      List.iter (check_vars ~at ~bound)
        [ t.t_src_offset; t.t_dst_offset; t.t_chans; t.t_tiles_r; t.t_tiles_c; t.t_src_ld ]
    | Comment _ -> ()
  in
  walk [] p.body;
  let footprint = spm_footprint_bytes p in
  if Stdlib.(footprint > Sw26010.Config.spm_bytes) then
    fail "spm"
      (Printf.sprintf "per-CPE footprint %d bytes exceeds %d" footprint Sw26010.Config.spm_bytes);
  match !errors with [] -> Ok () | l -> Error (List.rev l)
