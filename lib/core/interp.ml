open! Stdlib

type fidelity = Exact_cpes | Sampled_cpes

type result = {
  seconds : float;
  dma_busy_seconds : float;
  compute_busy_seconds : float;
  gemm_calls : int;
  gemm_flops : float;
  dma_payload_bytes : int;
  dma_transaction_bytes : int;
}

(* ------------------------------------------------------------------ *)
(* Variable slots: every loop iterator (plus rid/cid) gets an index in a
   mutable int array, so expression evaluation allocates nothing. *)

type slots = { table : (string, int) Hashtbl.t; mutable next : int }

let slots_create () =
  let s = { table = Hashtbl.create 16; next = 0 } in
  List.iter
    (fun v ->
      Hashtbl.replace s.table v s.next;
      s.next <- s.next + 1)
    [ "rid"; "cid" ];
  s

let slot_of s v =
  match Hashtbl.find_opt s.table v with
  | Some i -> i
  | None ->
    let i = s.next in
    Hashtbl.replace s.table v i;
    s.next <- i + 1;
    i

let rid_slot = 0
let cid_slot = 1

(* ------------------------------------------------------------------ *)
(* Expression compilation. *)

let rec compile_expr slots (e : Ir.expr) : int array -> int =
  match e with
  | Const i -> fun _ -> i
  | Var v ->
    let s = slot_of slots v in
    fun env -> env.(s)
  | Add (a, b) -> bin slots ( + ) a b
  | Sub (a, b) -> bin slots ( - ) a b
  | Mul (a, b) -> bin slots ( * ) a b
  | Div (a, b) -> bin slots (fun x y -> x / y) a b
  | Mod (a, b) -> bin slots (fun x y -> x mod y) a b
  | Min (a, b) -> bin slots min a b
  | Max (a, b) -> bin slots max a b

and bin slots op a b =
  let fa = compile_expr slots a and fb = compile_expr slots b in
  fun env -> op (fa env) (fb env)

let rec compile_cond slots (c : Ir.cond) : int array -> bool =
  match c with
  | Cmp (op, a, b) ->
    let fa = compile_expr slots a and fb = compile_expr slots b in
    let test : int -> int -> bool =
      match op with Lt -> ( < ) | Le -> ( <= ) | Eq -> ( = ) | Ne -> ( <> )
    in
    fun env -> test (fa env) (fb env)
  | And (a, b) ->
    let fa = compile_cond slots a and fb = compile_cond slots b in
    fun env -> fa env && fb env
  | Or (a, b) ->
    let fa = compile_cond slots a and fb = compile_cond slots b in
    fun env -> fa env || fb env
  | Not a ->
    let fa = compile_cond slots a in
    fun env -> not (fa env)

(* ------------------------------------------------------------------ *)
(* Execution state. *)

type state = {
  cg : Sw26010.Core_group.t;
  env : int array;
  numeric : bool;
  trace : Trace.t option;
  buffers : (string, float array) Hashtbl.t;
  mutable gemm_calls : int;
  mutable gemm_flops : float;
  mutable payload_bytes : int;
  mutable transaction_bytes : int;
}

let buffer st name =
  match Hashtbl.find_opt st.buffers name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Interp: buffer %s has no backing array" name)

let elem = Sw26010.Config.elem_bytes

(* DMA cost: evaluate the per-CPE descriptor for a set of (rid, cid) pairs
   and charge the slowest CPE's transaction bytes (the collective completes
   when the last CPE's engine drains). *)
let sampled_cpes = [| (0, 0); (0, 1); (7, 7) |]

let all_cpes =
  Array.init Sw26010.Config.cpes_per_cg (fun i ->
      (i / Sw26010.Config.cpe_cols, i mod Sw26010.Config.cpe_cols))

let transform_tile_cycles = function
  | Ir.Wino_input -> 26.0
  | Ir.Wino_filter -> 30.0
  | Ir.Wino_output -> 22.0

(* ------------------------------------------------------------------ *)

let compile ~fidelity (p : Ir.program) =
  let slots = slots_create () in
  let cpes = match fidelity with Exact_cpes -> all_cpes | Sampled_cpes -> sampled_cpes in
  let buf_elems name =
    match Ir.find_buf p name with
    | Some b -> if b.double_buffered then 2 * b.cg_elems else b.cg_elems
    | None -> invalid_arg (Printf.sprintf "Interp: undeclared buffer %s" name)
  in
  let rec compile_stmt (s : Ir.stmt) : state -> unit =
    match s with
    | Seq l ->
      let fs = Array.of_list (List.map compile_stmt l) in
      fun st -> Array.iter (fun f -> f st) fs
    | For { iter; lo; hi; step; body; _ } ->
      let slot = slot_of slots iter in
      let flo = compile_expr slots lo
      and fhi = compile_expr slots hi
      and fstep = compile_expr slots step in
      let fbody = compile_stmt body in
      fun st ->
        let hi = fhi st.env and step = fstep st.env in
        if step <= 0 then invalid_arg "Interp: non-positive loop step";
        let i = ref (flo st.env) in
        while !i < hi do
          st.env.(slot) <- !i;
          fbody st;
          i := !i + step
        done
    | If { cond; then_; else_ } ->
      let fc = compile_cond slots cond in
      let ft = compile_stmt then_ and fe = compile_stmt else_ in
      fun st -> if fc st.env then ft st else fe st
    | Dma { dir; main; spm; tag; region; spm_offset; spm_ld; per_cpe; _ } ->
      let desc =
        match per_cpe with
        | Some d -> d
        | None -> invalid_arg "Interp: DMA without per-CPE descriptor (run Dma_inference)"
      in
      let ftag = compile_expr slots tag in
      let f_off = compile_expr slots desc.d_offset
      and f_block = compile_expr slots desc.d_block
      and f_stride = compile_expr slots desc.d_stride
      and f_count = compile_expr slots desc.d_count in
      let f_roff = compile_expr slots region.offset
      and f_rows = compile_expr slots region.rows
      and f_relems = compile_expr slots region.row_elems
      and f_rstride = compile_expr slots region.row_stride in
      let f_spm_off = compile_expr slots spm_offset in
      let f_spm_ld = compile_expr slots spm_ld in
      let spm_len = buf_elems spm in
      (* Per-CPE one-entry caches: across loop iterations the descriptor
         shape repeats and the transaction waste depends on the offset only
         through its alignment phase. *)
      let n_cpes = Array.length cpes in
      let ck_phase = Array.make n_cpes min_int
      and ck_block = Array.make n_cpes min_int
      and ck_stride = Array.make n_cpes min_int
      and ck_count = Array.make n_cpes min_int
      and cv_txn = Array.make n_cpes 0
      and cv_payload = Array.make n_cpes 0 in
      fun st ->
        (* Fault site: a DMA issue that raises models a failed/hung transfer
           descriptor; counter triggers (n=/first=) hit the Nth dynamic
           issue of the run. *)
        Prelude.Fault.check "interp.dma.issue";
        (* Cost: worst transaction load among the (sampled) CPEs. *)
        let worst_txn = ref 0 and total_payload = ref 0 in
        Array.iteri
          (fun i (r, c) ->
            st.env.(rid_slot) <- r;
            st.env.(cid_slot) <- c;
            let off = f_off st.env * elem in
            let block = f_block st.env * elem in
            let stride = max (f_stride st.env) (f_block st.env) * elem in
            let count = f_count st.env in
            let phase = off mod Sw26010.Config.dram_transaction_bytes in
            if
              not
                (ck_phase.(i) = phase && ck_block.(i) = block && ck_stride.(i) = stride
               && ck_count.(i) = count)
            then begin
              let d =
                Sw26010.Dma.descriptor ~offset_bytes:phase ~block_bytes:block
                  ~stride_bytes:stride ~block_count:count
              in
              ck_phase.(i) <- phase;
              ck_block.(i) <- block;
              ck_stride.(i) <- stride;
              ck_count.(i) <- count;
              cv_txn.(i) <- Sw26010.Dma.transaction_bytes d;
              cv_payload.(i) <- Sw26010.Dma.payload_bytes d
            end;
            worst_txn := max !worst_txn cv_txn.(i);
            total_payload := !total_payload + cv_payload.(i))
          cpes;
        let ncpes = Array.length cpes in
        (* Payload is extrapolated from the sampled CPEs; transactions are
           charged as 64 x the worst sampled CPE (lock-step collective). *)
        st.payload_bytes <-
          st.payload_bytes + (!total_payload * Sw26010.Config.cpes_per_cg / ncpes);
        st.transaction_bytes <- st.transaction_bytes + (!worst_txn * Sw26010.Config.cpes_per_cg);
        let occupancy =
          float_of_int !worst_txn
          /. (Sw26010.Config.dma_peak_bw /. float_of_int Sw26010.Config.cpes_per_cg)
        in
        let latency = if !worst_txn = 0 then 0.0 else Sw26010.Config.dma_latency_s in
        Sw26010.Core_group.issue_dma st.cg ~tag:(ftag st.env) ~occupancy ~latency;
        (match st.trace with
        | None -> ()
        | Some tr ->
          let stop = Sw26010.Core_group.engine_busy_until st.cg in
          Trace.record tr
            ~name:(Printf.sprintf "dma_%s %s" (match dir with Ir.Get -> "get" | Ir.Put -> "put") spm)
            ~lane:Trace.Dma_engine ~start:(stop -. occupancy) ~stop);
        if st.numeric then begin
          let main_arr = buffer st main and spm_arr = buffer st spm in
          let off = f_roff st.env
          and rows = f_rows st.env
          and row_elems = f_relems st.env
          and row_stride = f_rstride st.env in
          let spm_off = f_spm_off st.env in
          let spm_ld = max (f_spm_ld st.env) row_elems in
          if spm_off < 0 || (rows > 0 && spm_off + ((rows - 1) * spm_ld) + row_elems > spm_len) then
            invalid_arg
              (Printf.sprintf "Interp: SPM access out of bounds on %s (%d rows=%d ld=%d len=%d)" spm
                 spm_off rows spm_ld spm_len);
          for i = 0 to rows - 1 do
            let m = off + (i * row_stride) and sp = spm_off + (i * spm_ld) in
            match dir with
            | Get -> Array.blit main_arr m spm_arr sp row_elems
            | Put -> Array.blit spm_arr sp main_arr m row_elems
          done
        end
    | Dma_wait { tag } ->
      let ftag = compile_expr slots tag in
      fun st ->
        (* Fault site: a wait that raises models a reply-count timeout. *)
        Prelude.Fault.check "interp.dma.wait";
        Sw26010.Core_group.wait_dma st.cg ~tag:(ftag st.env)
    | Gemm { variant; m; n; k; a; b; c } ->
      let fm = compile_expr slots m and fn = compile_expr slots n and fk = compile_expr slots k in
      let fao = compile_expr slots a.g_offset and fal = compile_expr slots a.g_ld in
      let fbo = compile_expr slots b.g_offset and fbl = compile_expr slots b.g_ld in
      let fco = compile_expr slots c.g_offset and fcl = compile_expr slots c.g_ld in
      (* One-entry cache: identical calls repeat across the loop interior. *)
      let ck = Array.make 6 min_int in
      let cv_seconds = ref 0.0 and cv_flops = ref 0.0 in
      fun st ->
        let m = fm st.env and n = fn st.env and k = fk st.env in
        let lda = fal st.env and ldb = fbl st.env and ldc = fcl st.env in
        if
          not
            (ck.(0) = m && ck.(1) = n && ck.(2) = k && ck.(3) = lda && ck.(4) = ldb
           && ck.(5) = ldc)
        then begin
          let call = Primitives.Spm_gemm.call ~variant ~m ~n ~k ~lda ~ldb ~ldc in
          ck.(0) <- m;
          ck.(1) <- n;
          ck.(2) <- k;
          ck.(3) <- lda;
          ck.(4) <- ldb;
          ck.(5) <- ldc;
          cv_seconds := Primitives.Spm_gemm.seconds call;
          cv_flops := Primitives.Spm_gemm.flops call
        end;
        st.gemm_calls <- st.gemm_calls + 1;
        st.gemm_flops <- st.gemm_flops +. !cv_flops;
        let t0 = Sw26010.Core_group.now st.cg in
        Sw26010.Core_group.advance st.cg !cv_seconds;
        (match st.trace with
        | None -> ()
        | Some tr ->
          Trace.record tr
            ~name:(Printf.sprintf "gemm %dx%dx%d" m n k)
            ~lane:Trace.Cpe_cluster ~start:t0
            ~stop:(Sw26010.Core_group.now st.cg));
        if st.numeric then begin
          let call = Primitives.Spm_gemm.call ~variant ~m ~n ~k ~lda ~ldb ~ldc in
          Primitives.Spm_gemm.exec call ~a:(buffer st a.g_buf) ~ao:(fao st.env)
            ~b:(buffer st b.g_buf) ~bo:(fbo st.env) ~c:(buffer st c.g_buf) ~co:(fco st.env)
        end
    | Memset_spm { buf; offset; elems } ->
      let foff = compile_expr slots offset and felems = compile_expr slots elems in
      fun st ->
        let n = felems st.env in
        (* Vector stores, 4 lanes/cycle, spread across the cluster. *)
        let cycles =
          float_of_int n /. float_of_int (4 * Sw26010.Config.cpes_per_cg)
        in
        let t0 = Sw26010.Core_group.now st.cg in
        Sw26010.Core_group.advance_cycles st.cg cycles;
        (match st.trace with
        | None -> ()
        | Some tr ->
          Trace.record tr ~name:"memset" ~lane:Trace.Cpe_cluster ~start:t0
            ~stop:(Sw26010.Core_group.now st.cg));
        if st.numeric then begin
          let arr = buffer st buf in
          Array.fill arr (foff st.env) n 0.0
        end
    | Spm_copy c ->
      let fso = compile_expr slots c.cp_src_offset
      and fsl = compile_expr slots c.cp_src_ld
      and fdo = compile_expr slots c.cp_dst_offset
      and fdl = compile_expr slots c.cp_dst_ld
      and frows = compile_expr slots c.cp_rows
      and felems = compile_expr slots c.cp_row_elems in
      fun st ->
        let rows = frows st.env and row_elems = felems st.env in
        (* Vector load + store per 4 elements, spread across the cluster. *)
        let cycles =
          2.0 *. float_of_int (rows * row_elems)
          /. float_of_int (4 * Sw26010.Config.cpes_per_cg)
        in
        let t0 = Sw26010.Core_group.now st.cg in
        Sw26010.Core_group.advance_cycles st.cg cycles;
        (match st.trace with
        | None -> ()
        | Some tr ->
          Trace.record tr ~name:"spm_copy" ~lane:Trace.Cpe_cluster ~start:t0
            ~stop:(Sw26010.Core_group.now st.cg));
        if st.numeric then begin
          let src = buffer st c.cp_src and dst = buffer st c.cp_dst in
          let so = fso st.env and sl = fsl st.env and d_o = fdo st.env and dl = fdl st.env in
          for i = 0 to rows - 1 do
            Array.blit src (so + (i * sl)) dst (d_o + (i * dl)) row_elems
          done
        end
    | Transform t -> compile_transform t
    | Comment _ -> fun _ -> ()
  and compile_transform (t : Ir.transform) =
    let fsrc_off = compile_expr slots t.t_src_offset
    and fdst_off = compile_expr slots t.t_dst_offset
    and fchans = compile_expr slots t.t_chans
    and ftr = compile_expr slots t.t_tiles_r
    and ftc = compile_expr slots t.t_tiles_c
    and fld = compile_expr slots t.t_src_ld in
    let per_tile = transform_tile_cycles t.kind in
    fun st ->
      let chans = fchans st.env
      and tiles_r = ftr st.env
      and tiles_c = ftc st.env
      and src_ld = fld st.env in
      let tiles = tiles_r * tiles_c in
      let units = match t.kind with Ir.Wino_filter -> chans | _ -> chans * tiles in
      let cycles = float_of_int units *. per_tile /. float_of_int Sw26010.Config.cpes_per_cg in
      let t0 = Sw26010.Core_group.now st.cg in
      Sw26010.Core_group.advance_cycles st.cg cycles;
      (match st.trace with
      | None -> ()
      | Some tr ->
        let name =
          match t.kind with
          | Ir.Wino_input -> "wino_input"
          | Ir.Wino_filter -> "wino_filter"
          | Ir.Wino_output -> "wino_output"
        in
        Trace.record tr ~name ~lane:Trace.Cpe_cluster ~start:t0
          ~stop:(Sw26010.Core_group.now st.cg));
      if st.numeric then begin
        let src = buffer st t.t_src and dst = buffer st t.t_dst in
        let src_off = fsrc_off st.env and dst_off = fdst_off st.env in
        let xi_count = Swtensor.Winograd_ref.num_products in
        match t.kind with
        | Ir.Wino_input ->
          (* src: chans planes of (tiles_r*2+2) rows x src_ld; dst: V panel
             (16, chans, tiles). *)
          let plane_rows = (tiles_r * 2) + 2 in
          let tile = Array.make 16 0.0 in
          for ch = 0 to chans - 1 do
            let plane = src_off + (ch * plane_rows * src_ld) in
            for tr = 0 to tiles_r - 1 do
              for tc = 0 to tiles_c - 1 do
                for r = 0 to 3 do
                  for c = 0 to 3 do
                    tile.((r * 4) + c) <- src.(plane + (((tr * 2) + r) * src_ld) + (tc * 2) + c)
                  done
                done;
                let v = Swtensor.Winograd_ref.transform_input_tile tile in
                let col = (tr * tiles_c) + tc in
                for xi = 0 to xi_count - 1 do
                  dst.(dst_off + (((xi * chans) + ch) * tiles) + col) <- v.(xi)
                done
              done
            done
          done
        | Ir.Wino_filter ->
          (* src: chans filters of 9 contiguous elements; dst: U panel
             (16, chans). *)
          let w = Array.make 9 0.0 in
          for ch = 0 to chans - 1 do
            Array.blit src (src_off + (ch * 9)) w 0 9;
            let u = Swtensor.Winograd_ref.transform_filter w in
            for xi = 0 to xi_count - 1 do
              dst.(dst_off + (xi * chans) + ch) <- u.(xi)
            done
          done
        | Ir.Wino_output ->
          (* src: M panel (16, chans, tiles); dst: chans planes of
             (tiles_r*2) x (tiles_c*2). *)
          let m = Array.make 16 0.0 in
          let out_rows = tiles_r * 2 and out_cols = tiles_c * 2 in
          for ch = 0 to chans - 1 do
            for tr = 0 to tiles_r - 1 do
              for tc = 0 to tiles_c - 1 do
                let col = (tr * tiles_c) + tc in
                for xi = 0 to 15 do
                  m.(xi) <- src.(src_off + (((xi * chans) + ch) * tiles) + col)
                done;
                let y = Swtensor.Winograd_ref.transform_output_tile m in
                for r = 0 to 1 do
                  for c = 0 to 1 do
                    dst.(dst_off + (ch * out_rows * out_cols) + (((tr * 2) + r) * out_cols)
                         + (tc * 2) + c)
                    <- y.((r * 2) + c)
                  done
                done
              done
            done
          done
      end
  in
  let compiled = compile_stmt p.body in
  (compiled, slots)

let alloc_bindings (p : Ir.program) =
  List.filter_map
    (fun (b : Ir.buf) ->
      match b.space with
      | Ir.Main -> Some (b.buf_name, Array.make b.cg_elems 0.0)
      | Ir.Spm -> None)
    p.bufs

let run ?(fidelity = Sampled_cpes) ?(bindings = []) ?trace ~numeric (p : Ir.program) =
  let compiled, slots = compile ~fidelity p in
  let buffers = Hashtbl.create 16 in
  if numeric then begin
    List.iter
      (fun (b : Ir.buf) ->
        match b.space with
        | Spm ->
          let n = if b.double_buffered then 2 * b.cg_elems else b.cg_elems in
          Hashtbl.replace buffers b.buf_name (Array.make n 0.0)
        | Main -> (
          match List.assoc_opt b.buf_name bindings with
          | Some arr ->
            if Array.length arr <> b.cg_elems then
              invalid_arg
                (Printf.sprintf "Interp.run: buffer %s expects %d elements, got %d" b.buf_name
                   b.cg_elems (Array.length arr));
            Hashtbl.replace buffers b.buf_name arr
          | None ->
            invalid_arg (Printf.sprintf "Interp.run: missing binding for main buffer %s" b.buf_name)))
      p.bufs
  end;
  let st =
    {
      cg = Sw26010.Core_group.create ();
      env = Array.make (max 2 slots.next) 0;
      numeric;
      trace;
      buffers;
      gemm_calls = 0;
      gemm_flops = 0.0;
      payload_bytes = 0;
      transaction_bytes = 0;
    }
  in
  compiled st;
  let drained =
    Float.max (Sw26010.Core_group.now st.cg) (Sw26010.Core_group.engine_busy_until st.cg)
  in
  {
    seconds = drained;
    dma_busy_seconds = Sw26010.Core_group.dma_busy st.cg;
    compute_busy_seconds = Sw26010.Core_group.compute_busy st.cg;
    gemm_calls = st.gemm_calls;
    gemm_flops = st.gemm_flops;
    dma_payload_bytes = st.payload_bytes;
    dma_transaction_bytes = st.transaction_bytes;
  }

let flops_per_second (r : result) = if r.seconds <= 0.0 then 0.0 else r.gemm_flops /. r.seconds
