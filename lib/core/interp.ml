open! Stdlib

type fidelity = Exact_cpes | Sampled_cpes

type result = {
  seconds : float;
  dma_busy_seconds : float;
  compute_busy_seconds : float;
  gemm_calls : int;
  gemm_flops : float;
  dma_payload_bytes : int;
  dma_transaction_bytes : int;
}

(* ------------------------------------------------------------------ *)
(* Variable slots: every loop iterator (plus rid/cid) gets an index in a
   mutable int array, so expression evaluation allocates nothing. *)

type slots = { table : (string, int) Hashtbl.t; mutable next : int }

let slots_create () =
  let s = { table = Hashtbl.create 16; next = 0 } in
  List.iter
    (fun v ->
      Hashtbl.replace s.table v s.next;
      s.next <- s.next + 1)
    [ "rid"; "cid" ];
  s

let slot_of s v =
  match Hashtbl.find_opt s.table v with
  | Some i -> i
  | None ->
    let i = s.next in
    Hashtbl.replace s.table v i;
    s.next <- i + 1;
    i

let rid_slot = 0
let cid_slot = 1

(* ------------------------------------------------------------------ *)
(* Expression compilation. *)

let rec compile_expr slots (e : Ir.expr) : int array -> int =
  match e with
  | Const i -> fun _ -> i
  | Var v ->
    let s = slot_of slots v in
    fun env -> env.(s)
  | Add (a, b) -> bin slots ( + ) a b
  | Sub (a, b) -> bin slots ( - ) a b
  | Mul (a, b) -> bin slots ( * ) a b
  | Div (a, b) -> bin slots (fun x y -> x / y) a b
  | Mod (a, b) -> bin slots (fun x y -> x mod y) a b
  | Min (a, b) -> bin slots min a b
  | Max (a, b) -> bin slots max a b

and bin slots op a b =
  let fa = compile_expr slots a and fb = compile_expr slots b in
  fun env -> op (fa env) (fb env)

let rec compile_cond slots (c : Ir.cond) : int array -> bool =
  match c with
  | Cmp (op, a, b) ->
    let fa = compile_expr slots a and fb = compile_expr slots b in
    let test : int -> int -> bool =
      match op with Lt -> ( < ) | Le -> ( <= ) | Eq -> ( = ) | Ne -> ( <> )
    in
    fun env -> test (fa env) (fb env)
  | And (a, b) ->
    let fa = compile_cond slots a and fb = compile_cond slots b in
    fun env -> fa env && fb env
  | Or (a, b) ->
    let fa = compile_cond slots a and fb = compile_cond slots b in
    fun env -> fa env || fb env
  | Not a ->
    let fa = compile_cond slots a in
    fun env -> not (fa env)

(* ------------------------------------------------------------------ *)
(* Execution state. *)

type state = {
  cg : Sw26010.Core_group.t;
  env : int array;
  numeric : bool;
  trace : Trace.t option;
  buffers : (string, float array) Hashtbl.t;
  mutable gemm_calls : int;
  mutable gemm_flops : float;
  mutable payload_bytes : int;
  mutable transaction_bytes : int;
}

let buffer st name =
  match Hashtbl.find_opt st.buffers name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Interp: buffer %s has no backing array" name)

let elem = Sw26010.Config.elem_bytes

(* DMA cost: evaluate the per-CPE descriptor for a set of (rid, cid) pairs
   and charge the slowest CPE's transaction bytes (the collective completes
   when the last CPE's engine drains). *)
let sampled_cpes = [| (0, 0); (0, 1); (7, 7) |]

let all_cpes =
  Array.init Sw26010.Config.cpes_per_cg (fun i ->
      (i / Sw26010.Config.cpe_cols, i mod Sw26010.Config.cpe_cols))

let transform_tile_cycles = function
  | Ir.Wino_input -> 26.0
  | Ir.Wino_filter -> 30.0
  | Ir.Wino_output -> 22.0

(* ------------------------------------------------------------------ *)

let compile ~fidelity (p : Ir.program) =
  let slots = slots_create () in
  let cpes = match fidelity with Exact_cpes -> all_cpes | Sampled_cpes -> sampled_cpes in
  let buf_elems name =
    match Ir.find_buf p name with
    | Some b -> if b.double_buffered then 2 * b.cg_elems else b.cg_elems
    | None -> invalid_arg (Printf.sprintf "Interp: undeclared buffer %s" name)
  in
  let rec compile_stmt (s : Ir.stmt) : state -> unit =
    match s with
    | Seq l ->
      let fs = Array.of_list (List.map compile_stmt l) in
      fun st -> Array.iter (fun f -> f st) fs
    | For { iter; lo; hi; step; body; _ } ->
      let slot = slot_of slots iter in
      let flo = compile_expr slots lo
      and fhi = compile_expr slots hi
      and fstep = compile_expr slots step in
      let fbody = compile_stmt body in
      fun st ->
        let hi = fhi st.env and step = fstep st.env in
        if step <= 0 then invalid_arg "Interp: non-positive loop step";
        let i = ref (flo st.env) in
        while !i < hi do
          st.env.(slot) <- !i;
          fbody st;
          i := !i + step
        done
    | If { cond; then_; else_ } ->
      let fc = compile_cond slots cond in
      let ft = compile_stmt then_ and fe = compile_stmt else_ in
      fun st -> if fc st.env then ft st else fe st
    | Dma { dir; main; spm; tag; region; spm_offset; spm_ld; per_cpe; _ } ->
      let desc =
        match per_cpe with
        | Some d -> d
        | None -> invalid_arg "Interp: DMA without per-CPE descriptor (run Dma_inference)"
      in
      let ftag = compile_expr slots tag in
      let f_off = compile_expr slots desc.d_offset
      and f_block = compile_expr slots desc.d_block
      and f_stride = compile_expr slots desc.d_stride
      and f_count = compile_expr slots desc.d_count in
      let f_roff = compile_expr slots region.offset
      and f_rows = compile_expr slots region.rows
      and f_relems = compile_expr slots region.row_elems
      and f_rstride = compile_expr slots region.row_stride in
      let f_spm_off = compile_expr slots spm_offset in
      let f_spm_ld = compile_expr slots spm_ld in
      let spm_len = buf_elems spm in
      (* Per-CPE one-entry caches: across loop iterations the descriptor
         shape repeats and the transaction waste depends on the offset only
         through its alignment phase. *)
      let n_cpes = Array.length cpes in
      let ck_phase = Array.make n_cpes min_int
      and ck_block = Array.make n_cpes min_int
      and ck_stride = Array.make n_cpes min_int
      and ck_count = Array.make n_cpes min_int
      and cv_txn = Array.make n_cpes 0
      and cv_payload = Array.make n_cpes 0 in
      fun st ->
        (* Fault site: a DMA issue that raises models a failed/hung transfer
           descriptor; counter triggers (n=/first=) hit the Nth dynamic
           issue of the run. *)
        Prelude.Fault.check "interp.dma.issue";
        (* Cost: worst transaction load among the (sampled) CPEs. *)
        let worst_txn = ref 0 and total_payload = ref 0 in
        Array.iteri
          (fun i (r, c) ->
            st.env.(rid_slot) <- r;
            st.env.(cid_slot) <- c;
            let off = f_off st.env * elem in
            let block = f_block st.env * elem in
            let stride = max (f_stride st.env) (f_block st.env) * elem in
            let count = f_count st.env in
            let phase = off mod Sw26010.Config.dram_transaction_bytes in
            if
              not
                (ck_phase.(i) = phase && ck_block.(i) = block && ck_stride.(i) = stride
               && ck_count.(i) = count)
            then begin
              let d =
                Sw26010.Dma.descriptor ~offset_bytes:phase ~block_bytes:block
                  ~stride_bytes:stride ~block_count:count
              in
              ck_phase.(i) <- phase;
              ck_block.(i) <- block;
              ck_stride.(i) <- stride;
              ck_count.(i) <- count;
              cv_txn.(i) <- Sw26010.Dma.transaction_bytes d;
              cv_payload.(i) <- Sw26010.Dma.payload_bytes d
            end;
            worst_txn := max !worst_txn cv_txn.(i);
            total_payload := !total_payload + cv_payload.(i))
          cpes;
        let ncpes = Array.length cpes in
        (* Payload is extrapolated from the sampled CPEs; transactions are
           charged as 64 x the worst sampled CPE (lock-step collective). *)
        st.payload_bytes <-
          st.payload_bytes + (!total_payload * Sw26010.Config.cpes_per_cg / ncpes);
        st.transaction_bytes <- st.transaction_bytes + (!worst_txn * Sw26010.Config.cpes_per_cg);
        let occupancy =
          float_of_int !worst_txn
          /. (Sw26010.Config.dma_peak_bw /. float_of_int Sw26010.Config.cpes_per_cg)
        in
        let latency = if !worst_txn = 0 then 0.0 else Sw26010.Config.dma_latency_s in
        Sw26010.Core_group.issue_dma st.cg ~tag:(ftag st.env) ~occupancy ~latency;
        (match st.trace with
        | None -> ()
        | Some tr ->
          let stop = Sw26010.Core_group.engine_busy_until st.cg in
          Trace.record tr
            ~name:(Printf.sprintf "dma_%s %s" (match dir with Ir.Get -> "get" | Ir.Put -> "put") spm)
            ~lane:Trace.Dma_engine ~start:(stop -. occupancy) ~stop);
        if st.numeric then begin
          let main_arr = buffer st main and spm_arr = buffer st spm in
          let off = f_roff st.env
          and rows = f_rows st.env
          and row_elems = f_relems st.env
          and row_stride = f_rstride st.env in
          let spm_off = f_spm_off st.env in
          let spm_ld = max (f_spm_ld st.env) row_elems in
          if spm_off < 0 || (rows > 0 && spm_off + ((rows - 1) * spm_ld) + row_elems > spm_len) then
            invalid_arg
              (Printf.sprintf "Interp: SPM access out of bounds on %s (%d rows=%d ld=%d len=%d)" spm
                 spm_off rows spm_ld spm_len);
          for i = 0 to rows - 1 do
            let m = off + (i * row_stride) and sp = spm_off + (i * spm_ld) in
            match dir with
            | Get -> Array.blit main_arr m spm_arr sp row_elems
            | Put -> Array.blit spm_arr sp main_arr m row_elems
          done
        end
    | Dma_wait { tag } ->
      let ftag = compile_expr slots tag in
      fun st ->
        (* Fault site: a wait that raises models a reply-count timeout. *)
        Prelude.Fault.check "interp.dma.wait";
        Sw26010.Core_group.wait_dma st.cg ~tag:(ftag st.env)
    | Gemm { variant; m; n; k; a; b; c } ->
      let fm = compile_expr slots m and fn = compile_expr slots n and fk = compile_expr slots k in
      let fao = compile_expr slots a.g_offset and fal = compile_expr slots a.g_ld in
      let fbo = compile_expr slots b.g_offset and fbl = compile_expr slots b.g_ld in
      let fco = compile_expr slots c.g_offset and fcl = compile_expr slots c.g_ld in
      (* One-entry cache: identical calls repeat across the loop interior. *)
      let ck = Array.make 6 min_int in
      let cv_seconds = ref 0.0 and cv_flops = ref 0.0 in
      fun st ->
        let m = fm st.env and n = fn st.env and k = fk st.env in
        let lda = fal st.env and ldb = fbl st.env and ldc = fcl st.env in
        if
          not
            (ck.(0) = m && ck.(1) = n && ck.(2) = k && ck.(3) = lda && ck.(4) = ldb
           && ck.(5) = ldc)
        then begin
          let call = Primitives.Spm_gemm.call ~variant ~m ~n ~k ~lda ~ldb ~ldc in
          ck.(0) <- m;
          ck.(1) <- n;
          ck.(2) <- k;
          ck.(3) <- lda;
          ck.(4) <- ldb;
          ck.(5) <- ldc;
          cv_seconds := Primitives.Spm_gemm.seconds call;
          cv_flops := Primitives.Spm_gemm.flops call
        end;
        st.gemm_calls <- st.gemm_calls + 1;
        st.gemm_flops <- st.gemm_flops +. !cv_flops;
        let t0 = Sw26010.Core_group.now st.cg in
        Sw26010.Core_group.advance st.cg !cv_seconds;
        (match st.trace with
        | None -> ()
        | Some tr ->
          Trace.record tr
            ~name:(Printf.sprintf "gemm %dx%dx%d" m n k)
            ~lane:Trace.Cpe_cluster ~start:t0
            ~stop:(Sw26010.Core_group.now st.cg));
        if st.numeric then begin
          let call = Primitives.Spm_gemm.call ~variant ~m ~n ~k ~lda ~ldb ~ldc in
          Primitives.Spm_gemm.exec call ~a:(buffer st a.g_buf) ~ao:(fao st.env)
            ~b:(buffer st b.g_buf) ~bo:(fbo st.env) ~c:(buffer st c.g_buf) ~co:(fco st.env)
        end
    | Memset_spm { buf; offset; elems } ->
      let foff = compile_expr slots offset and felems = compile_expr slots elems in
      fun st ->
        let n = felems st.env in
        (* Vector stores, 4 lanes/cycle, spread across the cluster. *)
        let cycles =
          float_of_int n /. float_of_int (4 * Sw26010.Config.cpes_per_cg)
        in
        let t0 = Sw26010.Core_group.now st.cg in
        Sw26010.Core_group.advance_cycles st.cg cycles;
        (match st.trace with
        | None -> ()
        | Some tr ->
          Trace.record tr ~name:"memset" ~lane:Trace.Cpe_cluster ~start:t0
            ~stop:(Sw26010.Core_group.now st.cg));
        if st.numeric then begin
          let arr = buffer st buf in
          Array.fill arr (foff st.env) n 0.0
        end
    | Spm_copy c ->
      let fso = compile_expr slots c.cp_src_offset
      and fsl = compile_expr slots c.cp_src_ld
      and fdo = compile_expr slots c.cp_dst_offset
      and fdl = compile_expr slots c.cp_dst_ld
      and frows = compile_expr slots c.cp_rows
      and felems = compile_expr slots c.cp_row_elems in
      fun st ->
        let rows = frows st.env and row_elems = felems st.env in
        (* Vector load + store per 4 elements, spread across the cluster. *)
        let cycles =
          2.0 *. float_of_int (rows * row_elems)
          /. float_of_int (4 * Sw26010.Config.cpes_per_cg)
        in
        let t0 = Sw26010.Core_group.now st.cg in
        Sw26010.Core_group.advance_cycles st.cg cycles;
        (match st.trace with
        | None -> ()
        | Some tr ->
          Trace.record tr ~name:"spm_copy" ~lane:Trace.Cpe_cluster ~start:t0
            ~stop:(Sw26010.Core_group.now st.cg));
        if st.numeric then begin
          let src = buffer st c.cp_src and dst = buffer st c.cp_dst in
          let so = fso st.env and sl = fsl st.env and d_o = fdo st.env and dl = fdl st.env in
          for i = 0 to rows - 1 do
            Array.blit src (so + (i * sl)) dst (d_o + (i * dl)) row_elems
          done
        end
    | Transform t -> compile_transform t
    | Comment _ -> fun _ -> ()
  and compile_transform (t : Ir.transform) =
    let fsrc_off = compile_expr slots t.t_src_offset
    and fdst_off = compile_expr slots t.t_dst_offset
    and fchans = compile_expr slots t.t_chans
    and ftr = compile_expr slots t.t_tiles_r
    and ftc = compile_expr slots t.t_tiles_c
    and fld = compile_expr slots t.t_src_ld in
    let per_tile = transform_tile_cycles t.kind in
    fun st ->
      let chans = fchans st.env
      and tiles_r = ftr st.env
      and tiles_c = ftc st.env
      and src_ld = fld st.env in
      let tiles = tiles_r * tiles_c in
      let units = match t.kind with Ir.Wino_filter -> chans | _ -> chans * tiles in
      let cycles = float_of_int units *. per_tile /. float_of_int Sw26010.Config.cpes_per_cg in
      let t0 = Sw26010.Core_group.now st.cg in
      Sw26010.Core_group.advance_cycles st.cg cycles;
      (match st.trace with
      | None -> ()
      | Some tr ->
        let name =
          match t.kind with
          | Ir.Wino_input -> "wino_input"
          | Ir.Wino_filter -> "wino_filter"
          | Ir.Wino_output -> "wino_output"
        in
        Trace.record tr ~name ~lane:Trace.Cpe_cluster ~start:t0
          ~stop:(Sw26010.Core_group.now st.cg));
      if st.numeric then begin
        let src = buffer st t.t_src and dst = buffer st t.t_dst in
        let src_off = fsrc_off st.env and dst_off = fdst_off st.env in
        let xi_count = Swtensor.Winograd_ref.num_products in
        match t.kind with
        | Ir.Wino_input ->
          (* src: chans planes of (tiles_r*2+2) rows x src_ld; dst: V panel
             (16, chans, tiles). *)
          let plane_rows = (tiles_r * 2) + 2 in
          let tile = Array.make 16 0.0 in
          for ch = 0 to chans - 1 do
            let plane = src_off + (ch * plane_rows * src_ld) in
            for tr = 0 to tiles_r - 1 do
              for tc = 0 to tiles_c - 1 do
                for r = 0 to 3 do
                  for c = 0 to 3 do
                    tile.((r * 4) + c) <- src.(plane + (((tr * 2) + r) * src_ld) + (tc * 2) + c)
                  done
                done;
                let v = Swtensor.Winograd_ref.transform_input_tile tile in
                let col = (tr * tiles_c) + tc in
                for xi = 0 to xi_count - 1 do
                  dst.(dst_off + (((xi * chans) + ch) * tiles) + col) <- v.(xi)
                done
              done
            done
          done
        | Ir.Wino_filter ->
          (* src: chans filters of 9 contiguous elements; dst: U panel
             (16, chans). *)
          let w = Array.make 9 0.0 in
          for ch = 0 to chans - 1 do
            Array.blit src (src_off + (ch * 9)) w 0 9;
            let u = Swtensor.Winograd_ref.transform_filter w in
            for xi = 0 to xi_count - 1 do
              dst.(dst_off + (xi * chans) + ch) <- u.(xi)
            done
          done
        | Ir.Wino_output ->
          (* src: M panel (16, chans, tiles); dst: chans planes of
             (tiles_r*2) x (tiles_c*2). *)
          let m = Array.make 16 0.0 in
          let out_rows = tiles_r * 2 and out_cols = tiles_c * 2 in
          for ch = 0 to chans - 1 do
            for tr = 0 to tiles_r - 1 do
              for tc = 0 to tiles_c - 1 do
                let col = (tr * tiles_c) + tc in
                for xi = 0 to 15 do
                  m.(xi) <- src.(src_off + (((xi * chans) + ch) * tiles) + col)
                done;
                let y = Swtensor.Winograd_ref.transform_output_tile m in
                for r = 0 to 1 do
                  for c = 0 to 1 do
                    dst.(dst_off + (ch * out_rows * out_cols) + (((tr * 2) + r) * out_cols)
                         + (tc * 2) + c)
                    <- y.((r * 2) + c)
                  done
                done
              done
            done
          done
      end
  in
  let compiled = compile_stmt p.body in
  (compiled, slots)

let alloc_bindings (p : Ir.program) =
  List.filter_map
    (fun (b : Ir.buf) ->
      match b.space with
      | Ir.Main -> Some (b.buf_name, Array.make b.cg_elems 0.0)
      | Ir.Spm -> None)
    p.bufs

let run ?(fidelity = Sampled_cpes) ?(bindings = []) ?trace ~numeric (p : Ir.program) =
  let compiled, slots = compile ~fidelity p in
  let buffers = Hashtbl.create 16 in
  if numeric then begin
    List.iter
      (fun (b : Ir.buf) ->
        match b.space with
        | Spm ->
          let n = if b.double_buffered then 2 * b.cg_elems else b.cg_elems in
          Hashtbl.replace buffers b.buf_name (Array.make n 0.0)
        | Main -> (
          match List.assoc_opt b.buf_name bindings with
          | Some arr ->
            if Array.length arr <> b.cg_elems then
              invalid_arg
                (Printf.sprintf "Interp.run: buffer %s expects %d elements, got %d" b.buf_name
                   b.cg_elems (Array.length arr));
            Hashtbl.replace buffers b.buf_name arr
          | None ->
            invalid_arg (Printf.sprintf "Interp.run: missing binding for main buffer %s" b.buf_name)))
      p.bufs
  end;
  let st =
    {
      cg = Sw26010.Core_group.create ();
      env = Array.make (max 2 slots.next) 0;
      numeric;
      trace;
      buffers;
      gemm_calls = 0;
      gemm_flops = 0.0;
      payload_bytes = 0;
      transaction_bytes = 0;
    }
  in
  compiled st;
  let drained =
    Float.max (Sw26010.Core_group.now st.cg) (Sw26010.Core_group.engine_busy_until st.cg)
  in
  {
    seconds = drained;
    dma_busy_seconds = Sw26010.Core_group.dma_busy st.cg;
    compute_busy_seconds = Sw26010.Core_group.compute_busy st.cg;
    gemm_calls = st.gemm_calls;
    gemm_flops = st.gemm_flops;
    dma_payload_bytes = st.payload_bytes;
    dma_transaction_bytes = st.transaction_bytes;
  }

let flops_per_second (r : result) = if r.seconds <= 0.0 then 0.0 else r.gemm_flops /. r.seconds

(* ------------------------------------------------------------------ *)
(* Shadow-memory DMA sanitizer: the dynamic oracle behind Ir_race. Every
   main-memory element carries the sequence number and CPE of its newest
   unretired writer and reader; each per-CPE transfer element is checked
   against those shadows under the same in-order retirement model the
   static pass uses (a Dma_wait on tag t retires everything issued at or
   before the newest transfer tagged t). Unlike the cost/numeric
   interpreter above, the sanitizer walks every loop iteration, so it
   confirms or refutes the static pass's sampled verdicts. *)

type race_kind = Race_ww | Race_rw | Race_war | Race_undrained

type race = {
  race_kind : race_kind;
  race_buf : string;
  race_elem : int;  (** witness element; [-1] for [Race_undrained] *)
  race_path : string;
  race_other : string;  (** path of the conflicting earlier transfer *)
}

let race_kind_name = function
  | Race_ww -> "write-write"
  | Race_rw -> "read-under-write"
  | Race_war -> "write-under-read"
  | Race_undrained -> "undrained put"

let race_to_string r =
  match r.race_kind with
  | Race_undrained ->
    Printf.sprintf "%s: put into %s still in flight at program exit" r.race_path r.race_buf
  | k ->
    Printf.sprintf "%s: %s race with %s on %s[%d]" r.race_path (race_kind_name k) r.race_other
      r.race_buf r.race_elem

type shadow = {
  sh_wseq : int array;
  sh_wcpe : int array;
  sh_rseq : int array;
  sh_rcpe : int array;
  sh_rmulti : bool array;
      (** more than one CPE holds an unretired read of this element, so the
          single (seq, cpe) reader slot under-reports and a same-CPE write
          must still trap *)
}

type san = {
  sn_env : int array;
  sn_shadows : (string, shadow) Hashtbl.t;
  sn_issuer : (int, string) Hashtbl.t;  (** seq -> issuing statement path *)
  sn_tag_last : (int, int) Hashtbl.t;  (** tag -> newest issued seq *)
  mutable sn_watermark : int;  (** seqs <= this have retired *)
  mutable sn_seq : int;
  mutable sn_puts : (int * string * string) list;  (** seq, path, buf *)
  mutable sn_races : race list;  (** reversed *)
  sn_dedup : (race_kind * string * string, unit) Hashtbl.t;
}

let san_report st kind ~buf ~elem ~path ~other =
  let key = (kind, path, other) in
  if not (Hashtbl.mem st.sn_dedup key) then begin
    Hashtbl.replace st.sn_dedup key ();
    st.sn_races <-
      { race_kind = kind; race_buf = buf; race_elem = elem; race_path = path; race_other = other }
      :: st.sn_races
  end

let san_issuer st seq = match Hashtbl.find_opt st.sn_issuer seq with Some p -> p | None -> "?"

(* One element of one per-CPE transfer against the shadows. Same-CPE
   accesses are ordered by that CPE's own engine and never conflict;
   distinct-CPE accesses conflict whenever the shadow entry is unretired. *)
let san_touch st sh ~(dir : Ir.dir) ~buf ~cpe ~seq ~path e =
  let wm = st.sn_watermark in
  match dir with
  | Ir.Put ->
    if sh.sh_wseq.(e) > wm && sh.sh_wcpe.(e) <> cpe then
      san_report st Race_ww ~buf ~elem:e ~path ~other:(san_issuer st sh.sh_wseq.(e));
    if sh.sh_rseq.(e) > wm && (sh.sh_rmulti.(e) || sh.sh_rcpe.(e) <> cpe) then
      san_report st Race_war ~buf ~elem:e ~path ~other:(san_issuer st sh.sh_rseq.(e));
    sh.sh_wseq.(e) <- seq;
    sh.sh_wcpe.(e) <- cpe
  | Ir.Get ->
    if sh.sh_wseq.(e) > wm && sh.sh_wcpe.(e) <> cpe then
      san_report st Race_rw ~buf ~elem:e ~path ~other:(san_issuer st sh.sh_wseq.(e));
    if sh.sh_rseq.(e) > wm then begin
      if sh.sh_rcpe.(e) <> cpe then sh.sh_rmulti.(e) <- true
    end
    else sh.sh_rmulti.(e) <- false;
    sh.sh_rseq.(e) <- seq;
    sh.sh_rcpe.(e) <- cpe

let san_grid_last = snd Ir.cpe_id_range

let sanitize (p : Ir.program) : race list =
  let slots = slots_create () in
  let rec compile_stmt path (s : Ir.stmt) : san -> unit =
    match s with
    | Ir.Comment _ | Ir.Memset_spm _ | Ir.Spm_copy _ | Ir.Transform _ | Ir.Gemm _ ->
      (* SPM-local / register-mesh work: no main-memory footprint *)
      fun _ -> ()
    | Ir.Seq l ->
      let fs = List.mapi (fun i s -> compile_stmt (Printf.sprintf "%s[%d]" path i) s) l in
      fun st -> List.iter (fun f -> f st) fs
    | Ir.For fl ->
      let flo = compile_expr slots fl.lo
      and fhi = compile_expr slots fl.hi
      and fstep = compile_expr slots fl.step in
      let slot = slot_of slots fl.iter in
      let fbody = compile_stmt (path ^ "/for " ^ fl.iter) fl.body in
      fun st ->
        let hi = fhi st.sn_env and step = fstep st.sn_env in
        if step <= 0 then
          invalid_arg (Printf.sprintf "Interp.sanitize: loop %s has step %d" fl.iter step);
        let i = ref (flo st.sn_env) in
        while !i < hi do
          st.sn_env.(slot) <- !i;
          fbody st;
          i := !i + step
        done
    | Ir.If { cond; then_; else_ } ->
      let fc = compile_cond slots cond in
      let ft = compile_stmt (path ^ "/if-then") then_
      and fe = compile_stmt (path ^ "/if-else") else_ in
      fun st -> if fc st.sn_env then ft st else fe st
    | Ir.Dma_wait { tag } ->
      let ftag = compile_expr slots tag in
      fun st -> (
        match Hashtbl.find_opt st.sn_tag_last (ftag st.sn_env) with
        | Some s when s > st.sn_watermark -> st.sn_watermark <- s
        | _ -> ())
    | Ir.Dma d ->
      let path =
        Printf.sprintf "%s/dma(%s %s)" path
          (match d.dir with Ir.Get -> "get" | Ir.Put -> "put")
          (match d.dir with Ir.Get -> d.main ^ "->" ^ d.spm | Ir.Put -> d.spm ^ "->" ^ d.main)
      in
      let desc =
        match d.per_cpe with Some c -> c | None -> Dma_inference.infer_desc d.region d.partition
      in
      let fdoff = compile_expr slots desc.Ir.d_offset
      and fdblock = compile_expr slots desc.Ir.d_block
      and fdstride = compile_expr slots desc.Ir.d_stride
      and fdcount = compile_expr slots desc.Ir.d_count
      and frows = compile_expr slots d.region.Ir.rows
      and frelems = compile_expr slots d.region.Ir.row_elems
      and ftag = compile_expr slots d.tag in
      fun st ->
        if frows st.sn_env > 0 && frelems st.sn_env > 0 then begin
          let sh =
            match Hashtbl.find_opt st.sn_shadows d.main with
            | Some sh -> sh
            | None ->
              invalid_arg (Printf.sprintf "Interp.sanitize: %s is not a Main buffer" d.main)
          in
          let len = Array.length sh.sh_wseq in
          let seq = st.sn_seq in
          st.sn_seq <- seq + 1;
          Hashtbl.replace st.sn_issuer seq path;
          Hashtbl.replace st.sn_tag_last (ftag st.sn_env) seq;
          if d.dir = Ir.Put then st.sn_puts <- (seq, path, d.main) :: st.sn_puts;
          for r = 0 to san_grid_last do
            for c = 0 to san_grid_last do
              st.sn_env.(rid_slot) <- r;
              st.sn_env.(cid_slot) <- c;
              let o = fdoff st.sn_env
              and b = fdblock st.sn_env
              and s = fdstride st.sn_env
              and cnt = fdcount st.sn_env in
              if b > 0 && cnt > 0 then begin
                let cpe = (r * (san_grid_last + 1)) + c in
                for i = 0 to cnt - 1 do
                  let base = o + (i * s) in
                  for e = max 0 base to min (len - 1) (base + b - 1) do
                    san_touch st sh ~dir:d.dir ~buf:d.main ~cpe ~seq ~path e
                  done
                done
              end
            done
          done
        end
  in
  let compiled = compile_stmt "body" p.body in
  let shadows = Hashtbl.create 8 in
  List.iter
    (fun (b : Ir.buf) ->
      match b.space with
      | Ir.Main ->
        Hashtbl.replace shadows b.buf_name
          {
            sh_wseq = Array.make b.cg_elems min_int;
            sh_wcpe = Array.make b.cg_elems (-1);
            sh_rseq = Array.make b.cg_elems min_int;
            sh_rcpe = Array.make b.cg_elems (-1);
            sh_rmulti = Array.make b.cg_elems false;
          }
      | Ir.Spm -> ())
    p.bufs;
  let st =
    {
      sn_env = Array.make (max 2 slots.next) 0;
      sn_shadows = shadows;
      sn_issuer = Hashtbl.create 64;
      sn_tag_last = Hashtbl.create 8;
      sn_watermark = -1;
      sn_seq = 0;
      sn_puts = [];
      sn_races = [];
      sn_dedup = Hashtbl.create 8;
    }
  in
  compiled st;
  List.iter
    (fun (seq, path, buf) ->
      if seq > st.sn_watermark then
        san_report st Race_undrained ~buf ~elem:(-1) ~path ~other:"")
    st.sn_puts;
  List.rev st.sn_races
