let version_line = "swatop-tune-checkpoint v1"

type chunk = {
  c_start : int;
  c_len : int;
  c_pruned : int;
  c_entries : (int * float) list;
  c_rejected : (string * int) list;
  c_failed : (string * int) list;
}

type t = {
  ck_key : string;
  ck_fingerprint : int;
  ck_space : int;
  ck_top_k : int;
  ck_chunks : chunk list;
}

type ctx = { cx_path : string; cx_key : string; cx_fingerprint : int }

let fnv s =
  let h = ref 0x4bf29ce484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) s;
  !h land max_int

(* One checkpoint file per tuning key: concurrent tunes sharing a base path
   (the graph compiler fanning out over distinct operators) never clobber
   each other's partial state. *)
let path_for ~base ~key = Printf.sprintf "%s.%08x.ckpt" base (fnv key land 0xffffffff)

let matches t ~key ~fingerprint ~space ~top_k =
  String.equal t.ck_key key && t.ck_fingerprint = fingerprint && t.ck_space = space
  && t.ck_top_k = top_k

(* ------------------------------------------------------------------ *)
(* Persistence: line-oriented, written whole via PID-tagged temp + rename so
   a kill mid-write can never leave a half checkpoint under the real name.
   A malformed file loads as [None] — losing a checkpoint only costs
   re-scoring, never a wrong winner. *)

(* Temp files from writers that died between open and rename ("<path>.<pid>.tmp"
   for some other PID) accumulate forever otherwise; the next successful save
   owns the checkpoint and sweeps them. Racing a live concurrent writer is
   benign: its rename just fails as a Sys_error, which save already degrades
   to a warning. *)
let sweep_stale_tmp path =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  let mine = Printf.sprintf "%s.%d.tmp" base (Unix.getpid ()) in
  let is_stale name =
    String.length name > String.length base + 5
    && String.sub name 0 (String.length base + 1) = base ^ "."
    && Filename.check_suffix name ".tmp"
    && (not (String.equal name mine))
    &&
    let middle =
      String.sub name
        (String.length base + 1)
        (String.length name - String.length base - 5)
    in
    middle <> "" && String.for_all (fun c -> c >= '0' && c <= '9') middle
  in
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun name ->
        if is_stale name then
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      names

let save path t =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let write () =
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Printf.fprintf oc "%s\n" version_line;
        Printf.fprintf oc "key %s\n" t.ck_key;
        Printf.fprintf oc "space %d %d %d\n" t.ck_fingerprint t.ck_space t.ck_top_k;
        List.iter
          (fun c ->
            Printf.fprintf oc "chunk %d %d %d\n" c.c_start c.c_len c.c_pruned;
            List.iter (fun (i, s) -> Printf.fprintf oc "entry %d %.17g\n" i s) c.c_entries;
            List.iter (fun (code, n) -> Printf.fprintf oc "rej %s %d\n" code n) c.c_rejected;
            List.iter (fun (l, n) -> Printf.fprintf oc "fail %s %d\n" l n) c.c_failed;
            Printf.fprintf oc "endchunk\n")
          (List.sort (fun a b -> compare a.c_start b.c_start) t.ck_chunks));
    Sys.rename tmp path;
    sweep_stale_tmp path
  in
  (* A checkpoint is pure insurance: failing to write one must not abort the
     tune it protects. *)
  try write () with Sys_error e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Printf.eprintf "swatop: checkpoint write to %s failed (%s); continuing without\n%!" path e

let load path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let lines = ref [] in
    (try
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> ())
     with Sys_error _ -> ());
    let parse lines =
      match lines with
      | header :: rest when String.trim header = version_line -> (
        match rest with
        | key_line :: space_line :: body
          when String.length key_line > 4 && String.sub key_line 0 4 = "key " -> (
          let key = String.sub key_line 4 (String.length key_line - 4) in
          match String.split_on_char ' ' space_line with
          | [ "space"; fp; sz; tk ] -> (
            match (int_of_string_opt fp, int_of_string_opt sz, int_of_string_opt tk) with
            | Some fingerprint, Some space, Some top_k ->
              (* Fold the body into complete chunks; any unparseable line
                 invalidates the whole file (the scoring summaries must be
                 trusted exactly or not at all). *)
              let rec chunks acc cur = function
                | [] -> if cur = None then Some (List.rev acc) else None
                | line :: rest -> (
                  match (String.split_on_char ' ' line, cur) with
                  | [ "chunk"; a; b; c ], None -> (
                    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
                    | Some c_start, Some c_len, Some c_pruned
                      when c_start >= 0 && c_len >= 0 && c_pruned >= 0 ->
                      chunks acc
                        (Some
                           {
                             c_start;
                             c_len;
                             c_pruned;
                             c_entries = [];
                             c_rejected = [];
                             c_failed = [];
                           })
                        rest
                    | _ -> None)
                  | [ "entry"; i; s ], Some c -> (
                    match (int_of_string_opt i, float_of_string_opt s) with
                    | Some i, Some s when i >= c.c_start && i < c.c_start + c.c_len ->
                      chunks acc (Some { c with c_entries = c.c_entries @ [ (i, s) ] }) rest
                    | _ -> None)
                  | [ "rej"; code; n ], Some c -> (
                    match int_of_string_opt n with
                    | Some n when n > 0 ->
                      chunks acc (Some { c with c_rejected = c.c_rejected @ [ (code, n) ] }) rest
                    | _ -> None)
                  | [ "fail"; l; n ], Some c -> (
                    match int_of_string_opt n with
                    | Some n when n > 0 ->
                      chunks acc (Some { c with c_failed = c.c_failed @ [ (l, n) ] }) rest
                    | _ -> None)
                  | [ "endchunk" ], Some c -> chunks (c :: acc) None rest
                  | _ -> None)
              in
              Option.map
                (fun ck_chunks ->
                  { ck_key = key; ck_fingerprint = fingerprint; ck_space = space;
                    ck_top_k = top_k; ck_chunks })
                (chunks [] None body)
            | _ -> None)
          | _ -> None)
        | _ -> None)
      | _ -> None
    in
    parse (List.rev !lines)

let clear path = try Sys.remove path with Sys_error _ -> ()
